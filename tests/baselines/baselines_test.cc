#include <gtest/gtest.h>

#include "baselines/aurora.h"
#include "baselines/raftdb.h"
#include "baselines/simple_middleware.h"
#include "common/strings.h"

namespace sphere::baselines {
namespace {

std::vector<Row> Rows(Result<engine::ExecResult> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return {};
  EXPECT_TRUE(r->is_query);
  return engine::DrainResultSet(r->result_set.get());
}

class SimpleMiddlewareTest : public ::testing::Test {
 protected:
  SimpleMiddlewareTest() : network_(net::NetworkConfig::Zero()) {
    SimpleMiddlewareOptions options;
    options.name = "vitess-like";
    options.plan_overhead_us = 0;
    mw_ = std::make_unique<SimpleMiddleware>(options, &network_);
    for (int i = 0; i < 2; ++i) {
      nodes_.push_back(
          std::make_unique<engine::StorageNode>("ds_" + std::to_string(i)));
      EXPECT_TRUE(mw_->AttachNode(nodes_.back()->name(), nodes_.back().get()).ok());
    }
    EXPECT_TRUE(
        mw_->AddShardedTable("t", "id", "ds_${0..1}.t_${0..3}").ok());
    session_ = mw_->Connect();
    auto r = session_->Execute("CREATE TABLE t (id BIGINT PRIMARY KEY, v INT)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    for (int id = 0; id < 8; ++id) {
      EXPECT_TRUE(session_
                      ->Execute(StrFormat(
                          "INSERT INTO t (id, v) VALUES (%d, %d)", id, id * 10))
                      .ok());
    }
  }

  net::LatencyModel network_;
  std::unique_ptr<SimpleMiddleware> mw_;
  std::vector<std::unique_ptr<engine::StorageNode>> nodes_;
  std::unique_ptr<SqlSession> session_;
};

TEST_F(SimpleMiddlewareTest, DdlFansOutAndInsertsRoute) {
  // t_0..t_3 spread over the two backends.
  EXPECT_NE(nodes_[0]->database()->FindTable("t_0"), nullptr);
  EXPECT_NE(nodes_[1]->database()->FindTable("t_1"), nullptr);
  // id=5 -> t_1 (5 % 4) on ds_1.
  EXPECT_EQ(nodes_[1]->database()->FindTable("t_1")->row_count(), 2u);  // 1, 5
}

TEST_F(SimpleMiddlewareTest, PointAndScatterReads) {
  auto rows = Rows(session_->Execute("SELECT v FROM t WHERE id = 5"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(50));
  auto all = Rows(session_->Execute("SELECT id FROM t ORDER BY id"));
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0][0], Value(0));
  EXPECT_EQ(all[7][0], Value(7));
}

TEST_F(SimpleMiddlewareTest, ScatterAggregates) {
  auto rows = Rows(session_->Execute("SELECT COUNT(*), SUM(v) FROM t"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(8));
  EXPECT_EQ(rows[0][1], Value(280));
  // AVG is beyond this middleware's planner.
  EXPECT_FALSE(session_->Execute("SELECT AVG(v) FROM t").ok());
}

TEST_F(SimpleMiddlewareTest, TwoPhaseCommitAcrossShards) {
  ASSERT_TRUE(session_->Execute("BEGIN").ok());
  ASSERT_TRUE(session_->Execute("UPDATE t SET v = 1 WHERE id = 0").ok());
  ASSERT_TRUE(session_->Execute("UPDATE t SET v = 1 WHERE id = 1").ok());
  ASSERT_TRUE(session_->Execute("COMMIT").ok());
  EXPECT_EQ(Rows(session_->Execute("SELECT v FROM t WHERE id = 0"))[0][0], Value(1));
  EXPECT_EQ(Rows(session_->Execute("SELECT v FROM t WHERE id = 1"))[0][0], Value(1));
}

TEST_F(SimpleMiddlewareTest, RollbackAcrossShards) {
  ASSERT_TRUE(session_->Execute("BEGIN").ok());
  ASSERT_TRUE(session_->Execute("UPDATE t SET v = 99 WHERE id = 0").ok());
  ASSERT_TRUE(session_->Execute("UPDATE t SET v = 99 WHERE id = 1").ok());
  ASSERT_TRUE(session_->Execute("ROLLBACK").ok());
  EXPECT_EQ(Rows(session_->Execute("SELECT v FROM t WHERE id = 0"))[0][0], Value(0));
  EXPECT_EQ(Rows(session_->Execute("SELECT v FROM t WHERE id = 1"))[0][0], Value(10));
}

TEST_F(SimpleMiddlewareTest, SingleShardJoinWorks) {
  ASSERT_TRUE(mw_->AddShardedTable("u", "uid", "ds_${0..1}.u_${0..3}").ok());
  ASSERT_TRUE(
      session_->Execute("CREATE TABLE u (uid BIGINT PRIMARY KEY, name VARCHAR(8))")
          .ok());
  ASSERT_TRUE(
      session_->Execute("INSERT INTO u (uid, name) VALUES (5, 'five')").ok());
  auto rows = Rows(session_->Execute(
      "SELECT a.v, b.name FROM t a JOIN u b ON a.id = b.uid "
      "WHERE a.id = 5 AND b.uid = 5"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value("five"));
}

TEST_F(SimpleMiddlewareTest, CrossShardJoinRejected) {
  ASSERT_TRUE(mw_->AddShardedTable("u2", "uid", "ds_${0..1}.u2_${0..3}").ok());
  ASSERT_TRUE(session_->Execute("CREATE TABLE u2 (uid BIGINT PRIMARY KEY)").ok());
  auto r = session_->Execute("SELECT * FROM t a JOIN u2 b ON a.id = b.uid");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

class RaftDbTest : public ::testing::Test {
 protected:
  RaftDbTest() : network_(net::NetworkConfig::Zero()) {
    RaftDbOptions options;
    options.name = "tidb-like";
    options.num_regions = 2;
    options.replicas_per_region = 3;
    options.sql_layer_overhead_us = 0;
    db_ = std::make_unique<RaftDb>(options, &network_);
    db_->AddPartitionedTable("t", "id");
    session_ = db_->Connect();
    EXPECT_TRUE(
        session_->Execute("CREATE TABLE t (id BIGINT PRIMARY KEY, v INT)").ok());
    for (int id = 0; id < 6; ++id) {
      EXPECT_TRUE(session_
                      ->Execute(StrFormat(
                          "INSERT INTO t (id, v) VALUES (%d, %d)", id, id))
                      .ok());
    }
  }

  size_t RowsOnReplica(int region, int replica) {
    auto* table = db_->replica_node(region, replica)->database()->FindTable("t");
    return table == nullptr ? 0 : table->row_count();
  }

  net::LatencyModel network_;
  std::unique_ptr<RaftDb> db_;
  std::unique_ptr<SqlSession> session_;
};

TEST_F(RaftDbTest, WritesReplicateToAllReplicas) {
  // Region 0 holds even ids, region 1 odd; each region has 3 identical copies.
  for (int replica = 0; replica < 3; ++replica) {
    EXPECT_EQ(RowsOnReplica(0, replica), 3u);
    EXPECT_EQ(RowsOnReplica(1, replica), 3u);
  }
}

TEST_F(RaftDbTest, PointReadFromLeader) {
  auto rows = Rows(session_->Execute("SELECT v FROM t WHERE id = 4"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(4));
}

TEST_F(RaftDbTest, ScatterReadMerges) {
  auto rows = Rows(session_->Execute("SELECT id FROM t ORDER BY id"));
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[5][0], Value(5));
}

TEST_F(RaftDbTest, TransactionCommitsThroughTwoPhaseRaft) {
  ASSERT_TRUE(session_->Execute("BEGIN").ok());
  ASSERT_TRUE(session_->Execute("UPDATE t SET v = 100 WHERE id = 0").ok());
  ASSERT_TRUE(session_->Execute("UPDATE t SET v = 100 WHERE id = 1").ok());
  ASSERT_TRUE(session_->Execute("COMMIT").ok());
  EXPECT_EQ(Rows(session_->Execute("SELECT v FROM t WHERE id = 0"))[0][0],
            Value(100));
  EXPECT_EQ(Rows(session_->Execute("SELECT v FROM t WHERE id = 1"))[0][0],
            Value(100));
  // Every replica applied the committed writes.
  for (int region = 0; region < 2; ++region) {
    for (int replica = 0; replica < 3; ++replica) {
      auto* table =
          db_->replica_node(region, replica)->database()->FindTable("t");
      bool found = false;
      for (auto it = table->Begin(); it.Valid(); it.Next()) {
        if (it.payload()[1].Compare(Value(100)) == 0) found = true;
      }
      EXPECT_TRUE(found) << "region " << region << " replica " << replica;
    }
  }
}

TEST_F(RaftDbTest, TransactionRollbackDiscardsBufferedWrites) {
  ASSERT_TRUE(session_->Execute("BEGIN").ok());
  ASSERT_TRUE(session_->Execute("UPDATE t SET v = 55 WHERE id = 2").ok());
  ASSERT_TRUE(session_->Execute("ROLLBACK").ok());
  EXPECT_EQ(Rows(session_->Execute("SELECT v FROM t WHERE id = 2"))[0][0],
            Value(2));
}

TEST_F(RaftDbTest, WriteFailsWithoutQuorum) {
  db_->region(0)->Disconnect(1);
  db_->region(0)->Disconnect(2);
  auto r = session_->Execute("UPDATE t SET v = 1 WHERE id = 0");
  EXPECT_FALSE(r.ok());
  // Region 1 (odd ids) is unaffected.
  EXPECT_TRUE(session_->Execute("UPDATE t SET v = 1 WHERE id = 1").ok());
}

TEST(AuroraTest, RedoShipsOnWritesOnly) {
  net::LatencyModel network(net::NetworkConfig::Zero());
  engine::StorageNode compute("aurora-compute");
  AuroraOptions options;
  options.name = "aurora-ms";
  AuroraLikeSystem aurora(options, &compute, &network);
  auto session = aurora.Connect();
  ASSERT_TRUE(session->Execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)").ok());
  int64_t after_ddl = aurora.redo_records_shipped();
  EXPECT_GT(after_ddl, 0);  // DDL writes redo
  ASSERT_TRUE(session->Execute("INSERT INTO t (id, v) VALUES (1, 2)").ok());
  EXPECT_EQ(aurora.redo_records_shipped(), after_ddl + options.write_quorum);
  ASSERT_TRUE(session->Execute("SELECT * FROM t WHERE id = 1").ok());
  EXPECT_EQ(aurora.redo_records_shipped(), after_ddl + options.write_quorum);
}

}  // namespace
}  // namespace sphere::baselines
