// Differential test suite for the write-path fast lane (DESIGN.md §10).
//
// Every DML script below is replayed against a freshly built sharded cluster
// once per lane configuration — structured pass-through, cached-text, legacy
// inlined-text, each with the point-DML index path on and off — and the final
// database state, per-statement affected counts, and error positions must be
// identical across all of them. Mirrors the streaming SELECT differential
// suite on the read path.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "adaptor/jdbc.h"
#include "common/rng.h"
#include "common/strings.h"
#include "engine/pipeline.h"
#include "engine/result_set.h"

namespace sphere::adaptor {
namespace {

struct Lane {
  bool passthrough;
  bool binding;
  bool point_dml;
  const char* name;
};

constexpr Lane kLanes[] = {
    {true, true, true, "structured"},
    {false, true, true, "cached-text"},
    {false, false, true, "legacy-text"},
    {true, true, false, "structured/scan"},
    {false, true, false, "cached-text/scan"},
    {false, false, false, "legacy-text/scan"},
};

/// One step of a DML script. `sql` may be BEGIN/COMMIT/ROLLBACK; `may_fail`
/// marks steps whose failure is part of the scenario (the lane comparison
/// then checks that every lane fails at the same step).
struct Step {
  std::string sql;
  std::vector<Value> params = {};
  bool may_fail = false;
};

/// Outcome of replaying a script on one lane: per-step affected counts
/// (-1 = step failed) and a serialized fingerprint of the final state.
struct Replay {
  std::vector<int64_t> counts;
  std::string fingerprint;
};

class WriteLaneTest : public ::testing::Test {
 protected:
  /// Builds a fresh 2-node cluster with t_user/t_order MOD-sharded by uid
  /// into 4 tables, a secondary index on t_order.uid, and a fixed seed
  /// population.
  struct Cluster {
    std::vector<std::unique_ptr<engine::StorageNode>> nodes;
    std::unique_ptr<ShardingDataSource> ds;
    std::unique_ptr<ShardingConnection> conn;
  };

  static Cluster MakeCluster() {
    Cluster c;
    c.ds = std::make_unique<ShardingDataSource>(core::RuntimeConfig(),
                                                net::NetworkConfig::Zero());
    for (int i = 0; i < 2; ++i) {
      c.nodes.push_back(
          std::make_unique<engine::StorageNode>("ds_" + std::to_string(i)));
      EXPECT_TRUE(c.ds->AttachNode(c.nodes.back()->name(), c.nodes.back().get()).ok());
    }
    core::ShardingRuleConfig config;
    config.default_data_source = "ds_0";
    for (const std::string& table :
         {std::string("t_user"), std::string("t_order")}) {
      core::TableRuleConfig t;
      t.logic_table = table;
      t.auto_resources = {"ds_0", "ds_1"};
      t.auto_sharding_count = 4;
      t.table_strategy.columns = {"uid"};
      t.table_strategy.algorithm_type = "MOD";
      t.table_strategy.props.Set("sharding-count", "4");
      config.tables.push_back(std::move(t));
    }
    EXPECT_TRUE(c.ds->SetRule(std::move(config)).ok());
    c.conn = c.ds->GetConnection();
    Must(c, "CREATE TABLE t_user (uid BIGINT PRIMARY KEY, name VARCHAR(64), "
            "age INT, score DOUBLE)");
    Must(c, "CREATE TABLE t_order (oid BIGINT PRIMARY KEY, uid BIGINT, "
            "amount DOUBLE, month INT)");
    Must(c, "CREATE INDEX idx_order_uid ON t_order (uid)");
    for (int uid = 0; uid < 16; ++uid) {
      Must(c, StrFormat("INSERT INTO t_user (uid, name, age, score) VALUES "
                        "(%d, 'u%d', %d, %d.5)",
                        uid, uid, 20 + uid % 7, uid % 5));
    }
    for (int oid = 0; oid < 32; ++oid) {
      Must(c, StrFormat("INSERT INTO t_order (oid, uid, amount, month) VALUES "
                        "(%d, %d, %d.25, %d)",
                        oid, oid % 16, 10 + oid, 1 + oid % 12));
    }
    return c;
  }

  static void Must(Cluster& c, const std::string& sql) {
    auto r = c.conn->ExecuteSQL(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
  }

  /// Serializes the full cluster-visible contents of both tables.
  static std::string Fingerprint(Cluster& c) {
    std::string out;
    for (const char* sql :
         {"SELECT uid, name, age, score FROM t_user ORDER BY uid",
          "SELECT oid, uid, amount, month FROM t_order ORDER BY oid"}) {
      auto rs = c.conn->ExecuteQuery(sql);
      EXPECT_TRUE(rs.ok()) << rs.status().ToString();
      if (!rs.ok()) return out;
      while (rs->Next()) {
        for (const Value& v : rs->row()) {
          out += v.ToString();
          out += '|';
        }
        out += '\n';
      }
    }
    return out;
  }

  /// Replays `script` on a fresh cluster under `lane`. Seeding runs under the
  /// same lane, so the seed rows exercise it too.
  static Replay Run(const Lane& lane, const std::vector<Step>& script) {
    engine::ScopedDmlPassThrough passthrough(lane.passthrough);
    engine::ScopedDmlParamBinding binding(lane.binding);
    engine::ScopedPointDml point(lane.point_dml);
    Cluster c = MakeCluster();
    Replay replay;
    for (const Step& step : script) {
      auto r = c.conn->ExecuteSQL(step.sql, step.params);
      if (!r.ok()) {
        EXPECT_TRUE(step.may_fail)
            << lane.name << ": unexpected failure at '" << step.sql
            << "': " << r.status().ToString();
        replay.counts.push_back(-1);
        continue;
      }
      replay.counts.push_back(r->is_query ? 0 : r->affected_rows);
    }
    replay.fingerprint = Fingerprint(c);
    return replay;
  }

  /// The core differential assertion: every lane agrees with the first.
  static void ExpectLanesAgree(const std::vector<Step>& script) {
    Replay baseline = Run(kLanes[0], script);
    EXPECT_FALSE(baseline.fingerprint.empty());
    for (size_t i = 1; i < std::size(kLanes); ++i) {
      Replay other = Run(kLanes[i], script);
      EXPECT_EQ(baseline.counts, other.counts)
          << "affected counts diverge on lane " << kLanes[i].name;
      EXPECT_EQ(baseline.fingerprint, other.fingerprint)
          << "final state diverges on lane " << kLanes[i].name;
    }
  }
};

TEST_F(WriteLaneTest, InsertShapes) {
  ExpectLanesAgree({
      {"INSERT INTO t_user (uid, name, age, score) VALUES (100, 'new', 30, 1.0)", {}},
      // Multi-row insert scattering across shards and data sources.
      {"INSERT INTO t_user (uid, name, age, score) VALUES "
       "(101, 'a', 1, 0.5), (102, 'b', 2, 1.5), (103, 'c', 3, 2.5)", {}},
      // Parameterized rows, including expressions over parameters.
      {"INSERT INTO t_order (oid, uid, amount, month) VALUES (?, ?, ? + 1, ?)",
       {Value(200), Value(5), Value(9.0), Value(6)}},
      {"INSERT INTO t_order (oid, uid, amount, month) VALUES (?, ?, ?, ?), (?, ?, ?, ?)",
       {Value(201), Value(3), Value(1.0), Value(2),
        Value(202), Value(4), Value(2.0), Value(3)}},
  });
}

TEST_F(WriteLaneTest, PointAndRangeUpdates) {
  ExpectLanesAgree({
      // Point by sharding key (single shard, PK fast path).
      {"UPDATE t_user SET score = score + 1 WHERE uid = 7", {}},
      {"UPDATE t_user SET name = ? WHERE uid = ?", {Value("renamed"), Value(3)}},
      // Secondary-index equality (several rows on one shard).
      {"UPDATE t_order SET amount = amount * 2 WHERE uid = 5", {}},
      // Range predicate: broadcast to every shard, scan path.
      {"UPDATE t_user SET age = age + 1 WHERE uid BETWEEN 4 AND 11", {}},
      // Predicate on an unindexed column.
      {"UPDATE t_order SET month = 12 WHERE amount > ?", {Value(35.0)}},
      // No-match update.
      {"UPDATE t_user SET score = 0 WHERE uid = 999", {}},
  });
}

TEST_F(WriteLaneTest, PointAndRangeDeletes) {
  ExpectLanesAgree({
      {"DELETE FROM t_order WHERE oid = 9", {}},
      {"DELETE FROM t_order WHERE uid = ?", {Value(11)}},
      {"DELETE FROM t_user WHERE uid IN (2, 6, 999)", {}},
      {"DELETE FROM t_order WHERE amount > 38.0", {}},
      {"DELETE FROM t_user WHERE uid = 12345", {}},
  });
}

TEST_F(WriteLaneTest, TransactionsCommitAndRollback) {
  ExpectLanesAgree({
      {"BEGIN", {}},
      {"UPDATE t_user SET score = score + 10 WHERE uid = 1", {}},
      {"UPDATE t_user SET score = score - 10 WHERE uid = 2", {}},
      {"INSERT INTO t_order (oid, uid, amount, month) VALUES (300, 1, 5.0, 7)", {}},
      {"COMMIT", {}},
      {"BEGIN", {}},
      {"DELETE FROM t_order WHERE uid = 1", {}},
      {"UPDATE t_user SET name = 'gone' WHERE uid BETWEEN 0 AND 15", {}},
      {"ROLLBACK", {}},
  });
}

TEST_F(WriteLaneTest, MidStatementFailureIsAtomicEverywhere) {
  ExpectLanesAgree({
      // Second row collides with seeded uid=5: the whole statement must be a
      // no-op on every lane.
      {"INSERT INTO t_user (uid, name, age, score) VALUES "
       "(110, 'ok', 1, 1.0), (5, 'dup', 2, 2.0)", {}, /*may_fail=*/true},
      // And inside an explicit transaction followed by rollback.
      {"BEGIN", {}},
      {"INSERT INTO t_user (uid, name, age, score) VALUES "
       "(111, 'ok', 1, 1.0), (6, 'dup', 2, 2.0)", {}, /*may_fail=*/true},
      {"INSERT INTO t_user (uid, name, age, score) VALUES (112, 'kept', 3, 3.0)", {}},
      {"ROLLBACK", {}},
  });
}

TEST_F(WriteLaneTest, RandomizedDifferential) {
  Rng rng(20260807);
  for (int round = 0; round < 8; ++round) {
    std::vector<Step> script;
    bool in_txn = false;
    int next_uid = 500 + round * 100;
    int next_oid = 5000 + round * 100;
    int steps = static_cast<int>(rng.Uniform(6, 14));
    for (int s = 0; s < steps; ++s) {
      switch (rng.Uniform(0, 7)) {
        case 0:
          script.push_back({StrFormat(
              "INSERT INTO t_user (uid, name, age, score) VALUES (%d, 'r', %d, %d.0)",
              next_uid++, static_cast<int>(rng.Uniform(18, 60)),
              static_cast<int>(rng.Uniform(0, 9)))});
          break;
        case 1:
          script.push_back(
              {"INSERT INTO t_order (oid, uid, amount, month) VALUES (?, ?, ?, ?)",
               {Value(next_oid++), Value(rng.Uniform(0, 15)),
                Value(static_cast<double>(rng.Uniform(1, 99))),
                Value(rng.Uniform(1, 12))}});
          break;
        case 2:
          script.push_back({"UPDATE t_user SET score = score + 1 WHERE uid = ?",
                            {Value(rng.Uniform(0, 15))}});
          break;
        case 3:
          script.push_back({StrFormat(
              "UPDATE t_order SET amount = amount + 0.5 WHERE uid = %d",
              static_cast<int>(rng.Uniform(0, 15)))});
          break;
        case 4:
          script.push_back({StrFormat(
              "UPDATE t_user SET age = age + 1 WHERE uid BETWEEN %d AND %d",
              static_cast<int>(rng.Uniform(0, 7)),
              static_cast<int>(rng.Uniform(8, 15)))});
          break;
        case 5:
          script.push_back({"DELETE FROM t_order WHERE oid = ?",
                            {Value(rng.Uniform(0, 31))}});
          break;
        case 6:
          script.push_back({StrFormat("DELETE FROM t_order WHERE uid = %d",
                                      static_cast<int>(rng.Uniform(0, 15)))});
          break;
        default:
          if (in_txn) {
            script.push_back({rng.Uniform(0, 1) == 0 ? "COMMIT" : "ROLLBACK"});
            in_txn = false;
          } else {
            script.push_back({"BEGIN"});
            in_txn = true;
          }
          break;
      }
    }
    if (in_txn) script.push_back({"COMMIT"});
    ExpectLanesAgree(script);
  }
}

TEST_F(WriteLaneTest, MemoryDisciplineKnobsAreBehaviorNeutral) {
  // Arena statements + pooled batches across the write lanes: every knob
  // combination must produce identical per-step counts and final state —
  // including mid-transaction rollback, where arena scopes nest across the
  // runtime and the storage nodes.
  const std::vector<Step> script = {
      {"INSERT INTO t_user (uid, name, age, score) VALUES (700, 'm', 31, 2.5)"},
      {"INSERT INTO t_order (oid, uid, amount, month) VALUES (?, ?, ?, ?)",
       {Value(int64_t{7000}), Value(int64_t{700}), Value(12.25),
        Value(int64_t{6})}},
      {"BEGIN"},
      {"UPDATE t_user SET score = score + 1 WHERE uid = ?",
       {Value(int64_t{700})}},
      {"ROLLBACK"},
      {"UPDATE t_order SET amount = amount + 0.5 WHERE uid = 700"},
      {"DELETE FROM t_order WHERE oid = ?", {Value(int64_t{7000})}},
      {"SELECT uid, score FROM t_user WHERE uid = 700"},
  };
  Replay baseline;
  for (int combo = 0; combo < 4; ++combo) {
    engine::ScopedArenaStatements arena((combo & 1) != 0);
    engine::ScopedPooledBatches pooled((combo & 2) != 0);
    Replay r = Run(kLanes[0], script);
    if (combo == 0) {
      baseline = std::move(r);
      EXPECT_FALSE(baseline.fingerprint.empty());
      continue;
    }
    EXPECT_EQ(baseline.counts, r.counts) << "combo=" << combo;
    EXPECT_EQ(baseline.fingerprint, r.fingerprint) << "combo=" << combo;
  }
}

// ---------------------------------------------------------------------------
// Parse-cache accounting: proves each lane's claim about node-side parses.
// ---------------------------------------------------------------------------

TEST_F(WriteLaneTest, StructuredLaneNeverParsesOnNodes) {
  Cluster c = MakeCluster();
  int64_t misses_before = 0, hits_before = 0;
  for (auto& n : c.nodes) {
    misses_before += n->parse_cache_misses();
    hits_before += n->parse_cache_hits();
  }
  // Structured lane: repeated prepared INSERTs ship ASTs, so the node parse
  // cache is never even consulted.
  for (int i = 0; i < 20; ++i) {
    auto r = c.conn->ExecuteSQL(
        "INSERT INTO t_order (oid, uid, amount, month) VALUES (?, ?, ?, ?)",
        {Value(1000 + i), Value(i % 16), Value(1.0 * i), Value(1 + i % 12)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  int64_t misses_after = 0, hits_after = 0;
  for (auto& n : c.nodes) {
    misses_after += n->parse_cache_misses();
    hits_after += n->parse_cache_hits();
  }
  EXPECT_EQ(misses_after, misses_before);
  EXPECT_EQ(hits_after, hits_before);
}

TEST_F(WriteLaneTest, CachedTextLaneHitsParseCache) {
  engine::ScopedDmlPassThrough text_lane(false);
  Cluster c = MakeCluster();
  int64_t misses_before = 0;
  for (auto& n : c.nodes) misses_before += n->parse_cache_misses();
  // Cached-text lane: stable placeholder text means at most one parse per
  // distinct physical statement shape; the rest are cache hits.
  for (int i = 0; i < 20; ++i) {
    auto r = c.conn->ExecuteSQL(
        "INSERT INTO t_order (oid, uid, amount, month) VALUES (?, ?, ?, ?)",
        {Value(2000 + i), Value(3), Value(1.0 * i), Value(1 + i % 12)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  int64_t misses_after = 0;
  for (auto& n : c.nodes) misses_after += n->parse_cache_misses();
  // All 20 inserts route to the same physical table -> one miss, then hits.
  EXPECT_EQ(misses_after - misses_before, 1);
}

TEST_F(WriteLaneTest, LegacyLaneReparsesEveryStatement) {
  engine::ScopedDmlPassThrough no_passthrough(false);
  engine::ScopedDmlParamBinding no_binding(false);
  Cluster c = MakeCluster();
  int64_t misses_before = 0;
  for (auto& n : c.nodes) misses_before += n->parse_cache_misses();
  // Legacy lane inlines the literal values: every distinct row makes a
  // distinct text, and every text is a parse-cache miss.
  for (int i = 0; i < 20; ++i) {
    auto r = c.conn->ExecuteSQL(
        "INSERT INTO t_order (oid, uid, amount, month) VALUES (?, ?, ?, ?)",
        {Value(3000 + i), Value(3), Value(1.0 * i), Value(1 + i % 12)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  int64_t misses_after = 0;
  for (auto& n : c.nodes) misses_after += n->parse_cache_misses();
  EXPECT_EQ(misses_after - misses_before, 20);
}

// ---------------------------------------------------------------------------
// Prepared-statement batch API rides the fast lane.
// ---------------------------------------------------------------------------

TEST_F(WriteLaneTest, PreparedBatchExecutesAllEntries) {
  Cluster c = MakeCluster();
  auto ps = c.conn->PrepareStatement(
      "INSERT INTO t_order (oid, uid, amount, month) VALUES (?, ?, ?, ?)");
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  for (int i = 0; i < 5; ++i) {
    (*ps)->SetInt(1, 4000 + i);
    (*ps)->SetInt(2, i);
    (*ps)->SetDouble(3, 1.5 * i);
    (*ps)->SetInt(4, 1 + i);
    (*ps)->AddBatch();
  }
  EXPECT_EQ((*ps)->batch_size(), 5u);
  auto counts = (*ps)->ExecuteBatch();
  ASSERT_TRUE(counts.ok()) << counts.status().ToString();
  EXPECT_EQ(counts->size(), 5u);
  for (int64_t n : *counts) EXPECT_EQ(n, 1);
  EXPECT_EQ((*ps)->batch_size(), 0u);
  auto rs = c.conn->ExecuteQuery(
      "SELECT COUNT(*) FROM t_order WHERE oid >= 4000");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->GetInt(0), 5);
}

}  // namespace
}  // namespace sphere::adaptor
