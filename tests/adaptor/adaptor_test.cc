#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>

#include "adaptor/jdbc.h"
#include "adaptor/proxy.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace sphere::adaptor {
namespace {

class AdaptorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::make_unique<ShardingDataSource>(core::RuntimeConfig(),
                                               net::NetworkConfig::Zero());
    for (int i = 0; i < 2; ++i) {
      nodes_.push_back(
          std::make_unique<engine::StorageNode>("ds_" + std::to_string(i)));
      ASSERT_TRUE(ds_->AttachNode(nodes_.back()->name(), nodes_.back().get()).ok());
    }
    core::ShardingRuleConfig config;
    config.default_data_source = "ds_0";
    core::TableRuleConfig t;
    t.logic_table = "t_user";
    t.auto_resources = {"ds_0", "ds_1"};
    t.auto_sharding_count = 4;
    t.table_strategy.columns = {"uid"};
    t.table_strategy.algorithm_type = "MOD";
    t.table_strategy.props.Set("sharding-count", "4");
    t.keygen_column = "uid";
    t.keygen_type = "SNOWFLAKE";
    config.tables.push_back(std::move(t));
    ASSERT_TRUE(ds_->SetRule(std::move(config)).ok());
    conn_ = ds_->GetConnection();
    ASSERT_TRUE(conn_->ExecuteSQL("CREATE TABLE t_user (uid BIGINT PRIMARY KEY, "
                                  "name VARCHAR(32))")
                    .ok());
  }

  std::unique_ptr<ShardingDataSource> ds_;
  std::vector<std::unique_ptr<engine::StorageNode>> nodes_;
  std::unique_ptr<ShardingConnection> conn_;
};

TEST_F(AdaptorTest, StatementExecuteQueryAndUpdate) {
  auto stmt = conn_->CreateStatement();
  auto n = stmt->ExecuteUpdate(
      "INSERT INTO t_user (uid, name) VALUES (1, 'ann'), (2, 'bob')");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2);
  auto rs = stmt->ExecuteQuery("SELECT name FROM t_user WHERE uid = 1");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->GetString(0), "ann");
  EXPECT_FALSE(rs->Next());
}

TEST_F(AdaptorTest, ResultSetTypedGettersByName) {
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "INSERT INTO t_user (uid, name) VALUES (7, 'carol')").ok());
  auto rs = conn_->ExecuteQuery("SELECT uid, name FROM t_user WHERE uid = 7");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->GetInt("uid"), 7);
  EXPECT_EQ(rs->GetString("NAME"), "carol");
  EXPECT_EQ(rs->ColumnIndex("missing"), -1);
}

TEST_F(AdaptorTest, PreparedStatementReuse) {
  auto ps = conn_->PrepareStatement("INSERT INTO t_user (uid, name) VALUES (?, ?)");
  ASSERT_TRUE(ps.ok());
  for (int i = 10; i < 15; ++i) {
    (*ps)->SetInt(1, i);
    (*ps)->SetString(2, "u" + std::to_string(i));
    auto n = (*ps)->ExecuteUpdate();
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 1);
  }
  auto q = conn_->PrepareStatement("SELECT COUNT(*) FROM t_user WHERE uid >= ?");
  ASSERT_TRUE(q.ok());
  (*q)->SetInt(1, 12);
  auto rs = (*q)->ExecuteQuery();
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->GetInt(0), 3);
}

TEST_F(AdaptorTest, GeneratedKeysFilledIn) {
  // uid is the generated key column: inserting without it must work and
  // produce snowflake ids.
  auto r = conn_->ExecuteSQL("INSERT INTO t_user (name) VALUES ('keyless')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->last_insert_id, 0);
  auto rs = conn_->ExecuteQuery("SELECT uid FROM t_user WHERE name = 'keyless'");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->GetInt(0), r->last_insert_id);
}

TEST_F(AdaptorTest, AutoCommitOffOpensImplicitTransaction) {
  ASSERT_TRUE(conn_->SetAutoCommit(false).ok());
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "INSERT INTO t_user (uid, name) VALUES (20, 'x')").ok());
  EXPECT_TRUE(conn_->in_transaction());
  ASSERT_TRUE(conn_->Rollback().ok());
  auto rs = conn_->ExecuteQuery("SELECT COUNT(*) FROM t_user");
  rs->Next();
  EXPECT_EQ(rs->GetInt(0), 0);
  ASSERT_TRUE(conn_->SetAutoCommit(true).ok());
}

TEST_F(AdaptorTest, TclThroughSQLText) {
  ASSERT_TRUE(conn_->ExecuteSQL("BEGIN").ok());
  EXPECT_TRUE(conn_->in_transaction());
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "INSERT INTO t_user (uid, name) VALUES (30, 'y')").ok());
  ASSERT_TRUE(conn_->ExecuteSQL("COMMIT").ok());
  EXPECT_FALSE(conn_->in_transaction());
  auto rs = conn_->ExecuteQuery("SELECT COUNT(*) FROM t_user");
  rs->Next();
  EXPECT_EQ(rs->GetInt(0), 1);
}

TEST_F(AdaptorTest, SetTransactionTypeThroughSQL) {
  ASSERT_TRUE(conn_->ExecuteSQL("SET VARIABLE transaction_type = XA").ok());
  EXPECT_EQ(conn_->transaction_type(), transaction::TransactionType::kXa);
  ASSERT_TRUE(conn_->ExecuteSQL("SET VARIABLE transaction_type = BASE").ok());
  EXPECT_EQ(conn_->transaction_type(), transaction::TransactionType::kBase);
  auto bad = conn_->ExecuteSQL("SET VARIABLE transaction_type = NOPE");
  EXPECT_FALSE(bad.ok());
}

TEST_F(AdaptorTest, ProxyExecutesLikeJdbc) {
  ShardingProxy proxy(ds_.get(), &ds_->runtime()->network());
  auto pconn = proxy.Connect();
  auto n = pconn->Execute(
      "INSERT INTO t_user (uid, name) VALUES (40, 'via-proxy')");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->affected_rows, 1);
  auto r = pconn->Execute("SELECT name FROM t_user WHERE uid = 40");
  ASSERT_TRUE(r.ok());
  auto rows = engine::DrainResultSet(r->result_set.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("via-proxy"));
  EXPECT_EQ(proxy.statements_served(), 2);
}

TEST_F(AdaptorTest, ProxyFeedsStatementCounterAndWorkerGauge) {
  auto find = [](const std::string& name) -> std::optional<int64_t> {
    for (const metrics::Sample& s :
         metrics::Registry::Instance().Snapshot(name)) {
      if (s.name == name) return s.value;
    }
    return std::nullopt;
  };
  int64_t served = find("proxy.statements").value_or(0);
  {
    ShardingProxy proxy(ds_.get(), &ds_->runtime()->network());
    EXPECT_EQ(find("proxy.workers_busy"), 0);
    auto pconn = proxy.Connect();
    ASSERT_TRUE(
        pconn->Execute("INSERT INTO t_user (uid, name) VALUES (60, 'm')").ok());
    ASSERT_TRUE(pconn->Execute("SELECT * FROM t_user WHERE uid = 60").ok());
    EXPECT_EQ(find("proxy.statements"), served + 2);
    EXPECT_EQ(proxy.statements_served(), 2);
  }
  // The destructor retracts the gauge; the process-wide counter stays.
  EXPECT_FALSE(find("proxy.workers_busy").has_value());
  EXPECT_TRUE(find("proxy.statements").has_value());
}

TEST_F(AdaptorTest, ProxyTransactionsSpanStatements) {
  ShardingProxy proxy(ds_.get(), &ds_->runtime()->network());
  auto pconn = proxy.Connect();
  ASSERT_TRUE(pconn->Execute("BEGIN").ok());
  ASSERT_TRUE(pconn->Execute(
                  "INSERT INTO t_user (uid, name) VALUES (50, 'txn')").ok());
  ASSERT_TRUE(pconn->Execute("ROLLBACK").ok());
  auto r = pconn->Execute("SELECT COUNT(*) FROM t_user");
  auto rows = engine::DrainResultSet(r->result_set.get());
  EXPECT_EQ(rows[0][0], Value(0));
}

TEST_F(AdaptorTest, ProxyErrorsCrossTheWire) {
  ShardingProxy proxy(ds_.get(), &ds_->runtime()->network());
  auto pconn = proxy.Connect();
  auto r = pconn->Execute("SELECT * FROM missing_table WHERE id = 1");
  EXPECT_FALSE(r.ok());
}

TEST_F(AdaptorTest, ProxySlowerThanJdbcUnderLatency) {
  // Rebuild the stack with a real latency model; the proxy pays an extra
  // client<->proxy round trip per statement (paper Table III/IV shape).
  net::NetworkConfig netcfg;
  netcfg.hop_latency_us = 300;
  ShardingDataSource slow_ds{core::RuntimeConfig(), netcfg};
  engine::StorageNode node("ds_0");
  ASSERT_TRUE(slow_ds.AttachNode("ds_0", &node).ok());
  core::ShardingRuleConfig config;
  config.default_data_source = "ds_0";
  ASSERT_TRUE(slow_ds.SetRule(std::move(config)).ok());
  auto jdbc_conn = slow_ds.GetConnection();
  ASSERT_TRUE(jdbc_conn->ExecuteSQL("CREATE TABLE t (id INT PRIMARY KEY)").ok());

  ShardingProxy proxy(&slow_ds, &slow_ds.runtime()->network());
  auto proxy_conn = proxy.Connect();

  Stopwatch jt;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(jdbc_conn->ExecuteSQL("SELECT * FROM t WHERE id = 1").ok());
  }
  int64_t jdbc_us = jt.ElapsedMicros();
  Stopwatch pt;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(proxy_conn->Execute("SELECT * FROM t WHERE id = 1").ok());
  }
  int64_t proxy_us = pt.ElapsedMicros();
  EXPECT_GT(proxy_us, jdbc_us + 10 * 2 * 250);  // ≥ one extra RTT per query
}

TEST_F(AdaptorTest, ConcurrentConnections) {
  constexpr int kThreads = 4, kOps = 50;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto conn = ds_->GetConnection();
      for (int i = 0; i < kOps; ++i) {
        int uid = 1000 + t * kOps + i;
        auto r = conn->ExecuteSQL(StrFormat(
            "INSERT INTO t_user (uid, name) VALUES (%d, 't%d')", uid, t));
        if (!r.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  auto rs = conn_->ExecuteQuery("SELECT COUNT(*) FROM t_user");
  rs->Next();
  EXPECT_EQ(rs->GetInt(0), kThreads * kOps);
}

TEST_F(AdaptorTest, GovernorBindingPersistsRules) {
  governor::Registry registry;
  governor::ConfigManager config(&registry);
  ASSERT_TRUE(ds_->BindGovernor(&config, "instance-1").ok());

  // The instance is registered and the existing rule persisted.
  EXPECT_EQ(config.LiveInstances(), std::vector<std::string>{"instance-1"});
  ASSERT_EQ(config.ListRules(), std::vector<std::string>{"t_user"});
  EXPECT_NE(config.GetRule("t_user")->find("MOD"), std::string::npos);
  EXPECT_EQ(config.ListDataSources().size(), 2u);

  // DistSQL rule changes propagate to the registry.
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "CREATE SHARDING TABLE RULE t_extra (RESOURCES(ds_0, ds_1), "
                  "SHARDING_COLUMN=k, TYPE=mod, PROPERTIES(\"sharding-count\"=2))")
                  .ok());
  auto rules = config.ListRules();
  EXPECT_EQ(rules.size(), 2u);
  EXPECT_TRUE(config.GetRule("t_extra").ok());

  // Dropping a rule removes it from the registry too.
  ASSERT_TRUE(conn_->ExecuteSQL("DROP SHARDING TABLE RULE t_extra").ok());
  EXPECT_EQ(config.ListRules(), std::vector<std::string>{"t_user"});
}

}  // namespace
}  // namespace sphere::adaptor
