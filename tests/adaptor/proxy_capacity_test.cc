#include <gtest/gtest.h>

#include <thread>

#include "adaptor/jdbc.h"
#include "adaptor/proxy.h"
#include "common/clock.h"

namespace sphere::adaptor {
namespace {

TEST(ProxyCapacityTest, WorkerCapSerializesStatements) {
  ShardingDataSource ds(core::RuntimeConfig(), net::NetworkConfig::Zero());
  engine::StorageNode node("ds_0");
  ASSERT_TRUE(ds.AttachNode("ds_0", &node).ok());
  core::ShardingRuleConfig rule;
  rule.default_data_source = "ds_0";
  ASSERT_TRUE(ds.SetRule(std::move(rule)).ok());
  {
    auto conn = ds.GetConnection();
    ASSERT_TRUE(conn->ExecuteSQL("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  }
  // Large enough that the serialized/parallel gap dwarfs thread-startup
  // overhead under sanitizers on a loaded single-core box.
  node.set_statement_delay_us(10000);

  ShardingProxy proxy(&ds, &ds.runtime()->network());
  proxy.set_worker_capacity(1);

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  Stopwatch sw;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&proxy] {
      auto conn = proxy.Connect();
      ASSERT_TRUE(conn->Execute("SELECT * FROM t WHERE id = 1").ok());
    });
  }
  for (auto& t : threads) t.join();
  // 4 clients through 1 proxy worker, 10ms each: >= ~40ms wall clock.
  EXPECT_GE(sw.ElapsedMicros(), 35000);

  // Unlimited workers: clients overlap on the storage node.
  proxy.set_worker_capacity(0);
  Stopwatch sw2;
  threads.clear();
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&proxy] {
      auto conn = proxy.Connect();
      ASSERT_TRUE(conn->Execute("SELECT * FROM t WHERE id = 1").ok());
    });
  }
  for (auto& t : threads) t.join();
  // Overlapped: ~10ms of storage delay plus overhead, far below the
  // serialized 40ms floor.
  EXPECT_LT(sw2.ElapsedMicros(), 35000);
}

}  // namespace
}  // namespace sphere::adaptor
