#include "engine/storage_node.h"

#include <gtest/gtest.h>

namespace sphere::engine {
namespace {

class StorageNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    node_ = std::make_unique<StorageNode>("ds0");
    auto s = node_->OpenSession();
    ASSERT_TRUE(s->Execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)").ok());
    ASSERT_TRUE(s->Execute("INSERT INTO t (id, v) VALUES (1, 10)").ok());
  }

  int64_t ValueOf(int id) {
    auto s = node_->OpenSession();
    auto r = s->Execute("SELECT v FROM t WHERE id = " + std::to_string(id));
    EXPECT_TRUE(r.ok());
    Row row;
    if (!r->result_set->Next(&row)) return -1;
    return row[0].ToInt();
  }

  std::unique_ptr<StorageNode> node_;
};

TEST_F(StorageNodeTest, AutoCommitVisibleImmediately) {
  auto s = node_->OpenSession();
  ASSERT_TRUE(s->Execute("UPDATE t SET v = 20 WHERE id = 1").ok());
  EXPECT_EQ(ValueOf(1), 20);
}

TEST_F(StorageNodeTest, TransactionCommit) {
  auto s = node_->OpenSession();
  ASSERT_TRUE(s->Execute("BEGIN").ok());
  ASSERT_TRUE(s->Execute("UPDATE t SET v = 30 WHERE id = 1").ok());
  ASSERT_TRUE(s->Execute("COMMIT").ok());
  EXPECT_EQ(ValueOf(1), 30);
}

TEST_F(StorageNodeTest, TransactionRollback) {
  auto s = node_->OpenSession();
  ASSERT_TRUE(s->Execute("BEGIN").ok());
  ASSERT_TRUE(s->Execute("UPDATE t SET v = 99 WHERE id = 1").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t (id, v) VALUES (2, 20)").ok());
  ASSERT_TRUE(s->Execute("ROLLBACK").ok());
  EXPECT_EQ(ValueOf(1), 10);
  EXPECT_EQ(ValueOf(2), -1);
}

TEST_F(StorageNodeTest, SessionDestructorRollsBack) {
  {
    auto s = node_->OpenSession();
    ASSERT_TRUE(s->Execute("BEGIN").ok());
    ASSERT_TRUE(s->Execute("UPDATE t SET v = 77 WHERE id = 1").ok());
  }
  EXPECT_EQ(ValueOf(1), 10);
}

TEST_F(StorageNodeTest, BeginImplicitlyCommitsPrevious) {
  auto s = node_->OpenSession();
  ASSERT_TRUE(s->Execute("BEGIN").ok());
  ASSERT_TRUE(s->Execute("UPDATE t SET v = 40 WHERE id = 1").ok());
  ASSERT_TRUE(s->Execute("BEGIN").ok());  // MySQL-style implicit commit
  ASSERT_TRUE(s->Execute("ROLLBACK").ok());
  EXPECT_EQ(ValueOf(1), 40);
}

TEST_F(StorageNodeTest, XaPrepareCommitFlow) {
  auto s = node_->OpenSession();
  ASSERT_TRUE(s->Begin("gtx-1").ok());
  ASSERT_TRUE(s->Execute("UPDATE t SET v = 50 WHERE id = 1").ok());
  ASSERT_TRUE(s->Prepare().ok());
  EXPECT_FALSE(s->in_transaction());
  // Visible already (prepare does not hide writes in this engine) but
  // resolvable either way:
  ASSERT_TRUE(node_->CommitPrepared("gtx-1").ok());
  EXPECT_EQ(ValueOf(1), 50);
}

TEST_F(StorageNodeTest, XaPrepareRollbackRestores) {
  auto s = node_->OpenSession();
  ASSERT_TRUE(s->Begin("gtx-2").ok());
  ASSERT_TRUE(s->Execute("UPDATE t SET v = 60 WHERE id = 1").ok());
  ASSERT_TRUE(s->Prepare().ok());
  ASSERT_TRUE(node_->RollbackPrepared("gtx-2").ok());
  EXPECT_EQ(ValueOf(1), 10);
}

TEST_F(StorageNodeTest, InjectedPrepareFailureVotesNo) {
  node_->InjectPrepareFailure();
  auto s = node_->OpenSession();
  ASSERT_TRUE(s->Begin("gtx-3").ok());
  ASSERT_TRUE(s->Execute("UPDATE t SET v = 70 WHERE id = 1").ok());
  EXPECT_FALSE(s->Prepare().ok());
  // The branch rolled itself back (paper: RM answers NO and undoes its work).
  EXPECT_EQ(ValueOf(1), 10);
  EXPECT_TRUE(node_->InDoubtXids().empty());
}

TEST_F(StorageNodeTest, InjectedCommitFailureRollsBack) {
  node_->InjectCommitFailure();
  auto s = node_->OpenSession();
  ASSERT_TRUE(s->Execute("BEGIN").ok());
  ASSERT_TRUE(s->Execute("UPDATE t SET v = 80 WHERE id = 1").ok());
  EXPECT_FALSE(s->Execute("COMMIT").ok());
  EXPECT_EQ(ValueOf(1), 10);
}

TEST_F(StorageNodeTest, CrashRecoveryPath) {
  auto s = node_->OpenSession();
  ASSERT_TRUE(s->Begin("gtx-4").ok());
  ASSERT_TRUE(s->Execute("UPDATE t SET v = 90 WHERE id = 1").ok());
  ASSERT_TRUE(s->Prepare().ok());
  node_->SimulateCrash();
  auto xids = node_->InDoubtXids();
  ASSERT_EQ(xids.size(), 1u);
  EXPECT_EQ(xids[0], "gtx-4");
  ASSERT_TRUE(node_->CommitPrepared("gtx-4").ok());
  EXPECT_EQ(ValueOf(1), 90);
}

TEST_F(StorageNodeTest, DialectAffectsParsing) {
  StorageNode pg("pg0", sql::DialectType::kPostgreSQL);
  auto s = pg.OpenSession();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  // MySQL comma-limit is invalid in the PostgreSQL dialect.
  EXPECT_FALSE(s->Execute("SELECT * FROM t LIMIT 1, 2").ok());
  EXPECT_TRUE(s->Execute("SELECT * FROM t LIMIT 2 OFFSET 1").ok());
}

TEST_F(StorageNodeTest, StatementCounter) {
  int64_t before = node_->statements_executed();
  auto s = node_->OpenSession();
  ASSERT_TRUE(s->Execute("SELECT * FROM t").ok());
  EXPECT_EQ(node_->statements_executed(), before + 1);
}

}  // namespace
}  // namespace sphere::engine
