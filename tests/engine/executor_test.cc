#include "engine/executor.h"

#include <gtest/gtest.h>

#include "engine/pipeline.h"
#include "engine/storage_node.h"

namespace sphere::engine {
namespace {

/// Fixture with a populated node: t_user(uid pk, name, score), t_order(oid pk,
/// uid, amount).
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    node_ = std::make_unique<StorageNode>("ds0");
    session_ = node_->OpenSession();
    Exec("CREATE TABLE t_user (uid BIGINT PRIMARY KEY, name VARCHAR(64), score DOUBLE)");
    Exec("CREATE TABLE t_order (oid BIGINT PRIMARY KEY, uid BIGINT, amount DOUBLE)");
    Exec("INSERT INTO t_user (uid, name, score) VALUES "
         "(1, 'ann', 9.5), (2, 'bob', 7.0), (3, 'carol', 9.5), (4, 'dave', 3.25)");
    Exec("INSERT INTO t_order (oid, uid, amount) VALUES "
         "(100, 1, 10.0), (101, 1, 20.0), (102, 2, 5.0), (103, 9, 1.0)");
  }

  ExecResult Exec(std::string_view sql, std::vector<Value> params = {}) {
    auto r = session_->Execute(sql, params);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
    return r.ok() ? std::move(r).value() : ExecResult{};
  }

  std::vector<Row> Query(std::string_view sql, std::vector<Value> params = {}) {
    ExecResult r = Exec(sql, std::move(params));
    EXPECT_TRUE(r.is_query);
    return r.result_set ? DrainResultSet(r.result_set.get()) : std::vector<Row>{};
  }

  std::unique_ptr<StorageNode> node_;
  std::unique_ptr<StorageNode::Session> session_;
};

TEST_F(ExecutorTest, PointSelectByPk) {
  auto rows = Query("SELECT name FROM t_user WHERE uid = 2");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("bob"));
}

TEST_F(ExecutorTest, SelectStarColumnsNamed) {
  ExecResult r = Exec("SELECT * FROM t_user WHERE uid = 1");
  EXPECT_EQ(r.result_set->columns(),
            (std::vector<std::string>{"uid", "name", "score"}));
}

TEST_F(ExecutorTest, InPredicate) {
  auto rows = Query("SELECT uid FROM t_user WHERE uid IN (1, 3, 99)");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(ExecutorTest, RangeScanOnPk) {
  auto rows = Query("SELECT uid FROM t_user WHERE uid BETWEEN 2 AND 3 ORDER BY uid");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(2));
  EXPECT_EQ(rows[1][0], Value(3));
}

TEST_F(ExecutorTest, ExclusiveRange) {
  auto rows = Query("SELECT uid FROM t_user WHERE uid > 1 AND uid < 4 ORDER BY uid");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(2));
}

TEST_F(ExecutorTest, ParamBinding) {
  auto rows = Query("SELECT name FROM t_user WHERE uid = ?", {Value(3)});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("carol"));
}

TEST_F(ExecutorTest, OrderByDescAndLimit) {
  auto rows = Query("SELECT uid FROM t_user ORDER BY score DESC, uid ASC LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(1));  // score 9.5, lower uid first
  EXPECT_EQ(rows[1][0], Value(3));
}

TEST_F(ExecutorTest, LimitOffset) {
  auto rows = Query("SELECT uid FROM t_user ORDER BY uid LIMIT 1, 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(2));
  EXPECT_EQ(rows[1][0], Value(3));
}

TEST_F(ExecutorTest, OffsetPastEnd) {
  auto rows = Query("SELECT uid FROM t_user ORDER BY uid LIMIT 100, 5");
  EXPECT_TRUE(rows.empty());
}

TEST_F(ExecutorTest, GlobalAggregates) {
  auto rows = Query("SELECT COUNT(*), SUM(score), MIN(score), MAX(score), AVG(score) FROM t_user");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(4));
  EXPECT_EQ(rows[0][1], Value(29.25));
  EXPECT_EQ(rows[0][2], Value(3.25));
  EXPECT_EQ(rows[0][3], Value(9.5));
  EXPECT_EQ(rows[0][4], Value(29.25 / 4));
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  auto rows = Query("SELECT COUNT(*), SUM(score) FROM t_user WHERE uid > 100");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(0));
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  auto rows = Query(
      "SELECT score, COUNT(*) c FROM t_user GROUP BY score "
      "HAVING COUNT(*) > 1 ORDER BY score");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(9.5));
  EXPECT_EQ(rows[0][1], Value(2));
}

TEST_F(ExecutorTest, CountDistinct) {
  auto rows = Query("SELECT COUNT(DISTINCT score) FROM t_user");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(3));
}

TEST_F(ExecutorTest, InnerJoinHashPath) {
  auto rows = Query(
      "SELECT u.name, o.amount FROM t_user u JOIN t_order o ON u.uid = o.uid "
      "ORDER BY o.amount");
  ASSERT_EQ(rows.size(), 3u);  // order 103 has uid 9 with no user
  EXPECT_EQ(rows[0][0], Value("bob"));
  EXPECT_EQ(rows[2][1], Value(20.0));
}

TEST_F(ExecutorTest, LeftJoinPadsNulls) {
  auto rows = Query(
      "SELECT o.oid, u.name FROM t_order o LEFT JOIN t_user u ON o.uid = u.uid "
      "ORDER BY o.oid");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_TRUE(rows[3][1].is_null());  // order 103
}

TEST_F(ExecutorTest, CommaJoinWithWhereEquality) {
  auto rows = Query(
      "SELECT u.name FROM t_user u, t_order o WHERE u.uid = o.uid AND o.amount = 5.0");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("bob"));
}

TEST_F(ExecutorTest, JoinAggregation) {
  auto rows = Query(
      "SELECT u.name, SUM(o.amount) FROM t_user u JOIN t_order o ON u.uid = o.uid "
      "GROUP BY u.name ORDER BY u.name");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value("ann"));
  EXPECT_EQ(rows[0][1], Value(30.0));
}

TEST_F(ExecutorTest, DistinctRows) {
  auto rows = Query("SELECT DISTINCT score FROM t_user ORDER BY score");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(ExecutorTest, ScalarFunctions) {
  auto rows = Query(
      "SELECT UPPER(name), LENGTH(name), ABS(0 - uid), SUBSTR(name, 1, 2) "
      "FROM t_user WHERE uid = 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("ANN"));
  EXPECT_EQ(rows[0][1], Value(3));
  EXPECT_EQ(rows[0][2], Value(1));
  EXPECT_EQ(rows[0][3], Value("an"));
}

TEST_F(ExecutorTest, CaseExpression) {
  auto rows = Query(
      "SELECT CASE WHEN score > 8 THEN 'high' ELSE 'low' END FROM t_user "
      "WHERE uid IN (1, 4) ORDER BY uid");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value("high"));
  EXPECT_EQ(rows[1][0], Value("low"));
}

TEST_F(ExecutorTest, LikePredicate) {
  auto rows = Query("SELECT name FROM t_user WHERE name LIKE '%a%' ORDER BY name");
  ASSERT_EQ(rows.size(), 3u);  // ann, carol, dave
}

TEST_F(ExecutorTest, UpdateWithExpression) {
  ExecResult r = Exec("UPDATE t_user SET score = score + 1 WHERE uid <= 2");
  EXPECT_EQ(r.affected_rows, 2);
  auto rows = Query("SELECT score FROM t_user WHERE uid = 1");
  EXPECT_EQ(rows[0][0], Value(10.5));
}

TEST_F(ExecutorTest, DeleteAffectedCount) {
  ExecResult r = Exec("DELETE FROM t_order WHERE uid = 1");
  EXPECT_EQ(r.affected_rows, 2);
  EXPECT_EQ(Query("SELECT * FROM t_order").size(), 2u);
}

TEST_F(ExecutorTest, InsertArityMismatchFails) {
  auto r = session_->Execute("INSERT INTO t_user (uid, name) VALUES (7)");
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, MultiRowInsertIsAtomic) {
  // Regression: a mid-statement failure (second row conflicts with uid=2)
  // used to leave the first row committed in auto-commit mode. The statement
  // must apply all rows or none.
  auto r = session_->Execute(
      "INSERT INTO t_user (uid, name, score) VALUES "
      "(10, 'x', 1.0), (2, 'dup', 2.0), (11, 'y', 3.0)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(Query("SELECT * FROM t_user WHERE uid IN (10, 11)").size(), 0u);
  EXPECT_EQ(Query("SELECT * FROM t_user").size(), 4u);
  auto rows = Query("SELECT name FROM t_user WHERE uid = 2");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("bob"));
}

TEST_F(ExecutorTest, MultiRowInsertAtomicInTransaction) {
  // The failed statement must not leave stale insert-undo records behind:
  // after it rolls itself back, the transaction's later rollback has to
  // restore exactly the pre-transaction state, nothing less.
  Exec("BEGIN");
  auto r = session_->Execute(
      "INSERT INTO t_user (uid, name, score) VALUES (12, 'p', 1.0), (1, 'dup', 2.0)");
  EXPECT_FALSE(r.ok());
  Exec("INSERT INTO t_user (uid, name, score) VALUES (13, 'q', 4.0)");
  EXPECT_EQ(Query("SELECT * FROM t_user").size(), 5u);
  Exec("ROLLBACK");
  EXPECT_EQ(Query("SELECT * FROM t_user").size(), 4u);
  EXPECT_EQ(Query("SELECT * FROM t_user WHERE uid IN (12, 13)").size(), 0u);
}

TEST_F(ExecutorTest, UnknownTableFails) {
  EXPECT_FALSE(session_->Execute("SELECT * FROM nope").ok());
  EXPECT_FALSE(session_->Execute("INSERT INTO nope (a) VALUES (1)").ok());
}

TEST_F(ExecutorTest, UnknownColumnFails) {
  EXPECT_FALSE(session_->Execute("SELECT ghost FROM t_user").ok());
}

TEST_F(ExecutorTest, SecondaryIndexLookup) {
  Exec("CREATE INDEX idx_uid ON t_order (uid)");
  auto rows = Query("SELECT oid FROM t_order WHERE uid = 1 ORDER BY oid");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(100));
}

TEST_F(ExecutorTest, PointUpdateViaIndexMatchesScan) {
  Exec("CREATE INDEX idx_uid ON t_order (uid)");
  ExecResult fast = Exec("UPDATE t_order SET amount = amount + 1 WHERE uid = 1");
  EXPECT_EQ(fast.affected_rows, 2);
  {
    ScopedPointDml off(false);
    ExecResult slow = Exec("UPDATE t_order SET amount = amount + 1 WHERE uid = 1");
    EXPECT_EQ(slow.affected_rows, 2);
  }
  auto rows = Query("SELECT amount FROM t_order WHERE uid = 1 ORDER BY oid");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(12.0));
  EXPECT_EQ(rows[1][0], Value(22.0));
}

TEST_F(ExecutorTest, PointDeleteViaPkAndIndex) {
  ExecResult by_pk = Exec("DELETE FROM t_order WHERE oid = 100");
  EXPECT_EQ(by_pk.affected_rows, 1);
  Exec("CREATE INDEX idx_uid ON t_order (uid)");
  ExecResult by_idx = Exec("DELETE FROM t_order WHERE uid = 2");
  EXPECT_EQ(by_idx.affected_rows, 1);
  EXPECT_EQ(Query("SELECT * FROM t_order").size(), 2u);
}

TEST_F(ExecutorTest, PointDmlRollsBackThroughUndo) {
  Exec("CREATE INDEX idx_uid ON t_order (uid)");
  Exec("BEGIN");
  EXPECT_EQ(Exec("UPDATE t_order SET amount = 0 WHERE uid = 1").affected_rows, 2);
  EXPECT_EQ(Exec("DELETE FROM t_order WHERE oid = 102").affected_rows, 1);
  Exec("ROLLBACK");
  auto rows = Query("SELECT amount FROM t_order ORDER BY oid");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], Value(10.0));
  EXPECT_EQ(rows[2][0], Value(5.0));
}

TEST_F(ExecutorTest, TruncateAndDrop) {
  Exec("TRUNCATE TABLE t_order");
  EXPECT_EQ(Query("SELECT * FROM t_order").size(), 0u);
  Exec("DROP TABLE t_order");
  EXPECT_FALSE(session_->Execute("SELECT * FROM t_order").ok());
}

TEST_F(ExecutorTest, SelectWithoutFrom) {
  auto rows = Query("SELECT 1 + 2, 'x'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(3));
  EXPECT_EQ(rows[0][1], Value("x"));
}

TEST_F(ExecutorTest, OrderByAliasOfComputedItem) {
  auto rows = Query("SELECT uid, score * 2 AS dbl FROM t_user ORDER BY dbl DESC LIMIT 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value(19.0));
}

}  // namespace
}  // namespace sphere::engine
