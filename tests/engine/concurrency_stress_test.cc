// Concurrency stress tests for StorageNode sessions and the governor
// Registry. Written for the TSan build (-DSPHERE_SANITIZE=thread): many
// threads hammer the shared statement cache, the io-slot gate, table latches
// and the registry's node/watch/lock maps at once, so a missing lock shows up
// as a reported race rather than a flaky count.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/storage_node.h"
#include "governor/health.h"
#include "governor/registry.h"

namespace sphere {
namespace {

TEST(EngineConcurrencyStressTest, ParallelSessionsOneNode) {
  engine::StorageNode node("ds_stress");
  {
    auto admin = node.OpenSession();
    auto created = admin->Execute(
        "CREATE TABLE t (id INT PRIMARY KEY, w INT, v VARCHAR(32))");
    ASSERT_TRUE(created.ok()) << created.status().ToString();
  }
  // A small io-slot cap plus a nonzero statement delay forces sessions
  // through the io_mu_/io_cv_ wait path, not just the fast path.
  node.set_io_concurrency(2);
  node.set_statement_delay_us(10);

  constexpr int kThreads = 8;
  constexpr int kRowsPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&node, &failures, t] {
      auto session = node.OpenSession();
      for (int i = 0; i < kRowsPerThread; ++i) {
        int id = t * kRowsPerThread + i;
        // Same parameterized text from every thread: all sessions share one
        // statement-cache entry.
        auto ins = session->Execute("INSERT INTO t (id, w, v) VALUES (?, ?, ?)",
                                    {Value(id), Value(t),
                                     Value("row-" + std::to_string(id))});
        if (!ins.ok()) failures.fetch_add(1, std::memory_order_relaxed);
        auto sel = session->Execute("SELECT COUNT(*) FROM t WHERE w = ?",
                                    {Value(t)});
        if (!sel.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  auto check = node.OpenSession();
  auto result = check->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Row row;
  ASSERT_TRUE(result->result_set->Next(&row));
  EXPECT_EQ(row[0].AsInt(), kThreads * kRowsPerThread);
}

TEST(EngineConcurrencyStressTest, TransactionsRaceAutocommitReads) {
  engine::StorageNode node("ds_txn_stress");
  {
    auto admin = node.OpenSession();
    auto created =
        admin->Execute("CREATE TABLE acct (id INT PRIMARY KEY, bal INT)");
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    for (int i = 0; i < 8; ++i) {
      auto ins = admin->Execute("INSERT INTO acct (id, bal) VALUES (?, ?)",
                                {Value(i), Value(100)});
      ASSERT_TRUE(ins.ok()) << ins.status().ToString();
    }
  }
  std::vector<std::thread> threads;
  // Writers: short transactions, half commit and half roll back. Each writer
  // owns one row — undo-based rollback is per-transaction, so concurrent
  // writers on the same row could interleave undo restores and the final
  // balance would not be deterministic.
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&node, w] {
      auto session = node.OpenSession();
      for (int i = 0; i < 60; ++i) {
        ASSERT_TRUE(session->Begin().ok());
        auto upd = session->Execute("UPDATE acct SET bal = bal + 1 WHERE id = ?",
                                    {Value(w)});
        ASSERT_TRUE(upd.ok()) << upd.status().ToString();
        Status end = (i % 2 == 0) ? session->Commit() : session->Rollback();
        ASSERT_TRUE(end.ok()) << end.ToString();
      }
    });
  }
  // Readers: autocommit aggregate scans racing the writers.
  std::atomic<bool> stop{false};
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&node, &stop] {
      auto session = node.OpenSession();
      while (!stop.load(std::memory_order_acquire)) {
        auto sum = session->Execute("SELECT SUM(bal) FROM acct");
        ASSERT_TRUE(sum.ok()) << sum.status().ToString();
      }
    });
  }
  for (int w = 0; w < 4; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  threads[4].join();
  threads[5].join();
  // 4 writers x 60 iterations, every other one committed, +1 each time.
  auto check = node.OpenSession();
  auto total = check->Execute("SELECT SUM(bal) FROM acct");
  ASSERT_TRUE(total.ok());
  Row total_row;
  ASSERT_TRUE(total->result_set->Next(&total_row));
  EXPECT_EQ(total_row[0].AsInt(), 8 * 100 + 4 * 30);
}

TEST(GovernorConcurrencyStressTest, RegistryNodesWatchesLocksSessions) {
  governor::Registry registry;
  std::atomic<int64_t> events{0};
  int64_t watch_id = registry.Watch(
      "/stress", [&events](const governor::RegistryEvent&) {
        events.fetch_add(1, std::memory_order_relaxed);
      });

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 300;
  std::atomic<int> lock_acquisitions{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &lock_acquisitions, t] {
      governor::Registry::SessionId session = registry.Connect();
      const std::string mine = "/stress/t" + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        ASSERT_TRUE(registry
                        .Put(mine, "v" + std::to_string(i))
                        .ok());
        auto got = registry.Get(mine);
        ASSERT_TRUE(got.ok());
        // Ephemeral churn: node dies with the session at the end.
        (void)registry.Create(mine + "/eph" + std::to_string(i % 4), "x",
                              session);
        (void)registry.Delete(mine + "/eph" + std::to_string((i + 2) % 4));
        // Contended named lock guards a read-modify-write on a shared node.
        if (registry.TryLock("stress-lock", session)) {
          lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
          auto counter = registry.Get("/stress/counter");
          int next = counter.ok() ? std::stoi(counter.value()) + 1 : 1;
          ASSERT_TRUE(
              registry.Put("/stress/counter", std::to_string(next)).ok());
          registry.Unlock("stress-lock", session);
        }
        // Watchers re-enter the registry from inside the callback path.
        std::vector<std::string> kids = registry.GetChildren("/stress");
        ASSERT_LE(kids.size(), 100u);
      }
      registry.Disconnect(session);
    });
  }
  for (auto& t : threads) t.join();
  registry.Unwatch(watch_id);

  // The named lock serialized the counter updates: no lost increments.
  auto counter = registry.Get("/stress/counter");
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(std::stoi(counter.value()), lock_acquisitions.load());
  EXPECT_GT(events.load(), 0);
  // All ephemerals vanished with their sessions.
  for (int t = 0; t < kThreads; ++t) {
    std::vector<std::string> kids =
        registry.GetChildren("/stress/t" + std::to_string(t));
    EXPECT_TRUE(kids.empty()) << "ephemerals leaked for thread " << t;
  }
}

TEST(GovernorConcurrencyStressTest, HealthStateFlipsUnderDetectorThread) {
  // Aggressive timings: the detector thread declares instances DOWN almost
  // immediately, while heartbeat threads keep reviving them and others
  // register/unregister — the callback and instance map stay consistent.
  governor::HealthDetector detector(/*check_interval_ms=*/1, /*timeout_ms=*/1);
  std::atomic<int64_t> flips{0};
  detector.SetStateChangeCallback(
      [&flips](const std::string&, governor::HealthDetector::State) {
        flips.fetch_add(1, std::memory_order_relaxed);
      });
  for (int i = 0; i < 4; ++i) {
    detector.RegisterInstance("proxy-" + std::to_string(i));
  }
  detector.Start();

  std::vector<std::thread> threads;
  // Heartbeaters: each keeps one instance mostly alive.
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&detector, i] {
      for (int n = 0; n < 400; ++n) {
        detector.Heartbeat("proxy-" + std::to_string(i));
        (void)detector.IsHealthy("proxy-" + std::to_string(i));
        std::this_thread::yield();
      }
    });
  }
  // Churner: registration and removal race the detector's sweep.
  threads.emplace_back([&detector] {
    for (int n = 0; n < 200; ++n) {
      detector.RegisterInstance("ephemeral-" + std::to_string(n % 8));
      (void)detector.HealthyInstances();
      detector.UnregisterInstance("ephemeral-" + std::to_string((n + 4) % 8));
    }
  });
  // Manual sweeps race the background detector thread.
  threads.emplace_back([&detector] {
    for (int n = 0; n < 200; ++n) detector.RunCheckOnce();
  });
  for (auto& t : threads) t.join();
  detector.Stop();

  // Deterministic final sweep: let the 1 ms timeout elapse for sure, then
  // check once more so the assertions below cannot race the clock.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  detector.RunCheckOnce();

  // proxy-2/proxy-3 never heartbeat after registration: with a 1 ms timeout
  // they must have been declared DOWN by now.
  EXPECT_FALSE(detector.IsHealthy("proxy-2"));
  EXPECT_FALSE(detector.IsHealthy("proxy-3"));
  EXPECT_GT(flips.load(), 0);
}

}  // namespace
}  // namespace sphere
