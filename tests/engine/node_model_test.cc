#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "engine/storage_node.h"

namespace sphere::engine {
namespace {

TEST(StatementCacheTest, RepeatedTextReusesParsedStatement) {
  StorageNode node("ds_0");
  auto s = node.OpenSession();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t (id, v) VALUES (1, 10)").ok());
  // Same text with different params: both must produce correct results
  // (the cache must not capture bound values).
  auto r1 = s->Execute("SELECT v FROM t WHERE id = ?", {Value(1)});
  ASSERT_TRUE(r1.ok());
  Row row;
  ASSERT_TRUE(r1->result_set->Next(&row));
  EXPECT_EQ(row[0], Value(10));
  auto r2 = s->Execute("SELECT v FROM t WHERE id = ?", {Value(999)});
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->result_set->Next(&row));
}

TEST(StatementCacheTest, SyntaxErrorsAreNotCached) {
  StorageNode node("ds_0");
  auto s = node.OpenSession();
  EXPECT_FALSE(s->Execute("SELEC nonsense").ok());
  EXPECT_FALSE(s->Execute("SELEC nonsense").ok());  // still an error
}

TEST(StatementCacheTest, ManyDistinctTextsDontBreakEviction) {
  StorageNode node("ds_0");
  auto s = node.OpenSession();
  ASSERT_TRUE(s->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  // Cross the eviction threshold with distinct texts.
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(
        s->Execute("INSERT INTO t (id) VALUES (" + std::to_string(i) + ")").ok());
  }
  auto r = s->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  Row row;
  ASSERT_TRUE(r->result_set->Next(&row));
  EXPECT_EQ(row[0], Value(5000));
}

TEST(NodeDelayTest, DelayAppliedPerStatement) {
  StorageNode node("ds_0");
  node.set_statement_delay_us(2000);
  auto s = node.OpenSession();
  Stopwatch sw;
  ASSERT_TRUE(s->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  EXPECT_GE(sw.ElapsedMicros(), 1800);
}

TEST(IoSlotTest, LimitsConcurrentDelayedStatements) {
  StorageNode node("ds_0");
  {
    auto s = node.OpenSession();
    ASSERT_TRUE(s->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  }
  node.set_statement_delay_us(3000);
  node.set_io_concurrency(1);  // fully serialized IO

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  Stopwatch sw;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&node] {
      auto s = node.OpenSession();
      ASSERT_TRUE(s->Execute("SELECT * FROM t WHERE id = 1").ok());
    });
  }
  for (auto& t : threads) t.join();
  // 4 statements x 3ms through 1 slot must take >= ~12ms.
  EXPECT_GE(sw.ElapsedMicros(), 10000);

  // With unlimited slots they overlap.
  node.set_io_concurrency(0);
  Stopwatch sw2;
  threads.clear();
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&node] {
      auto s = node.OpenSession();
      ASSERT_TRUE(s->Execute("SELECT * FROM t WHERE id = 1").ok());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LT(sw2.ElapsedMicros(), 10000);
}

}  // namespace
}  // namespace sphere::engine
