#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "engine/pipeline.h"
#include "engine/storage_node.h"
#include "engine/topk.h"

namespace sphere::engine {
namespace {

// ---------------------------------------------------------------------------
// TopKStable: byte-identical to stable_sort + truncate
// ---------------------------------------------------------------------------

TEST(TopKStableTest, MatchesStableSortTruncateOnTiedKeys) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    // Few distinct keys → many ties, the case where stability is visible.
    std::vector<std::pair<int64_t, int64_t>> items;  // (key, arrival id)
    size_t n = static_cast<size_t>(rng.Uniform(0, 200));
    items.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      items.emplace_back(rng.Uniform(0, 5), static_cast<int64_t>(i));
    }
    auto less = [](const std::pair<int64_t, int64_t>& a,
                   const std::pair<int64_t, int64_t>& b) {
      return a.first < b.first;
    };
    std::vector<std::pair<int64_t, int64_t>> expected = items;
    std::stable_sort(expected.begin(), expected.end(), less);
    size_t k = static_cast<size_t>(rng.Uniform(0, 250));
    if (k < expected.size()) expected.resize(k);

    std::vector<std::pair<int64_t, int64_t>> actual = items;
    TopKStable(&actual, k, less);
    EXPECT_EQ(actual, expected) << "n=" << n << " k=" << k;
  }
}

TEST(TopKStableTest, ZeroKeepsNothing) {
  std::vector<int> v{3, 1, 2};
  TopKStable(&v, 0, std::less<int>());
  EXPECT_TRUE(v.empty());
}

// ---------------------------------------------------------------------------
// Streaming fast path vs materializing baseline
// ---------------------------------------------------------------------------

/// Populated single node; every test query runs twice, once with the
/// streaming pipeline on and once forced onto the materializing baseline, and
/// the two results must match row for row.
class StreamingSelectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    node_ = std::make_unique<StorageNode>("ds0");
    session_ = node_->OpenSession();
    Exec("CREATE TABLE t_item (id BIGINT PRIMARY KEY, category VARCHAR(16), "
         "price DOUBLE, qty INT)");
    Exec("CREATE INDEX idx_cat ON t_item (category)");
    // Duplicated categories/prices so DISTINCT and ORDER BY ties matter.
    Rng rng(42);
    for (int id = 0; id < 60; ++id) {
      Exec(StrFormat(
          "INSERT INTO t_item (id, category, price, qty) VALUES "
          "(%d, 'c%d', %d.25, %d)",
          id, static_cast<int>(rng.Uniform(0, 4)),
          static_cast<int>(rng.Uniform(1, 9)),
          static_cast<int>(rng.Uniform(0, 99))));
    }
  }

  void Exec(const std::string& sql) {
    auto r = session_->Execute(sql, {});
    ASSERT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
  }

  /// Runs `sql` with streaming forced on/off; returns (labels, rows).
  std::pair<std::vector<std::string>, std::vector<Row>> Run(
      const std::string& sql, bool streaming) {
    ScopedStreamingMode mode(streaming);
    auto r = session_->Execute(sql, {});
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
    if (!r.ok() || !r->is_query || r->result_set == nullptr) return {};
    std::vector<std::string> labels = r->result_set->columns();
    return {std::move(labels), DrainResultSet(r.value().result_set.get())};
  }

  void ExpectSameResult(const std::string& sql) {
    auto [labels_on, rows_on] = Run(sql, /*streaming=*/true);
    auto [labels_off, rows_off] = Run(sql, /*streaming=*/false);
    EXPECT_EQ(labels_on, labels_off) << sql;
    ASSERT_EQ(rows_on.size(), rows_off.size()) << sql;
    for (size_t i = 0; i < rows_on.size(); ++i) {
      EXPECT_EQ(rows_on[i], rows_off[i]) << sql << " row " << i;
    }
  }

  std::unique_ptr<StorageNode> node_;
  std::unique_ptr<StorageNode::Session> session_;
};

TEST_F(StreamingSelectTest, PlainScans) {
  ExpectSameResult("SELECT * FROM t_item");
  ExpectSameResult("SELECT id, price FROM t_item WHERE qty > 50");
  ExpectSameResult("SELECT id FROM t_item WHERE id BETWEEN 10 AND 40");
  ExpectSameResult("SELECT id FROM t_item WHERE id IN (3, 1, 59, 99)");
  ExpectSameResult("SELECT id, qty FROM t_item WHERE category = 'c2'");
  ExpectSameResult("SELECT price * 2 FROM t_item WHERE id < 10");
}

TEST_F(StreamingSelectTest, LimitEarlyTermination) {
  ExpectSameResult("SELECT id FROM t_item LIMIT 7");
  ExpectSameResult("SELECT id FROM t_item LIMIT 5 OFFSET 12");
  ExpectSameResult("SELECT id FROM t_item WHERE qty > 30 LIMIT 55, 100");
  ExpectSameResult("SELECT id FROM t_item OFFSET 20");  // count-less branch
  ExpectSameResult("SELECT id FROM t_item LIMIT 0");
}

TEST_F(StreamingSelectTest, IndexOrderSortElision) {
  ExpectSameResult("SELECT id, price FROM t_item ORDER BY id");
  ExpectSameResult("SELECT id FROM t_item WHERE id > 5 ORDER BY id LIMIT 9");
  ExpectSameResult("SELECT id, category FROM t_item ORDER BY id, price");
}

TEST_F(StreamingSelectTest, TopKMatchesSortThenTruncate) {
  ExpectSameResult("SELECT id, price FROM t_item ORDER BY price LIMIT 5");
  ExpectSameResult("SELECT id, price FROM t_item ORDER BY price DESC LIMIT 5");
  ExpectSameResult("SELECT id FROM t_item ORDER BY id DESC LIMIT 3");
  ExpectSameResult(
      "SELECT id, price FROM t_item ORDER BY price, qty DESC LIMIT 4 OFFSET 2");
  ExpectSameResult("SELECT id FROM t_item WHERE qty > 20 ORDER BY qty LIMIT 6");
}

TEST_F(StreamingSelectTest, AscDescEarlyTerminationEquivalence) {
  // The ASC query elides its sort (pk scan order), the DESC one runs the
  // bounded heap; both must agree with their materializing twins.
  ExpectSameResult("SELECT id FROM t_item ORDER BY id ASC LIMIT 10");
  ExpectSameResult("SELECT id FROM t_item ORDER BY id DESC LIMIT 10");
}

TEST_F(StreamingSelectTest, DistinctVariants) {
  ExpectSameResult("SELECT DISTINCT category FROM t_item");
  ExpectSameResult("SELECT DISTINCT category FROM t_item LIMIT 2");
  ExpectSameResult("SELECT DISTINCT category, qty FROM t_item LIMIT 3 OFFSET 1");
  // DISTINCT + non-pk ORDER BY + LIMIT must fall back (dedup happens after
  // the sort in the baseline) and still match.
  ExpectSameResult(
      "SELECT DISTINCT category FROM t_item ORDER BY category LIMIT 2");
  ExpectSameResult("SELECT DISTINCT price FROM t_item ORDER BY price DESC");
}

TEST_F(StreamingSelectTest, FallbackPathsStillMatch) {
  // No LIMIT count → nothing to bound; aggregates and joins → materializing.
  ExpectSameResult("SELECT id FROM t_item ORDER BY price");
  ExpectSameResult("SELECT category, COUNT(*) FROM t_item GROUP BY category");
  ExpectSameResult("SELECT MAX(price) FROM t_item");
}

TEST_F(StreamingSelectTest, BatchSizeOneAndHugeAgree) {
  for (size_t batch : {size_t{1}, size_t{3}, size_t{100000}}) {
    PipelineConfig::set_batch_size(batch);
    ExpectSameResult("SELECT id, price FROM t_item ORDER BY price LIMIT 9");
    ExpectSameResult("SELECT DISTINCT category FROM t_item LIMIT 3");
    ExpectSameResult("SELECT id FROM t_item LIMIT 6 OFFSET 6");
  }
  PipelineConfig::set_batch_size(PipelineConfig::kDefaultBatchSize);
}

TEST_F(StreamingSelectTest, RandomizedDifferential) {
  Rng rng(1234);
  const std::vector<std::string> projections = {
      "*", "id", "id, price", "category, qty", "price * 2, id"};
  const std::vector<std::string> wheres = {
      "", " WHERE qty > 25", " WHERE id BETWEEN 7 AND 44",
      " WHERE category = 'c1'", " WHERE id IN (2, 4, 8, 16, 32)"};
  const std::vector<std::string> orders = {
      "", " ORDER BY id", " ORDER BY price LIMIT 8", " ORDER BY qty DESC LIMIT 5",
      " ORDER BY id LIMIT 4 OFFSET 3"};
  const std::vector<std::string> limits = {"", " LIMIT 11", " LIMIT 6, 9"};
  for (int round = 0; round < 120; ++round) {
    std::string sql = "SELECT ";
    bool distinct = rng.Uniform(0, 3) == 0;
    if (distinct) sql += "DISTINCT ";
    sql += projections[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(projections.size()) - 1))];
    sql += " FROM t_item";
    sql += wheres[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(wheres.size()) - 1))];
    const std::string& order = orders[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(orders.size()) - 1))];
    sql += order;
    if (order.empty()) {
      sql += limits[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(limits.size()) - 1))];
    }
    ExpectSameResult(sql);
  }
}

TEST_F(StreamingSelectTest, MemoryDisciplineKnobsAreBehaviorNeutral) {
  // Arena statements + pooled batches must be invisible in results: every
  // query agrees byte-for-byte across all four knob combinations, on both
  // the streaming fast path and the materializing baseline.
  const std::vector<std::string> queries = {
      "SELECT * FROM t_item",
      "SELECT id, price FROM t_item WHERE qty > 25",
      "SELECT id FROM t_item WHERE id = 17",
      "SELECT DISTINCT category FROM t_item",
      "SELECT id, qty FROM t_item ORDER BY qty DESC LIMIT 7",
      "SELECT category, price FROM t_item ORDER BY id LIMIT 10 OFFSET 20",
  };
  for (bool streaming : {false, true}) {
    for (const std::string& sql : queries) {
      std::vector<Row> baseline;
      std::vector<std::string> baseline_labels;
      for (int combo = 0; combo < 4; ++combo) {
        ScopedArenaStatements arena((combo & 1) != 0);
        ScopedPooledBatches pooled((combo & 2) != 0);
        auto [labels, rows] = Run(sql, streaming);
        if (combo == 0) {
          baseline = std::move(rows);
          baseline_labels = std::move(labels);
          continue;
        }
        EXPECT_EQ(labels, baseline_labels)
            << sql << " combo=" << combo << " streaming=" << streaming;
        ASSERT_EQ(rows.size(), baseline.size())
            << sql << " combo=" << combo << " streaming=" << streaming;
        for (size_t i = 0; i < rows.size(); ++i) {
          EXPECT_EQ(rows[i], baseline[i])
              << sql << " row " << i << " combo=" << combo;
        }
      }
    }
  }
}

TEST_F(StreamingSelectTest, StreamingSurvivesConcurrentSchema) {
  // The fast path must not hold the table latch beyond one statement: a
  // write between two streamed statements is immediately visible.
  {
    ScopedStreamingMode mode(true);
    auto r1 = session_->Execute("SELECT id FROM t_item LIMIT 3", {});
    ASSERT_TRUE(r1.ok());
    (void)DrainResultSet(r1->result_set.get());
    Exec("INSERT INTO t_item (id, category, price, qty) VALUES "
         "(1000, 'cx', 1.0, 1)");
    auto r2 = session_->Execute("SELECT id FROM t_item WHERE id = 1000", {});
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(DrainResultSet(r2->result_set.get()).size(), 1u);
  }
}

}  // namespace
}  // namespace sphere::engine
