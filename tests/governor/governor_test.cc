#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/metrics.h"
#include "governor/config_manager.h"
#include "governor/health.h"
#include "governor/registry.h"

namespace sphere::governor {
namespace {

TEST(RegistryTest, CreateGetDelete) {
  Registry reg;
  ASSERT_TRUE(reg.Create("/a/b", "v1").ok());
  EXPECT_TRUE(reg.Exists("/a"));  // parent auto-created
  EXPECT_EQ(*reg.Get("/a/b"), "v1");
  EXPECT_EQ(reg.Create("/a/b", "again").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(reg.Delete("/a/b").ok());
  EXPECT_FALSE(reg.Exists("/a/b"));
  EXPECT_EQ(reg.Get("/a/b").status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, PutUpserts) {
  Registry reg;
  ASSERT_TRUE(reg.Put("/x", "1").ok());
  ASSERT_TRUE(reg.Put("/x", "2").ok());
  EXPECT_EQ(*reg.Get("/x"), "2");
}

TEST(RegistryTest, DeleteWithChildrenRefused) {
  Registry reg;
  ASSERT_TRUE(reg.Create("/p/c", "v").ok());
  EXPECT_FALSE(reg.Delete("/p").ok());
  ASSERT_TRUE(reg.Delete("/p/c").ok());
  EXPECT_TRUE(reg.Delete("/p").ok());
}

TEST(RegistryTest, ChildrenListedSorted) {
  Registry reg;
  ASSERT_TRUE(reg.Create("/r/b", "").ok());
  ASSERT_TRUE(reg.Create("/r/a", "").ok());
  ASSERT_TRUE(reg.Create("/r/a/nested", "").ok());
  EXPECT_EQ(reg.GetChildren("/r"), (std::vector<std::string>{"a", "b"}));
}

TEST(RegistryTest, WatchFiresOnNodeAndChildren) {
  Registry reg;
  std::vector<std::string> events;
  reg.Watch("/cfg", [&](const RegistryEvent& ev) {
    events.push_back(ev.path + ":" +
                     std::to_string(static_cast<int>(ev.type)));
  });
  ASSERT_TRUE(reg.Put("/cfg", "root").ok());
  ASSERT_TRUE(reg.Create("/cfg/rule1", "r").ok());
  ASSERT_TRUE(reg.Put("/cfg/rule1", "r2").ok());
  ASSERT_TRUE(reg.Delete("/cfg/rule1").ok());
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], "/cfg:0");
  EXPECT_EQ(events[1], "/cfg/rule1:0");
  EXPECT_EQ(events[2], "/cfg/rule1:1");
  EXPECT_EQ(events[3], "/cfg/rule1:2");
}

TEST(RegistryTest, UnwatchStopsEvents) {
  Registry reg;
  int count = 0;
  int64_t id = reg.Watch("/w", [&](const RegistryEvent&) { ++count; });
  ASSERT_TRUE(reg.Put("/w", "1").ok());
  reg.Unwatch(id);
  ASSERT_TRUE(reg.Put("/w", "2").ok());
  EXPECT_EQ(count, 1);
}

TEST(RegistryTest, EphemeralNodesDieWithSession) {
  Registry reg;
  auto session = reg.Connect();
  ASSERT_TRUE(reg.Create("/status/instances/proxy-1", "up", session).ok());
  ASSERT_TRUE(reg.Create("/status/persistent", "keep").ok());
  int deleted = 0;
  reg.Watch("/status/instances", [&](const RegistryEvent& ev) {
    if (ev.type == RegistryEvent::Type::kDeleted) ++deleted;
  });
  reg.Disconnect(session);
  EXPECT_FALSE(reg.Exists("/status/instances/proxy-1"));
  EXPECT_TRUE(reg.Exists("/status/persistent"));
  EXPECT_EQ(deleted, 1);
}

TEST(RegistryTest, LocksAreExclusivePerSession) {
  Registry reg;
  auto s1 = reg.Connect();
  auto s2 = reg.Connect();
  EXPECT_TRUE(reg.TryLock("resize", s1));
  EXPECT_FALSE(reg.TryLock("resize", s2));
  reg.Unlock("resize", s2);  // non-owner unlock is a no-op
  EXPECT_FALSE(reg.TryLock("resize", s2));
  reg.Unlock("resize", s1);
  EXPECT_TRUE(reg.TryLock("resize", s2));
}

TEST(RegistryTest, DisconnectReleasesLocks) {
  Registry reg;
  auto s1 = reg.Connect();
  EXPECT_TRUE(reg.TryLock("l", s1));
  reg.Disconnect(s1);
  auto s2 = reg.Connect();
  EXPECT_TRUE(reg.TryLock("l", s2));
}

TEST(ConfigManagerTest, RuleAndDataSourceLifecycle) {
  Registry reg;
  ConfigManager config(&reg);
  ASSERT_TRUE(config.SaveDataSource("ds_0", "host=a").ok());
  ASSERT_TRUE(config.SaveDataSource("ds_1", "host=b").ok());
  EXPECT_EQ(config.ListDataSources(),
            (std::vector<std::string>{"ds_0", "ds_1"}));
  ASSERT_TRUE(config.SaveRule("t_user", "MOD(4)").ok());
  EXPECT_EQ(*config.GetRule("t_user"), "MOD(4)");
  EXPECT_EQ(config.ListRules(), std::vector<std::string>{"t_user"});
  ASSERT_TRUE(config.DropRule("t_user").ok());
  EXPECT_TRUE(config.ListRules().empty());
  ASSERT_TRUE(config.SetProperty("max-connections-per-query", "5").ok());
  EXPECT_EQ(config.GetProperty("max-connections-per-query"), "5");
  EXPECT_EQ(config.GetProperty("missing", "dflt"), "dflt");
}

TEST(HealthTest, DetectsTimeoutAndRecovery) {
  HealthDetector detector(/*check_interval_ms=*/1000, /*timeout_ms=*/0);
  std::vector<std::string> transitions;
  detector.SetStateChangeCallback(
      [&](const std::string& name, HealthDetector::State state) {
        transitions.push_back(name + (state == HealthDetector::State::kUp
                                          ? ":up"
                                          : ":down"));
      });
  detector.RegisterInstance("proxy-1");
  EXPECT_TRUE(detector.IsHealthy("proxy-1"));
  SleepMicros(1500);
  detector.RunCheckOnce();  // heartbeat older than 0ms timeout -> down
  EXPECT_FALSE(detector.IsHealthy("proxy-1"));
  detector.Heartbeat("proxy-1");
  EXPECT_TRUE(detector.IsHealthy("proxy-1"));
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], "proxy-1:down");
  EXPECT_EQ(transitions[1], "proxy-1:up");
}

TEST(HealthTest, HealthyInstancesList) {
  HealthDetector detector(1000, 0);
  detector.RegisterInstance("a");
  detector.RegisterInstance("b");
  EXPECT_EQ(detector.HealthyInstances().size(), 2u);
  SleepMicros(1500);
  detector.RunCheckOnce();
  detector.Heartbeat("b");
  EXPECT_EQ(detector.HealthyInstances(), std::vector<std::string>{"b"});
  detector.UnregisterInstance("b");
  EXPECT_TRUE(detector.HealthyInstances().empty());
}

TEST(HealthTest, PublishesStateAndHeartbeatAgeGauges) {
  auto& registry = metrics::Registry::Instance();
  auto gauge = [&registry](const std::string& name) -> int64_t {
    for (const auto& s : registry.Snapshot(name)) {
      if (s.name == name) return s.value;
    }
    return -999;
  };
  {
    HealthDetector detector(1000, /*timeout_ms=*/0);
    detector.RegisterInstance("hx-1");
    EXPECT_EQ(gauge("health.hx-1.state"), 1);
    EXPECT_GE(gauge("health.hx-1.heartbeat_age_ms"), 0);
    SleepMicros(1500);
    detector.RunCheckOnce();
    EXPECT_EQ(gauge("health.hx-1.state"), 0);  // went down
    // RunCheckOnce also records its own duration.
    EXPECT_GE(gauge("health.check.last_run_us"), 0);
    detector.Heartbeat("hx-1");
    EXPECT_EQ(gauge("health.hx-1.state"), 1);  // revived
    detector.UnregisterInstance("hx-1");
    EXPECT_EQ(gauge("health.hx-1.state"), -999);  // probes retracted
    detector.RegisterInstance("hx-2");
    EXPECT_EQ(gauge("health.hx-2.state"), 1);
  }
  // Destruction retracts every remaining probe of this detector.
  EXPECT_EQ(gauge("health.hx-2.state"), -999);
}

TEST(HealthTest, BackgroundThreadDetects) {
  HealthDetector detector(/*check_interval_ms=*/5, /*timeout_ms=*/10);
  detector.RegisterInstance("node");
  detector.Start();
  SleepMicros(60000);  // > timeout with several check cycles
  EXPECT_FALSE(detector.IsHealthy("node"));
  detector.Stop();
}

}  // namespace
}  // namespace sphere::governor
