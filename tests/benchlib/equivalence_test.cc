// Cross-system equivalence: the same deterministic workload applied to every
// system in the benchmark matrix must leave identical logical database
// states — the fairness precondition behind the paper's comparisons.

#include <gtest/gtest.h>

#include "benchlib/setup.h"
#include "common/strings.h"

namespace sphere::benchlib {
namespace {

std::vector<Row> SortedRows(Result<engine::ExecResult> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return {};
  EXPECT_TRUE(r->is_query);
  std::vector<Row> rows = engine::DrainResultSet(r->result_set.get());
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

/// Applies a deterministic mixed write workload (autocommit statements only,
/// so buffered-transaction systems behave identically).
void ApplyWorkload(baselines::SqlSession* session, int64_t table_size) {
  Rng rng(0xFEED);
  for (int op = 0; op < 120; ++op) {
    int64_t id = rng.Uniform(1, table_size);
    int64_t k = rng.Uniform(1, table_size);
    switch (rng.Uniform(0, 3)) {
      case 0: {
        auto r = session->Execute("UPDATE sbtest SET k = ? WHERE id = ?",
                                  {Value(k), Value(id)});
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        break;
      }
      case 1: {
        auto r = session->Execute(
            "UPDATE sbtest SET c = ? WHERE id = ?",
            {Value("upd-" + std::to_string(op)), Value(id)});
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        break;
      }
      case 2: {
        auto r = session->Execute("DELETE FROM sbtest WHERE id = ?", {Value(id)});
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        break;
      }
      default: {
        auto r = session->Execute(
            "INSERT INTO sbtest (id, k, c, pad) VALUES (?, ?, 'ins', 'pad')",
            {Value(table_size + op + 1), Value(k)});
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        break;
      }
    }
  }
}

struct Snapshot {
  std::vector<Row> aggregate;
  std::vector<Row> full;
  std::vector<Row> range;
};

Snapshot Snap(baselines::SqlSession* session) {
  Snapshot s;
  s.aggregate = SortedRows(
      session->Execute("SELECT COUNT(*), SUM(k), MIN(id), MAX(id) FROM sbtest"));
  s.full = SortedRows(session->Execute("SELECT id, k, c FROM sbtest"));
  s.range = SortedRows(session->Execute(
      "SELECT id, c FROM sbtest WHERE id BETWEEN 50 AND 149 ORDER BY id"));
  return s;
}

void ExpectSame(const Snapshot& a, const Snapshot& b, const std::string& who) {
  EXPECT_EQ(a.aggregate, b.aggregate) << who << " aggregate mismatch";
  ASSERT_EQ(a.full.size(), b.full.size()) << who << " row count mismatch";
  EXPECT_EQ(a.full, b.full) << who << " table content mismatch";
  EXPECT_EQ(a.range, b.range) << who << " range mismatch";
}

TEST(EquivalenceTest, AllSystemsConvergeToTheSameState) {
  constexpr int64_t kRows = 400;
  SysbenchConfig config;
  config.table_size = kRows;

  ClusterSpec spec;
  spec.data_sources = 2;
  spec.tables_per_source = 2;
  spec.network = net::NetworkConfig::Zero();

  // Reference: plain single node.
  SingleNodeCluster reference("reference", spec);
  ASSERT_TRUE(reference.SetupSysbench(config).ok());
  auto ref_session = reference.system()->Connect();
  ApplyWorkload(ref_session.get(), kRows);
  Snapshot expected = Snap(ref_session.get());
  ASSERT_FALSE(expected.full.empty());

  // ShardingSphere, JDBC and proxy mode (one cluster, workload via JDBC,
  // reads verified through both adaptors).
  SphereCluster ss(spec, "MS");
  ASSERT_TRUE(ss.SetupSysbench(config).ok());
  auto ssj = ss.jdbc()->Connect();
  ApplyWorkload(ssj.get(), kRows);
  ExpectSame(expected, Snap(ssj.get()), "SSJ");
  auto ssp = ss.proxy()->Connect();
  ExpectSame(expected, Snap(ssp.get()), "SSP");

  // Vitess-like middleware.
  MiddlewareCluster vitess({"vitess-like", 0}, spec);
  ASSERT_TRUE(vitess.SetupSysbench(config).ok());
  auto vs = vitess.system()->Connect();
  ApplyWorkload(vs.get(), kRows);
  ExpectSame(expected, Snap(vs.get()), "vitess-like");

  // Raft-replicated new-architecture database.
  baselines::RaftDbOptions raft_options;
  raft_options.name = "tidb-like";
  raft_options.sql_layer_overhead_us = 0;
  RaftDbCluster tidb(raft_options, spec);
  ASSERT_TRUE(tidb.SetupSysbench(config).ok());
  auto ts = tidb.system()->Connect();
  ApplyWorkload(ts.get(), kRows);
  ExpectSame(expected, Snap(ts.get()), "tidb-like");

  // Aurora-like shared-storage database.
  AuroraCluster aurora("aurora-like", spec);
  ASSERT_TRUE(aurora.SetupSysbench(config).ok());
  auto as = aurora.system()->Connect();
  ApplyWorkload(as.get(), kRows);
  ExpectSame(expected, Snap(as.get()), "aurora-like");
}

TEST(EquivalenceTest, RangeShardingMatchesModSharding) {
  // The BOUNDARY_RANGE layout used by Table IV must answer exactly like the
  // default MOD layout.
  constexpr int64_t kRows = 300;
  SysbenchConfig config;
  config.table_size = kRows;
  ClusterSpec spec;
  spec.data_sources = 2;
  spec.tables_per_source = 3;
  spec.network = net::NetworkConfig::Zero();

  SphereCluster mod_cluster(spec, "MS");
  ASSERT_TRUE(mod_cluster.SetupSysbench(config).ok());
  ClusterSpec range_spec = spec;
  range_spec.sysbench_algorithm = "BOUNDARY_RANGE";
  SphereCluster range_cluster(range_spec, "MS");
  ASSERT_TRUE(range_cluster.SetupSysbench(config).ok());

  auto mod_session = mod_cluster.jdbc()->Connect();
  auto range_session = range_cluster.jdbc()->Connect();
  ApplyWorkload(mod_session.get(), kRows);
  ApplyWorkload(range_session.get(), kRows);
  ExpectSame(Snap(mod_session.get()), Snap(range_session.get()),
             "range-vs-mod");

  // Range layout keeps small ranges on few shards: verify the route width.
  auto stmt = sql::ParseSQL("SELECT c FROM sbtest WHERE id BETWEEN 10 AND 30");
  ASSERT_TRUE(stmt.ok());
  auto route = range_cluster.data_source()->runtime()->PreviewRoute(**stmt, {});
  ASSERT_TRUE(route.ok());
  EXPECT_LE(route->units.size(), 2u);  // 21 ids within one 50-id partition +1
  auto mod_route = mod_cluster.data_source()->runtime()->PreviewRoute(**stmt, {});
  ASSERT_TRUE(mod_route.ok());
  EXPECT_EQ(mod_route->units.size(), 6u);  // MOD scatters wide
}

}  // namespace
}  // namespace sphere::benchlib
