#include <gtest/gtest.h>

#include "benchlib/metrics.h"
#include "benchlib/setup.h"
#include "benchlib/sysbench.h"
#include "benchlib/tpcc.h"

namespace sphere::benchlib {
namespace {

ClusterSpec SmallSpec() {
  ClusterSpec spec;
  spec.data_sources = 2;
  spec.tables_per_source = 2;
  spec.network = net::NetworkConfig::Zero();
  spec.max_connections_per_query = 4;
  return spec;
}

SysbenchConfig SmallSysbench() {
  SysbenchConfig config;
  config.table_size = 500;
  config.range_size = 20;
  return config;
}

int64_t CountOf(baselines::SqlSession* session, const std::string& sql) {
  auto r = session->Execute(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
  if (!r.ok()) return -1;
  Row row;
  EXPECT_TRUE(r->result_set->Next(&row));
  return row[0].ToInt();
}

TEST(SysbenchTest, LoadPopulatesExactRowCount) {
  SphereCluster cluster(SmallSpec());
  ASSERT_TRUE(cluster.SetupSysbench(SmallSysbench()).ok());
  auto session = cluster.jdbc()->Connect();
  EXPECT_EQ(CountOf(session.get(), "SELECT COUNT(*) FROM sbtest"), 500);
  // Rows spread across all four shards (MOD on dense ids: exactly even).
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    size_t on_node = 0;
    for (const auto& name : cluster.node(i)->database()->TableNames()) {
      on_node += cluster.node(i)->database()->FindTable(name)->row_count();
    }
    EXPECT_EQ(on_node, 250u);
  }
}

class SysbenchScenarioTest
    : public ::testing::TestWithParam<SysbenchScenario> {};

TEST_P(SysbenchScenarioTest, RunsCleanlyOnBothAdaptors) {
  SphereCluster cluster(SmallSpec());
  ASSERT_TRUE(cluster.SetupSysbench(SmallSysbench()).ok());
  SysbenchConfig config = SmallSysbench();
  Rng rng(3);
  for (baselines::SqlSystem* system : {cluster.jdbc(), cluster.proxy()}) {
    auto session = system->Connect();
    for (int i = 0; i < 10; ++i) {
      Status st = SysbenchTransaction(session.get(), GetParam(), config, &rng);
      EXPECT_TRUE(st.ok()) << system->name() << ": " << st.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SysbenchScenarioTest,
                         ::testing::Values(SysbenchScenario::kPointSelect,
                                           SysbenchScenario::kReadOnly,
                                           SysbenchScenario::kWriteOnly,
                                           SysbenchScenario::kReadWrite),
                         [](const auto& info) {
                           std::string n = SysbenchScenarioName(info.param);
                           n.erase(std::remove(n.begin(), n.end(), ' '), n.end());
                           return n;
                         });

TEST(SysbenchTest, RunsOnBaselines) {
  SysbenchConfig config = SmallSysbench();
  Rng rng(5);

  MiddlewareCluster vitess({"vitess-like", 0}, SmallSpec());
  ASSERT_TRUE(vitess.SetupSysbench(config).ok());
  auto vsession = vitess.system()->Connect();
  for (int i = 0; i < 5; ++i) {
    Status st = SysbenchTransaction(vsession.get(),
                                    SysbenchScenario::kReadWrite, config, &rng);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  baselines::RaftDbOptions raft_options;
  raft_options.name = "tidb-like";
  raft_options.sql_layer_overhead_us = 0;
  RaftDbCluster tidb(raft_options, SmallSpec());
  ASSERT_TRUE(tidb.SetupSysbench(config).ok());
  auto tsession = tidb.system()->Connect();
  for (int i = 0; i < 5; ++i) {
    Status st = SysbenchTransaction(tsession.get(),
                                    SysbenchScenario::kReadWrite, config, &rng);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  AuroraCluster aurora("aurora-ms", SmallSpec());
  ASSERT_TRUE(aurora.SetupSysbench(config).ok());
  auto asession = aurora.system()->Connect();
  for (int i = 0; i < 5; ++i) {
    Status st = SysbenchTransaction(asession.get(),
                                    SysbenchScenario::kReadWrite, config, &rng);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
}

TpccConfig SmallTpcc() {
  TpccConfig config;
  config.warehouses = 2;
  config.districts_per_warehouse = 3;
  config.customers_per_district = 10;
  config.items = 50;
  config.initial_orders_per_district = 10;
  return config;
}

TEST(TpccTest, LoadCardinalitiesMatchConfig) {
  SphereCluster cluster(SmallSpec());
  TpccConfig config = SmallTpcc();
  ASSERT_TRUE(cluster.SetupTpcc(config).ok());
  auto s = cluster.jdbc()->Connect();
  EXPECT_EQ(CountOf(s.get(), "SELECT COUNT(*) FROM warehouse"), 2);
  EXPECT_EQ(CountOf(s.get(), "SELECT COUNT(*) FROM district"), 6);
  EXPECT_EQ(CountOf(s.get(), "SELECT COUNT(*) FROM customer"), 60);
  EXPECT_EQ(CountOf(s.get(), "SELECT COUNT(*) FROM item"), 50);
  EXPECT_EQ(CountOf(s.get(), "SELECT COUNT(*) FROM stock"), 100);
  EXPECT_EQ(CountOf(s.get(), "SELECT COUNT(*) FROM orders"), 60);
  // A third of the initial orders stay undelivered.
  EXPECT_GT(CountOf(s.get(), "SELECT COUNT(*) FROM new_order"), 0);
}

TEST(TpccTest, NewOrderCreatesConsistentRows) {
  SphereCluster cluster(SmallSpec());
  TpccConfig config = SmallTpcc();
  config.new_order_rollback_rate = 0.0;  // deterministic success
  ASSERT_TRUE(cluster.SetupTpcc(config).ok());
  auto s = cluster.jdbc()->Connect();
  int64_t orders_before = CountOf(s.get(), "SELECT COUNT(*) FROM orders");
  int64_t new_before = CountOf(s.get(), "SELECT COUNT(*) FROM new_order");
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    Status st = TpccTransaction(s.get(), TpccProfile::kNewOrder, config, &rng);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  EXPECT_EQ(CountOf(s.get(), "SELECT COUNT(*) FROM orders"), orders_before + 10);
  EXPECT_EQ(CountOf(s.get(), "SELECT COUNT(*) FROM new_order"), new_before + 10);
}

TEST(TpccTest, AllProfilesRunOnJdbcAndProxy) {
  SphereCluster cluster(SmallSpec());
  TpccConfig config = SmallTpcc();
  ASSERT_TRUE(cluster.SetupTpcc(config).ok());
  Rng rng(13);
  for (baselines::SqlSystem* system : {cluster.jdbc(), cluster.proxy()}) {
    auto session = system->Connect();
    for (TpccProfile profile :
         {TpccProfile::kNewOrder, TpccProfile::kPayment,
          TpccProfile::kOrderStatus, TpccProfile::kDelivery,
          TpccProfile::kStockLevel}) {
      for (int i = 0; i < 3; ++i) {
        Status st = TpccTransaction(session.get(), profile, config, &rng);
        EXPECT_TRUE(st.ok()) << system->name() << "/" << TpccProfileName(profile)
                             << ": " << st.ToString();
      }
    }
  }
}

TEST(TpccTest, MixedRunsOnMiddlewareAndRaftDb) {
  TpccConfig config = SmallTpcc();
  Rng rng(17);

  MiddlewareCluster citus({"citus-like", 0}, SmallSpec());
  ASSERT_TRUE(citus.SetupTpcc(config).ok());
  auto csession = citus.system()->Connect();
  int errors = 0;
  for (int i = 0; i < 30; ++i) {
    if (!TpccMixedTransaction(csession.get(), config, &rng).ok()) ++errors;
  }
  EXPECT_EQ(errors, 0);

  baselines::RaftDbOptions raft_options;
  raft_options.name = "tidb-like";
  raft_options.sql_layer_overhead_us = 0;
  RaftDbCluster tidb(raft_options, SmallSpec());
  ASSERT_TRUE(tidb.SetupTpcc(config).ok());
  auto tsession = tidb.system()->Connect();
  errors = 0;
  for (int i = 0; i < 30; ++i) {
    if (!TpccMixedTransaction(tsession.get(), config, &rng).ok()) ++errors;
  }
  EXPECT_EQ(errors, 0);
}

TEST(TpccTest, ConsistencyInvariantsAfterMixedLoad) {
  // TPC-C-style consistency checks (spec clause 3.3.2 analogs) after a burst
  // of mixed transactions:
  //  - every order's line count matches o_ol_cnt;
  //  - d_next_o_id - 1 equals the highest order id of the district;
  //  - new_order only references undelivered orders (o_carrier_id = 0).
  SphereCluster cluster(SmallSpec());
  TpccConfig config = SmallTpcc();
  config.new_order_rollback_rate = 0.0;
  ASSERT_TRUE(cluster.SetupTpcc(config).ok());
  auto s = cluster.jdbc()->Connect();
  Rng rng(99);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(TpccMixedTransaction(s.get(), config, &rng).ok());
  }

  // Invariant 1: order line counts.
  auto orders = s->Execute("SELECT o_key, o_ol_cnt, o_w_id FROM orders");
  ASSERT_TRUE(orders.ok());
  Row order_row;
  int checked = 0;
  while (orders->result_set->Next(&order_row)) {
    int64_t o_key = order_row[0].ToInt();
    auto lines = s->Execute(
        "SELECT COUNT(*) FROM order_line WHERE ol_w_id = ? AND "
        "ol_key BETWEEN ? AND ?",
        {order_row[2], Value(TpccOrderLineKey(o_key, 0)),
         Value(TpccOrderLineKey(o_key, 19))});
    ASSERT_TRUE(lines.ok());
    Row count_row;
    ASSERT_TRUE(lines->result_set->Next(&count_row));
    ASSERT_EQ(count_row[0], order_row[1])
        << "order " << o_key << " line count mismatch";
    ++checked;
  }
  EXPECT_GT(checked, 60);

  // Invariant 2: district next order id vs max order id.
  auto districts = s->Execute("SELECT d_key, d_w_id, d_next_o_id FROM district");
  ASSERT_TRUE(districts.ok());
  Row d;
  while (districts->result_set->Next(&d)) {
    int64_t d_key = d[0].ToInt();
    int w = static_cast<int>(d[1].ToInt());
    int dd = static_cast<int>(d_key - static_cast<int64_t>(w) * 10) + 1;
    auto max_o = s->Execute(
        "SELECT MAX(o_id) FROM orders WHERE o_w_id = ? AND o_key BETWEEN ? AND ?",
        {Value(w), Value(TpccOrderKey(w, dd, 0)),
         Value(TpccOrderKey(w, dd, 9999999))});
    ASSERT_TRUE(max_o.ok());
    Row m;
    ASSERT_TRUE(max_o->result_set->Next(&m));
    if (!m[0].is_null()) {
      EXPECT_EQ(m[0].ToInt(), d[2].ToInt() - 1)
          << "district " << d_key << " next_o_id inconsistent";
    }
  }

  // Invariant 3: new_order rows reference undelivered orders.
  auto undelivered = s->Execute(
      "SELECT COUNT(*) FROM new_order no JOIN orders o ON no.no_key = o.o_key "
      "WHERE no.no_w_id = 1 AND o.o_w_id = 1 AND o.o_carrier_id > 0");
  ASSERT_TRUE(undelivered.ok()) << undelivered.status().ToString();
  Row u;
  ASSERT_TRUE(undelivered->result_set->Next(&u));
  EXPECT_EQ(u[0], Value(0));
}

TEST(TpccTest, ProfileMixMatchesSpec) {
  Rng rng(21);
  std::map<TpccProfile, int> counts;
  for (int i = 0; i < 20000; ++i) counts[TpccDrawProfile(&rng)]++;
  EXPECT_NEAR(counts[TpccProfile::kNewOrder] / 20000.0, 0.45, 0.02);
  EXPECT_NEAR(counts[TpccProfile::kPayment] / 20000.0, 0.43, 0.02);
  EXPECT_NEAR(counts[TpccProfile::kOrderStatus] / 20000.0, 0.04, 0.01);
  EXPECT_NEAR(counts[TpccProfile::kDelivery] / 20000.0, 0.04, 0.01);
  EXPECT_NEAR(counts[TpccProfile::kStockLevel] / 20000.0, 0.04, 0.01);
}

TEST(RunnerTest, ProducesPlausibleMetrics) {
  SphereCluster cluster(SmallSpec());
  ASSERT_TRUE(cluster.SetupSysbench(SmallSysbench()).ok());
  SysbenchConfig config = SmallSysbench();
  BenchOptions options;
  options.threads = 2;
  options.duration_ms = 200;
  options.warmup_ms = 50;
  BenchResult result = RunBenchmark(
      cluster.jdbc(), "smoke", options,
      [&config](baselines::SqlSession* session, Rng* rng) {
        return SysbenchTransaction(session, SysbenchScenario::kPointSelect,
                                   config, rng);
      });
  EXPECT_GT(result.tps, 0);
  EXPECT_GT(result.operations, 0);
  EXPECT_EQ(result.errors, 0);
  EXPECT_GT(result.p99_ms, 0);
  EXPECT_GE(result.p99_ms, result.p90_ms);
  EXPECT_EQ(result.system, "SSJ-MS");
}

}  // namespace
}  // namespace sphere::benchlib
