#include <gtest/gtest.h>

#include <thread>

#include "common/metrics.h"
#include "net/packet.h"
#include "net/pool.h"
#include "net/remote.h"

namespace sphere::net {
namespace {

TEST(PacketTest, ValueRoundTrip) {
  PacketWriter w;
  w.WriteValue(Value::Null());
  w.WriteValue(Value(-42));
  w.WriteValue(Value(2.75));
  w.WriteValue(Value("hello'world"));
  PacketReader r(w.buffer());
  EXPECT_TRUE(r.ReadValue()->is_null());
  EXPECT_EQ(*r.ReadValue(), Value(-42));
  EXPECT_EQ(*r.ReadValue(), Value(2.75));
  EXPECT_EQ(*r.ReadValue(), Value("hello'world"));
  EXPECT_TRUE(r.AtEnd());
}

TEST(PacketTest, QueryRoundTrip) {
  std::string data = EncodeQuery("SELECT * FROM t WHERE id = ?", {Value(7)});
  auto req = DecodeRequest(data);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->type, PacketType::kQuery);
  EXPECT_EQ(req->sql, "SELECT * FROM t WHERE id = ?");
  ASSERT_EQ(req->params.size(), 1u);
  EXPECT_EQ(req->params[0], Value(7));
}

TEST(PacketTest, CommandRoundTrip) {
  auto req = DecodeRequest(EncodeCommand(PacketType::kCommitPrepared, "xid-9"));
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->type, PacketType::kCommitPrepared);
  EXPECT_EQ(req->arg, "xid-9");
}

TEST(PacketTest, ResultSetRoundTrip) {
  auto rs = std::make_unique<engine::VectorResultSet>(
      std::vector<std::string>{"a", "b"},
      std::vector<Row>{{Value(1), Value("x")}, {Value::Null(), Value(0.5)}});
  engine::ExecResult result = engine::ExecResult::Query(std::move(rs));
  std::string data = EncodeExecResult(&result);
  auto decoded = DecodeResponse(data);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->is_query);
  EXPECT_EQ(decoded->result_set->columns(),
            (std::vector<std::string>{"a", "b"}));
  auto rows = engine::DrainResultSet(decoded->result_set.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(1));
  EXPECT_TRUE(rows[1][0].is_null());
}

// The pooled pass-through lane charges Encoded*Size() instead of encoding;
// the latency model only stays honest if the mirrors match the real encoders
// byte for byte. Any wire-format change must keep these in lockstep.
TEST(PacketTest, SizeMirrorsMatchEncoders) {
  const std::vector<Value> values = {Value::Null(), Value(-42), Value(2.75),
                                     Value(""), Value("hello'world"),
                                     Value(std::string(300, 'x'))};
  for (const Value& v : values) {
    PacketWriter w;
    w.WriteValue(v);
    EXPECT_EQ(w.buffer().size(), EncodedValueSize(v)) << v.ToString();
  }

  EXPECT_EQ(EncodeQuery("SELECT * FROM t WHERE id = ?", {Value(7)}).size(),
            EncodedQuerySize("SELECT * FROM t WHERE id = ?", {Value(7)}));
  EXPECT_EQ(EncodeQuery("", {}).size(), EncodedQuerySize("", {}));
  EXPECT_EQ(EncodeQuery("Q", values).size(), EncodedQuerySize("Q", values));

  Status err = Status::Conflict("duplicate key on shard 3");
  EXPECT_EQ(EncodeError(err).size(), EncodedErrorSize(err));

  engine::ExecResult update = engine::ExecResult::Update(12, 99);
  auto update_size = TryEncodedExecResultSize(update);
  ASSERT_TRUE(update_size.has_value());
  EXPECT_EQ(EncodeExecResult(&update).size(), *update_size);

  auto make_query_result = [] {
    return engine::ExecResult::Query(std::make_unique<engine::VectorResultSet>(
        std::vector<std::string>{"a", "long_column_name"},
        std::vector<Row>{{Value(1), Value("x")},
                         {Value::Null(), Value(0.5)},
                         {Value(int64_t{7}), Value(std::string(100, 'y'))}}));
  };
  engine::ExecResult query = make_query_result();
  auto query_size = TryEncodedExecResultSize(query);
  ASSERT_TRUE(query_size.has_value());  // VectorResultSet is materialized
  engine::ExecResult drained = make_query_result();
  EXPECT_EQ(EncodeExecResult(&drained).size(), *query_size);
}

TEST(PacketTest, UpdateResultRoundTrip) {
  engine::ExecResult result = engine::ExecResult::Update(5, 99);
  auto decoded = DecodeResponse(EncodeExecResult(&result));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->is_query);
  EXPECT_EQ(decoded->affected_rows, 5);
  EXPECT_EQ(decoded->last_insert_id, 99);
}

TEST(PacketTest, ErrorRoundTrip) {
  auto decoded = DecodeResponse(EncodeError(Status::Conflict("dup key")));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kConflict);
  EXPECT_EQ(decoded.status().message(), "dup key");
}

TEST(PacketTest, TruncatedPacketFails) {
  std::string data = EncodeQuery("SELECT 1", {});
  data.resize(data.size() / 2);
  EXPECT_FALSE(DecodeRequest(data).ok());
}

class RemoteTest : public ::testing::Test {
 protected:
  RemoteTest() : node_("ds_0"), network_(NetworkConfig::Zero()) {
    auto s = node_.OpenSession();
    EXPECT_TRUE(s->Execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)").ok());
    EXPECT_TRUE(s->Execute("INSERT INTO t (id, v) VALUES (1, 10)").ok());
  }
  engine::StorageNode node_;
  LatencyModel network_;
};

TEST_F(RemoteTest, ExecuteOverProtocol) {
  RemoteConnection conn(&node_, &network_);
  auto r = conn.Execute("SELECT v FROM t WHERE id = ?", {Value(1)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto rows = engine::DrainResultSet(r->result_set.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(10));
  EXPECT_GE(network_.messages(), 2);  // request + response counted
}

TEST_F(RemoteTest, TransactionVerbs) {
  RemoteConnection conn(&node_, &network_);
  ASSERT_TRUE(conn.Begin().ok());
  EXPECT_TRUE(conn.in_transaction());
  ASSERT_TRUE(conn.Execute("UPDATE t SET v = 20 WHERE id = 1").ok());
  ASSERT_TRUE(conn.Rollback().ok());
  auto r = conn.Execute("SELECT v FROM t WHERE id = 1");
  auto rows = engine::DrainResultSet(r->result_set.get());
  EXPECT_EQ(rows[0][0], Value(10));
}

TEST_F(RemoteTest, XaVerbsOverProtocol) {
  RemoteConnection conn(&node_, &network_);
  ASSERT_TRUE(conn.Begin("gx-1").ok());
  ASSERT_TRUE(conn.Execute("UPDATE t SET v = 30 WHERE id = 1").ok());
  ASSERT_TRUE(conn.PrepareXa().ok());
  ASSERT_TRUE(conn.CommitPrepared("gx-1").ok());
  auto r = conn.Execute("SELECT v FROM t WHERE id = 1");
  auto rows = engine::DrainResultSet(r->result_set.get());
  EXPECT_EQ(rows[0][0], Value(30));
}

TEST_F(RemoteTest, ErrorPropagates) {
  RemoteConnection conn(&node_, &network_);
  auto r = conn.Execute("SELECT * FROM nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(RemoteTest, LatencyIsApplied) {
  LatencyModel slow(NetworkConfig{2000, 0});  // 2ms per hop
  RemoteConnection conn(&node_, &slow);
  Stopwatch sw;
  ASSERT_TRUE(conn.Execute("SELECT v FROM t WHERE id = 1").ok());
  EXPECT_GE(sw.ElapsedMicros(), 3500);  // ~2 hops
}

TEST_F(RemoteTest, PoolAcquireRelease) {
  ConnectionPool pool(&node_, &network_, 2);
  EXPECT_EQ(pool.available(), 2);
  {
    auto lease = pool.Acquire();
    ASSERT_TRUE(lease.valid());
    EXPECT_EQ(pool.available(), 1);
  }
  EXPECT_EQ(pool.available(), 2);
}

TEST_F(RemoteTest, PoolAcquireManyAtomic) {
  ConnectionPool pool(&node_, &network_, 4);
  auto leases = pool.AcquireMany(3);
  EXPECT_EQ(leases.size(), 3u);
  EXPECT_EQ(pool.available(), 1);
  leases.clear();
  EXPECT_EQ(pool.available(), 4);
  EXPECT_EQ(pool.peak_in_use(), 3);
}

TEST_F(RemoteTest, PoolAcquireManyClampsToMax) {
  ConnectionPool pool(&node_, &network_, 2);
  auto leases = pool.AcquireMany(10);
  EXPECT_EQ(leases.size(), 2u);
}

TEST_F(RemoteTest, PoolBlocksUntilReleased) {
  ConnectionPool pool(&node_, &network_, 1);
  auto lease = pool.Acquire();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto l2 = pool.Acquire();
    acquired = true;
  });
  SleepMicros(20000);
  EXPECT_FALSE(acquired.load());
  lease.Release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST_F(RemoteTest, DataSourcePublishesPoolGauges) {
  auto gauge = [](const std::string& name) -> int64_t {
    for (const metrics::Sample& s :
         metrics::Registry::Instance().Snapshot(name)) {
      if (s.name == name) return s.value;
    }
    return -999;
  };
  {
    DataSource source("probe_ds", &node_, &network_, /*pool_size=*/4);
    EXPECT_EQ(gauge("conn_pool.probe_ds.in_use"), 0);
    EXPECT_EQ(gauge("conn_pool.probe_ds.available"), 4);
    {
      auto leases = source.pool().AcquireMany(3);
      EXPECT_EQ(gauge("conn_pool.probe_ds.in_use"), 3);
      EXPECT_EQ(gauge("conn_pool.probe_ds.available"), 1);
    }
    EXPECT_EQ(gauge("conn_pool.probe_ds.in_use"), 0);
    EXPECT_EQ(gauge("conn_pool.probe_ds.peak_in_use"), 3);
  }
  // The destructor retracts the probes.
  EXPECT_EQ(gauge("conn_pool.probe_ds.in_use"), -999);
}

TEST_F(RemoteTest, ConcurrentAcquireManyNoDeadlock) {
  // The paper's deadlock scenario: two queries each needing 2 connections
  // from a pool of 2. Atomic batch acquisition must serialize them.
  ConnectionPool pool(&node_, &network_, 2);
  std::atomic<int> completed{0};
  auto worker = [&] {
    for (int i = 0; i < 50; ++i) {
      auto leases = pool.AcquireMany(2);
      EXPECT_EQ(leases.size(), 2u);
      leases.clear();
    }
    completed.fetch_add(1);
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(completed.load(), 2);
}

}  // namespace
}  // namespace sphere::net
