#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/dialect.h"

namespace sphere::sql {
namespace {

StatementPtr MustParse(std::string_view s,
                       const Dialect& d = Dialect::MySQL()) {
  auto r = ParseSQL(s, d);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << s;
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = MustParse("SELECT id, name FROM t_user");
  ASSERT_EQ(stmt->kind(), StatementKind::kSelect);
  const auto& sel = static_cast<const SelectStatement&>(*stmt);
  EXPECT_EQ(sel.items.size(), 2u);
  ASSERT_EQ(sel.from.size(), 1u);
  EXPECT_EQ(sel.from[0].name, "t_user");
}

TEST(ParserTest, SelectStarWithWhere) {
  auto stmt = MustParse("SELECT * FROM t_user WHERE uid = 5 AND name = 'bob'");
  const auto& sel = static_cast<const SelectStatement&>(*stmt);
  EXPECT_TRUE(sel.items[0].is_star);
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->kind(), ExprKind::kBinary);
}

TEST(ParserTest, WhereInAndBetween) {
  auto stmt = MustParse(
      "SELECT * FROM t WHERE uid IN (1, 2, 3) AND score BETWEEN 10 AND 20");
  const auto& sel = static_cast<const SelectStatement&>(*stmt);
  ASSERT_NE(sel.where, nullptr);
}

TEST(ParserTest, JoinWithOn) {
  auto stmt = MustParse(
      "SELECT * FROM t_user u JOIN t_order o ON u.uid = o.uid WHERE u.uid IN (1, 2)");
  const auto& sel = static_cast<const SelectStatement&>(*stmt);
  ASSERT_EQ(sel.joins.size(), 1u);
  EXPECT_EQ(sel.joins[0].table.name, "t_order");
  EXPECT_EQ(sel.joins[0].table.alias, "o");
  ASSERT_NE(sel.joins[0].on, nullptr);
  EXPECT_EQ(sel.AllTables().size(), 2u);
}

TEST(ParserTest, LeftJoin) {
  auto stmt = MustParse("SELECT * FROM a LEFT JOIN b ON a.x = b.x");
  const auto& sel = static_cast<const SelectStatement&>(*stmt);
  ASSERT_EQ(sel.joins.size(), 1u);
  EXPECT_EQ(sel.joins[0].type, JoinClause::Type::kLeft);
}

TEST(ParserTest, GroupByHavingOrderBy) {
  auto stmt = MustParse(
      "SELECT name, SUM(score) total FROM t_score GROUP BY name "
      "HAVING SUM(score) > 10 ORDER BY name DESC");
  const auto& sel = static_cast<const SelectStatement&>(*stmt);
  EXPECT_EQ(sel.group_by.size(), 1u);
  ASSERT_NE(sel.having, nullptr);
  ASSERT_EQ(sel.order_by.size(), 1u);
  EXPECT_TRUE(sel.order_by[0].desc);
  EXPECT_TRUE(sel.HasAggregation());
  EXPECT_EQ(sel.items[1].alias, "total");
}

TEST(ParserTest, MySQLCommaLimit) {
  auto stmt = MustParse("SELECT * FROM t LIMIT 10, 5");
  const auto& sel = static_cast<const SelectStatement&>(*stmt);
  ASSERT_TRUE(sel.limit.has_value());
  EXPECT_EQ(sel.limit->offset, 10);
  EXPECT_EQ(sel.limit->count, 5);
}

TEST(ParserTest, PostgresLimitOffset) {
  auto stmt = MustParse("SELECT * FROM t LIMIT 5 OFFSET 10", Dialect::PostgreSQL());
  const auto& sel = static_cast<const SelectStatement&>(*stmt);
  ASSERT_TRUE(sel.limit.has_value());
  EXPECT_EQ(sel.limit->offset, 10);
  EXPECT_EQ(sel.limit->count, 5);
}

TEST(ParserTest, CommaLimitRejectedInPostgres) {
  auto r = ParseSQL("SELECT * FROM t LIMIT 10, 5", Dialect::PostgreSQL());
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, SelectForUpdate) {
  auto stmt = MustParse("SELECT * FROM t WHERE id = 1 FOR UPDATE");
  EXPECT_TRUE(static_cast<const SelectStatement&>(*stmt).for_update);
}

TEST(ParserTest, DistinctAndCountStar) {
  auto stmt = MustParse("SELECT DISTINCT a, COUNT(*) FROM t");
  const auto& sel = static_cast<const SelectStatement&>(*stmt);
  EXPECT_TRUE(sel.distinct);
  const auto* f = static_cast<const FuncCallExpr*>(sel.items[1].expr.get());
  EXPECT_TRUE(f->star);
  EXPECT_TRUE(f->IsAggregate());
}

TEST(ParserTest, CountDistinctColumn) {
  auto stmt = MustParse("SELECT COUNT(DISTINCT s_i_id) FROM stock");
  const auto& sel = static_cast<const SelectStatement&>(*stmt);
  const auto* f = static_cast<const FuncCallExpr*>(sel.items[0].expr.get());
  EXPECT_TRUE(f->distinct);
  EXPECT_EQ(f->args.size(), 1u);
}

TEST(ParserTest, MultiRowInsert) {
  auto stmt = MustParse(
      "INSERT INTO t_order (oid, uid) VALUES (1, 10), (2, 20), (3, 30)");
  ASSERT_EQ(stmt->kind(), StatementKind::kInsert);
  const auto& ins = static_cast<const InsertStatement&>(*stmt);
  EXPECT_EQ(ins.table.name, "t_order");
  EXPECT_EQ(ins.columns.size(), 2u);
  EXPECT_EQ(ins.rows.size(), 3u);
}

TEST(ParserTest, InsertWithParams) {
  Parser p;
  auto r = p.Parse("INSERT INTO t (a, b) VALUES (?, ?)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(p.param_count(), 2);
}

TEST(ParserTest, Update) {
  auto stmt = MustParse("UPDATE t_user SET name = 'x', score = score + 1 WHERE uid = 3");
  ASSERT_EQ(stmt->kind(), StatementKind::kUpdate);
  const auto& up = static_cast<const UpdateStatement&>(*stmt);
  EXPECT_EQ(up.assignments.size(), 2u);
  ASSERT_NE(up.where, nullptr);
}

TEST(ParserTest, Delete) {
  auto stmt = MustParse("DELETE FROM t_user WHERE uid = 9");
  ASSERT_EQ(stmt->kind(), StatementKind::kDelete);
}

TEST(ParserTest, CreateTableWithTypesAndPk) {
  auto stmt = MustParse(
      "CREATE TABLE t (id BIGINT PRIMARY KEY, k INT NOT NULL, c VARCHAR(120), "
      "pad CHAR(60), score DECIMAL(10, 2))");
  ASSERT_EQ(stmt->kind(), StatementKind::kCreateTable);
  const auto& ct = static_cast<const CreateTableStatement&>(*stmt);
  ASSERT_EQ(ct.columns.size(), 5u);
  EXPECT_TRUE(ct.columns[0].primary_key);
  EXPECT_EQ(ct.columns[0].type, ColumnType::kInt);
  EXPECT_TRUE(ct.columns[1].not_null);
  EXPECT_EQ(ct.columns[2].type, ColumnType::kString);
  EXPECT_EQ(ct.columns[4].type, ColumnType::kDouble);
}

TEST(ParserTest, CreateTableTableLevelPk) {
  auto stmt = MustParse("CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))");
  const auto& ct = static_cast<const CreateTableStatement&>(*stmt);
  EXPECT_TRUE(ct.columns[0].primary_key);
}

TEST(ParserTest, TransactionControl) {
  EXPECT_EQ(MustParse("BEGIN")->kind(), StatementKind::kBegin);
  EXPECT_EQ(MustParse("START TRANSACTION")->kind(), StatementKind::kBegin);
  EXPECT_EQ(MustParse("COMMIT")->kind(), StatementKind::kCommit);
  EXPECT_EQ(MustParse("ROLLBACK")->kind(), StatementKind::kRollback);
}

TEST(ParserTest, SetVariable) {
  auto stmt = MustParse("SET VARIABLE transaction_type = XA");
  const auto& set = static_cast<const SetStatement&>(*stmt);
  EXPECT_EQ(set.name, "transaction_type");
  EXPECT_EQ(set.value, Value("XA"));
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseSQL("SELECT FROM").ok());
  EXPECT_FALSE(ParseSQL("INSERT INTO t VALUES").ok());
  EXPECT_FALSE(ParseSQL("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSQL("SELECT * FROM t trailing garbage ( )").ok());
  EXPECT_FALSE(ParseSQL("").ok());
}

TEST(ParserTest, RoundTripThroughToSQL) {
  const char* queries[] = {
      "SELECT a, b FROM t WHERE a = 1 AND b IN (2, 3) ORDER BY a DESC LIMIT 5",
      "SELECT name, SUM(score) AS s FROM t GROUP BY name HAVING SUM(score) > 2",
      "INSERT INTO t (a, b) VALUES (1, 'x')",
      "UPDATE t SET a = 2 WHERE b = 'y'",
      "DELETE FROM t WHERE a BETWEEN 1 AND 9",
  };
  for (const char* q : queries) {
    auto stmt = MustParse(q);
    std::string sql1 = stmt->ToSQL(Dialect::MySQL());
    auto stmt2 = MustParse(sql1);
    std::string sql2 = stmt2->ToSQL(Dialect::MySQL());
    EXPECT_EQ(sql1, sql2) << "not a fixed point: " << q;
  }
}

TEST(ParserTest, CloneIsDeep) {
  auto stmt = MustParse("SELECT a FROM t WHERE a < 10 ORDER BY a");
  auto clone = stmt->Clone();
  EXPECT_EQ(stmt->ToSQL(Dialect::MySQL()), clone->ToSQL(Dialect::MySQL()));
  auto* sel = static_cast<SelectStatement*>(clone.get());
  sel->from[0].name = "t_changed";
  EXPECT_NE(stmt->ToSQL(Dialect::MySQL()), clone->ToSQL(Dialect::MySQL()));
}

TEST(ParserTest, DialectQuoting) {
  auto stmt = MustParse("SELECT `order` FROM `select`");
  std::string my = stmt->ToSQL(Dialect::MySQL());
  std::string pg = stmt->ToSQL(Dialect::PostgreSQL());
  EXPECT_NE(my.find('`'), std::string::npos);
  EXPECT_NE(pg.find('"'), std::string::npos);
}

}  // namespace
}  // namespace sphere::sql
