#include "sql/condition.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace sphere::sql {
namespace {

const Expr* WhereOf(const StatementPtr& stmt) {
  return static_cast<const SelectStatement*>(stmt.get())->where.get();
}

StatementPtr MustParse(std::string_view s) {
  auto r = ParseSQL(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ConditionTest, EqualityExtracted) {
  auto stmt = MustParse("SELECT * FROM t WHERE uid = 7");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_EQ(groups[0].size(), 1u);
  EXPECT_EQ(groups[0][0].column, "uid");
  EXPECT_EQ(groups[0][0].kind, ColumnCondition::Kind::kEqual);
  EXPECT_EQ(groups[0][0].values[0], Value(7));
}

TEST(ConditionTest, ReversedOperandsNormalized) {
  auto stmt = MustParse("SELECT * FROM t WHERE 7 < uid");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  ASSERT_EQ(groups[0].size(), 1u);
  const auto& c = groups[0][0];
  EXPECT_EQ(c.kind, ColumnCondition::Kind::kRange);
  ASSERT_TRUE(c.low.has_value());
  EXPECT_EQ(*c.low, Value(7));
  EXPECT_FALSE(c.low_inclusive);
}

TEST(ConditionTest, InListExtracted) {
  auto stmt = MustParse("SELECT * FROM t WHERE uid IN (1, 2, 3)");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  ASSERT_EQ(groups[0].size(), 1u);
  EXPECT_EQ(groups[0][0].kind, ColumnCondition::Kind::kIn);
  EXPECT_EQ(groups[0][0].values.size(), 3u);
}

TEST(ConditionTest, BetweenExtracted) {
  auto stmt = MustParse("SELECT * FROM t WHERE uid BETWEEN 5 AND 9");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  const auto& c = groups[0][0];
  EXPECT_EQ(c.kind, ColumnCondition::Kind::kRange);
  EXPECT_EQ(*c.low, Value(5));
  EXPECT_EQ(*c.high, Value(9));
  EXPECT_TRUE(c.low_inclusive);
  EXPECT_TRUE(c.high_inclusive);
}

TEST(ConditionTest, AndCombinesIntoOneGroup) {
  auto stmt = MustParse("SELECT * FROM t WHERE uid = 1 AND k = 2");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 2u);
}

TEST(ConditionTest, OrSplitsIntoGroups) {
  auto stmt = MustParse("SELECT * FROM t WHERE uid = 1 OR uid = 2");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0][0].values[0], Value(1));
  EXPECT_EQ(groups[1][0].values[0], Value(2));
}

TEST(ConditionTest, OrOfAndsCrossProduct) {
  auto stmt = MustParse(
      "SELECT * FROM t WHERE (uid = 1 OR uid = 2) AND (k = 3 OR k = 4)");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  EXPECT_EQ(groups.size(), 4u);
}

TEST(ConditionTest, ParamsResolved) {
  auto stmt = MustParse("SELECT * FROM t WHERE uid = ?");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {Value(99)});
  ASSERT_EQ(groups[0].size(), 1u);
  EXPECT_EQ(groups[0][0].values[0], Value(99));
}

TEST(ConditionTest, MissingParamYieldsNoCondition) {
  auto stmt = MustParse("SELECT * FROM t WHERE uid = ?");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(groups[0].empty());
}

TEST(ConditionTest, QualifierRetained) {
  auto stmt = MustParse("SELECT * FROM t_user u WHERE u.uid = 3");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  EXPECT_EQ(groups[0][0].table, "u");
}

TEST(ConditionTest, NonConstComparisonIgnored) {
  auto stmt = MustParse("SELECT * FROM a, b WHERE a.x = b.y");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(groups[0].empty());
}

TEST(ConditionTest, NegatedFormsIgnored) {
  auto stmt = MustParse(
      "SELECT * FROM t WHERE uid NOT IN (1, 2) AND k NOT BETWEEN 3 AND 4");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(groups[0].empty());
}

TEST(ConditionTest, NullWhereGivesNoGroups) {
  EXPECT_TRUE(ExtractConditionGroups(nullptr, {}).empty());
}

TEST(ConditionTest, InsertValuesExtracted) {
  auto stmt = MustParse("INSERT INTO t (a, b) VALUES (1, 'x'), (?, 'y')");
  const auto& ins = static_cast<const InsertStatement&>(*stmt);
  auto vals = ExtractInsertValues(ins, "a", {Value(5)});
  ASSERT_TRUE(vals.has_value());
  ASSERT_EQ(vals->size(), 2u);
  EXPECT_EQ((*vals)[0], Value(1));
  EXPECT_EQ((*vals)[1], Value(5));
  EXPECT_FALSE(ExtractInsertValues(ins, "missing", {}).has_value());
}

TEST(ConditionTest, NegativeLiteral) {
  auto stmt = MustParse("SELECT * FROM t WHERE uid = -4");
  auto groups = ExtractConditionGroups(WhereOf(stmt), {});
  ASSERT_EQ(groups[0].size(), 1u);
  EXPECT_EQ(groups[0][0].values[0], Value(-4));
}

}  // namespace
}  // namespace sphere::sql
