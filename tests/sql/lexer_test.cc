#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace sphere::sql {
namespace {

std::vector<Token> Lex(std::string_view s) {
  Lexer lexer(s);
  auto r = lexer.Tokenize();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(LexerTest, BasicSelect) {
  auto toks = Lex("SELECT * FROM t_user WHERE uid = 42");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_TRUE(toks[0].IsKeyword("select"));
  EXPECT_TRUE(toks[1].IsOperator("*"));
  EXPECT_TRUE(toks[2].IsKeyword("FROM"));
  EXPECT_EQ(toks[3].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[3].text, "t_user");
  EXPECT_EQ(toks[7].type, TokenType::kIntLiteral);
  EXPECT_EQ(toks[7].int_value, 42);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto toks = Lex("'it''s'");
  EXPECT_EQ(toks[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(toks[0].text, "it's");
}

TEST(LexerTest, QuotedIdentifiersBothDialects) {
  auto mysql = Lex("`order`");
  EXPECT_EQ(mysql[0].type, TokenType::kIdentifier);
  EXPECT_EQ(mysql[0].text, "order");
  auto pg = Lex("\"order\"");
  EXPECT_EQ(pg[0].type, TokenType::kIdentifier);
  EXPECT_EQ(pg[0].text, "order");
}

TEST(LexerTest, NumericLiterals) {
  auto toks = Lex("1 2.5 1e3 .5");
  EXPECT_EQ(toks[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(toks[1].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(toks[1].double_value, 2.5);
  EXPECT_EQ(toks[2].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(toks[2].double_value, 1000.0);
  EXPECT_EQ(toks[3].type, TokenType::kDoubleLiteral);
}

TEST(LexerTest, TwoCharOperators) {
  auto toks = Lex("a <= b >= c <> d != e");
  EXPECT_TRUE(toks[1].IsOperator("<="));
  EXPECT_TRUE(toks[3].IsOperator(">="));
  EXPECT_TRUE(toks[5].IsOperator("<>"));
  EXPECT_TRUE(toks[7].IsOperator("!="));
}

TEST(LexerTest, Params) {
  auto toks = Lex("uid = ? AND name = ?");
  EXPECT_EQ(toks[2].type, TokenType::kParam);
  EXPECT_EQ(toks[6].type, TokenType::kParam);
}

TEST(LexerTest, Comments) {
  auto toks = Lex("SELECT 1 -- trailing\n/* block */ + 2");
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_EQ(toks[1].int_value, 1);
  EXPECT_TRUE(toks[2].IsOperator("+"));
  EXPECT_EQ(toks[3].int_value, 2);
}

TEST(LexerTest, UnterminatedStringFails) {
  Lexer lexer("'oops");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, UnterminatedCommentFails) {
  Lexer lexer("SELECT /* never closed");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, UnknownCharacterFails) {
  Lexer lexer("SELECT @");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, EofTokenAlwaysLast) {
  auto toks = Lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].type, TokenType::kEof);
}

}  // namespace
}  // namespace sphere::sql
