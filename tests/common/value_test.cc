#include "common/value.h"

#include <gtest/gtest.h>

#include "common/schema.h"

namespace sphere {
namespace {

TEST(ValueTest, NullOrdering) {
  EXPECT_LT(Value::Null(), Value(0));
  EXPECT_LT(Value::Null(), Value("a"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(1), Value(1.0));
  EXPECT_LT(Value(1), Value(1.5));
  EXPECT_GT(Value(2.5), Value(2));
}

TEST(ValueTest, NumericsSortBeforeStrings) {
  EXPECT_LT(Value(99), Value("1"));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(7).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value("k").Hash(), Value(std::string("k")).Hash());
  EXPECT_NE(Value(1).Hash(), Value(2).Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(ValueTest, SQLLiteralQuotesAndEscapes) {
  EXPECT_EQ(Value(3).ToSQLLiteral(), "3");
  EXPECT_EQ(Value("a'b").ToSQLLiteral(), "'a''b'");
  EXPECT_EQ(Value::Null().ToSQLLiteral(), "NULL");
}

TEST(ValueTest, CastTo) {
  EXPECT_EQ(Value("42").CastTo(ColumnType::kInt), Value(42));
  EXPECT_EQ(Value(3).CastTo(ColumnType::kDouble), Value(3.0));
  EXPECT_EQ(Value(7).CastTo(ColumnType::kString), Value("7"));
  EXPECT_TRUE(Value::Null().CastTo(ColumnType::kInt).is_null());
}

TEST(ValueTest, ToDoubleAndToInt) {
  EXPECT_DOUBLE_EQ(Value("2.5").ToDouble(), 2.5);
  EXPECT_EQ(Value(9.9).ToInt(), 9);
  EXPECT_EQ(Value("123").ToInt(), 123);
}

TEST(RowTest, HashRowOrderSensitive) {
  Row a = {Value(1), Value("x")};
  Row b = {Value("x"), Value(1)};
  EXPECT_NE(HashRow(a), HashRow(b));
  EXPECT_EQ(HashRow(a), HashRow({Value(1), Value("x")}));
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  Schema s({Column("UID", ColumnType::kInt, true), Column("name", ColumnType::kString)});
  EXPECT_EQ(s.IndexOf("uid"), 0);
  EXPECT_EQ(s.IndexOf("NAME"), 1);
  EXPECT_EQ(s.IndexOf("missing"), -1);
  EXPECT_EQ(s.PrimaryKeyIndex(), 0);
}

TEST(SchemaTest, EqualityIgnoresCaseAndFlags) {
  Schema a({Column("id", ColumnType::kInt, true)});
  Schema b({Column("ID", ColumnType::kInt, false)});
  EXPECT_TRUE(a == b);
  Schema c({Column("id", ColumnType::kString)});
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace sphere
