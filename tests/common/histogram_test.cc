#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace sphere {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.AvgMillis(), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(99), 0.0);
}

TEST(HistogramTest, AverageAndCount) {
  Histogram h;
  h.Record(1000);
  h.Record(3000);
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.AvgMillis(), 2.0);
  EXPECT_EQ(h.min_micros(), 1000);
  EXPECT_EQ(h.max_micros(), 3000);
}

TEST(HistogramTest, PercentileApproximation) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * 100);  // 0.1ms .. 100ms
  double p50 = h.PercentileMillis(50);
  double p99 = h.PercentileMillis(99);
  // Buckets are ~6% wide; accept 15% relative error.
  EXPECT_NEAR(p50, 50.0, 50.0 * 0.15);
  EXPECT_NEAR(p99, 99.0, 99.0 * 0.15);
  EXPECT_LT(p50, p99);
}

TEST(HistogramTest, PercentileOfEmptyIsZeroForAllP) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.PercentileMillis(0), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(50), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(100), 0.0);
}

TEST(HistogramTest, SingleSampleResolvesExactly) {
  // The bucket is ~6% wide, but clamping its range to [min, max] collapses a
  // single-sample histogram to the exact observation at every percentile.
  Histogram h;
  h.Record(2500);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(0), 2.5);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(50), 2.5);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(99.9), 2.5);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(100), 2.5);
}

TEST(HistogramTest, PercentileBoundsClampToObservedExtremes) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000 + i * 10);  // 1.00ms .. 1.99ms
  EXPECT_DOUBLE_EQ(h.PercentileMillis(0), 1.0);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(-5), 1.0);    // out-of-range p clamps
  EXPECT_DOUBLE_EQ(h.PercentileMillis(100), 1.99);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(150), 1.99);
  // Interior percentiles interpolate within [min, max], never outside.
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0}) {
    double v = h.PercentileMillis(p);
    EXPECT_GE(v, 1.0) << "p=" << p;
    EXPECT_LE(v, 1.99) << "p=" << p;
  }
}

TEST(HistogramTest, CrossBucketInterpolationIsMonotonic) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * 100);  // spans many buckets
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    double v = h.PercentileMillis(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(100);
  b.Record(10000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min_micros(), 100);
  EXPECT_EQ(a.max_micros(), 10000);
}

TEST(HistogramTest, MergePreservesCountSumMinMax) {
  Histogram a, b;
  a.Record(100);
  a.Record(900);
  b.Record(50);
  b.Record(10000);
  double expected_sum = a.sum_micros() + b.sum_micros();
  a.Merge(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_DOUBLE_EQ(a.sum_micros(), expected_sum);
  EXPECT_EQ(a.min_micros(), 50);
  EXPECT_EQ(a.max_micros(), 10000);
  // The source histogram is untouched.
  EXPECT_EQ(b.count(), 2);
  EXPECT_EQ(b.min_micros(), 50);

  // Merging an empty histogram must not disturb the extremes (its sentinel
  // min/max cannot leak in).
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(a.min_micros(), 50);
  EXPECT_EQ(a.max_micros(), 10000);

  // Self-merge is a no-op, not a doubling.
  a.Merge(a);
  EXPECT_EQ(a.count(), 4);
}

TEST(HistogramTest, ConcurrentRecord) {
  Histogram h;
  ThreadPool pool(4);
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&h] {
      for (int i = 0; i < 10000; ++i) h.Record(500);
    });
  }
  pool.Wait();
  EXPECT_EQ(h.count(), 40000);
}

TEST(RngTest, DeterministicWithSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(RngTest, NURandInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NURand(255, 1, 3000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(HashTest, Crc32KnownVector) {
  // CRC32 of "123456789" is 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(HashTest, Hash64Avalanche) {
  EXPECT_NE(Hash64(1), Hash64(2));
  EXPECT_EQ(Hash64(123), Hash64(123));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> n{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&n] { n.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(n.load(), 100);
}

TEST(LatchTest, WaitsForCountdown) {
  Latch latch(2);
  std::atomic<bool> done{false};
  std::thread t([&] {
    latch.Wait();
    done = true;
  });
  EXPECT_FALSE(done.load());
  latch.CountDown();
  latch.CountDown();
  t.join();
  EXPECT_TRUE(done.load());
}

}  // namespace
}  // namespace sphere
