#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace sphere {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.AvgMillis(), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileMillis(99), 0.0);
}

TEST(HistogramTest, AverageAndCount) {
  Histogram h;
  h.Record(1000);
  h.Record(3000);
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.AvgMillis(), 2.0);
  EXPECT_EQ(h.min_micros(), 1000);
  EXPECT_EQ(h.max_micros(), 3000);
}

TEST(HistogramTest, PercentileApproximation) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * 100);  // 0.1ms .. 100ms
  double p50 = h.PercentileMillis(50);
  double p99 = h.PercentileMillis(99);
  // Buckets are ~6% wide; accept 15% relative error.
  EXPECT_NEAR(p50, 50.0, 50.0 * 0.15);
  EXPECT_NEAR(p99, 99.0, 99.0 * 0.15);
  EXPECT_LT(p50, p99);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(100);
  b.Record(10000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min_micros(), 100);
  EXPECT_EQ(a.max_micros(), 10000);
}

TEST(HistogramTest, ConcurrentRecord) {
  Histogram h;
  ThreadPool pool(4);
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&h] {
      for (int i = 0; i < 10000; ++i) h.Record(500);
    });
  }
  pool.Wait();
  EXPECT_EQ(h.count(), 40000);
}

TEST(RngTest, DeterministicWithSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(RngTest, NURandInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NURand(255, 1, 3000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(HashTest, Crc32KnownVector) {
  // CRC32 of "123456789" is 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(HashTest, Hash64Avalanche) {
  EXPECT_NE(Hash64(1), Hash64(2));
  EXPECT_EQ(Hash64(123), Hash64(123));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> n{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&n] { n.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(n.load(), 100);
}

TEST(LatchTest, WaitsForCountdown) {
  Latch latch(2);
  std::atomic<bool> done{false};
  std::thread t([&] {
    latch.Wait();
    done = true;
  });
  EXPECT_FALSE(done.load());
  latch.CountDown();
  latch.CountDown();
  t.join();
  EXPECT_TRUE(done.load());
}

}  // namespace
}  // namespace sphere
