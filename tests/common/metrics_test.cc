#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace sphere::metrics {
namespace {

/// Finds the snapshot row for `name`, or nullptr.
const Sample* Find(const std::vector<Sample>& samples, const std::string& name) {
  for (const Sample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.value(), 6);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  // The striping makes concurrent increments contention-free; the sum must
  // still be exact once all writers are done. Valuable under TSan.
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  pool.Wait();
  EXPECT_EQ(c.value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(RegistryTest, GetOrCreateReturnsStablePointers) {
  auto& registry = Registry::Instance();
  Counter* a = registry.GetCounter("t.registry.stable");
  Counter* b = registry.GetCounter("t.registry.stable");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("t.registry.stable.gauge");
  Gauge* g2 = registry.GetGauge("t.registry.stable.gauge");
  EXPECT_EQ(g1, g2);
  // Same name, different kind: independent entries.
  EXPECT_NE(static_cast<void*>(registry.GetCounter("t.registry.dual")),
            static_cast<void*>(registry.GetGauge("t.registry.dual")));
}

TEST(RegistryTest, SnapshotReportsOwnedMetrics) {
  auto& registry = Registry::Instance();
  registry.GetCounter("t.snapshot.counter")->Add(42);
  registry.GetGauge("t.snapshot.gauge")->Set(-7);
  Histogram* h = registry.GetHistogram("t.snapshot.histogram");
  h->Record(1000);
  h->Record(3000);

  std::vector<Sample> samples = registry.Snapshot("t.snapshot.");
  const Sample* c = Find(samples, "t.snapshot.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::kCounter);
  EXPECT_EQ(c->value, 42);

  const Sample* g = Find(samples, "t.snapshot.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, MetricKind::kGauge);
  EXPECT_EQ(g->value, -7);

  const Sample* hs = Find(samples, "t.snapshot.histogram");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->kind, MetricKind::kHistogram);
  EXPECT_EQ(hs->value, 2);  // count
  EXPECT_DOUBLE_EQ(hs->avg_ms, 2.0);
  EXPECT_DOUBLE_EQ(hs->max_ms, 3.0);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  auto& registry = Registry::Instance();
  registry.GetCounter("t.sorted.b");
  registry.GetCounter("t.sorted.a");
  registry.GetCounter("t.sorted.c");
  std::vector<Sample> samples = registry.Snapshot("t.sorted.");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "t.sorted.a");
  EXPECT_EQ(samples[1].name, "t.sorted.b");
  EXPECT_EQ(samples[2].name, "t.sorted.c");
}

TEST(RegistryTest, ProbesPublishOverwriteAndUnpublish) {
  auto& registry = Registry::Instance();
  int owner_a = 0, owner_b = 0;
  registry.PublishProbe("t.probe.x", &owner_a, [] { return int64_t{11}; });

  std::vector<Sample> samples = registry.Snapshot("t.probe.x");
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].value, 11);
  EXPECT_EQ(samples[0].kind, MetricKind::kGauge);

  // Re-publish under a new owner: last wins.
  registry.PublishProbe("t.probe.x", &owner_b, [] { return int64_t{22}; });
  samples = registry.Snapshot("t.probe.x");
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].value, 22);

  // The stale owner cannot retract the entry it no longer owns.
  registry.UnpublishProbe("t.probe.x", &owner_a);
  EXPECT_EQ(registry.Snapshot("t.probe.x").size(), 1u);
  registry.UnpublishProbe("t.probe.x", &owner_b);
  EXPECT_TRUE(registry.Snapshot("t.probe.x").empty());
}

TEST(RegistryTest, UnpublishProbesRemovesAllOfOwner) {
  auto& registry = Registry::Instance();
  int owner = 0, other = 0;
  registry.PublishProbe("t.owner.a", &owner, [] { return int64_t{1}; });
  registry.PublishProbe("t.owner.b", &owner, [] { return int64_t{2}; });
  registry.PublishProbe("t.owner.keep", &other, [] { return int64_t{3}; });
  registry.UnpublishProbes(&owner);
  EXPECT_TRUE(registry.Snapshot("t.owner.a").empty());
  EXPECT_TRUE(registry.Snapshot("t.owner.b").empty());
  EXPECT_EQ(registry.Snapshot("t.owner.keep").size(), 1u);
  registry.UnpublishProbes(&other);
}

TEST(RegistryTest, MatchesPattern) {
  // Empty matches everything.
  EXPECT_TRUE(Registry::MatchesPattern("anything", ""));
  // No wildcard: substring.
  EXPECT_TRUE(Registry::MatchesPattern("statement_cache.hits", "cache"));
  EXPECT_FALSE(Registry::MatchesPattern("statement_cache.hits", "pool"));
  // SQL-LIKE % wildcards.
  EXPECT_TRUE(Registry::MatchesPattern("node.ds_0.parse_cache.hits",
                                       "node.%.hits"));
  EXPECT_FALSE(Registry::MatchesPattern("node.ds_0.parse_cache.hits",
                                        "node.%.misses"));
  EXPECT_TRUE(Registry::MatchesPattern("stage.route.latency", "stage.%"));
  EXPECT_TRUE(Registry::MatchesPattern("stage.route.latency", "%latency"));
  EXPECT_FALSE(Registry::MatchesPattern("stage.route.latency", "latency%"));
  // Backtracking across multiple wildcards.
  EXPECT_TRUE(Registry::MatchesPattern("a.b.c.b.d", "a%b%d"));
  EXPECT_FALSE(Registry::MatchesPattern("a.b.c", "a%x%c"));
  EXPECT_TRUE(Registry::MatchesPattern("abc", "%"));
}

TEST(RegistryTest, ResetForTestZeroesOwnedMetrics) {
  auto& registry = Registry::Instance();
  Counter* c = registry.GetCounter("t.reset.counter");
  c->Add(9);
  registry.ResetForTest();
  EXPECT_EQ(c->value(), 0);           // pointer stays valid
  EXPECT_EQ(registry.GetCounter("t.reset.counter"), c);
}

TEST(RegistryTest, ConcurrentGetAndRecordStress) {
  // Mixed get-or-create and recording from many threads; exercises the
  // registry mutex against the lock-free record path (run under TSan).
  auto& registry = Registry::Instance();
  constexpr int kThreads = 8;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&registry, t] {
      for (int i = 0; i < 2000; ++i) {
        registry.GetCounter("t.stress.shared")->Increment();
        registry.GetCounter("t.stress." + std::to_string(t))->Increment();
        if (i % 64 == 0) (void)registry.Snapshot("t.stress.");
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(registry.GetCounter("t.stress.shared")->value(), kThreads * 2000);
}

}  // namespace
}  // namespace sphere::metrics
