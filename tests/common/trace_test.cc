#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace sphere::trace {
namespace {

/// Collects completed traces' structure for assertions.
class RecordingSink : public TraceSink {
 public:
  void OnTraceComplete(const Trace& trace) override {
    completed_.fetch_add(1, std::memory_order_relaxed);
    last_span_count_.store(trace.span_count(), std::memory_order_relaxed);
  }
  int completed() const { return completed_.load(); }
  int64_t last_span_count() const { return last_span_count_.load(); }

 private:
  std::atomic<int> completed_{0};
  std::atomic<int64_t> last_span_count_{0};
};

/// RAII: installs a sink and restores the previous one.
class SinkScope {
 public:
  explicit SinkScope(TraceSink* sink) : prev_(SetTraceSink(sink)) {}
  ~SinkScope() { SetTraceSink(prev_); }

 private:
  TraceSink* prev_;
};

TEST(TraceTest, SpanTreeStructure) {
  Trace tr("root");
  ASSERT_NE(tr.root(), nullptr);
  EXPECT_EQ(tr.root()->name, "root");
  EXPECT_EQ(tr.span_count(), 1);

  Span* a = tr.StartSpan(nullptr, "a");  // null parent -> child of root
  Span* b = tr.StartSpan(a, "b");
  tr.AddAttr(b, "k", "v");
  EXPECT_EQ(a->parent, tr.root());
  EXPECT_EQ(b->parent, a);
  EXPECT_EQ(a->depth, 1);
  EXPECT_EQ(b->depth, 2);
  EXPECT_EQ(tr.span_count(), 3);

  EXPECT_EQ(b->duration_us, -1);  // open until ended
  tr.EndSpan(b);
  EXPECT_GE(b->duration_us, 0);
  tr.EndSpan(b);  // idempotent
  tr.EndSpan(a);

  std::vector<std::string> names;
  tr.Visit([&names](const Span& s) { names.push_back(s.name); });
  EXPECT_EQ(names, (std::vector<std::string>{"root", "a", "b"}));
  ASSERT_EQ(b->attrs.size(), 1u);
  EXPECT_EQ(b->attrs[0].key, "k");
  EXPECT_EQ(b->attrs[0].value, "v");
}

TEST(TraceTest, EndSpanFeedsStageLatencyHistogram) {
  auto& registry = metrics::Registry::Instance();
  Histogram* h = registry.GetHistogram("stage.t_probe_stage.latency");
  int64_t before = h->count();
  Trace tr("root");
  Span* s = tr.StartSpan(nullptr, "t_probe_stage");
  tr.EndSpan(s);
  EXPECT_EQ(h->count(), before + 1);
}

TEST(TraceTest, ScopedSpanIsNoOpWithoutCurrentTrace) {
  ASSERT_EQ(Current(), nullptr);
  ScopedSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.Note("k", "v");  // must not crash
}

TEST(TraceTest, TraceScopeInstallsAndScopedSpanNests) {
  Trace tr("root");
  {
    TraceScope scope(&tr);
    EXPECT_EQ(Current(), &tr);
    EXPECT_EQ(CurrentSpan(), tr.root());
    {
      ScopedSpan outer("outer");
      ASSERT_TRUE(outer.active());
      EXPECT_EQ(CurrentSpan(), outer.span());
      {
        ScopedSpan inner("inner");
        ASSERT_TRUE(inner.active());
        EXPECT_EQ(inner.span()->parent, outer.span());
      }
      EXPECT_EQ(CurrentSpan(), outer.span());
    }
    EXPECT_EQ(CurrentSpan(), tr.root());
  }
  EXPECT_EQ(Current(), nullptr);
  EXPECT_EQ(tr.span_count(), 3);
}

TEST(TraceTest, StatementScopeSamplesAndNotifiesSink) {
  RecordingSink sink;
  SinkScope install(&sink);
  {
    StatementTraceScope scope(/*enabled=*/true, /*sample_interval=*/1);
    ASSERT_TRUE(scope.active());
    ScopedSpan stage("t_stage");
    EXPECT_TRUE(stage.active());
  }
  EXPECT_EQ(sink.completed(), 1);
  EXPECT_EQ(sink.last_span_count(), 2);  // statement root + t_stage
  EXPECT_EQ(Current(), nullptr);
}

TEST(TraceTest, StatementScopeDisabledOrNeverSampledIsInert) {
  RecordingSink sink;
  SinkScope install(&sink);
  {
    StatementTraceScope off(/*enabled=*/false, /*sample_interval=*/1);
    EXPECT_FALSE(off.active());
  }
  {
    StatementTraceScope never(/*enabled=*/true, /*sample_interval=*/0);
    EXPECT_FALSE(never.active());
  }
  EXPECT_EQ(sink.completed(), 0);
}

TEST(TraceTest, NestedStatementScopesJoinWithoutDoubleCounting) {
  // ExecutePlan re-enters ExecuteStatement on the same thread: the inner
  // scope must join the outer trace without opening a second statement span.
  RecordingSink sink;
  SinkScope install(&sink);
  {
    StatementTraceScope outer(true, 1);
    ASSERT_TRUE(outer.active());
    int64_t before = Current()->span_count();
    {
      StatementTraceScope inner(true, 1);
      EXPECT_FALSE(inner.active());  // joined silently, no new span
      EXPECT_EQ(Current()->span_count(), before);
    }
    EXPECT_EQ(sink.completed(), 0);  // inner exit must not notify
  }
  EXPECT_EQ(sink.completed(), 1);
}

TEST(TraceTest, ForcedTraceJoinsOpensStatementSpan) {
  // The DistSQL TRACE path: an installed trace forces capture regardless of
  // sampling; the statement scope opens a "statement" child span.
  Trace tr("trace");
  {
    TraceScope scope(&tr);
    StatementTraceScope stmt(/*enabled=*/true, /*sample_interval=*/0);
    ASSERT_TRUE(stmt.active());
    EXPECT_EQ(stmt.span()->name, "statement");
    EXPECT_EQ(stmt.span()->parent, tr.root());
  }
  EXPECT_EQ(tr.span_count(), 2);
}

TEST(TraceTest, ConcurrentSpanCreationStress) {
  // Executor pool workers open per-unit spans concurrently; the tree must
  // stay consistent (run under TSan to check the locking).
  Trace tr("root");
  Span* parent = tr.StartSpan(nullptr, "execute");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&tr, parent] {
      for (int i = 0; i < kPerThread; ++i) {
        Span* s = tr.StartSpan(parent, "unit");
        tr.AddAttr(s, "i", "x");
        tr.EndSpan(s);
      }
    });
  }
  pool.Wait();
  tr.EndSpan(parent);
  EXPECT_EQ(tr.span_count(), 2 + kThreads * kPerThread);
  EXPECT_EQ(parent->children.size(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(TraceTest, RenderTreeIndentsAndShowsAttrs) {
  Trace tr("statement");
  Span* route = tr.StartSpan(nullptr, "route");
  tr.AddAttr(route, "fan_out", "2");
  tr.EndSpan(route);
  std::string out = RenderTree(tr);
  EXPECT_NE(out.find("statement"), std::string::npos);
  EXPECT_NE(out.find("  route"), std::string::npos);  // depth-1 indent
  EXPECT_NE(out.find("fan_out=2"), std::string::npos);
  EXPECT_NE(out.find("span"), std::string::npos);  // header
}

}  // namespace
}  // namespace sphere::trace
