// Concurrency stress tests for ThreadPool and Latch. Designed to trip TSan
// (-DSPHERE_SANITIZE=thread) if the locking discipline in
// src/common/thread_pool.h regresses: every shared counter is either atomic
// or owned by exactly one task, so any data race reported comes from the
// pool itself.

#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"

namespace sphere {
namespace {

TEST(ThreadPoolStressTest, ManySubmittersManyTasks) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksPerSubmitter = 2000;

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &sum] {
      for (int i = 0; i < kTasksPerSubmitter; ++i) {
        pool.Submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(sum.load(), kSubmitters * kTasksPerSubmitter);
}

TEST(ThreadPoolStressTest, WaitFromMultipleThreadsWhileSubmitting) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  // Interleave Submit and Wait from several threads: Wait must only observe
  // "queue empty and nothing active", never deadlock or miss a wakeup.
  std::vector<std::thread> drivers;
  for (int d = 0; d < 4; ++d) {
    drivers.emplace_back([&pool, &done] {
      for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 20; ++i) {
          pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
        }
        pool.Wait();
      }
    });
  }
  for (auto& t : drivers) t.join();
  pool.Wait();
  EXPECT_EQ(done.load(), 4 * 50 * 20);
}

TEST(ThreadPoolStressTest, TasksSubmitTasks) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kRoots = 64;
  // Each root task enqueues children from inside a worker thread, which
  // exercises the Submit path racing the drain path.
  Latch latch(kRoots * 4);
  for (int i = 0; i < kRoots; ++i) {
    pool.Submit([&pool, &executed, &latch] {
      for (int c = 0; c < 4; ++c) {
        pool.Submit([&executed, &latch] {
          executed.fetch_add(1, std::memory_order_relaxed);
          latch.CountDown();
        });
      }
    });
  }
  latch.Wait();
  pool.Wait();
  EXPECT_EQ(executed.load(), kRoots * 4);
}

TEST(ThreadPoolStressTest, HistogramConcurrentRecordMergeRead) {
  // Histogram is documented fully thread-safe; hammer Record, Merge (dual
  // address-ordered locking) and the locked accessors simultaneously.
  Histogram a, b;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&a, &b, t] {
      for (int i = 0; i < 5000; ++i) {
        a.Record(i + t);
        b.Record(i * 2 + t);
      }
    });
  }
  threads.emplace_back([&a, &b] {
    // Bounded rounds: mutual merging grows the counts Fibonacci-style, so an
    // unbounded loop would overflow int64. 20 rounds is plenty of contention.
    for (int i = 0; i < 20; ++i) {
      a.Merge(b);
      b.Merge(a);  // opposite order: deadlocks unless locks are ordered
    }
  });
  threads.emplace_back([&a, &b, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)a.count();
      (void)b.AvgMillis();
      (void)a.max_micros();
    }
  });
  for (int t = 0; t < 4; ++t) threads[static_cast<size_t>(t)].join();
  threads[4].join();
  stop.store(true, std::memory_order_release);
  threads[5].join();
  EXPECT_GE(a.count(), 4u * 5000u);
}

TEST(ThreadPoolStressTest, LatchReleasesAllWaiters) {
  for (int round = 0; round < 100; ++round) {
    Latch latch(4);
    std::vector<std::thread> waiters;
    std::atomic<int> released{0};
    for (int w = 0; w < 3; ++w) {
      waiters.emplace_back([&latch, &released] {
        latch.Wait();
        released.fetch_add(1, std::memory_order_relaxed);
      });
    }
    std::vector<std::thread> counters;
    for (int c = 0; c < 4; ++c) {
      counters.emplace_back([&latch] { latch.CountDown(); });
    }
    for (auto& t : counters) t.join();
    for (auto& t : waiters) t.join();
    EXPECT_EQ(released.load(), 3);
  }
}

}  // namespace
}  // namespace sphere
