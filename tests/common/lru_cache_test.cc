#include "common/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/strings.h"

namespace sphere {
namespace {

// Single shard makes the eviction order deterministic.
using StringCache =
    ShardedLRUCache<std::string, int, TransparentStringHash>;

TEST(LRUCacheTest, GetMissThenHit) {
  StringCache cache(4, 1);
  EXPECT_FALSE(cache.Get(std::string_view("a")).has_value());
  cache.Put(std::string_view("a"), 1);
  auto hit = cache.Get(std::string_view("a"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1);
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(LRUCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  StringCache cache(3, 1);
  cache.Put(std::string_view("a"), 1);
  cache.Put(std::string_view("b"), 2);
  cache.Put(std::string_view("c"), 3);
  // Touch "a": it becomes most recent, so "b" is now the LRU victim.
  EXPECT_TRUE(cache.Get(std::string_view("a")).has_value());
  cache.Put(std::string_view("d"), 4);
  EXPECT_FALSE(cache.Get(std::string_view("b")).has_value());
  EXPECT_TRUE(cache.Get(std::string_view("a")).has_value());
  EXPECT_TRUE(cache.Get(std::string_view("c")).has_value());
  EXPECT_TRUE(cache.Get(std::string_view("d")).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LRUCacheTest, PutOverwritesAndRefreshesRecency) {
  StringCache cache(2, 1);
  cache.Put(std::string_view("a"), 1);
  cache.Put(std::string_view("b"), 2);
  cache.Put(std::string_view("a"), 10);  // overwrite: "b" becomes the victim
  cache.Put(std::string_view("c"), 3);
  EXPECT_FALSE(cache.Get(std::string_view("b")).has_value());
  auto a = cache.Get(std::string_view("a"));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 10);
}

TEST(LRUCacheTest, EraseAndClear) {
  StringCache cache(4, 1);
  cache.Put(std::string_view("a"), 1);
  cache.Put(std::string_view("b"), 2);
  EXPECT_TRUE(cache.Erase(std::string_view("a")));
  EXPECT_FALSE(cache.Erase(std::string_view("a")));
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  // Erase/Clear are not capacity evictions.
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(LRUCacheTest, ZeroCapacityDisablesCaching) {
  StringCache cache(0, 8);
  cache.Put(std::string_view("a"), 1);
  EXPECT_FALSE(cache.Get(std::string_view("a")).has_value());
  EXPECT_EQ(cache.size(), 0u);
  // Observability still works when disabled: lookups count as misses.
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LRUCacheTest, ShardCountClampedToCapacity) {
  StringCache cache(3, 64);
  EXPECT_EQ(cache.num_shards(), 3u);
  // Capacity is a bound even when shards round their slice up.
  for (int i = 0; i < 100; ++i) {
    cache.Put(std::string_view(std::to_string(i)), i);
  }
  EXPECT_LE(cache.size(), 3u);
}

TEST(LRUCacheTest, TransparentLookupAcrossKeyTypes) {
  StringCache cache(4, 1);
  std::string key = "SELECT 1";
  cache.Put(key, 7);
  // string_view probe against the std::string key, no conversion at the call.
  std::string_view view = key;
  auto hit = cache.Get(view);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 7);
}

TEST(LRUCacheTest, ConcurrentMixedOperations) {
  StringCache cache(64, 8);
  std::vector<std::string> keys;
  for (int i = 0; i < 128; ++i) keys.push_back("key_" + std::to_string(i));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &keys, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string& k = keys[static_cast<size_t>((i * 7 + t) % 128)];
        if (i % 3 == 0) {
          cache.Put(std::string_view(k), i);
        } else if (i % 17 == 0) {
          cache.Erase(std::string_view(k));
        } else {
          auto v = cache.Get(std::string_view(k));
          if (v.has_value()) {
            EXPECT_GE(*v, 0);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), 64u);
  CacheStats s = cache.stats();
  // Per thread: 167 Puts (i%3==0), 20 Erases (i%17==0 and i%3!=0), 313 Gets.
  EXPECT_EQ(s.hits + s.misses, 4u * 313u);
}

}  // namespace
}  // namespace sphere
