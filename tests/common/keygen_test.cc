#include "common/keygen.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace sphere {
namespace {

TEST(SnowflakeTest, MonotonicAndUnique) {
  SnowflakeKeyGenerator gen(1);
  int64_t prev = 0;
  for (int i = 0; i < 10000; ++i) {
    int64_t id = gen.NextKey().AsInt();
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(SnowflakeTest, EmbedsWorkerId) {
  SnowflakeKeyGenerator gen(37);
  int64_t id = gen.NextKey().AsInt();
  EXPECT_EQ(SnowflakeKeyGenerator::WorkerOf(id), 37);
}

TEST(SnowflakeTest, TimestampIsRecent) {
  SnowflakeKeyGenerator gen(0);
  int64_t id = gen.NextKey().AsInt();
  int64_t ts = SnowflakeKeyGenerator::TimestampOf(id);
  int64_t now = WallMillis();
  EXPECT_LE(std::abs(ts - now), 5000);
}

TEST(SnowflakeTest, UniqueAcrossThreads) {
  SnowflakeKeyGenerator gen(2);
  constexpr int kThreads = 4, kPerThread = 5000;
  std::vector<std::vector<int64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ids[static_cast<size_t>(t)].push_back(gen.NextKey().AsInt());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<int64_t> all;
  for (const auto& v : ids) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(SnowflakeTest, DistinctWorkersDistinctIds) {
  SnowflakeKeyGenerator a(1), b(2);
  EXPECT_NE(a.NextKey().AsInt(), b.NextKey().AsInt());
}

TEST(UuidTest, CanonicalFormat) {
  UuidKeyGenerator gen;
  std::string u = gen.NextKey().AsString();
  ASSERT_EQ(u.size(), 36u);
  EXPECT_EQ(u[8], '-');
  EXPECT_EQ(u[13], '-');
  EXPECT_EQ(u[18], '-');
  EXPECT_EQ(u[23], '-');
  EXPECT_EQ(u[14], '4');  // version nibble
}

TEST(UuidTest, Unique) {
  UuidKeyGenerator gen;
  std::set<std::string> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(gen.NextKey().AsString()).second);
  }
}

TEST(KeyGenFactoryTest, CreatesByName) {
  EXPECT_NE(CreateKeyGenerator("SNOWFLAKE"), nullptr);
  EXPECT_NE(CreateKeyGenerator("uuid"), nullptr);
  EXPECT_EQ(CreateKeyGenerator("nope"), nullptr);
  EXPECT_STREQ(CreateKeyGenerator("snowflake")->Type(), "SNOWFLAKE");
}

}  // namespace
}  // namespace sphere
