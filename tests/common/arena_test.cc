#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sphere {
namespace {

TEST(ArenaTest, AllocateBumpsWithinOneChunk) {
  Arena arena;
  void* a = arena.Allocate(16);
  void* b = arena.Allocate(16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_GE(arena.bytes_reserved(), Arena::kMinChunkSize);
  EXPECT_EQ(arena.bytes_allocated(), 32u);
}

TEST(ArenaTest, ChunkGrowthIsGeometricAndCapped) {
  Arena arena;
  // Force many refills; chunk sizes double up to the cap.
  for (int i = 0; i < 300; ++i) arena.Allocate(4000);
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_GE(arena.bytes_reserved(), 300u * 4000u);
  // An oversize request still succeeds (dedicated chunk at least that big).
  void* big = arena.Allocate(Arena::kMaxChunkSize * 2);
  EXPECT_NE(big, nullptr);
}

TEST(ArenaTest, AlignmentIsRespected) {
  Arena arena;
  (void)arena.Allocate(1, 1);  // misalign the bump pointer
  for (size_t align : {2u, 4u, 8u, 16u}) {
    auto p = reinterpret_cast<uintptr_t>(arena.Allocate(3, align));
    EXPECT_EQ(p % align, 0u) << "align=" << align;
  }
}

TEST(ArenaTest, ResetReusesRetainedChunks) {
  Arena arena;
  for (int i = 0; i < 100; ++i) arena.Allocate(1000);
  size_t reserved = arena.bytes_reserved();
  size_t chunks = arena.chunk_count();
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
  EXPECT_EQ(arena.reset_count(), 1u);
  // The same workload after Reset grows nothing new.
  for (int i = 0; i < 100; ++i) arena.Allocate(1000);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

struct DtorProbe {
  explicit DtorProbe(std::vector<int>* log, int id) : log_(log), id_(id) {}
  ~DtorProbe() { log_->push_back(id_); }
  std::vector<int>* log_;
  int id_;
};

TEST(ArenaTest, CreateRegistersDestructorsLifoOnReset) {
  std::vector<int> log;
  Arena arena;
  arena.Create<DtorProbe>(&log, 1);
  arena.Create<DtorProbe>(&log, 2);
  arena.Create<DtorProbe>(&log, 3);
  EXPECT_TRUE(log.empty());
  arena.Reset();
  EXPECT_EQ(log, (std::vector<int>{3, 2, 1}));
  // A second Reset must not re-run them.
  arena.Reset();
  EXPECT_EQ(log.size(), 3u);
}

TEST(ArenaTest, TriviallyDestructibleCreateSkipsRegistration) {
  Arena arena;
  int* p = arena.Create<int>(41);
  EXPECT_EQ(*p, 41);
  arena.Reset();  // nothing to run; must not crash
}

TEST(ArenaScopeTest, GatedScopeInstallsAndResets) {
  EXPECT_EQ(CurrentArena(), nullptr);
  {
    ArenaScope scope(true);
    EXPECT_TRUE(scope.owned());
    ASSERT_NE(CurrentArena(), nullptr);
    uint64_t resets = CurrentArena()->reset_count();
    {
      // Reentrant scope: no-ops, outer keeps ownership.
      ArenaScope inner(true);
      EXPECT_FALSE(inner.owned());
    }
    EXPECT_NE(CurrentArena(), nullptr);
    EXPECT_EQ(CurrentArena()->reset_count(), resets);  // inner didn't reset
  }
  EXPECT_EQ(CurrentArena(), nullptr);
}

TEST(ArenaScopeTest, InactiveScopeIsNoop) {
  ArenaScope scope(false);
  EXPECT_FALSE(scope.owned());
  EXPECT_EQ(CurrentArena(), nullptr);
}

TEST(ArenaScopeTest, SuspendRestoresOnExit) {
  Arena arena;
  ArenaScope scope(&arena);
  ASSERT_EQ(CurrentArena(), &arena);
  {
    ArenaSuspend suspend;
    EXPECT_EQ(CurrentArena(), nullptr);
  }
  EXPECT_EQ(CurrentArena(), &arena);
}

struct Managed : ArenaManaged {
  std::string payload = "payload long enough to avoid SSO. padding padding";
};

TEST(ArenaManagedTest, HeapWhenNoArenaCurrent) {
  ASSERT_EQ(CurrentArena(), nullptr);
  auto obj = std::make_unique<Managed>();
  EXPECT_EQ(obj->payload.size(), 49u);
  obj.reset();  // heap-tagged: operator delete really frees
}

TEST(ArenaManagedTest, ArenaWhenScopeActiveAndDeleteIsNoop) {
  Arena arena;
  {
    ArenaScope scope(&arena);
    size_t before = arena.bytes_allocated();
    auto obj = std::make_unique<Managed>();
    EXPECT_GT(arena.bytes_allocated(), before);  // node came from the arena
    obj.reset();  // dtor runs; operator delete is a no-op for arena blocks
  }
  arena.Reset();
}

TEST(ArenaManagedTest, SuspendedAllocationSurvivesReset) {
  Arena arena;
  std::unique_ptr<Managed> escaped;
  {
    ArenaScope scope(&arena);
    ArenaSuspend suspend;
    escaped = std::make_unique<Managed>();
  }
  arena.Reset();
  // Heap-tagged despite the active scope: still valid after the reset.
  EXPECT_EQ(escaped->payload.substr(0, 7), "payload");
}

TEST(ArenaVectorTest, TracksCurrentArenaPerBlock) {
  Arena arena;
  ArenaVector<int> v;
  {
    ArenaScope scope(&arena);
    for (int i = 0; i < 100; ++i) v.push_back(i);  // arena-tagged blocks
  }
  // Growth after the scope ends reallocates from the heap; the old arena
  // block's deallocate is a no-op, the new heap blocks free normally.
  for (int i = 100; i < 5000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 5000u);
  EXPECT_EQ(v[4999], 4999);
  v.clear();
  v.shrink_to_fit();
  arena.Reset();
}

}  // namespace
}  // namespace sphere
