#include "common/lockdep.h"

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"

namespace sphere {
namespace {

using lockdep::Violation;

/// Captures violations instead of aborting, so the tests can assert on the
/// reports the detector produces. The detector core is compiled into every
/// build; the Mutex integration tests additionally require SPHERE_DEADLOCK.
class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::ResetForTest();
    prev_ = lockdep::SetHandler(
        [this](const Violation& v) { captured_.push_back(v); });
  }

  void TearDown() override {
    lockdep::SetHandler(std::move(prev_));
    lockdep::ResetForTest();
  }

  std::vector<Violation> captured_;
  lockdep::Handler prev_;
};

// Distinct dummy addresses standing in for lock instances when driving the
// detector API directly.
int lock_a, lock_b, lock_c;

TEST_F(LockdepTest, RankCleanNestingPasses) {
  lockdep::OnAcquire(&lock_a, LockRank::kAdaptor, "t/adaptor", false, false);
  lockdep::OnAcquire(&lock_b, LockRank::kEngine, "t/engine", false, false);
  lockdep::OnAcquire(&lock_c, LockRank::kStorage, "t/storage", false, false);
  EXPECT_EQ(lockdep::held_count(), 3u);
  lockdep::OnRelease(&lock_c);
  lockdep::OnRelease(&lock_b);
  lockdep::OnRelease(&lock_a);
  EXPECT_EQ(lockdep::held_count(), 0u);
  EXPECT_EQ(lockdep::violation_count(), 0);
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LockdepTest, EqualRankNestingPasses) {
  // Same-rank nesting is legal (the graph, not the rank, orders these).
  lockdep::OnAcquire(&lock_a, LockRank::kStorage, "t/txn", false, false);
  lockdep::OnAcquire(&lock_b, LockRank::kStorage, "t/latch", false, false);
  lockdep::OnRelease(&lock_b);
  lockdep::OnRelease(&lock_a);
  EXPECT_EQ(lockdep::violation_count(), 0);
}

TEST_F(LockdepTest, RankOrderViolationReported) {
  lockdep::OnAcquire(&lock_a, LockRank::kStorage, "t/low", false, false);
  lockdep::OnAcquire(&lock_b, LockRank::kEngine, "t/high", false, false);
  lockdep::OnRelease(&lock_b);
  lockdep::OnRelease(&lock_a);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].kind, Violation::Kind::kRankOrder);
  EXPECT_NE(captured_[0].message.find("RANK-ORDER"), std::string::npos);
  EXPECT_NE(captured_[0].message.find("t/high"), std::string::npos);
  EXPECT_NE(captured_[0].message.find("t/low"), std::string::npos);
  EXPECT_NE(captured_[0].message.find("rank engine"), std::string::npos);
  EXPECT_NE(captured_[0].message.find("rank storage"), std::string::npos);
}

TEST_F(LockdepTest, SeededInversionReportsCycleWithBothStacks) {
  // Thread 1 order: A then B.
  lockdep::OnAcquire(&lock_a, LockRank::kEngine, "t/inv.A", false, false);
  lockdep::OnAcquire(&lock_b, LockRank::kEngine, "t/inv.B", false, false);
  lockdep::OnRelease(&lock_b);
  lockdep::OnRelease(&lock_a);
  EXPECT_TRUE(captured_.empty());

  // Opposite order: B then A. No deadlock happens in this run — the edge
  // B->A closing the cycle is enough.
  lockdep::OnAcquire(&lock_b, LockRank::kEngine, "t/inv.B", false, false);
  lockdep::OnAcquire(&lock_a, LockRank::kEngine, "t/inv.A", false, false);
  lockdep::OnRelease(&lock_a);
  lockdep::OnRelease(&lock_b);

  ASSERT_EQ(captured_.size(), 1u);
  const Violation& v = captured_[0];
  EXPECT_EQ(v.kind, Violation::Kind::kCycle);
  EXPECT_NE(v.message.find("LOCK-ORDER CYCLE"), std::string::npos);
  EXPECT_NE(v.message.find("t/inv.A"), std::string::npos);
  EXPECT_NE(v.message.find("t/inv.B"), std::string::npos);
  // Both acquisition stacks of the new edge, plus the stored stacks of the
  // conflicting (first-observed) order.
  EXPECT_NE(v.message.find("holder acquired at"), std::string::npos);
  EXPECT_NE(v.message.find("new lock acquired at"), std::string::npos);
  EXPECT_NE(v.message.find("conflicting existing order"), std::string::npos);
  EXPECT_NE(v.message.find("first lock held at"), std::string::npos);
  EXPECT_NE(v.message.find("second lock acquired at"), std::string::npos);
}

TEST_F(LockdepTest, ThreeLockCycleReported) {
  // A->B, B->C observed; C->A closes a length-3 cycle.
  lockdep::OnAcquire(&lock_a, LockRank::kCore, "t/c3.A", false, false);
  lockdep::OnAcquire(&lock_b, LockRank::kCore, "t/c3.B", false, false);
  lockdep::OnRelease(&lock_b);
  lockdep::OnRelease(&lock_a);
  lockdep::OnAcquire(&lock_b, LockRank::kCore, "t/c3.B", false, false);
  lockdep::OnAcquire(&lock_c, LockRank::kCore, "t/c3.C", false, false);
  lockdep::OnRelease(&lock_c);
  lockdep::OnRelease(&lock_b);
  EXPECT_TRUE(captured_.empty());

  lockdep::OnAcquire(&lock_c, LockRank::kCore, "t/c3.C", false, false);
  lockdep::OnAcquire(&lock_a, LockRank::kCore, "t/c3.A", false, false);
  lockdep::OnRelease(&lock_a);
  lockdep::OnRelease(&lock_c);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].kind, Violation::Kind::kCycle);
  EXPECT_NE(captured_[0].message.find("t/c3.B"), std::string::npos);
}

TEST_F(LockdepTest, SameClassDistinctInstancesDoNotSelfCycle) {
  // Two tables' latches share one class; nesting them must not report a
  // self-edge cycle (address-ordered Merge, scan-while-backfill, etc.).
  lockdep::OnAcquire(&lock_a, LockRank::kStorage, "t/latch.same", false, true);
  lockdep::OnAcquire(&lock_b, LockRank::kStorage, "t/latch.same", false, true);
  lockdep::OnRelease(&lock_b);
  lockdep::OnRelease(&lock_a);
  EXPECT_EQ(lockdep::violation_count(), 0);
}

TEST_F(LockdepTest, SelfRecursionReported) {
  lockdep::OnAcquire(&lock_a, LockRank::kEngine, "t/self", false, false);
  lockdep::OnAcquire(&lock_a, LockRank::kEngine, "t/self", false, false);
  lockdep::OnRelease(&lock_a);
  lockdep::OnRelease(&lock_a);
  ASSERT_GE(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].kind, Violation::Kind::kSelfRecursion);
  EXPECT_NE(captured_[0].message.find("t/self"), std::string::npos);
}

TEST_F(LockdepTest, TryLockMayProbeUpward) {
  // TryLock never blocks, so acquiring "upward" is deadlock-free and legal.
  lockdep::OnAcquire(&lock_a, LockRank::kStorage, "t/try.low", false, false);
  lockdep::OnAcquire(&lock_b, LockRank::kAdaptor, "t/try.high",
                     /*trylock=*/true, false);
  lockdep::OnRelease(&lock_b);
  lockdep::OnRelease(&lock_a);
  EXPECT_EQ(lockdep::violation_count(), 0);
}

TEST_F(LockdepTest, HandOverHandReleaseBalances) {
  lockdep::OnAcquire(&lock_a, LockRank::kStorage, "t/hoh.A", false, false);
  lockdep::OnAcquire(&lock_b, LockRank::kStorage, "t/hoh.B", false, false);
  lockdep::OnRelease(&lock_a);  // out-of-order: release the outer lock first
  EXPECT_EQ(lockdep::held_count(), 1u);
  lockdep::OnRelease(&lock_b);
  EXPECT_EQ(lockdep::held_count(), 0u);
  EXPECT_EQ(lockdep::violation_count(), 0);
}

// ---------------------------------------------------------------------------
// Integration: the sphere::Mutex / CondVar hooks. Only armed when the tree
// is configured with -DSPHERE_DEADLOCK=ON; plain builds compile the hooks
// away, so these cases skip themselves there.
// ---------------------------------------------------------------------------

TEST_F(LockdepTest, MutexHooksFeedTheDetector) {
#ifndef SPHERE_DEADLOCK
  GTEST_SKIP() << "requires -DSPHERE_DEADLOCK=ON";
#else
  Mutex a{LockRank::kEngine, "t/wire.A"};
  Mutex b{LockRank::kEngine, "t/wire.B"};
  {
    MutexLock la(a);
    MutexLock lb(b);
    EXPECT_EQ(lockdep::held_count(), 2u);
  }
  EXPECT_EQ(lockdep::held_count(), 0u);
  {
    MutexLock lb(b);
    MutexLock la(a);  // inversion: detector must fire via the real hooks
  }
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].kind, Violation::Kind::kCycle);
  EXPECT_NE(captured_[0].message.find("t/wire.A"), std::string::npos);
  EXPECT_NE(captured_[0].message.find("t/wire.B"), std::string::npos);
#endif
}

TEST_F(LockdepTest, SharedMutexRanksChecked) {
#ifndef SPHERE_DEADLOCK
  GTEST_SKIP() << "requires -DSPHERE_DEADLOCK=ON";
#else
  SharedMutex latch{LockRank::kStorage, "t/wire.latch"};
  Mutex upper{LockRank::kEngine, "t/wire.upper"};
  {
    ReaderLock rl(latch);
    MutexLock lk(upper);  // storage -> engine: rank inversion
  }
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].kind, Violation::Kind::kRankOrder);
#endif
}

TEST_F(LockdepTest, CondVarWaitForKeepsHeldStackBalanced) {
#ifndef SPHERE_DEADLOCK
  GTEST_SKIP() << "requires -DSPHERE_DEADLOCK=ON";
#else
  Mutex mu{LockRank::kEngine, "t/wire.cv"};
  CondVar cv;
  bool ready = false;

  {
    // Timed-out wait: the wait's internal unlock/relock round-trips through
    // the lockdep hooks; the stack must read "held" again on return.
    MutexLock lk(mu);
    bool ok = cv.WaitFor(mu, std::chrono::milliseconds(5),
                         [&]() SPHERE_REQUIRES(mu) { return ready; });
    EXPECT_FALSE(ok);
    EXPECT_EQ(lockdep::held_count(), 1u);
  }
  EXPECT_EQ(lockdep::held_count(), 0u);

  // Signalled wait across threads.
  std::thread notifier([&] {
    MutexLock lk(mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lk(mu);
    bool ok = cv.WaitFor(mu, std::chrono::seconds(10),
                         [&]() SPHERE_REQUIRES(mu) { return ready; });
    EXPECT_TRUE(ok);
    EXPECT_EQ(lockdep::held_count(), 1u);
  }
  notifier.join();
  EXPECT_EQ(lockdep::held_count(), 0u);
  EXPECT_EQ(lockdep::violation_count(), 0);
#endif
}

}  // namespace
}  // namespace sphere
