#include "common/strings.h"

#include <gtest/gtest.h>

namespace sphere {
namespace {

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("aBc"), "ABC");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringsTest, TrimAndSplitAndJoin) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
}

TEST(StringsTest, StartsAndContains) {
  EXPECT_TRUE(StartsWithIgnoreCase("CREATE SHARDING", "create"));
  EXPECT_TRUE(ContainsIgnoreCase("show sharding table rules", "TABLE"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
}

TEST(StringsTest, LikeMatchPercent) {
  EXPECT_TRUE(LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(LikeMatch("hello world", "%world"));
  EXPECT_TRUE(LikeMatch("hello world", "%o w%"));
  EXPECT_FALSE(LikeMatch("hello", "hello_"));
}

TEST(StringsTest, LikeMatchUnderscoreAndCase) {
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_TRUE(LikeMatch("CAT", "cat"));  // SQL LIKE is case-insensitive here
  EXPECT_FALSE(LikeMatch("cart", "c_t"));
  EXPECT_TRUE(LikeMatch("", "%"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 7, "ok"), "x=7 y=ok");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

}  // namespace
}  // namespace sphere
