#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace sphere {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table t_user");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table t_user");
  EXPECT_EQ(s.ToString(), "NotFound: table t_user");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    SPHERE_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Timeout("slow"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<std::string> {
    if (!ok) return Status::InvalidArgument("no");
    return std::string("yes");
  };
  auto use = [&](bool ok) -> Result<int> {
    SPHERE_ASSIGN_OR_RETURN(std::string s, produce(ok));
    return static_cast<int>(s.size());
  };
  EXPECT_EQ(*use(true), 3);
  EXPECT_EQ(use(false).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sphere
