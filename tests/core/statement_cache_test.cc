#include "core/statement_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/hint.h"
#include "core/runtime.h"
#include "tests/core/test_cluster.h"

namespace sphere::core {
namespace {

using testing::TestCluster;

Result<std::shared_ptr<const StatementPlan>> MakePlan(const std::string& sql) {
  SPHERE_ASSIGN_OR_RETURN(
      sql::SharedStatement parsed,
      sql::ParseShared(sql, sql::Dialect::Get(sql::DialectType::kMySQL)));
  std::shared_ptr<const StatementPlan> plan = std::make_shared<StatementPlan>(
      std::move(parsed), sql::DialectType::kMySQL);
  return plan;
}

TEST(StatementCacheTest, HitReturnsSamePlanObject) {
  StatementCache cache(8);
  auto plan = MakePlan("SELECT 1").value();
  cache.Put(sql::DialectType::kMySQL, "SELECT 1", plan);
  auto hit = cache.Get(sql::DialectType::kMySQL, "SELECT 1");
  EXPECT_EQ(hit.get(), plan.get());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(StatementCacheTest, DialectMismatchDisplacesEntry) {
  StatementCache cache(8);
  auto plan = MakePlan("SELECT 1").value();
  cache.Put(sql::DialectType::kMySQL, "SELECT 1", plan);
  EXPECT_EQ(cache.Get(sql::DialectType::kPostgreSQL, "SELECT 1"), nullptr);
  // The mismatching entry was dropped, not aliased.
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(StatementCacheTest, CapacityOneEvicts) {
  StatementCache cache(1, 1);
  cache.Put(sql::DialectType::kMySQL, "SELECT 1", MakePlan("SELECT 1").value());
  cache.Put(sql::DialectType::kMySQL, "SELECT 2", MakePlan("SELECT 2").value());
  EXPECT_EQ(cache.Get(sql::DialectType::kMySQL, "SELECT 1"), nullptr);
  EXPECT_NE(cache.Get(sql::DialectType::kMySQL, "SELECT 2"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(StatementCacheTest, InvalidateClearsEntriesAndBumpsEpoch) {
  StatementCache cache(8);
  cache.Put(sql::DialectType::kMySQL, "SELECT 1", MakePlan("SELECT 1").value());
  uint64_t before = cache.epoch();
  cache.Invalidate();
  EXPECT_EQ(cache.epoch(), before + 1);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Get(sql::DialectType::kMySQL, "SELECT 1"), nullptr);
}

TEST(StatementCacheTest, StalePlanPublishedUnderOldEpochIsRejected) {
  StatementCache cache(8);
  auto plan = MakePlan("SELECT 1").value();
  // An execution starts routing under the current epoch...
  uint64_t epoch = cache.epoch();
  cache.Invalidate();  // ...a rule change lands before it publishes...
  auto routed = std::make_shared<RoutedPlan>();
  routed->rule_epoch = epoch;
  plan->StoreRouted(routed);  // ...and the stale plan gets published anyway.
  EXPECT_EQ(plan->routed(cache.epoch()), nullptr);
  EXPECT_NE(plan->routed(epoch), nullptr);  // old epoch would still match
}

// ---------- Runtime-level behavior ----------

TEST(RuntimeStatementCacheTest, RepeatedExecutionSharesOneAST) {
  TestCluster cluster(2);
  ASSERT_TRUE(cluster.InstallModRule(4, false).ok());
  ASSERT_TRUE(cluster.CreateUserOrderSchemas().ok());

  const char* sql = "SELECT name FROM t_user ORDER BY uid";
  auto p1 = cluster.runtime()->GetOrParse(sql);
  auto p2 = cluster.runtime()->GetOrParse(sql);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1.value().get(), p2.value().get());
  EXPECT_EQ(p1.value()->shared_stmt().get(), p2.value()->shared_stmt().get());

  CacheStats s = cluster.runtime()->statement_cache_stats();
  EXPECT_GE(s.hits, 1u);
  EXPECT_GE(s.misses, 1u);
}

TEST(RuntimeStatementCacheTest, ZeroParamSelectReusesRoutedPlan) {
  TestCluster cluster(2);
  ASSERT_TRUE(cluster.InstallModRule(4, false).ok());
  ASSERT_TRUE(cluster.CreateUserOrderSchemas().ok());
  for (int uid = 0; uid < 4; ++uid) {
    ASSERT_TRUE(cluster.runtime()
                    ->Execute("INSERT INTO t_user (uid, name, age, score) "
                              "VALUES (" + std::to_string(uid) + ", 'u', 20, 1.0)")
                    .ok());
  }

  const char* sql = "SELECT name FROM t_user ORDER BY uid";
  auto r1 = cluster.runtime()->Execute(sql);
  ASSERT_TRUE(r1.ok());

  auto plan = cluster.runtime()->GetOrParse(sql).value();
  uint64_t epoch = cluster.runtime()->statement_cache().epoch();
  auto routed1 = plan->routed(epoch);
  ASSERT_NE(routed1, nullptr);  // first execution published the routed plan

  auto r2 = cluster.runtime()->Execute(sql);
  ASSERT_TRUE(r2.ok());
  // Still the same routed plan object: route/rewrite ran once, not twice.
  EXPECT_EQ(plan->routed(epoch).get(), routed1.get());

  Row row;
  int rows = 0;
  while (r2.value().result_set->Next(&row)) ++rows;
  EXPECT_EQ(rows, 4);
}

TEST(RuntimeStatementCacheTest, SetRuleInvalidatesCacheAndRetiresPlans) {
  TestCluster cluster(2);
  ASSERT_TRUE(cluster.InstallModRule(4, false).ok());
  ASSERT_TRUE(cluster.CreateUserOrderSchemas().ok());
  for (int uid = 0; uid < 4; ++uid) {
    ASSERT_TRUE(cluster.runtime()
                    ->Execute("INSERT INTO t_user (uid, name, age, score) "
                              "VALUES (" + std::to_string(uid) + ", 'u', 20, 1.0)")
                    .ok());
  }

  const char* sql = "SELECT name FROM t_user ORDER BY uid";
  ASSERT_TRUE(cluster.runtime()->Execute(sql).ok());
  auto old_plan = cluster.runtime()->GetOrParse(sql).value();
  uint64_t old_epoch = cluster.runtime()->statement_cache().epoch();
  ASSERT_NE(old_plan->routed(old_epoch), nullptr);

  // Narrow the rule to 2 shards: the old routed plan's 4-table scatter is now
  // wrong (t_user_2/3 are no longer part of the logical table).
  ASSERT_TRUE(cluster.InstallModRule(2, false).ok());
  EXPECT_EQ(cluster.runtime()->statement_cache_stats().entries, 0u);
  EXPECT_GT(cluster.runtime()->statement_cache().epoch(), old_epoch);

  // Executing through the retained pre-SetRule plan must not reuse the stale
  // route: under the 2-shard rule only t_user_0/1 (uid 0 and 1) are visible.
  auto r = cluster.runtime()->ExecutePlan(*old_plan, {}, nullptr);
  ASSERT_TRUE(r.ok());
  Row row;
  int rows = 0;
  while (r.value().result_set->Next(&row)) ++rows;
  EXPECT_EQ(rows, 2);
}

TEST(RuntimeStatementCacheTest, CapacityZeroDisablesCaching) {
  RuntimeConfig config;
  config.statement_cache_capacity = 0;
  TestCluster cluster(2, config);
  ASSERT_TRUE(cluster.InstallModRule(2, false).ok());
  ASSERT_TRUE(cluster.CreateUserOrderSchemas().ok());

  const char* sql = "SELECT name FROM t_user";
  auto p1 = cluster.runtime()->GetOrParse(sql);
  auto p2 = cluster.runtime()->GetOrParse(sql);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_NE(p1.value().get(), p2.value().get());  // parsed twice
  CacheStats s = cluster.runtime()->statement_cache_stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.entries, 0u);
  // Execution still works without the cache.
  EXPECT_TRUE(cluster.runtime()->Execute(sql).ok());
}

TEST(RuntimeStatementCacheTest, ShardingHintBypassesCachedRoute) {
  TestCluster cluster(2);
  ASSERT_TRUE(cluster.InstallModRule(4, false).ok());
  ASSERT_TRUE(cluster.CreateUserOrderSchemas().ok());

  const char* sql = "SELECT name FROM t_user";
  auto plan = cluster.runtime()->GetOrParse(sql).value();
  uint64_t epoch = cluster.runtime()->statement_cache().epoch();

  HintManager::Scope scope;
  HintManager::SetShardingValue(Value(static_cast<int64_t>(1)));
  ASSERT_TRUE(cluster.runtime()->Execute(sql).ok());
  // With a thread-local hint active the fast path is skipped entirely, so no
  // routed plan (which would bake in the hinted route) gets published.
  EXPECT_EQ(plan->routed(epoch), nullptr);
}

TEST(StatementCacheTest, ConcurrentGetPutInvalidate) {
  // The cache layer itself under contention: readers and writers race against
  // an invalidator, including the StatementPlan publish/retire protocol. TSan
  // builds turn locking mistakes here into hard failures.
  StatementCache cache(32);
  std::vector<std::string> sqls;
  for (int i = 0; i < 16; ++i) {
    sqls.push_back("SELECT " + std::to_string(i));
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, &sqls, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string& sql = sqls[static_cast<size_t>((i * 5 + t) % 16)];
        auto plan = cache.Get(sql::DialectType::kMySQL, sql);
        if (plan == nullptr) {
          auto made = MakePlan(sql);
          ASSERT_TRUE(made.ok());
          plan = std::move(made).value();
          cache.Put(sql::DialectType::kMySQL, sql, plan);
        }
        // Publish/consume a routed plan against a moving epoch.
        uint64_t epoch = cache.epoch();
        if (plan->routed(epoch) == nullptr) {
          auto routed = std::make_shared<RoutedPlan>();
          routed->rule_epoch = epoch;
          plan->StoreRouted(std::move(routed));
        }
        // A non-null result is guaranteed to match the epoch passed in; the
        // epoch may move again right after, which is the caller's race to
        // lose (the executor tolerates it by design — see ExecutePlan).
        uint64_t check = cache.epoch();
        auto routed = plan->routed(check);
        if (routed != nullptr) {
          EXPECT_EQ(routed->rule_epoch, check);
        }
      }
    });
  }
  std::thread invalidator([&cache] {
    for (int i = 0; i < 50; ++i) cache.Invalidate();
  });
  for (auto& th : workers) th.join();
  invalidator.join();
  EXPECT_EQ(cache.epoch(), 50u);
  EXPECT_LE(cache.stats().entries, 32u);
}

TEST(RuntimeStatementCacheTest, ConcurrentReadersShareCachedPlans) {
  TestCluster cluster(2);
  ASSERT_TRUE(cluster.InstallModRule(4, false).ok());
  ASSERT_TRUE(cluster.CreateUserOrderSchemas().ok());
  for (int uid = 0; uid < 8; ++uid) {
    ASSERT_TRUE(cluster.runtime()
                    ->Execute("INSERT INTO t_user (uid, name, age, score) "
                              "VALUES (" + std::to_string(uid) + ", 'u', 20, 1.0)")
                    .ok());
  }

  // Many sessions executing the same statements concurrently: they share the
  // cached ASTs and race to publish the routed plans (benign last-writer-wins).
  std::vector<std::string> sqls = {
      "SELECT name FROM t_user ORDER BY uid",
      "SELECT name FROM t_user WHERE uid = 3",
      "SELECT COUNT(*) FROM t_user",
  };
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&cluster, &sqls, t] {
      for (int i = 0; i < 100; ++i) {
        auto r = cluster.runtime()->Execute(sqls[static_cast<size_t>((i + t) % 3)]);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (auto& th : readers) th.join();

  CacheStats s = cluster.runtime()->statement_cache_stats();
  EXPECT_GE(s.hits, 397u);  // 400 executions, at most 3 first-touch misses
  EXPECT_GE(s.entries, 3u);
}

}  // namespace
}  // namespace sphere::core
