#include "core/execute.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "engine/storage_node.h"
#include "net/latency.h"

namespace sphere::core {
namespace {

/// Three storage nodes, each holding table t with a single row whose value
/// identifies the node (0, 1, 2). A unit's result row therefore proves which
/// data source executed it.
class ExecutePoolTest : public ::testing::Test {
 protected:
  ExecutePoolTest() : network_(net::NetworkConfig::Zero()) {
    for (int i = 0; i < 3; ++i) {
      auto node =
          std::make_unique<engine::StorageNode>("ds_" + std::to_string(i));
      auto session = node->OpenSession();
      EXPECT_TRUE(session->Execute("CREATE TABLE t (n BIGINT)").ok());
      EXPECT_TRUE(session
                      ->Execute("INSERT INTO t (n) VALUES (" +
                                std::to_string(i) + ")")
                      .ok());
      EXPECT_TRUE(registry_
                      .Register(std::make_unique<net::DataSource>(
                          node->name(), node.get(), &network_, 8))
                      .ok());
      nodes_.push_back(std::move(node));
    }
  }

  /// `count` units striped over the three sources: unit i targets ds_{i%3}.
  static std::vector<SQLUnit> StripedUnits(int count) {
    std::vector<SQLUnit> units;
    for (int i = 0; i < count; ++i) {
      SQLUnit u;
      u.data_source = "ds_" + std::to_string(i % 3);
      u.sql = "SELECT n FROM t";
      units.push_back(std::move(u));
    }
    return units;
  }

  /// Asserts results[i] came from the data source units[i] named.
  static void ExpectAligned(const std::vector<SQLUnit>& units,
                            ArenaVector<engine::ExecResult> results) {
    ASSERT_EQ(results.size(), units.size());
    for (size_t i = 0; i < results.size(); ++i) {
      Row row;
      ASSERT_TRUE(results[i].result_set->Next(&row)) << "unit " << i;
      EXPECT_EQ("ds_" + std::to_string(row[0].ToInt()), units[i].data_source)
          << "unit " << i;
    }
  }

  net::LatencyModel network_;
  DataSourceRegistry registry_;
  std::vector<std::unique_ptr<engine::StorageNode>> nodes_;
};

TEST_F(ExecutePoolTest, ResultsAlignWithUnitsOnInjectedPool) {
  // A 2-thread pool with 3+ tasks: slices interleave in time, results must
  // still land at their unit's index.
  ThreadPool pool(2);
  ExecutionEngine engine(&registry_, /*max_connections_per_query=*/1, &pool);
  std::vector<SQLUnit> units = StripedUnits(9);
  auto outcome = engine.Execute(units, nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // 3 units per source over 1 connection forces connection-strictly mode.
  EXPECT_EQ(outcome.value().mode, ConnectionMode::kConnectionStrictly);
  ExpectAligned(units, std::move(outcome.value().results));
}

TEST_F(ExecutePoolTest, ResultsAlignOnSharedPoolDefault) {
  ExecutionEngine engine(&registry_, /*max_connections_per_query=*/2);
  EXPECT_EQ(engine.thread_pool(), SharedThreadPool());
  std::vector<SQLUnit> units = StripedUnits(12);
  auto outcome = engine.Execute(units, nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ExpectAligned(units, std::move(outcome.value().results));
}

TEST_F(ExecutePoolTest, SingleUnitRunsInlineWithoutPool) {
  ExecutionEngine engine(&registry_, 1, nullptr);  // even with no pool at all
  std::vector<SQLUnit> units = StripedUnits(1);
  auto outcome = engine.Execute(units, nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ExpectAligned(units, std::move(outcome.value().results));
}

TEST_F(ExecutePoolTest, LegacySpawnBaselineStillAligns) {
  ExecutionEngine engine(&registry_, 1);
  engine.set_thread_pool(nullptr);  // benchmark baseline path
  std::vector<SQLUnit> units = StripedUnits(6);
  auto outcome = engine.Execute(units, nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ExpectAligned(units, std::move(outcome.value().results));
}

TEST_F(ExecutePoolTest, ManyStatementsThroughOnePoolConcurrently) {
  // Concurrent Execute calls sharing one scheduler: slices from different
  // statements interleave on the same workers.
  ThreadPool pool(3);
  ExecutionEngine engine(&registry_, 1, &pool);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, &engine] {
      for (int i = 0; i < 25; ++i) {
        std::vector<SQLUnit> units = StripedUnits(6);
        auto outcome = engine.Execute(units, nullptr);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        ExpectAligned(units, std::move(outcome.value().results));
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(DataSourceRegistryTest, FindIsCaseInsensitive) {
  net::LatencyModel network(net::NetworkConfig::Zero());
  engine::StorageNode node("DS_Main");
  DataSourceRegistry registry;
  ASSERT_TRUE(registry
                  .Register(std::make_unique<net::DataSource>(
                      "DS_Main", &node, &network, 4))
                  .ok());
  EXPECT_NE(registry.Find("ds_main"), nullptr);
  EXPECT_NE(registry.Find("DS_MAIN"), nullptr);
  EXPECT_EQ(registry.Find("ds_other"), nullptr);
  // Registration collides case-insensitively too.
  EXPECT_FALSE(registry
                   .Register(std::make_unique<net::DataSource>(
                       "ds_MAIN", &node, &network, 4))
                   .ok());
  EXPECT_EQ(registry.Names(), std::vector<std::string>{"DS_Main"});
}

}  // namespace
}  // namespace sphere::core
