#include "core/route.h"

#include <gtest/gtest.h>

#include <set>

#include "core/hint.h"
#include "sql/parser.h"

namespace sphere::core {
namespace {

/// Rule fixture: t_user/t_order MOD-4 over 2 data sources (binding),
/// t_item separately sharded (non-binding), t_dict broadcast, default ds_0.
std::unique_ptr<ShardingRule> MakeRule(bool bind = true) {
  ShardingRuleConfig config;
  for (const char* table : {"t_user", "t_order", "t_item"}) {
    TableRuleConfig t;
    t.logic_table = table;
    t.actual_data_nodes =
        std::string("ds_${0..1}.") + table + "_${0..3}";
    t.table_strategy.columns = {"uid"};
    t.table_strategy.algorithm_type = "MOD";
    t.table_strategy.props.Set("sharding-count", "4");
    config.tables.push_back(std::move(t));
  }
  if (bind) config.binding_groups.push_back({"t_user", "t_order"});
  config.broadcast_tables.insert("t_dict");
  config.default_data_source = "ds_0";
  auto rule = ShardingRule::Build(std::move(config));
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return std::move(rule).value();
}

RouteResult MustRoute(const ShardingRule* rule, const std::string& sql_text,
                      std::vector<Value> params = {}) {
  auto stmt = sql::ParseSQL(sql_text);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  RouteEngine engine(rule);
  auto r = engine.Route(**stmt, params);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql_text;
  return r.ok() ? std::move(r).value() : RouteResult{};
}

TEST(RouteTest, EqualityRoutesToSingleNode) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(), "SELECT * FROM t_user WHERE uid = 6");
  EXPECT_EQ(r.type, RouteType::kStandard);
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_EQ(r.units[0].data_source, "ds_0");  // 6 % 4 = 2 -> t_user_2 on ds_0
  EXPECT_EQ(r.units[0].mappings[0].actual, "t_user_2");
}

TEST(RouteTest, InRoutesToMatchingNodes) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(), "SELECT * FROM t_user WHERE uid IN (1, 2)");
  ASSERT_EQ(r.units.size(), 2u);
  std::set<std::string> actuals;
  for (const auto& u : r.units) actuals.insert(u.mappings[0].actual);
  EXPECT_EQ(actuals, (std::set<std::string>{"t_user_1", "t_user_2"}));
}

TEST(RouteTest, NoConditionRoutesEverywhere) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(), "SELECT * FROM t_user");
  EXPECT_EQ(r.units.size(), 4u);
}

TEST(RouteTest, NarrowBetweenPrunes) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(), "SELECT * FROM t_user WHERE uid BETWEEN 4 AND 5");
  EXPECT_EQ(r.units.size(), 2u);  // uids 4,5 -> shards 0,1
}

TEST(RouteTest, OrConditionsUnion) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(),
                     "SELECT * FROM t_user WHERE uid = 1 OR uid = 5");
  EXPECT_EQ(r.units.size(), 1u);  // both map to shard 1
  auto r2 = MustRoute(rule.get(),
                      "SELECT * FROM t_user WHERE uid = 1 OR uid = 2");
  EXPECT_EQ(r2.units.size(), 2u);
}

TEST(RouteTest, ParamConditionRoutes) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(), "SELECT * FROM t_user WHERE uid = ?",
                     {Value(7)});
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_EQ(r.units[0].mappings[0].actual, "t_user_3");
}

TEST(RouteTest, AliasQualifiedCondition) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(), "SELECT * FROM t_user u WHERE u.uid = 5");
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_EQ(r.units[0].mappings[0].actual, "t_user_1");
}

TEST(RouteTest, BindingJoinRoutesPairwise) {
  auto rule = MakeRule(true);
  auto r = MustRoute(rule.get(),
                     "SELECT * FROM t_user u JOIN t_order o ON u.uid = o.uid "
                     "WHERE u.uid IN (1, 2)");
  EXPECT_EQ(r.type, RouteType::kStandard);
  ASSERT_EQ(r.units.size(), 2u);
  for (const auto& unit : r.units) {
    ASSERT_EQ(unit.mappings.size(), 2u);
    // Binding: t_user_k joins t_order_k, same suffix, same data source.
    EXPECT_EQ(unit.mappings[0].actual.back(), unit.mappings[1].actual.back());
  }
}

TEST(RouteTest, NonBindingJoinIsCartesian) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(),
                     "SELECT * FROM t_user u JOIN t_item i ON u.uid = i.uid");
  EXPECT_EQ(r.type, RouteType::kCartesian);
  // Per data source: 2 user tables x 2 item tables = 4 combos; 2 ds -> 8.
  EXPECT_EQ(r.units.size(), 8u);
}

TEST(RouteTest, CartesianPrunedByCondition) {
  auto rule = MakeRule(false);
  auto r = MustRoute(rule.get(),
                     "SELECT * FROM t_user u JOIN t_order o ON u.uid = o.uid "
                     "WHERE u.uid = 2 AND o.uid = 2");
  EXPECT_EQ(r.type, RouteType::kCartesian);
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_EQ(r.units[0].data_source, "ds_0");
}

TEST(RouteTest, InsertRoutesRowsToShards) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(),
                     "INSERT INTO t_order (oid, uid) VALUES "
                     "(1, 0), (2, 1), (3, 4), (4, 2)");
  ASSERT_EQ(r.units.size(), 3u);  // shards 0 (uids 0,4), 1, 2
  size_t total_rows = 0;
  for (const auto& u : r.units) total_rows += u.insert_rows.size();
  EXPECT_EQ(total_rows, 4u);
}

TEST(RouteTest, InsertMissingShardingColumnFails) {
  auto rule = MakeRule();
  auto stmt = sql::ParseSQL("INSERT INTO t_user (name) VALUES ('x')");
  ASSERT_TRUE(stmt.ok());
  RouteEngine engine(rule.get());
  EXPECT_FALSE(engine.Route(**stmt, {}).ok());
}

TEST(RouteTest, UpdateDeleteRouteLikeSelect) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(), "UPDATE t_user SET name = 'x' WHERE uid = 5");
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_EQ(r.units[0].mappings[0].actual, "t_user_1");
  auto d = MustRoute(rule.get(), "DELETE FROM t_user WHERE uid IN (0, 1, 2, 3)");
  EXPECT_EQ(d.units.size(), 4u);
}

TEST(RouteTest, DdlBroadcastsToAllActualNodes) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(),
                     "CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(10))");
  EXPECT_EQ(r.type, RouteType::kBroadcast);
  EXPECT_EQ(r.units.size(), 4u);
  std::set<std::string> actuals;
  for (const auto& u : r.units) actuals.insert(u.mappings[0].actual);
  EXPECT_EQ(actuals.size(), 4u);
}

TEST(RouteTest, BroadcastTableWriteGoesEverywhere) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(), "INSERT INTO t_dict (k, v) VALUES (1, 'a')");
  EXPECT_EQ(r.type, RouteType::kBroadcast);
  EXPECT_EQ(r.units.size(), 2u);  // one per data source
}

TEST(RouteTest, BroadcastTableReadIsUnicast) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(), "SELECT * FROM t_dict");
  EXPECT_EQ(r.type, RouteType::kUnicast);
  EXPECT_EQ(r.units.size(), 1u);
}

TEST(RouteTest, UnknownTableUsesDefaultDataSource) {
  auto rule = MakeRule();
  auto r = MustRoute(rule.get(), "SELECT * FROM t_plain WHERE id = 1");
  EXPECT_EQ(r.type, RouteType::kSingle);
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_EQ(r.units[0].data_source, "ds_0");
}

TEST(RouteTest, ShardedJoinedWithSingleTableFails) {
  auto rule = MakeRule();
  auto stmt = sql::ParseSQL("SELECT * FROM t_user u JOIN t_plain p ON u.uid = p.id");
  ASSERT_TRUE(stmt.ok());
  RouteEngine engine(rule.get());
  EXPECT_FALSE(engine.Route(**stmt, {}).ok());
}

TEST(RouteTest, HintRouting) {
  // A rule whose table strategy is HINT_INLINE: no SQL condition needed.
  ShardingRuleConfig config;
  TableRuleConfig t;
  t.logic_table = "t_log";
  t.actual_data_nodes = "ds_${0..1}.t_log_${0..3}";
  t.table_strategy.columns = {};
  t.table_strategy.algorithm_type = "HINT_INLINE";
  config.tables.push_back(std::move(t));
  auto rule = ShardingRule::Build(std::move(config));
  ASSERT_TRUE(rule.ok());

  HintManager::Scope scope;
  HintManager::SetShardingValue(Value(2));
  auto r = MustRoute(rule->get(), "SELECT * FROM t_log");
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_EQ(r.units[0].mappings[0].actual, "t_log_2");

  HintManager::Clear();
  auto all = MustRoute(rule->get(), "SELECT * FROM t_log");
  EXPECT_EQ(all.units.size(), 4u);
}

}  // namespace
}  // namespace sphere::core
