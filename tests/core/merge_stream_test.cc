#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "engine/pipeline.h"
#include "tests/core/test_cluster.h"

namespace sphere::core {
namespace {

using testing::TestCluster;

/// Cross-shard merge pipeline: every query fans out over 4 shards on 2 nodes
/// and flows through the k-way merge / decorator stack. Tests compare the
/// streamed result against an independently computed expectation and against
/// the row-at-a-time drain of the same query.
class MergeStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<TestCluster>(2);
    ASSERT_TRUE(cluster_->InstallModRule(4, /*bind=*/true).ok());
    ASSERT_TRUE(cluster_->CreateUserOrderSchemas().ok());
    // Ages collide (uid % 7) so ORDER BY/DISTINCT/GROUP BY see ties that
    // span shard boundaries.
    for (int uid = 0; uid < 40; ++uid) {
      Exec(StrFormat(
          "INSERT INTO t_user (uid, name, age, score) VALUES "
          "(%d, 'u%d', %d, %d.5)",
          uid, uid, 20 + uid % 7, uid % 11));
    }
  }

  void Exec(const std::string& sql) {
    auto r = cluster_->runtime()->Execute(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
  }

  std::vector<Row> Query(const std::string& sql) {
    auto r = cluster_->runtime()->Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
    if (!r.ok() || !r->is_query || r->result_set == nullptr) return {};
    return engine::DrainResultSet(r.value().result_set.get());
  }

  /// Same query, pulled one row at a time through ResultSet::Next.
  std::vector<Row> QueryRowAtATime(const std::string& sql) {
    auto r = cluster_->runtime()->Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
    if (!r.ok() || !r->is_query || r->result_set == nullptr) return {};
    std::vector<Row> rows;
    Row row;
    while (r->result_set->Next(&row)) rows.push_back(std::move(row));
    return rows;
  }

  std::unique_ptr<TestCluster> cluster_;
};

TEST_F(MergeStreamTest, KWayMergeGloballySortedWithTies) {
  auto rows = Query("SELECT age, uid FROM t_user ORDER BY age");
  ASSERT_EQ(rows.size(), 40u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1][0].AsInt(), rows[i][0].AsInt()) << "at " << i;
  }
}

TEST_F(MergeStreamTest, StreamedEqualsRowAtATimeDrain) {
  const std::vector<std::string> catalog = {
      "SELECT uid FROM t_user",
      "SELECT age, uid FROM t_user ORDER BY age DESC",
      "SELECT uid FROM t_user ORDER BY uid LIMIT 7, 9",
      "SELECT DISTINCT age FROM t_user ORDER BY age",
      "SELECT age, COUNT(*) FROM t_user GROUP BY age",
  };
  for (const auto& sql : catalog) {
    auto batched = Query(sql);
    auto single = QueryRowAtATime(sql);
    ASSERT_EQ(batched.size(), single.size()) << sql;
    for (size_t i = 0; i < batched.size(); ++i) {
      EXPECT_EQ(batched[i], single[i]) << sql << " row " << i;
    }
  }
}

TEST_F(MergeStreamTest, LimitOffsetSpansShardBoundaries) {
  auto all = Query("SELECT uid FROM t_user ORDER BY uid");
  ASSERT_EQ(all.size(), 40u);
  // Windows chosen to start/end mid-shard (shards hold uid % 4 classes).
  for (auto [off, cnt] : {std::pair<int, int>{3, 10}, {17, 5}, {38, 10}}) {
    auto rows = Query(StrFormat(
        "SELECT uid FROM t_user ORDER BY uid LIMIT %d, %d", off, cnt));
    size_t expect =
        std::min(static_cast<size_t>(cnt), all.size() - static_cast<size_t>(off));
    ASSERT_EQ(rows.size(), expect) << off << "," << cnt;
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i][0], all[static_cast<size_t>(off) + i][0]);
    }
  }
}

TEST_F(MergeStreamTest, OffsetWithoutCountReturnsTail) {
  // `OFFSET n` with no count: the rewriter strips the shard LIMIT entirely
  // (count < 0) and the merge layer applies the global offset.
  auto all = Query("SELECT uid FROM t_user ORDER BY uid");
  auto rows = Query("SELECT uid FROM t_user ORDER BY uid OFFSET 33");
  ASSERT_EQ(rows.size(), 7u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][0], all[33 + i][0]);
  }
  EXPECT_TRUE(Query("SELECT uid FROM t_user ORDER BY uid OFFSET 40").empty());
}

TEST_F(MergeStreamTest, DistinctWithLimitAcrossShards) {
  // 7 distinct ages spread over every shard.
  auto rows = Query("SELECT DISTINCT age FROM t_user ORDER BY age LIMIT 4");
  ASSERT_EQ(rows.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rows[static_cast<size_t>(i)][0], Value(20 + i));
  auto offset_rows =
      Query("SELECT DISTINCT age FROM t_user ORDER BY age LIMIT 3, 10");
  ASSERT_EQ(offset_rows.size(), 4u);
  EXPECT_EQ(offset_rows[0][0], Value(23));
}

TEST_F(MergeStreamTest, MemoryGroupByIsDeterministicAndKeyOrdered) {
  // GROUP BY age ORDER BY age DESC defeats the stream merger (sorted_for_group
  // is false), forcing the hash-aggregation path; its output must come back
  // deterministically ordered by the user's ORDER BY.
  const std::string sql =
      "SELECT age, COUNT(*), SUM(score) FROM t_user GROUP BY age ORDER BY age DESC";
  auto first = Query(sql);
  ASSERT_EQ(first.size(), 7u);
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_GT(first[i - 1][0].AsInt(), first[i][0].AsInt());
  }
  for (int round = 0; round < 3; ++round) {
    auto again = Query(sql);
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < again.size(); ++i) EXPECT_EQ(again[i], first[i]);
  }
}

TEST_F(MergeStreamTest, AvgRecombinesAcrossShards) {
  auto rows = Query("SELECT AVG(score) FROM t_user");
  ASSERT_EQ(rows.size(), 1u);
  double expected = 0;
  for (int uid = 0; uid < 40; ++uid) expected += (uid % 11) + 0.5;
  expected /= 40.0;
  EXPECT_NEAR(rows[0][0].ToDouble(), expected, 1e-9);
}

TEST_F(MergeStreamTest, RandomizedDifferentialAcrossBatchSizes) {
  Rng rng(99);
  const std::vector<std::string> catalog = {
      "SELECT uid, age FROM t_user ORDER BY age, uid",
      "SELECT uid FROM t_user WHERE age > 22 ORDER BY uid LIMIT 5, 6",
      "SELECT DISTINCT score FROM t_user ORDER BY score DESC",
      "SELECT age, MIN(score), MAX(score) FROM t_user GROUP BY age",
      "SELECT uid FROM t_user WHERE uid IN (1, 5, 9, 13, 26) ORDER BY uid DESC",
  };
  for (const auto& sql : catalog) {
    engine::PipelineConfig::set_batch_size(engine::PipelineConfig::kDefaultBatchSize);
    auto reference = Query(sql);
    for (int round = 0; round < 4; ++round) {
      engine::PipelineConfig::set_batch_size(
          static_cast<size_t>(rng.Uniform(1, 17)));
      auto rows = Query(sql);
      ASSERT_EQ(rows.size(), reference.size()) << sql;
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i], reference[i]) << sql << " row " << i;
      }
    }
    engine::PipelineConfig::set_batch_size(engine::PipelineConfig::kDefaultBatchSize);
  }
}

}  // namespace
}  // namespace sphere::core
