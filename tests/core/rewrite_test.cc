#include "core/rewrite.h"

#include <gtest/gtest.h>

#include "core/route.h"
#include "engine/pipeline.h"
#include "sql/parser.h"

namespace sphere::core {
namespace {

/// Minimal two-unit route for t_user -> t_user_0@ds_0, t_user_1@ds_1.
RouteResult TwoUnitRoute() {
  RouteResult r;
  r.type = RouteType::kStandard;
  r.units.push_back(RouteUnit{"ds_0", {{"t_user", "t_user_0"}}, {}});
  r.units.push_back(RouteUnit{"ds_1", {{"t_user", "t_user_1"}}, {}});
  return r;
}

RouteResult OneUnitRoute() {
  RouteResult r;
  r.type = RouteType::kStandard;
  r.units.push_back(RouteUnit{"ds_0", {{"t_user", "t_user_0"}}, {}});
  return r;
}

RewriteResult MustRewrite(const std::string& sql_text, const RouteResult& route,
                          std::vector<Value> params = {}) {
  auto stmt = sql::ParseSQL(sql_text);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  RewriteEngine engine;
  auto r = engine.Rewrite(**stmt, route, params);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql_text;
  return r.ok() ? std::move(r).value() : RewriteResult{};
}

TEST(RewriteTest, RenamesTablePerUnit) {
  auto r = MustRewrite("SELECT * FROM t_user WHERE uid = 1", TwoUnitRoute());
  ASSERT_EQ(r.units.size(), 2u);
  EXPECT_NE(r.units[0].sql.find("t_user_0"), std::string::npos);
  EXPECT_NE(r.units[1].sql.find("t_user_1"), std::string::npos);
  EXPECT_EQ(r.units[0].sql.find("t_user "), std::string::npos);
}

TEST(RewriteTest, RenamesQualifiersOfUnaliasedTable) {
  auto r = MustRewrite("SELECT t_user.name FROM t_user WHERE t_user.uid = 1",
                       TwoUnitRoute());
  // Qualifier t_user must become t_user_0 so the physical SQL resolves.
  EXPECT_EQ(r.units[0].sql.find("t_user."), std::string::npos);
  EXPECT_NE(r.units[0].sql.find("t_user_0."), std::string::npos);
}

TEST(RewriteTest, AliasQualifiersUntouched) {
  auto r = MustRewrite("SELECT u.name FROM t_user u WHERE u.uid = 1",
                       TwoUnitRoute());
  EXPECT_NE(r.units[0].sql.find("u."), std::string::npos);
  EXPECT_NE(r.units[0].sql.find("t_user_0"), std::string::npos);
}

TEST(RewriteTest, SingleUnitPassThrough) {
  auto r = MustRewrite("SELECT AVG(score) FROM t_user LIMIT 10, 5",
                       OneUnitRoute());
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_TRUE(r.merge.pass_through);
  // No derivation, pagination kept as-is.
  EXPECT_EQ(r.units[0].sql.find("AVG_DERIVED"), std::string::npos);
  EXPECT_NE(r.units[0].sql.find("LIMIT 10, 5"), std::string::npos);
}

TEST(RewriteTest, AvgDerivesCountAndSum) {
  auto r = MustRewrite("SELECT AVG(score) FROM t_user", TwoUnitRoute());
  ASSERT_EQ(r.merge.aggregations.size(), 1u);
  const AggDesc& d = r.merge.aggregations[0];
  EXPECT_EQ(d.kind, AggKind::kAvg);
  EXPECT_EQ(d.count_index, 1);
  EXPECT_EQ(d.sum_index, 2);
  EXPECT_NE(r.units[0].sql.find("AVG_DERIVED_COUNT_0"), std::string::npos);
  EXPECT_NE(r.units[0].sql.find("AVG_DERIVED_SUM_0"), std::string::npos);
  EXPECT_EQ(r.merge.visible_columns, 1u);
  EXPECT_EQ(r.merge.labels.size(), 3u);
}

TEST(RewriteTest, OrderByColumnNotInSelectDerived) {
  // Paper §VI-C example: "SELECT oid FROM t_order ORDER BY uid".
  auto r = MustRewrite("SELECT name FROM t_user ORDER BY uid", TwoUnitRoute());
  ASSERT_EQ(r.merge.order_by.size(), 1u);
  EXPECT_EQ(r.merge.order_by[0].index, 1);
  EXPECT_NE(r.units[0].sql.find("ORDER_BY_DERIVED_0"), std::string::npos);
  EXPECT_EQ(r.merge.visible_columns, 1u);
}

TEST(RewriteTest, OrderByInSelectNotDerived) {
  auto r = MustRewrite("SELECT uid, name FROM t_user ORDER BY uid DESC",
                       TwoUnitRoute());
  ASSERT_EQ(r.merge.order_by.size(), 1u);
  EXPECT_EQ(r.merge.order_by[0].index, 0);
  EXPECT_TRUE(r.merge.order_by[0].desc);
  EXPECT_EQ(r.units[0].sql.find("DERIVED"), std::string::npos);
}

TEST(RewriteTest, StreamMergerOptimizationAddsOrderBy) {
  // Paper §VI-C optimization rewrite 2: GROUP BY without ORDER BY gets an
  // ORDER BY so the merger can stream.
  auto r = MustRewrite("SELECT name, SUM(score) FROM t_user GROUP BY name",
                       TwoUnitRoute());
  EXPECT_TRUE(r.merge.sorted_for_group);
  EXPECT_NE(r.units[0].sql.find("ORDER BY"), std::string::npos);
  ASSERT_EQ(r.merge.group_by.size(), 1u);
  EXPECT_EQ(r.merge.group_by[0].index, 0);
}

TEST(RewriteTest, GroupByMatchingOrderByStaysStream) {
  auto r = MustRewrite(
      "SELECT name, SUM(score) FROM t_user GROUP BY name ORDER BY name",
      TwoUnitRoute());
  EXPECT_TRUE(r.merge.sorted_for_group);
}

TEST(RewriteTest, GroupByWithDifferentOrderByIsMemory) {
  auto r = MustRewrite(
      "SELECT name, SUM(score) s FROM t_user GROUP BY name ORDER BY s DESC",
      TwoUnitRoute());
  EXPECT_FALSE(r.merge.sorted_for_group);
}

TEST(RewriteTest, PaginationRevised) {
  // Paper §VI-C: each node returns offset+count rows; merger skips globally.
  auto r = MustRewrite("SELECT uid FROM t_user ORDER BY uid LIMIT 10, 5",
                       TwoUnitRoute());
  EXPECT_NE(r.units[0].sql.find("LIMIT 15"), std::string::npos);
  ASSERT_TRUE(r.merge.limit.has_value());
  EXPECT_EQ(r.merge.limit->offset, 10);
  EXPECT_EQ(r.merge.limit->count, 5);
}

RouteResult InsertSplitRoute() {
  RouteResult route;
  route.type = RouteType::kStandard;
  route.units.push_back(RouteUnit{"ds_0", {{"t_user", "t_user_0"}}, {0, 2}});
  route.units.push_back(RouteUnit{"ds_1", {{"t_user", "t_user_1"}}, {1}});
  return route;
}

TEST(RewriteTest, InsertSplitByRows) {
  // Cached-text lane: placeholders survive, rows split per unit. (The
  // structured default skips text generation entirely; see
  // InsertStructuredByDefault.)
  engine::ScopedDmlPassThrough text_lane(false);
  auto r = MustRewrite(
      "INSERT INTO t_user (uid, name) VALUES (0, 'a'), (1, 'b'), (2, 'c')",
      InsertSplitRoute());
  ASSERT_EQ(r.units.size(), 2u);
  EXPECT_NE(r.units[0].sql.find("(0, 'a'), (2, 'c')"), std::string::npos);
  EXPECT_NE(r.units[1].sql.find("(1, 'b')"), std::string::npos);
  EXPECT_NE(r.units[1].sql.find("t_user_1"), std::string::npos);
}

TEST(RewriteTest, InsertStructuredByDefault) {
  // Structured pass-through lane (the default): no text is rendered; the
  // rewritten AST plus a compact per-unit parameter slice travel instead.
  auto r = MustRewrite(
      "INSERT INTO t_user (uid, name) VALUES (?, ?), (?, ?), (?, ?)",
      InsertSplitRoute(),
      {Value(0), Value("a"), Value(1), Value("b"), Value(2), Value("c")});
  ASSERT_EQ(r.units.size(), 2u);
  for (const auto& unit : r.units) {
    EXPECT_TRUE(unit.sql.empty());
    ASSERT_NE(unit.stmt, nullptr);
  }
  // Unit 0 got rows 0 and 2; its slice is renumbered to slots 0..3.
  ASSERT_EQ(r.units[0].params.size(), 4u);
  EXPECT_EQ(r.units[0].params[0], Value(0));
  EXPECT_EQ(r.units[0].params[1], Value("a"));
  EXPECT_EQ(r.units[0].params[2], Value(2));
  EXPECT_EQ(r.units[0].params[3], Value("c"));
  ASSERT_EQ(r.units[1].params.size(), 2u);
  EXPECT_EQ(r.units[1].params[0], Value(1));
  EXPECT_EQ(r.units[1].params[1], Value("b"));
  // RenderSQL materializes text on demand for the remote/preview path.
  const auto& dialect = sql::Dialect::Get(sql::DialectType::kMySQL);
  std::string rendered = r.units[1].RenderSQL(dialect);
  EXPECT_NE(rendered.find("t_user_1"), std::string::npos);
  EXPECT_NE(rendered.find("(?, ?)"), std::string::npos);
}

TEST(RewriteTest, InsertCachedTextKeepsPlaceholders) {
  // Cached-text lane: pass-through off, parameter binding on. The emitted
  // text keeps `?` markers (stable across executions -> node parse-cache
  // hits) and the unit carries the matching parameter slice.
  engine::ScopedDmlPassThrough text_lane(false);
  RouteResult route;
  route.type = RouteType::kStandard;
  route.units.push_back(RouteUnit{"ds_0", {{"t_user", "t_user_0"}}, {1}});
  auto r = MustRewrite("INSERT INTO t_user (uid, name) VALUES (?, ?), (?, ?)",
                       route, {Value(0), Value("a"), Value(2), Value("b")});
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_NE(r.units[0].sql.find("(?, ?)"), std::string::npos);
  EXPECT_EQ(r.units[0].sql.find("(2, 'b')"), std::string::npos);
  ASSERT_EQ(r.units[0].params.size(), 2u);
  EXPECT_EQ(r.units[0].params[0], Value(2));
  EXPECT_EQ(r.units[0].params[1], Value("b"));
}

TEST(RewriteTest, InsertParamsInlined) {
  // Legacy remote-text lane: both knobs off inlines literals into the text
  // (the pre-fast-lane behaviour; guaranteed node parse miss per distinct
  // values).
  engine::ScopedDmlPassThrough no_passthrough(false);
  engine::ScopedDmlParamBinding no_binding(false);
  RouteResult route;
  route.type = RouteType::kStandard;
  route.units.push_back(RouteUnit{"ds_0", {{"t_user", "t_user_0"}}, {1}});
  auto r = MustRewrite("INSERT INTO t_user (uid, name) VALUES (?, ?), (?, ?)",
                       route, {Value(0), Value("a"), Value(2), Value("b")});
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_NE(r.units[0].sql.find("(2, 'b')"), std::string::npos);
  EXPECT_TRUE(r.units[0].params.empty());
}

TEST(RewriteTest, SelectParamsPreserved) {
  auto r = MustRewrite("SELECT * FROM t_user WHERE uid > ?", TwoUnitRoute(),
                       {Value(5)});
  ASSERT_EQ(r.units.size(), 2u);
  ASSERT_EQ(r.units[0].params.size(), 1u);
  EXPECT_EQ(r.units[0].params[0], Value(5));
  EXPECT_NE(r.units[0].sql.find("?"), std::string::npos);
}

TEST(RewriteTest, StarWithAggregationRejected) {
  auto stmt = sql::ParseSQL("SELECT *, COUNT(*) FROM t_user");
  ASSERT_TRUE(stmt.ok());
  RewriteEngine engine;
  EXPECT_FALSE(engine.Rewrite(**stmt, TwoUnitRoute(), {}).ok());
}

TEST(RewriteTest, UpdateRenamed) {
  engine::ScopedDmlPassThrough text_lane(false);
  auto r = MustRewrite("UPDATE t_user SET name = 'x' WHERE uid = 1",
                       TwoUnitRoute());
  EXPECT_NE(r.units[0].sql.find("UPDATE t_user_0"), std::string::npos);
  // Even on the text lane the rewritten AST rides along so observers (BASE
  // undo capture) never re-parse the unit.
  EXPECT_NE(r.units[0].stmt, nullptr);
  EXPECT_FALSE(r.merge.is_select);
}

TEST(RewriteTest, UpdateStructuredByDefault) {
  auto r = MustRewrite("UPDATE t_user SET name = ? WHERE uid = ?",
                       TwoUnitRoute(), {Value("x"), Value(7)});
  ASSERT_EQ(r.units.size(), 2u);
  for (const auto& unit : r.units) {
    EXPECT_TRUE(unit.sql.empty());
    ASSERT_NE(unit.stmt, nullptr);
    // UPDATE/DELETE are not row-split, so the full parameter vector ships.
    ASSERT_EQ(unit.params.size(), 2u);
    EXPECT_EQ(unit.params[0], Value("x"));
    EXPECT_EQ(unit.params[1], Value(7));
  }
  const auto& dialect = sql::Dialect::Get(sql::DialectType::kMySQL);
  EXPECT_NE(r.units[0].RenderSQL(dialect).find("UPDATE t_user_0"),
            std::string::npos);
}

}  // namespace
}  // namespace sphere::core
