#include "core/algorithm.h"

#include <gtest/gtest.h>

#include <set>

namespace sphere::core {
namespace {

std::vector<std::string> Tables(int n, const std::string& prefix = "t_") {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

std::unique_ptr<ShardingAlgorithm> Make(const std::string& type,
                                        Properties props = {}) {
  auto r = CreateShardingAlgorithm(type, props);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(AlgorithmTest, PresetListHasTenTypes) {
  auto types = ListShardingAlgorithmTypes();
  EXPECT_GE(types.size(), 10u);
  for (const char* t : {"MOD", "HASH_MOD", "VOLUME_RANGE", "BOUNDARY_RANGE",
                        "AUTO_INTERVAL", "INTERVAL", "INLINE", "COMPLEX_INLINE",
                        "HINT_INLINE", "CLASS_BASED"}) {
    EXPECT_NE(std::find(types.begin(), types.end(), t), types.end()) << t;
  }
}

TEST(AlgorithmTest, ModShardsBySuffix) {
  auto algo = Make("MOD", {{"sharding-count", "4"}});
  auto targets = Tables(4);
  EXPECT_EQ(*algo->DoSharding(targets, Value(6)), "t_2");
  EXPECT_EQ(*algo->DoSharding(targets, Value(-1)), "t_3");  // wraps positive
  EXPECT_EQ(*algo->DoSharding(targets, Value(0)), "t_0");
}

TEST(AlgorithmTest, ModRangeNarrowSpan) {
  auto algo = Make("MOD", {{"sharding-count", "4"}});
  auto targets = Tables(4);
  auto out = algo->DoRangeSharding(targets, Value(5), Value(6));
  ASSERT_EQ(out.size(), 2u);  // 5 % 4 = 1, 6 % 4 = 2
  auto wide = algo->DoRangeSharding(targets, Value(0), Value(100));
  EXPECT_EQ(wide.size(), 4u);
}

TEST(AlgorithmTest, HashModDeterministicAndSpread) {
  auto algo = Make("HASH_MOD", {{"sharding-count", "8"}});
  auto targets = Tables(8);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    auto t1 = *algo->DoSharding(targets, Value(i));
    auto t2 = *algo->DoSharding(targets, Value(i));
    EXPECT_EQ(t1, t2);
    seen.insert(t1);
  }
  EXPECT_EQ(seen.size(), 8u);  // all shards hit
}

TEST(AlgorithmTest, HashModStrings) {
  auto algo = Make("HASH_MOD", {{"sharding-count", "4"}});
  auto targets = Tables(4);
  EXPECT_EQ(*algo->DoSharding(targets, Value("merchant-1")),
            *algo->DoSharding(targets, Value("merchant-1")));
}

TEST(AlgorithmTest, VolumeRange) {
  // Shards: (-inf,0) | [0,100) | [100,200) | [200, inf)
  auto algo = Make("VOLUME_RANGE", {{"range-lower", "0"},
                                    {"range-upper", "200"},
                                    {"sharding-volume", "100"}});
  auto targets = Tables(4);
  EXPECT_EQ(*algo->DoSharding(targets, Value(-5)), "t_0");
  EXPECT_EQ(*algo->DoSharding(targets, Value(50)), "t_1");
  EXPECT_EQ(*algo->DoSharding(targets, Value(150)), "t_2");
  EXPECT_EQ(*algo->DoSharding(targets, Value(500)), "t_3");
  auto out = algo->DoRangeSharding(targets, Value(50), Value(150));
  EXPECT_EQ(out.size(), 2u);
}

TEST(AlgorithmTest, BoundaryRange) {
  auto algo = Make("BOUNDARY_RANGE", {{"sharding-ranges", "10,20,30"}});
  auto targets = Tables(4);
  EXPECT_EQ(*algo->DoSharding(targets, Value(5)), "t_0");
  EXPECT_EQ(*algo->DoSharding(targets, Value(10)), "t_1");
  EXPECT_EQ(*algo->DoSharding(targets, Value(29)), "t_2");
  EXPECT_EQ(*algo->DoSharding(targets, Value(30)), "t_3");
}

TEST(AlgorithmTest, BoundaryRangeRejectsUnsorted) {
  EXPECT_FALSE(
      CreateShardingAlgorithm("BOUNDARY_RANGE", {{"sharding-ranges", "30,10"}})
          .ok());
}

TEST(AlgorithmTest, AutoInterval) {
  auto algo = Make("AUTO_INTERVAL",
                   {{"datetime-lower", "1000"}, {"sharding-seconds", "100"}});
  auto targets = Tables(5);
  EXPECT_EQ(*algo->DoSharding(targets, Value(1000)), "t_0");
  EXPECT_EQ(*algo->DoSharding(targets, Value(1250)), "t_2");
  EXPECT_EQ(*algo->DoSharding(targets, Value(500)), "t_0");
}

TEST(AlgorithmTest, IntervalByMonth) {
  // BestPay style: monthly shards starting 2021-01.
  auto algo = Make("INTERVAL",
                   {{"datetime-lower", "2021-01"}, {"sharding-months", "1"}});
  auto targets = Tables(12);
  EXPECT_EQ(*algo->DoSharding(targets, Value(202101)), "t_0");
  EXPECT_EQ(*algo->DoSharding(targets, Value(202104)), "t_3");
  EXPECT_EQ(*algo->DoSharding(targets, Value("2021-12")), "t_11");
  auto out = algo->DoRangeSharding(targets, Value(202102), Value(202104));
  EXPECT_EQ(out.size(), 3u);
}

TEST(AlgorithmTest, InlineExpression) {
  auto algo = Make("INLINE", {{"algorithm-expression", "t_user_${uid % 2}"},
                              {"sharding-column", "uid"}});
  std::vector<std::string> targets = {"t_user_0", "t_user_1"};
  EXPECT_EQ(*algo->DoSharding(targets, Value(7)), "t_user_1");
  EXPECT_EQ(*algo->DoSharding(targets, Value(8)), "t_user_0");
}

TEST(AlgorithmTest, InlineArithmetic) {
  auto algo = Make("INLINE", {{"algorithm-expression", "t_${(uid + 1) * 2 % 4}"},
                              {"sharding-column", "uid"}});
  auto targets = Tables(4);
  EXPECT_EQ(*algo->DoSharding(targets, Value(1)), "t_0");  // (1+1)*2 % 4 = 0
  EXPECT_EQ(*algo->DoSharding(targets, Value(2)), "t_2");
}

TEST(AlgorithmTest, InlineUnknownTargetFails) {
  auto algo = Make("INLINE", {{"algorithm-expression", "t_${uid % 8}"},
                              {"sharding-column", "uid"}});
  auto targets = Tables(2);
  EXPECT_FALSE(algo->DoSharding(targets, Value(5)).ok());
}

TEST(AlgorithmTest, ComplexInlineMultiColumn) {
  auto algo = Make("COMPLEX_INLINE",
                   {{"algorithm-expression", "t_${(a + b) % 4}"}});
  auto targets = Tables(4);
  std::map<std::string, Value> values{{"a", Value(3)}, {"b", Value(2)}};
  EXPECT_EQ(*algo->DoComplexSharding(targets, values), "t_1");
}

TEST(AlgorithmTest, HintInlineDefaultMod) {
  auto algo = Make("HINT_INLINE");
  auto targets = Tables(3);
  EXPECT_EQ(*algo->DoSharding(targets, Value(4)), "t_1");
}

TEST(AlgorithmTest, ClassBasedDelegates) {
  Properties props{{"algorithm-class-name", "MOD"}, {"sharding-count", "2"}};
  auto algo = Make("CLASS_BASED", props);
  auto targets = Tables(2);
  EXPECT_EQ(*algo->DoSharding(targets, Value(3)), "t_1");
}

class EvenOddAlgorithm : public ShardingAlgorithm {
 public:
  const char* Type() const override { return "EVEN_ODD"; }
  Result<std::string> DoSharding(const std::vector<std::string>& targets,
                                 const Value& value) const override {
    return targets[value.ToInt() % 2 == 0 ? 0 : 1];
  }
};

TEST(AlgorithmTest, SpiRegistrationOfUserAlgorithm) {
  static bool registered = [] {
    return RegisterShardingAlgorithmFactory(
               "EVEN_ODD", [] { return std::make_unique<EvenOddAlgorithm>(); })
        .ok();
  }();
  EXPECT_TRUE(registered);
  auto algo = Make("EVEN_ODD");
  std::vector<std::string> targets = {"evens", "odds"};
  EXPECT_EQ(*algo->DoSharding(targets, Value(2)), "evens");
  EXPECT_EQ(*algo->DoSharding(targets, Value(3)), "odds");
  // Double registration is rejected.
  EXPECT_FALSE(RegisterShardingAlgorithmFactory(
                   "even_odd", [] { return std::make_unique<EvenOddAlgorithm>(); })
                   .ok());
}

TEST(AlgorithmTest, UnknownTypeFails) {
  EXPECT_FALSE(CreateShardingAlgorithm("NOPE", {}).ok());
}

/// Property: every preset single-value algorithm maps each value to exactly
/// one target from the list.
class AlgorithmPartitionTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(AlgorithmPartitionTest, EveryValueHasExactlyOneTarget) {
  Properties props{{"sharding-count", "4"},
                   {"range-lower", "0"},
                   {"range-upper", "300"},
                   {"sharding-volume", "100"},
                   {"sharding-ranges", "100,200,300"},
                   {"datetime-lower", "0"},
                   {"sharding-seconds", "1000"},
                   {"algorithm-expression", "t_${value % 4}"},
                   {"sharding-column", "value"}};
  auto algo = Make(GetParam(), props);
  auto targets = Tables(4);
  for (int64_t v = 0; v < 500; v += 7) {
    auto t = algo->DoSharding(targets, Value(v));
    ASSERT_TRUE(t.ok()) << GetParam() << " value " << v;
    EXPECT_NE(std::find(targets.begin(), targets.end(), *t), targets.end());
    // Deterministic.
    EXPECT_EQ(*t, *algo->DoSharding(targets, Value(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, AlgorithmPartitionTest,
                         ::testing::Values("MOD", "HASH_MOD", "VOLUME_RANGE",
                                           "BOUNDARY_RANGE", "AUTO_INTERVAL",
                                           "INLINE"));

/// Property: range sharding never excludes the shard that precise sharding
/// picks for a value inside the range.
class AlgorithmRangeCoverTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(AlgorithmRangeCoverTest, RangeCoversPreciseTargets) {
  Properties props{{"sharding-count", "4"},
                   {"range-lower", "0"},
                   {"range-upper", "300"},
                   {"sharding-volume", "100"},
                   {"sharding-ranges", "100,200,300"},
                   {"datetime-lower", "0"},
                   {"sharding-seconds", "100"}};
  auto algo = Make(GetParam(), props);
  auto targets = Tables(6);
  for (int64_t lo = 0; lo < 400; lo += 37) {
    int64_t hi = lo + 55;
    auto range_targets = algo->DoRangeSharding(targets, Value(lo), Value(hi));
    for (int64_t v = lo; v <= hi; v += 5) {
      auto t = algo->DoSharding(targets, Value(v));
      ASSERT_TRUE(t.ok());
      EXPECT_NE(std::find(range_targets.begin(), range_targets.end(), *t),
                range_targets.end())
          << GetParam() << ": value " << v << " in [" << lo << "," << hi
          << "] routed to " << *t << " which the range result misses";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, AlgorithmRangeCoverTest,
                         ::testing::Values("MOD", "VOLUME_RANGE",
                                           "BOUNDARY_RANGE", "AUTO_INTERVAL"));

}  // namespace
}  // namespace sphere::core
