#ifndef SPHERE_TESTS_CORE_TEST_CLUSTER_H_
#define SPHERE_TESTS_CORE_TEST_CLUSTER_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "engine/storage_node.h"

namespace sphere::core::testing {

/// A zero-latency cluster: `num_sources` storage nodes attached to a runtime
/// as ds_0..ds_{n-1}, with no rule installed yet.
class TestCluster {
 public:
  explicit TestCluster(int num_sources, RuntimeConfig config = RuntimeConfig()) {
    runtime_ = std::make_unique<ShardingRuntime>(config,
                                                 net::NetworkConfig::Zero());
    for (int i = 0; i < num_sources; ++i) {
      auto node = std::make_unique<engine::StorageNode>("ds_" + std::to_string(i));
      EXPECT_TRUE(runtime_->AttachNode(node->name(), node.get()).ok());
      nodes_.push_back(std::move(node));
    }
  }

  /// Standard fixture rule: t_user and t_order MOD-sharded by uid into
  /// `shards` tables over all data sources (binding optional), plus a
  /// broadcast table t_dict and default ds_0 for single tables.
  Status InstallModRule(int shards, bool bind_user_order) {
    ShardingRuleConfig config;
    config.default_data_source = "ds_0";
    config.broadcast_tables.insert("t_dict");
    for (const std::string& table :
         {std::string("t_user"), std::string("t_order")}) {
      TableRuleConfig t;
      t.logic_table = table;
      t.auto_resources = DataSourceNames();
      t.auto_sharding_count = shards;
      t.table_strategy.columns = {"uid"};
      t.table_strategy.algorithm_type = "MOD";
      t.table_strategy.props.Set("sharding-count", std::to_string(shards));
      config.tables.push_back(std::move(t));
    }
    if (bind_user_order) {
      config.binding_groups.push_back({"t_user", "t_order"});
    }
    return runtime_->SetRule(std::move(config));
  }

  /// Creates the sharded tables' physical schemas through the runtime (DDL
  /// broadcast) and returns any error.
  Status CreateUserOrderSchemas() {
    auto r1 = runtime_->Execute(
        "CREATE TABLE t_user (uid BIGINT PRIMARY KEY, name VARCHAR(64), "
        "age INT, score DOUBLE)");
    if (!r1.ok()) return r1.status();
    auto r2 = runtime_->Execute(
        "CREATE TABLE t_order (oid BIGINT PRIMARY KEY, uid BIGINT, "
        "amount DOUBLE, month INT)");
    if (!r2.ok()) return r2.status();
    return Status::OK();
  }

  std::vector<std::string> DataSourceNames() const {
    std::vector<std::string> names;
    names.reserve(nodes_.size());
    for (const auto& n : nodes_) names.push_back(n->name());
    return names;
  }

  ShardingRuntime* runtime() { return runtime_.get(); }
  engine::StorageNode* node(int i) { return nodes_[static_cast<size_t>(i)].get(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Total rows of `table` on node i (0 when the table is absent).
  size_t RowsOn(int i, const std::string& table) {
    auto* t = nodes_[static_cast<size_t>(i)]->database()->FindTable(table);
    return t == nullptr ? 0 : t->row_count();
  }

 private:
  std::unique_ptr<ShardingRuntime> runtime_;
  std::vector<std::unique_ptr<engine::StorageNode>> nodes_;
};

}  // namespace sphere::core::testing

#endif  // SPHERE_TESTS_CORE_TEST_CLUSTER_H_
