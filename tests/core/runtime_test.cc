#include "core/runtime.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"
#include "tests/core/test_cluster.h"

namespace sphere::core {
namespace {

using testing::TestCluster;

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<TestCluster>(2);
    ASSERT_TRUE(cluster_->InstallModRule(4, /*bind=*/true).ok());
    ASSERT_TRUE(cluster_->CreateUserOrderSchemas().ok());
    for (int uid = 0; uid < 20; ++uid) {
      Exec(StrFormat(
          "INSERT INTO t_user (uid, name, age, score) VALUES (%d, 'u%d', %d, %d.5)",
          uid, uid, 20 + uid % 5, uid));
      Exec(StrFormat("INSERT INTO t_order (oid, uid, amount, month) VALUES "
                     "(%d, %d, %d.0, %d)",
                     100 + uid, uid, uid * 10, 202101 + uid % 3));
    }
  }

  engine::ExecResult Exec(const std::string& sql_text,
                          std::vector<Value> params = {}) {
    auto r = cluster_->runtime()->Execute(sql_text, std::move(params));
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql_text;
    return r.ok() ? std::move(r).value() : engine::ExecResult{};
  }

  std::vector<Row> Query(const std::string& sql_text,
                         std::vector<Value> params = {}) {
    auto r = Exec(sql_text, std::move(params));
    EXPECT_TRUE(r.is_query);
    return r.result_set ? engine::DrainResultSet(r.result_set.get())
                        : std::vector<Row>{};
  }

  std::unique_ptr<TestCluster> cluster_;
};

TEST_F(RuntimeTest, DdlCreatedActualTablesOnBothNodes) {
  // MOD-4 over 2 ds: suffixes 0,2 on ds_0 and 1,3 on ds_1.
  EXPECT_NE(cluster_->node(0)->database()->FindTable("t_user_0"), nullptr);
  EXPECT_NE(cluster_->node(0)->database()->FindTable("t_user_2"), nullptr);
  EXPECT_NE(cluster_->node(1)->database()->FindTable("t_user_1"), nullptr);
  EXPECT_NE(cluster_->node(1)->database()->FindTable("t_user_3"), nullptr);
  EXPECT_EQ(cluster_->node(0)->database()->FindTable("t_user_1"), nullptr);
}

TEST_F(RuntimeTest, DataLandsOnCorrectShards) {
  // uid % 4 = k -> t_user_k.
  EXPECT_EQ(cluster_->RowsOn(0, "t_user_0"), 5u);
  EXPECT_EQ(cluster_->RowsOn(1, "t_user_1"), 5u);
  EXPECT_EQ(cluster_->RowsOn(0, "t_user_2"), 5u);
  EXPECT_EQ(cluster_->RowsOn(1, "t_user_3"), 5u);
}

TEST_F(RuntimeTest, PointSelect) {
  auto rows = Query("SELECT name FROM t_user WHERE uid = 7");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("u7"));
}

TEST_F(RuntimeTest, MultiShardSelectMergesAll) {
  auto rows = Query("SELECT uid FROM t_user");
  EXPECT_EQ(rows.size(), 20u);
}

TEST_F(RuntimeTest, OrderByMergedGlobally) {
  auto rows = Query("SELECT uid FROM t_user ORDER BY uid DESC");
  ASSERT_EQ(rows.size(), 20u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][0], Value(static_cast<int64_t>(19 - i)));
  }
}

TEST_F(RuntimeTest, OrderByDerivedColumnInvisible) {
  // ORDER BY on a column outside the projection: merged correctly and the
  // derived column is trimmed.
  auto r = Exec("SELECT name FROM t_user ORDER BY uid");
  ASSERT_TRUE(r.is_query);
  EXPECT_EQ(r.result_set->columns(), std::vector<std::string>{"name"});
  auto rows = engine::DrainResultSet(r.result_set.get());
  ASSERT_EQ(rows.size(), 20u);
  EXPECT_EQ(rows[0][0], Value("u0"));
  EXPECT_EQ(rows[19][0], Value("u19"));
  EXPECT_EQ(rows[0].size(), 1u);
}

TEST_F(RuntimeTest, PaginationAcrossShards) {
  auto rows = Query("SELECT uid FROM t_user ORDER BY uid LIMIT 5, 3");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value(5));
  EXPECT_EQ(rows[2][0], Value(7));
}

TEST_F(RuntimeTest, GlobalAggregates) {
  auto rows = Query(
      "SELECT COUNT(*), SUM(uid), MIN(uid), MAX(uid), AVG(uid) FROM t_user");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(20));
  EXPECT_EQ(rows[0][1], Value(190));
  EXPECT_EQ(rows[0][2], Value(0));
  EXPECT_EQ(rows[0][3], Value(19));
  EXPECT_EQ(rows[0][4], Value(9.5));  // AVG from derived SUM/COUNT
  EXPECT_EQ(rows[0].size(), 5u);      // derived columns trimmed
}

TEST_F(RuntimeTest, AvgIsNotAverageOfAverages) {
  // Shard 0 holds uids {0,4,8,12,16}, shard 1 {1,5,9,13,17}, etc. A naive
  // average-of-averages would coincide here, so use a skewed predicate.
  auto rows = Query("SELECT AVG(uid) FROM t_user WHERE uid IN (1, 2, 3)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(2.0));
}

TEST_F(RuntimeTest, GroupByAcrossShards) {
  auto rows = Query(
      "SELECT age, COUNT(*) c FROM t_user GROUP BY age ORDER BY age");
  ASSERT_EQ(rows.size(), 5u);  // ages 20..24
  for (const auto& row : rows) {
    EXPECT_EQ(row[1], Value(4));
  }
}

TEST_F(RuntimeTest, GroupBySumMergesPartials) {
  auto rows = Query(
      "SELECT month, SUM(amount) FROM t_order GROUP BY month ORDER BY month");
  ASSERT_EQ(rows.size(), 3u);
  double total = 0;
  for (const auto& row : rows) total += row[1].ToDouble();
  EXPECT_DOUBLE_EQ(total, 190.0 * 10);
}

TEST_F(RuntimeTest, BindingJoin) {
  auto rows = Query(
      "SELECT u.name, o.amount FROM t_user u JOIN t_order o ON u.uid = o.uid "
      "WHERE u.uid IN (3, 4) ORDER BY o.amount");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value("u3"));
  EXPECT_EQ(rows[1][0], Value("u4"));
}

TEST_F(RuntimeTest, UpdateAcrossShards) {
  auto r = Exec("UPDATE t_user SET age = 99 WHERE uid IN (1, 2)");
  EXPECT_EQ(r.affected_rows, 2);
  auto rows = Query("SELECT COUNT(*) FROM t_user WHERE age = 99");
  EXPECT_EQ(rows[0][0], Value(2));
}

TEST_F(RuntimeTest, DeleteAcrossShards) {
  auto r = Exec("DELETE FROM t_user WHERE uid BETWEEN 0 AND 9");
  EXPECT_EQ(r.affected_rows, 10);
  EXPECT_EQ(Query("SELECT uid FROM t_user").size(), 10u);
}

TEST_F(RuntimeTest, BatchInsertSplitsAndSumsAffected) {
  auto r = Exec(
      "INSERT INTO t_user (uid, name, age, score) VALUES "
      "(100, 'a', 1, 0.0), (101, 'b', 1, 0.0), (102, 'c', 1, 0.0)");
  EXPECT_EQ(r.affected_rows, 3);
  EXPECT_EQ(Query("SELECT * FROM t_user WHERE uid IN (100, 101, 102)").size(), 3u);
}

TEST_F(RuntimeTest, BroadcastTableOnEveryNode) {
  Exec("CREATE TABLE t_dict (k INT PRIMARY KEY, v VARCHAR(16))");
  Exec("INSERT INTO t_dict (k, v) VALUES (1, 'one')");
  EXPECT_EQ(cluster_->RowsOn(0, "t_dict"), 1u);
  EXPECT_EQ(cluster_->RowsOn(1, "t_dict"), 1u);
  auto rows = Query("SELECT v FROM t_dict WHERE k = 1");
  ASSERT_EQ(rows.size(), 1u);  // unicast read: no duplicates
}

TEST_F(RuntimeTest, DefaultDataSourceForSingleTable) {
  Exec("CREATE TABLE t_plain (id INT PRIMARY KEY, v INT)");
  Exec("INSERT INTO t_plain (id, v) VALUES (1, 2)");
  EXPECT_EQ(cluster_->RowsOn(0, "t_plain"), 1u);
  EXPECT_EQ(cluster_->RowsOn(1, "t_plain"), 0u);
  EXPECT_EQ(Query("SELECT v FROM t_plain").size(), 1u);
}

TEST_F(RuntimeTest, DistinctAcrossShards) {
  auto rows = Query("SELECT DISTINCT age FROM t_user ORDER BY age");
  EXPECT_EQ(rows.size(), 5u);
}

TEST_F(RuntimeTest, PreparedStatementParams) {
  auto rows = Query("SELECT name FROM t_user WHERE uid = ?", {Value(11)});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("u11"));
}

TEST_F(RuntimeTest, ConnectionModeReported) {
  cluster_->runtime()->SetMaxConnectionsPerQuery(1);
  Query("SELECT uid FROM t_user");  // 4 units, 1 conn each ds -> theta 2
  EXPECT_EQ(cluster_->runtime()->last_connection_mode(),
            ConnectionMode::kConnectionStrictly);
  cluster_->runtime()->SetMaxConnectionsPerQuery(8);
  Query("SELECT uid FROM t_user");
  EXPECT_EQ(cluster_->runtime()->last_connection_mode(),
            ConnectionMode::kMemoryStrictly);
}

TEST_F(RuntimeTest, RouteErrorSurfaces) {
  auto r = cluster_->runtime()->Execute("SELECT ghost FROM t_user WHERE uid = 1");
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Oracle property test: the sharded cluster must answer exactly like one
// unsharded database for a randomized workload.
// ---------------------------------------------------------------------------

std::vector<Row> SortedRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

struct OracleCase {
  int shards;
  int sources;
  const char* algorithm;
};

class ShardingOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(ShardingOracleTest, ShardedEqualsUnsharded) {
  const OracleCase& param = GetParam();

  // Oracle: one plain storage node.
  engine::StorageNode oracle("oracle");
  auto oracle_session = oracle.OpenSession();
  ASSERT_TRUE(oracle_session
                  ->Execute("CREATE TABLE t_user (uid BIGINT PRIMARY KEY, "
                            "name VARCHAR(64), age INT, score DOUBLE)")
                  .ok());

  // Sharded cluster.
  TestCluster cluster(param.sources);
  ShardingRuleConfig config;
  config.default_data_source = "ds_0";
  TableRuleConfig t;
  t.logic_table = "t_user";
  t.auto_resources = cluster.DataSourceNames();
  t.auto_sharding_count = param.shards;
  t.table_strategy.columns = {"uid"};
  t.table_strategy.algorithm_type = param.algorithm;
  t.table_strategy.props.Set("sharding-count", std::to_string(param.shards));
  config.tables.push_back(std::move(t));
  ASSERT_TRUE(cluster.runtime()->SetRule(std::move(config)).ok());
  ASSERT_TRUE(cluster.runtime()
                  ->Execute("CREATE TABLE t_user (uid BIGINT PRIMARY KEY, "
                            "name VARCHAR(64), age INT, score DOUBLE)")
                  .ok());

  auto run_both = [&](const std::string& sql_text) {
    auto sharded = cluster.runtime()->Execute(sql_text);
    auto expected = oracle_session->Execute(sql_text);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString() << ": " << sql_text;
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    if (expected->is_query) {
      auto got = SortedRows(engine::DrainResultSet(sharded->result_set.get()));
      auto want = SortedRows(engine::DrainResultSet(expected->result_set.get()));
      ASSERT_EQ(got.size(), want.size()) << sql_text;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].size(), want[i].size()) << sql_text;
        for (size_t j = 0; j < got[i].size(); ++j) {
          if (want[i][j].is_double()) {
            ASSERT_NEAR(got[i][j].ToDouble(), want[i][j].ToDouble(), 1e-9)
                << sql_text;
          } else {
            ASSERT_EQ(got[i][j], want[i][j]) << sql_text << " row " << i;
          }
        }
      }
    } else {
      ASSERT_EQ(sharded->affected_rows, expected->affected_rows) << sql_text;
    }
  };

  Rng rng(1234);
  // Mixed workload: inserts, point/range queries, aggregations, updates,
  // deletes, pagination.
  for (int uid = 0; uid < 60; ++uid) {
    run_both(StrFormat("INSERT INTO t_user (uid, name, age, score) VALUES "
                       "(%d, 'name%d', %d, %d.25)",
                       uid, uid, static_cast<int>(rng.Uniform(18, 24)),
                       static_cast<int>(rng.Uniform(0, 50))));
  }
  const char* queries[] = {
      "SELECT * FROM t_user WHERE uid = 13",
      "SELECT * FROM t_user WHERE uid IN (5, 6, 7, 200)",
      "SELECT * FROM t_user WHERE uid BETWEEN 10 AND 31",
      "SELECT name FROM t_user WHERE age > 20 ORDER BY uid",
      "SELECT COUNT(*), SUM(score), MIN(score), MAX(score), AVG(score) FROM t_user",
      "SELECT age, COUNT(*), AVG(score) FROM t_user GROUP BY age ORDER BY age",
      "SELECT uid FROM t_user ORDER BY score DESC, uid ASC LIMIT 7",
      "SELECT uid FROM t_user ORDER BY uid LIMIT 13, 9",
      "SELECT DISTINCT age FROM t_user ORDER BY age",
      "SELECT age, SUM(score) s FROM t_user WHERE uid < 40 GROUP BY age "
      "ORDER BY age DESC",
  };
  for (const char* q : queries) run_both(q);

  run_both("UPDATE t_user SET score = score + 5 WHERE age = 20");
  run_both("UPDATE t_user SET name = 'renamed' WHERE uid = 17");
  for (const char* q : queries) run_both(q);

  run_both("DELETE FROM t_user WHERE uid BETWEEN 20 AND 29");
  run_both("DELETE FROM t_user WHERE uid = 3");
  for (const char* q : queries) run_both(q);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, ShardingOracleTest,
    ::testing::Values(OracleCase{4, 2, "MOD"}, OracleCase{10, 2, "MOD"},
                      OracleCase{4, 4, "MOD"}, OracleCase{8, 2, "HASH_MOD"},
                      OracleCase{3, 3, "HASH_MOD"}));

}  // namespace
}  // namespace sphere::core
