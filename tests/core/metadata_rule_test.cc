#include <gtest/gtest.h>

#include "core/metadata.h"
#include "core/rule.h"

namespace sphere::core {
namespace {

TEST(MetadataTest, ParseDataNode) {
  auto n = ParseDataNode("ds_0.t_user_1");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->data_source, "ds_0");
  EXPECT_EQ(n->table, "t_user_1");
  EXPECT_EQ(n->ToString(), "ds_0.t_user_1");
  EXPECT_FALSE(ParseDataNode("no_dot").ok());
  EXPECT_FALSE(ParseDataNode(".empty").ok());
}

TEST(MetadataTest, ExpandBothRanges) {
  auto nodes = ExpandDataNodes("ds_${0..1}.t_user_${0..3}");
  ASSERT_TRUE(nodes.ok());
  ASSERT_EQ(nodes->size(), 4u);
  // Table k -> ds (k mod 2).
  EXPECT_EQ((*nodes)[0].ToString(), "ds_0.t_user_0");
  EXPECT_EQ((*nodes)[1].ToString(), "ds_1.t_user_1");
  EXPECT_EQ((*nodes)[2].ToString(), "ds_0.t_user_2");
  EXPECT_EQ((*nodes)[3].ToString(), "ds_1.t_user_3");
}

TEST(MetadataTest, ExpandTableRangeOnly) {
  auto nodes = ExpandDataNodes("ds_0.t_${0..2}");
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 3u);
  EXPECT_EQ((*nodes)[2].ToString(), "ds_0.t_2");
}

TEST(MetadataTest, ExpandCommaList) {
  auto nodes = ExpandDataNodes("ds_0.t_a, ds_1.t_b");
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 2u);
}

TEST(MetadataTest, ExpandErrors) {
  EXPECT_FALSE(ExpandDataNodes("ds_${0..}.t").ok());
  EXPECT_FALSE(ExpandDataNodes("ds_${5..1}.t").ok());
  EXPECT_FALSE(ExpandDataNodes("").ok());
}

TableRuleConfig UserRule() {
  TableRuleConfig t;
  t.logic_table = "t_user";
  t.actual_data_nodes = "ds_${0..1}.t_user_${0..3}";
  t.table_strategy.columns = {"uid"};
  t.table_strategy.algorithm_type = "MOD";
  t.table_strategy.props.Set("sharding-count", "4");
  return t;
}

TEST(TableRuleTest, BuildResolvesNodes) {
  auto rule = TableRule::Build(UserRule(), 0);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ((*rule)->actual_nodes().size(), 4u);
  EXPECT_EQ((*rule)->data_sources(),
            (std::vector<std::string>{"ds_0", "ds_1"}));
  EXPECT_EQ((*rule)->actual_tables().size(), 4u);
  EXPECT_EQ((*rule)->TablesIn("ds_0"),
            (std::vector<std::string>{"t_user_0", "t_user_2"}));
  EXPECT_TRUE((*rule)->IsShardingColumn("UID"));
  EXPECT_FALSE((*rule)->IsShardingColumn("name"));
}

TEST(TableRuleTest, AutoTableLayout) {
  TableRuleConfig t;
  t.logic_table = "t_order";
  t.auto_resources = {"ds_0", "ds_1"};
  t.auto_sharding_count = 4;
  t.table_strategy.columns = {"uid"};
  t.table_strategy.algorithm_type = "HASH_MOD";
  t.table_strategy.props.Set("sharding-count", "4");
  auto rule = TableRule::Build(t, 0);
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ((*rule)->actual_nodes().size(), 4u);
  // AutoTable puts t_order_k on ds_{k mod 2} (paper §V-A).
  EXPECT_EQ((*rule)->actual_nodes()[0].ToString(), "ds_0.t_order_0");
  EXPECT_EQ((*rule)->actual_nodes()[1].ToString(), "ds_1.t_order_1");
  EXPECT_EQ((*rule)->actual_nodes()[3].ToString(), "ds_1.t_order_3");
}

TEST(TableRuleTest, KeyGeneratorAttached) {
  TableRuleConfig t = UserRule();
  t.keygen_column = "uid";
  t.keygen_type = "SNOWFLAKE";
  auto rule = TableRule::Build(t, 3);
  ASSERT_TRUE(rule.ok());
  ASSERT_NE((*rule)->key_generator(), nullptr);
  EXPECT_STREQ((*rule)->key_generator()->Type(), "SNOWFLAKE");
}

TEST(TableRuleTest, MissingNodesRejected) {
  TableRuleConfig t;
  t.logic_table = "t";
  EXPECT_FALSE(TableRule::Build(t, 0).ok());
}

TEST(ShardingRuleTest, BuildAndLookup) {
  ShardingRuleConfig config;
  config.tables.push_back(UserRule());
  config.default_data_source = "ds_0";
  config.broadcast_tables.insert("t_dict");
  auto rule = ShardingRule::Build(std::move(config));
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE((*rule)->IsShardedTable("T_USER"));
  EXPECT_FALSE((*rule)->IsShardedTable("t_other"));
  EXPECT_TRUE((*rule)->IsBroadcastTable("t_dict"));
  EXPECT_EQ((*rule)->AllDataSources(),
            (std::vector<std::string>{"ds_0", "ds_1"}));
}

TEST(ShardingRuleTest, BindingValidation) {
  ShardingRuleConfig config;
  config.tables.push_back(UserRule());
  TableRuleConfig order = UserRule();
  order.logic_table = "t_order";
  order.actual_data_nodes = "ds_${0..1}.t_order_${0..3}";
  config.tables.push_back(order);
  config.binding_groups.push_back({"t_user", "t_order"});
  auto rule = ShardingRule::Build(std::move(config));
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE((*rule)->IsBinding("t_user", "t_order"));
  EXPECT_TRUE((*rule)->IsBinding("T_ORDER", "T_USER"));
  EXPECT_FALSE((*rule)->IsBinding("t_user", "t_dict"));
}

TEST(ShardingRuleTest, BindingMismatchedNodeCountRejected) {
  ShardingRuleConfig config;
  config.tables.push_back(UserRule());
  TableRuleConfig order = UserRule();
  order.logic_table = "t_order";
  order.actual_data_nodes = "ds_${0..1}.t_order_${0..1}";  // 2 vs 4 nodes
  config.tables.push_back(order);
  config.binding_groups.push_back({"t_user", "t_order"});
  EXPECT_FALSE(ShardingRule::Build(std::move(config)).ok());
}

TEST(ShardingRuleTest, BindingUnknownTableRejected) {
  ShardingRuleConfig config;
  config.tables.push_back(UserRule());
  config.binding_groups.push_back({"t_user", "t_ghost"});
  EXPECT_FALSE(ShardingRule::Build(std::move(config)).ok());
}

TEST(ShardingRuleTest, DuplicateRuleRejected) {
  ShardingRuleConfig config;
  config.tables.push_back(UserRule());
  config.tables.push_back(UserRule());
  EXPECT_FALSE(ShardingRule::Build(std::move(config)).ok());
}

}  // namespace
}  // namespace sphere::core
