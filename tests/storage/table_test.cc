#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/database.h"

namespace sphere::storage {
namespace {

Schema UserSchema() {
  return Schema({Column("uid", ColumnType::kInt, /*pk=*/true),
                 Column("name", ColumnType::kString),
                 Column("score", ColumnType::kDouble)});
}

TEST(TableTest, InsertFindDelete) {
  Table t("t_user", UserSchema());
  Value pk;
  ASSERT_TRUE(t.Insert({Value(1), Value("ann"), Value(9.5)}, &pk).ok());
  EXPECT_EQ(pk, Value(1));
  const Row* row = t.Find(Value(1));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1], Value("ann"));
  Row old;
  ASSERT_TRUE(t.Delete(Value(1), &old).ok());
  EXPECT_EQ(old[1], Value("ann"));
  EXPECT_EQ(t.Find(Value(1)), nullptr);
}

TEST(TableTest, DuplicatePkRejected) {
  Table t("t_user", UserSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a"), Value(1.0)}, nullptr).ok());
  Status st = t.Insert({Value(1), Value("b"), Value(2.0)}, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kConflict);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, ArityMismatchRejected) {
  Table t("t_user", UserSchema());
  EXPECT_EQ(t.Insert({Value(1)}, nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, TypeCoercionOnInsert) {
  Table t("t_user", UserSchema());
  ASSERT_TRUE(t.Insert({Value("5"), Value(123), Value(1)}, nullptr).ok());
  const Row* row = t.Find(Value(5));
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE((*row)[0].is_int());
  EXPECT_TRUE((*row)[1].is_string());
  EXPECT_TRUE((*row)[2].is_double());
}

TEST(TableTest, NotNullEnforced) {
  Schema s({Column("id", ColumnType::kInt, true),
            Column("v", ColumnType::kString, false, /*not_null=*/true)});
  Table t("t", s);
  EXPECT_FALSE(t.Insert({Value(1), Value::Null()}, nullptr).ok());
}

TEST(TableTest, NullPkRejected) {
  Table t("t_user", UserSchema());
  EXPECT_FALSE(t.Insert({Value::Null(), Value("x"), Value(0.0)}, nullptr).ok());
}

TEST(TableTest, UpdateReplacesRow) {
  Table t("t_user", UserSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a"), Value(1.0)}, nullptr).ok());
  ASSERT_TRUE(t.Update(Value(1), {Value(1), Value("b"), Value(2.0)}).ok());
  EXPECT_EQ((*t.Find(Value(1)))[1], Value("b"));
  EXPECT_EQ(t.Update(Value(9), {Value(9), Value("x"), Value(0.0)}).code(),
            StatusCode::kNotFound);
}

TEST(TableTest, PkChangeRejected) {
  Table t("t_user", UserSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a"), Value(1.0)}, nullptr).ok());
  EXPECT_FALSE(t.Update(Value(1), {Value(2), Value("a"), Value(1.0)}).ok());
}

TEST(TableTest, HiddenRowIdWithoutPk) {
  Schema s({Column("a", ColumnType::kInt), Column("b", ColumnType::kInt)});
  Table t("t", s);
  Value pk1, pk2;
  ASSERT_TRUE(t.Insert({Value(7), Value(8)}, &pk1).ok());
  ASSERT_TRUE(t.Insert({Value(7), Value(8)}, &pk2).ok());  // duplicates fine
  EXPECT_NE(pk1, pk2);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, SecondaryIndexMaintained) {
  Table t("t_user", UserSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("ann"), Value(1.0)}, nullptr).ok());
  ASSERT_TRUE(t.Insert({Value(2), Value("bob"), Value(2.0)}, nullptr).ok());
  ASSERT_TRUE(t.CreateIndex("idx_name", "name").ok());
  const SecondaryIndex* idx = t.FindIndexOn(1);
  ASSERT_NE(idx, nullptr);
  ASSERT_NE(idx->Lookup(Value("ann")), nullptr);
  EXPECT_EQ(idx->Lookup(Value("ann"))->size(), 1u);

  // Insert after index creation.
  ASSERT_TRUE(t.Insert({Value(3), Value("ann"), Value(3.0)}, nullptr).ok());
  EXPECT_EQ(idx->Lookup(Value("ann"))->size(), 2u);

  // Update moves index entry.
  ASSERT_TRUE(t.Update(Value(3), {Value(3), Value("carol"), Value(3.0)}).ok());
  EXPECT_EQ(idx->Lookup(Value("ann"))->size(), 1u);
  ASSERT_NE(idx->Lookup(Value("carol")), nullptr);

  // Delete removes entry.
  ASSERT_TRUE(t.Delete(Value(3), nullptr).ok());
  EXPECT_EQ(idx->Lookup(Value("carol")), nullptr);
}

TEST(TableTest, DuplicateIndexNameRejected) {
  Table t("t_user", UserSchema());
  ASSERT_TRUE(t.CreateIndex("i", "name").ok());
  EXPECT_EQ(t.CreateIndex("i", "score").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t.CreateIndex("j", "nope").code(), StatusCode::kNotFound);
}

TEST(TableTest, TruncateClearsRowsAndIndexes) {
  Table t("t_user", UserSchema());
  ASSERT_TRUE(t.CreateIndex("i", "name").ok());
  ASSERT_TRUE(t.Insert({Value(1), Value("a"), Value(1.0)}, nullptr).ok());
  t.Truncate();
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_EQ(t.FindIndexOn(1)->Lookup(Value("a")), nullptr);
}

TEST(DatabaseTest, CreateFindDrop) {
  Database db("ds0");
  ASSERT_TRUE(db.CreateTable("t_user", UserSchema()).ok());
  EXPECT_NE(db.FindTable("T_USER"), nullptr);  // case-insensitive
  EXPECT_EQ(db.CreateTable("t_user", UserSchema()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.CreateTable("t_user", UserSchema(), /*if_not_exists=*/true).ok());
  EXPECT_TRUE(db.DropTable("t_user").ok());
  EXPECT_EQ(db.DropTable("t_user").code(), StatusCode::kNotFound);
  EXPECT_TRUE(db.DropTable("t_user", /*if_exists=*/true).ok());
}

TEST(DatabaseTest, TableNamesSorted) {
  Database db;
  ASSERT_TRUE(db.CreateTable("zeta", UserSchema()).ok());
  ASSERT_TRUE(db.CreateTable("alpha", UserSchema()).ok());
  auto names = db.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace sphere::storage
