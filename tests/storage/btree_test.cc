#include "storage/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace sphere::storage {
namespace {

TEST(BPlusTreeTest, InsertAndFind) {
  BPlusTree<int> tree;
  EXPECT_TRUE(tree.Insert(Value(1), 10));
  EXPECT_TRUE(tree.Insert(Value(2), 20));
  ASSERT_NE(tree.Find(Value(1)), nullptr);
  EXPECT_EQ(*tree.Find(Value(1)), 10);
  EXPECT_EQ(tree.Find(Value(3)), nullptr);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(BPlusTreeTest, InsertDuplicateOverwrites) {
  BPlusTree<int> tree;
  EXPECT_TRUE(tree.Insert(Value(1), 10));
  EXPECT_FALSE(tree.Insert(Value(1), 99));
  EXPECT_EQ(*tree.Find(Value(1)), 99);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, EraseRemoves) {
  BPlusTree<int> tree;
  tree.Insert(Value(1), 10);
  EXPECT_TRUE(tree.Erase(Value(1)));
  EXPECT_FALSE(tree.Erase(Value(1)));
  EXPECT_EQ(tree.Find(Value(1)), nullptr);
  EXPECT_EQ(tree.size(), 0u);
}

TEST(BPlusTreeTest, OrderedIterationAfterManySplits) {
  BPlusTree<int> tree;
  Rng rng(11);
  std::vector<int64_t> keys;
  for (int i = 0; i < 20000; ++i) keys.push_back(i);
  // Shuffle.
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(i) - 1))]);
  }
  for (int64_t k : keys) tree.Insert(Value(k), static_cast<int>(k));
  EXPECT_EQ(tree.size(), 20000u);
  EXPECT_GT(tree.Height(), 1);
  int64_t expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), Value(expected));
    ++expected;
  }
  EXPECT_EQ(expected, 20000);
}

TEST(BPlusTreeTest, LowerBoundRangeScan) {
  BPlusTree<int> tree;
  for (int i = 0; i < 100; i += 2) tree.Insert(Value(i), i);
  auto it = tree.LowerBoundIter(Value(31));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Value(32));
  int count = 0;
  for (; it.Valid() && it.key() <= Value(40); it.Next()) ++count;
  EXPECT_EQ(count, 5);  // 32 34 36 38 40
}

TEST(BPlusTreeTest, LowerBoundPastEnd) {
  BPlusTree<int> tree;
  tree.Insert(Value(1), 1);
  EXPECT_FALSE(tree.LowerBoundIter(Value(100)).Valid());
}

TEST(BPlusTreeTest, MixedInsertEraseStress) {
  BPlusTree<int> tree;
  Rng rng(5);
  std::vector<bool> present(5000, false);
  for (int round = 0; round < 50000; ++round) {
    int64_t k = rng.Uniform(0, 4999);
    if (rng.Next() % 2 == 0) {
      tree.Insert(Value(k), static_cast<int>(k));
      present[static_cast<size_t>(k)] = true;
    } else {
      tree.Erase(Value(k));
      present[static_cast<size_t>(k)] = false;
    }
  }
  size_t expected = static_cast<size_t>(
      std::count(present.begin(), present.end(), true));
  EXPECT_EQ(tree.size(), expected);
  for (int64_t k = 0; k < 5000; ++k) {
    EXPECT_EQ(tree.Find(Value(k)) != nullptr, present[static_cast<size_t>(k)]);
  }
}

TEST(BPlusTreeTest, HeightGrowsWithSize) {
  BPlusTree<int> small, large;
  for (int i = 0; i < 10; ++i) small.Insert(Value(i), i);
  for (int i = 0; i < 100000; ++i) large.Insert(Value(i), i);
  EXPECT_LT(small.Height(), large.Height());
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree<int> tree;
  tree.Insert(Value("banana"), 1);
  tree.Insert(Value("apple"), 2);
  tree.Insert(Value("cherry"), 3);
  auto it = tree.Begin();
  EXPECT_EQ(it.key(), Value("apple"));
  it.Next();
  EXPECT_EQ(it.key(), Value("banana"));
}

TEST(BPlusTreeTest, ClearResets) {
  BPlusTree<int> tree;
  for (int i = 0; i < 1000; ++i) tree.Insert(Value(i), i);
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Begin().Valid());
  tree.Insert(Value(5), 5);
  EXPECT_EQ(tree.size(), 1u);
}

}  // namespace
}  // namespace sphere::storage
