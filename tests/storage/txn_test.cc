#include "storage/txn.h"

#include <gtest/gtest.h>

namespace sphere::storage {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({Column("id", ColumnType::kInt, true),
              Column("v", ColumnType::kString)});
    ASSERT_TRUE(db_.CreateTable("t", s).ok());
    table_ = db_.FindTable("t");
    ASSERT_TRUE(table_->Insert({Value(1), Value("one")}, nullptr).ok());
    ASSERT_TRUE(table_->Insert({Value(2), Value("two")}, nullptr).ok());
  }

  Database db_{"ds0"};
  Table* table_ = nullptr;
  TransactionManager tm_{&db_};
};

TEST_F(TxnTest, CommitKeepsChanges) {
  Transaction* txn = tm_.Begin();
  ASSERT_TRUE(table_->Insert({Value(3), Value("three")}, nullptr).ok());
  txn->AddUndo({UndoRecord::Op::kInsert, "t", Value(3), {}});
  ASSERT_TRUE(tm_.Commit(txn).ok());
  EXPECT_NE(table_->Find(Value(3)), nullptr);
  EXPECT_EQ(tm_.active_count(), 0u);
}

TEST_F(TxnTest, RollbackUndoesInsert) {
  Transaction* txn = tm_.Begin();
  ASSERT_TRUE(table_->Insert({Value(3), Value("three")}, nullptr).ok());
  txn->AddUndo({UndoRecord::Op::kInsert, "t", Value(3), {}});
  ASSERT_TRUE(tm_.Rollback(txn).ok());
  EXPECT_EQ(table_->Find(Value(3)), nullptr);
}

TEST_F(TxnTest, RollbackUndoesUpdate) {
  Transaction* txn = tm_.Begin();
  Row old = *table_->Find(Value(1));
  ASSERT_TRUE(table_->Update(Value(1), {Value(1), Value("changed")}).ok());
  txn->AddUndo({UndoRecord::Op::kUpdate, "t", Value(1), old});
  ASSERT_TRUE(tm_.Rollback(txn).ok());
  EXPECT_EQ((*table_->Find(Value(1)))[1], Value("one"));
}

TEST_F(TxnTest, RollbackUndoesDelete) {
  Transaction* txn = tm_.Begin();
  Row old;
  ASSERT_TRUE(table_->Delete(Value(2), &old).ok());
  txn->AddUndo({UndoRecord::Op::kDelete, "t", Value(2), old});
  ASSERT_TRUE(tm_.Rollback(txn).ok());
  ASSERT_NE(table_->Find(Value(2)), nullptr);
  EXPECT_EQ((*table_->Find(Value(2)))[1], Value("two"));
}

TEST_F(TxnTest, RollbackAppliesUndoInReverse) {
  Transaction* txn = tm_.Begin();
  // Insert then update the same row; undo must unwind update first.
  ASSERT_TRUE(table_->Insert({Value(3), Value("a")}, nullptr).ok());
  txn->AddUndo({UndoRecord::Op::kInsert, "t", Value(3), {}});
  Row mid = *table_->Find(Value(3));
  ASSERT_TRUE(table_->Update(Value(3), {Value(3), Value("b")}).ok());
  txn->AddUndo({UndoRecord::Op::kUpdate, "t", Value(3), mid});
  ASSERT_TRUE(tm_.Rollback(txn).ok());
  EXPECT_EQ(table_->Find(Value(3)), nullptr);
}

TEST_F(TxnTest, PrepareRequiresXid) {
  Transaction* txn = tm_.Begin();
  EXPECT_FALSE(tm_.Prepare(txn).ok());
  ASSERT_TRUE(tm_.Rollback(txn).ok());
}

TEST_F(TxnTest, XaPrepareThenCommit) {
  Transaction* txn = tm_.Begin("xa-1");
  ASSERT_TRUE(table_->Insert({Value(3), Value("x")}, nullptr).ok());
  txn->AddUndo({UndoRecord::Op::kInsert, "t", Value(3), {}});
  ASSERT_TRUE(tm_.Prepare(txn).ok());
  EXPECT_EQ(tm_.InDoubtXids(), std::vector<std::string>{"xa-1"});
  ASSERT_TRUE(tm_.CommitPrepared("xa-1").ok());
  EXPECT_TRUE(tm_.InDoubtXids().empty());
  EXPECT_NE(table_->Find(Value(3)), nullptr);
}

TEST_F(TxnTest, XaPrepareThenRollback) {
  Transaction* txn = tm_.Begin("xa-2");
  ASSERT_TRUE(table_->Insert({Value(3), Value("x")}, nullptr).ok());
  txn->AddUndo({UndoRecord::Op::kInsert, "t", Value(3), {}});
  ASSERT_TRUE(tm_.Prepare(txn).ok());
  ASSERT_TRUE(tm_.RollbackPrepared("xa-2").ok());
  EXPECT_EQ(table_->Find(Value(3)), nullptr);
}

TEST_F(TxnTest, Phase2OnUnknownXidFails) {
  EXPECT_EQ(tm_.CommitPrepared("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(tm_.RollbackPrepared("nope").code(), StatusCode::kNotFound);
}

TEST_F(TxnTest, CrashRollsBackActiveKeepsPrepared) {
  Transaction* active = tm_.Begin();
  ASSERT_TRUE(table_->Insert({Value(10), Value("active")}, nullptr).ok());
  active->AddUndo({UndoRecord::Op::kInsert, "t", Value(10), {}});

  Transaction* prepared = tm_.Begin("xa-3");
  ASSERT_TRUE(table_->Insert({Value(11), Value("prepared")}, nullptr).ok());
  prepared->AddUndo({UndoRecord::Op::kInsert, "t", Value(11), {}});
  ASSERT_TRUE(tm_.Prepare(prepared).ok());

  tm_.SimulateCrash();

  EXPECT_EQ(table_->Find(Value(10)), nullptr);        // active rolled back
  EXPECT_NE(table_->Find(Value(11)), nullptr);        // prepared survives
  EXPECT_EQ(tm_.InDoubtXids(), std::vector<std::string>{"xa-3"});
  // Recovery decides commit.
  ASSERT_TRUE(tm_.CommitPrepared("xa-3").ok());
  EXPECT_NE(table_->Find(Value(11)), nullptr);
}

TEST_F(TxnTest, CommitOnPreparedRejected) {
  Transaction* txn = tm_.Begin("xa-4");
  ASSERT_TRUE(tm_.Prepare(txn).ok());
  EXPECT_EQ(tm_.Commit(txn).code(), StatusCode::kTransactionError);
  ASSERT_TRUE(tm_.RollbackPrepared("xa-4").ok());
}

}  // namespace
}  // namespace sphere::storage
