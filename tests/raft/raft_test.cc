#include "raft/raft.h"

#include <gtest/gtest.h>

#include <map>

namespace sphere::raft {
namespace {

class RaftTest : public ::testing::Test {
 protected:
  RaftTest()
      : network_(net::NetworkConfig::Zero()),
        group_(3, &network_, [this](int id, const std::string& cmd) {
          applied_[id].push_back(cmd);
        }) {}

  net::LatencyModel network_;
  std::map<int, std::vector<std::string>> applied_;
  RaftGroup group_;
};

TEST_F(RaftTest, ProposeCommitsAndAppliesEverywhere) {
  auto idx = group_.Propose("cmd-1");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(applied_[i].size(), 1u) << "replica " << i;
    EXPECT_EQ(applied_[i][0], "cmd-1");
  }
}

TEST_F(RaftTest, LogsStayOrderedAndIdentical) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(group_.Propose("cmd-" + std::to_string(i)).ok());
  }
  auto log0 = group_.CommittedLog(0);
  for (int r = 1; r < 3; ++r) {
    auto log = group_.CommittedLog(r);
    ASSERT_EQ(log.size(), log0.size());
    for (size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].command, log0[i].command);
      EXPECT_EQ(log[i].term, log0[i].term);
    }
  }
}

TEST_F(RaftTest, CommitsWithMinorityDown) {
  group_.Disconnect(2);
  ASSERT_TRUE(group_.Propose("still-works").ok());
  EXPECT_EQ(applied_[0].size(), 1u);
  EXPECT_EQ(applied_[1].size(), 1u);
  EXPECT_EQ(applied_[2].size(), 0u);  // down replica missed it
}

TEST_F(RaftTest, RefusesWithoutMajority) {
  group_.Disconnect(1);
  group_.Disconnect(2);
  auto r = group_.Propose("no-quorum");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST_F(RaftTest, ReconnectedReplicaCatchesUp) {
  group_.Disconnect(2);
  ASSERT_TRUE(group_.Propose("a").ok());
  ASSERT_TRUE(group_.Propose("b").ok());
  group_.Reconnect(2);
  // The next replication round retransmits the missing suffix.
  ASSERT_TRUE(group_.Propose("c").ok());
  EXPECT_EQ(applied_[2].size(), 3u);
  EXPECT_EQ(applied_[2][0], "a");
  EXPECT_EQ(applied_[2][2], "c");
}

TEST_F(RaftTest, ElectionBumpsTermAndMovesLeader) {
  int64_t term_before = group_.term();
  EXPECT_TRUE(group_.TriggerElection(1));
  EXPECT_EQ(group_.leader(), 1);
  EXPECT_GT(group_.term(), term_before);
  ASSERT_TRUE(group_.Propose("after-election").ok());
  EXPECT_EQ(applied_[0].back(), "after-election");
}

TEST_F(RaftTest, StaleLogCandidateLosesElection) {
  // Replica 2 misses entries, then asks for votes: the up-to-date rule must
  // deny it a majority.
  group_.Disconnect(2);
  ASSERT_TRUE(group_.Propose("x").ok());
  ASSERT_TRUE(group_.Propose("y").ok());
  group_.Reconnect(2);
  EXPECT_FALSE(group_.TriggerElection(2));
  EXPECT_NE(group_.leader(), 2);
  // After catching up it can win.
  group_.CatchUp(2);
  EXPECT_TRUE(group_.TriggerElection(2));
  EXPECT_EQ(group_.leader(), 2);
}

TEST_F(RaftTest, DisconnectedCandidateCannotWin) {
  group_.Disconnect(1);
  EXPECT_FALSE(group_.TriggerElection(1));
}

TEST_F(RaftTest, LeaderDownBlocksWrites) {
  group_.Disconnect(group_.leader());
  EXPECT_FALSE(group_.Propose("lost").ok());
  // A healthy replica takes over.
  EXPECT_TRUE(group_.TriggerElection(1));
  EXPECT_TRUE(group_.Propose("recovered").ok());
}

TEST_F(RaftTest, ReplicationPaysNetworkCost) {
  net::LatencyModel network(net::NetworkConfig{0, 0});
  RaftGroup group(3, &network, [](int, const std::string&) {});
  int64_t before = network.messages();
  ASSERT_TRUE(group.Propose("cost").ok());
  // At least request+ack per follower.
  EXPECT_GE(network.messages() - before, 4);
}

TEST_F(RaftTest, FiveReplicaMajority) {
  net::LatencyModel network(net::NetworkConfig::Zero());
  std::map<int, int> counts;
  RaftGroup group(5, &network,
                  [&](int id, const std::string&) { counts[id]++; });
  group.Disconnect(3);
  group.Disconnect(4);
  EXPECT_TRUE(group.Propose("3-of-5").ok());  // 3/5 is a majority
  group.Disconnect(2);
  EXPECT_FALSE(group.Propose("2-of-5").ok());
}

}  // namespace
}  // namespace sphere::raft
