#include "distsql/distsql.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "adaptor/jdbc.h"
#include "common/trace.h"
#include "engine/pipeline.h"
#include "governor/health.h"

namespace sphere::distsql {
namespace {

using adaptor::ShardingConnection;
using adaptor::ShardingDataSource;

class DistSQLTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::make_unique<ShardingDataSource>(core::RuntimeConfig(),
                                               net::NetworkConfig::Zero());
    for (int i = 0; i < 2; ++i) {
      nodes_.push_back(
          std::make_unique<engine::StorageNode>("ds_" + std::to_string(i)));
      ASSERT_TRUE(ds_->AttachNode(nodes_.back()->name(), nodes_.back().get()).ok());
    }
    conn_ = ds_->GetConnection();
  }

  engine::ExecResult Exec(const std::string& sql_text) {
    auto r = conn_->ExecuteSQL(sql_text);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql_text;
    return r.ok() ? std::move(r).value() : engine::ExecResult{};
  }

  std::vector<Row> Rows(engine::ExecResult r) {
    EXPECT_TRUE(r.is_query);
    return r.result_set ? engine::DrainResultSet(r.result_set.get())
                        : std::vector<Row>{};
  }

  std::unique_ptr<ShardingDataSource> ds_;
  std::vector<std::unique_ptr<engine::StorageNode>> nodes_;
  std::unique_ptr<ShardingConnection> conn_;
};

TEST_F(DistSQLTest, IsDistSQLRecognizer) {
  EXPECT_TRUE(DistSQLEngine::IsDistSQL("CREATE SHARDING TABLE RULE t (...)"));
  EXPECT_TRUE(DistSQLEngine::IsDistSQL("show sharding table rules"));
  EXPECT_TRUE(DistSQLEngine::IsDistSQL("SET VARIABLE transaction_type = XA"));
  EXPECT_TRUE(DistSQLEngine::IsDistSQL("PREVIEW SELECT 1"));
  EXPECT_FALSE(DistSQLEngine::IsDistSQL("SELECT * FROM t"));
  EXPECT_FALSE(DistSQLEngine::IsDistSQL("SET autocommit = 0"));
}

TEST_F(DistSQLTest, AutoTableEndToEnd) {
  // The paper's §V-A flow: one RDL statement defines the rule; a logical
  // CREATE TABLE then materializes the physical tables everywhere.
  Exec("CREATE SHARDING TABLE RULE t_user_h (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES(\"sharding-count\"=2))");
  Exec("CREATE TABLE t_user_h (uid BIGINT PRIMARY KEY, name VARCHAR(32))");
  // AutoTable computed t_user_h_0 -> ds_0, t_user_h_1 -> ds_1.
  EXPECT_NE(nodes_[0]->database()->FindTable("t_user_h_0"), nullptr);
  EXPECT_NE(nodes_[1]->database()->FindTable("t_user_h_1"), nullptr);
  EXPECT_EQ(nodes_[0]->database()->FindTable("t_user_h_1"), nullptr);

  Exec("INSERT INTO t_user_h (uid, name) VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  auto rows = Rows(Exec("SELECT COUNT(*) FROM t_user_h"));
  EXPECT_EQ(rows[0][0], Value(3));
}

TEST_F(DistSQLTest, CreateDuplicateRuleRejected) {
  Exec("CREATE SHARDING TABLE RULE t (RESOURCES(ds_0), SHARDING_COLUMN=id, "
       "TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  auto r = conn_->ExecuteSQL(
      "CREATE SHARDING TABLE RULE t (RESOURCES(ds_0), SHARDING_COLUMN=id, "
      "TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(DistSQLTest, AlterRuleChangesShardCount) {
  Exec("CREATE SHARDING TABLE RULE t (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=id, TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  Exec("ALTER SHARDING TABLE RULE t (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=id, TYPE=mod, PROPERTIES(\"sharding-count\"=4))");
  ASSERT_NE(ds_->runtime()->rule()->FindTableRule("t"), nullptr);
  EXPECT_EQ(ds_->runtime()->rule()->FindTableRule("t")->actual_nodes().size(), 4u);
  auto r = conn_->ExecuteSQL(
      "ALTER SHARDING TABLE RULE missing (RESOURCES(ds_0), SHARDING_COLUMN=id, "
      "TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  EXPECT_FALSE(r.ok());
}

TEST_F(DistSQLTest, DropRule) {
  Exec("CREATE SHARDING TABLE RULE t (RESOURCES(ds_0), SHARDING_COLUMN=id, "
       "TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  Exec("DROP SHARDING TABLE RULE t");
  EXPECT_EQ(ds_->runtime()->rule()->FindTableRule("t"), nullptr);
  EXPECT_FALSE(conn_->ExecuteSQL("DROP SHARDING TABLE RULE t").ok());
}

TEST_F(DistSQLTest, BindingRulesThroughDistSQL) {
  Exec("CREATE SHARDING TABLE RULE t_user (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES(\"sharding-count\"=4))");
  Exec("CREATE SHARDING TABLE RULE t_order (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES(\"sharding-count\"=4))");
  Exec("CREATE SHARDING BINDING TABLE RULES (t_user, t_order)");
  EXPECT_TRUE(ds_->runtime()->rule()->IsBinding("t_user", "t_order"));
  auto rows = Rows(Exec("SHOW BINDING TABLE RULES"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("t_user,t_order"));
}

TEST_F(DistSQLTest, BroadcastRule) {
  Exec("CREATE BROADCAST TABLE RULE t_dict");
  EXPECT_TRUE(ds_->runtime()->rule()->IsBroadcastTable("t_dict"));
  auto rows = Rows(Exec("SHOW BROADCAST TABLE RULES"));
  ASSERT_EQ(rows.size(), 1u);
}

TEST_F(DistSQLTest, ShowShardingTableRules) {
  Exec("CREATE SHARDING TABLE RULE t_user (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES(\"sharding-count\"=2), "
       "KEY_GENERATE_STRATEGY(COLUMN=uid, TYPE=SNOWFLAKE))");
  auto rows = Rows(Exec("SHOW SHARDING TABLE RULES"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("t_user"));
  EXPECT_NE(rows[0][3].ToString().find("HASH_MOD"), std::string::npos);
  EXPECT_NE(rows[0][4].ToString().find("SNOWFLAKE"), std::string::npos);
  EXPECT_NE(rows[0][5].ToString().find("ds_0.t_user_0"), std::string::npos);
}

TEST_F(DistSQLTest, ShowAlgorithmsAndStorageUnits) {
  auto algos = Rows(Exec("SHOW SHARDING ALGORITHMS"));
  EXPECT_GE(algos.size(), 10u);
  auto units = Rows(Exec("SHOW STORAGE UNITS"));
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0][0], Value("ds_0"));
}

TEST_F(DistSQLTest, SetAndShowVariable) {
  Exec("SET VARIABLE transaction_type = XA");
  auto rows = Rows(Exec("SHOW VARIABLE transaction_type"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value("XA"));
  Exec("SET VARIABLE max_connections_per_query = 7");
  EXPECT_EQ(ds_->runtime()->max_connections_per_query(), 7);
}

TEST_F(DistSQLTest, PreviewShowsRouteAndRewrite) {
  Exec("CREATE SHARDING TABLE RULE t_user (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES(\"sharding-count\"=4))");
  auto rows = Rows(Exec("PREVIEW SELECT * FROM t_user WHERE uid IN (1, 2)"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[0][1].ToString().find("t_user_"), std::string::npos);
}

TEST_F(DistSQLTest, SetDefaultStorageUnit) {
  Exec("CREATE SHARDING TABLE RULE t (RESOURCES(ds_0), SHARDING_COLUMN=id, "
       "TYPE=mod, PROPERTIES(\"sharding-count\"=1))");
  Exec("SET DEFAULT STORAGE UNIT ds_1");
  Exec("CREATE TABLE plain (id INT PRIMARY KEY)");
  EXPECT_NE(nodes_[1]->database()->FindTable("plain"), nullptr);
  EXPECT_EQ(nodes_[0]->database()->FindTable("plain"), nullptr);
}

TEST_F(DistSQLTest, MalformedDistSQLRejected) {
  EXPECT_FALSE(conn_->ExecuteSQL("CREATE SHARDING TABLE RULE").ok());
  EXPECT_FALSE(conn_->ExecuteSQL(
                   "CREATE SHARDING TABLE RULE t (NONSENSE(1))").ok());
  EXPECT_FALSE(conn_->ExecuteSQL(
                   "CREATE SHARDING TABLE RULE t (SHARDING_COLUMN=id)").ok());
}

// ---------------------------------------------------------------------------
// Observability surface: SHOW METRICS / TRACE (DESIGN.md §13)
// ---------------------------------------------------------------------------

std::vector<std::string> Column0(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) out.push_back(r[0].ToString());
  return out;
}

bool AnyStartsWith(const std::vector<std::string>& names,
                   const std::string& prefix) {
  for (const std::string& n : names) {
    if (n.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

TEST_F(DistSQLTest, IsDistSQLRecognizesObservabilityStatements) {
  EXPECT_TRUE(DistSQLEngine::IsDistSQL("SHOW METRICS"));
  EXPECT_TRUE(DistSQLEngine::IsDistSQL("show metrics like 'cache%'"));
  EXPECT_TRUE(DistSQLEngine::IsDistSQL("TRACE SELECT * FROM t"));
  EXPECT_FALSE(DistSQLEngine::IsDistSQL("TRACEROUTE"));
}

TEST_F(DistSQLTest, ShowMetricsListsSubsystemMetrics) {
  Exec("CREATE SHARDING TABLE RULE t_user (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  Exec("CREATE TABLE t_user (uid BIGINT PRIMARY KEY, name VARCHAR(32))");
  Exec("INSERT INTO t_user (uid, name) VALUES (1, 'a'), (2, 'b')");
  // A forced TRACE guarantees the stage.* histograms exist regardless of the
  // sampling interval other tests have consumed.
  Exec("TRACE SELECT * FROM t_user");
  // Health gauges ride along via the governor's probe publication.
  governor::HealthDetector health(/*check_interval_ms=*/1000,
                                  /*timeout_ms=*/1000);
  health.RegisterInstance("proxy_0");

  auto names = Column0(Rows(Exec("SHOW METRICS")));
  EXPECT_TRUE(AnyStartsWith(names, "statement_cache."));
  EXPECT_TRUE(AnyStartsWith(names, "node.ds_0."));
  EXPECT_TRUE(AnyStartsWith(names, "executor_pool."));
  EXPECT_TRUE(AnyStartsWith(names, "row_store."));
  EXPECT_TRUE(AnyStartsWith(names, "stage."));
  EXPECT_TRUE(AnyStartsWith(names, "health.proxy_0."));
  // Sorted output.
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(DistSQLTest, ShowMetricsLikeFiltersByPattern) {
  Exec("CREATE SHARDING TABLE RULE t (RESOURCES(ds_0), SHARDING_COLUMN=id, "
       "TYPE=mod, PROPERTIES(\"sharding-count\"=1))");
  Exec("CREATE TABLE t (id INT PRIMARY KEY)");
  Exec("SELECT * FROM t");  // touches the statement cache
  auto rows = Rows(Exec("SHOW METRICS LIKE 'statement_cache.%'"));
  ASSERT_FALSE(rows.empty());
  for (const Row& r : rows) {
    EXPECT_EQ(r[0].ToString().rfind("statement_cache.", 0), 0u)
        << r[0].ToString();
  }
  // Histogram rows carry latency columns; counter rows show "-".
  auto stage = Rows(Exec("SHOW METRICS LIKE 'stage.%.latency'"));
  for (const Row& r : stage) {
    EXPECT_EQ(r[1], Value("histogram"));
    EXPECT_NE(r[4].ToString(), "-");  // p50_ms rendered numerically
  }
}

/// Captures the completed trace's structure (span names by depth).
class CountingSink : public trace::TraceSink {
 public:
  void OnTraceComplete(const trace::Trace& trace) override {
    trace.Visit([this](const trace::Span& s) {
      if (s.name == "unit") ++units_;
      if (s.name == "route") ++routes_;
    });
    ++traces_;
  }
  int units() const { return units_; }
  int routes() const { return routes_; }
  int traces() const { return traces_; }

 private:
  int units_ = 0;
  int routes_ = 0;
  int traces_ = 0;
};

TEST_F(DistSQLTest, TraceShowsSpanTreeWithPerUnitFanOut) {
  Exec("CREATE SHARDING TABLE RULE t_user (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  Exec("CREATE TABLE t_user (uid BIGINT PRIMARY KEY, name VARCHAR(32))");
  Exec("INSERT INTO t_user (uid, name) VALUES (1, 'a'), (2, 'b'), (3, 'c')");

  CountingSink sink;
  trace::TraceSink* prev = trace::SetTraceSink(&sink);
  // Full-route SELECT: the router fans out to both shards, so the trace must
  // contain exactly one unit span per routed unit.
  auto rows = Rows(Exec("TRACE SELECT * FROM t_user"));
  trace::SetTraceSink(prev);

  EXPECT_EQ(sink.traces(), 1);
  EXPECT_EQ(sink.routes(), 1);
  EXPECT_EQ(sink.units(), 2);  // == route fan-out over ds_0, ds_1

  // Rendered tree: root, statement, stages, and per-unit rows with the
  // data_source attribute.
  auto names = Column0(rows);
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names[0], "trace");
  int unit_rows = 0;
  bool saw_statement = false, saw_route = false, saw_merge = false;
  for (size_t i = 0; i < rows.size(); ++i) {
    std::string name = names[i];
    // Strip the depth indent.
    size_t start = name.find_first_not_of(' ');
    name = start == std::string::npos ? "" : name.substr(start);
    if (name == "unit") {
      ++unit_rows;
      EXPECT_NE(rows[i][2].ToString().find("data_source=ds_"),
                std::string::npos);
    }
    saw_statement = saw_statement || name == "statement";
    saw_route = saw_route || name == "route";
    saw_merge = saw_merge || name == "merge";
  }
  EXPECT_EQ(unit_rows, 2);
  EXPECT_TRUE(saw_statement);
  EXPECT_TRUE(saw_route);
  EXPECT_TRUE(saw_merge);
}

TEST_F(DistSQLTest, TraceWorksWhenObservabilityDisabled) {
  // TRACE force-captures: the statement scope joins the installed trace even
  // with the sampler off, so explicit traces keep working when the global
  // knob is disabled.
  engine::ScopedObservability off(false);
  Exec("CREATE SHARDING TABLE RULE plain (RESOURCES(ds_0), "
       "SHARDING_COLUMN=id, TYPE=mod, PROPERTIES(\"sharding-count\"=1))");
  Exec("CREATE TABLE plain (id INT PRIMARY KEY)");
  Exec("INSERT INTO plain (id) VALUES (1)");
  auto rows = Rows(Exec("TRACE SELECT * FROM plain"));
  auto names = Column0(rows);
  bool saw_execute = false;
  for (const std::string& n : names) {
    saw_execute = saw_execute || n.find("execute") != std::string::npos;
  }
  EXPECT_TRUE(saw_execute);
}

}  // namespace
}  // namespace sphere::distsql
