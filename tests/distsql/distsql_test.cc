#include "distsql/distsql.h"

#include <gtest/gtest.h>

#include "adaptor/jdbc.h"

namespace sphere::distsql {
namespace {

using adaptor::ShardingConnection;
using adaptor::ShardingDataSource;

class DistSQLTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::make_unique<ShardingDataSource>(core::RuntimeConfig(),
                                               net::NetworkConfig::Zero());
    for (int i = 0; i < 2; ++i) {
      nodes_.push_back(
          std::make_unique<engine::StorageNode>("ds_" + std::to_string(i)));
      ASSERT_TRUE(ds_->AttachNode(nodes_.back()->name(), nodes_.back().get()).ok());
    }
    conn_ = ds_->GetConnection();
  }

  engine::ExecResult Exec(const std::string& sql_text) {
    auto r = conn_->ExecuteSQL(sql_text);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql_text;
    return r.ok() ? std::move(r).value() : engine::ExecResult{};
  }

  std::vector<Row> Rows(engine::ExecResult r) {
    EXPECT_TRUE(r.is_query);
    return r.result_set ? engine::DrainResultSet(r.result_set.get())
                        : std::vector<Row>{};
  }

  std::unique_ptr<ShardingDataSource> ds_;
  std::vector<std::unique_ptr<engine::StorageNode>> nodes_;
  std::unique_ptr<ShardingConnection> conn_;
};

TEST_F(DistSQLTest, IsDistSQLRecognizer) {
  EXPECT_TRUE(DistSQLEngine::IsDistSQL("CREATE SHARDING TABLE RULE t (...)"));
  EXPECT_TRUE(DistSQLEngine::IsDistSQL("show sharding table rules"));
  EXPECT_TRUE(DistSQLEngine::IsDistSQL("SET VARIABLE transaction_type = XA"));
  EXPECT_TRUE(DistSQLEngine::IsDistSQL("PREVIEW SELECT 1"));
  EXPECT_FALSE(DistSQLEngine::IsDistSQL("SELECT * FROM t"));
  EXPECT_FALSE(DistSQLEngine::IsDistSQL("SET autocommit = 0"));
}

TEST_F(DistSQLTest, AutoTableEndToEnd) {
  // The paper's §V-A flow: one RDL statement defines the rule; a logical
  // CREATE TABLE then materializes the physical tables everywhere.
  Exec("CREATE SHARDING TABLE RULE t_user_h (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES(\"sharding-count\"=2))");
  Exec("CREATE TABLE t_user_h (uid BIGINT PRIMARY KEY, name VARCHAR(32))");
  // AutoTable computed t_user_h_0 -> ds_0, t_user_h_1 -> ds_1.
  EXPECT_NE(nodes_[0]->database()->FindTable("t_user_h_0"), nullptr);
  EXPECT_NE(nodes_[1]->database()->FindTable("t_user_h_1"), nullptr);
  EXPECT_EQ(nodes_[0]->database()->FindTable("t_user_h_1"), nullptr);

  Exec("INSERT INTO t_user_h (uid, name) VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  auto rows = Rows(Exec("SELECT COUNT(*) FROM t_user_h"));
  EXPECT_EQ(rows[0][0], Value(3));
}

TEST_F(DistSQLTest, CreateDuplicateRuleRejected) {
  Exec("CREATE SHARDING TABLE RULE t (RESOURCES(ds_0), SHARDING_COLUMN=id, "
       "TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  auto r = conn_->ExecuteSQL(
      "CREATE SHARDING TABLE RULE t (RESOURCES(ds_0), SHARDING_COLUMN=id, "
      "TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(DistSQLTest, AlterRuleChangesShardCount) {
  Exec("CREATE SHARDING TABLE RULE t (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=id, TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  Exec("ALTER SHARDING TABLE RULE t (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=id, TYPE=mod, PROPERTIES(\"sharding-count\"=4))");
  ASSERT_NE(ds_->runtime()->rule()->FindTableRule("t"), nullptr);
  EXPECT_EQ(ds_->runtime()->rule()->FindTableRule("t")->actual_nodes().size(), 4u);
  auto r = conn_->ExecuteSQL(
      "ALTER SHARDING TABLE RULE missing (RESOURCES(ds_0), SHARDING_COLUMN=id, "
      "TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  EXPECT_FALSE(r.ok());
}

TEST_F(DistSQLTest, DropRule) {
  Exec("CREATE SHARDING TABLE RULE t (RESOURCES(ds_0), SHARDING_COLUMN=id, "
       "TYPE=mod, PROPERTIES(\"sharding-count\"=2))");
  Exec("DROP SHARDING TABLE RULE t");
  EXPECT_EQ(ds_->runtime()->rule()->FindTableRule("t"), nullptr);
  EXPECT_FALSE(conn_->ExecuteSQL("DROP SHARDING TABLE RULE t").ok());
}

TEST_F(DistSQLTest, BindingRulesThroughDistSQL) {
  Exec("CREATE SHARDING TABLE RULE t_user (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES(\"sharding-count\"=4))");
  Exec("CREATE SHARDING TABLE RULE t_order (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES(\"sharding-count\"=4))");
  Exec("CREATE SHARDING BINDING TABLE RULES (t_user, t_order)");
  EXPECT_TRUE(ds_->runtime()->rule()->IsBinding("t_user", "t_order"));
  auto rows = Rows(Exec("SHOW BINDING TABLE RULES"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("t_user,t_order"));
}

TEST_F(DistSQLTest, BroadcastRule) {
  Exec("CREATE BROADCAST TABLE RULE t_dict");
  EXPECT_TRUE(ds_->runtime()->rule()->IsBroadcastTable("t_dict"));
  auto rows = Rows(Exec("SHOW BROADCAST TABLE RULES"));
  ASSERT_EQ(rows.size(), 1u);
}

TEST_F(DistSQLTest, ShowShardingTableRules) {
  Exec("CREATE SHARDING TABLE RULE t_user (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES(\"sharding-count\"=2), "
       "KEY_GENERATE_STRATEGY(COLUMN=uid, TYPE=SNOWFLAKE))");
  auto rows = Rows(Exec("SHOW SHARDING TABLE RULES"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value("t_user"));
  EXPECT_NE(rows[0][3].ToString().find("HASH_MOD"), std::string::npos);
  EXPECT_NE(rows[0][4].ToString().find("SNOWFLAKE"), std::string::npos);
  EXPECT_NE(rows[0][5].ToString().find("ds_0.t_user_0"), std::string::npos);
}

TEST_F(DistSQLTest, ShowAlgorithmsAndStorageUnits) {
  auto algos = Rows(Exec("SHOW SHARDING ALGORITHMS"));
  EXPECT_GE(algos.size(), 10u);
  auto units = Rows(Exec("SHOW STORAGE UNITS"));
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0][0], Value("ds_0"));
}

TEST_F(DistSQLTest, SetAndShowVariable) {
  Exec("SET VARIABLE transaction_type = XA");
  auto rows = Rows(Exec("SHOW VARIABLE transaction_type"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value("XA"));
  Exec("SET VARIABLE max_connections_per_query = 7");
  EXPECT_EQ(ds_->runtime()->max_connections_per_query(), 7);
}

TEST_F(DistSQLTest, PreviewShowsRouteAndRewrite) {
  Exec("CREATE SHARDING TABLE RULE t_user (RESOURCES(ds_0, ds_1), "
       "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES(\"sharding-count\"=4))");
  auto rows = Rows(Exec("PREVIEW SELECT * FROM t_user WHERE uid IN (1, 2)"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[0][1].ToString().find("t_user_"), std::string::npos);
}

TEST_F(DistSQLTest, SetDefaultStorageUnit) {
  Exec("CREATE SHARDING TABLE RULE t (RESOURCES(ds_0), SHARDING_COLUMN=id, "
       "TYPE=mod, PROPERTIES(\"sharding-count\"=1))");
  Exec("SET DEFAULT STORAGE UNIT ds_1");
  Exec("CREATE TABLE plain (id INT PRIMARY KEY)");
  EXPECT_NE(nodes_[1]->database()->FindTable("plain"), nullptr);
  EXPECT_EQ(nodes_[0]->database()->FindTable("plain"), nullptr);
}

TEST_F(DistSQLTest, MalformedDistSQLRejected) {
  EXPECT_FALSE(conn_->ExecuteSQL("CREATE SHARDING TABLE RULE").ok());
  EXPECT_FALSE(conn_->ExecuteSQL(
                   "CREATE SHARDING TABLE RULE t (NONSENSE(1))").ok());
  EXPECT_FALSE(conn_->ExecuteSQL(
                   "CREATE SHARDING TABLE RULE t (SHARDING_COLUMN=id)").ok());
}

}  // namespace
}  // namespace sphere::distsql
