#include <gtest/gtest.h>

#include "adaptor/jdbc.h"
#include "common/strings.h"
#include "transaction/manager.h"

namespace sphere::transaction {
namespace {

using adaptor::ShardingConnection;
using adaptor::ShardingDataSource;

/// Fixture: t_acct MOD-sharded by id into 4 tables over 2 nodes, seeded with
/// balances.
class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::make_unique<ShardingDataSource>(core::RuntimeConfig(),
                                               net::NetworkConfig::Zero());
    for (int i = 0; i < 2; ++i) {
      nodes_.push_back(
          std::make_unique<engine::StorageNode>("ds_" + std::to_string(i)));
      ASSERT_TRUE(ds_->AttachNode(nodes_.back()->name(), nodes_.back().get()).ok());
    }
    core::ShardingRuleConfig config;
    config.default_data_source = "ds_0";
    core::TableRuleConfig t;
    t.logic_table = "t_acct";
    t.auto_resources = {"ds_0", "ds_1"};
    t.auto_sharding_count = 4;
    t.table_strategy.columns = {"id"};
    t.table_strategy.algorithm_type = "MOD";
    t.table_strategy.props.Set("sharding-count", "4");
    config.tables.push_back(std::move(t));
    ASSERT_TRUE(ds_->SetRule(std::move(config)).ok());

    conn_ = ds_->GetConnection();
    ASSERT_TRUE(conn_->ExecuteSQL("CREATE TABLE t_acct (id BIGINT PRIMARY KEY, "
                                  "balance DOUBLE, owner VARCHAR(32))")
                    .ok());
    for (int id = 0; id < 8; ++id) {
      ASSERT_TRUE(conn_->ExecuteSQL(StrFormat(
                          "INSERT INTO t_acct (id, balance, owner) VALUES "
                          "(%d, 100.0, 'o%d')", id, id))
                      .ok());
    }
  }

  double BalanceOf(int id) {
    auto rs = conn_->ExecuteQuery("SELECT balance FROM t_acct WHERE id = ?",
                                  {Value(id)});
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    if (!rs.ok() || !rs->Next()) return -1;
    return rs->GetDouble(0);
  }

  int64_t CountRows() {
    auto rs = conn_->ExecuteQuery("SELECT COUNT(*) FROM t_acct");
    EXPECT_TRUE(rs.ok());
    rs->Next();
    return rs->GetInt(0);
  }

  void SetType(TransactionType type) {
    ASSERT_TRUE(conn_->SetTransactionType(type).ok());
  }

  std::unique_ptr<ShardingDataSource> ds_;
  std::vector<std::unique_ptr<engine::StorageNode>> nodes_;
  std::unique_ptr<ShardingConnection> conn_;
};

class TypedTransactionTest
    : public TransactionTest,
      public ::testing::WithParamInterface<TransactionType> {};

TEST_P(TypedTransactionTest, CommitMakesMultiShardWritesDurable) {
  SetType(GetParam());
  ASSERT_TRUE(conn_->Begin().ok());
  // ids 1 and 2 live on different shards/data sources.
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "UPDATE t_acct SET balance = balance - 30 WHERE id = 1")
                  .ok());
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "UPDATE t_acct SET balance = balance + 30 WHERE id = 2")
                  .ok());
  ASSERT_TRUE(conn_->Commit().ok());
  EXPECT_DOUBLE_EQ(BalanceOf(1), 70.0);
  EXPECT_DOUBLE_EQ(BalanceOf(2), 130.0);
}

TEST_P(TypedTransactionTest, RollbackRestoresAllShards) {
  SetType(GetParam());
  ASSERT_TRUE(conn_->Begin().ok());
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "UPDATE t_acct SET balance = balance - 30 WHERE id = 1")
                  .ok());
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "UPDATE t_acct SET balance = balance + 30 WHERE id = 2")
                  .ok());
  ASSERT_TRUE(conn_->ExecuteSQL("INSERT INTO t_acct (id, balance, owner) "
                                "VALUES (100, 5.0, 'new')")
                  .ok());
  ASSERT_TRUE(conn_->Rollback().ok());
  EXPECT_DOUBLE_EQ(BalanceOf(1), 100.0);
  EXPECT_DOUBLE_EQ(BalanceOf(2), 100.0);
  EXPECT_EQ(CountRows(), 8);
}

TEST_P(TypedTransactionTest, DeleteRolledBack) {
  SetType(GetParam());
  ASSERT_TRUE(conn_->Begin().ok());
  ASSERT_TRUE(conn_->ExecuteSQL("DELETE FROM t_acct WHERE id IN (0, 1, 2, 3)").ok());
  EXPECT_EQ(CountRows(), 4);
  ASSERT_TRUE(conn_->Rollback().ok());
  EXPECT_EQ(CountRows(), 8);
}

TEST_P(TypedTransactionTest, ConnectionDropRollsBack) {
  SetType(GetParam());
  {
    auto conn2 = ds_->GetConnection();
    ASSERT_TRUE(conn2->SetTransactionType(GetParam()).ok());
    ASSERT_TRUE(conn2->Begin().ok());
    ASSERT_TRUE(conn2->ExecuteSQL(
                    "UPDATE t_acct SET balance = 0 WHERE id = 5").ok());
    // conn2 destroyed without commit.
  }
  EXPECT_DOUBLE_EQ(BalanceOf(5), 100.0);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, TypedTransactionTest,
                         ::testing::Values(TransactionType::kLocal,
                                           TransactionType::kXa,
                                           TransactionType::kBase),
                         [](const auto& info) {
                           return TransactionTypeName(info.param);
                         });

TEST_F(TransactionTest, XaPrepareFailureAbortsEverything) {
  SetType(TransactionType::kXa);
  nodes_[1]->InjectPrepareFailure();
  ASSERT_TRUE(conn_->Begin().ok());
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "UPDATE t_acct SET balance = 1 WHERE id = 4").ok());  // ds_0
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "UPDATE t_acct SET balance = 1 WHERE id = 5").ok());  // ds_1
  Status st = conn_->Commit();
  EXPECT_FALSE(st.ok());
  // Atomicity: the branch that voted OK must also roll back.
  EXPECT_DOUBLE_EQ(BalanceOf(4), 100.0);
  EXPECT_DOUBLE_EQ(BalanceOf(5), 100.0);
  EXPECT_EQ(ds_->transaction_context()->xa_log()->size(), 0u);
}

TEST_F(TransactionTest, XaLocalDivergenceOnCommitFailure) {
  // The contrast the paper draws (Fig. 5(d)): LOCAL (1PC) ignores a failing
  // participant and diverges, XA would have aborted.
  SetType(TransactionType::kLocal);
  nodes_[1]->InjectCommitFailure();
  ASSERT_TRUE(conn_->Begin().ok());
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "UPDATE t_acct SET balance = 7 WHERE id = 4").ok());  // ds_0
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "UPDATE t_acct SET balance = 7 WHERE id = 5").ok());  // ds_1
  EXPECT_TRUE(conn_->Commit().ok());  // LOCAL reports success regardless
  EXPECT_DOUBLE_EQ(BalanceOf(4), 7.0);    // committed
  EXPECT_DOUBLE_EQ(BalanceOf(5), 100.0);  // silently rolled back
}

TEST_F(TransactionTest, XaRecoveryCommitsInDoubtBranches) {
  // Drive the 2PC manually so we can "crash" between phase 1 and phase 2.
  auto* txn_ctx = ds_->transaction_context();
  {
    DistributedTransaction txn(TransactionType::kXa, txn_ctx);
    auto c0 = txn.TransactionConnection("ds_0");
    ASSERT_TRUE(c0.ok());
    ASSERT_TRUE((*c0)->Execute("UPDATE t_acct_0 SET balance = 66 WHERE id = 4").ok());
    auto c1 = txn.TransactionConnection("ds_1");
    ASSERT_TRUE(c1.ok());
    ASSERT_TRUE((*c1)->Execute("UPDATE t_acct_1 SET balance = 66 WHERE id = 5").ok());
    // Prepare both branches, then "crash" before phase 2 completes.
    ASSERT_TRUE((*c0)->PrepareXa().ok());
    ASSERT_TRUE((*c1)->PrepareXa().ok());
    txn_ctx->xa_log()->Record(txn.xid(), XaLogStore::State::kCommitting,
                              {"ds_0", "ds_1"});
    // Transaction object dies without completing (destructor rollback is a
    // no-op for already-prepared branches: they are owned by the RM now).
  }
  EXPECT_EQ(nodes_[0]->InDoubtXids().size(), 1u);
  EXPECT_EQ(nodes_[1]->InDoubtXids().size(), 1u);

  XaRecoveryManager recovery(txn_ctx);
  auto resolved = recovery.RecoverAll();
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 1);
  EXPECT_TRUE(nodes_[0]->InDoubtXids().empty());
  EXPECT_TRUE(nodes_[1]->InDoubtXids().empty());
  EXPECT_DOUBLE_EQ(BalanceOf(4), 66.0);
  EXPECT_DOUBLE_EQ(BalanceOf(5), 66.0);
}

TEST_F(TransactionTest, XaRecoveryRollsBackPreparingState) {
  auto* txn_ctx = ds_->transaction_context();
  {
    DistributedTransaction txn(TransactionType::kXa, txn_ctx);
    auto c0 = txn.TransactionConnection("ds_0");
    ASSERT_TRUE(c0.ok());
    ASSERT_TRUE((*c0)->Execute("UPDATE t_acct_0 SET balance = 1 WHERE id = 0").ok());
    ASSERT_TRUE((*c0)->PrepareXa().ok());
    // Crash during prepare phase: log still says kPreparing.
    txn_ctx->xa_log()->Record(txn.xid(), XaLogStore::State::kPreparing, {"ds_0"});
  }
  XaRecoveryManager recovery(txn_ctx);
  ASSERT_TRUE(recovery.RecoverAll().ok());
  EXPECT_DOUBLE_EQ(BalanceOf(0), 100.0);  // rolled back
  EXPECT_TRUE(nodes_[0]->InDoubtXids().empty());
}

TEST_F(TransactionTest, BaseUndoInsertCompensation) {
  UndoRecord undo;
  undo.kind = UndoRecord::Kind::kInsert;
  undo.table = "t_acct_0";
  undo.columns = {"id", "balance"};
  undo.rows = {{Value(1), Value(2.5)}, {Value(2), Value::Null()}};
  auto sqls = CompensationSQL(undo);
  ASSERT_EQ(sqls.size(), 2u);
  EXPECT_EQ(sqls[0], "DELETE FROM t_acct_0 WHERE id = 1 AND balance = 2.5");
  EXPECT_EQ(sqls[1], "DELETE FROM t_acct_0 WHERE id = 2 AND balance IS NULL");
}

TEST_F(TransactionTest, BaseUndoMutateCompensation) {
  UndoRecord undo;
  undo.kind = UndoRecord::Kind::kMutate;
  undo.table = "t_acct_0";
  undo.columns = {"id", "balance"};
  undo.rows = {{Value(4), Value(100.0)}};
  undo.where_sql = "(id = 4)";
  auto sqls = CompensationSQL(undo);
  ASSERT_EQ(sqls.size(), 2u);
  EXPECT_EQ(sqls[0], "DELETE FROM t_acct_0 WHERE (id = 4)");
  EXPECT_EQ(sqls[1], "INSERT INTO t_acct_0 (id, balance) VALUES (4, 100)");
}

TEST_F(TransactionTest, BaseBranchLocalCommitVisibleEarly) {
  // BASE relaxes isolation: branch-local commits are visible before global
  // commit (soft state / eventual consistency, paper §IV-B).
  SetType(TransactionType::kBase);
  ASSERT_TRUE(conn_->Begin().ok());
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "UPDATE t_acct SET balance = 42 WHERE id = 6").ok());
  {
    auto other = ds_->GetConnection();
    auto rs = other->ExecuteQuery("SELECT balance FROM t_acct WHERE id = 6");
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rs->Next());
    EXPECT_DOUBLE_EQ(rs->GetDouble(0), 42.0);  // already visible
  }
  ASSERT_TRUE(conn_->Commit().ok());
  EXPECT_EQ(ds_->transaction_context()->tc()->active_transactions(), 0u);
}

TEST_F(TransactionTest, BaseFailedUnitForcesGlobalRollback) {
  // Regression: a unit that FAILS mid-transaction must reach the observer so
  // the branch is reported failed — previously failed units were skipped and
  // Commit() reported success while a participant had silently failed.
  SetType(TransactionType::kBase);
  ASSERT_TRUE(conn_->Begin().ok());
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "UPDATE t_acct SET balance = 42 WHERE id = 1").ok());
  // Duplicate primary key: this unit fails on its shard. The balance value
  // differs from the existing row's so the insert-compensation DELETE (which
  // matches all inserted columns) cannot touch the pre-existing row.
  EXPECT_FALSE(conn_->ExecuteSQL("INSERT INTO t_acct (id, balance, owner) "
                                 "VALUES (2, 55.0, 'dup')")
                   .ok());
  Status commit = conn_->Commit();
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(commit.code(), StatusCode::kTransactionError);
  // The successful first write was compensated; nothing leaked.
  EXPECT_DOUBLE_EQ(BalanceOf(1), 100.0);
  EXPECT_DOUBLE_EQ(BalanceOf(2), 100.0);
  EXPECT_EQ(CountRows(), 8);
  EXPECT_EQ(ds_->transaction_context()->tc()->active_transactions(), 0u);
}

TEST_F(TransactionTest, BaseBranchCommitFailureSurfacesOnCommit) {
  // A branch-local commit failure (injected at the storage node) must mark
  // the branch failed and turn the global commit into a rollback.
  SetType(TransactionType::kBase);
  ASSERT_TRUE(conn_->Begin().ok());
  for (auto& node : nodes_) node->InjectCommitFailure();
  EXPECT_FALSE(conn_->ExecuteSQL(
                   "UPDATE t_acct SET balance = 7 WHERE id = 1").ok());
  Status commit = conn_->Commit();
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(commit.code(), StatusCode::kTransactionError);
  EXPECT_DOUBLE_EQ(BalanceOf(1), 100.0);
}

TEST_F(TransactionTest, ParseTransactionTypeNames) {
  EXPECT_EQ(*ParseTransactionType("local"), TransactionType::kLocal);
  EXPECT_EQ(*ParseTransactionType("XA"), TransactionType::kXa);
  EXPECT_EQ(*ParseTransactionType("Base"), TransactionType::kBase);
  EXPECT_FALSE(ParseTransactionType("2PC").ok());
  EXPECT_STREQ(TransactionTypeName(TransactionType::kXa), "XA");
}

TEST_F(TransactionTest, SwitchTypeInsideTransactionRejected) {
  ASSERT_TRUE(conn_->Begin().ok());
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "UPDATE t_acct SET balance = 1 WHERE id = 1").ok());
  EXPECT_FALSE(conn_->SetTransactionType(TransactionType::kXa).ok());
  ASSERT_TRUE(conn_->Rollback().ok());
  EXPECT_TRUE(conn_->SetTransactionType(TransactionType::kXa).ok());
}

}  // namespace
}  // namespace sphere::transaction
