#include <gtest/gtest.h>

#include "adaptor/jdbc.h"
#include "common/strings.h"
#include "core/hint.h"
#include "features/aes.h"
#include "features/encrypt.h"
#include "features/guard.h"
#include "features/readwrite.h"
#include "features/scaling.h"
#include "features/shadow.h"

namespace sphere::features {
namespace {

using adaptor::ShardingConnection;
using adaptor::ShardingDataSource;

TEST(AesTest, RoundTripVariousLengths) {
  Aes128 aes("secret-key");
  for (const std::string& plain :
       {std::string(""), std::string("a"), std::string("exactly16bytes!!"),
        std::string("a longer plaintext that spans multiple AES blocks....")}) {
    std::string hex = aes.EncryptToHex(plain);
    std::string out;
    ASSERT_TRUE(aes.DecryptFromHex(hex, &out)) << plain;
    EXPECT_EQ(out, plain);
  }
}

TEST(AesTest, Deterministic) {
  Aes128 aes("k");
  EXPECT_EQ(aes.EncryptToHex("same"), aes.EncryptToHex("same"));
  EXPECT_NE(aes.EncryptToHex("same"), aes.EncryptToHex("diff"));
}

TEST(AesTest, DifferentKeysDifferentCiphertext) {
  Aes128 a("key-a"), b("key-b");
  EXPECT_NE(a.EncryptToHex("text"), b.EncryptToHex("text"));
  std::string out;
  EXPECT_FALSE(b.DecryptFromHex(a.EncryptToHex("text"), &out) && out == "text");
}

TEST(AesTest, KnownVector) {
  // FIPS-197 appendix C.1-style check: all-zero key, all-zero block is not
  // available through the passphrase API, but stability matters: freeze one.
  Aes128 aes("");
  std::string hex = aes.EncryptToHex("");
  // 1 block of pure PKCS#7 padding under the zero key.
  EXPECT_EQ(hex.size(), 32u);
  std::string out;
  ASSERT_TRUE(aes.DecryptFromHex(hex, &out));
  EXPECT_EQ(out, "");
}

TEST(AesTest, MalformedInputRejected) {
  Aes128 aes("k");
  std::string out;
  EXPECT_FALSE(aes.DecryptFromHex("zz", &out));
  EXPECT_FALSE(aes.DecryptFromHex("abcd", &out));        // not block-sized
  EXPECT_FALSE(aes.DecryptFromHex("", &out));
}

// ---------------------------------------------------------------------------
// Feature fixtures on a two-node cluster.
// ---------------------------------------------------------------------------

class FeatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::make_unique<ShardingDataSource>(core::RuntimeConfig(),
                                               net::NetworkConfig::Zero());
    for (int i = 0; i < 4; ++i) {
      nodes_.push_back(
          std::make_unique<engine::StorageNode>("ds_" + std::to_string(i)));
      ASSERT_TRUE(ds_->AttachNode(nodes_.back()->name(), nodes_.back().get()).ok());
    }
  }

  /// t_user sharded MOD-2 over ds_0/ds_1.
  void InstallShardRule() {
    core::ShardingRuleConfig config;
    config.default_data_source = "ds_0";
    core::TableRuleConfig t;
    t.logic_table = "t_user";
    t.auto_resources = {"ds_0", "ds_1"};
    t.auto_sharding_count = 2;
    t.table_strategy.columns = {"uid"};
    t.table_strategy.algorithm_type = "MOD";
    t.table_strategy.props.Set("sharding-count", "2");
    config.tables.push_back(std::move(t));
    ASSERT_TRUE(ds_->SetRule(std::move(config)).ok());
    conn_ = ds_->GetConnection();
    ASSERT_TRUE(conn_->ExecuteSQL("CREATE TABLE t_user (uid BIGINT PRIMARY KEY, "
                                  "name VARCHAR(64), shadow INT)")
                    .ok());
  }

  size_t RowsOn(int node, const std::string& table) {
    auto* t = nodes_[static_cast<size_t>(node)]->database()->FindTable(table);
    return t == nullptr ? 0 : t->row_count();
  }

  std::unique_ptr<ShardingDataSource> ds_;
  std::vector<std::unique_ptr<engine::StorageNode>> nodes_;
  std::unique_ptr<ShardingConnection> conn_;
};

TEST_F(FeatureTest, ReadWriteSplitRoutesReadsToReplicas) {
  // ds_0 is primary with replicas ds_2, ds_3; no sharding.
  core::ShardingRuleConfig config;
  config.default_data_source = "ds_0";
  ASSERT_TRUE(ds_->SetRule(std::move(config)).ok());

  ReadWriteSplitConfig rw;
  rw.groups.push_back({"ds_0", {"ds_2", "ds_3"}, {}, "ROUND_ROBIN"});
  auto interceptor = std::make_shared<ReadWriteSplitInterceptor>(rw);
  ds_->runtime()->AddInterceptor(interceptor);

  conn_ = ds_->GetConnection();
  ASSERT_TRUE(conn_->ExecuteSQL("CREATE TABLE t (id INT PRIMARY KEY, v INT)").ok());
  // DDL replicated to replicas too.
  EXPECT_NE(nodes_[2]->database()->FindTable("t"), nullptr);
  EXPECT_NE(nodes_[3]->database()->FindTable("t"), nullptr);

  auto n = conn_->ExecuteUpdate("INSERT INTO t (id, v) VALUES (1, 10)");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);  // fan-out compensated
  EXPECT_EQ(RowsOn(0, "t"), 1u);
  EXPECT_EQ(RowsOn(2, "t"), 1u);
  EXPECT_EQ(RowsOn(3, "t"), 1u);

  int64_t before_0 = nodes_[0]->statements_executed();
  for (int i = 0; i < 6; ++i) {
    auto rs = conn_->ExecuteQuery("SELECT v FROM t WHERE id = 1");
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rs->Next());
    EXPECT_EQ(rs->GetInt(0), 10);
  }
  // All six reads went to replicas, none to the primary.
  EXPECT_EQ(nodes_[0]->statements_executed(), before_0);
  EXPECT_EQ(interceptor->reads_routed_to_replicas(), 6);
  EXPECT_GT(interceptor->writes_replicated(), 0);
}

TEST_F(FeatureTest, ReadWriteSplitTransactionalReadsStayOnPrimary) {
  core::ShardingRuleConfig config;
  config.default_data_source = "ds_0";
  ASSERT_TRUE(ds_->SetRule(std::move(config)).ok());
  ReadWriteSplitConfig rw;
  rw.groups.push_back({"ds_0", {"ds_2"}, {}, "ROUND_ROBIN"});
  auto interceptor = std::make_shared<ReadWriteSplitInterceptor>(rw);
  ds_->runtime()->AddInterceptor(interceptor);
  conn_ = ds_->GetConnection();
  ASSERT_TRUE(conn_->ExecuteSQL("CREATE TABLE t (id INT PRIMARY KEY, v INT)").ok());
  ASSERT_TRUE(conn_->ExecuteSQL("BEGIN").ok());
  ASSERT_TRUE(conn_->ExecuteSQL("INSERT INTO t (id, v) VALUES (1, 1)").ok());
  ASSERT_TRUE(conn_->ExecuteSQL("SELECT * FROM t WHERE id = 1").ok());
  ASSERT_TRUE(conn_->ExecuteSQL("COMMIT").ok());
  EXPECT_EQ(interceptor->reads_routed_to_replicas(), 0);
}

TEST_F(FeatureTest, EncryptTransparentRoundTrip) {
  InstallShardRule();
  auto interceptor = std::make_shared<EncryptInterceptor>(
      std::vector<EncryptColumnConfig>{{"t_user", "name", "pii-key"}});
  ds_->runtime()->AddInterceptor(interceptor);

  ASSERT_TRUE(conn_->ExecuteSQL("INSERT INTO t_user (uid, name, shadow) VALUES "
                                "(1, 'alice', 0), (2, 'bob', 0)")
                  .ok());
  // Stored ciphertext differs from the plaintext.
  const storage::Table* t1 = nodes_[1]->database()->FindTable("t_user_1");
  ASSERT_NE(t1, nullptr);
  const Row* raw = t1->Find(Value(1));
  ASSERT_NE(raw, nullptr);
  EXPECT_NE((*raw)[1], Value("alice"));
  std::string stored = (*raw)[1].ToString();
  EXPECT_EQ(stored, *interceptor->Encrypt("t_user", "name", "alice"));

  // Reads decrypt transparently.
  auto rs = conn_->ExecuteQuery("SELECT name FROM t_user WHERE uid = 1");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->GetString(0), "alice");

  // Equality predicates on the encrypted column work (deterministic AES).
  auto rs2 = conn_->ExecuteQuery("SELECT uid FROM t_user WHERE name = 'bob'");
  ASSERT_TRUE(rs2.ok());
  ASSERT_TRUE(rs2->Next());
  EXPECT_EQ(rs2->GetInt(0), 2);
}

TEST_F(FeatureTest, EncryptParamsAndUpdates) {
  InstallShardRule();
  ds_->runtime()->AddInterceptor(std::make_shared<EncryptInterceptor>(
      std::vector<EncryptColumnConfig>{{"t_user", "name", "pii-key"}}));
  ASSERT_TRUE(conn_->ExecuteSQL("INSERT INTO t_user (uid, name, shadow) VALUES (?, ?, 0)",
                                {Value(5), Value("carol")})
                  .ok());
  ASSERT_TRUE(conn_->ExecuteSQL("UPDATE t_user SET name = ? WHERE uid = ?",
                                {Value("carla"), Value(5)})
                  .ok());
  auto rs = conn_->ExecuteQuery("SELECT name FROM t_user WHERE uid = 5");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->GetString(0), "carla");
}

TEST_F(FeatureTest, ShadowRoutesFlaggedTraffic) {
  InstallShardRule();
  ShadowConfig shadow;
  shadow.mapping = {{"ds_0", "ds_2"}, {"ds_1", "ds_3"}};
  shadow.shadow_column = "shadow";
  auto interceptor = std::make_shared<ShadowInterceptor>(shadow);
  ds_->runtime()->AddInterceptor(interceptor);

  // Shadow schemas must exist: create via hint so DDL reaches shadow nodes.
  core::HintManager::SetShadow(true);
  ASSERT_TRUE(conn_->ExecuteSQL("CREATE TABLE t_user (uid BIGINT PRIMARY KEY, "
                                "name VARCHAR(64), shadow INT)")
                  .ok());
  core::HintManager::Clear();

  // Production insert.
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "INSERT INTO t_user (uid, name, shadow) VALUES (2, 'real', 0)")
                  .ok());
  // Test traffic flagged by column value.
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "INSERT INTO t_user (uid, name, shadow) VALUES (4, 'test', 1)")
                  .ok());
  EXPECT_EQ(RowsOn(0, "t_user_0"), 1u);  // production row
  EXPECT_EQ(RowsOn(2, "t_user_0"), 1u);  // shadow row
  EXPECT_GE(interceptor->shadow_statements(), 1);

  // Shadow reads see only shadow data.
  auto rs = conn_->ExecuteQuery(
      "SELECT name FROM t_user WHERE uid = 4 AND shadow = 1");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->GetString(0), "test");
}

TEST_F(FeatureTest, ShadowHintTriggers) {
  InstallShardRule();
  ShadowConfig shadow;
  shadow.mapping = {{"ds_0", "ds_2"}, {"ds_1", "ds_3"}};
  auto interceptor = std::make_shared<ShadowInterceptor>(shadow);
  ds_->runtime()->AddInterceptor(interceptor);
  core::HintManager::SetShadow(true);
  ASSERT_TRUE(conn_->ExecuteSQL("CREATE TABLE t_user (uid BIGINT PRIMARY KEY, "
                                "name VARCHAR(64), shadow INT)")
                  .ok());
  ASSERT_TRUE(conn_->ExecuteSQL(
                  "INSERT INTO t_user (uid, name, shadow) VALUES (2, 'x', 0)")
                  .ok());
  core::HintManager::Clear();
  EXPECT_EQ(RowsOn(2, "t_user_0"), 1u);
  EXPECT_EQ(RowsOn(0, "t_user_0"), 0u);
}

TEST_F(FeatureTest, CircuitBreakerLifecycle) {
  InstallShardRule();
  auto breaker = std::make_shared<CircuitBreaker>(/*failure_threshold=*/2,
                                                  /*open_duration_ms=*/20);
  ds_->runtime()->AddInterceptor(breaker);

  ASSERT_TRUE(conn_->ExecuteSQL("SELECT * FROM t_user WHERE uid = 1").ok());
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kClosed);

  breaker->RecordFailure();
  breaker->RecordFailure();
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kOpen);
  auto r = conn_->ExecuteSQL("SELECT * FROM t_user WHERE uid = 1");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(breaker->rejected_statements(), 1);

  SleepMicros(25000);  // cool-down elapses -> half-open probe allowed
  EXPECT_TRUE(conn_->ExecuteSQL("SELECT * FROM t_user WHERE uid = 1").ok());
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kClosed);
}

TEST_F(FeatureTest, ThrottleRejectsBeyondRate) {
  InstallShardRule();
  auto throttle = std::make_shared<RateThrottle>(/*rate=*/1.0, /*burst=*/3.0);
  ds_->runtime()->AddInterceptor(throttle);
  int ok = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    auto r = conn_->ExecuteSQL("SELECT * FROM t_user WHERE uid = 1");
    if (r.ok()) ++ok;
    else if (r.status().code() == StatusCode::kResourceExhausted) ++rejected;
  }
  EXPECT_EQ(ok, 3);  // the burst
  EXPECT_EQ(rejected, 7);
  EXPECT_EQ(throttle->throttled_statements(), 7);
}

TEST_F(FeatureTest, ScalingJobReshards) {
  InstallShardRule();
  for (int uid = 0; uid < 40; ++uid) {
    ASSERT_TRUE(conn_->ExecuteSQL(StrFormat(
                    "INSERT INTO t_user (uid, name, shadow) VALUES (%d, 'u%d', 0)",
                    uid, uid))
                    .ok());
  }
  // Reshard 2 -> 8 tables over all four data sources (new table names so
  // nodes don't collide).
  core::TableRuleConfig target;
  target.actual_data_nodes = "ds_${0..3}.t_user_v2_${0..7}";
  target.table_strategy.columns = {"uid"};
  target.table_strategy.algorithm_type = "MOD";
  target.table_strategy.props.Set("sharding-count", "8");

  ScalingJob job(ds_->runtime(), "t_user", target);
  auto report = job.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_migrated, 40u);
  EXPECT_TRUE(report->consistency_ok);
  EXPECT_EQ(report->source_nodes, 2u);
  EXPECT_EQ(report->target_nodes, 8u);

  // The runtime now serves from the new layout.
  auto rs = conn_->ExecuteQuery("SELECT COUNT(*) FROM t_user");
  ASSERT_TRUE(rs.ok());
  rs->Next();
  EXPECT_EQ(rs->GetInt(0), 40);
  auto point = conn_->ExecuteQuery("SELECT name FROM t_user WHERE uid = 13");
  ASSERT_TRUE(point.ok());
  ASSERT_TRUE(point->Next());
  EXPECT_EQ(point->GetString(0), "u13");
  // New shard tables hold the data.
  EXPECT_GT(RowsOn(2, "t_user_v2_2"), 0u);
}

TEST_F(FeatureTest, ScalingRejectsCollidingLayout) {
  InstallShardRule();
  core::TableRuleConfig target;
  target.actual_data_nodes = "ds_${0..1}.t_user_${0..1}";  // same nodes
  target.table_strategy.columns = {"uid"};
  target.table_strategy.algorithm_type = "MOD";
  target.table_strategy.props.Set("sharding-count", "2");
  ScalingJob job(ds_->runtime(), "t_user", target);
  EXPECT_FALSE(job.Run().ok());
}

}  // namespace
}  // namespace sphere::features
