// Telecom billing modeled on the paper's China Telecom BestPay case (§VII-B):
// bills split across two database servers by merchant_code % 2 and, inside
// each server, into monthly tables — plus transparent AES encryption of the
// account column (the Encrypt feature).
//
//   ./examples/telecom_billing

#include <cstdio>

#include "examples/example_util.h"
#include "features/encrypt.h"

using namespace sphere;            // NOLINT
using namespace sphere::examples;  // NOLINT

int main() {
  std::printf("== telecom billing (BestPay-style) ==\n\n");

  engine::StorageNode server0("server_0");
  engine::StorageNode server1("server_1");
  adaptor::ShardingDataSource ds;
  Check(ds.AttachNode("server_0", &server0), "attach 0");
  Check(ds.AttachNode("server_1", &server1), "attach 1");

  // Two-level sharding, exactly the BestPay layout: database strategy
  // merchant_code % 2, table strategy per month.
  core::ShardingRuleConfig rule;
  rule.default_data_source = "server_0";
  core::TableRuleConfig bills;
  bills.logic_table = "t_bill";
  // 6 monthly tables on each of the 2 servers.
  bills.actual_data_nodes = "server_0.t_bill_${0..5}, server_1.t_bill_${0..5}";
  bills.database_strategy.columns = {"merchant_code"};
  bills.database_strategy.algorithm_type = "INLINE";
  bills.database_strategy.props.Set("algorithm-expression",
                                    "server_${merchant_code % 2}");
  bills.database_strategy.props.Set("sharding-column", "merchant_code");
  bills.table_strategy.columns = {"bill_month"};
  bills.table_strategy.algorithm_type = "INTERVAL";
  bills.table_strategy.props.Set("datetime-lower", "2021-01");
  bills.table_strategy.props.Set("sharding-months", "1");
  rule.tables.push_back(std::move(bills));
  Check(ds.SetRule(std::move(rule)), "set rule");

  // Transparent encryption of the subscriber account column.
  ds.runtime()->AddInterceptor(
      std::make_shared<features::EncryptInterceptor>(
          std::vector<features::EncryptColumnConfig>{
              {"t_bill", "account", "bestpay-secret-key"}}));

  auto conn = ds.GetConnection();
  Exec(conn.get(),
       "CREATE TABLE t_bill (bill_id BIGINT PRIMARY KEY, merchant_code BIGINT, "
       "bill_month INT, account VARCHAR(64), amount DOUBLE)");

  std::printf("loading bills for 4 merchants x 3 months...\n");
  int64_t bill_id = 1;
  for (int merchant = 10; merchant < 14; ++merchant) {
    for (int month : {202101, 202102, 202103}) {
      Exec(conn.get(),
           StrFormat("INSERT INTO t_bill (bill_id, merchant_code, bill_month, "
                     "account, amount) VALUES (%lld, %d, %d, 'acct-%d', %d.50)",
                     static_cast<long long>(bill_id++), merchant, month,
                     merchant, merchant * month % 1000));
    }
  }

  // Queries route by merchant (server) AND month (table): a single data node.
  PrintQuery(conn.get(),
             "SELECT bill_id, account, amount FROM t_bill "
             "WHERE merchant_code = 11 AND bill_month = 202102");

  // Month-range query on one merchant: two monthly tables on one server.
  PrintQuery(conn.get(),
             "SELECT bill_month, SUM(amount) AS total FROM t_bill "
             "WHERE merchant_code = 12 AND bill_month BETWEEN 202101 AND 202102 "
             "GROUP BY bill_month ORDER BY bill_month");

  // The stored account values are AES ciphertext, not plaintext:
  std::printf("raw storage on server_0.t_bill_1 (ciphertext at rest):\n");
  const storage::Table* raw = server0.database()->FindTable("t_bill_1");
  if (raw != nullptr) {
    for (auto it = raw->Begin(); it.Valid(); it.Next()) {
      std::printf("  bill %s account=%.32s...\n",
                  it.payload()[0].ToString().c_str(),
                  it.payload()[3].ToString().c_str());
    }
  }

  std::printf("\nresponse-time story: every query above touched exactly the "
              "server and monthly table it needed (the <50ms BestPay fix).\n");
  return 0;
}
