#ifndef SPHERE_EXAMPLES_EXAMPLE_UTIL_H_
#define SPHERE_EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "adaptor/jdbc.h"
#include "common/strings.h"

namespace sphere::examples {

/// Aborts the example with a readable message when a Status is not OK.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL at %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

/// Executes a statement through a connection, aborting on error.
inline void Exec(adaptor::ShardingConnection* conn, const std::string& sql) {
  auto r = conn->ExecuteSQL(sql);
  Check(r.status(), sql.c_str());
}

/// Runs a query and prints it as an aligned table.
inline void PrintQuery(adaptor::ShardingConnection* conn,
                       const std::string& sql) {
  std::printf("sql> %s\n", sql.c_str());
  auto rs = Unwrap(conn->ExecuteQuery(sql), sql.c_str());
  const auto& cols = rs.columns();
  for (const auto& c : cols) std::printf("%-18s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < cols.size(); ++i) std::printf("%-18s", "------");
  std::printf("\n");
  int rows = 0;
  while (rs.Next()) {
    for (size_t i = 0; i < cols.size(); ++i) {
      std::printf("%-18s", rs.Get(static_cast<int>(i)).ToString().c_str());
    }
    std::printf("\n");
    ++rows;
  }
  std::printf("(%d rows)\n\n", rows);
}

}  // namespace sphere::examples

#endif  // SPHERE_EXAMPLES_EXAMPLE_UTIL_H_
