// Quickstart: shard one table over two database servers and use it like a
// single database — the core promise of the platform.
//
//   ./examples/quickstart

#include <cstdio>

#include "examples/example_util.h"

using namespace sphere;            // NOLINT
using namespace sphere::examples;  // NOLINT

int main() {
  std::printf("== quickstart: one logical table over two databases ==\n\n");

  // 1. Two storage nodes stand in for two MySQL servers.
  engine::StorageNode ds0("ds_0");
  engine::StorageNode ds1("ds_1");

  // 2. The embedded (JDBC-like) data source fronting them.
  adaptor::ShardingDataSource sphere_ds;
  Check(sphere_ds.AttachNode("ds_0", &ds0), "attach ds_0");
  Check(sphere_ds.AttachNode("ds_1", &ds1), "attach ds_1");

  // 3. Shard t_user by uid into 4 tables spread over both servers
  //    (AutoTable: we only say *where* and *how many*).
  core::ShardingRuleConfig rule;
  rule.default_data_source = "ds_0";
  core::TableRuleConfig user_rule;
  user_rule.logic_table = "t_user";
  user_rule.auto_resources = {"ds_0", "ds_1"};
  user_rule.auto_sharding_count = 4;
  user_rule.table_strategy.columns = {"uid"};
  user_rule.table_strategy.algorithm_type = "MOD";
  user_rule.table_strategy.props.Set("sharding-count", "4");
  rule.tables.push_back(std::move(user_rule));
  Check(sphere_ds.SetRule(std::move(rule)), "set rule");

  // 4. Use it like one database.
  auto conn = sphere_ds.GetConnection();
  Exec(conn.get(),
       "CREATE TABLE t_user (uid BIGINT PRIMARY KEY, name VARCHAR(64), "
       "age INT)");
  Exec(conn.get(),
       "INSERT INTO t_user (uid, name, age) VALUES "
       "(1, 'ann', 23), (2, 'bob', 31), (3, 'carol', 27), (4, 'dave', 23), "
       "(5, 'eve', 35), (6, 'frank', 31)");

  PrintQuery(conn.get(), "SELECT name, age FROM t_user WHERE uid = 3");
  PrintQuery(conn.get(), "SELECT uid, name FROM t_user ORDER BY uid DESC LIMIT 3");
  PrintQuery(conn.get(),
             "SELECT age, COUNT(*) AS n FROM t_user GROUP BY age ORDER BY age");

  // 5. Where did the rows actually go?
  std::printf("physical layout:\n");
  for (engine::StorageNode* node : {&ds0, &ds1}) {
    for (const auto& table : node->database()->TableNames()) {
      std::printf("  %s.%s: %zu rows\n", node->name().c_str(), table.c_str(),
                  node->database()->FindTable(table)->row_count());
    }
  }
  std::printf("\nThe application never mentioned t_user_0..t_user_3 — "
              "that is the point.\n");
  return 0;
}
