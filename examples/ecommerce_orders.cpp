// E-commerce order system modeled on the paper's JD Baitiao case (§VII-B):
// hash sharding on user ids against hot spots, binding tables so order/item
// joins stay pairwise, snowflake key generation, and an XA transaction
// placing an order that touches two shards.
//
//   ./examples/ecommerce_orders

#include <cstdio>

#include "examples/example_util.h"

using namespace sphere;            // NOLINT
using namespace sphere::examples;  // NOLINT

int main() {
  std::printf("== e-commerce orders (JD-Baitiao-style) ==\n\n");

  // Four storage nodes; orders hash-sharded by user id to spread hot users.
  std::vector<std::unique_ptr<engine::StorageNode>> nodes;
  adaptor::ShardingDataSource ds;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<engine::StorageNode>("ds_" + std::to_string(i)));
    Check(ds.AttachNode(nodes.back()->name(), nodes.back().get()), "attach");
  }

  core::ShardingRuleConfig rule;
  rule.default_data_source = "ds_0";
  for (const char* table : {"t_order", "t_order_item"}) {
    core::TableRuleConfig t;
    t.logic_table = table;
    t.auto_resources = {"ds_0", "ds_1", "ds_2", "ds_3"};
    t.auto_sharding_count = 8;
    t.table_strategy.columns = {"user_id"};
    t.table_strategy.algorithm_type = "HASH_MOD";  // JD: hash against hotspots
    t.table_strategy.props.Set("sharding-count", "8");
    if (std::string(table) == "t_order") {
      t.keygen_column = "order_id";
      t.keygen_type = "SNOWFLAKE";
    }
    rule.tables.push_back(std::move(t));
  }
  rule.binding_groups.push_back({"t_order", "t_order_item"});
  Check(ds.SetRule(std::move(rule)), "set rule");

  auto conn = ds.GetConnection();
  Exec(conn.get(),
       "CREATE TABLE t_order (order_id BIGINT PRIMARY KEY, user_id BIGINT, "
       "status VARCHAR(16), total DOUBLE)");
  Exec(conn.get(),
       "CREATE TABLE t_order_item (item_id BIGINT PRIMARY KEY, "
       "user_id BIGINT, order_id BIGINT, sku VARCHAR(32), price DOUBLE)");

  // Orders with snowflake-generated keys (order_id omitted on insert).
  std::printf("placing orders with generated snowflake ids...\n");
  for (int user = 100; user < 108; ++user) {
    auto r = conn->ExecuteSQL(StrFormat(
        "INSERT INTO t_order (user_id, status, total) VALUES (%d, 'NEW', %d.0)",
        user, user * 3));
    Check(r.status(), "insert order");
    int64_t order_id = r->last_insert_id;
    Exec(conn.get(), StrFormat("INSERT INTO t_order_item (item_id, user_id, "
                               "order_id, sku, price) VALUES (%d, %d, %lld, "
                               "'sku-%d', %d.0)",
                               user * 10, user, static_cast<long long>(order_id),
                               user, user));
  }

  // Binding-table join: each shard joins only its own pair of actual tables.
  PrintQuery(conn.get(),
             "SELECT o.user_id, i.sku, o.total FROM t_order o "
             "JOIN t_order_item i ON o.order_id = i.order_id "
             "WHERE o.user_id IN (100, 101, 102) ORDER BY o.user_id");

  // A payment that moves an order through states on two different shards,
  // atomically, under XA.
  std::printf("running an XA transaction across shards...\n");
  Check(conn->SetTransactionType(transaction::TransactionType::kXa), "set XA");
  Check(conn->Begin(), "begin");
  Exec(conn.get(), "UPDATE t_order SET status = 'PAID' WHERE user_id = 100");
  Exec(conn.get(), "UPDATE t_order SET status = 'PAID' WHERE user_id = 101");
  Check(conn->Commit(), "commit");
  PrintQuery(conn.get(),
             "SELECT user_id, status FROM t_order WHERE user_id IN (100, 101)");

  // And a rollback: no partial state survives.
  Check(conn->Begin(), "begin 2");
  Exec(conn.get(), "UPDATE t_order SET status = 'BROKEN' WHERE user_id = 102");
  Exec(conn.get(), "UPDATE t_order SET status = 'BROKEN' WHERE user_id = 103");
  Check(conn->Rollback(), "rollback");
  PrintQuery(conn.get(),
             "SELECT user_id, status FROM t_order WHERE user_id IN (102, 103)");

  std::printf("done: orders stayed consistent across 4 servers / 8 shards.\n");
  return 0;
}
