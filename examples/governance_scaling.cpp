// Operations day-2 tour: the Governor (configuration registry + health
// detection, paper §V) and the Scaling feature (online resharding, §IV-C).
//
//   ./examples/governance_scaling

#include <cstdio>

#include "examples/example_util.h"
#include "features/scaling.h"
#include "governor/config_manager.h"
#include "governor/health.h"
#include "governor/registry.h"

using namespace sphere;            // NOLINT
using namespace sphere::examples;  // NOLINT

int main() {
  std::printf("== governance & scaling ==\n\n");

  // ---- Governor: configuration management over the registry ----
  governor::Registry registry;
  governor::ConfigManager config(&registry);
  Check(config.SaveDataSource("ds_0", "host=10.0.0.1 port=3306"), "save ds");
  Check(config.SaveDataSource("ds_1", "host=10.0.0.2 port=3306"), "save ds");
  Check(config.SaveRule("t_user", "MOD(uid, 4) over ds_0, ds_1"), "save rule");
  Check(config.SetProperty("max-connections-per-query", "8"), "save prop");

  std::printf("registry contents:\n");
  for (const auto& name : config.ListDataSources()) {
    std::printf("  /config/datasources/%s = %s\n", name.c_str(),
                config.GetDataSource(name)->c_str());
  }
  for (const auto& table : config.ListRules()) {
    std::printf("  /config/rules/%s = %s\n", table.c_str(),
                config.GetRule(table)->c_str());
  }

  // Watches: a config push notifies every subscribed instance.
  registry.Watch("/config/rules", [](const governor::RegistryEvent& ev) {
    std::printf("  [watch] rule change at %s -> '%s'\n", ev.path.c_str(),
                ev.data.c_str());
  });
  Check(config.SaveRule("t_user", "MOD(uid, 8) over ds_0, ds_1"), "update rule");

  // Ephemeral instance markers vanish with their session (dead proxy).
  auto session_id = registry.Connect();
  Check(config.RegisterInstance("proxy-1", session_id), "register instance");
  std::printf("live instances: %zu\n", config.LiveInstances().size());
  registry.Disconnect(session_id);
  std::printf("after proxy crash (session drop): %zu live instances\n\n",
              config.LiveInstances().size());

  // ---- Governor: health detection ----
  governor::HealthDetector detector(/*check_interval_ms=*/50, /*timeout_ms=*/0);
  detector.SetStateChangeCallback(
      [](const std::string& name, governor::HealthDetector::State state) {
        std::printf("  [health] %s is %s\n", name.c_str(),
                    state == governor::HealthDetector::State::kUp ? "UP" : "DOWN");
      });
  detector.RegisterInstance("ds_0");
  detector.RegisterInstance("ds_1");
  SleepMicros(2000);
  detector.Heartbeat("ds_0");  // only ds_0 heartbeats
  detector.RunCheckOnce();     // ds_1's heartbeat is stale -> DOWN
  std::printf("healthy: %zu of 2 registered\n\n",
              detector.HealthyInstances().size());

  // ---- Scaling: reshard a live table 4 -> 8 shards ----
  std::printf("scaling t_user from 4 to 8 shards...\n");
  std::vector<std::unique_ptr<engine::StorageNode>> nodes;
  adaptor::ShardingDataSource ds;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<engine::StorageNode>("ds_" + std::to_string(i)));
    Check(ds.AttachNode(nodes.back()->name(), nodes.back().get()), "attach");
  }
  core::ShardingRuleConfig rule;
  rule.default_data_source = "ds_0";
  core::TableRuleConfig t;
  t.logic_table = "t_user";
  t.auto_resources = {"ds_0", "ds_1"};  // initially only two servers
  t.auto_sharding_count = 4;
  t.table_strategy.columns = {"uid"};
  t.table_strategy.algorithm_type = "MOD";
  t.table_strategy.props.Set("sharding-count", "4");
  rule.tables.push_back(std::move(t));
  Check(ds.SetRule(std::move(rule)), "rule");

  auto conn = ds.GetConnection();
  Exec(conn.get(),
       "CREATE TABLE t_user (uid BIGINT PRIMARY KEY, name VARCHAR(32))");
  for (int uid = 0; uid < 200; ++uid) {
    Exec(conn.get(), StrFormat("INSERT INTO t_user (uid, name) VALUES (%d, 'u%d')",
                               uid, uid));
  }

  core::TableRuleConfig target;
  target.actual_data_nodes = "ds_${0..3}.t_user_v2_${0..7}";  // all 4 servers
  target.table_strategy.columns = {"uid"};
  target.table_strategy.algorithm_type = "MOD";
  target.table_strategy.props.Set("sharding-count", "8");

  features::ScalingJob job(ds.runtime(), "t_user", target);
  auto report = Unwrap(job.Run(), "scaling job");
  std::printf("  migrated %zu rows: %zu -> %zu nodes, consistency %s "
              "(checksum %016llx)\n",
              report.rows_migrated, report.source_nodes, report.target_nodes,
              report.consistency_ok ? "OK" : "FAILED",
              static_cast<unsigned long long>(report.target_checksum));

  // Queries keep working against the new layout, same logical SQL.
  PrintQuery(conn.get(), "SELECT COUNT(*) FROM t_user");
  PrintQuery(conn.get(), "SELECT name FROM t_user WHERE uid = 137");
  return 0;
}
