// DistSQL tour (paper §V-A): configure sharding with SQL instead of config
// files — RDL to define rules (AutoTable), RQL to inspect them, RAL to
// administer the runtime, PREVIEW to see routing decisions, and
// TRACE / SHOW METRICS to watch the pipeline run.
//
//   ./examples/distsql_tour

#include <cstdio>

#include "examples/example_util.h"

using namespace sphere;            // NOLINT
using namespace sphere::examples;  // NOLINT

int main() {
  std::printf("== DistSQL tour ==\n\n");

  engine::StorageNode ds0("ds0");
  engine::StorageNode ds1("ds1");
  adaptor::ShardingDataSource ds;
  Check(ds.AttachNode("ds0", &ds0), "attach");
  Check(ds.AttachNode("ds1", &ds1), "attach");
  auto conn = ds.GetConnection();

  // --- RDL: the paper's own example statement ---
  std::printf("RDL> CREATE SHARDING TABLE RULE t_user_h (...)\n");
  Exec(conn.get(),
       "CREATE SHARDING TABLE RULE t_user_h (RESOURCES(ds0, ds1), "
       "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES(\"sharding-count\"=2))");
  std::printf("  -> AutoTable computed the layout; no physical table named "
              "by hand.\n\n");

  // The logical DDL materializes t_user_h_0 on ds0 and t_user_h_1 on ds1.
  Exec(conn.get(),
       "CREATE TABLE t_user_h (uid BIGINT PRIMARY KEY, name VARCHAR(32))");
  Exec(conn.get(),
       "INSERT INTO t_user_h (uid, name) VALUES (1, 'a'), (2, 'b'), (3, 'c')");

  // --- RQL ---
  PrintQuery(conn.get(), "SHOW SHARDING TABLE RULES");
  PrintQuery(conn.get(), "SHOW STORAGE UNITS");
  PrintQuery(conn.get(), "SHOW SHARDING ALGORITHMS");

  // --- RAL ---
  std::printf("RAL> SET VARIABLE transaction_type = XA\n");
  Exec(conn.get(), "SET VARIABLE transaction_type = XA");
  PrintQuery(conn.get(), "SHOW VARIABLE transaction_type");

  // --- PREVIEW: where would this SQL go? ---
  PrintQuery(conn.get(), "PREVIEW SELECT * FROM t_user_h WHERE uid = 3");
  PrintQuery(conn.get(), "PREVIEW SELECT COUNT(*) FROM t_user_h");

  // --- Observability: where did this SQL spend its time? (DESIGN.md §13) ---
  PrintQuery(conn.get(), "TRACE SELECT * FROM t_user_h WHERE uid > 0");
  PrintQuery(conn.get(), "SHOW METRICS LIKE 'stage.%'");
  PrintQuery(conn.get(), "SHOW METRICS LIKE 'statement_cache.%'");

  // Rules are live objects: ALTER reshards the metadata on the fly.
  std::printf("RDL> ALTER SHARDING TABLE RULE t_user_h (sharding-count=4)\n");
  Exec(conn.get(),
       "ALTER SHARDING TABLE RULE t_user_h (RESOURCES(ds0, ds1), "
       "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES(\"sharding-count\"=4))");
  PrintQuery(conn.get(), "SHOW SHARDING TABLE RULES");

  std::printf("DistSQL lets operators manage the middleware like a database — "
              "no config files were harmed.\n");
  return 0;
}
