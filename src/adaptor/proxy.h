#ifndef SPHERE_ADAPTOR_PROXY_H_
#define SPHERE_ADAPTOR_PROXY_H_

#include <atomic>
#include <memory>

#include "adaptor/jdbc.h"
#include "common/mutex.h"
#include "net/packet.h"

namespace sphere::adaptor {

/// The proxy adaptor (paper's ShardingSphere-Proxy): a stand-alone server
/// between applications and the data sources, speaking the simulated database
/// wire protocol. Clients of any language connect to it like to a MySQL /
/// PostgreSQL server; the price is one extra protocol round trip plus
/// serialization per statement — exactly the SSJ-vs-SSP gap measured in the
/// paper's evaluation.
///
/// The proxy shares one ShardingDataSource backend, so all client connections
/// share its connection pools (the pooling advantage §VII-A mentions).
class ShardingProxy {
 public:
  /// `client_network` models the app <-> proxy link. Publishes a
  /// `proxy.workers_busy` gauge probe for its lifetime (last proxy wins if
  /// several coexist, as in capacity tests).
  ShardingProxy(ShardingDataSource* backend,
                const net::LatencyModel* client_network);
  ~ShardingProxy();

  ShardingProxy(const ShardingProxy&) = delete;
  ShardingProxy& operator=(const ShardingProxy&) = delete;

  /// One client connection: its transaction state lives in the proxy-side
  /// backend connection, like a server session.
  class Connection {
   public:
    explicit Connection(ShardingProxy* proxy)
        : proxy_(proxy), backend_(proxy->backend_->GetConnection()) {}

    /// Full frontend round trip: encode the command, cross the wire, let the
    /// proxy decode and execute it, encode the response, cross back.
    Result<engine::ExecResult> Execute(std::string_view sql_text,
                                       const std::vector<Value>& params = {});

    ShardingConnection* backend() { return backend_.get(); }

   private:
    ShardingProxy* proxy_;
    std::unique_ptr<ShardingConnection> backend_;
  };

  std::unique_ptr<Connection> Connect() {
    return std::make_unique<Connection>(this);
  }

  /// Caps concurrently executing statements (the proxy process's worker
  /// capacity — the single-proxy bottleneck of paper Fig. 12; 0 = unlimited).
  void set_worker_capacity(int workers) SPHERE_EXCLUDES(worker_mu_);

  int64_t statements_served() const { return statements_served_.load(); }

  /// Statements currently holding a worker slot (observability probe).
  int workers_busy() const SPHERE_EXCLUDES(worker_mu_);

 private:
  friend class Connection;

  void AcquireWorker() SPHERE_EXCLUDES(worker_mu_);
  void ReleaseWorker() SPHERE_EXCLUDES(worker_mu_);

  /// Bumps both the per-instance count and the process-wide
  /// `proxy.statements` registry counter.
  void CountStatement();

  ShardingDataSource* const backend_;
  const net::LatencyModel* client_network_;
  std::atomic<int64_t> statements_served_{0};
  mutable Mutex worker_mu_{LockRank::kAdaptor, "adaptor/proxy.worker"};
  CondVar worker_cv_;
  int worker_capacity_ SPHERE_GUARDED_BY(worker_mu_) = 0;  ///< 0 = unlimited
  int workers_busy_ SPHERE_GUARDED_BY(worker_mu_) = 0;
};

}  // namespace sphere::adaptor

#endif  // SPHERE_ADAPTOR_PROXY_H_
