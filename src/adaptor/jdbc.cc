#include "adaptor/jdbc.h"

#include "common/strings.h"
#include "sql/parser.h"

namespace sphere::adaptor {

ShardingDataSource::ShardingDataSource(core::RuntimeConfig config,
                                       net::NetworkConfig network)
    : runtime_(config, network),
      txn_context_(runtime_.data_sources(), &runtime_.network()),
      distsql_(&runtime_) {}

Status ShardingDataSource::AttachNode(const std::string& name,
                                      engine::StorageNode* node) {
  return runtime_.AttachNode(name, node);
}

Status ShardingDataSource::SetRule(core::ShardingRuleConfig config) {
  distsql_.SeedConfig(config);
  SPHERE_RETURN_NOT_OK(runtime_.SetRule(std::move(config)));
  PersistRules();
  return Status::OK();
}

namespace {

std::string DescribeStrategyConfig(const core::ShardingStrategyConfig& s) {
  if (s.empty()) return "-";
  std::string out = Join(s.columns, ",") + " " + s.algorithm_type;
  if (!s.props.empty()) out += " (" + s.props.ToString() + ")";
  return out;
}

/// Serializes one table rule for the registry (human-readable; the consumer
/// is an operator or another instance's bootstrap).
std::string SerializeTableRule(const core::TableRuleConfig& t) {
  std::string out;
  if (!t.actual_data_nodes.empty()) {
    out += "nodes=" + t.actual_data_nodes;
  } else {
    out += "auto=" + Join(t.auto_resources, ",") + " x" +
           std::to_string(t.auto_sharding_count);
  }
  out += "; db=" + DescribeStrategyConfig(t.database_strategy);
  out += "; table=" + DescribeStrategyConfig(t.table_strategy);
  if (!t.keygen_column.empty()) {
    out += "; keygen=" + t.keygen_column + " " + t.keygen_type;
  }
  return out;
}

}  // namespace

Status ShardingDataSource::BindGovernor(
    governor::ConfigManager* config_manager, const std::string& instance_id) {
  governor_ = config_manager;
  governor_session_ = config_manager->registry()->Connect();
  SPHERE_RETURN_NOT_OK(
      config_manager->RegisterInstance(instance_id, governor_session_));
  for (const auto& name : runtime_.data_sources()->Names()) {
    SPHERE_RETURN_NOT_OK(config_manager->SaveDataSource(name, "attached"));
  }
  distsql_.SetOnRuleChange([this] { PersistRules(); });
  PersistRules();
  return Status::OK();
}

void ShardingDataSource::PersistRules() {
  if (governor_ == nullptr) return;
  // Replace the rule subtree with the current declarative config.
  for (const auto& table : governor_->ListRules()) {
    (void)governor_->DropRule(table);
  }
  for (const auto& t : distsql_.config().tables) {
    (void)governor_->SaveRule(t.logic_table, SerializeTableRule(t));
  }
}

std::unique_ptr<ShardingConnection> ShardingDataSource::GetConnection() {
  return std::make_unique<ShardingConnection>(this);
}

int ShardingResultSet::ColumnIndex(const std::string& label) const {
  const auto& cols = rs_->columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (EqualsIgnoreCase(cols[i], label)) return static_cast<int>(i);
  }
  return -1;
}

ShardingConnection::~ShardingConnection() {
  if (txn_ != nullptr) {
    (void)txn_->Rollback();
    txn_.reset();
  }
}

Status ShardingConnection::EnsureTransaction() {
  if (txn_ == nullptr) {
    txn_ = std::make_unique<transaction::DistributedTransaction>(
        txn_type_, data_source_->transaction_context());
  }
  return Status::OK();
}

Status ShardingConnection::SetAutoCommit(bool autocommit) {
  if (autocommit && txn_ != nullptr) {
    SPHERE_RETURN_NOT_OK(Commit());
  }
  autocommit_ = autocommit;
  return Status::OK();
}

Status ShardingConnection::Begin() {
  if (txn_ != nullptr) {
    SPHERE_RETURN_NOT_OK(Commit());  // implicit commit, MySQL style
  }
  return EnsureTransaction();
}

Status ShardingConnection::Commit() {
  if (txn_ == nullptr) return Status::OK();
  Status st = txn_->Commit();
  txn_.reset();
  return st;
}

Status ShardingConnection::Rollback() {
  if (txn_ == nullptr) return Status::OK();
  Status st = txn_->Rollback();
  txn_.reset();
  return st;
}

Status ShardingConnection::SetTransactionType(
    transaction::TransactionType type) {
  if (txn_ != nullptr) {
    return Status::TransactionError(
        "cannot switch transaction type inside a transaction");
  }
  txn_type_ = type;
  return Status::OK();
}

Result<engine::ExecResult> ShardingConnection::ExecutePlanned(
    const core::StatementPlan& plan, std::vector<Value> params) {
  const sql::Statement& stmt = plan.stmt();
  switch (stmt.kind()) {
    case sql::StatementKind::kBegin:
      SPHERE_RETURN_NOT_OK(Begin());
      return engine::ExecResult::Update(0);
    case sql::StatementKind::kCommit:
      SPHERE_RETURN_NOT_OK(Commit());
      return engine::ExecResult::Update(0);
    case sql::StatementKind::kRollback:
      SPHERE_RETURN_NOT_OK(Rollback());
      return engine::ExecResult::Update(0);
    case sql::StatementKind::kSet: {
      const auto& set = static_cast<const sql::SetStatement&>(stmt);
      if (EqualsIgnoreCase(set.name, "transaction_type")) {
        SPHERE_ASSIGN_OR_RETURN(
            transaction::TransactionType type,
            transaction::ParseTransactionType(set.value.ToString()));
        SPHERE_RETURN_NOT_OK(SetTransactionType(type));
        return engine::ExecResult::Update(0);
      }
      if (EqualsIgnoreCase(set.name, "autocommit")) {
        SPHERE_RETURN_NOT_OK(SetAutoCommit(set.value.ToInt() != 0));
        return engine::ExecResult::Update(0);
      }
      return engine::ExecResult::Update(0);  // other session vars: no-op
    }
    default:
      break;
  }

  // Implicit transaction when autocommit is off.
  if (!autocommit_ && txn_ == nullptr && stmt.IsDML()) {
    SPHERE_RETURN_NOT_OK(EnsureTransaction());
  }
  core::ConnectionSource* source = txn_ != nullptr ? txn_.get() : nullptr;
  core::UnitObserver* observer = txn_ != nullptr ? txn_->observer() : nullptr;
  return data_source_->runtime()->ExecutePlan(plan, std::move(params), source,
                                              observer);
}

Result<engine::ExecResult> ShardingConnection::ExecuteSQL(
    std::string_view sql_text, std::vector<Value> params) {
  if (distsql::DistSQLEngine::IsDistSQL(sql_text)) {
    distsql::SessionHooks hooks;
    hooks.get_transaction_type = [this] {
      return std::string(transaction::TransactionTypeName(txn_type_));
    };
    hooks.set_transaction_type = [this](const std::string& name) -> Status {
      SPHERE_ASSIGN_OR_RETURN(transaction::TransactionType type,
                              transaction::ParseTransactionType(name));
      return SetTransactionType(type);
    };
    MutexLock lk(*data_source_->distsql_mutex());
    return data_source_->distsql()->Execute(sql_text, hooks);
  }
  SPHERE_ASSIGN_OR_RETURN(std::shared_ptr<const core::StatementPlan> plan,
                          data_source_->runtime()->GetOrParse(sql_text));
  return ExecutePlanned(*plan, std::move(params));
}

Result<ShardingResultSet> ShardingConnection::ExecuteQuery(
    std::string_view sql_text, std::vector<Value> params) {
  SPHERE_ASSIGN_OR_RETURN(engine::ExecResult r,
                          ExecuteSQL(sql_text, std::move(params)));
  if (!r.is_query) {
    return Status::InvalidArgument("statement produced no result set");
  }
  return ShardingResultSet(std::move(r.result_set));
}

Result<int64_t> ShardingConnection::ExecuteUpdate(std::string_view sql_text,
                                                  std::vector<Value> params) {
  SPHERE_ASSIGN_OR_RETURN(engine::ExecResult r,
                          ExecuteSQL(sql_text, std::move(params)));
  if (r.is_query) {
    return Status::InvalidArgument("statement produced a result set");
  }
  return r.affected_rows;
}

std::unique_ptr<ShardingStatement> ShardingConnection::CreateStatement() {
  return std::make_unique<ShardingStatement>(this);
}

Result<std::unique_ptr<ShardingPreparedStatement>>
ShardingConnection::PrepareStatement(std::string_view sql_text) {
  SPHERE_ASSIGN_OR_RETURN(std::shared_ptr<const core::StatementPlan> plan,
                          data_source_->runtime()->GetOrParse(sql_text));
  return std::make_unique<ShardingPreparedStatement>(this, std::move(plan));
}

Result<ShardingResultSet> ShardingPreparedStatement::ExecuteQuery() {
  SPHERE_ASSIGN_OR_RETURN(engine::ExecResult r, Execute());
  if (!r.is_query) {
    return Status::InvalidArgument("statement produced no result set");
  }
  return ShardingResultSet(std::move(r.result_set));
}

Result<int64_t> ShardingPreparedStatement::ExecuteUpdate() {
  SPHERE_ASSIGN_OR_RETURN(engine::ExecResult r, Execute());
  if (r.is_query) {
    return Status::InvalidArgument("statement produced a result set");
  }
  return r.affected_rows;
}

Result<engine::ExecResult> ShardingPreparedStatement::Execute() {
  return conn_->ExecutePlanned(*plan_, params_);
}

Result<std::vector<int64_t>> ShardingPreparedStatement::ExecuteBatch() {
  std::vector<std::vector<Value>> entries;
  entries.swap(batch_);  // clear even on failure, JDBC style
  std::vector<int64_t> counts;
  counts.reserve(entries.size());
  for (auto& entry : entries) {
    SPHERE_ASSIGN_OR_RETURN(engine::ExecResult r,
                            conn_->ExecutePlanned(*plan_, std::move(entry)));
    if (r.is_query) {
      return Status::InvalidArgument("batched statement produced a result set");
    }
    counts.push_back(r.affected_rows);
  }
  return counts;
}

}  // namespace sphere::adaptor
