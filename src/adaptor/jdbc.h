#ifndef SPHERE_ADAPTOR_JDBC_H_
#define SPHERE_ADAPTOR_JDBC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "core/runtime.h"
#include "engine/pipeline.h"
#include "engine/row_batch.h"
#include "distsql/distsql.h"
#include "governor/config_manager.h"
#include "transaction/manager.h"

namespace sphere::adaptor {

class ShardingConnection;
class ShardingStatement;
class ShardingPreparedStatement;

/// The embedded adaptor (paper's ShardingSphere-JDBC): lives in the
/// application's process and talks to the data sources directly, which is why
/// it outruns the proxy. The public API mirrors JDBC: DataSource ->
/// Connection -> (Prepared)Statement -> ResultSet.
class ShardingDataSource {
 public:
  explicit ShardingDataSource(
      core::RuntimeConfig config = core::RuntimeConfig(),
      net::NetworkConfig network = net::NetworkConfig());

  /// Attaches a storage node under a data source name (caller keeps
  /// ownership; the node must outlive this object).
  Status AttachNode(const std::string& name, engine::StorageNode* node);

  /// Installs the sharding rule programmatically (the config-file path);
  /// DistSQL is the other way to do this.
  Status SetRule(core::ShardingRuleConfig config);

  /// Joins a governed cluster (paper §V): registers this instance as an
  /// ephemeral node in the registry (its marker disappears when the instance
  /// dies) and persists every rule change — whether made through SetRule or
  /// DistSQL — under /config so other instances can pick it up.
  Status BindGovernor(governor::ConfigManager* config_manager,
                      const std::string& instance_id);
  /// Writes the current rules to the bound registry (no-op when unbound).
  void PersistRules();

  /// Opens a logical connection.
  std::unique_ptr<ShardingConnection> GetConnection();

  core::ShardingRuntime* runtime() { return &runtime_; }
  transaction::TransactionContext* transaction_context() { return &txn_context_; }
  distsql::DistSQLEngine* distsql() { return &distsql_; }
  Mutex* distsql_mutex() SPHERE_RETURN_CAPABILITY(distsql_mu_) {
    return &distsql_mu_;
  }

 private:
  // analyze-exempt(guarded-by): internally synchronized subsystem
  core::ShardingRuntime runtime_;
  // analyze-exempt(guarded-by): internally synchronized subsystem
  transaction::TransactionContext txn_context_;
  // analyze-exempt(guarded-by): internally synchronized subsystem
  distsql::DistSQLEngine distsql_;
  Mutex distsql_mu_{LockRank::kAdaptor, "adaptor/jdbc.distsql"};
  // analyze-exempt(guarded-by): bound once in BindGovernor during setup,
  // before the data source is shared across threads
  governor::ConfigManager* governor_ = nullptr;
  // analyze-exempt(guarded-by): bound once in BindGovernor during setup
  governor::Registry::SessionId governor_session_ = 0;
};

/// Cursor wrapper with JDBC-style typed getters.
class ShardingResultSet {
 public:
  explicit ShardingResultSet(engine::ResultSetPtr rs)
      : rs_(std::move(rs)),
        buffer_(engine::RowStore::Instance().AcquireShell()) {}
  ~ShardingResultSet() {
    // The batch buffer (and the consumed rows swapped back into it) returns
    // to the recycler; no-op when pooling is off.
    engine::RowStore::Instance().Release(std::move(buffer_));
  }

  ShardingResultSet(ShardingResultSet&&) = default;
  ShardingResultSet& operator=(ShardingResultSet&&) = default;

  /// Advances to the next row; false at end. Rows are pulled from the merge
  /// pipeline a batch at a time (engine::PipelineConfig::batch_size()), so
  /// per-row cost is one buffer index, not a virtual call down the decorator
  /// stack.
  bool Next() {
    if (pos_ >= buffer_.size()) {
      if (rs_ == nullptr) return false;
      buffer_.clear();
      pos_ = 0;
      if (rs_->NextBatch(&buffer_, engine::PipelineConfig::batch_size()) == 0) {
        return false;
      }
    }
    // Swap instead of move: the previous row's storage lands back in the
    // buffer slot, so the batch returns to the pool capacity-rich instead
    // of as a husk.
    std::swap(current_, buffer_[pos_++]);
    return true;
  }

  const std::vector<std::string>& columns() const { return rs_->columns(); }
  /// Column index by (case-insensitive) label, or -1.
  int ColumnIndex(const std::string& label) const;

  const Value& Get(int index) const { return current_[static_cast<size_t>(index)]; }
  int64_t GetInt(int index) const { return Get(index).ToInt(); }
  double GetDouble(int index) const { return Get(index).ToDouble(); }
  std::string GetString(int index) const { return Get(index).ToString(); }
  bool IsNull(int index) const { return Get(index).is_null(); }

  int64_t GetInt(const std::string& label) const {
    return Get(ColumnIndex(label)).ToInt();
  }
  std::string GetString(const std::string& label) const {
    return Get(ColumnIndex(label)).ToString();
  }

  const Row& row() const { return current_; }

 private:
  engine::ResultSetPtr rs_;
  std::vector<Row> buffer_;
  size_t pos_ = 0;
  Row current_;
};

/// A logical connection: the unit of transaction scope. Holds at most one
/// open distributed transaction whose type is switchable between statements
/// (`SET VARIABLE transaction_type = LOCAL|XA|BASE`).
class ShardingConnection {
 public:
  explicit ShardingConnection(ShardingDataSource* data_source)
      : data_source_(data_source) {}
  ~ShardingConnection();

  ShardingConnection(const ShardingConnection&) = delete;
  ShardingConnection& operator=(const ShardingConnection&) = delete;

  /// Executes any statement: ordinary SQL, TCL, or DistSQL.
  Result<engine::ExecResult> ExecuteSQL(std::string_view sql_text,
                                        std::vector<Value> params = {});
  /// Convenience: query returning a cursor.
  Result<ShardingResultSet> ExecuteQuery(std::string_view sql_text,
                                         std::vector<Value> params = {});
  /// Convenience: update returning the affected row count.
  Result<int64_t> ExecuteUpdate(std::string_view sql_text,
                                std::vector<Value> params = {});

  /// JDBC-style autocommit. Turning it off opens a transaction on the next
  /// statement; turning it on commits any open transaction.
  Status SetAutoCommit(bool autocommit);
  bool autocommit() const { return autocommit_; }

  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_transaction() const { return txn_ != nullptr; }

  /// Switches the distributed transaction type (outside a transaction only).
  Status SetTransactionType(transaction::TransactionType type);
  transaction::TransactionType transaction_type() const { return txn_type_; }

  std::unique_ptr<ShardingStatement> CreateStatement();
  Result<std::unique_ptr<ShardingPreparedStatement>> PrepareStatement(
      std::string_view sql_text);

  ShardingDataSource* data_source() { return data_source_; }

 private:
  friend class ShardingPreparedStatement;

  Result<engine::ExecResult> ExecutePlanned(const core::StatementPlan& plan,
                                            std::vector<Value> params);
  Status EnsureTransaction();

  ShardingDataSource* data_source_;
  bool autocommit_ = true;
  transaction::TransactionType txn_type_ = transaction::TransactionType::kLocal;
  std::unique_ptr<transaction::DistributedTransaction> txn_;
};

/// Plain statement (parse per execution).
class ShardingStatement {
 public:
  explicit ShardingStatement(ShardingConnection* conn) : conn_(conn) {}

  Result<ShardingResultSet> ExecuteQuery(std::string_view sql_text) {
    return conn_->ExecuteQuery(sql_text);
  }
  Result<int64_t> ExecuteUpdate(std::string_view sql_text) {
    return conn_->ExecuteUpdate(sql_text);
  }
  Result<engine::ExecResult> Execute(std::string_view sql_text) {
    return conn_->ExecuteSQL(sql_text);
  }

 private:
  ShardingConnection* conn_;
};

/// Prepared statement: parsed once (through the runtime's statement cache, so
/// preparing the same text twice shares one AST), parameters bound per
/// execution (1-indexed setters, JDBC style).
class ShardingPreparedStatement {
 public:
  ShardingPreparedStatement(ShardingConnection* conn,
                            std::shared_ptr<const core::StatementPlan> plan)
      : conn_(conn), plan_(std::move(plan)),
        params_(static_cast<size_t>(plan_->param_count()), Value::Null()) {}

  void SetValue(int index, Value v) {
    if (index >= 1 && static_cast<size_t>(index) <= params_.size()) {
      params_[static_cast<size_t>(index - 1)] = std::move(v);
    }
  }
  void SetInt(int index, int64_t v) { SetValue(index, Value(v)); }
  void SetDouble(int index, double v) { SetValue(index, Value(v)); }
  void SetString(int index, std::string v) { SetValue(index, Value(std::move(v))); }
  void SetNull(int index) { SetValue(index, Value::Null()); }

  Result<ShardingResultSet> ExecuteQuery();
  Result<int64_t> ExecuteUpdate();
  Result<engine::ExecResult> Execute();

  /// JDBC-style batching: snapshots the currently bound parameters as one
  /// batch entry. Re-bind and call again for the next entry.
  void AddBatch() { batch_.push_back(params_); }
  size_t batch_size() const { return batch_.size(); }
  /// Replays every entry through the write-path fast lane (DESIGN.md §10) —
  /// one shared AST, per-entry parameter vectors, zero re-parses — and
  /// returns per-entry affected-row counts. Clears the batch, even on error
  /// (JDBC clearBatch-on-failure semantics).
  Result<std::vector<int64_t>> ExecuteBatch();

 private:
  ShardingConnection* conn_;
  std::shared_ptr<const core::StatementPlan> plan_;
  std::vector<Value> params_;
  std::vector<std::vector<Value>> batch_;
};

}  // namespace sphere::adaptor

#endif  // SPHERE_ADAPTOR_JDBC_H_
