#include "adaptor/proxy.h"

#include "common/metrics.h"
#include "engine/pipeline.h"

namespace sphere::adaptor {

ShardingProxy::ShardingProxy(ShardingDataSource* backend,
                             const net::LatencyModel* client_network)
    : backend_(backend), client_network_(client_network) {
  metrics::Registry::Instance().PublishProbe(
      "proxy.workers_busy", this,
      [this] { return static_cast<int64_t>(workers_busy()); });
}

ShardingProxy::~ShardingProxy() {
  metrics::Registry::Instance().UnpublishProbes(this);
}

int ShardingProxy::workers_busy() const {
  MutexLock lk(worker_mu_);
  return workers_busy_;
}

void ShardingProxy::CountStatement() {
  statements_served_.fetch_add(1, std::memory_order_relaxed);
  static metrics::Counter* total =
      metrics::Registry::Instance().GetCounter("proxy.statements");
  total->Increment();
}

void ShardingProxy::set_worker_capacity(int workers) {
  {
    MutexLock lk(worker_mu_);
    worker_capacity_ = workers;
  }
  worker_cv_.NotifyAll();
}

void ShardingProxy::AcquireWorker() {
  MutexLock lk(worker_mu_);
  if (worker_capacity_ <= 0) return;
  worker_cv_.Wait(worker_mu_, [&]() SPHERE_REQUIRES(worker_mu_) {
    return workers_busy_ < worker_capacity_;
  });
  ++workers_busy_;
}

void ShardingProxy::ReleaseWorker() {
  {
    MutexLock lk(worker_mu_);
    if (worker_capacity_ <= 0) return;
    --workers_busy_;
  }
  worker_cv_.NotifyOne();
}

Result<engine::ExecResult> ShardingProxy::Connection::Execute(
    std::string_view sql_text, const std::vector<Value>& params) {
  if (engine::PipelineConfig::pooled_batches_enabled()) {
    // Pass-through lane: skip the client-protocol encode/decode round-trip
    // but charge the byte-identical packet sizes on the client network, so
    // the proxy's wire cost model matches the baseline exactly.
    proxy_->client_network_->Transfer(net::EncodedQuerySize(sql_text, params));
    proxy_->CountStatement();
    proxy_->AcquireWorker();
    auto result = backend_->ExecuteSQL(sql_text, params);
    proxy_->ReleaseWorker();
    if (!result.ok()) {
      proxy_->client_network_->Transfer(
          net::EncodedErrorSize(result.status()));
      return result.status();
    }
    if (std::optional<size_t> size =
            net::TryEncodedExecResultSize(result.value())) {
      proxy_->client_network_->Transfer(*size);
      return result;
    }
    std::string response = net::EncodeExecResult(&result.value());
    proxy_->client_network_->Transfer(response.size());
    return net::DecodeResponse(response);
  }

  // Client -> proxy: the command packet crosses the client network.
  std::string request = net::EncodeQuery(sql_text, params);
  proxy_->client_network_->Transfer(request.size());

  // Proxy frontend: decode and execute on the shared backend, holding one of
  // the proxy process's worker slots.
  auto decoded = net::DecodeRequest(request);
  if (!decoded.ok()) return decoded.status();
  proxy_->CountStatement();
  proxy_->AcquireWorker();
  auto result = backend_->ExecuteSQL(decoded->sql, decoded->params);
  proxy_->ReleaseWorker();

  // Proxy -> client: result (or error) packet crosses back.
  std::string response = result.ok() ? net::EncodeExecResult(&result.value())
                                     : net::EncodeError(result.status());
  proxy_->client_network_->Transfer(response.size());
  if (!result.ok()) return result.status();
  return net::DecodeResponse(response);
}

}  // namespace sphere::adaptor
