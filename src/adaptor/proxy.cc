#include "adaptor/proxy.h"

namespace sphere::adaptor {

void ShardingProxy::set_worker_capacity(int workers) {
  {
    MutexLock lk(worker_mu_);
    worker_capacity_ = workers;
  }
  worker_cv_.NotifyAll();
}

void ShardingProxy::AcquireWorker() {
  MutexLock lk(worker_mu_);
  if (worker_capacity_ <= 0) return;
  worker_cv_.Wait(worker_mu_, [&]() SPHERE_REQUIRES(worker_mu_) {
    return workers_busy_ < worker_capacity_;
  });
  ++workers_busy_;
}

void ShardingProxy::ReleaseWorker() {
  {
    MutexLock lk(worker_mu_);
    if (worker_capacity_ <= 0) return;
    --workers_busy_;
  }
  worker_cv_.NotifyOne();
}

Result<engine::ExecResult> ShardingProxy::Connection::Execute(
    std::string_view sql_text, const std::vector<Value>& params) {
  // Client -> proxy: the command packet crosses the client network.
  std::string request = net::EncodeQuery(sql_text, params);
  proxy_->client_network_->Transfer(request.size());

  // Proxy frontend: decode and execute on the shared backend, holding one of
  // the proxy process's worker slots.
  auto decoded = net::DecodeRequest(request);
  if (!decoded.ok()) return decoded.status();
  proxy_->statements_served_.fetch_add(1, std::memory_order_relaxed);
  proxy_->AcquireWorker();
  auto result = backend_->ExecuteSQL(decoded->sql, decoded->params);
  proxy_->ReleaseWorker();

  // Proxy -> client: result (or error) packet crosses back.
  std::string response = result.ok() ? net::EncodeExecResult(&result.value())
                                     : net::EncodeError(result.status());
  proxy_->client_network_->Transfer(response.size());
  if (!result.ok()) return result.status();
  return net::DecodeResponse(response);
}

}  // namespace sphere::adaptor
