#include "adaptor/proxy.h"

#include "engine/pipeline.h"

namespace sphere::adaptor {

void ShardingProxy::set_worker_capacity(int workers) {
  {
    MutexLock lk(worker_mu_);
    worker_capacity_ = workers;
  }
  worker_cv_.NotifyAll();
}

void ShardingProxy::AcquireWorker() {
  MutexLock lk(worker_mu_);
  if (worker_capacity_ <= 0) return;
  worker_cv_.Wait(worker_mu_, [&]() SPHERE_REQUIRES(worker_mu_) {
    return workers_busy_ < worker_capacity_;
  });
  ++workers_busy_;
}

void ShardingProxy::ReleaseWorker() {
  {
    MutexLock lk(worker_mu_);
    if (worker_capacity_ <= 0) return;
    --workers_busy_;
  }
  worker_cv_.NotifyOne();
}

Result<engine::ExecResult> ShardingProxy::Connection::Execute(
    std::string_view sql_text, const std::vector<Value>& params) {
  if (engine::PipelineConfig::pooled_batches_enabled()) {
    // Pass-through lane: skip the client-protocol encode/decode round-trip
    // but charge the byte-identical packet sizes on the client network, so
    // the proxy's wire cost model matches the baseline exactly.
    proxy_->client_network_->Transfer(net::EncodedQuerySize(sql_text, params));
    proxy_->statements_served_.fetch_add(1, std::memory_order_relaxed);
    proxy_->AcquireWorker();
    auto result = backend_->ExecuteSQL(sql_text, params);
    proxy_->ReleaseWorker();
    if (!result.ok()) {
      proxy_->client_network_->Transfer(
          net::EncodedErrorSize(result.status()));
      return result.status();
    }
    if (std::optional<size_t> size =
            net::TryEncodedExecResultSize(result.value())) {
      proxy_->client_network_->Transfer(*size);
      return result;
    }
    std::string response = net::EncodeExecResult(&result.value());
    proxy_->client_network_->Transfer(response.size());
    return net::DecodeResponse(response);
  }

  // Client -> proxy: the command packet crosses the client network.
  std::string request = net::EncodeQuery(sql_text, params);
  proxy_->client_network_->Transfer(request.size());

  // Proxy frontend: decode and execute on the shared backend, holding one of
  // the proxy process's worker slots.
  auto decoded = net::DecodeRequest(request);
  if (!decoded.ok()) return decoded.status();
  proxy_->statements_served_.fetch_add(1, std::memory_order_relaxed);
  proxy_->AcquireWorker();
  auto result = backend_->ExecuteSQL(decoded->sql, decoded->params);
  proxy_->ReleaseWorker();

  // Proxy -> client: result (or error) packet crosses back.
  std::string response = result.ok() ? net::EncodeExecResult(&result.value())
                                     : net::EncodeError(result.status());
  proxy_->client_network_->Transfer(response.size());
  if (!result.ok()) return result.status();
  return net::DecodeResponse(response);
}

}  // namespace sphere::adaptor
