#include "storage/table.h"

#include <algorithm>

#include "common/strings.h"

namespace sphere::storage {

void SecondaryIndex::Add(const Value& key, const Value& pk) {
  std::vector<Value>* pks = tree_.Find(key);
  if (pks == nullptr) {
    tree_.Insert(key, {pk});
  } else {
    pks->push_back(pk);
  }
}

void SecondaryIndex::Remove(const Value& key, const Value& pk) {
  std::vector<Value>* pks = tree_.Find(key);
  if (pks == nullptr) return;
  pks->erase(std::remove(pks->begin(), pks->end(), pk), pks->end());
  if (pks->empty()) tree_.Erase(key);
}

const std::vector<Value>* SecondaryIndex::Lookup(const Value& key) const {
  return tree_.Find(key);
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)),
      pk_index_(schema_.PrimaryKeyIndex()) {}

Status Table::ValidateAndCast(const Row& row, Row* out) const {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        StrFormat("table %s expects %zu columns, got %zu", name_.c_str(),
                  schema_.size(), row.size()));
  }
  out->clear();
  out->reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null() && schema_.column(i).not_null) {
      return Status::InvalidArgument("NULL in NOT NULL column " +
                                     schema_.column(i).name);
    }
    out->push_back(row[i].CastTo(schema_.column(i).type));
  }
  return Status::OK();
}

Status Table::Insert(const Row& row, Value* out_pk) {
  Row casted;
  SPHERE_RETURN_NOT_OK(ValidateAndCast(row, &casted));
  Value pk;
  if (pk_index_ >= 0) {
    pk = casted[static_cast<size_t>(pk_index_)];
    if (pk.is_null()) {
      return Status::InvalidArgument("NULL primary key in table " + name_);
    }
    if (rows_.Find(pk) != nullptr) {
      return Status::Conflict(StrFormat("duplicate primary key %s in table %s",
                                        pk.ToString().c_str(), name_.c_str()));
    }
  } else {
    pk = Value(next_rowid_++);
  }
  for (auto& idx : indexes_) {
    idx->Add(casted[static_cast<size_t>(idx->column_index())], pk);
  }
  rows_.Insert(pk, std::move(casted));
  if (out_pk != nullptr) *out_pk = pk;
  return Status::OK();
}

Status Table::Update(const Value& pk, const Row& new_row) {
  Row* existing = rows_.Find(pk);
  if (existing == nullptr) {
    return Status::NotFound("no row with key " + pk.ToString());
  }
  Row casted;
  SPHERE_RETURN_NOT_OK(ValidateAndCast(new_row, &casted));
  if (pk_index_ >= 0 &&
      casted[static_cast<size_t>(pk_index_)] != pk) {
    return Status::InvalidArgument("primary key update is not supported");
  }
  for (auto& idx : indexes_) {
    size_t ci = static_cast<size_t>(idx->column_index());
    if ((*existing)[ci] != casted[ci]) {
      idx->Remove((*existing)[ci], pk);
      idx->Add(casted[ci], pk);
    }
  }
  *existing = std::move(casted);
  return Status::OK();
}

Status Table::Delete(const Value& pk, Row* old_row) {
  Row* existing = rows_.Find(pk);
  if (existing == nullptr) {
    return Status::NotFound("no row with key " + pk.ToString());
  }
  if (old_row != nullptr) *old_row = *existing;
  for (auto& idx : indexes_) {
    idx->Remove((*existing)[static_cast<size_t>(idx->column_index())], pk);
  }
  rows_.Erase(pk);
  return Status::OK();
}

void Table::Truncate() {
  rows_.Clear();
  std::vector<std::unique_ptr<SecondaryIndex>> rebuilt;
  rebuilt.reserve(indexes_.size());
  for (auto& idx : indexes_) {
    rebuilt.push_back(
        std::make_unique<SecondaryIndex>(idx->name(), idx->column_index()));
  }
  indexes_ = std::move(rebuilt);
  next_rowid_ = 1;
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::string& column) {
  for (const auto& idx : indexes_) {
    if (EqualsIgnoreCase(idx->name(), index_name)) {
      return Status::AlreadyExists("index " + index_name);
    }
  }
  int ci = schema_.IndexOf(column);
  if (ci < 0) {
    return Status::NotFound("column " + column + " in table " + name_);
  }
  auto idx = std::make_unique<SecondaryIndex>(index_name, ci);
  for (auto it = rows_.Begin(); it.Valid(); it.Next()) {
    idx->Add(it.payload()[static_cast<size_t>(ci)], it.key());
  }
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

const SecondaryIndex* Table::FindIndexOn(int column_index) const {
  for (const auto& idx : indexes_) {
    if (idx->column_index() == column_index) return idx.get();
  }
  return nullptr;
}

}  // namespace sphere::storage
