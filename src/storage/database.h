#ifndef SPHERE_STORAGE_DATABASE_H_
#define SPHERE_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/schema.h"
#include "storage/table.h"

namespace sphere::storage {

/// Catalog of one storage node: table name -> Table (case-insensitive).
class Database {
 public:
  explicit Database(std::string name = "db") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Creates a table. AlreadyExists unless `if_not_exists`.
  Status CreateTable(const std::string& table, Schema schema,
                     bool if_not_exists = false) SPHERE_EXCLUDES(mu_);
  /// Drops a table. NotFound unless `if_exists`.
  Status DropTable(const std::string& table, bool if_exists = false)
      SPHERE_EXCLUDES(mu_);
  /// Returns the table or nullptr.
  Table* FindTable(const std::string& table) SPHERE_EXCLUDES(mu_);
  const Table* FindTable(const std::string& table) const SPHERE_EXCLUDES(mu_);
  /// All table names, sorted.
  std::vector<std::string> TableNames() const SPHERE_EXCLUDES(mu_);

 private:
  const std::string name_;
  mutable SharedMutex mu_{LockRank::kStorage, "storage/database.catalog"};
  std::map<std::string, std::unique_ptr<Table>> tables_
      SPHERE_GUARDED_BY(mu_);  // lower-cased keys
};

}  // namespace sphere::storage

#endif  // SPHERE_STORAGE_DATABASE_H_
