#ifndef SPHERE_STORAGE_TXN_H_
#define SPHERE_STORAGE_TXN_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/database.h"

namespace sphere::storage {

/// One logical change applied by a transaction, with enough of the before
/// image to undo it.
struct UndoRecord {
  enum class Op { kInsert, kUpdate, kDelete };
  Op op;
  std::string table;
  Value pk;
  Row old_row;  ///< kUpdate/kDelete: the replaced/removed row
};

enum class TxnState { kActive, kPrepared, kCommitted, kAborted };

/// A local transaction on one storage node. Operations are applied in place;
/// atomicity comes from replaying the undo chain in reverse on rollback.
class Transaction {
 public:
  Transaction(int64_t id, std::string xid)
      : id_(id), xid_(std::move(xid)) {}

  int64_t id() const { return id_; }
  /// Global XA transaction id this branch belongs to ("" for plain local).
  const std::string& xid() const { return xid_; }
  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

  void AddUndo(UndoRecord rec) { undo_.push_back(std::move(rec)); }
  const std::vector<UndoRecord>& undo() const { return undo_; }
  size_t undo_size() const { return undo_.size(); }

 private:
  int64_t id_;
  std::string xid_;
  TxnState state_ = TxnState::kActive;
  std::vector<UndoRecord> undo_;
};

/// Per-storage-node transaction manager: the Resource Manager (RM) role of
/// the DTP model (paper Fig. 5). Supports 1PC local commit and the XA verbs
/// prepare / commit-prepared / rollback-prepared, plus in-doubt listing for
/// recovery after a simulated crash.
class TransactionManager {
 public:
  explicit TransactionManager(Database* db) : db_(db) {}

  /// Starts a transaction; `xid` links it to a global XA transaction.
  Transaction* Begin(const std::string& xid = "");

  /// 1PC commit: discards undo and forgets the transaction.
  Status Commit(Transaction* txn);

  /// Rolls the transaction's effects back (reverse undo) and forgets it.
  Status Rollback(Transaction* txn);

  /// XA phase 1. Moves the transaction to kPrepared; its locks/undo are
  /// retained until phase 2. Fails when the txn is not active.
  Status Prepare(Transaction* txn);

  /// XA phase 2 for a prepared branch, addressed by global xid.
  Status CommitPrepared(const std::string& xid);
  Status RollbackPrepared(const std::string& xid);

  /// Global xids of branches that prepared but have not completed phase 2.
  /// After SimulateCrash these are the in-doubt transactions the TM must
  /// resolve from its log.
  std::vector<std::string> InDoubtXids() const;

  /// Simulated crash: active (un-prepared) transactions are rolled back;
  /// prepared branches survive as in-doubt.
  void SimulateCrash();

  size_t active_count() const;

 private:
  Status RollbackLocked(Transaction* txn) SPHERE_REQUIRES(mu_);
  void ApplyUndo(const Transaction& txn);

  Database* const db_;
  /// kTransaction, not kStorage: rollback holds this while re-latching
  /// tables to replay undo, so it sits above the table latches it brackets.
  mutable Mutex mu_{LockRank::kTransaction, "storage/txn_manager"};
  std::atomic<int64_t> next_id_{1};
  std::map<int64_t, std::unique_ptr<Transaction>> txns_ SPHERE_GUARDED_BY(mu_);
  std::map<std::string, int64_t> prepared_by_xid_ SPHERE_GUARDED_BY(mu_);
};

}  // namespace sphere::storage

#endif  // SPHERE_STORAGE_TXN_H_
