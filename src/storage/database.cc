#include "storage/database.h"


#include "common/strings.h"

namespace sphere::storage {

Status Database::CreateTable(const std::string& table, Schema schema,
                             bool if_not_exists) {
  WriterLock lk(mu_);
  std::string key = ToLower(table);
  if (tables_.count(key)) {
    if (if_not_exists) return Status::OK();
    return Status::AlreadyExists("table " + table);
  }
  tables_[key] = std::make_unique<Table>(table, std::move(schema));
  return Status::OK();
}

Status Database::DropTable(const std::string& table, bool if_exists) {
  WriterLock lk(mu_);
  std::string key = ToLower(table);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("table " + table);
  }
  tables_.erase(it);
  return Status::OK();
}

Table* Database::FindTable(const std::string& table) {
  ReaderLock lk(mu_);
  auto it = tables_.find(ToLower(table));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(const std::string& table) const {
  ReaderLock lk(mu_);
  auto it = tables_.find(ToLower(table));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  ReaderLock lk(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [k, t] : tables_) names.push_back(t->name());
  return names;
}

}  // namespace sphere::storage
