#ifndef SPHERE_STORAGE_TABLE_H_
#define SPHERE_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/schema.h"
#include "common/status.h"
#include "storage/btree.h"

namespace sphere::storage {

/// A secondary index: column value -> list of primary keys.
class SecondaryIndex {
 public:
  SecondaryIndex(std::string name, int column_index)
      : name_(std::move(name)), column_index_(column_index) {}

  const std::string& name() const { return name_; }
  int column_index() const { return column_index_; }

  void Add(const Value& key, const Value& pk);
  void Remove(const Value& key, const Value& pk);
  /// Primary keys whose indexed column equals `key` (empty when none).
  const std::vector<Value>* Lookup(const Value& key) const;

 private:
  std::string name_;
  int column_index_;
  BPlusTree<std::vector<Value>> tree_;
};

/// A physical table in a storage node: schema + B+Tree-indexed rows.
///
/// Rows are keyed by the declared single-column primary key, or by a hidden
/// monotonically increasing row id when the schema declares none. A
/// shared_mutex latches individual operations (the local transaction layer
/// provides atomicity via undo records; isolation is read-committed-ish,
/// which matches what the middleware needs from its data sources here).
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int pk_index() const { return pk_index_; }
  size_t row_count() const { return rows_.size(); }
  /// B+Tree height; exposed so benchmarks can report index depth vs size.
  int IndexHeight() const { return rows_.Height(); }

  /// Validates arity/types, assigns the row id if needed, enforces PK
  /// uniqueness. On success returns the row's primary key through `out_pk`.
  Status Insert(const Row& row, Value* out_pk);

  /// Replaces the full row stored under `pk`. The PK column must not change.
  Status Update(const Value& pk, const Row& new_row);

  /// Deletes the row under `pk`, returning the old image through `old_row`
  /// (used for undo records). NotFound when absent.
  Status Delete(const Value& pk, Row* old_row);

  /// Returns the row stored under `pk` or nullptr.
  const Row* Find(const Value& pk) const { return rows_.Find(pk); }

  BPlusTree<Row>::Iterator Begin() const { return rows_.Begin(); }
  BPlusTree<Row>::Iterator LowerBound(const Value& key) const {
    return rows_.LowerBoundIter(key);
  }

  /// Removes every row.
  void Truncate();

  /// Creates a secondary index on `column`. AlreadyExists when the name is
  /// taken; NotFound for an unknown column.
  Status CreateIndex(const std::string& index_name, const std::string& column);
  /// The index covering `column_index`, or nullptr.
  const SecondaryIndex* FindIndexOn(int column_index) const;

  /// Operation latch. Readers take it shared (ReaderLock), writers unique
  /// (WriterLock). The discipline is caller-side: the executor/transaction
  /// layer brackets multi-step operations, so row accessors deliberately
  /// carry no REQUIRES annotations of their own.
  SharedMutex& latch() const SPHERE_RETURN_CAPABILITY(latch_) {
    return latch_;
  }

 private:
  Status ValidateAndCast(const Row& row, Row* out) const;

  const std::string name_;
  const Schema schema_;
  const int pk_index_;
  // analyze-exempt(guarded-by): guarded by latch_, caller-side discipline
  int64_t next_rowid_ = 1;
  // analyze-exempt(guarded-by): guarded by latch_, caller-side discipline
  BPlusTree<Row> rows_;
  // analyze-exempt(guarded-by): guarded by latch_, caller-side discipline
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_;
  mutable SharedMutex latch_{LockRank::kStorage, "storage/table.latch"};
};

}  // namespace sphere::storage

#endif  // SPHERE_STORAGE_TABLE_H_
