#include "storage/txn.h"

namespace sphere::storage {

Transaction* TransactionManager::Begin(const std::string& xid) {
  MutexLock lk(mu_);
  int64_t id = next_id_.fetch_add(1);
  auto txn = std::make_unique<Transaction>(id, xid);
  Transaction* ptr = txn.get();
  txns_[id] = std::move(txn);
  return ptr;
}

Status TransactionManager::Commit(Transaction* txn) {
  MutexLock lk(mu_);
  if (txn->state() != TxnState::kActive) {
    return Status::TransactionError("commit on non-active transaction");
  }
  txn->set_state(TxnState::kCommitted);
  txns_.erase(txn->id());
  return Status::OK();
}

void TransactionManager::ApplyUndo(const Transaction& txn) {
  const auto& undo = txn.undo();
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    Table* table = db_->FindTable(it->table);
    if (table == nullptr) continue;  // table dropped after the change
    WriterLock tl(table->latch());
    switch (it->op) {
      case UndoRecord::Op::kInsert:
        (void)table->Delete(it->pk, nullptr);
        break;
      case UndoRecord::Op::kUpdate:
        (void)table->Update(it->pk, it->old_row);
        break;
      case UndoRecord::Op::kDelete:
        (void)table->Insert(it->old_row, nullptr);
        break;
    }
  }
}

Status TransactionManager::RollbackLocked(Transaction* txn) {
  ApplyUndo(*txn);
  txn->set_state(TxnState::kAborted);
  txns_.erase(txn->id());
  return Status::OK();
}

Status TransactionManager::Rollback(Transaction* txn) {
  MutexLock lk(mu_);
  if (txn->state() == TxnState::kPrepared) {
    prepared_by_xid_.erase(txn->xid());
  }
  return RollbackLocked(txn);
}

Status TransactionManager::Prepare(Transaction* txn) {
  MutexLock lk(mu_);
  if (txn->state() != TxnState::kActive) {
    return Status::TransactionError("prepare on non-active transaction");
  }
  if (txn->xid().empty()) {
    return Status::TransactionError("prepare requires a global xid");
  }
  txn->set_state(TxnState::kPrepared);
  prepared_by_xid_[txn->xid()] = txn->id();
  return Status::OK();
}

Status TransactionManager::CommitPrepared(const std::string& xid) {
  MutexLock lk(mu_);
  auto it = prepared_by_xid_.find(xid);
  if (it == prepared_by_xid_.end()) {
    return Status::NotFound("no prepared branch for xid " + xid);
  }
  auto txn_it = txns_.find(it->second);
  if (txn_it != txns_.end()) {
    txn_it->second->set_state(TxnState::kCommitted);
    txns_.erase(txn_it);
  }
  prepared_by_xid_.erase(it);
  return Status::OK();
}

Status TransactionManager::RollbackPrepared(const std::string& xid) {
  MutexLock lk(mu_);
  auto it = prepared_by_xid_.find(xid);
  if (it == prepared_by_xid_.end()) {
    return Status::NotFound("no prepared branch for xid " + xid);
  }
  auto txn_it = txns_.find(it->second);
  Status st = Status::OK();
  if (txn_it != txns_.end()) {
    st = RollbackLocked(txn_it->second.get());
  }
  prepared_by_xid_.erase(it);
  return st;
}

std::vector<std::string> TransactionManager::InDoubtXids() const {
  MutexLock lk(mu_);
  std::vector<std::string> xids;
  xids.reserve(prepared_by_xid_.size());
  for (const auto& [xid, id] : prepared_by_xid_) xids.push_back(xid);
  return xids;
}

void TransactionManager::SimulateCrash() {
  MutexLock lk(mu_);
  std::vector<Transaction*> to_rollback;
  for (auto& [id, txn] : txns_) {
    if (txn->state() == TxnState::kActive) to_rollback.push_back(txn.get());
  }
  for (Transaction* txn : to_rollback) {
    // Crash simulation: in-flight transactions just vanish, so there is no
    // caller to hand a rollback status to.
    (void)RollbackLocked(txn);
  }
}

size_t TransactionManager::active_count() const {
  MutexLock lk(mu_);
  return txns_.size();
}

}  // namespace sphere::storage
