#ifndef SPHERE_STORAGE_BTREE_H_
#define SPHERE_STORAGE_BTREE_H_

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "common/value.h"

namespace sphere::storage {

/// In-memory B+Tree keyed by sphere::Value with linked leaves.
///
/// This is the primary-key index of every table in a storage node. Lookup and
/// scan costs grow with tree height, which is what makes "many small sharded
/// tables beat one big table" measurable in the benchmarks (paper Table IV
/// and Fig. 10).
template <typename PayloadT>
class BPlusTree {
 private:
  struct Node;  // forward declaration so the public Iterator can refer to it

 public:
  static constexpr int kOrder = 64;  ///< max keys per node

  BPlusTree() { root_ = NewLeaf(); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts or overwrites. Returns false when the key already existed.
  bool Insert(const Value& key, PayloadT payload) {
    Node* leaf = FindLeaf(key);
    int idx = LowerBound(leaf->keys, key);
    if (idx < static_cast<int>(leaf->keys.size()) && leaf->keys[idx] == key) {
      leaf->payloads[static_cast<size_t>(idx)] = std::move(payload);
      return false;
    }
    leaf->keys.insert(leaf->keys.begin() + idx, key);
    leaf->payloads.insert(leaf->payloads.begin() + idx, std::move(payload));
    ++size_;
    if (static_cast<int>(leaf->keys.size()) > kOrder) SplitLeaf(leaf);
    return true;
  }

  /// Returns the payload for `key` or nullptr.
  PayloadT* Find(const Value& key) {
    Node* leaf = FindLeaf(key);
    int idx = LowerBound(leaf->keys, key);
    if (idx < static_cast<int>(leaf->keys.size()) && leaf->keys[idx] == key) {
      return &leaf->payloads[static_cast<size_t>(idx)];
    }
    return nullptr;
  }
  const PayloadT* Find(const Value& key) const {
    return const_cast<BPlusTree*>(this)->Find(key);
  }

  /// Removes `key`; returns false when absent. Leaves may underflow (no
  /// rebalancing on delete; deleted space is reclaimed on node emptiness),
  /// which keeps deletes O(log n) and is fine for an in-memory index.
  bool Erase(const Value& key) {
    Node* leaf = FindLeaf(key);
    int idx = LowerBound(leaf->keys, key);
    if (idx >= static_cast<int>(leaf->keys.size()) || !(leaf->keys[idx] == key)) {
      return false;
    }
    leaf->keys.erase(leaf->keys.begin() + idx);
    leaf->payloads.erase(leaf->payloads.begin() + idx);
    --size_;
    return true;
  }

  /// Forward iterator over leaf entries.
  class Iterator {
   public:
    Iterator() : node_(nullptr), idx_(0) {}
    Iterator(const BPlusTree* tree, Node* node, int idx)
        : tree_(tree), node_(node), idx_(idx) {
      SkipEmpty();
    }

    bool Valid() const { return node_ != nullptr; }
    const Value& key() const { return node_->keys[static_cast<size_t>(idx_)]; }
    PayloadT& payload() const {
      return node_->payloads[static_cast<size_t>(idx_)];
    }
    void Next() {
      ++idx_;
      SkipEmpty();
    }

   private:
    void SkipEmpty() {
      while (node_ != nullptr && idx_ >= static_cast<int>(node_->keys.size())) {
        node_ = node_->next;
        idx_ = 0;
      }
    }
    const BPlusTree* tree_ = nullptr;
    Node* node_;
    int idx_;
  };

  /// Iterator at the first entry.
  Iterator Begin() const {
    Node* n = root_.get();
    while (!n->is_leaf) n = n->children.front().get();
    return Iterator(this, n, 0);
  }

  /// Iterator at the first entry with key >= `key`.
  Iterator LowerBoundIter(const Value& key) const {
    Node* leaf = const_cast<BPlusTree*>(this)->FindLeaf(key);
    int idx = LowerBound(leaf->keys, key);
    return Iterator(this, leaf, idx);
  }

  /// Height of the tree (1 = just a leaf). Exposed for tests/benchmarks.
  int Height() const {
    int h = 1;
    const Node* n = root_.get();
    while (!n->is_leaf) {
      n = n->children.front().get();
      ++h;
    }
    return h;
  }

  void Clear() {
    root_ = NewLeaf();
    size_ = 0;
  }

 private:
  struct Node {
    bool is_leaf = true;  // NOLINT (definition of the forward declaration)
    std::vector<Value> keys;
    // Leaf:
    std::vector<PayloadT> payloads;
    Node* next = nullptr;  ///< leaf chain
    // Internal: children[i] holds keys < keys[i]; children.back() the rest.
    std::vector<std::unique_ptr<Node>> children;
    Node* parent = nullptr;
  };

  static std::unique_ptr<Node> NewLeaf() {
    auto n = std::make_unique<Node>();
    n->is_leaf = true;
    return n;
  }

  static int LowerBound(const std::vector<Value>& keys, const Value& key) {
    return static_cast<int>(
        std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
  }

  Node* FindLeaf(const Value& key) {
    Node* n = root_.get();
    while (!n->is_leaf) {
      int idx = static_cast<int>(
          std::upper_bound(n->keys.begin(), n->keys.end(), key) -
          n->keys.begin());
      n = n->children[static_cast<size_t>(idx)].get();
    }
    return n;
  }

  void SplitLeaf(Node* leaf) {
    auto right = std::make_unique<Node>();
    right->is_leaf = true;
    int mid = static_cast<int>(leaf->keys.size()) / 2;
    right->keys.assign(leaf->keys.begin() + mid, leaf->keys.end());
    right->payloads.assign(std::make_move_iterator(leaf->payloads.begin() + mid),
                           std::make_move_iterator(leaf->payloads.end()));
    leaf->keys.resize(static_cast<size_t>(mid));
    leaf->payloads.resize(static_cast<size_t>(mid));
    right->next = leaf->next;
    leaf->next = right.get();
    Value sep = right->keys.front();
    InsertInParent(leaf, sep, std::move(right));
  }

  void SplitInternal(Node* node) {
    auto right = std::make_unique<Node>();
    right->is_leaf = false;
    int mid = static_cast<int>(node->keys.size()) / 2;
    Value sep = node->keys[static_cast<size_t>(mid)];
    right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
    for (size_t i = static_cast<size_t>(mid) + 1; i < node->children.size(); ++i) {
      node->children[i]->parent = right.get();
      right->children.push_back(std::move(node->children[i]));
    }
    node->keys.resize(static_cast<size_t>(mid));
    node->children.resize(static_cast<size_t>(mid) + 1);
    InsertInParent(node, sep, std::move(right));
  }

  void InsertInParent(Node* left, const Value& sep, std::unique_ptr<Node> right) {
    Node* parent = left->parent;
    if (parent == nullptr) {
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      new_root->keys.push_back(sep);
      right->parent = new_root.get();
      std::unique_ptr<Node> old_root = std::move(root_);
      old_root->parent = new_root.get();
      new_root->children.push_back(std::move(old_root));
      new_root->children.push_back(std::move(right));
      root_ = std::move(new_root);
      return;
    }
    int idx = LowerBound(parent->keys, sep);
    parent->keys.insert(parent->keys.begin() + idx, sep);
    right->parent = parent;
    parent->children.insert(parent->children.begin() + idx + 1, std::move(right));
    if (static_cast<int>(parent->keys.size()) > kOrder) SplitInternal(parent);
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace sphere::storage

#endif  // SPHERE_STORAGE_BTREE_H_
