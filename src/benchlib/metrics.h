#ifndef SPHERE_BENCHLIB_METRICS_H_
#define SPHERE_BENCHLIB_METRICS_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/system.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/table_printer.h"

namespace sphere::benchlib {

/// Harness knobs (thread count = the paper's request concurrency).
struct BenchOptions {
  int threads = 8;
  int64_t duration_ms = 1200;
  int64_t warmup_ms = 150;
  uint64_t seed = 42;
};

/// One benchmark measurement, matching the paper's reported metrics:
/// TPS, AvgT, and tail latencies (99T for Sysbench, 90T for TPC-C).
struct BenchResult {
  std::string system;
  std::string scenario;
  double tps = 0;
  double avg_ms = 0;
  double p90_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  int64_t operations = 0;
  int64_t errors = 0;
};

/// One benchmark operation ("transaction"): executes against a session using
/// the per-thread RNG; returns its status. Errors are counted, not fatal.
using BenchOp = std::function<Status(baselines::SqlSession*, Rng*)>;

/// Runs `op` from `options.threads` concurrent sessions for the configured
/// duration (after warmup) and aggregates the metrics.
BenchResult RunBenchmark(baselines::SqlSystem* system,
                         const std::string& scenario,
                         const BenchOptions& options, const BenchOp& op);

/// Fixed-width table printer; the implementation now lives in
/// common/table_printer.h so trace/DistSQL rendering can share it.
using sphere::TablePrinter;

/// Appends the standard (system, tps, avg, p90, p99, err) row.
void AddResultRow(TablePrinter* table, const BenchResult& r);

}  // namespace sphere::benchlib

#endif  // SPHERE_BENCHLIB_METRICS_H_
