#ifndef SPHERE_BENCHLIB_SETUP_H_
#define SPHERE_BENCHLIB_SETUP_H_

#include <memory>
#include <string>
#include <vector>

#include "adaptor/jdbc.h"
#include "adaptor/proxy.h"
#include "baselines/aurora.h"
#include "baselines/raftdb.h"
#include "baselines/simple_middleware.h"
#include "baselines/system.h"
#include "benchlib/sysbench.h"
#include "benchlib/tpcc.h"

namespace sphere::benchlib {

/// Shape of a benchmark cluster (paper §VIII settings, scaled).
struct ClusterSpec {
  int data_sources = 4;
  int tables_per_source = 10;  ///< "in each data source, 10 tables"
  net::NetworkConfig network;  ///< simulated LAN
  int max_connections_per_query = 8;
  /// Per-statement storage delay on every node (0 = pure in-memory).
  int64_t node_delay_us = 0;
  /// Concurrent delayed statements per node (disk-queue model; 0 = unlimited).
  int node_io_slots = 0;
  /// Sysbench sharding algorithm: "MOD" (hash-style scatter, the default) or
  /// "BOUNDARY_RANGE" (range partitioning on the dense id — point AND small
  /// range queries hit one shard).
  std::string sysbench_algorithm = "MOD";
};

/// A ShardingSphere deployment: storage nodes + embedded adaptor (SSJ) +
/// proxy adaptor (SSP) over one shared runtime.
class SphereCluster {
 public:
  explicit SphereCluster(const ClusterSpec& spec,
                         const std::string& flavor = "MS");

  /// Installs the sysbench rule (sbtest MOD-sharded over all nodes), creates
  /// the schema and loads rows through the embedded adaptor.
  Status SetupSysbench(const SysbenchConfig& config);

  /// Installs the TPC-C rules — every table sharded by its warehouse column,
  /// order_line 10x further sharded, item broadcast, the aligned tables bound
  /// (paper §VIII-A TPCC layout) — then creates schemas and loads.
  Status SetupTpcc(const TpccConfig& config);

  baselines::SqlSystem* jdbc() { return jdbc_system_.get(); }
  baselines::SqlSystem* proxy() { return proxy_system_.get(); }
  adaptor::ShardingProxy* proxy_server() { return proxy_.get(); }
  adaptor::ShardingDataSource* data_source() { return ds_.get(); }
  engine::StorageNode* node(int i) { return nodes_[static_cast<size_t>(i)].get(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  ClusterSpec spec_;
  std::vector<std::unique_ptr<engine::StorageNode>> nodes_;
  std::unique_ptr<adaptor::ShardingDataSource> ds_;
  std::unique_ptr<adaptor::ShardingProxy> proxy_;
  std::unique_ptr<baselines::JdbcSystem> jdbc_system_;
  std::unique_ptr<baselines::ProxySystem> proxy_system_;
};

/// A plain standalone database (the MS / PG baselines).
class SingleNodeCluster {
 public:
  SingleNodeCluster(const std::string& name, const ClusterSpec& spec);
  Status SetupSysbench(const SysbenchConfig& config);
  baselines::SqlSystem* system() { return system_.get(); }
  engine::StorageNode* node() { return node_.get(); }
  const net::LatencyModel* network() const { return &network_; }

 private:
  net::LatencyModel network_;
  std::unique_ptr<engine::StorageNode> node_;
  std::unique_ptr<baselines::SingleNodeSystem> system_;
};

/// A Vitess/Citus-like proxy middleware over its own storage nodes.
class MiddlewareCluster {
 public:
  MiddlewareCluster(const baselines::SimpleMiddlewareOptions& options,
                    const ClusterSpec& spec);
  Status SetupSysbench(const SysbenchConfig& config);
  Status SetupTpcc(const TpccConfig& config);
  baselines::SqlSystem* system() { return middleware_.get(); }

 private:
  ClusterSpec spec_;
  net::LatencyModel network_;
  std::vector<std::unique_ptr<engine::StorageNode>> nodes_;
  std::unique_ptr<baselines::SimpleMiddleware> middleware_;
};

/// A raft-replicated new-architecture database (TiDB / CRDB profiles).
class RaftDbCluster {
 public:
  RaftDbCluster(const baselines::RaftDbOptions& options,
                const ClusterSpec& spec);
  Status SetupSysbench(const SysbenchConfig& config);
  Status SetupTpcc(const TpccConfig& config);
  baselines::SqlSystem* system() { return db_.get(); }

 private:
  net::LatencyModel network_;
  std::unique_ptr<baselines::RaftDb> db_;
};

/// The Aurora-like shared-storage cloud database.
class AuroraCluster {
 public:
  AuroraCluster(const std::string& name, const ClusterSpec& spec);
  Status SetupSysbench(const SysbenchConfig& config);
  baselines::SqlSystem* system() { return system_.get(); }
  engine::StorageNode* node() { return node_.get(); }

 private:
  net::LatencyModel network_;
  std::unique_ptr<engine::StorageNode> node_;
  std::unique_ptr<baselines::AuroraLikeSystem> system_;
};

}  // namespace sphere::benchlib

#endif  // SPHERE_BENCHLIB_SETUP_H_
