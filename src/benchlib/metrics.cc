#include "benchlib/metrics.h"

#include <atomic>
#include <thread>

#include "common/clock.h"

namespace sphere::benchlib {

BenchResult RunBenchmark(baselines::SqlSystem* system,
                         const std::string& scenario,
                         const BenchOptions& options, const BenchOp& op) {
  Histogram histogram;
  std::atomic<int64_t> operations{0};
  std::atomic<int64_t> errors{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> recording{false};

  auto worker = [&](int thread_id) {
    auto session = system->Connect();
    Rng rng(options.seed + static_cast<uint64_t>(thread_id) * 7919);
    while (!stop.load(std::memory_order_relaxed)) {
      int64_t start = NowMicros();
      Status st = op(session.get(), &rng);
      int64_t elapsed = NowMicros() - start;
      if (recording.load(std::memory_order_relaxed)) {
        histogram.Record(elapsed);
        operations.fetch_add(1, std::memory_order_relaxed);
        if (!st.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  // analyze-exempt(raw-thread): the load harness models N independent
  // clients; routing them through the shared pool would serialize against
  // the very executor pool the benchmark is measuring
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.threads));
  for (int t = 0; t < options.threads; ++t) {
    threads.emplace_back(worker, t);
  }
  SleepMicros(options.warmup_ms * 1000);
  recording.store(true);
  int64_t measure_start = NowMicros();
  SleepMicros(options.duration_ms * 1000);
  recording.store(false);
  int64_t measured_us = NowMicros() - measure_start;
  stop.store(true);
  for (auto& t : threads) t.join();

  BenchResult result;
  result.system = system->name();
  result.scenario = scenario;
  result.operations = operations.load();
  result.errors = errors.load();
  result.tps = measured_us > 0
                   ? static_cast<double>(result.operations) * 1e6 /
                         static_cast<double>(measured_us)
                   : 0;
  result.avg_ms = histogram.AvgMillis();
  result.p90_ms = histogram.PercentileMillis(90);
  result.p95_ms = histogram.PercentileMillis(95);
  result.p99_ms = histogram.PercentileMillis(99);
  return result;
}

void AddResultRow(TablePrinter* table, const BenchResult& r) {
  table->AddRow({r.system, TablePrinter::Fmt(r.tps, 0),
                 TablePrinter::Fmt(r.avg_ms), TablePrinter::Fmt(r.p90_ms),
                 TablePrinter::Fmt(r.p99_ms), std::to_string(r.errors)});
}

}  // namespace sphere::benchlib
