#ifndef SPHERE_BENCHLIB_SYSBENCH_H_
#define SPHERE_BENCHLIB_SYSBENCH_H_

#include <string>

#include "baselines/system.h"
#include "common/rng.h"

namespace sphere::benchlib {

/// The sysbench OLTP workload (paper Table II defaults, scaled down so a
/// single host finishes in seconds; shapes, not absolute numbers, are the
/// reproduction target). Logical table `sbtest(id pk, k, c, pad)`.
struct SysbenchConfig {
  int64_t table_size = 10000;  ///< rows in the logical table
  int range_size = 100;
  // Per-transaction query mix (sysbench oltp_read_write defaults).
  int point_selects = 10;
  int simple_ranges = 1;
  int sum_ranges = 1;
  int order_ranges = 1;
  int distinct_ranges = 1;
  int index_updates = 1;
  int non_index_updates = 1;
  int delete_inserts = 1;
  bool use_transactions = true;
};

/// The paper's four comparison scenarios (Table III).
enum class SysbenchScenario { kPointSelect, kReadOnly, kWriteOnly, kReadWrite };
const char* SysbenchScenarioName(SysbenchScenario scenario);

/// CREATE TABLE for the sbtest schema (logical SQL; sharded systems broadcast).
std::string SysbenchCreateTableSQL();

/// Loads `config.table_size` rows in batches through `session`.
Status SysbenchLoad(baselines::SqlSession* session, const SysbenchConfig& config,
                    uint64_t seed);

/// Executes one transaction of `scenario`. Mirrors the classic oltp_* Lua
/// scripts' statement sequences.
Status SysbenchTransaction(baselines::SqlSession* session,
                           SysbenchScenario scenario,
                           const SysbenchConfig& config, Rng* rng);

}  // namespace sphere::benchlib

#endif  // SPHERE_BENCHLIB_SYSBENCH_H_
