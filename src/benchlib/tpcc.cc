#include "benchlib/tpcc.h"

#include "common/strings.h"

namespace sphere::benchlib {

namespace {

Status Run(baselines::SqlSession* session, const std::string& sql,
           std::vector<Value> params = {}) {
  auto r = session->Execute(sql, params);
  return r.ok() ? Status::OK() : r.status();
}

/// Runs a query expected to return at most one row; stores it in `row`
/// (empty when no row matched).
Status QueryOne(baselines::SqlSession* session, const std::string& sql,
                std::vector<Value> params, Row* row) {
  auto r = session->Execute(sql, std::move(params));
  if (!r.ok()) return r.status();
  if (!r->is_query) return Status::Internal("expected a result set");
  row->clear();
  Row tmp;
  if (r->result_set->Next(&tmp)) *row = std::move(tmp);
  return Status::OK();
}

}  // namespace

int64_t TpccDistrictKey(int w, int d) { return static_cast<int64_t>(w) * 10 + (d - 1); }
int64_t TpccCustomerKey(int w, int d, int c) {
  return TpccDistrictKey(w, d) * 100000 + c;
}
int64_t TpccOrderKey(int w, int d, int64_t o) {
  return TpccDistrictKey(w, d) * 10000000 + o;
}
int64_t TpccOrderLineKey(int64_t o_key, int ol_number) {
  return o_key * 20 + ol_number;
}
int64_t TpccStockKey(int w, int i) {
  return static_cast<int64_t>(w) * 1000000 + i;
}

const char* TpccProfileName(TpccProfile profile) {
  switch (profile) {
    case TpccProfile::kNewOrder: return "NewOrder";
    case TpccProfile::kPayment: return "Payment";
    case TpccProfile::kOrderStatus: return "OrderStatus";
    case TpccProfile::kDelivery: return "Delivery";
    case TpccProfile::kStockLevel: return "StockLevel";
  }
  return "?";
}

TpccProfile TpccDrawProfile(Rng* rng) {
  int64_t p = rng->Uniform(1, 100);
  if (p <= 45) return TpccProfile::kNewOrder;
  if (p <= 88) return TpccProfile::kPayment;
  if (p <= 92) return TpccProfile::kOrderStatus;
  if (p <= 96) return TpccProfile::kDelivery;
  return TpccProfile::kStockLevel;
}

std::vector<std::string> TpccCreateTableSQL() {
  return {
      "CREATE TABLE warehouse (w_id BIGINT PRIMARY KEY, w_name VARCHAR(10), "
      "w_tax DOUBLE, w_ytd DOUBLE)",
      "CREATE TABLE district (d_key BIGINT PRIMARY KEY, d_w_id BIGINT, "
      "d_id INT, d_tax DOUBLE, d_ytd DOUBLE, d_next_o_id BIGINT)",
      "CREATE TABLE customer (c_key BIGINT PRIMARY KEY, c_w_id BIGINT, "
      "c_d_id INT, c_id INT, c_name VARCHAR(16), c_balance DOUBLE, "
      "c_ytd_payment DOUBLE, c_payment_cnt INT, c_delivery_cnt INT)",
      "CREATE TABLE history (h_w_id BIGINT, h_c_key BIGINT, h_amount DOUBLE, "
      "h_data VARCHAR(24))",
      "CREATE TABLE new_order (no_key BIGINT PRIMARY KEY, no_w_id BIGINT)",
      "CREATE TABLE orders (o_key BIGINT PRIMARY KEY, o_w_id BIGINT, "
      "o_d_id INT, o_id BIGINT, o_c_key BIGINT, o_carrier_id INT, "
      "o_ol_cnt INT, o_entry_d BIGINT)",
      "CREATE TABLE order_line (ol_key BIGINT PRIMARY KEY, ol_w_id BIGINT, "
      "ol_o_key BIGINT, ol_number INT, ol_i_id INT, ol_qty INT, "
      "ol_amount DOUBLE, ol_delivery_d BIGINT)",
      "CREATE TABLE item (i_id BIGINT PRIMARY KEY, i_name VARCHAR(24), "
      "i_price DOUBLE)",
      "CREATE TABLE stock (s_key BIGINT PRIMARY KEY, s_w_id BIGINT, "
      "s_i_id INT, s_quantity INT, s_ytd DOUBLE, s_order_cnt INT)",
  };
}

std::vector<std::pair<std::string, std::string>> TpccShardedTables() {
  return {{"warehouse", "w_id"},   {"district", "d_w_id"},
          {"customer", "c_w_id"},  {"history", "h_w_id"},
          {"new_order", "no_w_id"}, {"orders", "o_w_id"},
          {"order_line", "ol_w_id"}, {"stock", "s_w_id"}};
}

Status TpccLoad(baselines::SqlSession* session, const TpccConfig& config,
                uint64_t seed) {
  Rng rng(seed);
  // Items (reference data).
  for (int i = 1; i <= config.items; i += 50) {
    std::string sql = "INSERT INTO item (i_id, i_name, i_price) VALUES ";
    bool first = true;
    for (int j = i; j < i + 50 && j <= config.items; ++j) {
      if (!first) sql += ", ";
      first = false;
      sql += StrFormat("(%d, 'item-%d', %.2f)", j, j,
                       static_cast<double>(rng.Uniform(100, 9999)) / 100.0);
    }
    SPHERE_RETURN_NOT_OK(Run(session, sql));
  }

  for (int w = 1; w <= config.warehouses; ++w) {
    SPHERE_RETURN_NOT_OK(Run(
        session, StrFormat("INSERT INTO warehouse (w_id, w_name, w_tax, w_ytd) "
                           "VALUES (%d, 'wh-%d', %.4f, 300000.0)",
                           w, w, static_cast<double>(rng.Uniform(0, 2000)) / 10000.0)));
    // Stock for every item.
    for (int i = 1; i <= config.items; i += 50) {
      std::string sql =
          "INSERT INTO stock (s_key, s_w_id, s_i_id, s_quantity, s_ytd, "
          "s_order_cnt) VALUES ";
      bool first = true;
      for (int j = i; j < i + 50 && j <= config.items; ++j) {
        if (!first) sql += ", ";
        first = false;
        sql += StrFormat("(%lld, %d, %d, %d, 0.0, 0)",
                         static_cast<long long>(TpccStockKey(w, j)), w, j,
                         static_cast<int>(rng.Uniform(10, 100)));
      }
      SPHERE_RETURN_NOT_OK(Run(session, sql));
    }

    for (int d = 1; d <= config.districts_per_warehouse; ++d) {
      int64_t d_key = TpccDistrictKey(w, d);
      SPHERE_RETURN_NOT_OK(Run(
          session,
          StrFormat("INSERT INTO district (d_key, d_w_id, d_id, d_tax, d_ytd, "
                    "d_next_o_id) VALUES (%lld, %d, %d, %.4f, 30000.0, %d)",
                    static_cast<long long>(d_key), w, d,
                    static_cast<double>(rng.Uniform(0, 2000)) / 10000.0,
                    config.initial_orders_per_district + 1)));
      // Customers.
      std::string csql =
          "INSERT INTO customer (c_key, c_w_id, c_d_id, c_id, c_name, "
          "c_balance, c_ytd_payment, c_payment_cnt, c_delivery_cnt) VALUES ";
      for (int c = 1; c <= config.customers_per_district; ++c) {
        if (c > 1) csql += ", ";
        csql += StrFormat("(%lld, %d, %d, %d, 'cust-%d-%d-%d', -10.0, 10.0, 1, 0)",
                          static_cast<long long>(TpccCustomerKey(w, d, c)), w, d,
                          c, w, d, c);
      }
      SPHERE_RETURN_NOT_OK(Run(session, csql));

      // Initial orders with lines; the most recent third stay undelivered
      // (rows in new_order), as the spec's initial population does.
      for (int64_t o = 1; o <= config.initial_orders_per_district; ++o) {
        int64_t o_key = TpccOrderKey(w, d, o);
        int c = static_cast<int>(rng.Uniform(1, config.customers_per_district));
        int ol_cnt = static_cast<int>(
            rng.Uniform(config.min_ol_cnt, config.max_ol_cnt));
        bool undelivered = o > config.initial_orders_per_district * 2 / 3;
        SPHERE_RETURN_NOT_OK(Run(
            session,
            StrFormat("INSERT INTO orders (o_key, o_w_id, o_d_id, o_id, o_c_key, "
                      "o_carrier_id, o_ol_cnt, o_entry_d) VALUES "
                      "(%lld, %d, %d, %lld, %lld, %d, %d, 0)",
                      static_cast<long long>(o_key), w, d,
                      static_cast<long long>(o),
                      static_cast<long long>(TpccCustomerKey(w, d, c)),
                      undelivered ? 0 : static_cast<int>(rng.Uniform(1, 10)),
                      ol_cnt)));
        if (undelivered) {
          SPHERE_RETURN_NOT_OK(Run(
              session, StrFormat("INSERT INTO new_order (no_key, no_w_id) "
                                 "VALUES (%lld, %d)",
                                 static_cast<long long>(o_key), w)));
        }
        std::string olsql =
            "INSERT INTO order_line (ol_key, ol_w_id, ol_o_key, ol_number, "
            "ol_i_id, ol_qty, ol_amount, ol_delivery_d) VALUES ";
        for (int n = 1; n <= ol_cnt; ++n) {
          if (n > 1) olsql += ", ";
          olsql += StrFormat("(%lld, %d, %lld, %d, %d, 5, %.2f, 0)",
                             static_cast<long long>(TpccOrderLineKey(o_key, n)),
                             w, static_cast<long long>(o_key), n,
                             static_cast<int>(rng.Uniform(1, config.items)),
                             static_cast<double>(rng.Uniform(10, 9999)) / 100.0);
        }
        SPHERE_RETURN_NOT_OK(Run(session, olsql));
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

namespace {

Status NewOrder(baselines::SqlSession* s, const TpccConfig& cfg, Rng* rng) {
  int w = static_cast<int>(rng->Uniform(1, cfg.warehouses));
  int d = static_cast<int>(rng->Uniform(1, cfg.districts_per_warehouse));
  int c = static_cast<int>(rng->NURand(255, 1, cfg.customers_per_district));
  int64_t d_key = TpccDistrictKey(w, d);

  SPHERE_RETURN_NOT_OK(Run(s, "BEGIN"));
  Row row;
  SPHERE_RETURN_NOT_OK(QueryOne(
      s, "SELECT w_tax FROM warehouse WHERE w_id = ?", {Value(w)}, &row));
  SPHERE_RETURN_NOT_OK(QueryOne(
      s, "SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = ? AND d_key = ?",
      {Value(w), Value(d_key)}, &row));
  if (row.empty()) {
    (void)Run(s, "ROLLBACK");
    return Status::NotFound("district");
  }
  int64_t o_id = row[1].ToInt();
  SPHERE_RETURN_NOT_OK(
      Run(s, "UPDATE district SET d_next_o_id = d_next_o_id + 1 "
             "WHERE d_w_id = ? AND d_key = ?",
          {Value(w), Value(d_key)}));
  SPHERE_RETURN_NOT_OK(QueryOne(
      s, "SELECT c_name FROM customer WHERE c_w_id = ? AND c_key = ?",
      {Value(w), Value(TpccCustomerKey(w, d, c))}, &row));

  int ol_cnt = static_cast<int>(rng->Uniform(cfg.min_ol_cnt, cfg.max_ol_cnt));
  int64_t o_key = TpccOrderKey(w, d, o_id);
  SPHERE_RETURN_NOT_OK(
      Run(s, StrFormat("INSERT INTO orders (o_key, o_w_id, o_d_id, o_id, "
                       "o_c_key, o_carrier_id, o_ol_cnt, o_entry_d) VALUES "
                       "(%lld, %d, %d, %lld, %lld, 0, %d, 1)",
                       static_cast<long long>(o_key), w, d,
                       static_cast<long long>(o_id),
                       static_cast<long long>(TpccCustomerKey(w, d, c)), ol_cnt)));
  SPHERE_RETURN_NOT_OK(
      Run(s, StrFormat("INSERT INTO new_order (no_key, no_w_id) VALUES (%lld, %d)",
                       static_cast<long long>(o_key), w)));

  for (int n = 1; n <= ol_cnt; ++n) {
    int i_id = static_cast<int>(rng->NURand(8191, 1, cfg.items));
    int qty = static_cast<int>(rng->Uniform(1, 10));
    SPHERE_RETURN_NOT_OK(QueryOne(
        s, "SELECT i_price FROM item WHERE i_id = ?", {Value(i_id)}, &row));
    if (row.empty()) {
      // Unused item id: the spec's 1%-rollback trigger.
      (void)Run(s, "ROLLBACK");
      return Status::OK();
    }
    double price = row[0].ToDouble();
    SPHERE_RETURN_NOT_OK(QueryOne(
        s, "SELECT s_quantity FROM stock WHERE s_w_id = ? AND s_key = ?",
        {Value(w), Value(TpccStockKey(w, i_id))}, &row));
    SPHERE_RETURN_NOT_OK(
        Run(s, "UPDATE stock SET s_quantity = s_quantity - ?, s_ytd = s_ytd + ?, "
               "s_order_cnt = s_order_cnt + 1 WHERE s_w_id = ? AND s_key = ?",
            {Value(qty), Value(static_cast<double>(qty)), Value(w),
             Value(TpccStockKey(w, i_id))}));
    SPHERE_RETURN_NOT_OK(Run(
        s, StrFormat("INSERT INTO order_line (ol_key, ol_w_id, ol_o_key, "
                     "ol_number, ol_i_id, ol_qty, ol_amount, ol_delivery_d) "
                     "VALUES (%lld, %d, %lld, %d, %d, %d, %.2f, 0)",
                     static_cast<long long>(TpccOrderLineKey(o_key, n)), w,
                     static_cast<long long>(o_key), n, i_id, qty,
                     price * qty)));
  }
  if (rng->NextDouble() < cfg.new_order_rollback_rate) {
    return Run(s, "ROLLBACK");  // user abort, still a successful profile run
  }
  return Run(s, "COMMIT");
}

Status Payment(baselines::SqlSession* s, const TpccConfig& cfg, Rng* rng) {
  int w = static_cast<int>(rng->Uniform(1, cfg.warehouses));
  int d = static_cast<int>(rng->Uniform(1, cfg.districts_per_warehouse));
  // 15% of payments come from a customer of a remote warehouse.
  int cw = w, cd = d;
  if (cfg.warehouses > 1 && rng->NextDouble() < cfg.remote_payment_rate) {
    do {
      cw = static_cast<int>(rng->Uniform(1, cfg.warehouses));
    } while (cw == w);
    cd = static_cast<int>(rng->Uniform(1, cfg.districts_per_warehouse));
  }
  int c = static_cast<int>(rng->NURand(255, 1, cfg.customers_per_district));
  double amount = static_cast<double>(rng->Uniform(100, 500000)) / 100.0;

  SPHERE_RETURN_NOT_OK(Run(s, "BEGIN"));
  SPHERE_RETURN_NOT_OK(Run(s, "UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
                           {Value(amount), Value(w)}));
  Row row;
  SPHERE_RETURN_NOT_OK(QueryOne(
      s, "SELECT w_name FROM warehouse WHERE w_id = ?", {Value(w)}, &row));
  SPHERE_RETURN_NOT_OK(
      Run(s, "UPDATE district SET d_ytd = d_ytd + ? WHERE d_w_id = ? AND d_key = ?",
          {Value(amount), Value(w), Value(TpccDistrictKey(w, d))}));
  int64_t c_key = TpccCustomerKey(cw, cd, c);
  SPHERE_RETURN_NOT_OK(
      Run(s, "UPDATE customer SET c_balance = c_balance - ?, "
             "c_ytd_payment = c_ytd_payment + ?, "
             "c_payment_cnt = c_payment_cnt + 1 WHERE c_w_id = ? AND c_key = ?",
          {Value(amount), Value(amount), Value(cw), Value(c_key)}));
  SPHERE_RETURN_NOT_OK(QueryOne(
      s, "SELECT c_name, c_balance FROM customer WHERE c_w_id = ? AND c_key = ?",
      {Value(cw), Value(c_key)}, &row));
  SPHERE_RETURN_NOT_OK(Run(
      s, StrFormat("INSERT INTO history (h_w_id, h_c_key, h_amount, h_data) "
                   "VALUES (%d, %lld, %.2f, 'pay')",
                   w, static_cast<long long>(c_key), amount)));
  return Run(s, "COMMIT");
}

Status OrderStatus(baselines::SqlSession* s, const TpccConfig& cfg, Rng* rng) {
  int w = static_cast<int>(rng->Uniform(1, cfg.warehouses));
  int d = static_cast<int>(rng->Uniform(1, cfg.districts_per_warehouse));
  int c = static_cast<int>(rng->NURand(255, 1, cfg.customers_per_district));
  int64_t c_key = TpccCustomerKey(w, d, c);
  int64_t d_lo = TpccOrderKey(w, d, 0);
  int64_t d_hi = TpccOrderKey(w, d, 9999999);

  Row row;
  SPHERE_RETURN_NOT_OK(QueryOne(
      s, "SELECT c_name, c_balance FROM customer WHERE c_w_id = ? AND c_key = ?",
      {Value(w), Value(c_key)}, &row));
  SPHERE_RETURN_NOT_OK(QueryOne(
      s, "SELECT MAX(o_key) FROM orders WHERE o_w_id = ? AND o_key BETWEEN ? "
         "AND ? AND o_c_key = ?",
      {Value(w), Value(d_lo), Value(d_hi), Value(c_key)}, &row));
  if (row.empty() || row[0].is_null()) return Status::OK();  // no orders yet
  int64_t o_key = row[0].ToInt();
  return Run(s, "SELECT ol_i_id, ol_qty, ol_amount, ol_delivery_d FROM "
                "order_line WHERE ol_w_id = ? AND ol_key BETWEEN ? AND ?",
             {Value(w), Value(TpccOrderLineKey(o_key, 0)),
              Value(TpccOrderLineKey(o_key, 19))});
}

Status Delivery(baselines::SqlSession* s, const TpccConfig& cfg, Rng* rng) {
  int w = static_cast<int>(rng->Uniform(1, cfg.warehouses));
  int carrier = static_cast<int>(rng->Uniform(1, 10));
  SPHERE_RETURN_NOT_OK(Run(s, "BEGIN"));
  for (int d = 1; d <= cfg.districts_per_warehouse; ++d) {
    int64_t d_lo = TpccOrderKey(w, d, 0);
    int64_t d_hi = TpccOrderKey(w, d, 9999999);
    Row row;
    SPHERE_RETURN_NOT_OK(QueryOne(
        s, "SELECT MIN(no_key) FROM new_order WHERE no_w_id = ? AND "
           "no_key BETWEEN ? AND ?",
        {Value(w), Value(d_lo), Value(d_hi)}, &row));
    if (row.empty() || row[0].is_null()) continue;  // nothing to deliver here
    int64_t o_key = row[0].ToInt();
    SPHERE_RETURN_NOT_OK(
        Run(s, "DELETE FROM new_order WHERE no_w_id = ? AND no_key = ?",
            {Value(w), Value(o_key)}));
    SPHERE_RETURN_NOT_OK(QueryOne(
        s, "SELECT o_c_key FROM orders WHERE o_w_id = ? AND o_key = ?",
        {Value(w), Value(o_key)}, &row));
    if (row.empty()) continue;
    int64_t c_key = row[0].ToInt();
    SPHERE_RETURN_NOT_OK(
        Run(s, "UPDATE orders SET o_carrier_id = ? WHERE o_w_id = ? AND o_key = ?",
            {Value(carrier), Value(w), Value(o_key)}));
    SPHERE_RETURN_NOT_OK(QueryOne(
        s, "SELECT SUM(ol_amount) FROM order_line WHERE ol_w_id = ? AND "
           "ol_key BETWEEN ? AND ?",
        {Value(w), Value(TpccOrderLineKey(o_key, 0)),
         Value(TpccOrderLineKey(o_key, 19))},
        &row));
    double total = row.empty() ? 0.0 : row[0].ToDouble();
    SPHERE_RETURN_NOT_OK(
        Run(s, "UPDATE order_line SET ol_delivery_d = 1 WHERE ol_w_id = ? AND "
               "ol_key BETWEEN ? AND ?",
            {Value(w), Value(TpccOrderLineKey(o_key, 0)),
             Value(TpccOrderLineKey(o_key, 19))}));
    SPHERE_RETURN_NOT_OK(
        Run(s, "UPDATE customer SET c_balance = c_balance + ?, "
               "c_delivery_cnt = c_delivery_cnt + 1 WHERE c_w_id = ? AND c_key = ?",
            {Value(total), Value(w), Value(c_key)}));
  }
  return Run(s, "COMMIT");
}

Status StockLevel(baselines::SqlSession* s, const TpccConfig& cfg, Rng* rng) {
  int w = static_cast<int>(rng->Uniform(1, cfg.warehouses));
  int d = static_cast<int>(rng->Uniform(1, cfg.districts_per_warehouse));
  int threshold = static_cast<int>(rng->Uniform(10, 20));
  Row row;
  SPHERE_RETURN_NOT_OK(QueryOne(
      s, "SELECT d_next_o_id FROM district WHERE d_w_id = ? AND d_key = ?",
      {Value(w), Value(TpccDistrictKey(w, d))}, &row));
  if (row.empty()) return Status::NotFound("district");
  int64_t next_o = row[0].ToInt();
  int64_t o_lo = TpccOrderKey(w, d, std::max<int64_t>(1, next_o - 20));
  int64_t o_hi = TpccOrderKey(w, d, next_o);
  // Count distinct low-stock items among the last 20 orders' lines: the
  // spec's order_line x stock join.
  return Run(s,
             "SELECT COUNT(DISTINCT s_i_id) FROM order_line ol JOIN stock st "
             "ON ol.ol_i_id = st.s_i_id WHERE ol.ol_w_id = ? AND st.s_w_id = ? "
             "AND ol.ol_key BETWEEN ? AND ? AND st.s_quantity < ?",
             {Value(w), Value(w), Value(TpccOrderLineKey(o_lo, 0)),
              Value(TpccOrderLineKey(o_hi, 19)), Value(threshold)});
}

}  // namespace

Status TpccTransaction(baselines::SqlSession* session, TpccProfile profile,
                       const TpccConfig& config, Rng* rng) {
  switch (profile) {
    case TpccProfile::kNewOrder:
      return NewOrder(session, config, rng);
    case TpccProfile::kPayment:
      return Payment(session, config, rng);
    case TpccProfile::kOrderStatus:
      return OrderStatus(session, config, rng);
    case TpccProfile::kDelivery:
      return Delivery(session, config, rng);
    case TpccProfile::kStockLevel:
      return StockLevel(session, config, rng);
  }
  return Status::Internal("bad profile");
}

Status TpccMixedTransaction(baselines::SqlSession* session,
                            const TpccConfig& config, Rng* rng) {
  return TpccTransaction(session, TpccDrawProfile(rng), config, rng);
}

}  // namespace sphere::benchlib
