#ifndef SPHERE_BENCHLIB_TPCC_H_
#define SPHERE_BENCHLIB_TPCC_H_

#include <string>
#include <vector>

#include "baselines/system.h"
#include "common/rng.h"

namespace sphere::benchlib {

/// Scaled-down TPC-C (paper §VIII: 200 warehouses on a 12-server cluster —
/// here warehouse count and per-warehouse cardinalities shrink so a laptop
/// run finishes in seconds; the five transaction profiles and their standard
/// mix are kept intact).
///
/// Composite TPC-C keys are encoded into single-column synthetic keys (the
/// storage nodes index a single primary-key column):
///   d_key  = w * 10 + (d - 1)
///   c_key  = d_key * 100000 + c
///   o_key  = d_key * 10000000 + o
///   ol_key = o_key * 20 + ol_number
///   s_key  = w * 1000000 + i
struct TpccConfig {
  int warehouses = 4;
  int districts_per_warehouse = 10;   // TPC-C fixed
  int customers_per_district = 30;    // spec: 3000 (scaled 1:100)
  int items = 200;                    // spec: 100000 (scaled)
  int initial_orders_per_district = 30;
  int min_ol_cnt = 5, max_ol_cnt = 15;  // spec
  double new_order_rollback_rate = 0.01;  // spec: 1% user aborts
  double remote_payment_rate = 0.15;      // spec: 15% remote customers
};

/// TPC-C key helpers (shared by loader, transactions and sharding configs).
int64_t TpccDistrictKey(int w, int d);
int64_t TpccCustomerKey(int w, int d, int c);
int64_t TpccOrderKey(int w, int d, int64_t o);
int64_t TpccOrderLineKey(int64_t o_key, int ol_number);
int64_t TpccStockKey(int w, int i);

/// The five transaction profiles with their standard mix weights
/// (NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%).
enum class TpccProfile { kNewOrder, kPayment, kOrderStatus, kDelivery, kStockLevel };
const char* TpccProfileName(TpccProfile profile);
/// Draws a profile according to the standard mix.
TpccProfile TpccDrawProfile(Rng* rng);

/// CREATE TABLE statements for the nine tables (logical SQL).
std::vector<std::string> TpccCreateTableSQL();
/// Names of the tables sharded by their warehouse column, with that column
/// (item is a read-only reference table and is not in this list).
std::vector<std::pair<std::string, std::string>> TpccShardedTables();

/// Populates all tables through `session`.
Status TpccLoad(baselines::SqlSession* session, const TpccConfig& config,
                uint64_t seed);

/// Executes one transaction of `profile`. Returns the status (user-initiated
/// NewOrder rollbacks return OK).
Status TpccTransaction(baselines::SqlSession* session, TpccProfile profile,
                       const TpccConfig& config, Rng* rng);

/// Convenience: draw a profile and run it.
Status TpccMixedTransaction(baselines::SqlSession* session,
                            const TpccConfig& config, Rng* rng);

}  // namespace sphere::benchlib

#endif  // SPHERE_BENCHLIB_TPCC_H_
