#include "benchlib/setup.h"

#include "common/strings.h"

namespace sphere::benchlib {

namespace {

Status RunAll(baselines::SqlSession* session,
              const std::vector<std::string>& statements) {
  for (const auto& sql : statements) {
    auto r = session->Execute(sql);
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// SphereCluster
// ---------------------------------------------------------------------------

SphereCluster::SphereCluster(const ClusterSpec& spec, const std::string& flavor)
    : spec_(spec) {
  core::RuntimeConfig config;
  config.max_connections_per_query = spec.max_connections_per_query;
  config.dialect = flavor == "PG" ? sql::DialectType::kPostgreSQL
                                  : sql::DialectType::kMySQL;
  ds_ = std::make_unique<adaptor::ShardingDataSource>(config, spec.network);
  for (int i = 0; i < spec.data_sources; ++i) {
    nodes_.push_back(std::make_unique<engine::StorageNode>(
        "ds_" + std::to_string(i), config.dialect));
    nodes_.back()->set_statement_delay_us(spec.node_delay_us);
    nodes_.back()->set_io_concurrency(spec.node_io_slots);
    (void)ds_->AttachNode(nodes_.back()->name(), nodes_.back().get());
  }
  proxy_ = std::make_unique<adaptor::ShardingProxy>(ds_.get(),
                                                    &ds_->runtime()->network());
  jdbc_system_ = std::make_unique<baselines::JdbcSystem>("SSJ-" + flavor, ds_.get());
  proxy_system_ =
      std::make_unique<baselines::ProxySystem>("SSP-" + flavor, proxy_.get());
}

Status SphereCluster::SetupSysbench(const SysbenchConfig& config) {
  core::ShardingRuleConfig rule;
  rule.default_data_source = "ds_0";
  core::TableRuleConfig t;
  t.logic_table = "sbtest";
  for (const auto& node : nodes_) t.auto_resources.push_back(node->name());
  t.auto_sharding_count = spec_.data_sources * spec_.tables_per_source;
  t.table_strategy.columns = {"id"};
  if (spec_.sysbench_algorithm == "BOUNDARY_RANGE") {
    // Range partitioning over the dense id space: shard k holds
    // (k*N/count, (k+1)*N/count].
    t.table_strategy.algorithm_type = "BOUNDARY_RANGE";
    std::string boundaries;
    for (int k = 1; k < t.auto_sharding_count; ++k) {
      if (!boundaries.empty()) boundaries += ",";
      boundaries += std::to_string(config.table_size * k /
                                   t.auto_sharding_count);
    }
    t.table_strategy.props.Set("sharding-ranges", boundaries);
  } else {
    t.table_strategy.algorithm_type = "MOD";
    t.table_strategy.props.Set("sharding-count",
                               std::to_string(t.auto_sharding_count));
  }
  rule.tables.push_back(std::move(t));
  SPHERE_RETURN_NOT_OK(ds_->SetRule(std::move(rule)));

  auto session = jdbc_system_->Connect();
  auto r = session->Execute(SysbenchCreateTableSQL());
  if (!r.ok()) return r.status();
  return SysbenchLoad(session.get(), config, /*seed=*/7);
}

Status SphereCluster::SetupTpcc(const TpccConfig& config) {
  core::ShardingRuleConfig rule;
  rule.default_data_source = "ds_0";
  rule.broadcast_tables.insert("item");
  std::vector<std::string> aligned_group;
  for (const auto& [table, column] : TpccShardedTables()) {
    core::TableRuleConfig t;
    t.logic_table = table;
    for (const auto& node : nodes_) t.auto_resources.push_back(node->name());
    // order_line is the biggest table: 10x further sharded (paper §VIII-A).
    int count = table == "order_line"
                    ? spec_.data_sources * spec_.tables_per_source
                    : spec_.data_sources;
    t.auto_sharding_count = count;
    t.table_strategy.columns = {column};
    t.table_strategy.algorithm_type = "MOD";
    t.table_strategy.props.Set("sharding-count", std::to_string(count));
    rule.tables.push_back(std::move(t));
    if (table != "order_line") aligned_group.push_back(table);
  }
  rule.binding_groups.push_back(std::move(aligned_group));
  SPHERE_RETURN_NOT_OK(ds_->SetRule(std::move(rule)));

  auto session = jdbc_system_->Connect();
  SPHERE_RETURN_NOT_OK(RunAll(session.get(), TpccCreateTableSQL()));
  return TpccLoad(session.get(), config, /*seed=*/11);
}

// ---------------------------------------------------------------------------
// SingleNodeCluster
// ---------------------------------------------------------------------------

SingleNodeCluster::SingleNodeCluster(const std::string& name,
                                     const ClusterSpec& spec)
    : network_(spec.network) {
  node_ = std::make_unique<engine::StorageNode>(name);
  node_->set_statement_delay_us(spec.node_delay_us);
  node_->set_io_concurrency(spec.node_io_slots);
  system_ = std::make_unique<baselines::SingleNodeSystem>(name, node_.get(),
                                                          &network_);
}

Status SingleNodeCluster::SetupSysbench(const SysbenchConfig& config) {
  auto session = system_->Connect();
  auto r = session->Execute(SysbenchCreateTableSQL());
  if (!r.ok()) return r.status();
  return SysbenchLoad(session.get(), config, 7);
}

// ---------------------------------------------------------------------------
// MiddlewareCluster
// ---------------------------------------------------------------------------

MiddlewareCluster::MiddlewareCluster(
    const baselines::SimpleMiddlewareOptions& options, const ClusterSpec& spec)
    : spec_(spec), network_(spec.network) {
  middleware_ = std::make_unique<baselines::SimpleMiddleware>(options, &network_);
  for (int i = 0; i < spec.data_sources; ++i) {
    nodes_.push_back(
        std::make_unique<engine::StorageNode>("ds_" + std::to_string(i)));
    nodes_.back()->set_statement_delay_us(spec.node_delay_us);
    nodes_.back()->set_io_concurrency(spec.node_io_slots);
    (void)middleware_->AttachNode(nodes_.back()->name(), nodes_.back().get());
  }
}

Status MiddlewareCluster::SetupSysbench(const SysbenchConfig& config) {
  int count = spec_.data_sources * spec_.tables_per_source;
  SPHERE_RETURN_NOT_OK(middleware_->AddShardedTable(
      "sbtest", "id",
      StrFormat("ds_${0..%d}.sbtest_${0..%d}", spec_.data_sources - 1,
                count - 1)));
  auto session = middleware_->Connect();
  auto r = session->Execute(SysbenchCreateTableSQL());
  if (!r.ok()) return r.status();
  return SysbenchLoad(session.get(), config, 7);
}

Status MiddlewareCluster::SetupTpcc(const TpccConfig& config) {
  for (const auto& [table, column] : TpccShardedTables()) {
    int count = table == "order_line"
                    ? spec_.data_sources * spec_.tables_per_source
                    : spec_.data_sources;
    SPHERE_RETURN_NOT_OK(middleware_->AddShardedTable(
        table, column,
        StrFormat("ds_${0..%d}.%s_${0..%d}", spec_.data_sources - 1,
                  table.c_str(), count - 1)));
  }
  auto session = middleware_->Connect();
  SPHERE_RETURN_NOT_OK(RunAll(session.get(), TpccCreateTableSQL()));
  return TpccLoad(session.get(), config, 11);
}

// ---------------------------------------------------------------------------
// RaftDbCluster
// ---------------------------------------------------------------------------

RaftDbCluster::RaftDbCluster(const baselines::RaftDbOptions& options,
                             const ClusterSpec& spec)
    : network_(spec.network) {
  baselines::RaftDbOptions opts = options;
  opts.num_regions = spec.data_sources;
  db_ = std::make_unique<baselines::RaftDb>(opts, &network_);
  // The storage replicas run on the same class of machines as everyone
  // else's data nodes: apply the same storage-delay/IO-slot model.
  for (int r = 0; r < opts.num_regions; ++r) {
    for (int i = 0; i < opts.replicas_per_region; ++i) {
      db_->replica_node(r, i)->set_statement_delay_us(spec.node_delay_us);
      db_->replica_node(r, i)->set_io_concurrency(spec.node_io_slots);
    }
  }
}

Status RaftDbCluster::SetupSysbench(const SysbenchConfig& config) {
  db_->AddPartitionedTable("sbtest", "id");
  auto session = db_->Connect();
  auto r = session->Execute(SysbenchCreateTableSQL());
  if (!r.ok()) return r.status();
  return SysbenchLoad(session.get(), config, 7);
}

Status RaftDbCluster::SetupTpcc(const TpccConfig& config) {
  for (const auto& [table, column] : TpccShardedTables()) {
    db_->AddPartitionedTable(table, column);
  }
  auto session = db_->Connect();
  SPHERE_RETURN_NOT_OK(RunAll(session.get(), TpccCreateTableSQL()));
  return TpccLoad(session.get(), config, 11);
}

// ---------------------------------------------------------------------------
// AuroraCluster
// ---------------------------------------------------------------------------

AuroraCluster::AuroraCluster(const std::string& name, const ClusterSpec& spec)
    : network_(spec.network) {
  node_ = std::make_unique<engine::StorageNode>(name + "-compute");
  node_->set_statement_delay_us(spec.node_delay_us);
  node_->set_io_concurrency(spec.node_io_slots);
  baselines::AuroraOptions options;
  options.name = name;
  system_ = std::make_unique<baselines::AuroraLikeSystem>(options, node_.get(),
                                                          &network_);
}

Status AuroraCluster::SetupSysbench(const SysbenchConfig& config) {
  auto session = system_->Connect();
  auto r = session->Execute(SysbenchCreateTableSQL());
  if (!r.ok()) return r.status();
  return SysbenchLoad(session.get(), config, 7);
}

}  // namespace sphere::benchlib
