#include "benchlib/sysbench.h"

#include "common/strings.h"

namespace sphere::benchlib {

namespace {

/// sysbench's c column is a 120-char string, pad 60; shortened here to keep
/// the in-memory footprint proportional.
std::string RandomC(Rng* rng) { return rng->RandomString(32); }
std::string RandomPad(Rng* rng) { return rng->RandomString(16); }

int64_t RandomId(const SysbenchConfig& config, Rng* rng) {
  return rng->Uniform(1, config.table_size);
}

Status Run(baselines::SqlSession* session, const std::string& sql,
           std::vector<Value> params = {}) {
  auto r = session->Execute(sql, params);
  return r.ok() ? Status::OK() : r.status();
}

Status PointSelects(baselines::SqlSession* session,
                    const SysbenchConfig& config, Rng* rng) {
  for (int i = 0; i < config.point_selects; ++i) {
    SPHERE_RETURN_NOT_OK(Run(session, "SELECT c FROM sbtest WHERE id = ?",
                             {Value(RandomId(config, rng))}));
  }
  return Status::OK();
}

Status RangeQueries(baselines::SqlSession* session,
                    const SysbenchConfig& config, Rng* rng) {
  auto range = [&](const char* fmt) -> Status {
    int64_t lo = RandomId(config, rng);
    int64_t hi = lo + config.range_size - 1;
    return Run(session, StrFormat(fmt, static_cast<long long>(lo),
                                  static_cast<long long>(hi)));
  };
  for (int i = 0; i < config.simple_ranges; ++i) {
    SPHERE_RETURN_NOT_OK(
        range("SELECT c FROM sbtest WHERE id BETWEEN %lld AND %lld"));
  }
  for (int i = 0; i < config.sum_ranges; ++i) {
    SPHERE_RETURN_NOT_OK(
        range("SELECT SUM(k) FROM sbtest WHERE id BETWEEN %lld AND %lld"));
  }
  for (int i = 0; i < config.order_ranges; ++i) {
    SPHERE_RETURN_NOT_OK(range(
        "SELECT c FROM sbtest WHERE id BETWEEN %lld AND %lld ORDER BY c"));
  }
  for (int i = 0; i < config.distinct_ranges; ++i) {
    SPHERE_RETURN_NOT_OK(range(
        "SELECT DISTINCT c FROM sbtest WHERE id BETWEEN %lld AND %lld ORDER BY c"));
  }
  return Status::OK();
}

Status Writes(baselines::SqlSession* session, const SysbenchConfig& config,
              Rng* rng) {
  for (int i = 0; i < config.index_updates; ++i) {
    SPHERE_RETURN_NOT_OK(Run(session,
                             "UPDATE sbtest SET k = k + 1 WHERE id = ?",
                             {Value(RandomId(config, rng))}));
  }
  for (int i = 0; i < config.non_index_updates; ++i) {
    SPHERE_RETURN_NOT_OK(Run(session, "UPDATE sbtest SET c = ? WHERE id = ?",
                             {Value(RandomC(rng)), Value(RandomId(config, rng))}));
  }
  for (int i = 0; i < config.delete_inserts; ++i) {
    int64_t id = RandomId(config, rng);
    SPHERE_RETURN_NOT_OK(
        Run(session, "DELETE FROM sbtest WHERE id = ?", {Value(id)}));
    SPHERE_RETURN_NOT_OK(
        Run(session,
            "INSERT INTO sbtest (id, k, c, pad) VALUES (?, ?, ?, ?)",
            {Value(id), Value(rng->Uniform(1, config.table_size)),
             Value(RandomC(rng)), Value(RandomPad(rng))}));
  }
  return Status::OK();
}

}  // namespace

const char* SysbenchScenarioName(SysbenchScenario scenario) {
  switch (scenario) {
    case SysbenchScenario::kPointSelect:
      return "Point Select";
    case SysbenchScenario::kReadOnly:
      return "Read Only";
    case SysbenchScenario::kWriteOnly:
      return "Write Only";
    case SysbenchScenario::kReadWrite:
      return "Read Write";
  }
  return "?";
}

std::string SysbenchCreateTableSQL() {
  return "CREATE TABLE sbtest (id BIGINT PRIMARY KEY, k BIGINT, "
         "c VARCHAR(120), pad VARCHAR(60))";
}

Status SysbenchLoad(baselines::SqlSession* session,
                    const SysbenchConfig& config, uint64_t seed) {
  Rng rng(seed);
  constexpr int64_t kBatch = 100;
  for (int64_t id = 1; id <= config.table_size; id += kBatch) {
    std::string sql = "INSERT INTO sbtest (id, k, c, pad) VALUES ";
    bool first = true;
    for (int64_t i = id; i < id + kBatch && i <= config.table_size; ++i) {
      if (!first) sql += ", ";
      first = false;
      sql += StrFormat("(%lld, %lld, '%s', '%s')", static_cast<long long>(i),
                       static_cast<long long>(rng.Uniform(1, config.table_size)),
                       RandomC(&rng).c_str(), RandomPad(&rng).c_str());
    }
    SPHERE_RETURN_NOT_OK(Run(session, sql));
  }
  return Status::OK();
}

Status SysbenchTransaction(baselines::SqlSession* session,
                           SysbenchScenario scenario,
                           const SysbenchConfig& config, Rng* rng) {
  if (scenario == SysbenchScenario::kPointSelect) {
    // oltp_point_select: a single query, no transaction wrapper.
    return Run(session, "SELECT c FROM sbtest WHERE id = ?",
               {Value(RandomId(config, rng))});
  }
  if (config.use_transactions) SPHERE_RETURN_NOT_OK(Run(session, "BEGIN"));
  Status st = Status::OK();
  switch (scenario) {
    case SysbenchScenario::kReadOnly:
      st = PointSelects(session, config, rng);
      if (st.ok()) st = RangeQueries(session, config, rng);
      break;
    case SysbenchScenario::kWriteOnly:
      st = Writes(session, config, rng);
      break;
    case SysbenchScenario::kReadWrite:
      st = PointSelects(session, config, rng);
      if (st.ok()) st = RangeQueries(session, config, rng);
      if (st.ok()) st = Writes(session, config, rng);
      break;
    default:
      break;
  }
  if (config.use_transactions) {
    if (st.ok()) {
      return Run(session, "COMMIT");
    }
    (void)Run(session, "ROLLBACK");
    return st;
  }
  return st;
}

}  // namespace sphere::benchlib
