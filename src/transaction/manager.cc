#include "transaction/manager.h"

#include "common/metrics.h"
#include "common/strings.h"
#include "sql/condition.h"
#include "sql/parser.h"

namespace sphere::transaction {

namespace {

/// Branch/outcome accounting (DESIGN.md §13). Pointers resolve once; the
/// registry owns the counters for the process lifetime.
metrics::Counter* TxnCounter(const char* name) {
  return metrics::Registry::Instance().GetCounter(name);
}

/// Clones an expression with every ? placeholder replaced by its bound value
/// so the text can be re-executed standalone (image queries, compensation).
sql::ExprPtr InlineParams(const sql::Expr* e, const std::vector<Value>& params) {
  if (e == nullptr) return nullptr;
  if (e->kind() == sql::ExprKind::kParam) {
    int idx = static_cast<const sql::ParamExpr*>(e)->index;
    Value v = (idx >= 0 && static_cast<size_t>(idx) < params.size())
                  ? params[static_cast<size_t>(idx)]
                  : Value::Null();
    return std::make_unique<sql::LiteralExpr>(std::move(v));
  }
  switch (e->kind()) {
    case sql::ExprKind::kUnary: {
      const auto* u = static_cast<const sql::UnaryExpr*>(e);
      return std::make_unique<sql::UnaryExpr>(u->op,
                                              InlineParams(u->child.get(), params));
    }
    case sql::ExprKind::kBinary: {
      const auto* b = static_cast<const sql::BinaryExpr*>(e);
      return std::make_unique<sql::BinaryExpr>(
          b->op, InlineParams(b->left.get(), params),
          InlineParams(b->right.get(), params));
    }
    case sql::ExprKind::kBetween: {
      const auto* b = static_cast<const sql::BetweenExpr*>(e);
      return std::make_unique<sql::BetweenExpr>(
          InlineParams(b->expr.get(), params), InlineParams(b->low.get(), params),
          InlineParams(b->high.get(), params), b->negated);
    }
    case sql::ExprKind::kIn: {
      const auto* in = static_cast<const sql::InExpr*>(e);
      std::vector<sql::ExprPtr> list;
      for (const auto& i : in->list) list.push_back(InlineParams(i.get(), params));
      return std::make_unique<sql::InExpr>(InlineParams(in->expr.get(), params),
                                           std::move(list), in->negated);
    }
    default:
      return e->Clone();
  }
}

}  // namespace

DistributedTransaction::DistributedTransaction(TransactionType type,
                                               TransactionContext* context)
    : type_(type), context_(context) {
  switch (type_) {
    case TransactionType::kLocal:
      xid_ = "";
      break;
    case TransactionType::kXa:
      xid_ = context_->NewXid();
      break;
    case TransactionType::kBase:
      xid_ = context_->tc()->BeginGlobal();
      break;
  }
}

DistributedTransaction::~DistributedTransaction() {
  if (active_) {
    (void)Rollback();
  }
}

std::vector<std::string> DistributedTransaction::Participants() const {
  std::vector<std::string> out;
  out.reserve(branches_.size());
  for (const auto& [ds, lease] : branches_) out.push_back(ds);
  return out;
}

Result<net::RemoteConnection*> DistributedTransaction::TransactionConnection(
    const std::string& data_source) {
  if (!active_) {
    return Status::TransactionError("transaction already completed");
  }
  auto it = branches_.find(data_source);
  if (it != branches_.end()) return it->second.get();

  net::DataSource* ds = context_->registry()->Find(data_source);
  if (ds == nullptr) return Status::NotFound("data source " + data_source);
  net::ConnectionPool::Lease lease = ds->pool().Acquire();
  net::RemoteConnection* conn = lease.get();
  switch (type_) {
    case TransactionType::kLocal:
      SPHERE_RETURN_NOT_OK(conn->Begin());
      break;
    case TransactionType::kXa:
      SPHERE_RETURN_NOT_OK(conn->Begin(xid_));
      break;
    case TransactionType::kBase:
      // AT mode: no long-lived local transaction — statements commit locally
      // with per-statement transactions; register the branch with the TC.
      SPHERE_RETURN_NOT_OK(context_->tc()->RegisterBranch(xid_, data_source));
      break;
  }
  branches_.emplace(data_source, std::move(lease));
  static metrics::Counter* opened = TxnCounter("txn.branches.opened");
  opened->Increment();
  return conn;
}

// ---------------------------------------------------------------------------
// BASE (Seata-AT) per-unit hooks
// ---------------------------------------------------------------------------

Status DistributedTransaction::BeforeUnit(net::RemoteConnection* conn,
                                          const core::SQLUnit& unit) {
  if (type_ != TransactionType::kBase) return Status::OK();
  // Units carry their rewritten AST on the write path (zero-reparse lane);
  // only text-form units from older call sites still need a parse here.
  const sql::Statement* stmt = unit.stmt.get();
  sql::StatementPtr parsed;
  if (stmt == nullptr) {
    sql::Parser parser;
    SPHERE_ASSIGN_OR_RETURN(parsed, parser.Parse(unit.sql));
    stmt = parsed.get();
  }

  switch (stmt->kind()) {
    case sql::StatementKind::kInsert: {
      // Undo = delete the inserted rows (matched on all inserted columns).
      const auto& ins = static_cast<const sql::InsertStatement&>(*stmt);
      UndoRecord undo;
      undo.kind = UndoRecord::Kind::kInsert;
      undo.data_source = unit.data_source;
      undo.table = ins.table.name;
      undo.columns = ins.columns;
      for (const auto& row : ins.rows) {
        Row values;
        for (const auto& e : row) {
          auto v = sql::EvalConstExpr(e.get(), unit.params);
          values.push_back(v.value_or(Value::Null()));
        }
        undo.rows.push_back(std::move(values));
      }
      SPHERE_RETURN_NOT_OK(context_->tc()->AddUndo(xid_, std::move(undo)));
      break;
    }
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete: {
      // Undo = before image captured by an extra query (the AT-mode image
      // select of Fig. 6's "save redo and undo logs" step).
      std::string table;
      const sql::Expr* where = nullptr;
      if (stmt->kind() == sql::StatementKind::kUpdate) {
        const auto& up = static_cast<const sql::UpdateStatement&>(*stmt);
        table = up.table.name;
        where = up.where.get();
      } else {
        const auto& del = static_cast<const sql::DeleteStatement&>(*stmt);
        table = del.table.name;
        where = del.where.get();
      }
      UndoRecord undo;
      undo.kind = UndoRecord::Kind::kMutate;
      undo.data_source = unit.data_source;
      undo.table = table;
      std::string image_sql = "SELECT * FROM " + table;
      if (where != nullptr) {
        sql::ExprPtr inlined = InlineParams(where, unit.params);
        undo.where_sql = inlined->ToSQL(sql::Dialect::MySQL());
        image_sql += " WHERE " + undo.where_sql;
      }
      SPHERE_ASSIGN_OR_RETURN(engine::ExecResult image, conn->Execute(image_sql));
      if (!image.is_query) {
        return Status::Internal("image query returned non-query result");
      }
      undo.columns = image.result_set->columns();
      undo.rows = engine::DrainResultSet(image.result_set.get());
      SPHERE_RETURN_NOT_OK(context_->tc()->AddUndo(xid_, std::move(undo)));
      break;
    }
    default:
      return Status::OK();  // reads need no undo
  }
  // Statement-local transaction: commits in AfterUnit (branch-local commit).
  return conn->Begin();
}

Status DistributedTransaction::AfterUnit(net::RemoteConnection* conn,
                                         const core::SQLUnit& unit,
                                         const Result<engine::ExecResult>& result) {
  if (type_ != TransactionType::kBase) return Status::OK();
  if (!result.ok()) {
    // The unit failed: roll back its statement-local transaction and report
    // the branch as failed so CommitBase turns into a global rollback.
    if (conn->in_transaction()) {
      (void)conn->Rollback();
    }
    // The unit's original error must be what propagates; ReportBranch can
    // only fail if the global txn is already gone from the coordinator, in
    // which case there is nothing left to mark failed.
    (void)context_->tc()->ReportBranch(xid_, unit.data_source, false);
    static metrics::Counter* failures = TxnCounter("txn.branch.failures");
    failures->Increment();
    return result.status();
  }
  if (!conn->in_transaction()) return Status::OK();  // read-only unit
  Status st = conn->Commit();
  static metrics::Counter* commits = TxnCounter("txn.branch.commits");
  static metrics::Counter* failures = TxnCounter("txn.branch.failures");
  (st.ok() ? commits : failures)->Increment();
  SPHERE_RETURN_NOT_OK(
      context_->tc()->ReportBranch(xid_, unit.data_source, st.ok()));
  return st;
}

// ---------------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------------

void DistributedTransaction::ReleaseBranches() {
  branches_.clear();
  active_ = false;
}

Status DistributedTransaction::CommitLocal() {
  // 1PC: forward commit everywhere; failures are deliberately ignored
  // (paper Fig. 5(d): "Even if some data source commits fail, ShardingSphere
  // will ignore it").
  for (auto& [ds, lease] : branches_) {
    (void)lease->Commit();
  }
  ReleaseBranches();
  return Status::OK();
}

Status DistributedTransaction::CommitXa() {
  std::vector<std::string> participants = Participants();
  XaLogStore* log = context_->xa_log();
  log->Record(xid_, XaLogStore::State::kPreparing, participants);

  // Phase 1: prepare votes.
  std::vector<std::string> prepared;
  for (auto& [ds, lease] : branches_) {
    Status st = lease->PrepareXa();
    if (!st.ok()) {
      // Vote NO: the failing branch already rolled back; roll back the rest.
      log->Transition(xid_, XaLogStore::State::kAborting);
      for (auto& [other, other_lease] : branches_) {
        if (other == ds) continue;
        bool was_prepared = false;
        for (const auto& p : prepared) was_prepared = was_prepared || p == other;
        if (was_prepared) {
          (void)other_lease->RollbackPrepared(xid_);
        } else {
          (void)other_lease->Rollback();
        }
      }
      // Build the error before ReleaseBranches(): `ds` references the map
      // key, which dies when the branch map is cleared.
      Status err = Status::TransactionError("XA prepare failed on " + ds +
                                            ": " + st.message());
      log->Transition(xid_, XaLogStore::State::kAborted);
      log->Forget(xid_);
      ReleaseBranches();
      return err;
    }
    prepared.push_back(ds);
  }

  // Decision is durable before phase 2 (paper Fig. 5(c) "record logs").
  log->Transition(xid_, XaLogStore::State::kCommitting);

  // Phase 2: commit prepared branches.
  bool all_acked = true;
  for (auto& [ds, lease] : branches_) {
    Status st = lease->CommitPrepared(xid_);
    if (!st.ok()) all_acked = false;  // stays in log; recovery re-commits
  }
  if (all_acked) {
    log->Transition(xid_, XaLogStore::State::kCommitted);
    log->Forget(xid_);
  }
  ReleaseBranches();
  return Status::OK();
}

Status DistributedTransaction::CommitBase() {
  if (context_->tc()->HasFailedBranch(xid_)) {
    SPHERE_RETURN_NOT_OK(RollbackBase());
    return Status::TransactionError("BASE branch failed; rolled back " + xid_);
  }
  SPHERE_ASSIGN_OR_RETURN(std::vector<std::string> branch_names,
                          context_->tc()->GlobalCommit(xid_));
  // Phase 2: each data source deletes its undo logs (paper Fig. 6); modeled
  // as one cheap command round trip per branch.
  for (const auto& ds : branch_names) {
    auto it = branches_.find(ds);
    if (it != branches_.end()) {
      (void)it->second->Execute("SET base_undo_cleanup = 1");
    }
  }
  ReleaseBranches();
  return Status::OK();
}

std::vector<std::string> CompensationSQL(const UndoRecord& undo) {
  std::vector<std::string> out;
  auto insert_rows = [&undo](std::vector<std::string>* sqls) {
    if (undo.rows.empty()) return;
    std::string sql_text = "INSERT INTO " + undo.table + " (";
    for (size_t i = 0; i < undo.columns.size(); ++i) {
      if (i) sql_text += ", ";
      sql_text += undo.columns[i];
    }
    sql_text += ") VALUES ";
    for (size_t r = 0; r < undo.rows.size(); ++r) {
      if (r) sql_text += ", ";
      sql_text += "(";
      for (size_t i = 0; i < undo.rows[r].size(); ++i) {
        if (i) sql_text += ", ";
        sql_text += undo.rows[r][i].ToSQLLiteral();
      }
      sql_text += ")";
    }
    sqls->push_back(std::move(sql_text));
  };

  if (undo.kind == UndoRecord::Kind::kInsert) {
    // Delete each inserted row, matching all inserted columns.
    for (const auto& row : undo.rows) {
      std::string sql_text = "DELETE FROM " + undo.table + " WHERE ";
      for (size_t i = 0; i < undo.columns.size() && i < row.size(); ++i) {
        if (i) sql_text += " AND ";
        sql_text += undo.columns[i];
        sql_text += row[i].is_null() ? " IS NULL" : (" = " + row[i].ToSQLLiteral());
      }
      out.push_back(std::move(sql_text));
    }
    return out;
  }
  // kMutate: remove the (possibly updated) rows the predicate selects, then
  // restore the before image. Assumes the predicate is stable under the
  // update (true for key-based writes, the AT-mode sweet spot).
  std::string del = "DELETE FROM " + undo.table;
  if (!undo.where_sql.empty()) del += " WHERE " + undo.where_sql;
  out.push_back(std::move(del));
  insert_rows(&out);
  return out;
}

Status DistributedTransaction::RollbackBase() {
  SPHERE_ASSIGN_OR_RETURN(std::vector<UndoRecord> undos,
                          context_->tc()->GlobalRollback(xid_));
  Status first_error = Status::OK();
  for (const UndoRecord& undo : undos) {
    auto conn_it = branches_.find(undo.data_source);
    if (conn_it == branches_.end()) continue;
    net::RemoteConnection* conn = conn_it->second.get();
    for (const std::string& sql_text : CompensationSQL(undo)) {
      auto r = conn->Execute(sql_text);
      if (!r.ok() && first_error.ok()) first_error = r.status();
    }
  }
  ReleaseBranches();
  return first_error;
}

Status DistributedTransaction::Commit() {
  if (!active_) return Status::TransactionError("transaction not active");
  Status st = Status::Internal("bad transaction type");
  switch (type_) {
    case TransactionType::kLocal:
      st = CommitLocal();
      break;
    case TransactionType::kXa:
      st = CommitXa();
      break;
    case TransactionType::kBase:
      st = CommitBase();
      break;
  }
  // A failed global commit always rolled the branches back (XA vote-no,
  // BASE failed-branch), so it counts as a rollback outcome.
  static metrics::Counter* commits = TxnCounter("txn.commits");
  static metrics::Counter* rollbacks = TxnCounter("txn.rollbacks");
  (st.ok() ? commits : rollbacks)->Increment();
  return st;
}

Status DistributedTransaction::Rollback() {
  if (!active_) return Status::TransactionError("transaction not active");
  static metrics::Counter* rollbacks = TxnCounter("txn.rollbacks");
  rollbacks->Increment();
  if (type_ == TransactionType::kBase) {
    return RollbackBase();
  }
  for (auto& [ds, lease] : branches_) {
    (void)lease->Rollback();
  }
  ReleaseBranches();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

Result<int> XaRecoveryManager::RecoverAll() {
  int resolved = 0;
  for (const auto& [xid, entry] : context_->xa_log()->Unresolved()) {
    bool commit = entry.state == XaLogStore::State::kCommitting;
    bool all_ok = true;
    for (const auto& ds_name : entry.participants) {
      net::DataSource* ds = context_->registry()->Find(ds_name);
      if (ds == nullptr) {
        all_ok = false;
        continue;
      }
      auto lease = ds->pool().Acquire();
      Status st = commit ? lease->CommitPrepared(xid)
                         : lease->RollbackPrepared(xid);
      // NotFound = the branch already completed phase 2 before the crash.
      if (!st.ok() && st.code() != StatusCode::kNotFound) all_ok = false;
    }
    if (all_ok) {
      context_->xa_log()->Transition(xid, commit ? XaLogStore::State::kCommitted
                                                 : XaLogStore::State::kAborted);
      context_->xa_log()->Forget(xid);
      ++resolved;
    }
  }
  return resolved;
}

}  // namespace sphere::transaction
