#ifndef SPHERE_TRANSACTION_BASE_COORDINATOR_H_
#define SPHERE_TRANSACTION_BASE_COORDINATOR_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/value.h"
#include "net/latency.h"

namespace sphere::transaction {

/// One compensating undo record held by the TC (the Seata undo log of paper
/// Fig. 6): enough to restore a branch's writes if the global transaction
/// rolls back.
struct UndoRecord {
  enum class Kind { kInsert, kMutate };
  Kind kind = Kind::kMutate;
  std::string data_source;
  std::string table;                 ///< actual (physical) table name
  std::vector<std::string> columns;  ///< column names of `rows`
  std::vector<Row> rows;             ///< before image (kMutate) / inserted (kInsert)
  std::string where_sql;             ///< original predicate text (kMutate)
  std::vector<Value> where_params;
};

/// The Transaction Coordinator (TC) of the BASE transaction (paper Fig. 5(e),
/// Fig. 6): keeps global transaction status, branch registrations and undo
/// logs, and drives global commit/rollback. Stands in for a Seata TC server;
/// every call optionally pays a network round trip so BASE keeps its real
/// coordination cost relative to LOCAL and XA.
class BaseCoordinator {
 public:
  explicit BaseCoordinator(const net::LatencyModel* network = nullptr)
      : network_(network) {}

  /// Phase 1 begin: allocates a global transaction id.
  std::string BeginGlobal();

  /// Registers a branch (data source) under a global transaction.
  Status RegisterBranch(const std::string& xid, const std::string& data_source);

  /// Stores a compensating undo record for a branch write.
  Status AddUndo(const std::string& xid, UndoRecord undo);

  /// Branch status report at the end of phase 1 for one statement.
  Status ReportBranch(const std::string& xid, const std::string& data_source,
                      bool ok);

  /// Phase 2 commit: discards undo logs. Returns the branches so the caller
  /// can tell each data source to delete its logs.
  Result<std::vector<std::string>> GlobalCommit(const std::string& xid);

  /// Phase 2 rollback: returns the undo records, most recent first.
  Result<std::vector<UndoRecord>> GlobalRollback(const std::string& xid);

  /// True when any branch reported failure (the global txn must roll back).
  bool HasFailedBranch(const std::string& xid) const;

  size_t active_transactions() const;

 private:
  void Rpc() const {
    if (network_ != nullptr) network_->Transfer(96);
  }

  struct GlobalTxn {
    std::vector<std::string> branches;
    std::vector<UndoRecord> undos;
    bool failed = false;
  };

  const net::LatencyModel* network_;
  mutable Mutex mu_{LockRank::kTransaction, "transaction/base"};
  std::map<std::string, GlobalTxn> txns_ SPHERE_GUARDED_BY(mu_);
  std::atomic<int64_t> next_id_{1};
};

}  // namespace sphere::transaction

#endif  // SPHERE_TRANSACTION_BASE_COORDINATOR_H_
