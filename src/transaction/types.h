#ifndef SPHERE_TRANSACTION_TYPES_H_
#define SPHERE_TRANSACTION_TYPES_H_

#include <string>

#include "common/result.h"

namespace sphere::transaction {

/// The three distributed transaction types of the paper (§IV-B), switchable
/// at runtime via `SET VARIABLE transaction_type = LOCAL|XA|BASE` (RAL).
enum class TransactionType {
  kLocal,  ///< 1PC: forward commit/rollback to every source, ignore failures
  kXa,     ///< 2PC with prepare voting, durable decision log and recovery
  kBase,   ///< Seata-AT-style: branch-local commits + compensating undo
};

const char* TransactionTypeName(TransactionType type);
Result<TransactionType> ParseTransactionType(const std::string& name);

}  // namespace sphere::transaction

#endif  // SPHERE_TRANSACTION_TYPES_H_
