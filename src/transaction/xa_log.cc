#include "transaction/xa_log.h"

namespace sphere::transaction {

void XaLogStore::Record(const std::string& xid, State state,
                        const std::vector<std::string>& participants) {
  MutexLock lk(mu_);
  entries_[xid] = Entry{state, participants};
}

void XaLogStore::Transition(const std::string& xid, State state) {
  MutexLock lk(mu_);
  auto it = entries_.find(xid);
  if (it != entries_.end()) it->second.state = state;
}

void XaLogStore::Forget(const std::string& xid) {
  MutexLock lk(mu_);
  entries_.erase(xid);
}

bool XaLogStore::Lookup(const std::string& xid, Entry* entry) const {
  MutexLock lk(mu_);
  auto it = entries_.find(xid);
  if (it == entries_.end()) return false;
  if (entry != nullptr) *entry = it->second;
  return true;
}

std::map<std::string, XaLogStore::Entry> XaLogStore::Unresolved() const {
  MutexLock lk(mu_);
  std::map<std::string, Entry> out;
  for (const auto& [xid, entry] : entries_) {
    if (entry.state == State::kPreparing || entry.state == State::kCommitting ||
        entry.state == State::kAborting) {
      out.emplace(xid, entry);
    }
  }
  return out;
}

size_t XaLogStore::size() const {
  MutexLock lk(mu_);
  return entries_.size();
}

}  // namespace sphere::transaction
