#ifndef SPHERE_TRANSACTION_XA_LOG_H_
#define SPHERE_TRANSACTION_XA_LOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace sphere::transaction {

/// The transaction manager's durable decision log (the "recorded logs" of
/// paper Fig. 5(c)). Stand-in for a disk log: it survives data-source crashes
/// in these simulations because it lives with the TM, not the RMs.
class XaLogStore {
 public:
  /// 2PC decision states. kCommitting means "decision = commit, phase 2 not
  /// yet acknowledged by every participant".
  enum class State { kPreparing, kCommitting, kCommitted, kAborting, kAborted };

  struct Entry {
    State state;
    std::vector<std::string> participants;  ///< data source names
  };

  void Record(const std::string& xid, State state,
              const std::vector<std::string>& participants)
      SPHERE_EXCLUDES(mu_);
  /// Updates state, keeping participants. No-op for unknown xid.
  void Transition(const std::string& xid, State state) SPHERE_EXCLUDES(mu_);
  /// Removes a completed transaction from the log.
  void Forget(const std::string& xid) SPHERE_EXCLUDES(mu_);

  bool Lookup(const std::string& xid, Entry* entry) const SPHERE_EXCLUDES(mu_);
  /// Transactions that still need resolution (kPreparing/kCommitting/kAborting).
  std::map<std::string, Entry> Unresolved() const SPHERE_EXCLUDES(mu_);
  size_t size() const SPHERE_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{LockRank::kTransaction, "transaction/xa_log"};
  std::map<std::string, Entry> entries_ SPHERE_GUARDED_BY(mu_);
};

}  // namespace sphere::transaction

#endif  // SPHERE_TRANSACTION_XA_LOG_H_
