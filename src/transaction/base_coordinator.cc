#include "transaction/base_coordinator.h"

#include <algorithm>

namespace sphere::transaction {

std::string BaseCoordinator::BeginGlobal() {
  Rpc();
  int64_t id = next_id_.fetch_add(1);
  std::string xid = "base-" + std::to_string(id);
  MutexLock lk(mu_);
  txns_[xid] = GlobalTxn{};
  return xid;
}

Status BaseCoordinator::RegisterBranch(const std::string& xid,
                                       const std::string& data_source) {
  Rpc();
  MutexLock lk(mu_);
  auto it = txns_.find(xid);
  if (it == txns_.end()) return Status::NotFound("global txn " + xid);
  auto& branches = it->second.branches;
  if (std::find(branches.begin(), branches.end(), data_source) ==
      branches.end()) {
    branches.push_back(data_source);
  }
  return Status::OK();
}

Status BaseCoordinator::AddUndo(const std::string& xid, UndoRecord undo) {
  Rpc();
  MutexLock lk(mu_);
  auto it = txns_.find(xid);
  if (it == txns_.end()) return Status::NotFound("global txn " + xid);
  it->second.undos.push_back(std::move(undo));
  return Status::OK();
}

Status BaseCoordinator::ReportBranch(const std::string& xid,
                                     const std::string& data_source, bool ok) {
  (void)data_source;
  Rpc();
  MutexLock lk(mu_);
  auto it = txns_.find(xid);
  if (it == txns_.end()) return Status::NotFound("global txn " + xid);
  if (!ok) it->second.failed = true;
  return Status::OK();
}

Result<std::vector<std::string>> BaseCoordinator::GlobalCommit(
    const std::string& xid) {
  Rpc();
  MutexLock lk(mu_);
  auto it = txns_.find(xid);
  if (it == txns_.end()) return Status::NotFound("global txn " + xid);
  std::vector<std::string> branches = it->second.branches;
  txns_.erase(it);
  return branches;
}

Result<std::vector<UndoRecord>> BaseCoordinator::GlobalRollback(
    const std::string& xid) {
  Rpc();
  MutexLock lk(mu_);
  auto it = txns_.find(xid);
  if (it == txns_.end()) return Status::NotFound("global txn " + xid);
  std::vector<UndoRecord> undos = std::move(it->second.undos);
  std::reverse(undos.begin(), undos.end());
  txns_.erase(it);
  return undos;
}

bool BaseCoordinator::HasFailedBranch(const std::string& xid) const {
  MutexLock lk(mu_);
  auto it = txns_.find(xid);
  return it != txns_.end() && it->second.failed;
}

size_t BaseCoordinator::active_transactions() const {
  MutexLock lk(mu_);
  return txns_.size();
}

}  // namespace sphere::transaction
