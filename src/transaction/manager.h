#ifndef SPHERE_TRANSACTION_MANAGER_H_
#define SPHERE_TRANSACTION_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/execute.h"
#include "net/pool.h"
#include "transaction/base_coordinator.h"
#include "transaction/types.h"
#include "transaction/xa_log.h"

namespace sphere::transaction {

/// Shared transaction infrastructure of one middleware instance: the XA
/// decision log, the BASE coordinator and xid allocation.
class TransactionContext {
 public:
  TransactionContext(core::DataSourceRegistry* registry,
                     const net::LatencyModel* network)
      : registry_(registry), tc_(network) {}

  core::DataSourceRegistry* registry() { return registry_; }
  XaLogStore* xa_log() { return &xa_log_; }
  BaseCoordinator* tc() { return &tc_; }

  std::string NewXid() {
    return "xa-" + std::to_string(next_xid_.fetch_add(1));
  }

 private:
  core::DataSourceRegistry* registry_;
  XaLogStore xa_log_;
  BaseCoordinator tc_;
  std::atomic<int64_t> next_xid_{1};
};

/// One open distributed transaction of a logical session. Implements the
/// ConnectionSource the execution engine uses for connection affinity, and
/// (for BASE) the UnitObserver that wraps every write in Seata-AT semantics.
///
/// Behaviour per type (paper §IV-B):
///  - LOCAL: plain BEGIN on each touched source; COMMIT forwards commit to
///    every source and ignores individual failures (1PC).
///  - XA: BEGIN(xid) on each source; COMMIT runs 2PC — prepare votes, durable
///    decision log, commit-prepared; failed phase-2 participants stay in the
///    log for recovery.
///  - BASE: statements commit branch-locally right away; the TC keeps
///    compensating undo records, applied on rollback.
class DistributedTransaction : public core::ConnectionSource,
                               public core::UnitObserver {
 public:
  DistributedTransaction(TransactionType type, TransactionContext* context);
  ~DistributedTransaction() override;

  TransactionType type() const { return type_; }
  const std::string& xid() const { return xid_; }
  bool active() const { return active_; }
  /// Data sources enlisted so far.
  std::vector<std::string> Participants() const;

  // core::ConnectionSource:
  Result<net::RemoteConnection*> TransactionConnection(
      const std::string& data_source) override;

  // core::UnitObserver (BASE only; no-ops otherwise):
  Status BeforeUnit(net::RemoteConnection* conn,
                    const core::SQLUnit& unit) override;
  Status AfterUnit(net::RemoteConnection* conn, const core::SQLUnit& unit,
                   const Result<engine::ExecResult>& result) override;

  /// The observer to pass to the execution engine (nullptr unless BASE).
  core::UnitObserver* observer() {
    return type_ == TransactionType::kBase ? this : nullptr;
  }

  Status Commit();
  Status Rollback();

 private:
  Status CommitLocal();
  Status CommitXa();
  Status CommitBase();
  Status RollbackBase();
  void ReleaseBranches();

  TransactionType type_;
  TransactionContext* context_;
  std::string xid_;
  bool active_ = true;
  /// Enlisted branches: data source name -> pooled connection held for the
  /// duration of the transaction.
  std::map<std::string, net::ConnectionPool::Lease> branches_;
};

/// Post-crash resolver: replays the XA decision log against the attached
/// data sources (paper: "recover the transaction after the server restarts
/// or re-commit periodically according to the recorded logs").
class XaRecoveryManager {
 public:
  explicit XaRecoveryManager(TransactionContext* context)
      : context_(context) {}

  /// Resolves every unresolved transaction in the log. Returns the number of
  /// transactions resolved (committed or aborted).
  Result<int> RecoverAll();

 private:
  TransactionContext* context_;
};

/// Builds the compensation statements (SQL text) for one undo record.
/// Exposed for tests.
std::vector<std::string> CompensationSQL(const UndoRecord& undo);

}  // namespace sphere::transaction

#endif  // SPHERE_TRANSACTION_MANAGER_H_
