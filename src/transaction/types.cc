#include "transaction/types.h"

#include "common/strings.h"

namespace sphere::transaction {

const char* TransactionTypeName(TransactionType type) {
  switch (type) {
    case TransactionType::kLocal:
      return "LOCAL";
    case TransactionType::kXa:
      return "XA";
    case TransactionType::kBase:
      return "BASE";
  }
  return "UNKNOWN";
}

Result<TransactionType> ParseTransactionType(const std::string& name) {
  if (EqualsIgnoreCase(name, "LOCAL")) return TransactionType::kLocal;
  if (EqualsIgnoreCase(name, "XA")) return TransactionType::kXa;
  if (EqualsIgnoreCase(name, "BASE")) return TransactionType::kBase;
  return Status::InvalidArgument("unknown transaction type: " + name);
}

}  // namespace sphere::transaction
