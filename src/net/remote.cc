#include "net/remote.h"

#include "engine/pipeline.h"

namespace sphere::net {

std::string ServeRequest(engine::StorageNode::Session* session,
                         const DecodedRequest& request) {
  switch (request.type) {
    case PacketType::kQuery: {
      auto result = session->Execute(request.sql, request.params);
      if (!result.ok()) return EncodeError(result.status());
      return EncodeExecResult(&result.value());
    }
    case PacketType::kBegin: {
      Status st = session->Begin(request.arg);
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    case PacketType::kCommit: {
      Status st = session->Commit();
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    case PacketType::kRollback: {
      Status st = session->Rollback();
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    case PacketType::kPrepareXa: {
      Status st = session->Prepare();
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    case PacketType::kCommitPrepared: {
      Status st = session->node()->CommitPrepared(request.arg);
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    case PacketType::kRollbackPrepared: {
      Status st = session->node()->RollbackPrepared(request.arg);
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    default:
      return EncodeError(Status::Internal("unexpected request packet"));
  }
}

Result<engine::ExecResult> RemoteConnection::Call(const std::string& request) {
  network_->Transfer(request.size());
  auto decoded = DecodeRequest(request);
  if (!decoded.ok()) return decoded.status();
  std::string response = ServeRequest(session_.get(), decoded.value());
  network_->Transfer(response.size());
  return DecodeResponse(response);
}

Status RemoteConnection::CallStatus(const std::string& request) {
  auto r = Call(request);
  return r.ok() ? Status::OK() : r.status();
}

Result<engine::ExecResult> RemoteConnection::Execute(
    std::string_view sql_text, const std::vector<Value>& params) {
  if (engine::PipelineConfig::pooled_batches_enabled()) {
    // In-process pass-through lane: skip the encode → decode → serve →
    // encode → decode round-trip (and all its buffers) but charge the
    // byte-identical transfer sizes the encoders would have produced, so
    // the latency model sees exactly the baseline's wire traffic.
    network_->Transfer(EncodedQuerySize(sql_text, params));
    auto result = session_->Execute(sql_text, params);
    if (!result.ok()) {
      network_->Transfer(EncodedErrorSize(result.status()));
      return result;
    }
    if (std::optional<size_t> size = TryEncodedExecResultSize(result.value())) {
      network_->Transfer(*size);
      return result;
    }
    // Unmaterialized cursor: only a real drain can price it — take the
    // baseline encode/decode path for the response leg.
    std::string response = EncodeExecResult(&result.value());
    network_->Transfer(response.size());
    return DecodeResponse(response);
  }
  return Call(EncodeQuery(sql_text, params));
}

Result<engine::ExecResult> RemoteConnection::ExecuteStructured(
    const sql::Statement& stmt, const std::vector<Value>& params) {
  // Request cost: a COM_STMT_EXECUTE-shaped packet — type byte, statement
  // handle, and the bound parameter values. The statement text itself
  // traveled once at prepare time, so it is not charged per execution.
  // Size-only mirror of the packet fields below: type byte + u64 handle +
  // u32 count + values. Building the buffer just to measure it would cost
  // an allocation per DML.
  size_t request_size = 1 + 8 + 4;
  for (const auto& p : params) request_size += EncodedValueSize(p);
  network_->Transfer(request_size);

  auto result = session_->ExecuteStatement(stmt, params);

  if (!result.ok()) {
    network_->Transfer(EncodedErrorSize(result.status()));
    return result;
  }
  // DML responses are fixed-size OK packets: type + affected + insert id.
  network_->Transfer(1 + 8 + 8);
  return result;
}

Status RemoteConnection::Begin(const std::string& xid) {
  return CallStatus(EncodeCommand(PacketType::kBegin, xid));
}

Status RemoteConnection::Commit() {
  return CallStatus(EncodeCommand(PacketType::kCommit));
}

Status RemoteConnection::Rollback() {
  return CallStatus(EncodeCommand(PacketType::kRollback));
}

Status RemoteConnection::PrepareXa() {
  return CallStatus(EncodeCommand(PacketType::kPrepareXa));
}

Status RemoteConnection::CommitPrepared(const std::string& xid) {
  return CallStatus(EncodeCommand(PacketType::kCommitPrepared, xid));
}

Status RemoteConnection::RollbackPrepared(const std::string& xid) {
  return CallStatus(EncodeCommand(PacketType::kRollbackPrepared, xid));
}

}  // namespace sphere::net
