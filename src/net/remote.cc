#include "net/remote.h"

namespace sphere::net {

std::string ServeRequest(engine::StorageNode::Session* session,
                         const DecodedRequest& request) {
  switch (request.type) {
    case PacketType::kQuery: {
      auto result = session->Execute(request.sql, request.params);
      if (!result.ok()) return EncodeError(result.status());
      return EncodeExecResult(&result.value());
    }
    case PacketType::kBegin: {
      Status st = session->Begin(request.arg);
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    case PacketType::kCommit: {
      Status st = session->Commit();
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    case PacketType::kRollback: {
      Status st = session->Rollback();
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    case PacketType::kPrepareXa: {
      Status st = session->Prepare();
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    case PacketType::kCommitPrepared: {
      Status st = session->node()->CommitPrepared(request.arg);
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    case PacketType::kRollbackPrepared: {
      Status st = session->node()->RollbackPrepared(request.arg);
      if (!st.ok()) return EncodeError(st);
      engine::ExecResult ok = engine::ExecResult::Update(0);
      return EncodeExecResult(&ok);
    }
    default:
      return EncodeError(Status::Internal("unexpected request packet"));
  }
}

Result<engine::ExecResult> RemoteConnection::Call(const std::string& request) {
  network_->Transfer(request.size());
  auto decoded = DecodeRequest(request);
  if (!decoded.ok()) return decoded.status();
  std::string response = ServeRequest(session_.get(), decoded.value());
  network_->Transfer(response.size());
  return DecodeResponse(response);
}

Status RemoteConnection::CallStatus(const std::string& request) {
  auto r = Call(request);
  return r.ok() ? Status::OK() : r.status();
}

Result<engine::ExecResult> RemoteConnection::Execute(
    std::string_view sql_text, const std::vector<Value>& params) {
  return Call(EncodeQuery(sql_text, params));
}

Result<engine::ExecResult> RemoteConnection::ExecuteStructured(
    const sql::Statement& stmt, const std::vector<Value>& params) {
  // Request cost: a COM_STMT_EXECUTE-shaped packet — type byte, statement
  // handle, and the bound parameter values. The statement text itself
  // traveled once at prepare time, so it is not charged per execution.
  PacketWriter request;
  request.WriteU8(static_cast<uint8_t>(PacketType::kQuery));
  request.WriteU64(0);  // statement-handle stand-in
  request.WriteU32(static_cast<uint32_t>(params.size()));
  for (const auto& p : params) request.WriteValue(p);
  network_->Transfer(request.size());

  auto result = session_->ExecuteStatement(stmt, params);

  if (!result.ok()) {
    network_->Transfer(EncodeError(result.status()).size());
    return result;
  }
  // DML responses are fixed-size OK packets: type + affected + insert id.
  network_->Transfer(1 + 8 + 8);
  return result;
}

Status RemoteConnection::Begin(const std::string& xid) {
  return CallStatus(EncodeCommand(PacketType::kBegin, xid));
}

Status RemoteConnection::Commit() {
  return CallStatus(EncodeCommand(PacketType::kCommit));
}

Status RemoteConnection::Rollback() {
  return CallStatus(EncodeCommand(PacketType::kRollback));
}

Status RemoteConnection::PrepareXa() {
  return CallStatus(EncodeCommand(PacketType::kPrepareXa));
}

Status RemoteConnection::CommitPrepared(const std::string& xid) {
  return CallStatus(EncodeCommand(PacketType::kCommitPrepared, xid));
}

Status RemoteConnection::RollbackPrepared(const std::string& xid) {
  return CallStatus(EncodeCommand(PacketType::kRollbackPrepared, xid));
}

}  // namespace sphere::net
