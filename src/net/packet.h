#ifndef SPHERE_NET_PACKET_H_
#define SPHERE_NET_PACKET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "engine/result_set.h"

namespace sphere::net {

/// Wire message types of the simulated database protocol (a simplified
/// MySQL-protocol stand-in: command packets client->server, OK / error /
/// result-set packets back).
enum class PacketType : uint8_t {
  kQuery = 1,        ///< COM_QUERY: sql text + bound parameters
  kBegin = 2,        ///< begin transaction (payload: optional xid)
  kCommit = 3,
  kRollback = 4,
  kPrepareXa = 5,          ///< XA phase-1 on the connection's transaction
  kCommitPrepared = 6,     ///< XA phase-2 commit (payload: xid)
  kRollbackPrepared = 7,   ///< XA phase-2 rollback (payload: xid)
  kOk = 16,          ///< affected rows + last insert id
  kResultSet = 17,   ///< column names + row data
  kError = 18,       ///< status code + message
};

/// Append-only little-endian byte writer.
class PacketWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v);
  void WriteString(std::string_view s);  ///< u32 length + bytes
  void WriteValue(const Value& v);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Sequential reader with bounds checking.
class PacketReader {
 public:
  explicit PacketReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<Value> ReadValue();

  bool AtEnd() const { return pos_ >= data_.size(); }

 private:
  Status Need(size_t n) const;
  std::string_view data_;
  size_t pos_ = 0;
};

// --- Request encoding -------------------------------------------------------

/// Encodes a COM_QUERY with bound parameters.
std::string EncodeQuery(std::string_view sql_text,
                        const std::vector<Value>& params);
/// Encodes a command packet whose only payload is `arg` (xid etc.).
std::string EncodeCommand(PacketType type, std::string_view arg = "");

struct DecodedRequest {
  PacketType type;
  std::string sql;            ///< kQuery
  std::vector<Value> params;  ///< kQuery
  std::string arg;            ///< xid for transaction verbs
};
Result<DecodedRequest> DecodeRequest(std::string_view data);

// --- Response encoding ------------------------------------------------------

/// Serializes an ExecResult (drains the cursor of a query result).
std::string EncodeExecResult(engine::ExecResult* result);
/// Serializes an error status.
std::string EncodeError(const Status& status);
/// Decodes a response into an ExecResult (materialized) or error status.
Result<engine::ExecResult> DecodeResponse(std::string_view data);

// --- Size mirrors (pooled pass-through lane) --------------------------------
//
// The in-process fast lane skips the encode/decode round-trip but must keep
// the latency model honest, so it charges the exact byte count the encoders
// would have produced. Each mirror is kept in lockstep with its encoder; the
// packet unit tests assert `Encode*(x).size() == Encoded*Size(x)`.

/// Exact size of PacketWriter::WriteValue(v)'s output.
size_t EncodedValueSize(const Value& v);
/// Exact size of EncodeQuery(sql_text, params).
size_t EncodedQuerySize(std::string_view sql_text,
                        const std::vector<Value>& params);
/// Exact size of EncodeError(status).
size_t EncodedErrorSize(const Status& status);
/// Exact size of EncodeExecResult(result) — without draining the cursor.
/// Returns nullopt for a query result that is not materialized (the caller
/// must fall back to the real encode path).
std::optional<size_t> TryEncodedExecResultSize(
    const engine::ExecResult& result);

}  // namespace sphere::net

#endif  // SPHERE_NET_PACKET_H_
