#ifndef SPHERE_NET_REMOTE_H_
#define SPHERE_NET_REMOTE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/storage_node.h"
#include "net/latency.h"
#include "net/packet.h"

namespace sphere::net {

/// Dispatches one decoded request on a server-side session and returns the
/// encoded response. Shared by RemoteConnection (driver side) and the proxy
/// frontend.
std::string ServeRequest(engine::StorageNode::Session* session,
                         const DecodedRequest& request);

/// One client connection to a storage node over the simulated network.
///
/// Every call encodes a protocol packet, pays the transfer latency both ways,
/// and decodes the response — the cost structure of a real driver talking to
/// a real database server. This is what the embedded (JDBC-like) adaptor
/// holds in its pools; the proxy holds these on its backend side.
class RemoteConnection {
 public:
  RemoteConnection(engine::StorageNode* node, const LatencyModel* network)
      : node_(node), network_(network), session_(node->OpenSession()) {}

  engine::StorageNode* node() { return node_; }

  /// Executes one SQL statement with bound parameters.
  Result<engine::ExecResult> Execute(std::string_view sql_text,
                                     const std::vector<Value>& params = {});

  /// Structured fast lane (DESIGN.md §10): executes an already-rewritten
  /// statement on the node session directly — no text building, no request
  /// string encode/decode, no server-side parse. The latency model still
  /// charges a binary prepared-execute request (header + statement handle +
  /// bound parameters) and the OK/error response, so the wire cost of the
  /// paper's network model is preserved; only the per-execution CPU work
  /// disappears. Intended for DML units (fixed-size OK responses).
  Result<engine::ExecResult> ExecuteStructured(const sql::Statement& stmt,
                                               const std::vector<Value>& params);

  /// Transaction verbs (each one protocol round trip).
  Status Begin(const std::string& xid = "");
  Status Commit();
  Status Rollback();
  /// XA phase 1 on this connection's open transaction.
  Status PrepareXa();
  /// XA phase 2, addressed by global xid.
  Status CommitPrepared(const std::string& xid);
  Status RollbackPrepared(const std::string& xid);

  bool in_transaction() const { return session_->in_transaction(); }

 private:
  /// Round trip: transfer request, serve, transfer response.
  Result<engine::ExecResult> Call(const std::string& request);
  Status CallStatus(const std::string& request);

  engine::StorageNode* node_;
  const LatencyModel* network_;
  std::unique_ptr<engine::StorageNode::Session> session_;
};

}  // namespace sphere::net

#endif  // SPHERE_NET_REMOTE_H_
