#include "net/packet.h"

#include <cstring>

#include "engine/row_batch.h"

namespace sphere::net {

void PacketWriter::WriteU16(uint16_t v) {
  buf_.push_back(static_cast<char>(v & 0xFF));
  buf_.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PacketWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PacketWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PacketWriter::WriteDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void PacketWriter::WriteString(std::string_view s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void PacketWriter::WriteValue(const Value& v) {
  if (v.is_null()) {
    WriteU8(0);
  } else if (v.is_int()) {
    WriteU8(1);
    WriteI64(v.AsInt());
  } else if (v.is_double()) {
    WriteU8(2);
    WriteDouble(v.AsDouble());
  } else {
    WriteU8(3);
    WriteString(v.AsString());
  }
}

Status PacketReader::Need(size_t n) const {
  if (pos_ + n > data_.size()) {
    return Status::Internal("truncated packet");
  }
  return Status::OK();
}

Result<uint8_t> PacketReader::ReadU8() {
  SPHERE_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> PacketReader::ReadU16() {
  SPHERE_RETURN_NOT_OK(Need(2));
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<uint32_t> PacketReader::ReadU32() {
  SPHERE_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<uint64_t> PacketReader::ReadU64() {
  SPHERE_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<int64_t> PacketReader::ReadI64() {
  SPHERE_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> PacketReader::ReadDouble() {
  SPHERE_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<std::string> PacketReader::ReadString() {
  SPHERE_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  SPHERE_RETURN_NOT_OK(Need(len));
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<Value> PacketReader::ReadValue() {
  SPHERE_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (tag) {
    case 0:
      return Value::Null();
    case 1: {
      SPHERE_ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Value(v);
    }
    case 2: {
      SPHERE_ASSIGN_OR_RETURN(double v, ReadDouble());
      return Value(v);
    }
    case 3: {
      SPHERE_ASSIGN_OR_RETURN(std::string v, ReadString());
      return Value(std::move(v));
    }
    default:
      return Status::Internal("bad value tag");
  }
}

std::string EncodeQuery(std::string_view sql_text,
                        const std::vector<Value>& params) {
  PacketWriter w;
  w.WriteU8(static_cast<uint8_t>(PacketType::kQuery));
  w.WriteString(sql_text);
  w.WriteU16(static_cast<uint16_t>(params.size()));
  for (const Value& p : params) w.WriteValue(p);
  return w.Take();
}

std::string EncodeCommand(PacketType type, std::string_view arg) {
  PacketWriter w;
  w.WriteU8(static_cast<uint8_t>(type));
  w.WriteString(arg);
  return w.Take();
}

Result<DecodedRequest> DecodeRequest(std::string_view data) {
  PacketReader r(data);
  DecodedRequest req;
  SPHERE_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
  req.type = static_cast<PacketType>(type);
  if (req.type == PacketType::kQuery) {
    SPHERE_ASSIGN_OR_RETURN(req.sql, r.ReadString());
    SPHERE_ASSIGN_OR_RETURN(uint16_t n, r.ReadU16());
    req.params.reserve(n);
    for (uint16_t i = 0; i < n; ++i) {
      SPHERE_ASSIGN_OR_RETURN(Value v, r.ReadValue());
      req.params.push_back(std::move(v));
    }
    return req;
  }
  SPHERE_ASSIGN_OR_RETURN(req.arg, r.ReadString());
  return req;
}

std::string EncodeExecResult(engine::ExecResult* result) {
  PacketWriter w;
  if (!result->is_query) {
    w.WriteU8(static_cast<uint8_t>(PacketType::kOk));
    w.WriteI64(result->affected_rows);
    w.WriteI64(result->last_insert_id);
    return w.Take();
  }
  w.WriteU8(static_cast<uint8_t>(PacketType::kResultSet));
  const auto& cols = result->result_set->columns();
  w.WriteU16(static_cast<uint16_t>(cols.size()));
  for (const auto& c : cols) w.WriteString(c);
  // The row count precedes the rows in the wire layout, so the proxy must
  // buffer the whole result before encoding. DrainResultSet pulls it through
  // the merge pipeline in moves of PipelineConfig::batch_size() rows.
  std::vector<Row> rows = engine::DrainResultSet(result->result_set.get());
  w.WriteU32(static_cast<uint32_t>(rows.size()));
  for (const Row& row : rows) {
    for (const Value& v : row) w.WriteValue(v);
  }
  // The drained batch is fully serialized; hand its storage back to the
  // recycler so the next projection/drain reuses it (no-op when pooling is
  // off).
  engine::RecycleRows(std::move(rows));
  return w.Take();
}

std::string EncodeError(const Status& status) {
  PacketWriter w;
  w.WriteU8(static_cast<uint8_t>(PacketType::kError));
  w.WriteU16(static_cast<uint16_t>(status.code()));
  w.WriteString(status.message());
  return w.Take();
}

size_t EncodedValueSize(const Value& v) {
  if (v.is_null()) return 1;
  if (v.is_int() || v.is_double()) return 1 + 8;
  return 1 + 4 + v.AsString().size();
}

size_t EncodedQuerySize(std::string_view sql_text,
                        const std::vector<Value>& params) {
  size_t n = 1 + 4 + sql_text.size() + 2;  // type + string header + u16 count
  for (const Value& p : params) n += EncodedValueSize(p);
  return n;
}

size_t EncodedErrorSize(const Status& status) {
  return 1 + 2 + 4 + status.message().size();
}

std::optional<size_t> TryEncodedExecResultSize(
    const engine::ExecResult& result) {
  if (!result.is_query) return 1 + 8 + 8;
  const std::vector<Row>* rows = result.result_set->MaterializedRows();
  if (rows == nullptr) return std::nullopt;
  size_t n = 1 + 2;
  for (const auto& c : result.result_set->columns()) n += 4 + c.size();
  n += 4;
  for (const Row& row : *rows) {
    for (const Value& v : row) n += EncodedValueSize(v);
  }
  return n;
}

Result<engine::ExecResult> DecodeResponse(std::string_view data) {
  PacketReader r(data);
  SPHERE_ASSIGN_OR_RETURN(uint8_t type_raw, r.ReadU8());
  auto type = static_cast<PacketType>(type_raw);
  switch (type) {
    case PacketType::kOk: {
      SPHERE_ASSIGN_OR_RETURN(int64_t affected, r.ReadI64());
      SPHERE_ASSIGN_OR_RETURN(int64_t last_id, r.ReadI64());
      return engine::ExecResult::Update(affected, last_id);
    }
    case PacketType::kResultSet: {
      SPHERE_ASSIGN_OR_RETURN(uint16_t ncols, r.ReadU16());
      std::vector<std::string> cols;
      cols.reserve(ncols);
      for (uint16_t i = 0; i < ncols; ++i) {
        SPHERE_ASSIGN_OR_RETURN(std::string c, r.ReadString());
        cols.push_back(std::move(c));
      }
      SPHERE_ASSIGN_OR_RETURN(uint32_t nrows, r.ReadU32());
      std::vector<Row> rows;
      rows.reserve(nrows);
      for (uint32_t i = 0; i < nrows; ++i) {
        Row row;
        row.reserve(ncols);
        for (uint16_t c = 0; c < ncols; ++c) {
          SPHERE_ASSIGN_OR_RETURN(Value v, r.ReadValue());
          row.push_back(std::move(v));
        }
        rows.push_back(std::move(row));
      }
      return engine::ExecResult::Query(std::make_unique<engine::VectorResultSet>(
          std::move(cols), std::move(rows)));
    }
    case PacketType::kError: {
      SPHERE_ASSIGN_OR_RETURN(uint16_t code, r.ReadU16());
      SPHERE_ASSIGN_OR_RETURN(std::string msg, r.ReadString());
      return Status(static_cast<StatusCode>(code), std::move(msg));
    }
    default:
      return Status::Internal("unexpected response packet type");
  }
}

}  // namespace sphere::net
