#include "net/pool.h"

#include <algorithm>

namespace sphere::net {

ConnectionPool::ConnectionPool(engine::StorageNode* node,
                               const LatencyModel* network, int max_size)
    : node_(node), network_(network), max_size_(std::max(1, max_size)) {}

ConnectionPool::~ConnectionPool() = default;

void ConnectionPool::Lease::Release() {
  if (pool_ != nullptr && conn_ != nullptr) {
    pool_->ReleaseConn(conn_);
  }
  pool_ = nullptr;
  conn_ = nullptr;
}

ConnectionPool::Lease ConnectionPool::Acquire() {
  MutexLock lk(mu_);
  for (;;) {
    if (!free_.empty()) {
      RemoteConnection* conn = free_.back();
      free_.pop_back();
      ++in_use_;
      peak_in_use_ = std::max(peak_in_use_, in_use_);
      return Lease(this, conn);
    }
    if (created_ < max_size_) {
      all_.push_back(std::make_unique<RemoteConnection>(node_, network_));
      ++created_;
      ++in_use_;
      peak_in_use_ = std::max(peak_in_use_, in_use_);
      return Lease(this, all_.back().get());
    }
    cv_.Wait(mu_);
  }
}

std::vector<ConnectionPool::Lease> ConnectionPool::AcquireMany(int n) {
  n = std::clamp(n, 1, max_size_);
  MutexLock lk(mu_);
  // Wait until the whole batch is available, then take it atomically: this is
  // the data-source lock of the paper's preparation phase.
  cv_.Wait(mu_, [&]() SPHERE_REQUIRES(mu_) {
    return static_cast<int>(free_.size()) + (max_size_ - created_) >= n;
  });
  std::vector<Lease> leases;
  leases.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (!free_.empty()) {
      RemoteConnection* conn = free_.back();
      free_.pop_back();
      ++in_use_;
      leases.emplace_back(this, conn);
    } else {
      all_.push_back(std::make_unique<RemoteConnection>(node_, network_));
      ++created_;
      ++in_use_;
      leases.emplace_back(this, all_.back().get());
    }
  }
  peak_in_use_ = std::max(peak_in_use_, in_use_);
  return leases;
}

int ConnectionPool::available() const {
  MutexLock lk(mu_);
  return static_cast<int>(free_.size()) + (max_size_ - created_);
}

int ConnectionPool::peak_in_use() const {
  MutexLock lk(mu_);
  return peak_in_use_;
}

void ConnectionPool::ReleaseConn(RemoteConnection* conn) {
  {
    MutexLock lk(mu_);
    free_.push_back(conn);
    --in_use_;
  }
  cv_.NotifyAll();
}

}  // namespace sphere::net
