#include "net/pool.h"

#include <algorithm>

#include "common/metrics.h"

namespace sphere::net {

ConnectionPool::ConnectionPool(engine::StorageNode* node,
                               const LatencyModel* network, int max_size)
    : node_(node), network_(network), max_size_(std::max(1, max_size)) {}

ConnectionPool::~ConnectionPool() = default;

void ConnectionPool::Lease::Release() {
  if (pool_ != nullptr && conn_ != nullptr) {
    pool_->ReleaseConn(conn_);
  }
  pool_ = nullptr;
  conn_ = nullptr;
}

ConnectionPool::Lease ConnectionPool::Acquire() {
  MutexLock lk(mu_);
  for (;;) {
    if (!free_.empty()) {
      RemoteConnection* conn = free_.back();
      free_.pop_back();
      ++in_use_;
      peak_in_use_ = std::max(peak_in_use_, in_use_);
      return Lease(this, conn);
    }
    if (created_ < max_size_) {
      all_.push_back(std::make_unique<RemoteConnection>(node_, network_));
      ++created_;
      ++in_use_;
      peak_in_use_ = std::max(peak_in_use_, in_use_);
      return Lease(this, all_.back().get());
    }
    cv_.Wait(mu_);
  }
}

std::vector<ConnectionPool::Lease> ConnectionPool::AcquireMany(int n) {
  n = std::clamp(n, 1, max_size_);
  MutexLock lk(mu_);
  // Wait until the whole batch is available, then take it atomically: this is
  // the data-source lock of the paper's preparation phase.
  cv_.Wait(mu_, [&]() SPHERE_REQUIRES(mu_) {
    return static_cast<int>(free_.size()) + (max_size_ - created_) >= n;
  });
  std::vector<Lease> leases;
  leases.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (!free_.empty()) {
      RemoteConnection* conn = free_.back();
      free_.pop_back();
      ++in_use_;
      leases.emplace_back(this, conn);
    } else {
      all_.push_back(std::make_unique<RemoteConnection>(node_, network_));
      ++created_;
      ++in_use_;
      leases.emplace_back(this, all_.back().get());
    }
  }
  peak_in_use_ = std::max(peak_in_use_, in_use_);
  return leases;
}

int ConnectionPool::available() const {
  MutexLock lk(mu_);
  return static_cast<int>(free_.size()) + (max_size_ - created_);
}

int ConnectionPool::in_use() const {
  MutexLock lk(mu_);
  return in_use_;
}

int ConnectionPool::peak_in_use() const {
  MutexLock lk(mu_);
  return peak_in_use_;
}

void ConnectionPool::ReleaseConn(RemoteConnection* conn) {
  {
    MutexLock lk(mu_);
    free_.push_back(conn);
    --in_use_;
  }
  cv_.NotifyAll();
}

DataSource::DataSource(std::string name, engine::StorageNode* node,
                       const LatencyModel* network, int pool_size)
    : name_(std::move(name)), node_(node), pool_(node, network, pool_size) {
  // Probes run at Snapshot time with no locks held, so they may take the
  // pool's mutex even though the registry's own lock is a common leaf.
  auto& registry = metrics::Registry::Instance();
  registry.PublishProbe("conn_pool." + name_ + ".in_use", this,
                        [this] { return static_cast<int64_t>(pool_.in_use()); });
  registry.PublishProbe("conn_pool." + name_ + ".available", this, [this] {
    return static_cast<int64_t>(pool_.available());
  });
  registry.PublishProbe("conn_pool." + name_ + ".peak_in_use", this, [this] {
    return static_cast<int64_t>(pool_.peak_in_use());
  });
}

DataSource::~DataSource() {
  metrics::Registry::Instance().UnpublishProbes(this);
}

}  // namespace sphere::net
