#ifndef SPHERE_NET_POOL_H_
#define SPHERE_NET_POOL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "net/remote.h"

namespace sphere::net {

/// Bounded pool of RemoteConnections to one storage node.
///
/// AcquireMany implements the paper's deadlock-free connection acquisition
/// (§VI-D): a query takes all the connections it needs for one data source
/// atomically, so two queries can never hold-and-wait against each other.
class ConnectionPool {
 public:
  ConnectionPool(engine::StorageNode* node, const LatencyModel* network,
                 int max_size);
  ~ConnectionPool();

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  /// RAII connection lease; returns to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(ConnectionPool* pool, RemoteConnection* conn)
        : pool_(pool), conn_(conn) {}
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this == &other) return *this;
      Release();
      pool_ = other.pool_;
      conn_ = other.conn_;
      other.pool_ = nullptr;
      other.conn_ = nullptr;
      return *this;
    }
    ~Lease() { Release(); }

    RemoteConnection* operator->() { return conn_; }
    RemoteConnection* get() { return conn_; }
    bool valid() const { return conn_ != nullptr; }
    void Release();

   private:
    ConnectionPool* pool_ = nullptr;
    RemoteConnection* conn_ = nullptr;
  };

  /// Blocks until one connection is free.
  Lease Acquire() SPHERE_EXCLUDES(mu_);

  /// Blocks until `n` connections are free, then takes them all atomically.
  /// n is clamped to the pool size.
  std::vector<Lease> AcquireMany(int n) SPHERE_EXCLUDES(mu_);

  int max_size() const { return max_size_; }
  int available() const SPHERE_EXCLUDES(mu_);
  /// Number of currently leased connections (observability).
  int in_use() const SPHERE_EXCLUDES(mu_);
  /// Peak number of simultaneously leased connections (observability).
  int peak_in_use() const SPHERE_EXCLUDES(mu_);

 private:
  void ReleaseConn(RemoteConnection* conn) SPHERE_EXCLUDES(mu_);

  engine::StorageNode* const node_;
  const LatencyModel* network_;
  const int max_size_;
  mutable Mutex mu_{LockRank::kEngine, "net/pool"};
  CondVar cv_;
  std::vector<std::unique_ptr<RemoteConnection>> all_ SPHERE_GUARDED_BY(mu_);
  std::vector<RemoteConnection*> free_ SPHERE_GUARDED_BY(mu_);
  int created_ SPHERE_GUARDED_BY(mu_) = 0;
  int in_use_ SPHERE_GUARDED_BY(mu_) = 0;
  int peak_in_use_ SPHERE_GUARDED_BY(mu_) = 0;
};

/// A named, network-attached data source: the unit the sharding middleware
/// routes to. Owns the connection pool; the storage node itself is owned by
/// the cluster/test harness.
class DataSource {
 public:
  /// Publishes `conn_pool.<name>.{in_use,available,peak_in_use}` gauge
  /// probes into the metrics registry for its lifetime.
  DataSource(std::string name, engine::StorageNode* node,
             const LatencyModel* network, int pool_size = 64);
  ~DataSource();

  DataSource(const DataSource&) = delete;
  DataSource& operator=(const DataSource&) = delete;

  const std::string& name() const { return name_; }
  engine::StorageNode* node() { return node_; }
  ConnectionPool& pool() { return pool_; }

 private:
  std::string name_;
  engine::StorageNode* node_;
  ConnectionPool pool_;
};

}  // namespace sphere::net

#endif  // SPHERE_NET_POOL_H_
