#ifndef SPHERE_NET_LATENCY_H_
#define SPHERE_NET_LATENCY_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace sphere::net {

/// Parameters of the simulated network between processes (application,
/// middleware proxy, storage nodes).
///
/// This stands in for the paper's cloud LAN: every message pays a fixed
/// per-hop cost plus a size-proportional serialization/bandwidth cost.
/// The JDBC-vs-Proxy gap, the proxy bottleneck of Fig. 12 and the MaxCon
/// effects of Fig. 15 all emerge from these two constants.
struct NetworkConfig {
  int64_t hop_latency_us = 40;   ///< one-way fixed latency per message
  int64_t per_kb_latency_us = 4; ///< additional cost per KiB transferred

  /// A zero-latency network (unit tests that don't measure time).
  static NetworkConfig Zero() { return NetworkConfig{0, 0}; }
};

/// Applies simulated transfer delays and counts traffic.
class LatencyModel {
 public:
  explicit LatencyModel(NetworkConfig config = NetworkConfig())
      : config_(config) {}

  /// Blocks the caller for the simulated transfer time of `bytes`.
  void Transfer(size_t bytes) const {
    int64_t us = config_.hop_latency_us +
                 (static_cast<int64_t>(bytes) * config_.per_kb_latency_us) / 1024;
    if (us > 0) SleepMicros(us);
    bytes_transferred_.fetch_add(static_cast<int64_t>(bytes),
                                 std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
  }

  const NetworkConfig& config() const { return config_; }
  int64_t bytes_transferred() const { return bytes_transferred_.load(); }
  int64_t messages() const { return messages_.load(); }

 private:
  NetworkConfig config_;
  mutable std::atomic<int64_t> bytes_transferred_{0};
  mutable std::atomic<int64_t> messages_{0};
};

}  // namespace sphere::net

#endif  // SPHERE_NET_LATENCY_H_
