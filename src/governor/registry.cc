#include "governor/registry.h"

#include <algorithm>

namespace sphere::governor {

std::string Registry::ParentOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return "/";
  return path.substr(0, slash);
}

Registry::SessionId Registry::Connect() {
  MutexLock lk(mu_);
  return next_session_++;
}

void Registry::Disconnect(SessionId session) {
  std::vector<std::pair<Watcher, RegistryEvent>> to_fire;
  {
    MutexLock lk(mu_);
    std::vector<std::string> doomed;
    for (const auto& [path, node] : nodes_) {
      if (node.ephemeral_owner == session) doomed.push_back(path);
    }
    for (const auto& path : doomed) {
      std::string data = nodes_[path].data;
      nodes_.erase(path);
      FireLocked(RegistryEvent::Type::kDeleted, path, data, &to_fire);
    }
    std::vector<std::string> lock_names;
    for (const auto& [name, owner] : locks_) {
      if (owner == session) lock_names.push_back(name);
    }
    for (const auto& name : lock_names) locks_.erase(name);
  }
  for (auto& [fn, ev] : to_fire) fn(ev);
}

void Registry::FireLocked(RegistryEvent::Type type, const std::string& path,
                          const std::string& data,
                          std::vector<std::pair<Watcher, RegistryEvent>>* out) {
  std::string parent = ParentOf(path);
  for (const auto& [id, entry] : watches_) {
    if (entry.path == path || entry.path == parent) {
      out->push_back({entry.fn, RegistryEvent{type, path, data}});
    }
  }
}

Status Registry::Create(const std::string& path, const std::string& data,
                        SessionId ephemeral_owner) {
  std::vector<std::pair<Watcher, RegistryEvent>> to_fire;
  {
    MutexLock lk(mu_);
    if (nodes_.count(path)) return Status::AlreadyExists(path);
    // Create missing ancestors as persistent empty nodes.
    std::string parent = ParentOf(path);
    while (parent != "/" && !nodes_.count(parent)) {
      nodes_[parent] = Node{"", 0};
      parent = ParentOf(parent);
    }
    nodes_[path] = Node{data, ephemeral_owner};
    FireLocked(RegistryEvent::Type::kCreated, path, data, &to_fire);
  }
  for (auto& [fn, ev] : to_fire) fn(ev);
  return Status::OK();
}

Status Registry::Put(const std::string& path, const std::string& data) {
  std::vector<std::pair<Watcher, RegistryEvent>> to_fire;
  {
    MutexLock lk(mu_);
    auto it = nodes_.find(path);
    if (it == nodes_.end()) {
      std::string parent = ParentOf(path);
      while (parent != "/" && !nodes_.count(parent)) {
        nodes_[parent] = Node{"", 0};
        parent = ParentOf(parent);
      }
      nodes_[path] = Node{data, 0};
      FireLocked(RegistryEvent::Type::kCreated, path, data, &to_fire);
    } else {
      it->second.data = data;
      FireLocked(RegistryEvent::Type::kUpdated, path, data, &to_fire);
    }
  }
  for (auto& [fn, ev] : to_fire) fn(ev);
  return Status::OK();
}

Result<std::string> Registry::Get(const std::string& path) const {
  MutexLock lk(mu_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound(path);
  return it->second.data;
}

bool Registry::Exists(const std::string& path) const {
  MutexLock lk(mu_);
  return nodes_.count(path) > 0;
}

Status Registry::Delete(const std::string& path) {
  std::vector<std::pair<Watcher, RegistryEvent>> to_fire;
  {
    MutexLock lk(mu_);
    auto it = nodes_.find(path);
    if (it == nodes_.end()) return Status::NotFound(path);
    // Refuse to delete nodes with children (ZooKeeper semantics).
    std::string prefix = path + "/";
    auto next = nodes_.upper_bound(path);
    if (next != nodes_.end() && next->first.compare(0, prefix.size(), prefix) == 0) {
      return Status::InvalidArgument("node has children: " + path);
    }
    std::string data = it->second.data;
    nodes_.erase(it);
    FireLocked(RegistryEvent::Type::kDeleted, path, data, &to_fire);
  }
  for (auto& [fn, ev] : to_fire) fn(ev);
  return Status::OK();
}

std::vector<std::string> Registry::GetChildren(const std::string& path) const {
  MutexLock lk(mu_);
  std::vector<std::string> out;
  std::string prefix = path == "/" ? "/" : path + "/";
  for (auto it = nodes_.lower_bound(prefix); it != nodes_.end(); ++it) {
    const std::string& p = it->first;
    if (p.compare(0, prefix.size(), prefix) != 0) break;
    std::string rest = p.substr(prefix.size());
    if (rest.find('/') == std::string::npos) out.push_back(rest);
  }
  return out;
}

int64_t Registry::Watch(const std::string& path, Watcher watcher) {
  MutexLock lk(mu_);
  int64_t id = next_watch_++;
  watches_[id] = WatchEntry{path, std::move(watcher)};
  return id;
}

void Registry::Unwatch(int64_t watch_id) {
  MutexLock lk(mu_);
  watches_.erase(watch_id);
}

bool Registry::TryLock(const std::string& name, SessionId session) {
  MutexLock lk(mu_);
  auto [it, inserted] = locks_.try_emplace(name, session);
  return inserted;
}

void Registry::Unlock(const std::string& name, SessionId session) {
  MutexLock lk(mu_);
  auto it = locks_.find(name);
  if (it != locks_.end() && it->second == session) locks_.erase(it);
}

}  // namespace sphere::governor
