#include "governor/health.h"

#include "common/clock.h"
#include "common/metrics.h"

namespace sphere::governor {

HealthDetector::HealthDetector(int64_t check_interval_ms, int64_t timeout_ms)
    : check_interval_ms_(check_interval_ms), timeout_ms_(timeout_ms) {}

HealthDetector::~HealthDetector() {
  Stop();
  // After this returns no probe can observe a dead detector: unpublish
  // removes the entries before members are torn down.
  metrics::Registry::Instance().UnpublishProbes(this);
}

void HealthDetector::RegisterInstance(const std::string& name) {
  {
    MutexLock lk(mu_);
    instances_[name] = Instance{NowMicros(), State::kUp};
  }
  // Health surfaced as gauges (DESIGN.md §13): state is 1=UP / 0=DOWN, age is
  // staleness of the last heartbeat. Published outside mu_; the probes take
  // mu_ themselves when the registry evaluates them at snapshot time.
  auto& registry = metrics::Registry::Instance();
  registry.PublishProbe("health." + name + ".state", this, [this, name] {
    return static_cast<int64_t>(IsHealthy(name) ? 1 : 0);
  });
  registry.PublishProbe("health." + name + ".heartbeat_age_ms", this,
                        [this, name] { return HeartbeatAgeMs(name); });
}

void HealthDetector::UnregisterInstance(const std::string& name) {
  {
    MutexLock lk(mu_);
    instances_.erase(name);
  }
  auto& registry = metrics::Registry::Instance();
  registry.UnpublishProbe("health." + name + ".state", this);
  registry.UnpublishProbe("health." + name + ".heartbeat_age_ms", this);
}

void HealthDetector::Heartbeat(const std::string& name) {
  StateChangeCallback cb;
  {
    MutexLock lk(mu_);
    auto it = instances_.find(name);
    if (it == instances_.end()) return;
    it->second.last_heartbeat_us = NowMicros();
    if (it->second.state == State::kDown) {
      it->second.state = State::kUp;
      cb = callback_;
    }
  }
  if (cb) cb(name, State::kUp);
}

bool HealthDetector::IsHealthy(const std::string& name) const {
  MutexLock lk(mu_);
  auto it = instances_.find(name);
  return it != instances_.end() && it->second.state == State::kUp;
}

int64_t HealthDetector::HeartbeatAgeMs(const std::string& name) const {
  MutexLock lk(mu_);
  auto it = instances_.find(name);
  if (it == instances_.end()) return -1;
  return (NowMicros() - it->second.last_heartbeat_us) / 1000;
}

std::vector<std::string> HealthDetector::HealthyInstances() const {
  MutexLock lk(mu_);
  std::vector<std::string> out;
  for (const auto& [name, inst] : instances_) {
    if (inst.state == State::kUp) out.push_back(name);
  }
  return out;
}

void HealthDetector::SetStateChangeCallback(StateChangeCallback cb) {
  MutexLock lk(mu_);
  callback_ = std::move(cb);
}

void HealthDetector::RunCheckOnce() {
  int64_t check_start_us = NowMicros();
  std::vector<std::string> went_down;
  StateChangeCallback cb;
  {
    MutexLock lk(mu_);
    int64_t now = NowMicros();
    for (auto& [name, inst] : instances_) {
      if (inst.state == State::kUp &&
          now - inst.last_heartbeat_us > timeout_ms_ * 1000) {
        inst.state = State::kDown;
        went_down.push_back(name);
      }
    }
    cb = callback_;
  }
  if (cb) {
    for (const auto& name : went_down) cb(name, State::kDown);
  }
  metrics::Registry::Instance()
      .GetGauge("health.check.last_run_us")
      ->Set(NowMicros() - check_start_us);
}

void HealthDetector::Start() {
  MutexLock lk(mu_);
  if (running_) return;
  running_ = true;
  // analyze-exempt(raw-thread): dedicated monitor thread; it parks on cv_
  // for check_interval_ms at a time, which would wedge a pool worker
  thread_ = std::thread([this] {
    for (;;) {
      {
        MutexLock lk(mu_);
        cv_.WaitFor(mu_, std::chrono::milliseconds(check_interval_ms_),
                    [this]() SPHERE_REQUIRES(mu_) { return !running_; });
        if (!running_) return;
      }
      RunCheckOnce();
    }
  });
}

void HealthDetector::Stop() {
  {
    MutexLock lk(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

}  // namespace sphere::governor
