#ifndef SPHERE_GOVERNOR_HEALTH_H_
#define SPHERE_GOVERNOR_HEALTH_H_

#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "governor/registry.h"

namespace sphere::governor {

/// Periodic liveness monitor for proxy instances and storage nodes
/// (paper §V-B). Instances publish heartbeats; a detector thread marks an
/// instance DOWN when its heartbeat is older than the timeout and fires the
/// state-change callback so the cluster can reconfigure (e.g. disable the
/// data source, promote a replica).
class HealthDetector {
 public:
  enum class State { kUp, kDown };
  /// (instance, new state)
  using StateChangeCallback = std::function<void(const std::string&, State)>;

  /// `check_interval_ms`: detector poll period; `timeout_ms`: heartbeat age
  /// at which an instance is declared down.
  HealthDetector(int64_t check_interval_ms, int64_t timeout_ms);
  ~HealthDetector();

  /// Registers an instance (initially UP with a fresh heartbeat).
  void RegisterInstance(const std::string& name) SPHERE_EXCLUDES(mu_);
  void UnregisterInstance(const std::string& name) SPHERE_EXCLUDES(mu_);

  /// Records a heartbeat; revives a DOWN instance.
  void Heartbeat(const std::string& name) SPHERE_EXCLUDES(mu_);

  bool IsHealthy(const std::string& name) const SPHERE_EXCLUDES(mu_);
  std::vector<std::string> HealthyInstances() const SPHERE_EXCLUDES(mu_);

  /// Milliseconds since `name`'s last heartbeat, or -1 if unregistered.
  /// Backs the `health.<name>.heartbeat_age_ms` gauge probe.
  int64_t HeartbeatAgeMs(const std::string& name) const SPHERE_EXCLUDES(mu_);

  void SetStateChangeCallback(StateChangeCallback cb) SPHERE_EXCLUDES(mu_);

  /// Starts/stops the background detector thread. RunCheckOnce is exposed so
  /// tests can drive detection deterministically without sleeping.
  void Start() SPHERE_EXCLUDES(mu_);
  void Stop() SPHERE_EXCLUDES(mu_);
  void RunCheckOnce() SPHERE_EXCLUDES(mu_);

 private:
  struct Instance {
    int64_t last_heartbeat_us;
    State state = State::kUp;
  };

  const int64_t check_interval_ms_;
  const int64_t timeout_ms_;
  mutable Mutex mu_{LockRank::kGovernor, "governor/health"};
  CondVar cv_;
  std::map<std::string, Instance> instances_ SPHERE_GUARDED_BY(mu_);
  StateChangeCallback callback_ SPHERE_GUARDED_BY(mu_);
  // analyze-exempt(guarded-by): started/joined only from Start/Stop, which
  // callers serialize. analyze-exempt(raw-thread): the detector needs a
  // dedicated long-lived thread that blocks on cv_, not a pool task
  std::thread thread_;
  bool running_ SPHERE_GUARDED_BY(mu_) = false;
};

}  // namespace sphere::governor

#endif  // SPHERE_GOVERNOR_HEALTH_H_
