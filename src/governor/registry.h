#ifndef SPHERE_GOVERNOR_REGISTRY_H_
#define SPHERE_GOVERNOR_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"

namespace sphere::governor {

/// Event delivered to watchers.
struct RegistryEvent {
  enum class Type { kCreated, kUpdated, kDeleted };
  Type type;
  std::string path;
  std::string data;
};

/// In-process hierarchical configuration registry — the ZooKeeper stand-in
/// behind the Governor (paper §V-A).
///
/// Supports persistent and ephemeral znodes (ephemerals vanish when their
/// owning session disconnects, which is how health detection notices a dead
/// ShardingSphere-Proxy instance), child listing, watches on a path and its
/// direct children, and named mutual-exclusion locks.
class Registry {
 public:
  using SessionId = int64_t;
  using Watcher = std::function<void(const RegistryEvent&)>;

  Registry() = default;

  /// Opens a session (owner handle for ephemeral nodes and locks).
  SessionId Connect() SPHERE_EXCLUDES(mu_);
  /// Closes a session: its ephemeral nodes are deleted (watch events fire)
  /// and its locks released.
  void Disconnect(SessionId session) SPHERE_EXCLUDES(mu_);

  /// Creates a node; parents are created implicitly (persistent, empty).
  /// AlreadyExists when the path is taken.
  Status Create(const std::string& path, const std::string& data,
                SessionId ephemeral_owner = 0) SPHERE_EXCLUDES(mu_);
  /// Sets the node's data, creating it (persistent) when absent.
  Status Put(const std::string& path, const std::string& data)
      SPHERE_EXCLUDES(mu_);
  Result<std::string> Get(const std::string& path) const SPHERE_EXCLUDES(mu_);
  bool Exists(const std::string& path) const SPHERE_EXCLUDES(mu_);
  Status Delete(const std::string& path) SPHERE_EXCLUDES(mu_);
  /// Direct children names (not full paths), sorted.
  std::vector<std::string> GetChildren(const std::string& path) const
      SPHERE_EXCLUDES(mu_);

  /// Registers a watcher on `path`: fires on changes to the node itself and
  /// to its direct children. Returns a watch id for Unwatch.
  int64_t Watch(const std::string& path, Watcher watcher) SPHERE_EXCLUDES(mu_);
  void Unwatch(int64_t watch_id) SPHERE_EXCLUDES(mu_);

  /// Non-blocking named lock; reentrancy is not supported.
  bool TryLock(const std::string& name, SessionId session)
      SPHERE_EXCLUDES(mu_);
  void Unlock(const std::string& name, SessionId session)
      SPHERE_EXCLUDES(mu_);

 private:
  struct Node {
    std::string data;
    SessionId ephemeral_owner = 0;  // 0 = persistent
  };
  struct WatchEntry {
    std::string path;
    Watcher fn;
  };

  static std::string ParentOf(const std::string& path);
  /// Collects the watchers to fire; callers invoke them after unlocking so a
  /// watcher can safely re-enter the registry.
  void FireLocked(RegistryEvent::Type type, const std::string& path,
                  const std::string& data,
                  std::vector<std::pair<Watcher, RegistryEvent>>* out)
      SPHERE_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kGovernor, "governor/registry"};
  std::map<std::string, Node> nodes_ SPHERE_GUARDED_BY(mu_);
  std::map<int64_t, WatchEntry> watches_ SPHERE_GUARDED_BY(mu_);
  std::map<std::string, SessionId> locks_ SPHERE_GUARDED_BY(mu_);
  SessionId next_session_ SPHERE_GUARDED_BY(mu_) = 1;
  int64_t next_watch_ SPHERE_GUARDED_BY(mu_) = 1;
};

}  // namespace sphere::governor

#endif  // SPHERE_GOVERNOR_REGISTRY_H_
