#ifndef SPHERE_GOVERNOR_REGISTRY_H_
#define SPHERE_GOVERNOR_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sphere::governor {

/// Event delivered to watchers.
struct RegistryEvent {
  enum class Type { kCreated, kUpdated, kDeleted };
  Type type;
  std::string path;
  std::string data;
};

/// In-process hierarchical configuration registry — the ZooKeeper stand-in
/// behind the Governor (paper §V-A).
///
/// Supports persistent and ephemeral znodes (ephemerals vanish when their
/// owning session disconnects, which is how health detection notices a dead
/// ShardingSphere-Proxy instance), child listing, watches on a path and its
/// direct children, and named mutual-exclusion locks.
class Registry {
 public:
  using SessionId = int64_t;
  using Watcher = std::function<void(const RegistryEvent&)>;

  Registry() = default;

  /// Opens a session (owner handle for ephemeral nodes and locks).
  SessionId Connect();
  /// Closes a session: its ephemeral nodes are deleted (watch events fire)
  /// and its locks released.
  void Disconnect(SessionId session);

  /// Creates a node; parents are created implicitly (persistent, empty).
  /// AlreadyExists when the path is taken.
  Status Create(const std::string& path, const std::string& data,
                SessionId ephemeral_owner = 0);
  /// Sets the node's data, creating it (persistent) when absent.
  Status Put(const std::string& path, const std::string& data);
  Result<std::string> Get(const std::string& path) const;
  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);
  /// Direct children names (not full paths), sorted.
  std::vector<std::string> GetChildren(const std::string& path) const;

  /// Registers a watcher on `path`: fires on changes to the node itself and
  /// to its direct children. Returns a watch id for Unwatch.
  int64_t Watch(const std::string& path, Watcher watcher);
  void Unwatch(int64_t watch_id);

  /// Non-blocking named lock; reentrancy is not supported.
  bool TryLock(const std::string& name, SessionId session);
  void Unlock(const std::string& name, SessionId session);

 private:
  struct Node {
    std::string data;
    SessionId ephemeral_owner = 0;  // 0 = persistent
  };
  struct WatchEntry {
    std::string path;
    Watcher fn;
  };

  static std::string ParentOf(const std::string& path);
  void FireLocked(RegistryEvent::Type type, const std::string& path,
                  const std::string& data,
                  std::vector<std::pair<Watcher, RegistryEvent>>* out);

  mutable std::recursive_mutex mu_;
  std::map<std::string, Node> nodes_;
  std::map<int64_t, WatchEntry> watches_;
  std::map<std::string, SessionId> locks_;
  SessionId next_session_ = 1;
  int64_t next_watch_ = 1;
};

}  // namespace sphere::governor

#endif  // SPHERE_GOVERNOR_REGISTRY_H_
