#ifndef SPHERE_GOVERNOR_CONFIG_MANAGER_H_
#define SPHERE_GOVERNOR_CONFIG_MANAGER_H_

#include <string>
#include <vector>

#include "governor/registry.h"

namespace sphere::governor {

/// Persists middleware configuration in the registry under a conventional
/// layout (paper §V-A):
///   /config/datasources/<name>      data source descriptor
///   /config/rules/<logic_table>     serialized sharding rule
///   /config/props/<key>             global properties (MaxCon etc.)
///   /status/instances/<id>          ephemeral proxy instance markers
class ConfigManager {
 public:
  explicit ConfigManager(Registry* registry) : registry_(registry) {}

  Status SaveDataSource(const std::string& name, const std::string& descriptor) {
    return registry_->Put("/config/datasources/" + name, descriptor);
  }
  std::vector<std::string> ListDataSources() const {
    return registry_->GetChildren("/config/datasources");
  }
  Result<std::string> GetDataSource(const std::string& name) const {
    return registry_->Get("/config/datasources/" + name);
  }
  Status DropDataSource(const std::string& name) {
    return registry_->Delete("/config/datasources/" + name);
  }

  Status SaveRule(const std::string& logic_table, const std::string& rule) {
    return registry_->Put("/config/rules/" + logic_table, rule);
  }
  Result<std::string> GetRule(const std::string& logic_table) const {
    return registry_->Get("/config/rules/" + logic_table);
  }
  Status DropRule(const std::string& logic_table) {
    return registry_->Delete("/config/rules/" + logic_table);
  }
  std::vector<std::string> ListRules() const {
    return registry_->GetChildren("/config/rules");
  }

  Status SetProperty(const std::string& key, const std::string& value) {
    return registry_->Put("/config/props/" + key, value);
  }
  std::string GetProperty(const std::string& key,
                          const std::string& fallback = "") const {
    auto r = registry_->Get("/config/props/" + key);
    return r.ok() ? r.value() : fallback;
  }

  /// Marks a running instance; the node is ephemeral so a dead instance
  /// disappears with its registry session.
  Status RegisterInstance(const std::string& id, Registry::SessionId session) {
    return registry_->Create("/status/instances/" + id, "up", session);
  }
  std::vector<std::string> LiveInstances() const {
    return registry_->GetChildren("/status/instances");
  }

  Registry* registry() { return registry_; }

 private:
  Registry* registry_;
};

}  // namespace sphere::governor

#endif  // SPHERE_GOVERNOR_CONFIG_MANAGER_H_
