#include "raft/raft.h"

#include <algorithm>

namespace sphere::raft {

RaftGroup::RaftGroup(int num_replicas, const net::LatencyModel* network,
                     ApplyFn apply)
    : network_(network), apply_(std::move(apply)) {
  if (num_replicas < 1) num_replicas = 1;
  replicas_.reserve(static_cast<size_t>(num_replicas));
  for (int i = 0; i < num_replicas; ++i) {
    Replica r;
    r.id = i;
    replicas_.push_back(std::move(r));
  }
}

int RaftGroup::leader() const {
  MutexLock lk(mu_);
  return leader_;
}

int64_t RaftGroup::term() const {
  MutexLock lk(mu_);
  return replicas_[static_cast<size_t>(leader_)].current_term;
}

std::vector<LogEntry> RaftGroup::CommittedLog(int id) const {
  MutexLock lk(mu_);
  const Replica& r = replicas_[static_cast<size_t>(id)];
  return std::vector<LogEntry>(
      r.log.begin(), r.log.begin() + static_cast<long>(r.commit_index));
}

void RaftGroup::Disconnect(int id) {
  MutexLock lk(mu_);
  replicas_[static_cast<size_t>(id)].connected = false;
}

void RaftGroup::Reconnect(int id) {
  MutexLock lk(mu_);
  replicas_[static_cast<size_t>(id)].connected = true;
}

bool RaftGroup::IsConnected(int id) const {
  MutexLock lk(mu_);
  return replicas_[static_cast<size_t>(id)].connected;
}

bool RaftGroup::AppendEntries(Replica* follower, int64_t term,
                              int64_t prev_index, int64_t prev_term,
                              const std::vector<LogEntry>& entries,
                              int64_t leader_commit) {
  size_t bytes = 64;
  for (const auto& e : entries) bytes += e.command.size() + 16;
  Rpc(bytes);  // request
  if (!follower->connected) return false;
  if (term < follower->current_term) {
    Rpc(32);
    return false;
  }
  follower->current_term = term;
  // Log-matching check.
  if (prev_index > 0) {
    if (static_cast<int64_t>(follower->log.size()) < prev_index ||
        follower->log[static_cast<size_t>(prev_index - 1)].term != prev_term) {
      Rpc(32);  // reject response
      return false;
    }
  }
  // Truncate conflicts, then append.
  follower->log.resize(static_cast<size_t>(prev_index));
  for (const auto& e : entries) follower->log.push_back(e);
  if (leader_commit > follower->commit_index) {
    follower->commit_index =
        std::min<int64_t>(leader_commit, static_cast<int64_t>(follower->log.size()));
    ApplyCommitted(follower);
  }
  Rpc(32);  // ack
  return true;
}

bool RaftGroup::RequestVote(Replica* voter, int64_t term, int candidate_id,
                            int64_t last_log_index, int64_t last_log_term) {
  Rpc(48);
  if (!voter->connected) return false;
  if (term < voter->current_term) {
    Rpc(16);
    return false;
  }
  if (term > voter->current_term) {
    voter->current_term = term;
    voter->voted_for = -1;
  }
  // Up-to-date restriction (Raft §5.4.1).
  int64_t my_last_term = voter->log.empty() ? 0 : voter->log.back().term;
  int64_t my_last_index = static_cast<int64_t>(voter->log.size());
  bool up_to_date = last_log_term > my_last_term ||
                    (last_log_term == my_last_term &&
                     last_log_index >= my_last_index);
  bool grant = up_to_date &&
               (voter->voted_for == -1 || voter->voted_for == candidate_id);
  if (grant) voter->voted_for = candidate_id;
  Rpc(16);
  return grant;
}

void RaftGroup::ApplyCommitted(Replica* replica) {
  while (replica->last_applied < replica->commit_index) {
    const LogEntry& e = replica->log[static_cast<size_t>(replica->last_applied)];
    if (apply_) apply_(replica->id, e.command);
    ++replica->last_applied;
  }
}

Result<int64_t> RaftGroup::Propose(const std::string& command) {
  MutexLock lk(mu_);
  Replica& leader = replicas_[static_cast<size_t>(leader_)];
  if (!leader.connected) {
    return Status::Unavailable("raft leader is down");
  }
  LogEntry entry{leader.current_term, command};
  int64_t prev_index = static_cast<int64_t>(leader.log.size());
  int64_t prev_term = leader.log.empty() ? 0 : leader.log.back().term;
  leader.log.push_back(entry);

  // Replicate to every follower; count acks.
  int acks = 1;  // self
  for (auto& follower : replicas_) {
    if (follower.id == leader.id) continue;
    if (AppendEntries(&follower, leader.current_term, prev_index, prev_term,
                      {entry}, leader.commit_index)) {
      ++acks;
    } else if (follower.connected) {
      // Log mismatch: walk back and retransmit the whole suffix (simplified
      // nextIndex backtracking).
      int64_t from = prev_index;
      while (from > 0) {
        --from;
        int64_t pt = from == 0 ? 0 : leader.log[static_cast<size_t>(from - 1)].term;
        std::vector<LogEntry> suffix(leader.log.begin() + static_cast<long>(from),
                                     leader.log.end());
        if (AppendEntries(&follower, leader.current_term, from, pt, suffix,
                          leader.commit_index)) {
          ++acks;
          break;
        }
      }
    }
  }

  int majority = static_cast<int>(replicas_.size()) / 2 + 1;
  if (acks < majority) {
    // Not committed: the entry stays in the leader log uncommitted (it may
    // commit later after reconnects); the client sees a failure.
    return Status::Unavailable("raft: no majority (" + std::to_string(acks) +
                               "/" + std::to_string(replicas_.size()) + ")");
  }
  leader.commit_index = static_cast<int64_t>(leader.log.size());
  ApplyCommitted(&leader);
  // Followers learn the commit index with the next heartbeat; propagate now
  // so reads-from-followers in tests see the result.
  for (auto& follower : replicas_) {
    if (follower.id == leader.id || !follower.connected) continue;
    if (static_cast<int64_t>(follower.log.size()) >= leader.commit_index) {
      follower.commit_index = leader.commit_index;
      ApplyCommitted(&follower);
    }
  }
  return leader.commit_index;
}

bool RaftGroup::TriggerElection(int candidate) {
  MutexLock lk(mu_);
  Replica& cand = replicas_[static_cast<size_t>(candidate)];
  if (!cand.connected) return false;
  cand.current_term += 1;
  cand.voted_for = candidate;
  int64_t last_term = cand.log.empty() ? 0 : cand.log.back().term;
  int64_t last_index = static_cast<int64_t>(cand.log.size());
  int votes = 1;
  for (auto& voter : replicas_) {
    if (voter.id == candidate) continue;
    if (RequestVote(&voter, cand.current_term, candidate, last_index, last_term)) {
      ++votes;
    }
  }
  int majority = static_cast<int>(replicas_.size()) / 2 + 1;
  if (votes >= majority) {
    leader_ = candidate;
    return true;
  }
  return false;
}

void RaftGroup::CatchUp(int id) {
  MutexLock lk(mu_);
  Replica& leader = replicas_[static_cast<size_t>(leader_)];
  Replica& follower = replicas_[static_cast<size_t>(id)];
  if (!follower.connected || id == leader_) return;
  follower.current_term = leader.current_term;
  follower.log = leader.log;
  follower.commit_index = leader.commit_index;
  ApplyCommitted(&follower);
}

}  // namespace sphere::raft
