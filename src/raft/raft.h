#ifndef SPHERE_RAFT_RAFT_H_
#define SPHERE_RAFT_RAFT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "net/latency.h"

namespace sphere::raft {

/// One replicated log entry.
struct LogEntry {
  int64_t term = 0;
  std::string command;
};

/// The consensus substrate behind the new-architecture-database baseline
/// (TiDB's multi-Raft storage, CockroachDB's ranges). A deliberately
/// synchronous simulation: RPCs are function calls that pay simulated network
/// latency, so a committed write costs what Raft replication costs — one
/// round to a majority — which is exactly the overhead the paper attributes
/// to the new-architecture systems.
///
/// Implements the core Raft rules: leader append, log-matching consistency
/// check on AppendEntries, majority commit, term-checked RequestVote with the
/// up-to-date-log restriction, and crash/partition injection for tests.
class RaftGroup {
 public:
  /// Applies a committed command to replica `replica_id`'s state machine.
  using ApplyFn = std::function<void(int replica_id, const std::string& command)>;

  RaftGroup(int num_replicas, const net::LatencyModel* network, ApplyFn apply);

  /// Proposes a command on the current leader. Blocks until the entry is
  /// committed (majority replicated) and applied, then returns its log index.
  /// Fails when no leader is reachable or the majority is down.
  Result<int64_t> Propose(const std::string& command);

  int leader() const SPHERE_EXCLUDES(mu_);
  int64_t term() const SPHERE_EXCLUDES(mu_);
  size_t num_replicas() const SPHERE_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return replicas_.size();
  }

  /// Committed length of replica `id`'s log (test/verify hook).
  std::vector<LogEntry> CommittedLog(int id) const;

  /// Fault injection: a disconnected replica receives and emits nothing.
  void Disconnect(int id);
  void Reconnect(int id);
  bool IsConnected(int id) const;

  /// Forces an election with `candidate` requesting votes. Returns true when
  /// it wins (gathers a majority under Raft's voting rules).
  bool TriggerElection(int candidate);

  /// Brings a lagging reconnected replica up to date from the leader.
  void CatchUp(int id);

 private:
  struct Replica {
    int id;
    bool connected = true;
    int64_t current_term = 1;
    int voted_for = -1;
    std::vector<LogEntry> log;
    int64_t commit_index = 0;  ///< number of committed entries
    int64_t last_applied = 0;
  };

  /// AppendEntries RPC body (leader -> follower). Returns success.
  bool AppendEntries(Replica* follower, int64_t term, int64_t prev_index,
                     int64_t prev_term, const std::vector<LogEntry>& entries,
                     int64_t leader_commit) SPHERE_REQUIRES(mu_);
  /// RequestVote RPC body.
  bool RequestVote(Replica* voter, int64_t term, int candidate_id,
                   int64_t last_log_index, int64_t last_log_term)
      SPHERE_REQUIRES(mu_);
  void ApplyCommitted(Replica* replica) SPHERE_REQUIRES(mu_);
  void Rpc(size_t bytes) const {
    if (network_ != nullptr) network_->Transfer(bytes);
  }

  const net::LatencyModel* network_;
  const ApplyFn apply_;
  /// kGovernor: the apply callback runs under this lock and may drive a full
  /// statement into a storage node (raftdb), so it must outrank transaction
  /// and everything below.
  mutable Mutex mu_{LockRank::kGovernor, "raft/group"};
  std::vector<Replica> replicas_ SPHERE_GUARDED_BY(mu_);
  int leader_ SPHERE_GUARDED_BY(mu_) = 0;
};

}  // namespace sphere::raft

#endif  // SPHERE_RAFT_RAFT_H_
