#include "common/schema.h"

#include "common/strings.h"

namespace sphere {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

int Schema::PrimaryKeyIndex() const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> Schema::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c.name);
  return names;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace sphere
