#ifndef SPHERE_COMMON_THREAD_POOL_H_
#define SPHERE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sphere {

/// Fixed-size worker pool used by the SQL execution engine to run the SQL
/// units of one query group in parallel against the data sources.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool stop_ = false;
};

/// Counts down to zero; used to join a known number of parallel SQL units.
class Latch {
 public:
  explicit Latch(int count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> g(mu_);
    if (--count_ <= 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace sphere

#endif  // SPHERE_COMMON_THREAD_POOL_H_
