#ifndef SPHERE_COMMON_THREAD_POOL_H_
#define SPHERE_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace sphere {

/// Fixed-size worker pool used by the SQL execution engine to run the SQL
/// units of one query group in parallel against the data sources.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task) SPHERE_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished executing.
  void Wait() SPHERE_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// Tasks enqueued but not yet picked up (observability gauge probe).
  size_t queue_depth() const SPHERE_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return tasks_.size();
  }
  /// Tasks currently executing on workers.
  size_t active() const SPHERE_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return active_;
  }

 private:
  void WorkerLoop() SPHERE_EXCLUDES(mu_);

  mutable Mutex mu_{LockRank::kCommon, "common/thread_pool"};
  CondVar task_cv_;
  CondVar done_cv_;
  std::deque<std::function<void()>> tasks_ SPHERE_GUARDED_BY(mu_);
  // analyze-exempt(guarded-by): filled in the constructor before any worker
  // runs, joined in the destructor after stop_; never touched in between
  std::vector<std::thread> threads_;
  size_t active_ SPHERE_GUARDED_BY(mu_) = 0;
  bool stop_ SPHERE_GUARDED_BY(mu_) = false;
};

/// The process-wide executor pool shared by every ExecutionEngine (and any
/// other steady-state parallel work). Sized from hardware concurrency with a
/// floor of 4 — the workers mostly wait on simulated network / storage I/O,
/// so a few threads beyond the core count keep small scatter queries parallel
/// even on tiny machines. Created on first use and intentionally leaked:
/// worker threads must never race static destruction at process exit.
///
/// Callers that need a differently sized pool (tests, benchmarks) construct
/// their own ThreadPool and inject it instead of using this one.
ThreadPool* SharedThreadPool();

/// Counts down to zero; used to join a known number of parallel SQL units.
class Latch {
 public:
  explicit Latch(int count) : count_(count) {}

  void CountDown() SPHERE_EXCLUDES(mu_) {
    MutexLock g(mu_);
    if (--count_ <= 0) cv_.NotifyAll();
  }

  void Wait() SPHERE_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    cv_.Wait(mu_, [&]() SPHERE_REQUIRES(mu_) { return count_ <= 0; });
  }

 private:
  Mutex mu_{LockRank::kCommon, "common/latch"};
  CondVar cv_;
  int count_ SPHERE_GUARDED_BY(mu_);
};

}  // namespace sphere

#endif  // SPHERE_COMMON_THREAD_POOL_H_
