#ifndef SPHERE_COMMON_HISTOGRAM_H_
#define SPHERE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"

namespace sphere {

/// Latency histogram with logarithmic-ish buckets (~2% resolution), tracking
/// count/sum/min/max and percentile estimates. Fully thread-safe: recorders
/// and readers may run concurrently.
class Histogram {
 public:
  Histogram();

  /// Records one latency observation (microseconds).
  void Record(int64_t micros) SPHERE_EXCLUDES(mu_);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other) SPHERE_EXCLUDES(mu_);

  int64_t count() const SPHERE_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return count_;
  }
  double sum_micros() const SPHERE_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return sum_;
  }
  int64_t min_micros() const SPHERE_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return count_ ? min_ : 0;
  }
  int64_t max_micros() const SPHERE_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return max_;
  }

  /// Mean latency in milliseconds.
  double AvgMillis() const SPHERE_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return count_ ? sum_ / static_cast<double>(count_) / 1000.0 : 0.0;
  }
  /// Estimated percentile (p in [0,100]) in milliseconds.
  double PercentileMillis(double p) const SPHERE_EXCLUDES(mu_);

  void Reset() SPHERE_EXCLUDES(mu_);

 private:
  static constexpr int kNumBuckets = 512;
  /// Upper bound in micros for bucket i.
  static int64_t BucketLimit(int i);
  static int BucketFor(int64_t micros);

  mutable Mutex mu_{LockRank::kCommon, "common/histogram"};
  std::vector<int64_t> buckets_ SPHERE_GUARDED_BY(mu_);
  int64_t count_ SPHERE_GUARDED_BY(mu_);
  double sum_ SPHERE_GUARDED_BY(mu_);
  int64_t min_ SPHERE_GUARDED_BY(mu_);
  int64_t max_ SPHERE_GUARDED_BY(mu_);
};

}  // namespace sphere

#endif  // SPHERE_COMMON_HISTOGRAM_H_
