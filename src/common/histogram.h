#ifndef SPHERE_COMMON_HISTOGRAM_H_
#define SPHERE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace sphere {

/// Latency histogram with logarithmic-ish buckets (~2% resolution), tracking
/// count/sum/min/max and percentile estimates. Thread-safe via an internal
/// mutex on Record; Merge/percentile readers should run after recording ends.
class Histogram {
 public:
  Histogram();

  /// Records one latency observation (microseconds).
  void Record(int64_t micros);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  double sum_micros() const { return sum_; }
  int64_t min_micros() const { return count_ ? min_ : 0; }
  int64_t max_micros() const { return max_; }

  /// Mean latency in milliseconds.
  double AvgMillis() const { return count_ ? sum_ / count_ / 1000.0 : 0.0; }
  /// Estimated percentile (p in [0,100]) in milliseconds.
  double PercentileMillis(double p) const;

  void Reset();

 private:
  static constexpr int kNumBuckets = 512;
  /// Upper bound in micros for bucket i.
  static int64_t BucketLimit(int i);
  static int BucketFor(int64_t micros);

  mutable std::mutex mu_;
  std::vector<int64_t> buckets_;
  int64_t count_;
  double sum_;
  int64_t min_, max_;
};

}  // namespace sphere

#endif  // SPHERE_COMMON_HISTOGRAM_H_
