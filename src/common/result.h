#ifndef SPHERE_COMMON_RESULT_H_
#define SPHERE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace sphere {

/// A Status or a value of type T. The project-wide return type for fallible
/// functions that produce a value (Arrow's Result / absl::StatusOr idiom).
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define SPHERE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define SPHERE_ASSIGN_OR_RETURN(lhs, expr)                                 \
  SPHERE_ASSIGN_OR_RETURN_IMPL(SPHERE_CONCAT_(_res_, __LINE__), lhs, expr)

#define SPHERE_CONCAT_INNER_(a, b) a##b
#define SPHERE_CONCAT_(a, b) SPHERE_CONCAT_INNER_(a, b)

}  // namespace sphere

#endif  // SPHERE_COMMON_RESULT_H_
