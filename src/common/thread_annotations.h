#ifndef SPHERE_COMMON_THREAD_ANNOTATIONS_H_
#define SPHERE_COMMON_THREAD_ANNOTATIONS_H_

/// Portable Clang thread-safety-analysis annotations (the Abseil/LevelDB
/// idiom). Under clang, `-Wthread-safety` turns these into compile-time lock
/// checking: the compiler proves that every access to a `SPHERE_GUARDED_BY`
/// member happens with its mutex held. Under GCC (which has no analysis) all
/// macros expand to nothing, so annotated code stays portable.
///
/// Use together with `sphere::Mutex` / `sphere::MutexLock` from
/// "common/mutex.h" — the analysis only understands lock objects whose
/// acquire/release functions carry these attributes, so raw `std::mutex`
/// members are banned in src/ (enforced by tools/lint.py).

#if defined(__clang__)
#define SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Declares a type to be a lockable capability ("mutex").
#define SPHERE_CAPABILITY(x) SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Declares an RAII type whose lifetime equals a critical section.
#define SPHERE_SCOPED_CAPABILITY \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Declares that a member is protected by the given mutex.
#define SPHERE_GUARDED_BY(x) SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Declares that the data pointed to by a pointer member is protected.
#define SPHERE_PT_GUARDED_BY(x) \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// The function must be called with the given mutexes held (exclusively).
#define SPHERE_REQUIRES(...) \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// The function must be called with the given mutexes held (at least shared).
#define SPHERE_REQUIRES_SHARED(...) \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the given mutexes and does not release them.
#define SPHERE_ACQUIRE(...) \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define SPHERE_ACQUIRE_SHARED(...) \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the given mutexes (held on entry).
#define SPHERE_RELEASE(...) \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define SPHERE_RELEASE_SHARED(...) \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

/// The function must NOT be called with the given mutexes held (deadlock
/// guard for functions that acquire them internally).
#define SPHERE_EXCLUDES(...) \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Alias kept for call sites that prefer the Abseil spelling.
#define SPHERE_LOCKS_EXCLUDED(...) SPHERE_EXCLUDES(__VA_ARGS__)

/// Try-lock: acquires the mutex only when returning `success`.
#define SPHERE_TRY_ACQUIRE(...) \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// The function returns a reference to the given mutex.
#define SPHERE_RETURN_CAPABILITY(x) \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Use only with a
/// comment explaining why (e.g. address-ordered double locking).
#define SPHERE_NO_THREAD_SAFETY_ANALYSIS \
  SPHERE_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // SPHERE_COMMON_THREAD_ANNOTATIONS_H_
