#include "common/arena.h"

#include <algorithm>

#if defined(__SANITIZE_ADDRESS__)
#define SPHERE_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SPHERE_ARENA_ASAN 1
#endif
#endif

#ifdef SPHERE_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define SPHERE_ARENA_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define SPHERE_ARENA_UNPOISON(addr, size) \
  ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define SPHERE_ARENA_POISON(addr, size) ((void)0)
#define SPHERE_ARENA_UNPOISON(addr, size) ((void)0)
#endif

namespace sphere {

namespace {

char* AlignUp(char* p, size_t align) {
  auto v = reinterpret_cast<uintptr_t>(p);
  return reinterpret_cast<char*>((v + align - 1) & ~(align - 1));
}

/// The calling thread's currently-installed arena (null = heap fallback).
thread_local Arena* tls_current_arena = nullptr;

/// Per-thread statement arena used by the knob-gated ArenaScope form. Chunks
/// are retained for the life of the thread, so every statement after warm-up
/// runs allocation-free inside it.
Arena* StatementArena() {
  static thread_local Arena arena;
  return &arena;
}

}  // namespace

Arena::~Arena() {
  Reset();
#ifdef SPHERE_ARENA_ASAN
  // ASan forbids freeing memory that is still poisoned.
  for (Chunk& c : chunks_) SPHERE_ARENA_UNPOISON(c.data.get(), c.size);
#endif
}

void* Arena::Allocate(size_t size, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  if (size == 0) size = 1;
  char* p = ptr_ == nullptr ? nullptr : AlignUp(ptr_, align);
  if (p == nullptr || size > static_cast<size_t>(end_ - p)) {
    p = Refill(size, align);
  }
  ptr_ = p + size;
  bytes_allocated_ += size;
  SPHERE_ARENA_UNPOISON(p, size);
  return p;
}

char* Arena::Refill(size_t size, size_t align) {
  // Reuse retained chunks from earlier epochs before growing.
  while (current_chunk_ + 1 < chunks_.size()) {
    ++current_chunk_;
    Chunk& c = chunks_[current_chunk_];
    ptr_ = c.data.get();
    end_ = ptr_ + c.size;
    char* p = AlignUp(ptr_, align);
    if (size <= static_cast<size_t>(end_ - p)) return p;
  }
  // Grow: geometric schedule, with oversize requests getting a chunk of
  // exactly their size (plus alignment slack) so they don't distort it.
  size_t chunk_size = std::max(next_chunk_size_, size + align);
  next_chunk_size_ = std::min(next_chunk_size_ * 2, kMaxChunkSize);
  Chunk c;
  c.data = std::make_unique<char[]>(chunk_size);
  c.size = chunk_size;
  bytes_reserved_ += chunk_size;
  chunks_.push_back(std::move(c));
  current_chunk_ = chunks_.size() - 1;
  ptr_ = chunks_.back().data.get();
  end_ = ptr_ + chunk_size;
  return AlignUp(ptr_, align);
}

void Arena::RegisterDestructor(void* obj, void (*fn)(void*)) {
  auto* node =
      static_cast<DtorNode*>(Allocate(sizeof(DtorNode), alignof(DtorNode)));
  node->fn = fn;
  node->obj = obj;
  node->next = dtors_;
  dtors_ = node;
}

void Arena::Reset() {
  // The destructor list is prepended on registration, so walking it runs
  // destructors in reverse creation order. The nodes themselves live in the
  // arena: they must be walked before the space is poisoned.
  for (DtorNode* n = dtors_; n != nullptr; n = n->next) n->fn(n->obj);
  dtors_ = nullptr;
#ifdef SPHERE_ARENA_ASAN
  for (Chunk& c : chunks_) SPHERE_ARENA_POISON(c.data.get(), c.size);
#endif
  current_chunk_ = 0;
  if (chunks_.empty()) {
    ptr_ = end_ = nullptr;
  } else {
    ptr_ = chunks_.front().data.get();
    end_ = ptr_ + chunks_.front().size;
  }
  bytes_allocated_ = 0;
  ++reset_count_;
}

Arena* CurrentArena() { return tls_current_arena; }

ArenaScope::ArenaScope(bool active) {
  if (active && tls_current_arena == nullptr) {
    tls_current_arena = StatementArena();
    owned_ = true;
    reset_on_exit_ = true;
  }
}

ArenaScope::ArenaScope(Arena* arena) {
  if (arena != nullptr && tls_current_arena == nullptr) {
    tls_current_arena = arena;
    owned_ = true;
  }
}

ArenaScope::~ArenaScope() {
  if (!owned_) return;
  if (reset_on_exit_) tls_current_arena->Reset();
  tls_current_arena = nullptr;
}

ArenaSuspend::ArenaSuspend() : saved_(tls_current_arena) {
  tls_current_arena = nullptr;
}

ArenaSuspend::~ArenaSuspend() { tls_current_arena = saved_; }

namespace arena_internal {

void* TaggedAllocate(size_t size) {
  char* base;
  uint64_t tag;
  if (Arena* a = tls_current_arena) {
    base = static_cast<char*>(a->Allocate(size + kHeaderSize, kHeaderSize));
    tag = kArenaTag;
  } else {
    base = static_cast<char*>(::operator new(size + kHeaderSize));
    tag = kHeapTag;
  }
  std::memcpy(base, &tag, sizeof(tag));
  return base + kHeaderSize;
}

void TaggedDeallocate(void* p) noexcept {
  if (p == nullptr) return;
  char* base = static_cast<char*>(p) - kHeaderSize;
  uint64_t tag;
  std::memcpy(&tag, base, sizeof(tag));
  if (tag == kHeapTag) {
    ::operator delete(base);
    return;
  }
  // Arena block: freed wholesale by the owning scope's Reset(). A tag that
  // matches neither constant means the block was already reclaimed (an
  // escaped pointer) — ASan builds trap on the header read above.
  assert(tag == kArenaTag);
}

}  // namespace arena_internal

}  // namespace sphere
