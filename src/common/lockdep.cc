#include "common/lockdep.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define SPHERE_LOCKDEP_HAVE_BACKTRACE 1
#endif
#endif

namespace sphere::lockdep {
namespace {

constexpr int kMaxFrames = 24;
// Innermost frames are lockdep + Mutex internals; skip them so reports start
// at the caller's acquisition site.
constexpr int kSkipFrames = 2;

struct Backtrace {
  void* pc[kMaxFrames];
  int depth = 0;

  void Capture() {
#ifdef SPHERE_LOCKDEP_HAVE_BACKTRACE
    depth = backtrace(pc, kMaxFrames);
#else
    depth = 0;
#endif
  }

  void Format(std::ostringstream* out) const {
#ifdef SPHERE_LOCKDEP_HAVE_BACKTRACE
    if (depth <= kSkipFrames) {
      *out << "      <no frames captured>\n";
      return;
    }
    char** symbols = backtrace_symbols(pc, depth);
    for (int i = kSkipFrames; i < depth; ++i) {
      *out << "      #" << (i - kSkipFrames) << " ";
      if (symbols != nullptr && symbols[i] != nullptr) {
        *out << symbols[i];
      } else {
        *out << pc[i];
      }
      *out << "\n";
    }
    free(symbols);  // backtrace_symbols mallocs one block
#else
    *out << "      <backtrace unavailable on this platform>\n";
#endif
  }
};

/// One entry of the thread's held-lock stack.
struct HeldLock {
  const void* lock;
  int class_id;  ///< -1 when the lock has no class (empty name)
  LockRank rank;
  bool trylock;
  bool shared;
  Backtrace where;
};

struct LockClass {
  std::string name;
  LockRank rank;
};

/// First-observation record for one order-graph edge `from -> to`.
struct Edge {
  int from;
  int to;
  Backtrace holder_where;   ///< where `from` was acquired (still held)
  Backtrace acquire_where;  ///< where `to` was acquired under `from`
};

struct Graph {
  // Raw std::mutex on purpose: the checker cannot run on the locks it
  // checks. Exempted from the raw-mutex lint rule.
  std::mutex mu;
  std::unordered_map<std::string, int> class_ids;
  std::vector<LockClass> classes;
  std::unordered_map<uint64_t, Edge> edges;   // key: from << 32 | to
  std::vector<std::vector<int>> adjacency;    // class -> successors
  Handler handler;                            // empty = default
  int violations = 0;
};

Graph& graph() {
  // Leaked singleton: worker threads may release locks during static
  // destruction and must never race a destroyed graph.
  static Graph* g = new Graph();
  return *g;
}

std::vector<HeldLock>& held() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

uint64_t EdgeKey(int from, int to) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
         static_cast<uint32_t>(to);
}

/// Interns `name` under the graph lock; returns its class id.
int InternClassLocked(Graph& g, const char* name, LockRank rank) {
  auto it = g.class_ids.find(name);
  if (it != g.class_ids.end()) return it->second;
  int id = static_cast<int>(g.classes.size());
  g.class_ids.emplace(name, id);
  g.classes.push_back(LockClass{name, rank});
  g.adjacency.emplace_back();
  return id;
}

/// DFS path `from ~> to` over the adjacency lists; fills `path` with the
/// class ids visited (inclusive of both ends). Returns false when
/// unreachable.
bool FindPathLocked(const Graph& g, int from, int to, std::vector<int>* path) {
  std::vector<int> parent(g.classes.size(), -1);
  std::vector<int> stack{from};
  std::vector<bool> seen(g.classes.size(), false);
  seen[static_cast<size_t>(from)] = true;
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    if (node == to) {
      for (int at = to; at != -1; at = parent[static_cast<size_t>(at)]) {
        path->push_back(at);
      }
      std::reverse(path->begin(), path->end());
      return true;
    }
    for (int next : g.adjacency[static_cast<size_t>(node)]) {
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        parent[static_cast<size_t>(next)] = node;
        stack.push_back(next);
      }
    }
  }
  return false;
}

void DescribeClassLocked(const Graph& g, int id, std::ostringstream* out) {
  const LockClass& cls = g.classes[static_cast<size_t>(id)];
  *out << "\"" << cls.name << "\" (rank " << LockRankName(cls.rank) << ")";
}

/// Locking wrapper around DescribeClassLocked for report paths that run
/// outside the graph lock.
std::string DescribeClass(int id) {
  std::ostringstream out;
  Graph& g = graph();
  std::lock_guard<std::mutex> lk(g.mu);
  DescribeClassLocked(g, id, &out);
  return out.str();
}

void AppendHeldStack(std::ostringstream* out) {
  const auto& stack = held();
  *out << "  held by this thread (" << stack.size() << "):\n";
  for (size_t i = 0; i < stack.size(); ++i) {
    const HeldLock& h = stack[i];
    *out << "    [" << i << "] ";
    if (h.class_id >= 0) {
      *out << DescribeClass(h.class_id);
    } else {
      *out << "<unnamed " << h.lock << "> (rank " << LockRankName(h.rank)
           << ")";
    }
    if (h.trylock) *out << " [trylock]";
    if (h.shared) *out << " [shared]";
    *out << ", acquired at:\n";
    h.where.Format(out);
  }
}

/// Dispatches one violation to the handler (default: stderr + abort). Never
/// called with the graph lock held — handlers may inspect lockdep state.
void Emit(Violation::Kind kind, std::string message) {
  Handler h;
  {
    Graph& g = graph();
    std::lock_guard<std::mutex> lk(g.mu);
    ++g.violations;
    h = g.handler;
  }
  Violation v{kind, std::move(message)};
  if (h) {
    h(v);
    return;
  }
  std::fprintf(stderr, "%s", v.message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

Handler SetHandler(Handler handler) {
  Graph& g = graph();
  std::lock_guard<std::mutex> lk(g.mu);
  Handler old = std::move(g.handler);
  g.handler = std::move(handler);
  return old;
}

void OnAcquire(const void* lock, LockRank rank, const char* name, bool trylock,
               bool shared) {
  auto& stack = held();

  Backtrace here;
  here.Capture();

  // 1. Same-instance recursion: deadlocks immediately for exclusive locks,
  // and is writer-starvation-prone even shared-over-shared, so it is always
  // a violation.
  for (const HeldLock& h : stack) {
    if (h.lock == lock) {
      std::ostringstream out;
      out << "lockdep: SELF-RECURSION\n  thread re-acquires ";
      if (name != nullptr && name[0] != '\0') {
        out << "\"" << name << "\"";
      } else {
        out << "lock " << lock;
      }
      out << (shared ? " (shared)" : "") << " it already holds\n"
          << "  second acquisition at:\n";
      here.Format(&out);
      AppendHeldStack(&out);
      Emit(Violation::Kind::kSelfRecursion, out.str());
      break;
    }
  }

  // 2. Rank discipline: non-increasing along the chain. Trylocks never
  // block, so they may probe upward without deadlock risk; once held they
  // still constrain later acquisitions.
  if (!trylock && rank != LockRank::kUnranked) {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->rank == LockRank::kUnranked) continue;
      if (static_cast<int>(rank) > static_cast<int>(it->rank)) {
        std::ostringstream out;
        out << "lockdep: RANK-ORDER VIOLATION\n  acquiring \""
            << (name != nullptr ? name : "?") << "\" (rank "
            << LockRankName(rank) << ") while holding ";
        if (it->class_id >= 0) {
          out << DescribeClass(it->class_id);
        } else {
          out << "<unnamed> (rank " << LockRankName(it->rank) << ")";
        }
        out << "\n  lock ranks must be non-increasing: adaptor > governor > "
               "transaction > engine > core > storage > common\n"
            << "  acquisition at:\n";
        here.Format(&out);
        AppendHeldStack(&out);
        Emit(Violation::Kind::kRankOrder, out.str());
      }
      break;  // only the innermost ranked lock constrains the next rank
    }
  }

  // 3. Order graph: add held-class -> new-class edges; a new edge that
  // closes a cycle is a potential deadlock regardless of this run's
  // interleaving.
  int class_id = -1;
  if (name != nullptr && name[0] != '\0') {
    std::string cycle_report;
    {
      Graph& g = graph();
      std::lock_guard<std::mutex> lk(g.mu);
      class_id = InternClassLocked(g, name, rank);
      for (const HeldLock& h : stack) {
        if (h.class_id < 0 || h.class_id == class_id) continue;
        uint64_t key = EdgeKey(h.class_id, class_id);
        if (g.edges.count(key) != 0) continue;
        // New edge h.class_id -> class_id. Existing path class_id ~>
        // h.class_id means the opposite order was already observed: cycle.
        std::vector<int> path;
        if (cycle_report.empty() &&
            FindPathLocked(g, class_id, h.class_id, &path)) {
          std::ostringstream out;
          out << "lockdep: LOCK-ORDER CYCLE (potential deadlock)\n"
              << "  new dependency: ";
          DescribeClassLocked(g, h.class_id, &out);
          out << " -> ";
          DescribeClassLocked(g, class_id, &out);
          out << "\n  holder acquired at:\n";
          h.where.Format(&out);
          out << "  new lock acquired at:\n";
          here.Format(&out);
          out << "  conflicting existing order:\n";
          for (size_t i = 0; i + 1 < path.size(); ++i) {
            const Edge& e = g.edges.at(EdgeKey(path[i], path[i + 1]));
            out << "    ";
            DescribeClassLocked(g, e.from, &out);
            out << " -> ";
            DescribeClassLocked(g, e.to, &out);
            out << "\n    first lock held at:\n";
            e.holder_where.Format(&out);
            out << "    second lock acquired at:\n";
            e.acquire_where.Format(&out);
          }
          cycle_report = out.str();
        }
        Edge edge{h.class_id, class_id, h.where, here};
        g.edges.emplace(key, edge);
        g.adjacency[static_cast<size_t>(h.class_id)].push_back(class_id);
      }
    }
    if (!cycle_report.empty()) {
      Emit(Violation::Kind::kCycle, std::move(cycle_report));
    }
  }

  stack.push_back(HeldLock{lock, class_id, rank, trylock, shared, here});
}

void OnRelease(const void* lock) {
  auto& stack = held();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->lock == lock) {
      stack.erase(std::next(it).base());
      return;
    }
  }
  // Unmatched release: the lock predates handler/coverage (e.g. acquired in
  // a TU built without SPHERE_DEADLOCK). Silently ignore.
}

int violation_count() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lk(g.mu);
  return g.violations;
}

size_t held_count() { return held().size(); }

void ResetForTest() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lk(g.mu);
  g.class_ids.clear();
  g.classes.clear();
  g.edges.clear();
  g.adjacency.clear();
  g.violations = 0;
}

}  // namespace sphere::lockdep
