#ifndef SPHERE_COMMON_LOCKDEP_H_
#define SPHERE_COMMON_LOCKDEP_H_

#include <cstddef>
#include <functional>
#include <string>

#include "common/lock_rank.h"

/// Runtime lock-dependency checker (Linux-lockdep style), wired into
/// sphere::Mutex / sphere::SharedMutex when the tree is configured with
/// -DSPHERE_DEADLOCK=ON. Two complementary checks run on every acquisition:
///
///   1. Rank discipline: a thread-local held-lock stack asserts that ranks
///      are non-increasing along every acquisition chain (see
///      common/lock_rank.h). Catches cross-layer ordering violations the
///      moment they happen, on any interleaving.
///
///   2. Lock-order graph: every "B acquired while A held" observation adds a
///      directed edge A -> B between *lock classes* (a class is a named
///      declaration site; all Table latches are one class). Adding an edge
///      that closes a cycle reports a potential deadlock — even if this
///      particular run never interleaves into the actual deadlock — together
///      with the acquisition backtraces of both locks on the new edge and of
///      every edge along the existing path.
///
/// The checker is deterministic: observing each order once is enough, no
/// adversarial scheduling required. TSan finds data races; this finds
/// deadlocks. Violations go to the installed handler (default: print the
/// full report to stderr and abort, so a violating test goes red).
///
/// The implementation is always compiled so the detector itself is unit
/// tested in every build; only the Mutex hooks are gated on SPHERE_DEADLOCK.
namespace sphere::lockdep {

/// One report from the checker. `message` is the full human-readable report
/// (held stack, ranks, and symbolized backtraces).
struct Violation {
  enum class Kind {
    kRankOrder,      ///< acquired a higher rank while holding a lower one
    kSelfRecursion,  ///< re-acquired a lock instance this thread holds
    kCycle,          ///< new graph edge closes a lock-order cycle
  };
  Kind kind;
  std::string message;
};

using Handler = std::function<void(const Violation&)>;

/// Installs a violation handler, returning the previous one. Passing a null
/// handler restores the default (print + abort). Tests install a capturing
/// handler around seeded inversions.
Handler SetHandler(Handler handler);

/// Records an acquisition attempt by this thread. Runs the rank check and
/// the order-graph cycle check, then pushes the lock onto the thread-local
/// held stack. `name` is the lock's class ("" = classless: skipped by the
/// graph and, when unranked, by the rank check). Called by Mutex::Lock
/// before blocking, so an inversion is reported even when the run would
/// deadlock.
void OnAcquire(const void* lock, LockRank rank, const char* name,
               bool trylock, bool shared);

/// Pops `lock` from this thread's held stack (out-of-order release is
/// handled for hand-over-hand patterns).
void OnRelease(const void* lock);

/// Number of violations reported process-wide since start / last reset.
int violation_count();

/// Locks currently held by the calling thread (testing / diagnostics).
size_t held_count();

/// Test hook: clears the order graph, class table and violation counter.
/// Callers must not hold any sphere lock while resetting.
void ResetForTest();

}  // namespace sphere::lockdep

#endif  // SPHERE_COMMON_LOCKDEP_H_
