#ifndef SPHERE_COMMON_MUTEX_H_
#define SPHERE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace sphere {

/// Annotated exclusive mutex wrapping std::mutex. Always lock through
/// `MutexLock` (or `CondVar::Wait`); the raw Lock/Unlock pair exists for the
/// RAII types and for the rare hand-over-hand pattern, and carries the
/// attributes clang's `-Wthread-safety` needs to verify `SPHERE_GUARDED_BY`
/// members.
class SPHERE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SPHERE_ACQUIRE() { mu_.lock(); }
  void Unlock() SPHERE_RELEASE() { mu_.unlock(); }
  bool TryLock() SPHERE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spelling so `CondVar` (condition_variable_any) can park on
  /// this mutex directly.
  void lock() SPHERE_ACQUIRE() { mu_.lock(); }
  void unlock() SPHERE_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section over `Mutex`.
class SPHERE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SPHERE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SPHERE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// Annotated reader-writer mutex wrapping std::shared_mutex. Lock through
/// `WriterLock` / `ReaderLock`.
class SPHERE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SPHERE_ACQUIRE() { mu_.lock(); }
  void Unlock() SPHERE_RELEASE() { mu_.unlock(); }
  void LockShared() SPHERE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SPHERE_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive section over `SharedMutex`.
class SPHERE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) SPHERE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() SPHERE_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared section over `SharedMutex`.
class SPHERE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) SPHERE_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() SPHERE_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with `sphere::Mutex`. Callers hold the mutex
/// (via MutexLock) across Wait, which releases and re-acquires it atomically.
class CondVar {
 public:
  /// Blocks until notified (spurious wakeups possible — re-check state).
  void Wait(Mutex& mu) SPHERE_REQUIRES(mu) { cv_.wait(mu); }

  /// Blocks until `pred()` holds. The mutex guarding the predicate's state
  /// must be held on entry and is held again on return.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) SPHERE_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// Timed wait; returns false when the deadline passed with `pred` false.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Pred pred) SPHERE_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace sphere

#endif  // SPHERE_COMMON_MUTEX_H_
