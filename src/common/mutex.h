#ifndef SPHERE_COMMON_MUTEX_H_
#define SPHERE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

/// Lockdep hooks: active only in -DSPHERE_DEADLOCK=ON builds, where every
/// Lock/Unlock maintains a per-thread held-lock stack (rank discipline) and
/// feeds the process-wide lock-order graph (cycle detection). See
/// common/lockdep.h. In normal builds the macros compile to nothing.
#ifdef SPHERE_DEADLOCK
#include "common/lockdep.h"
#define SPHERE_LOCKDEP_ACQUIRE(lock, rank, name, shared) \
  ::sphere::lockdep::OnAcquire((lock), (rank), (name), /*trylock=*/false, \
                               (shared))
#define SPHERE_LOCKDEP_TRY_ACQUIRED(lock, rank, name) \
  ::sphere::lockdep::OnAcquire((lock), (rank), (name), /*trylock=*/true, \
                               /*shared=*/false)
#define SPHERE_LOCKDEP_RELEASE(lock) ::sphere::lockdep::OnRelease((lock))
#else
#define SPHERE_LOCKDEP_ACQUIRE(lock, rank, name, shared) ((void)0)
#define SPHERE_LOCKDEP_TRY_ACQUIRED(lock, rank, name) ((void)0)
#define SPHERE_LOCKDEP_RELEASE(lock) ((void)0)
#endif

namespace sphere {

/// Annotated exclusive mutex wrapping std::mutex. Always lock through
/// `MutexLock` (or `CondVar::Wait`); the raw Lock/Unlock pair exists for the
/// RAII types and for the rare hand-over-hand pattern, and carries the
/// attributes clang's `-Wthread-safety` needs to verify `SPHERE_GUARDED_BY`
/// members.
///
/// Every mutex declared in src/ carries a `LockRank` and a class name
/// ("subsystem/what-it-guards") so SPHERE_DEADLOCK builds can verify the
/// global acquisition order — see common/lock_rank.h for the hierarchy.
/// Default-constructed (unranked) mutexes are for tests and scratch code;
/// tools/analyze.py flags unranked declarations inside src/.
class SPHERE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SPHERE_ACQUIRE() {
    SPHERE_LOCKDEP_ACQUIRE(this, rank_, name_, /*shared=*/false);
    mu_.lock();
  }
  void Unlock() SPHERE_RELEASE() {
    SPHERE_LOCKDEP_RELEASE(this);
    mu_.unlock();
  }
  bool TryLock() SPHERE_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    SPHERE_LOCKDEP_TRY_ACQUIRED(this, rank_, name_);
    return true;
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

  /// BasicLockable spelling so `CondVar` (condition_variable_any) can park on
  /// this mutex directly. Carries the same lockdep hooks so a wait's internal
  /// release/re-acquire keeps the held-lock stack balanced.
  void lock() SPHERE_ACQUIRE() {
    SPHERE_LOCKDEP_ACQUIRE(this, rank_, name_, /*shared=*/false);
    mu_.lock();
  }
  void unlock() SPHERE_RELEASE() {
    SPHERE_LOCKDEP_RELEASE(this);
    mu_.unlock();
  }

 private:
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "";
};

/// RAII critical section over `Mutex`.
class SPHERE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SPHERE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SPHERE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// Annotated reader-writer mutex wrapping std::shared_mutex. Lock through
/// `WriterLock` / `ReaderLock`. Shared and exclusive acquisitions feed the
/// same lockdep class: ordering, not mode, is what deadlock-freedom needs.
class SPHERE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SPHERE_ACQUIRE() {
    SPHERE_LOCKDEP_ACQUIRE(this, rank_, name_, /*shared=*/false);
    mu_.lock();
  }
  void Unlock() SPHERE_RELEASE() {
    SPHERE_LOCKDEP_RELEASE(this);
    mu_.unlock();
  }
  void LockShared() SPHERE_ACQUIRE_SHARED() {
    SPHERE_LOCKDEP_ACQUIRE(this, rank_, name_, /*shared=*/true);
    mu_.lock_shared();
  }
  void UnlockShared() SPHERE_RELEASE_SHARED() {
    SPHERE_LOCKDEP_RELEASE(this);
    mu_.unlock_shared();
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "";
};

/// RAII exclusive section over `SharedMutex`.
class SPHERE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) SPHERE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() SPHERE_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared section over `SharedMutex`.
class SPHERE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) SPHERE_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() SPHERE_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with `sphere::Mutex`. Callers hold the mutex
/// (via MutexLock) across Wait, which releases and re-acquires it atomically.
/// Under SPHERE_DEADLOCK the wait's unlock/lock round-trip goes through the
/// lockdep hooks, so the held-lock stack stays truthful while parked and the
/// re-acquisition is rank-checked against whatever else the thread holds.
class CondVar {
 public:
  /// Blocks until notified (spurious wakeups possible — re-check state).
  void Wait(Mutex& mu) SPHERE_REQUIRES(mu) { cv_.wait(mu); }

  /// Blocks until `pred()` holds. The mutex guarding the predicate's state
  /// must be held on entry and is held again on return.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) SPHERE_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// Timed wait; returns false when the deadline passed with `pred` false.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Pred pred) SPHERE_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace sphere

#endif  // SPHERE_COMMON_MUTEX_H_
