#include "common/properties.h"

#include <cstdlib>

#include "common/strings.h"

namespace sphere {

std::string Properties::GetString(const std::string& key,
                                  const std::string& fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

int64_t Properties::GetInt(const std::string& key, int64_t fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Properties::GetDouble(const std::string& key, double fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Properties::GetBool(const std::string& key, bool fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return EqualsIgnoreCase(it->second, "true") || it->second == "1";
}

std::string Properties::ToString() const {
  std::string out;
  for (const auto& [k, v] : kv_) {
    if (!out.empty()) out += ", ";
    out += "\"" + k + "\"=\"" + v + "\"";
  }
  return out;
}

}  // namespace sphere
