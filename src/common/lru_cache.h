#ifndef SPHERE_COMMON_LRU_CACHE_H_
#define SPHERE_COMMON_LRU_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"

namespace sphere {

/// Counters of one cache instance. `hits`/`misses` are cumulative lookup
/// outcomes, `evictions` counts capacity-driven removals (explicit Clear and
/// Erase are not evictions), `entries` is the current resident count.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
};

/// Capacity-bounded LRU map with sharded locking.
///
/// The key space is partitioned over independently locked shards so
/// concurrent hot-path lookups from many sessions do not serialize on one
/// mutex; each shard keeps its own recency list and evicts locally once it
/// exceeds its slice of the capacity. Values should be cheap to copy —
/// typically a `shared_ptr` to an immutable payload, which also makes a hit
/// safe to use after the entry is evicted by another thread.
///
/// `KeyHash` and `KeyEqual` must be transparent (usable with any lookup type
/// convertible to a key view, e.g. `std::string_view` against `std::string`
/// keys) so Get never has to materialize a key just to probe.
///
/// A capacity of 0 disables the cache entirely: every lookup misses and Put
/// is a no-op (the miss counter still advances, so observability keeps
/// working when the cache is turned off).
template <typename Key, typename Value, typename KeyHash = std::hash<Key>,
          typename KeyEqual = std::equal_to<>>
class ShardedLRUCache {
 public:
  explicit ShardedLRUCache(size_t capacity, size_t num_shards = 8)
      : capacity_(capacity) {
    if (num_shards == 0) num_shards = 1;
    // No point in more shards than capacity slots; with capacity 0 keep one
    // (empty) shard so the code below never dereferences an empty vector.
    if (capacity > 0 && num_shards > capacity) num_shards = capacity;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    // Ceiling split: the shard capacities sum to >= capacity, and no shard
    // gets zero slots.
    per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  }

  ShardedLRUCache(const ShardedLRUCache&) = delete;
  ShardedLRUCache& operator=(const ShardedLRUCache&) = delete;

  /// Looks up `key`, refreshing its recency. Returns a copy of the value.
  template <typename LookupKey>
  std::optional<Value> Get(const LookupKey& key) {
    if (capacity_ == 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Shard& shard = ShardFor(key);
    MutexLock lk(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Inserts or overwrites `key`, making it most recent; evicts the shard's
  /// least recently used entry when over capacity.
  template <typename LookupKey>
  void Put(const LookupKey& key, Value value) {
    if (capacity_ == 0) return;
    Shard& shard = ShardFor(key);
    MutexLock lk(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Entry{Key(key), std::move(value)});
    shard.index.emplace(shard.lru.front().key, shard.lru.begin());
    if (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Removes `key`; returns whether it was present.
  template <typename LookupKey>
  bool Erase(const LookupKey& key) {
    if (capacity_ == 0) return false;
    Shard& shard = ShardFor(key);
    MutexLock lk(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return true;
  }

  /// Drops every entry (counters are preserved).
  void Clear() {
    for (auto& shard : shards_) {
      MutexLock lk(shard->mu);
      shard->lru.clear();
      shard->index.clear();
    }
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) {
      MutexLock lk(shard->mu);
      n += shard->lru.size();
    }
    return n;
  }

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.entries = size();
    return s;
  }

 private:
  struct Entry {
    Key key;
    Value value;
  };
  using EntryList = std::list<Entry>;

  struct Shard {
    mutable Mutex mu{LockRank::kCommon, "common/lru_cache.shard"};
    /// Front = most recently used.
    EntryList lru SPHERE_GUARDED_BY(mu);
    std::unordered_map<Key, typename EntryList::iterator, KeyHash, KeyEqual>
        index SPHERE_GUARDED_BY(mu);
  };

  template <typename LookupKey>
  Shard& ShardFor(const LookupKey& key) {
    // Re-mix the hash: shard choice and in-shard bucketing would otherwise
    // correlate, clustering collisions onto one shard.
    return *shards_[Hash64(KeyHash()(key)) % shards_.size()];
  }

  size_t capacity_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace sphere

#endif  // SPHERE_COMMON_LRU_CACHE_H_
