#ifndef SPHERE_COMMON_KEYGEN_H_
#define SPHERE_COMMON_KEYGEN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/value.h"

namespace sphere {

/// Distributed key generator interface (SPI extension point). Implementations
/// must produce unique keys across shards without coordination.
class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  /// Generator type name ("SNOWFLAKE", "UUID").
  virtual const char* Type() const = 0;
  /// Produces the next key.
  virtual Value NextKey() = 0;
};

/// Twitter-snowflake style 64-bit IDs:
/// 41 bits millisecond timestamp | 10 bits worker id | 12 bits sequence.
/// Monotonic per worker; tolerates small clock regressions by borrowing
/// sequence space.
class SnowflakeKeyGenerator : public KeyGenerator {
 public:
  explicit SnowflakeKeyGenerator(uint16_t worker_id = 0);
  const char* Type() const override { return "SNOWFLAKE"; }
  Value NextKey() override;

  /// Extracts the embedded millisecond timestamp of an ID.
  static int64_t TimestampOf(int64_t id);
  /// Extracts the worker id of an ID.
  static int64_t WorkerOf(int64_t id);

  static constexpr int64_t kEpochMillis = 1609459200000LL;  // 2021-01-01

 private:
  const uint16_t worker_id_;
  std::atomic<int64_t> last_state_;  // (millis << 12) | sequence
};

/// Random 128-bit identifiers rendered as canonical UUIDv4 strings.
class UuidKeyGenerator : public KeyGenerator {
 public:
  explicit UuidKeyGenerator(uint64_t seed = 0);
  const char* Type() const override { return "UUID"; }
  Value NextKey() override;

 private:
  std::atomic<uint64_t> state_;
};

/// Creates a key generator by type name; returns nullptr for unknown types.
std::unique_ptr<KeyGenerator> CreateKeyGenerator(const std::string& type,
                                                 uint16_t worker_id = 0);

}  // namespace sphere

#endif  // SPHERE_COMMON_KEYGEN_H_
