#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace sphere {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

size_t HashIgnoreCase(std::string_view s) {
  // FNV-1a over the lowered bytes; must agree with EqualsIgnoreCase so equal
  // keys hash equally.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(std::tolower(static_cast<unsigned char>(c)));
    h *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(h);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

bool ContainsIgnoreCase(std::string_view s, std::string_view needle) {
  if (needle.empty()) return true;
  if (s.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= s.size(); ++i) {
    if (EqualsIgnoreCase(s.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard match with backtracking on '%'.
  size_t t = 0, p = 0, star_p = std::string_view::npos, star_t = 0;
  auto eq = [](char a, char b) {
    return std::tolower(static_cast<unsigned char>(a)) ==
           std::tolower(static_cast<unsigned char>(b));
  };
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || eq(pattern[p], text[t]))) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace sphere
