#ifndef SPHERE_COMMON_CLOCK_H_
#define SPHERE_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace sphere {

/// Monotonic microseconds since an arbitrary epoch.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock milliseconds since the Unix epoch (snowflake IDs use this).
inline int64_t WallMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Sleeps for the given number of microseconds. Short waits (<20us) spin to
/// keep the simulated-network latency model accurate on coarse schedulers.
inline void SleepMicros(int64_t us) {
  if (us <= 0) return;
  if (us < 20) {
    int64_t end = NowMicros() + us;
    while (NowMicros() < end) {
    }
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/// Simple elapsed-time stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(NowMicros()) {}
  void Reset() { start_ = NowMicros(); }
  int64_t ElapsedMicros() const { return NowMicros() - start_; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  int64_t start_;
};

}  // namespace sphere

#endif  // SPHERE_COMMON_CLOCK_H_
