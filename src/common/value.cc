#include "common/value.h"

#include <charconv>
#include <cstdio>
#include <cstring>

#include "common/hash.h"

namespace sphere {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

double Value::ToDouble() const {
  if (is_int()) return static_cast<double>(AsInt());
  if (is_double()) return AsDouble();
  if (is_string()) {
    const std::string& s = AsString();
    double d = 0;
    std::from_chars(s.data(), s.data() + s.size(), d);
    return d;
  }
  return 0.0;
}

int64_t Value::ToInt() const {
  if (is_int()) return AsInt();
  if (is_double()) return static_cast<int64_t>(AsDouble());
  if (is_string()) {
    const std::string& s = AsString();
    int64_t i = 0;
    std::from_chars(s.data(), s.data() + s.size(), i);
    return i;
  }
  return 0;
}

namespace {
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_numeric()) return 1;
  return 2;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int lr = TypeRank(*this), rr = TypeRank(other);
  if (lr != rr) return lr < rr ? -1 : 1;
  if (lr == 0) return 0;  // both NULL
  if (lr == 1) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = ToDouble(), b = other.ToDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  return AsString().compare(other.AsString()) < 0
             ? -1
             : (AsString() == other.AsString() ? 0 : 1);
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_numeric()) {
    // Hash ints and integral doubles identically so 1 == 1.0 hash alike.
    double d = ToDouble();
    int64_t i = static_cast<int64_t>(d);
    if (static_cast<double>(i) == d) return Hash64(static_cast<uint64_t>(i));
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return Hash64(bits);
  }
  const std::string& s = AsString();
  return HashBytes(s.data(), s.size());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", AsDouble());
    return buf;
  }
  return AsString();
}

std::string Value::ToSQLLiteral() const {
  if (is_string()) {
    std::string out = "'";
    for (char c : AsString()) {
      if (c == '\'') out += "''";
      else out += c;
    }
    out += "'";
    return out;
  }
  return ToString();
}

Value Value::CastTo(ColumnType type) const {
  if (is_null()) return Value::Null();
  switch (type) {
    case ColumnType::kInt:
      return Value(ToInt());
    case ColumnType::kDouble:
      return Value(ToDouble());
    case ColumnType::kString:
      if (is_string()) return *this;
      return Value(ToString());
  }
  return *this;
}

uint64_t HashRow(const Row& row) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : row) {
    h = HashCombine(h, v.Hash());
  }
  return h;
}

}  // namespace sphere
