#include "common/thread_pool.h"

namespace sphere {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> g(mu_);
    tasks_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      task_cv_.wait(lk, [&] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> g(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace sphere
