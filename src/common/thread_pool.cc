#include "common/thread_pool.h"

#include "common/metrics.h"

namespace sphere {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock g(mu_);
    stop_ = true;
  }
  task_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock g(mu_);
    tasks_.push_back(std::move(task));
  }
  task_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lk(mu_);
  done_cv_.Wait(mu_, [&]() SPHERE_REQUIRES(mu_) {
    return tasks_.empty() && active_ == 0;
  });
}

ThreadPool* SharedThreadPool() {
  static ThreadPool* pool = [] {
    size_t n = std::thread::hardware_concurrency();
    if (n < 4) n = 4;
    ThreadPool* p = new ThreadPool(n);
    // Published once for the leaked singleton; snapshot-time probes read the
    // live queue state (DESIGN.md §13).
    auto& registry = metrics::Registry::Instance();
    registry.PublishProbe("executor_pool.queue_depth", p, [p] {
      return static_cast<int64_t>(p->queue_depth());
    });
    registry.PublishProbe("executor_pool.active", p, [p] {
      return static_cast<int64_t>(p->active());
    });
    registry.PublishProbe("executor_pool.threads", p, [p] {
      return static_cast<int64_t>(p->num_threads());
    });
    return p;
  }();
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(mu_);
      task_cv_.Wait(mu_, [&]() SPHERE_REQUIRES(mu_) {
        return stop_ || !tasks_.empty();
      });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock g(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) done_cv_.NotifyAll();
    }
  }
}

}  // namespace sphere
