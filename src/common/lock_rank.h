#ifndef SPHERE_COMMON_LOCK_RANK_H_
#define SPHERE_COMMON_LOCK_RANK_H_

namespace sphere {

/// Global lock hierarchy. A thread may only acquire a lock whose rank is
/// less than or equal to the rank of the lock it acquired most recently
/// (non-increasing order), so lock chains always run outer layer -> inner
/// layer and cross-layer deadlocks are impossible by construction:
///
///   adaptor > governor > transaction > engine > core > storage > common
///
/// Equal ranks are allowed to nest (the lock-order *graph* still catches
/// inversions between distinct same-rank locks — see common/lockdep.h), so a
/// subsystem can hold several of its own locks, e.g. address-ordered
/// Histogram::Merge or the txn-manager -> table-latch chain inside storage.
///
/// `kUnranked` locks (default-constructed, mostly test-local) are exempt
/// from rank checking and from the order graph; they still participate in
/// self-recursion detection.
///
/// The rank is ordering metadata, not ownership: a lock declared in
/// src/storage can carry kTransaction when it brackets storage-layer locks
/// (TransactionManager::mu_ wraps table latches while rolling back undo).
enum class LockRank : int {
  kUnranked = 0,
  kCommon = 1,       ///< leaf utilities: thread pool, latch, histogram, LRU
  kStorage = 2,      ///< table latches, catalog, B+Tree-adjacent state
  kCore = 3,         ///< route/rewrite/plan caches, algorithm registry
  kEngine = 4,       ///< executor, storage-node session state, net pools
  kTransaction = 5,  ///< XA/BASE coordinators, txn managers
  kGovernor = 6,     ///< registry, health, guard interceptors, raft
  kAdaptor = 7,      ///< proxy/jdbc front-end session state
};

/// Human-readable rank name for lockdep reports and tooling.
constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:    return "unranked";
    case LockRank::kCommon:      return "common";
    case LockRank::kStorage:     return "storage";
    case LockRank::kCore:        return "core";
    case LockRank::kEngine:      return "engine";
    case LockRank::kTransaction: return "transaction";
    case LockRank::kGovernor:    return "governor";
    case LockRank::kAdaptor:     return "adaptor";
  }
  return "?";
}

}  // namespace sphere

#endif  // SPHERE_COMMON_LOCK_RANK_H_
