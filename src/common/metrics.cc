#include "common/metrics.h"

#include <algorithm>
#include <utility>

namespace sphere::metrics {

size_t Counter::StripeIndex() {
  // Round-robin stripe assignment at first use per thread: cheaper and
  // better-distributed than hashing the thread id, and stable for the
  // thread's lifetime so its increments stay on one cache line.
  static std::atomic<size_t> next{0};
  thread_local size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

Registry& Registry::Instance() {
  // Leaked: nodes/caches unpublish probes from destructors that may run
  // during process teardown, after function-local statics are destroyed.
  static Registry* instance = new Registry();
  return *instance;
}

Counter* Registry::GetCounter(std::string_view name) {
  MutexLock g(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  MutexLock g(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  MutexLock g(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void Registry::PublishProbe(std::string_view name, const void* owner,
                            Probe probe) {
  MutexLock g(mu_);
  probes_[std::string(name)] = ProbeEntry{owner, std::move(probe)};
}

void Registry::UnpublishProbe(std::string_view name, const void* owner) {
  MutexLock g(mu_);
  auto it = probes_.find(name);
  if (it != probes_.end() && it->second.owner == owner) probes_.erase(it);
}

void Registry::UnpublishProbes(const void* owner) {
  MutexLock g(mu_);
  for (auto it = probes_.begin(); it != probes_.end();) {
    if (it->second.owner == owner) {
      it = probes_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Registry::MatchesPattern(std::string_view name,
                              std::string_view pattern) {
  if (pattern.empty()) return true;
  if (pattern.find('%') == std::string_view::npos) {
    return name.find(pattern) != std::string_view::npos;
  }
  // Iterative SQL-LIKE `%` match with backtracking to the last wildcard.
  size_t n = 0;
  size_t p = 0;
  size_t star = std::string_view::npos;
  size_t star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() && pattern[p] == '%') {
      star = p++;
      star_n = n;
    } else if (p < pattern.size() && pattern[p] == name[n]) {
      ++p;
      ++n;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::vector<Sample> Registry::Snapshot(std::string_view pattern) const {
  // Copy matching entries out under the lock, then evaluate probes and
  // histogram percentiles unlocked: a probe may take its own component's
  // mutex, and histogram reads take the histogram's mutex.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<std::pair<std::string, Probe>> probes;
  {
    MutexLock g(mu_);
    for (const auto& [name, c] : counters_) {
      if (MatchesPattern(name, pattern)) counters.emplace_back(name, c.get());
    }
    for (const auto& [name, gauge] : gauges_) {
      if (MatchesPattern(name, pattern)) gauges.emplace_back(name, gauge.get());
    }
    for (const auto& [name, h] : histograms_) {
      if (MatchesPattern(name, pattern)) {
        histograms.emplace_back(name, h.get());
      }
    }
    for (const auto& [name, entry] : probes_) {
      if (MatchesPattern(name, pattern)) {
        probes.emplace_back(name, entry.probe);
      }
    }
  }

  std::vector<Sample> out;
  out.reserve(counters.size() + gauges.size() + histograms.size() +
              probes.size());
  for (const auto& [name, c] : counters) {
    Sample s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges) {
    Sample s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, probe] : probes) {
    Sample s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = probe ? probe() : 0;
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms) {
    Sample s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.value = h->count();
    s.avg_ms = h->AvgMillis();
    s.p50_ms = h->PercentileMillis(50);
    s.p95_ms = h->PercentileMillis(95);
    s.p99_ms = h->PercentileMillis(99);
    s.max_ms = static_cast<double>(h->max_micros()) / 1000.0;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

void Registry::ResetForTest() {
  std::vector<Counter*> counters;
  std::vector<Gauge*> gauges;
  std::vector<Histogram*> histograms;
  {
    MutexLock g(mu_);
    for (auto& [name, c] : counters_) counters.push_back(c.get());
    for (auto& [name, gauge] : gauges_) gauges.push_back(gauge.get());
    for (auto& [name, h] : histograms_) histograms.push_back(h.get());
  }
  for (Counter* c : counters) c->Reset();
  for (Gauge* g : gauges) g->Set(0);
  for (Histogram* h : histograms) h->Reset();
}

}  // namespace sphere::metrics
