#ifndef SPHERE_COMMON_SCHEMA_H_
#define SPHERE_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace sphere {

/// Definition of one table column.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
  bool primary_key = false;
  bool not_null = false;

  Column() = default;
  Column(std::string n, ColumnType t, bool pk = false, bool nn = false)
      : name(std::move(n)), type(t), primary_key(pk), not_null(nn) {}
};

/// Ordered column list of a table (or of a derived result set).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Returns the index of `name` (case-insensitive) or -1.
  int IndexOf(const std::string& name) const;

  /// Index of the (single-column) primary key, or -1 when none is declared.
  int PrimaryKeyIndex() const;

  /// Column names in order.
  std::vector<std::string> ColumnNames() const;

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace sphere

#endif  // SPHERE_COMMON_SCHEMA_H_
