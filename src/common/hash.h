#ifndef SPHERE_COMMON_HASH_H_
#define SPHERE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sphere {

/// 64-bit finalizer (MurmurHash3 fmix64). Good avalanche for integer keys;
/// used by hash sharding algorithms and hash joins.
inline uint64_t Hash64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// FNV-1a over a byte buffer.
inline uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Boost-style hash combiner.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// CRC32 (reflected, poly 0xEDB88320), table-driven. Used for consistency
/// checks by the scaling feature.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace sphere

#endif  // SPHERE_COMMON_HASH_H_
