#ifndef SPHERE_COMMON_RNG_H_
#define SPHERE_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace sphere {

/// Deterministic, fast xorshift128+ RNG. Benchmarks and workload generators
/// use this so runs are reproducible given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x2545F4914F6CDD1DULL) {
    s0_ = seed ? seed : 1;
    s1_ = seed * 0x9E3779B97F4A7C15ULL + 0xBF58476D1CE4E5B9ULL;
    if (!s1_) s1_ = 2;
    // Warm up.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// TPC-C style non-uniform random (NURand).
  int64_t NURand(int64_t a, int64_t x, int64_t y, int64_t c = 42) {
    return (((Uniform(0, a) | Uniform(x, y)) + c) % (y - x + 1)) + x;
  }

  /// Random lower-case alphanumeric string of length n.
  std::string RandomString(size_t n) {
    static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string s(n, 'a');
    for (size_t i = 0; i < n; ++i) s[i] = kAlphabet[Next() % 36];
    return s;
  }

 private:
  uint64_t s0_, s1_;
};

}  // namespace sphere

#endif  // SPHERE_COMMON_RNG_H_
