#ifndef SPHERE_COMMON_TRACE_H_
#define SPHERE_COMMON_TRACE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/mutex.h"

namespace sphere::trace {

/// One node of a statement's span tree. Spans are arena-allocated by their
/// owning Trace and die with it; pointers must not outlive the Trace.
struct Span {
  struct Attr {
    std::string key;
    std::string value;
  };

  std::string name;
  int64_t start_us = 0;
  /// -1 while the span is open; wall-clock micros once ended.
  int64_t duration_us = -1;
  int depth = 0;
  Span* parent = nullptr;
  std::vector<Span*> children;
  std::vector<Attr> attrs;
};

/// A statement's span tree (DESIGN.md §13). Span nodes live in a private
/// arena owned by the trace — deliberately *not* the thread-local statement
/// arena, which is reset before a TRACE renders its tree. Span creation and
/// attribute writes are serialized by an internal leaf-ranked mutex, so
/// executor pool workers may open per-unit child spans concurrently.
///
/// Ending a span feeds the `stage.<name>.latency` histogram in the metrics
/// registry, which is how sampled statements accumulate stage-latency
/// distributions without keeping their trees around.
class Trace {
 public:
  explicit Trace(std::string_view root_name);
  ~Trace();

  /// Rewinds to a fresh one-span tree rooted at `root_name`, destroying the
  /// previous spans but retaining the arena's chunks. All outstanding Span
  /// pointers are invalidated. Lets StatementTraceScope recycle one spare
  /// trace per thread so steady-state sampling never touches malloc.
  void ResetForReuse(std::string_view root_name) SPHERE_EXCLUDES(mu_);

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  Span* root() const { return root_; }

  /// Opens a child span of `parent` (the root when null).
  Span* StartSpan(Span* parent, std::string_view name) SPHERE_EXCLUDES(mu_);
  /// Closes `span`, recording its wall time into the stage histogram.
  void EndSpan(Span* span) SPHERE_EXCLUDES(mu_);
  void AddAttr(Span* span, std::string_view key, std::string value)
      SPHERE_EXCLUDES(mu_);

  int64_t span_count() const SPHERE_EXCLUDES(mu_);

  /// Pre-order walk of the (finished) tree.
  void Visit(const std::function<void(const Span&)>& fn) const;

 private:
  mutable Mutex mu_{LockRank::kCommon, "common/trace"};
  Arena arena_ SPHERE_GUARDED_BY(mu_);
  // analyze-exempt(guarded-by): written under mu_ only in the constructor
  // and ResetForReuse, both before any concurrent reader exists
  Span* root_ = nullptr;
  int64_t span_count_ SPHERE_GUARDED_BY(mu_) = 0;
};

/// The trace recording the calling thread's current statement, or null.
Trace* Current();
/// The innermost open span on this thread (for parenting), or null.
Span* CurrentSpan();

/// Installs `t` as the thread's current trace for a dynamic extent (used by
/// DistSQL TRACE to force-capture one statement). Restores the previous
/// trace/span on exit.
class TraceScope {
 public:
  explicit TraceScope(Trace* t);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Trace* prev_trace_;
  Span* prev_span_;
  int prev_depth_;
};

/// Kernel-stage helper: opens a child of the thread's current span and makes
/// itself current; a no-op costing one thread-local read when no trace is
/// active. Guard attribute construction with `active()` so untraced
/// statements pay nothing.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return span_ != nullptr; }
  Span* span() const { return span_; }
  void Note(std::string_view key, std::string value);

 private:
  Trace* trace_ = nullptr;
  Span* span_ = nullptr;
  Span* prev_ = nullptr;
};

/// Structural capture hook: receives every completed statement trace
/// (sampled or forced). Used by tests and benches; implementations must be
/// thread-safe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnTraceComplete(const Trace& trace) = 0;
};

/// Installs `sink` (null clears); returns the previous sink.
TraceSink* SetTraceSink(TraceSink* sink);
/// Delivers a finished trace to the installed sink, if any.
void NotifySink(const Trace& trace);

/// Statement-level driver used by the runtime around each statement:
///  - no trace current + sampler fires → owns a fresh trace for this
///    statement (root span "statement"), uninstalls + notifies the sink on
///    exit;
///  - a trace is already current (TRACE ... or an outer statement scope) →
///    joins it, opening a "statement" span only at the outermost level;
///  - otherwise a no-op.
/// `sample_interval` 0 never samples, 1 samples everything, N every Nth.
class StatementTraceScope {
 public:
  StatementTraceScope(bool enabled, uint32_t sample_interval);
  ~StatementTraceScope();

  StatementTraceScope(const StatementTraceScope&) = delete;
  StatementTraceScope& operator=(const StatementTraceScope&) = delete;

  bool active() const { return span_ != nullptr; }
  Span* span() const { return span_; }
  void Note(std::string_view key, std::string value);

 private:
  std::unique_ptr<Trace> owned_;
  Trace* trace_ = nullptr;
  Span* span_ = nullptr;
  Span* prev_ = nullptr;
  bool joined_ = false;
};

/// Renders a finished trace as a fixed-width table (TablePrinter): one row
/// per span, names indented by depth, attrs joined `k=v`.
std::string RenderTree(const Trace& trace);

}  // namespace sphere::trace

#endif  // SPHERE_COMMON_TRACE_H_
