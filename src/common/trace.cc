#include "common/trace.h"

#include <atomic>
#include <utility>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/table_printer.h"

namespace sphere::trace {

namespace {

thread_local Trace* g_current_trace = nullptr;
thread_local Span* g_current_span = nullptr;
/// Nesting depth of StatementTraceScopes on this thread, so only the
/// outermost one opens a "statement" span (ExecutePlan re-enters
/// ExecuteStatement on the same thread).
thread_local int g_statement_depth = 0;

std::atomic<TraceSink*> g_sink{nullptr};

/// The finished trace a StatementTraceScope left behind for reuse, so
/// steady-state sampling recycles one trace (and its arena chunks) per
/// thread instead of paying malloc on every sampled statement.
thread_local std::unique_ptr<Trace> g_spare_trace;

/// Per-thread countdown sampler: the thread's first eligible statement is
/// sampled, then every `interval`-th after it. Thread-local on purpose — a
/// shared counter would bounce a cache line between executor threads on
/// every statement just to decide "no".
bool SamplerFires(uint32_t interval) {
  if (interval == 0) return false;
  if (interval == 1) return true;
  thread_local uint32_t countdown = 0;
  thread_local uint32_t last_interval = 0;
  if (interval != last_interval) {  // knob changed; restart the cycle
    last_interval = interval;
    countdown = 0;
  }
  if (countdown == 0) {
    countdown = interval - 1;
    return true;
  }
  --countdown;
  return false;
}

/// Resolves `stage.<stage>.latency` once per (thread, stage name); the
/// registry hands out process-lifetime pointers, so the cache never goes
/// stale (ResetForTest zeroes histograms in place).
Histogram* StageHistogram(const std::string& stage) {
  struct Entry {
    std::string stage;
    Histogram* hist;
  };
  thread_local std::vector<Entry> cache;
  for (const Entry& e : cache) {
    if (e.stage == stage) return e.hist;
  }
  std::string name;
  name.reserve(stage.size() + 14);
  name += "stage.";
  name += stage;
  name += ".latency";
  Histogram* h = metrics::Registry::Instance().GetHistogram(name);
  cache.push_back(Entry{stage, h});
  return h;
}

}  // namespace

Trace::Trace(std::string_view root_name) {
  int64_t now = NowMicros();
  MutexLock g(mu_);
  root_ = arena_.Create<Span>();
  root_->name.assign(root_name.data(), root_name.size());
  root_->start_us = now;
  span_count_ = 1;
}

// Lock-free on purpose: destruction implies exclusive access (span pointers
// must not outlive the Trace), and the thread-exit destructor of the spare
// trace runs after lockdep's own thread-local state is gone — taking mu_
// there would write into freed memory.
Trace::~Trace() SPHERE_NO_THREAD_SAFETY_ANALYSIS {
  root_ = nullptr;
  arena_.Reset();  // runs Span destructors (strings/vectors)
}

void Trace::ResetForReuse(std::string_view root_name) {
  int64_t now = NowMicros();
  MutexLock g(mu_);
  root_ = nullptr;
  arena_.Reset();  // destroys the old spans; chunks stay allocated
  root_ = arena_.Create<Span>();
  root_->name.assign(root_name.data(), root_name.size());
  root_->start_us = now;
  span_count_ = 1;
}

Span* Trace::StartSpan(Span* parent, std::string_view name) {
  int64_t now = NowMicros();
  MutexLock g(mu_);
  Span* s = arena_.Create<Span>();
  s->name.assign(name.data(), name.size());
  s->start_us = now;
  Span* p = parent != nullptr ? parent : root_;
  s->parent = p;
  s->depth = p != nullptr ? p->depth + 1 : 0;
  if (p != nullptr) p->children.push_back(s);
  ++span_count_;
  return s;
}

void Trace::EndSpan(Span* span) {
  if (span == nullptr) return;
  int64_t now = NowMicros();
  int64_t duration = 0;
  {
    MutexLock g(mu_);
    if (span->duration_us >= 0) return;  // already ended
    span->duration_us = now - span->start_us;
    duration = span->duration_us;
  }
  // Outside mu_: the histogram takes its own (leaf) lock. The pointer comes
  // from a per-thread cache so steady-state EndSpan never allocates.
  StageHistogram(span->name)->Record(duration);
}

void Trace::AddAttr(Span* span, std::string_view key, std::string value) {
  if (span == nullptr) return;
  MutexLock g(mu_);
  span->attrs.push_back(Span::Attr{std::string(key), std::move(value)});
}

int64_t Trace::span_count() const {
  MutexLock g(mu_);
  return span_count_;
}

void Trace::Visit(const std::function<void(const Span&)>& fn) const {
  // Only valid on a quiescent tree (statement finished, workers joined).
  std::function<void(const Span*)> walk = [&](const Span* s) {
    if (s == nullptr) return;
    fn(*s);
    for (const Span* child : s->children) walk(child);
  };
  walk(root_);
}

Trace* Current() { return g_current_trace; }
Span* CurrentSpan() { return g_current_span; }

TraceScope::TraceScope(Trace* t)
    : prev_trace_(g_current_trace),
      prev_span_(g_current_span),
      prev_depth_(g_statement_depth) {
  g_current_trace = t;
  g_current_span = t != nullptr ? t->root() : nullptr;
  g_statement_depth = 0;
}

TraceScope::~TraceScope() {
  g_current_trace = prev_trace_;
  g_current_span = prev_span_;
  g_statement_depth = prev_depth_;
}

ScopedSpan::ScopedSpan(std::string_view name) {
  Trace* t = g_current_trace;
  if (t == nullptr) return;
  trace_ = t;
  prev_ = g_current_span;
  span_ = t->StartSpan(prev_, name);
  g_current_span = span_;
}

ScopedSpan::~ScopedSpan() {
  if (span_ == nullptr) return;
  trace_->EndSpan(span_);
  g_current_span = prev_;
}

void ScopedSpan::Note(std::string_view key, std::string value) {
  if (span_ == nullptr) return;
  trace_->AddAttr(span_, key, std::move(value));
}

TraceSink* SetTraceSink(TraceSink* sink) { return g_sink.exchange(sink); }

void NotifySink(const Trace& trace) {
  TraceSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) sink->OnTraceComplete(trace);
}

StatementTraceScope::StatementTraceScope(bool enabled,
                                         uint32_t sample_interval) {
  Trace* cur = g_current_trace;
  if (cur != nullptr) {
    // Joining a forced (TRACE ...) or outer statement trace.
    if (g_statement_depth == 0) {
      trace_ = cur;
      prev_ = g_current_span;
      span_ = cur->StartSpan(prev_, "statement");
      g_current_span = span_;
    }
    ++g_statement_depth;
    joined_ = true;
    return;
  }
  if (!enabled || !SamplerFires(sample_interval)) return;
  if (g_spare_trace != nullptr) {
    owned_ = std::move(g_spare_trace);
    owned_->ResetForReuse("statement");
  } else {
    owned_ = std::make_unique<Trace>("statement");
  }
  trace_ = owned_.get();
  span_ = trace_->root();
  g_current_trace = trace_;
  g_current_span = span_;
  g_statement_depth = 1;
}

StatementTraceScope::~StatementTraceScope() {
  if (owned_ != nullptr) {
    trace_->EndSpan(span_);
    g_current_trace = nullptr;
    g_current_span = nullptr;
    g_statement_depth = 0;
    NotifySink(*owned_);
    // Park the trace for the thread's next sampled statement; the sink is
    // done with it (OnTraceComplete is synchronous).
    g_spare_trace = std::move(owned_);
    return;
  }
  if (joined_) --g_statement_depth;
  if (span_ != nullptr) {
    trace_->EndSpan(span_);
    g_current_span = prev_;
  }
}

void StatementTraceScope::Note(std::string_view key, std::string value) {
  if (span_ == nullptr) return;
  trace_->AddAttr(span_, key, std::move(value));
}

std::string RenderTree(const Trace& trace) {
  TablePrinter table({"span", "duration_us", "detail"});
  trace.Visit([&](const Span& s) {
    std::string label(static_cast<size_t>(s.depth) * 2, ' ');
    label += s.name;
    std::string detail;
    for (const Span::Attr& a : s.attrs) {
      if (!detail.empty()) detail += ' ';
      detail += a.key;
      detail += '=';
      detail += a.value;
    }
    table.AddRow({std::move(label),
                  s.duration_us >= 0 ? std::to_string(s.duration_us) : "-",
                  std::move(detail)});
  });
  return table.ToString();
}

}  // namespace sphere::trace
