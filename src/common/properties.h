#ifndef SPHERE_COMMON_PROPERTIES_H_
#define SPHERE_COMMON_PROPERTIES_H_

#include <map>
#include <string>
#include <vector>

namespace sphere {

/// String key/value property bag with typed getters. Sharding algorithm
/// configuration (e.g. "sharding-count"=4) and adaptor options flow through
/// this, mirroring the Java Properties the paper's DistSQL examples use.
class Properties {
 public:
  Properties() = default;
  Properties(std::initializer_list<std::pair<const std::string, std::string>> init)
      : kv_(init) {}

  void Set(const std::string& key, std::string value) {
    kv_[key] = std::move(value);
  }
  bool Has(const std::string& key) const { return kv_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  const std::map<std::string, std::string>& entries() const { return kv_; }
  bool empty() const { return kv_.empty(); }

  /// Renders as `"k"="v", ...` for RQL display.
  std::string ToString() const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace sphere

#endif  // SPHERE_COMMON_PROPERTIES_H_
