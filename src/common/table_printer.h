#ifndef SPHERE_COMMON_TABLE_PRINTER_H_
#define SPHERE_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace sphere {

/// Fixed-width ASCII table renderer shared by bench mains, trace rendering,
/// and DistSQL observability output (DESIGN.md §13).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (`+---+` separators, left-aligned cells).
  std::string ToString() const;
  /// ToString() to stdout.
  void Print() const;

  static std::string Fmt(double v, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sphere

#endif  // SPHERE_COMMON_TABLE_PRINTER_H_
