#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace sphere {

Histogram::Histogram()
    : buckets_(kNumBuckets, 0), count_(0), sum_(0), min_(INT64_MAX), max_(0) {}

int64_t Histogram::BucketLimit(int i) {
  // Geometric progression: 1us * 1.06^i, giving ~6% resolution over
  // ~1us..~10min in 512 buckets.
  return static_cast<int64_t>(std::pow(1.06, i));
}

int Histogram::BucketFor(int64_t micros) {
  if (micros < 1) micros = 1;
  int idx = static_cast<int>(std::log(static_cast<double>(micros)) / std::log(1.06));
  if (idx < 0) idx = 0;
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx;
}

void Histogram::Record(int64_t micros) {
  MutexLock g(mu_);
  buckets_[BucketFor(micros)]++;
  count_++;
  sum_ += static_cast<double>(micros);
  min_ = std::min(min_, micros);
  max_ = std::max(max_, micros);
}

// Locks both histograms in address order (deadlock-free for concurrent
// A.Merge(B) / B.Merge(A)); the conditional two-mutex acquisition is beyond
// what the static analysis can model.
void Histogram::Merge(const Histogram& other) SPHERE_NO_THREAD_SAFETY_ANALYSIS {
  if (&other == this) return;
  Mutex* first = &mu_;
  Mutex* second = &other.mu_;
  if (second < first) std::swap(first, second);
  MutexLock g1(*first);
  MutexLock g2(*second);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::PercentileMillis(double p) const {
  MutexLock g(mu_);
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min_) / 1000.0;
  if (p >= 100.0) return static_cast<double>(max_) / 1000.0;
  int64_t threshold = static_cast<int64_t>(std::ceil(count_ * p / 100.0));
  if (threshold < 1) threshold = 1;
  if (threshold > count_) threshold = count_;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (seen >= threshold) {
      // Clamp the bucket's range to the observed extremes (a single-sample
      // histogram resolves exactly), then interpolate by rank within the
      // bucket instead of snapping to its upper limit.
      double lo = static_cast<double>(i == 0 ? 0 : BucketLimit(i - 1));
      double hi = static_cast<double>(BucketLimit(i));
      lo = std::max(lo, static_cast<double>(min_));
      hi = std::min(hi, static_cast<double>(max_));
      if (hi < lo) hi = lo;
      int64_t in_bucket = buckets_[i];
      int64_t before = seen - in_bucket;
      double frac = static_cast<double>(threshold - before) /
                    static_cast<double>(in_bucket);
      return (lo + (hi - lo) * frac) / 1000.0;
    }
  }
  return static_cast<double>(max_) / 1000.0;
}

void Histogram::Reset() {
  MutexLock g(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = INT64_MAX;
  max_ = 0;
}

}  // namespace sphere
