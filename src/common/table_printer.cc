#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/strings.h"

namespace sphere {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int decimals) {
  return StrFormat("%.*f", decimals, v);
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  auto append_sep = [&] {
    out.push_back('+');
    for (size_t w : widths) {
      out.append(w + 2, '-');
      out.push_back('+');
    }
    out.push_back('\n');
  };
  auto append_row = [&](const std::vector<std::string>& cells) {
    out.push_back('|');
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out.push_back(' ');
      out.append(cell);
      out.append(widths[i] - cell.size() + 1, ' ');
      out.push_back('|');
    }
    out.push_back('\n');
  };
  append_sep();
  append_row(headers_);
  append_sep();
  for (const auto& row : rows_) append_row(row);
  append_sep();
  return out;
}

void TablePrinter::Print() const {
  std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

}  // namespace sphere
