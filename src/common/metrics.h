#ifndef SPHERE_COMMON_METRICS_H_
#define SPHERE_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"

namespace sphere::metrics {

/// Monotonic counter with thread-striped recording: `Add` touches one of
/// eight cache-line-isolated atomic slots picked per thread, so concurrent
/// hot-path increments never contend on a shared line. Reads sum the stripes
/// (eventually consistent between concurrent adds, exact once they finish).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta) {
    stripes_[StripeIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t value() const {
    int64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Stripe& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<int64_t> v{0};
  };
  static size_t StripeIndex();

  Stripe stripes_[kStripes];
};

/// Point-in-time value (queue depth, pool occupancy, liveness flag).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One row of a registry snapshot. Counters and gauges fill `value`;
/// histograms fill `value` with the sample count plus the latency columns.
struct Sample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;
  double avg_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Process-wide registry of named metrics (DESIGN.md §13).
///
/// Two publication styles:
///  - *owned* metrics: `GetCounter/GetGauge/GetHistogram` get-or-create by
///    name and return a stable pointer, never freed — callers cache the
///    pointer and record lock-free;
///  - *probes*: `PublishProbe` registers a callback evaluated at snapshot
///    time, for stats that already live in some component (cache shard
///    atomics, pool occupancy, health state). Probes carry an owner token so
///    a dying component removes exactly its own entries; re-publishing a
///    name overwrites (last wins), and unpublish only removes entries still
///    owned by the caller.
///
/// Snapshot evaluates probes *outside* the registry mutex, so a probe may
/// take its component's own lock (any rank) without ordering through the
/// registry; probes must not call back into the registry.
class Registry {
 public:
  static Registry& Instance();

  Counter* GetCounter(std::string_view name) SPHERE_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name) SPHERE_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name) SPHERE_EXCLUDES(mu_);

  using Probe = std::function<int64_t()>;
  void PublishProbe(std::string_view name, const void* owner, Probe probe)
      SPHERE_EXCLUDES(mu_);
  void UnpublishProbe(std::string_view name, const void* owner)
      SPHERE_EXCLUDES(mu_);
  /// Removes every probe registered with `owner`.
  void UnpublishProbes(const void* owner) SPHERE_EXCLUDES(mu_);

  /// All metrics (sorted by name) whose name matches `pattern`: empty
  /// matches everything, `%` is a SQL-LIKE wildcard, and a pattern without
  /// `%` matches as a substring.
  std::vector<Sample> Snapshot(std::string_view pattern = {}) const
      SPHERE_EXCLUDES(mu_);

  /// Zeroes owned counters/gauges and resets histograms; probes stay (their
  /// owners hold live state). Test isolation only — pointers stay valid.
  void ResetForTest() SPHERE_EXCLUDES(mu_);

  static bool MatchesPattern(std::string_view name, std::string_view pattern);

 private:
  Registry() = default;

  struct ProbeEntry {
    const void* owner = nullptr;
    Probe probe;
  };

  mutable Mutex mu_{LockRank::kCommon, "common/metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SPHERE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SPHERE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SPHERE_GUARDED_BY(mu_);
  std::map<std::string, ProbeEntry, std::less<>> probes_ SPHERE_GUARDED_BY(mu_);
};

}  // namespace sphere::metrics

#endif  // SPHERE_COMMON_METRICS_H_
