#include "common/keygen.h"

#include <cstdio>

#include "common/clock.h"
#include "common/hash.h"
#include "common/strings.h"

namespace sphere {

namespace {
constexpr int kWorkerBits = 10;
constexpr int kSequenceBits = 12;
constexpr int64_t kSequenceMask = (1LL << kSequenceBits) - 1;
}  // namespace

SnowflakeKeyGenerator::SnowflakeKeyGenerator(uint16_t worker_id)
    : worker_id_(static_cast<uint16_t>(worker_id & ((1u << kWorkerBits) - 1))),
      last_state_(0) {}

Value SnowflakeKeyGenerator::NextKey() {
  for (;;) {
    int64_t prev = last_state_.load(std::memory_order_relaxed);
    int64_t prev_millis = prev >> kSequenceBits;
    int64_t now = WallMillis() - kEpochMillis;
    int64_t millis = now > prev_millis ? now : prev_millis;
    int64_t seq = (millis == prev_millis) ? ((prev & kSequenceMask) + 1) : 0;
    if (seq > kSequenceMask) {
      // Sequence exhausted within this millisecond: borrow the next one.
      millis += 1;
      seq = 0;
    }
    int64_t next = (millis << kSequenceBits) | seq;
    if (last_state_.compare_exchange_weak(prev, next,
                                          std::memory_order_relaxed)) {
      return Value((millis << (kWorkerBits + kSequenceBits)) |
                   (static_cast<int64_t>(worker_id_) << kSequenceBits) | seq);
    }
  }
}

int64_t SnowflakeKeyGenerator::TimestampOf(int64_t id) {
  return (id >> (kWorkerBits + kSequenceBits)) + kEpochMillis;
}

int64_t SnowflakeKeyGenerator::WorkerOf(int64_t id) {
  return (id >> kSequenceBits) & ((1LL << kWorkerBits) - 1);
}

UuidKeyGenerator::UuidKeyGenerator(uint64_t seed)
    : state_(seed ? seed : 0x853c49e6748fea9bULL) {}

Value UuidKeyGenerator::NextKey() {
  uint64_t a = Hash64(state_.fetch_add(0x9E3779B97F4A7C15ULL));
  uint64_t b = Hash64(a ^ 0xda3e39cb94b95bdbULL);
  char buf[37];
  std::snprintf(buf, sizeof(buf), "%08x-%04x-4%03x-%04x-%012llx",
                static_cast<uint32_t>(a >> 32),
                static_cast<uint32_t>(a >> 16) & 0xFFFF,
                static_cast<uint32_t>(a) & 0xFFF,
                (static_cast<uint32_t>(b >> 48) & 0x3FFF) | 0x8000,
                static_cast<unsigned long long>(b & 0xFFFFFFFFFFFFULL));
  return Value(std::string(buf));
}

std::unique_ptr<KeyGenerator> CreateKeyGenerator(const std::string& type,
                                                 uint16_t worker_id) {
  if (EqualsIgnoreCase(type, "SNOWFLAKE")) {
    return std::make_unique<SnowflakeKeyGenerator>(worker_id);
  }
  if (EqualsIgnoreCase(type, "UUID")) {
    return std::make_unique<UuidKeyGenerator>(worker_id + 1);
  }
  return nullptr;
}

}  // namespace sphere
