#include "common/status.h"

namespace sphere {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kSyntaxError:
      return "SyntaxError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kRouteError:
      return "RouteError";
    case StatusCode::kTransactionError:
      return "TransactionError";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace sphere
