#ifndef SPHERE_COMMON_STATUS_H_
#define SPHERE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace sphere {

/// Error categories used across the whole platform. Mirrors the failure
/// surface of a sharding middleware: client errors (bad SQL, unknown table),
/// routing errors, transaction outcomes and infrastructure failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kSyntaxError,
  kUnsupported,
  kRouteError,
  kTransactionError,
  kConflict,
  kUnavailable,
  kInternal,
  kTimeout,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code ("OK", "NotFound"...).
const char* StatusCodeName(StatusCode code);

/// Cheap value-type status carrying a code and an optional message.
///
/// The data plane of this project does not throw exceptions; every fallible
/// operation returns a Status (or Result<T>). Follows the RocksDB/Arrow idiom.
/// [[nodiscard]]: silently dropping a Status swallows an error — callers must
/// propagate, branch on it, or visibly discard with a `(void)` cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status SyntaxError(std::string m) {
    return Status(StatusCode::kSyntaxError, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status RouteError(std::string m) {
    return Status(StatusCode::kRouteError, std::move(m));
  }
  static Status TransactionError(std::string m) {
    return Status(StatusCode::kTransactionError, std::move(m));
  }
  static Status Conflict(std::string m) {
    return Status(StatusCode::kConflict, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Timeout(std::string m) {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Formats as "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller.
#define SPHERE_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::sphere::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace sphere

#endif  // SPHERE_COMMON_STATUS_H_
