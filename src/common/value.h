#ifndef SPHERE_COMMON_VALUE_H_
#define SPHERE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace sphere {

/// Column data types supported by the embedded storage nodes. The SQL front
/// end maps dialect type names (INT, BIGINT, VARCHAR(n), TEXT, DOUBLE,
/// DECIMAL...) onto these.
enum class ColumnType {
  kInt,     ///< 64-bit signed integer.
  kDouble,  ///< IEEE double.
  kString,  ///< Variable-length UTF-8 string.
};

const char* ColumnTypeName(ColumnType type);

/// A dynamically typed SQL value: NULL, INTEGER, DOUBLE or STRING.
///
/// Values are small, copyable and totally ordered (NULL sorts first; numeric
/// types compare numerically across int/double, mirroring SQL comparison
/// semantics of the integrated databases).
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : v_(std::monostate{}) {}
  Value(int64_t i) : v_(i) {}              // NOLINT
  Value(int i) : v_(int64_t{i}) {}         // NOLINT
  Value(double d) : v_(d) {}               // NOLINT
  Value(std::string s) : v_(std::move(s)) {}  // NOLINT
  Value(const char* s) : v_(std::string(s)) {}  // NOLINT

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Precondition: is_int().
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  /// Precondition: is_double().
  double AsDouble() const { return std::get<double>(v_); }
  /// Precondition: is_string().
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric coercion: int -> double, double -> double. Returns 0.0 for
  /// non-numeric values.
  double ToDouble() const;
  /// Numeric coercion to integer (double truncates). Returns 0 otherwise.
  int64_t ToInt() const;

  /// SQL-style three-valued-free total order used by ORDER BY and index keys:
  /// NULL < numerics < strings; numerics compare by value across types.
  /// Returns <0, 0 or >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// Stable 64-bit hash consistent with operator== (ints and equal doubles
  /// hash alike).
  uint64_t Hash() const;

  /// Renders the value for result display ("NULL", 42, 1.5, abc).
  std::string ToString() const;
  /// Renders as a SQL literal (strings quoted and escaped, NULL keyword).
  std::string ToSQLLiteral() const;

  /// Coerces the value to the given column type (e.g. on INSERT). Lossy
  /// string->number conversions parse the prefix; NULL stays NULL.
  Value CastTo(ColumnType type) const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// A tuple of values; the unit that flows through executors and mergers.
using Row = std::vector<Value>;

/// Hash of a full row (order-sensitive), used by hash joins and group-by.
uint64_t HashRow(const Row& row);

}  // namespace sphere

#endif  // SPHERE_COMMON_VALUE_H_
