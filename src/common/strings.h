#ifndef SPHERE_COMMON_STRINGS_H_
#define SPHERE_COMMON_STRINGS_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace sphere {

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);
/// ASCII upper-case copy.
std::string ToUpper(std::string_view s);
/// Case-insensitive equality (ASCII). SQL identifiers compare this way.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);
/// Trims ASCII whitespace on both sides.
std::string Trim(std::string_view s);
/// Splits on a single character; keeps empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);
/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
/// True if `s` starts with `prefix`, case-insensitively.
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);
/// True if `s` contains `needle`, case-insensitively.
bool ContainsIgnoreCase(std::string_view s, std::string_view needle);
/// Simple SQL LIKE matcher supporting % and _.
bool LikeMatch(std::string_view text, std::string_view pattern);
/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Hash of the ASCII-lowered bytes of `s`, without allocating the lowered
/// copy. Pairs with EqualsIgnoreCase for case-insensitive hash containers.
size_t HashIgnoreCase(std::string_view s);

/// Transparent hasher for case-insensitive string keys: lets unordered
/// containers look up `std::string` keys by `std::string_view` (or plain
/// `const char*`) with no temporary string on the hot path.
struct CaseInsensitiveHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const { return HashIgnoreCase(s); }
};

/// Transparent equality companion to CaseInsensitiveHash.
struct CaseInsensitiveEqual {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return EqualsIgnoreCase(a, b);
  }
};

/// Transparent exact-case hasher, for string-keyed containers probed with
/// string_views (e.g. the statement cache keyed by SQL text).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace sphere

#endif  // SPHERE_COMMON_STRINGS_H_
