#ifndef SPHERE_COMMON_ARENA_H_
#define SPHERE_COMMON_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace sphere {

/// Bump-pointer arena for statement-scoped allocations (DESIGN.md §12).
///
/// Allocation is a pointer bump; deallocation is a no-op until Reset(), which
/// reclaims every allocation of the epoch at once. Chunks grow geometrically
/// (4 KiB doubling to 256 KiB) and are retained across Reset() calls, so a
/// steady-state workload stops touching malloc entirely: the second and every
/// later statement of a given shape runs inside already-reserved memory.
///
/// Trivially-destructible types are the fast path. Non-trivial types created
/// through Create<T>() get their destructor registered and run (in reverse
/// creation order) by Reset(). Objects placed via raw Allocate() are the
/// caller's problem.
///
/// Under AddressSanitizer the reclaimed space is poisoned on Reset() and
/// unpoisoned on reuse, so a pointer that escapes the statement scope traps
/// on its next dereference instead of silently reading recycled bytes.
///
/// Not thread-safe; one arena belongs to one thread (see ArenaScope).
class Arena {
 public:
  static constexpr size_t kMinChunkSize = 4096;
  static constexpr size_t kMaxChunkSize = 256 * 1024;

  Arena() = default;
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two ≤ 16, or the
  /// natural malloc alignment for oversize requests). Never returns null.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t));

  /// Constructs a T in the arena. Non-trivially-destructible types are
  /// destroyed by the next Reset(); trivial ones are simply abandoned.
  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      RegisterDestructor(obj, [](void* p) { static_cast<T*>(p)->~T(); });
    }
    return obj;
  }

  /// Queues `fn(obj)` to run at the next Reset(), LIFO order.
  void RegisterDestructor(void* obj, void (*fn)(void*));

  /// Ends the epoch: runs registered destructors in reverse order, poisons
  /// the reclaimed space (ASan builds), and rewinds the bump pointer. Chunks
  /// are kept for reuse.
  void Reset();

  /// Bytes handed out since the last Reset (excludes alignment padding).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total capacity currently reserved from the heap.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t chunk_count() const { return chunks_.size(); }
  uint64_t reset_count() const { return reset_count_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };
  struct DtorNode {
    void (*fn)(void*);
    void* obj;
    DtorNode* next;
  };

  /// Slow path: advances to the next retained chunk that fits, or grows.
  char* Refill(size_t size, size_t align);

  std::vector<Chunk> chunks_;
  size_t current_chunk_ = 0;     ///< index of the chunk being bumped
  char* ptr_ = nullptr;          ///< next free byte in the current chunk
  char* end_ = nullptr;          ///< one past the current chunk
  size_t next_chunk_size_ = kMinChunkSize;
  DtorNode* dtors_ = nullptr;    ///< LIFO list, nodes live in the arena
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
  uint64_t reset_count_ = 0;
};

/// The arena bound to the calling thread's current statement scope, or null
/// when no scope is active (allocations fall back to the heap).
Arena* CurrentArena();

/// RAII statement scope. The knob-gated form activates the thread's
/// statement arena for the dynamic extent of one statement — unless a scope
/// is already active (reentrant execution, e.g. a storage node serving a
/// middleware statement inline), in which case it no-ops and the outer scope
/// keeps ownership. The owning scope Reset()s the arena on exit, so nothing
/// allocated inside may outlive it (see ArenaSuspend for escapes).
class ArenaScope {
 public:
  /// Gated form: activates the thread-local statement arena iff `active` and
  /// no arena is already current. Resets it on exit when owned.
  explicit ArenaScope(bool active);
  /// Explicit form (tests): installs `arena` iff none is current. Does NOT
  /// reset on exit — the caller owns the arena's epoch.
  explicit ArenaScope(Arena* arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// True when this scope installed the arena (outermost active scope).
  bool owned() const { return owned_; }

 private:
  bool owned_ = false;
  bool reset_on_exit_ = false;
};

/// Suspends the current arena for allocations that must outlive the
/// statement: cached ASTs, published plans, anything stored into a
/// longer-lived structure. Allocations inside the suspend hit the heap.
class ArenaSuspend {
 public:
  ArenaSuspend();
  ~ArenaSuspend();

  ArenaSuspend(const ArenaSuspend&) = delete;
  ArenaSuspend& operator=(const ArenaSuspend&) = delete;

 private:
  Arena* saved_;
};

namespace arena_internal {

/// Origin tag stored in a 16-byte header ahead of every ArenaManaged /
/// ArenaAllocator block, so operator delete / deallocate can tell arena
/// memory (no-op, reclaimed by Reset) from heap fallback (real free). The
/// header is 16 bytes so the returned pointer keeps max_align_t alignment.
inline constexpr size_t kHeaderSize = 16;
inline constexpr uint64_t kArenaTag = 0xA12E'4A11'0CA7'ED00ULL;
inline constexpr uint64_t kHeapTag = 0x6EA9'F2EE'0B10'CC00ULL;

void* TaggedAllocate(size_t size);
void TaggedDeallocate(void* p) noexcept;

}  // namespace arena_internal

/// Mixin giving a class hierarchy arena-aware operator new/delete while
/// keeping the `unique_ptr`/`make_unique` API unchanged. With a statement
/// arena current, nodes are bump-allocated and their operator delete is a
/// no-op (destructors still run through unique_ptr; the memory is reclaimed
/// wholesale at scope exit). With no arena — or under ArenaSuspend — nodes
/// come from the heap and delete frees them, so cached/shared trees behave
/// exactly as before.
class ArenaManaged {
 public:
  static void* operator new(size_t size) {
    return arena_internal::TaggedAllocate(size);
  }
  static void operator delete(void* p) noexcept {
    arena_internal::TaggedDeallocate(p);
  }
  static void operator delete(void* p, size_t) noexcept {
    arena_internal::TaggedDeallocate(p);
  }
};

/// STL allocator with the same origin-tag scheme: each block remembers where
/// it came from, so a container that reallocates across an arena boundary
/// (or outlives a suspend) still frees every block correctly. Intended for
/// statement-local scratch containers (see ArenaVector).
template <typename T>
class ArenaAllocator {
 public:
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned types are not supported by ArenaAllocator");
  using value_type = T;

  ArenaAllocator() = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(size_t n) {
    return static_cast<T*>(arena_internal::TaggedAllocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t) noexcept {
    arena_internal::TaggedDeallocate(p);
  }

  friend bool operator==(const ArenaAllocator&, const ArenaAllocator&) {
    return true;
  }
  friend bool operator!=(const ArenaAllocator&, const ArenaAllocator&) {
    return false;
  }
};

/// Statement-local scratch vector: bump-allocated while a statement arena is
/// current, plain heap vector otherwise. Must not be stored into anything
/// that outlives the statement scope.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace sphere

#endif  // SPHERE_COMMON_ARENA_H_
