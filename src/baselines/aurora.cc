#include "baselines/aurora.h"

#include "sql/parser.h"

namespace sphere::baselines {

class AuroraLikeSystem::Session : public SqlSession {
 public:
  explicit Session(AuroraLikeSystem* system)
      : system_(system), conn_(system->compute_, system->network_) {}

  Result<engine::ExecResult> Execute(std::string_view sql_text,
                                     const std::vector<Value>& params) override {
    auto result = conn_.Execute(sql_text, params);
    if (result.ok() && !result->is_query && IsWrite(sql_text)) {
      // Redo-log shipping: wait for the write quorum of the storage fleet.
      for (int i = 0; i < system_->options_.write_quorum; ++i) {
        system_->network_->Transfer(
            static_cast<size_t>(system_->options_.redo_record_bytes));
      }
      system_->redo_shipped_.fetch_add(system_->options_.write_quorum,
                                       std::memory_order_relaxed);
    }
    return result;
  }

 private:
  static bool IsWrite(std::string_view sql_text) {
    // Cheap classification without a full parse.
    size_t i = 0;
    while (i < sql_text.size() && std::isspace(static_cast<unsigned char>(sql_text[i]))) {
      ++i;
    }
    switch (i < sql_text.size() ? std::toupper(static_cast<unsigned char>(sql_text[i]))
                                : '\0') {
      case 'I':  // INSERT
      case 'U':  // UPDATE
      case 'D':  // DELETE / DROP
      case 'C':  // CREATE / COMMIT (commit ships the final log record too)
      case 'T':  // TRUNCATE
        return true;
      default:
        return false;
    }
  }

  AuroraLikeSystem* system_;
  net::RemoteConnection conn_;
};

std::unique_ptr<SqlSession> AuroraLikeSystem::Connect() {
  return std::make_unique<Session>(this);
}

}  // namespace sphere::baselines
