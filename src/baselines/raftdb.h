#ifndef SPHERE_BASELINES_RAFTDB_H_
#define SPHERE_BASELINES_RAFTDB_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/system.h"
#include "raft/raft.h"

namespace sphere::baselines {

/// A new-architecture distributed SQL database (the TiDB / CockroachDB
/// stand-in of Tables III and Fig. 9-12): stateless SQL layer over data
/// partitioned into regions, each region a Raft group of replicas.
///
/// Cost profile reproduced from the real systems:
///  - every statement pays the client -> SQL-layer hop;
///  - writes go through Raft (leader append + majority replication);
///  - reads execute on the region leader (TiDB profile) or pay an extra
///    quorum round (`quorum_reads`, the CockroachDB profile before leaseholder
///    optimizations — this is why CRDB trails TiDB in the paper's numbers);
///  - multi-region transactions run 2PC *through Raft* (each phase is a
///    replicated log entry), the overhead behind TiDB's slow TPC-C Delivery.
struct RaftDbOptions {
  std::string name = "raftdb";
  int num_regions = 4;
  int replicas_per_region = 3;
  bool quorum_reads = false;   ///< CRDB-like consistency on reads
  int64_t sql_layer_overhead_us = 10;  ///< distributed planner cost
};

class RaftDb : public SqlSystem {
 public:
  RaftDb(RaftDbOptions options, const net::LatencyModel* network);

  /// Declares `table` partitioned by `column` (value % num_regions).
  /// Tables without a declaration are replicated to region 0 only.
  void AddPartitionedTable(const std::string& table, const std::string& column);

  /// Executes DDL on every replica of every region (schema changes are
  /// replicated through Raft too).
  Status ExecuteDDL(const std::string& ddl_sql);

  const std::string& name() const override { return options_.name; }
  std::unique_ptr<SqlSession> Connect() override;

  raft::RaftGroup* region(int i) { return regions_[static_cast<size_t>(i)].group.get(); }
  engine::StorageNode* replica_node(int region, int replica) {
    return regions_[static_cast<size_t>(region)]
        .replicas[static_cast<size_t>(replica)]
        .get();
  }

 private:
  struct Region {
    std::vector<std::unique_ptr<engine::StorageNode>> replicas;
    std::unique_ptr<raft::RaftGroup> group;
  };

  class Session;

  /// Applies a replicated command to one replica's state machine.
  void Apply(Region* region, int replica_id, const std::string& command);

  RaftDbOptions options_;
  const net::LatencyModel* network_;
  std::vector<Region> regions_;
  std::map<std::string, std::string> partition_column_;  // lower table -> col
  std::atomic<int64_t> xid_counter_{1};
};

}  // namespace sphere::baselines

#endif  // SPHERE_BASELINES_RAFTDB_H_
