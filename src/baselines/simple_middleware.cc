#include "baselines/simple_middleware.h"

#include <algorithm>

#include "baselines/naive_merge.h"
#include "common/clock.h"
#include "common/strings.h"
#include "core/rewrite.h"
#include "sql/condition.h"
#include "sql/parser.h"

namespace sphere::baselines {

Status SimpleMiddleware::AttachNode(const std::string& name,
                                    engine::StorageNode* node) {
  if (backends_.count(ToLower(name))) {
    return Status::AlreadyExists("backend " + name);
  }
  backends_[ToLower(name)] =
      std::make_unique<net::DataSource>(name, node, network_, 64);
  return Status::OK();
}

Status SimpleMiddleware::AddShardedTable(const std::string& logic_table,
                                         const std::string& column,
                                         const std::string& nodes_expr) {
  TableInfo info;
  info.column = column;
  SPHERE_ASSIGN_OR_RETURN(info.nodes, core::ExpandDataNodes(nodes_expr));
  for (const auto& node : info.nodes) {
    if (std::find(info.table_names.begin(), info.table_names.end(), node.table) ==
        info.table_names.end()) {
      info.table_names.push_back(node.table);
    }
    if (!backends_.count(ToLower(node.data_source))) {
      return Status::NotFound("backend " + node.data_source);
    }
  }
  Properties props;
  props.Set("sharding-count", std::to_string(info.table_names.size()));
  SPHERE_ASSIGN_OR_RETURN(info.algorithm, core::CreateShardingAlgorithm("MOD", props));
  tables_[ToLower(logic_table)] = std::move(info);
  return Status::OK();
}

/// One vtgate/coordinator session.
class SimpleMiddleware::Session : public SqlSession {
 public:
  explicit Session(SimpleMiddleware* mw) : mw_(mw) {}
  ~Session() override {
    for (auto& [ds, lease] : txn_conns_) (void)lease->Rollback();
  }

  Result<engine::ExecResult> Execute(std::string_view sql_text,
                                     const std::vector<Value>& params) override {
    // Client -> middleware round trip (proxy architecture).
    mw_->network_->Transfer(sql_text.size() + params.size() * 16 + 16);
    auto result = ExecuteInner(sql_text, params);
    mw_->network_->Transfer(result.ok() ? 256 : 64);
    return result;
  }

 private:
  Result<net::RemoteConnection*> ConnFor(const std::string& ds_name) {
    auto it = mw_->backends_.find(ToLower(ds_name));
    if (it == mw_->backends_.end()) return Status::NotFound("backend " + ds_name);
    if (in_txn_) {
      auto held = txn_conns_.find(ToLower(ds_name));
      if (held != txn_conns_.end()) return held->second.get();
      auto lease = it->second->pool().Acquire();
      net::RemoteConnection* conn = lease.get();
      SPHERE_RETURN_NOT_OK(conn->Begin(xid_));
      txn_conns_.emplace(ToLower(ds_name), std::move(lease));
      return conn;
    }
    scratch_lease_ = it->second->pool().Acquire();
    return scratch_lease_.get();
  }

  Result<engine::ExecResult> ExecuteInner(std::string_view sql_text,
                                          const std::vector<Value>& params) {
    SleepMicros(mw_->options_.plan_overhead_us);
    sql::Parser parser;
    SPHERE_ASSIGN_OR_RETURN(sql::StatementPtr stmt, parser.Parse(sql_text));

    switch (stmt->kind()) {
      case sql::StatementKind::kBegin: {
        in_txn_ = true;
        xid_ = mw_->options_.name + "-" +
               std::to_string(mw_->xid_counter_.fetch_add(1));
        return engine::ExecResult::Update(0);
      }
      case sql::StatementKind::kCommit:
        return FinishTxn(/*commit=*/true);
      case sql::StatementKind::kRollback:
        return FinishTxn(/*commit=*/false);
      default:
        break;
    }

    // Joins: supported only when every sharded table routes to exactly one
    // node on the same backend (single-shard join; vtgate-style restriction).
    if (stmt->kind() == sql::StatementKind::kSelect) {
      const auto& sel = static_cast<const sql::SelectStatement&>(*stmt);
      if (sel.AllTables().size() > 1) {
        return ExecuteSingleShardJoin(sel, *stmt, params);
      }
    }

    // Route.
    std::string table = TableOf(*stmt);
    auto info_it = mw_->tables_.find(ToLower(table));
    if (info_it == mw_->tables_.end()) {
      // Unsharded: first backend hosts reference tables.
      SPHERE_ASSIGN_OR_RETURN(net::RemoteConnection * conn,
                              ConnFor(mw_->backends_.begin()->second->name()));
      return conn->Execute(sql_text, params);
    }
    const TableInfo& info = info_it->second;

    if (stmt->kind() == sql::StatementKind::kInsert) {
      const auto& ins = static_cast<const sql::InsertStatement&>(*stmt);
      if (ins.rows.size() > 1) {
        return ExecuteBatchInsert(ins, info, params);
      }
    }

    SPHERE_ASSIGN_OR_RETURN(std::vector<const core::DataNode*> targets,
                            RouteTargets(*stmt, info, params));

    // DDL fans out to every node (like a vindex-backed schema change).
    std::vector<engine::ExecResult> partials;
    for (const core::DataNode* node : targets) {
      core::RouteUnit unit;
      unit.data_source = node->data_source;
      unit.mappings.push_back({table, node->table});
      sql::StatementPtr clone = stmt->Clone();
      core::ApplyTableMappings(clone.get(), unit);
      SPHERE_ASSIGN_OR_RETURN(net::RemoteConnection * conn,
                              ConnFor(node->data_source));
      auto r = conn->Execute(clone->ToSQL(sql::Dialect::MySQL()), params);
      if (!r.ok()) return r.status();
      partials.push_back(std::move(r).value());
    }
    return NaiveMerge(*stmt, std::move(partials));
  }

  /// Splits a multi-row INSERT into per-shard inserts (placeholders are
  /// materialized so row subsets stay self-contained).
  Result<engine::ExecResult> ExecuteBatchInsert(
      const sql::InsertStatement& ins, const TableInfo& info,
      const std::vector<Value>& params) {
    int col = -1;
    for (size_t c = 0; c < ins.columns.size(); ++c) {
      if (EqualsIgnoreCase(ins.columns[c], info.column)) col = static_cast<int>(c);
    }
    if (col < 0) return Status::RouteError("INSERT misses the distribution column");
    std::map<std::string, std::vector<size_t>> rows_by_table;
    for (size_t r = 0; r < ins.rows.size(); ++r) {
      auto v = sql::EvalConstExpr(ins.rows[r][static_cast<size_t>(col)].get(),
                                  params);
      if (!v.has_value()) {
        return Status::RouteError("non-constant distribution value");
      }
      SPHERE_ASSIGN_OR_RETURN(std::string target,
                              info.algorithm->DoSharding(info.table_names, *v));
      rows_by_table[target].push_back(r);
    }
    int64_t affected = 0;
    for (const auto& [target, row_indices] : rows_by_table) {
      SPHERE_ASSIGN_OR_RETURN(std::vector<const core::DataNode*> nodes,
                              PickNodes(info, {target}));
      auto clone = std::make_unique<sql::InsertStatement>();
      clone->table.name = nodes[0]->table;
      clone->columns = ins.columns;
      for (size_t r : row_indices) {
        std::vector<sql::ExprPtr> row;
        row.reserve(ins.rows[r].size());
        for (const auto& e : ins.rows[r]) {
          row.push_back(sql::InlineParamsExpr(e.get(), params));
        }
        clone->rows.push_back(std::move(row));
      }
      SPHERE_ASSIGN_OR_RETURN(net::RemoteConnection * conn,
                              ConnFor(nodes[0]->data_source));
      auto r = conn->Execute(clone->ToSQL(sql::Dialect::MySQL()), {});
      if (!r.ok()) return r.status();
      affected += r->affected_rows;
    }
    return engine::ExecResult::Update(affected);
  }

  Result<engine::ExecResult> ExecuteSingleShardJoin(
      const sql::SelectStatement& sel, const sql::Statement& stmt,
      const std::vector<Value>& params) {
    core::RouteUnit unit;
    for (const sql::TableRef* ref : sel.AllTables()) {
      auto info_it = mw_->tables_.find(ToLower(ref->name));
      if (info_it == mw_->tables_.end()) continue;  // reference table
      SPHERE_ASSIGN_OR_RETURN(
          std::vector<const core::DataNode*> nodes,
          RouteSingleTable(sel.where.get(), ref->name, info_it->second, params));
      if (nodes.size() != 1) {
        return Status::Unsupported(mw_->options_.name +
                                   ": cross-shard joins are not supported");
      }
      if (!unit.data_source.empty() &&
          !EqualsIgnoreCase(unit.data_source, nodes[0]->data_source)) {
        return Status::Unsupported(mw_->options_.name +
                                   ": join spans multiple backends");
      }
      unit.data_source = nodes[0]->data_source;
      unit.mappings.push_back({ref->name, nodes[0]->table});
    }
    if (unit.data_source.empty()) {
      unit.data_source = mw_->backends_.begin()->second->name();
    }
    sql::StatementPtr clone = stmt.Clone();
    core::ApplyTableMappings(clone.get(), unit);
    SPHERE_ASSIGN_OR_RETURN(net::RemoteConnection * conn,
                            ConnFor(unit.data_source));
    return conn->Execute(clone->ToSQL(sql::Dialect::MySQL()), params);
  }

  Result<engine::ExecResult> FinishTxn(bool commit) {
    Status first = Status::OK();
    if (commit) {
      // Plain 2PC over the touched shards.
      for (auto& [ds, lease] : txn_conns_) {
        Status st = lease->PrepareXa();
        if (!st.ok()) {
          for (auto& [ds2, lease2] : txn_conns_) {
            if (ds2 == ds) continue;
            (void)lease2->Rollback();
            (void)lease2->RollbackPrepared(xid_);
          }
          txn_conns_.clear();
          in_txn_ = false;
          return st;
        }
      }
      for (auto& [ds, lease] : txn_conns_) {
        Status st = lease->CommitPrepared(xid_);
        if (!st.ok() && first.ok()) first = st;
      }
    } else {
      for (auto& [ds, lease] : txn_conns_) {
        Status st = lease->Rollback();
        if (!st.ok() && first.ok()) first = st;
      }
    }
    txn_conns_.clear();
    in_txn_ = false;
    if (!first.ok()) return first;
    return engine::ExecResult::Update(0);
  }

  static std::string TableOf(const sql::Statement& stmt) {
    switch (stmt.kind()) {
      case sql::StatementKind::kSelect: {
        const auto& sel = static_cast<const sql::SelectStatement&>(stmt);
        return sel.from.empty() ? "" : sel.from[0].name;
      }
      case sql::StatementKind::kInsert:
        return static_cast<const sql::InsertStatement&>(stmt).table.name;
      case sql::StatementKind::kUpdate:
        return static_cast<const sql::UpdateStatement&>(stmt).table.name;
      case sql::StatementKind::kDelete:
        return static_cast<const sql::DeleteStatement&>(stmt).table.name;
      case sql::StatementKind::kCreateTable:
        return static_cast<const sql::CreateTableStatement&>(stmt).table;
      case sql::StatementKind::kDropTable:
        return static_cast<const sql::DropTableStatement&>(stmt).table;
      case sql::StatementKind::kTruncate:
        return static_cast<const sql::TruncateStatement&>(stmt).table;
      case sql::StatementKind::kCreateIndex:
        return static_cast<const sql::CreateIndexStatement&>(stmt).table;
      default:
        return "";
    }
  }

  Result<std::vector<const core::DataNode*>> RouteTargets(
      const sql::Statement& stmt, const TableInfo& info,
      const std::vector<Value>& params) {
    std::vector<const core::DataNode*> all;
    all.reserve(info.nodes.size());
    for (const auto& n : info.nodes) all.push_back(&n);

    // Joins are not scatter-planned by this middleware.
    if (stmt.kind() == sql::StatementKind::kSelect) {
      const auto& sel = static_cast<const sql::SelectStatement&>(stmt);
      if (sel.AllTables().size() > 1) {
        return Status::Unsupported(mw_->options_.name +
                                   ": cross-shard joins are not supported");
      }
    }

    if (stmt.kind() == sql::StatementKind::kInsert) {
      const auto& ins = static_cast<const sql::InsertStatement&>(stmt);
      if (ins.rows.size() != 1) {
        return Status::Unsupported(mw_->options_.name +
                                   ": multi-row sharded inserts");
      }
      auto values = sql::ExtractInsertValues(ins, info.column, params);
      if (!values.has_value()) {
        return Status::RouteError("INSERT misses the distribution column");
      }
      SPHERE_ASSIGN_OR_RETURN(std::string target,
                              info.algorithm->DoSharding(info.table_names,
                                                         (*values)[0]));
      return PickNodes(info, {target});
    }

    const sql::Expr* where = nullptr;
    switch (stmt.kind()) {
      case sql::StatementKind::kSelect:
        where = static_cast<const sql::SelectStatement&>(stmt).where.get();
        break;
      case sql::StatementKind::kUpdate:
        where = static_cast<const sql::UpdateStatement&>(stmt).where.get();
        break;
      case sql::StatementKind::kDelete:
        where = static_cast<const sql::DeleteStatement&>(stmt).where.get();
        break;
      default:
        return all;  // DDL: everywhere
    }
    return RouteByWhere(where, info, params);
  }

  Result<std::vector<const core::DataNode*>> RouteByWhere(
      const sql::Expr* where, const TableInfo& info,
      const std::vector<Value>& params) {
    std::vector<const core::DataNode*> all;
    all.reserve(info.nodes.size());
    for (const auto& n : info.nodes) all.push_back(&n);
    auto groups = sql::ExtractConditionGroups(where, params);
    if (groups.size() != 1) return all;
    for (const auto& cond : groups[0]) {
      if (!EqualsIgnoreCase(cond.column, info.column)) continue;
      if (cond.kind == sql::ColumnCondition::Kind::kEqual ||
          cond.kind == sql::ColumnCondition::Kind::kIn) {
        std::vector<std::string> names;
        for (const Value& v : cond.values) {
          SPHERE_ASSIGN_OR_RETURN(std::string t,
                                  info.algorithm->DoSharding(info.table_names, v));
          if (std::find(names.begin(), names.end(), t) == names.end()) {
            names.push_back(t);
          }
        }
        return PickNodes(info, names);
      }
      if (cond.kind == sql::ColumnCondition::Kind::kRange) {
        auto names = info.algorithm->DoRangeSharding(info.table_names, cond.low,
                                                     cond.high);
        return PickNodes(info, names);
      }
    }
    return all;
  }

  Result<std::vector<const core::DataNode*>> RouteSingleTable(
      const sql::Expr* where, const std::string& table_name,
      const TableInfo& info, const std::vector<Value>& params) {
    (void)table_name;
    return RouteByWhere(where, info, params);
  }

  Result<std::vector<const core::DataNode*>> PickNodes(
      const TableInfo& info, const std::vector<std::string>& table_names) {
    std::vector<const core::DataNode*> out;
    for (const auto& name : table_names) {
      bool found = false;
      for (const auto& node : info.nodes) {
        if (EqualsIgnoreCase(node.table, name)) {
          out.push_back(&node);
          found = true;
          break;
        }
      }
      if (!found) return Status::RouteError("no node hosts " + name);
    }
    return out;
  }

  Result<engine::ExecResult> NaiveMerge(const sql::Statement& stmt,
                                        std::vector<engine::ExecResult> partials) {
    if (partials.empty()) return Status::Internal("no partial results");
    if (!partials[0].is_query) return SumAffected(std::move(partials));
    if (partials.size() == 1) return std::move(partials[0]);
    return NaiveScatterMerge(static_cast<const sql::SelectStatement&>(stmt),
                             std::move(partials), mw_->options_.name);
  }

  SimpleMiddleware* mw_;
  bool in_txn_ = false;
  std::string xid_;
  std::map<std::string, net::ConnectionPool::Lease> txn_conns_;
  net::ConnectionPool::Lease scratch_lease_;
};

std::unique_ptr<SqlSession> SimpleMiddleware::Connect() {
  return std::make_unique<Session>(this);
}

}  // namespace sphere::baselines
