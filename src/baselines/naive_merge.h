#ifndef SPHERE_BASELINES_NAIVE_MERGE_H_
#define SPHERE_BASELINES_NAIVE_MERGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/result_set.h"
#include "sql/ast.h"

namespace sphere::baselines {

/// The gather step shared by the baseline middlewares: concatenate partial
/// results in memory, then apply global aggregates (COUNT/SUM/MIN/MAX only),
/// ORDER BY over selected columns, DISTINCT and LIMIT. Deliberately naive —
/// no stream merging, no AVG decomposition, no grouped scatter — matching the
/// planner restrictions of the systems these baselines stand in for.
Result<engine::ExecResult> NaiveScatterMerge(
    const sql::SelectStatement& stmt,
    std::vector<engine::ExecResult> partials, const std::string& system_name);

/// Update-result merge: sums affected rows.
engine::ExecResult SumAffected(std::vector<engine::ExecResult> partials);

}  // namespace sphere::baselines

#endif  // SPHERE_BASELINES_NAIVE_MERGE_H_
