#ifndef SPHERE_BASELINES_AURORA_H_
#define SPHERE_BASELINES_AURORA_H_

#include <atomic>
#include <memory>
#include <string>

#include "baselines/system.h"

namespace sphere::baselines {

/// The shared-storage cloud database baseline (Amazon Aurora, Table IV):
/// a single compute node whose writes ship only redo-log records to a
/// six-replica storage service and wait for a 4/6 quorum; reads are served
/// from the compute node's caches.
///
/// The compute node's `statement_delay_us` knob models the buffer-pool
/// profile: benchmarks give Aurora a lower delay than the plain standalone
/// database because its storage fleet absorbs IO ("the storage power of
/// Aurora can be seen as unlimited", §VIII-B).
struct AuroraOptions {
  std::string name = "aurora";
  int storage_replicas = 6;
  int write_quorum = 4;
  int64_t redo_record_bytes = 160;  ///< per-write redo payload ("only redo logs
                                    ///< across the network")
};

class AuroraLikeSystem : public SqlSystem {
 public:
  AuroraLikeSystem(AuroraOptions options, engine::StorageNode* compute,
                   const net::LatencyModel* network)
      : options_(std::move(options)), compute_(compute), network_(network) {}

  const std::string& name() const override { return options_.name; }
  std::unique_ptr<SqlSession> Connect() override;

  int64_t redo_records_shipped() const { return redo_shipped_.load(); }

 private:
  class Session;

  AuroraOptions options_;
  engine::StorageNode* compute_;
  const net::LatencyModel* network_;
  std::atomic<int64_t> redo_shipped_{0};
};

}  // namespace sphere::baselines

#endif  // SPHERE_BASELINES_AURORA_H_
