#ifndef SPHERE_BASELINES_SYSTEM_H_
#define SPHERE_BASELINES_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "adaptor/jdbc.h"
#include "adaptor/proxy.h"
#include "net/remote.h"

namespace sphere::baselines {

/// One client session of a system under test. The benchmark harness speaks
/// only this interface, so every system (ours and every baseline) is driven
/// identically — the fairness requirement of §VIII.
class SqlSession {
 public:
  virtual ~SqlSession() = default;
  virtual Result<engine::ExecResult> Execute(
      std::string_view sql_text, const std::vector<Value>& params = {}) = 0;
};

/// A benchmarkable SQL system.
class SqlSystem {
 public:
  virtual ~SqlSystem() = default;
  virtual const std::string& name() const = 0;
  virtual std::unique_ptr<SqlSession> Connect() = 0;
};

// ---------------------------------------------------------------------------
// Wrappers over the systems this repository already provides.
// ---------------------------------------------------------------------------

/// A plain standalone database reached over the network — the MS / PG
/// baselines of Tables III & IV.
class SingleNodeSystem : public SqlSystem {
 public:
  SingleNodeSystem(std::string name, engine::StorageNode* node,
                   const net::LatencyModel* network)
      : name_(std::move(name)), node_(node), network_(network) {}

  const std::string& name() const override { return name_; }
  std::unique_ptr<SqlSession> Connect() override;

 private:
  class Session : public SqlSession {
   public:
    Session(engine::StorageNode* node, const net::LatencyModel* network)
        : conn_(node, network) {}
    Result<engine::ExecResult> Execute(
        std::string_view sql_text, const std::vector<Value>& params) override {
      return conn_.Execute(sql_text, params);
    }

   private:
    net::RemoteConnection conn_;
  };

  std::string name_;
  engine::StorageNode* node_;
  const net::LatencyModel* network_;
};

/// ShardingSphere-JDBC mode (SSJ): the embedded adaptor.
class JdbcSystem : public SqlSystem {
 public:
  JdbcSystem(std::string name, adaptor::ShardingDataSource* ds)
      : name_(std::move(name)), ds_(ds) {}

  const std::string& name() const override { return name_; }
  std::unique_ptr<SqlSession> Connect() override;

 private:
  class Session : public SqlSession {
   public:
    explicit Session(adaptor::ShardingDataSource* ds)
        : conn_(ds->GetConnection()) {}
    Result<engine::ExecResult> Execute(
        std::string_view sql_text, const std::vector<Value>& params) override {
      return conn_->ExecuteSQL(sql_text, params);
    }

   private:
    std::unique_ptr<adaptor::ShardingConnection> conn_;
  };

  std::string name_;
  adaptor::ShardingDataSource* ds_;
};

/// ShardingSphere-Proxy mode (SSP).
class ProxySystem : public SqlSystem {
 public:
  ProxySystem(std::string name, adaptor::ShardingProxy* proxy)
      : name_(std::move(name)), proxy_(proxy) {}

  const std::string& name() const override { return name_; }
  std::unique_ptr<SqlSession> Connect() override;

 private:
  class Session : public SqlSession {
   public:
    explicit Session(adaptor::ShardingProxy* proxy)
        : conn_(proxy->Connect()) {}
    Result<engine::ExecResult> Execute(
        std::string_view sql_text, const std::vector<Value>& params) override {
      return conn_->Execute(sql_text, params);
    }

   private:
    std::unique_ptr<adaptor::ShardingProxy::Connection> conn_;
  };

  std::string name_;
  adaptor::ShardingProxy* proxy_;
};

}  // namespace sphere::baselines

#endif  // SPHERE_BASELINES_SYSTEM_H_
