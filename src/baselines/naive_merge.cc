#include "baselines/naive_merge.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace sphere::baselines {

namespace {
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};
}  // namespace

engine::ExecResult SumAffected(std::vector<engine::ExecResult> partials) {
  int64_t affected = 0;
  for (const auto& p : partials) affected += p.affected_rows;
  return engine::ExecResult::Update(affected);
}

Result<engine::ExecResult> NaiveScatterMerge(
    const sql::SelectStatement& sel, std::vector<engine::ExecResult> partials,
    const std::string& system_name) {
  if (partials.empty()) return Status::Internal("no partial results");
  if (!partials[0].is_query) return SumAffected(std::move(partials));
  if (partials.size() == 1) return std::move(partials[0]);

  std::vector<std::string> columns = partials[0].result_set->columns();
  std::vector<Row> rows;
  for (auto& p : partials) {
    Row row;
    while (p.result_set->Next(&row)) rows.push_back(std::move(row));
  }

  if (sel.HasAggregation()) {
    if (!sel.group_by.empty()) {
      return Status::Unsupported(system_name +
                                 ": scatter GROUP BY is not supported");
    }
    Row combined;
    for (size_t i = 0; i < sel.items.size(); ++i) {
      const auto* f = sel.items[i].expr != nullptr &&
                              sel.items[i].expr->kind() == sql::ExprKind::kFuncCall
                          ? static_cast<const sql::FuncCallExpr*>(
                                sel.items[i].expr.get())
                          : nullptr;
      if (f == nullptr || !f->IsAggregate()) {
        combined.push_back(rows.empty() ? Value::Null() : rows[0][i]);
        continue;
      }
      if (EqualsIgnoreCase(f->name, "AVG")) {
        return Status::Unsupported(system_name +
                                   ": scatter AVG is not supported");
      }
      Value acc = Value::Null();
      for (const Row& row : rows) {
        const Value& v = row[i];
        if (v.is_null()) continue;
        if (acc.is_null()) {
          acc = v;
        } else if (EqualsIgnoreCase(f->name, "COUNT") ||
                   EqualsIgnoreCase(f->name, "SUM")) {
          acc = acc.is_int() && v.is_int() ? Value(acc.AsInt() + v.AsInt())
                                           : Value(acc.ToDouble() + v.ToDouble());
        } else if (EqualsIgnoreCase(f->name, "MIN")) {
          if (v.Compare(acc) < 0) acc = v;
        } else {  // MAX
          if (v.Compare(acc) > 0) acc = v;
        }
      }
      combined.push_back(std::move(acc));
    }
    return engine::ExecResult::Query(std::make_unique<engine::VectorResultSet>(
        std::move(columns), std::vector<Row>{std::move(combined)}));
  }

  if (!sel.order_by.empty()) {
    std::vector<std::pair<int, bool>> keys;
    for (const auto& o : sel.order_by) {
      if (o.expr->kind() != sql::ExprKind::kColumnRef) {
        return Status::Unsupported(system_name + ": scatter ORDER BY expression");
      }
      const auto* c = static_cast<const sql::ColumnRefExpr*>(o.expr.get());
      int idx = -1;
      for (size_t i = 0; i < columns.size(); ++i) {
        if (EqualsIgnoreCase(columns[i], c->column)) idx = static_cast<int>(i);
      }
      if (idx < 0) {
        return Status::Unsupported(system_name +
                                   ": scatter ORDER BY on unselected column");
      }
      keys.emplace_back(idx, o.desc);
    }
    std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
      for (auto [idx, desc] : keys) {
        int c = a[static_cast<size_t>(idx)].Compare(b[static_cast<size_t>(idx)]);
        if (c != 0) return desc ? c > 0 : c < 0;
      }
      return false;
    });
  }
  if (sel.distinct) {
    std::set<Row, RowLess> seen;
    std::vector<Row> deduped;
    for (Row& row : rows) {
      if (seen.insert(row).second) deduped.push_back(std::move(row));
    }
    rows = std::move(deduped);
  }
  if (sel.limit.has_value()) {
    size_t off = static_cast<size_t>(std::max<int64_t>(0, sel.limit->offset));
    if (off >= rows.size()) {
      rows.clear();
    } else {
      rows.erase(rows.begin(), rows.begin() + static_cast<long>(off));
      if (sel.limit->count >= 0 &&
          rows.size() > static_cast<size_t>(sel.limit->count)) {
        rows.resize(static_cast<size_t>(sel.limit->count));
      }
    }
  }
  return engine::ExecResult::Query(std::make_unique<engine::VectorResultSet>(
      std::move(columns), std::move(rows)));
}

}  // namespace sphere::baselines
