#include "baselines/raftdb.h"

#include <set>

#include "baselines/naive_merge.h"
#include "common/clock.h"
#include "common/strings.h"
#include "sql/condition.h"
#include "sql/parser.h"

namespace sphere::baselines {

namespace {

/// Replicated command layout: a prefix line selects the handler.
///   SQL\n<statement>            plain auto-commit statement
///   XAPREP <xid>\n<stmt>\n...   open txn, run statements, prepare
///   XACOMMIT <xid>              commit the prepared branch
///   XAABORT <xid>               roll back the prepared branch
constexpr char kSqlPrefix[] = "SQL\n";
constexpr char kPrepPrefix[] = "XAPREP ";
constexpr char kCommitPrefix[] = "XACOMMIT ";
constexpr char kAbortPrefix[] = "XAABORT ";

}  // namespace

RaftDb::RaftDb(RaftDbOptions options, const net::LatencyModel* network)
    : options_(std::move(options)), network_(network) {
  regions_.resize(static_cast<size_t>(options_.num_regions));
  for (int r = 0; r < options_.num_regions; ++r) {
    Region& region = regions_[static_cast<size_t>(r)];
    for (int i = 0; i < options_.replicas_per_region; ++i) {
      region.replicas.push_back(std::make_unique<engine::StorageNode>(
          options_.name + "-r" + std::to_string(r) + "-" + std::to_string(i)));
    }
    Region* region_ptr = &region;
    region.group = std::make_unique<raft::RaftGroup>(
        options_.replicas_per_region, network_,
        [this, region_ptr](int replica_id, const std::string& command) {
          Apply(region_ptr, replica_id, command);
        });
  }
}

void RaftDb::AddPartitionedTable(const std::string& table,
                                 const std::string& column) {
  partition_column_[ToLower(table)] = column;
}

void RaftDb::Apply(Region* region, int replica_id, const std::string& command) {
  engine::StorageNode* node = region->replicas[static_cast<size_t>(replica_id)].get();
  auto session = node->OpenSession();
  if (command.rfind(kSqlPrefix, 0) == 0) {
    (void)session->Execute(command.substr(sizeof(kSqlPrefix) - 1));
    return;
  }
  if (command.rfind(kPrepPrefix, 0) == 0) {
    auto lines = Split(command.substr(sizeof(kPrepPrefix) - 1), '\n');
    if (lines.empty()) return;
    std::string xid = lines[0];
    (void)session->Begin(xid);
    for (size_t i = 1; i < lines.size(); ++i) {
      if (!lines[i].empty()) (void)session->Execute(lines[i]);
    }
    (void)session->Prepare();
    return;
  }
  if (command.rfind(kCommitPrefix, 0) == 0) {
    (void)node->CommitPrepared(command.substr(sizeof(kCommitPrefix) - 1));
    return;
  }
  if (command.rfind(kAbortPrefix, 0) == 0) {
    (void)node->RollbackPrepared(command.substr(sizeof(kAbortPrefix) - 1));
    return;
  }
}

Status RaftDb::ExecuteDDL(const std::string& ddl_sql) {
  for (auto& region : regions_) {
    auto r = region.group->Propose(std::string(kSqlPrefix) + ddl_sql);
    SPHERE_RETURN_NOT_OK(r.status());
  }
  return Status::OK();
}

class RaftDb::Session : public SqlSession {
 public:
  explicit Session(RaftDb* db) : db_(db) {}

  Result<engine::ExecResult> Execute(std::string_view sql_text,
                                     const std::vector<Value>& params) override {
    // Client -> SQL layer hop + planner overhead.
    db_->network_->Transfer(sql_text.size() + params.size() * 16 + 16);
    auto result = ExecuteInner(sql_text, params);
    db_->network_->Transfer(result.ok() ? 256 : 64);
    return result;
  }

 private:
  Result<engine::ExecResult> ExecuteInner(std::string_view sql_text,
                                          const std::vector<Value>& params) {
    SleepMicros(db_->options_.sql_layer_overhead_us);
    sql::Parser parser;
    SPHERE_ASSIGN_OR_RETURN(sql::StatementPtr stmt, parser.Parse(sql_text));

    switch (stmt->kind()) {
      case sql::StatementKind::kBegin:
        in_txn_ = true;
        buffered_.clear();
        touched_.clear();
        return engine::ExecResult::Update(0);
      case sql::StatementKind::kCommit:
        return CommitTxn();
      case sql::StatementKind::kRollback:
        in_txn_ = false;
        buffered_.clear();
        touched_.clear();
        return engine::ExecResult::Update(0);
      default:
        break;
    }

    if (stmt->kind() == sql::StatementKind::kCreateTable ||
        stmt->kind() == sql::StatementKind::kDropTable ||
        stmt->kind() == sql::StatementKind::kTruncate ||
        stmt->kind() == sql::StatementKind::kCreateIndex) {
      sql::StatementPtr inlined = sql::InlineParameters(*stmt, params);
      SPHERE_RETURN_NOT_OK(
          db_->ExecuteDDL(inlined->ToSQL(sql::Dialect::MySQL())));
      return engine::ExecResult::Update(0);
    }

    SPHERE_ASSIGN_OR_RETURN(std::vector<int> regions, RouteRegions(*stmt, params));

    if (stmt->kind() == sql::StatementKind::kSelect) {
      // Reads execute on each region's leader replica, over the storage
      // protocol (the SQL layer talks to the storage layer across the
      // network, like TiDB server -> TiKV).
      std::vector<engine::ExecResult> partials;
      for (int r : regions) {
        if (db_->options_.quorum_reads) {
          // CRDB-profile consistency: confirm the lease with the quorum.
          for (int i = 1; i < db_->options_.replicas_per_region; ++i) {
            db_->network_->Transfer(48);
          }
        }
        SPHERE_ASSIGN_OR_RETURN(net::RemoteConnection * conn, LeaderConn(r));
        auto res = conn->Execute(sql_text, params);
        if (!res.ok()) return res.status();
        partials.push_back(std::move(res).value());
      }
      return MergeReads(*stmt, std::move(partials));
    }

    // Batched INSERTs must split their rows per region (each region applies
    // the full command it receives).
    if (stmt->kind() == sql::StatementKind::kInsert) {
      const auto& ins = static_cast<const sql::InsertStatement&>(*stmt);
      auto col = db_->partition_column_.find(ToLower(ins.table.name));
      if (col != db_->partition_column_.end() && ins.rows.size() > 1) {
        return ExecuteBatchInsert(ins, col->second, params);
      }
    }

    // Writes replicate through Raft.
    sql::StatementPtr inlined = sql::InlineParameters(*stmt, params);
    std::string text = inlined->ToSQL(sql::Dialect::MySQL());
    if (in_txn_) {
      for (int r : regions) {
        touched_.insert(r);
        buffered_[r].push_back(text);
      }
      // Affected counts are only known at commit in this buffered model;
      // report one row per statement (the common case for the workloads).
      return engine::ExecResult::Update(1);
    }
    int64_t affected = 0;
    for (int r : regions) {
      auto res = db_->regions_[static_cast<size_t>(r)].group->Propose(
          std::string(kSqlPrefix) + text);
      SPHERE_RETURN_NOT_OK(res.status());
      affected += 1;
    }
    return engine::ExecResult::Update(affected);
  }

  Result<engine::ExecResult> ExecuteBatchInsert(
      const sql::InsertStatement& ins, const std::string& column,
      const std::vector<Value>& params) {
    std::map<int, std::vector<size_t>> rows_by_region;
    auto values = sql::ExtractInsertValues(ins, column, params);
    if (!values.has_value()) {
      return Status::RouteError("INSERT misses the partition column");
    }
    for (size_t r = 0; r < values->size(); ++r) {
      int64_t v = (*values)[r].ToInt();
      int region = static_cast<int>(((v % db_->options_.num_regions) +
                                     db_->options_.num_regions) %
                                    db_->options_.num_regions);
      rows_by_region[region].push_back(r);
    }
    int64_t affected = 0;
    for (const auto& [region, row_indices] : rows_by_region) {
      auto clone = std::make_unique<sql::InsertStatement>();
      clone->table = ins.table;
      clone->columns = ins.columns;
      for (size_t r : row_indices) {
        std::vector<sql::ExprPtr> row;
        row.reserve(ins.rows[r].size());
        for (const auto& e : ins.rows[r]) {
          row.push_back(sql::InlineParamsExpr(e.get(), params));
        }
        clone->rows.push_back(std::move(row));
      }
      std::string text = clone->ToSQL(sql::Dialect::MySQL());
      if (in_txn_) {
        touched_.insert(region);
        buffered_[region].push_back(text);
      } else {
        auto res = db_->regions_[static_cast<size_t>(region)].group->Propose(
            std::string(kSqlPrefix) + text);
        SPHERE_RETURN_NOT_OK(res.status());
      }
      affected += static_cast<int64_t>(row_indices.size());
    }
    return engine::ExecResult::Update(affected);
  }

  Result<engine::ExecResult> CommitTxn() {
    in_txn_ = false;
    if (touched_.empty()) return engine::ExecResult::Update(0);
    std::string xid =
        db_->options_.name + "-x" + std::to_string(db_->xid_counter_.fetch_add(1));
    // 2PC where each phase is itself a Raft proposal per region.
    for (int r : touched_) {
      std::string command = std::string(kPrepPrefix) + xid;
      for (const auto& text : buffered_[r]) {
        command += "\n" + text;
      }
      auto res = db_->regions_[static_cast<size_t>(r)].group->Propose(command);
      if (!res.ok()) {
        for (int r2 : touched_) {
          (void)db_->regions_[static_cast<size_t>(r2)].group->Propose(
              std::string(kAbortPrefix) + xid);
        }
        buffered_.clear();
        touched_.clear();
        return res.status();
      }
    }
    for (int r : touched_) {
      auto res = db_->regions_[static_cast<size_t>(r)].group->Propose(
          std::string(kCommitPrefix) + xid);
      SPHERE_RETURN_NOT_OK(res.status());
    }
    buffered_.clear();
    touched_.clear();
    return engine::ExecResult::Update(0);
  }

  Result<std::vector<int>> RouteRegions(const sql::Statement& stmt,
                                        const std::vector<Value>& params) {
    std::string table;
    const sql::Expr* where = nullptr;
    switch (stmt.kind()) {
      case sql::StatementKind::kSelect: {
        const auto& sel = static_cast<const sql::SelectStatement&>(stmt);
        if (sel.from.empty()) return std::vector<int>{0};
        table = sel.from[0].name;
        where = sel.where.get();
        break;
      }
      case sql::StatementKind::kInsert: {
        const auto& ins = static_cast<const sql::InsertStatement&>(stmt);
        table = ins.table.name;
        auto col = db_->partition_column_.find(ToLower(table));
        if (col == db_->partition_column_.end()) return std::vector<int>{0};
        auto values = sql::ExtractInsertValues(ins, col->second, params);
        if (!values.has_value() || values->empty()) {
          return Status::RouteError("INSERT misses the partition column");
        }
        std::set<int> out;
        for (const Value& v : *values) {
          out.insert(static_cast<int>(((v.ToInt() % db_->options_.num_regions) +
                                       db_->options_.num_regions) %
                                      db_->options_.num_regions));
        }
        return std::vector<int>(out.begin(), out.end());
      }
      case sql::StatementKind::kUpdate:
        table = static_cast<const sql::UpdateStatement&>(stmt).table.name;
        where = static_cast<const sql::UpdateStatement&>(stmt).where.get();
        break;
      case sql::StatementKind::kDelete:
        table = static_cast<const sql::DeleteStatement&>(stmt).table.name;
        where = static_cast<const sql::DeleteStatement&>(stmt).where.get();
        break;
      default:
        break;
    }
    auto col = db_->partition_column_.find(ToLower(table));
    if (col == db_->partition_column_.end()) return std::vector<int>{0};
    auto groups = sql::ExtractConditionGroups(where, params);
    if (groups.size() == 1) {
      for (const auto& cond : groups[0]) {
        if (!EqualsIgnoreCase(cond.column, col->second)) continue;
        if (cond.kind == sql::ColumnCondition::Kind::kEqual ||
            cond.kind == sql::ColumnCondition::Kind::kIn) {
          std::set<int> out;
          for (const Value& v : cond.values) {
            out.insert(static_cast<int>(
                ((v.ToInt() % db_->options_.num_regions) +
                 db_->options_.num_regions) %
                db_->options_.num_regions));
          }
          return std::vector<int>(out.begin(), out.end());
        }
      }
    }
    std::vector<int> all;
    for (int r = 0; r < db_->options_.num_regions; ++r) all.push_back(r);
    return all;
  }

  Result<engine::ExecResult> MergeReads(const sql::Statement& stmt,
                                        std::vector<engine::ExecResult> partials) {
    if (partials.empty()) return Status::Internal("no partials");
    if (partials.size() == 1) return std::move(partials[0]);
    return NaiveScatterMerge(static_cast<const sql::SelectStatement&>(stmt),
                             std::move(partials), db_->options_.name);
  }

  /// Cached storage-protocol connection to a region's current leader.
  Result<net::RemoteConnection*> LeaderConn(int region_idx) {
    RaftDb::Region& region = db_->regions_[static_cast<size_t>(region_idx)];
    int leader = region.group->leader();
    auto key = std::make_pair(region_idx, leader);
    auto it = leader_conns_.find(key);
    if (it == leader_conns_.end()) {
      it = leader_conns_
               .emplace(key, std::make_unique<net::RemoteConnection>(
                                 region.replicas[static_cast<size_t>(leader)].get(),
                                 db_->network_))
               .first;
    }
    return it->second.get();
  }

  RaftDb* db_;
  bool in_txn_ = false;
  std::map<int, std::vector<std::string>> buffered_;
  std::set<int> touched_;
  std::map<std::pair<int, int>, std::unique_ptr<net::RemoteConnection>>
      leader_conns_;
};

std::unique_ptr<SqlSession> RaftDb::Connect() {
  return std::make_unique<Session>(this);
}

}  // namespace sphere::baselines
