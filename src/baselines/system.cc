#include "baselines/system.h"

namespace sphere::baselines {

std::unique_ptr<SqlSession> SingleNodeSystem::Connect() {
  return std::make_unique<Session>(node_, network_);
}

std::unique_ptr<SqlSession> JdbcSystem::Connect() {
  return std::make_unique<Session>(ds_);
}

std::unique_ptr<SqlSession> ProxySystem::Connect() {
  return std::make_unique<Session>(proxy_);
}

}  // namespace sphere::baselines
