#ifndef SPHERE_BASELINES_SIMPLE_MIDDLEWARE_H_
#define SPHERE_BASELINES_SIMPLE_MIDDLEWARE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/system.h"
#include "core/algorithm.h"
#include "core/metadata.h"
#include "net/pool.h"

namespace sphere::baselines {

/// A generic proxy-only sharding middleware, modeled on Vitess (vtgate with
/// hash vindexes) and Citus (coordinator with a distribution column). The
/// architectural profile that matters for the paper's comparison:
///   - proxy-only: every statement pays the client<->middleware round trip;
///   - scatter-gather with a naive all-in-memory merge (no stream merger,
///     no binding-table optimization, no AVG/GROUP BY pushdown);
///   - serial scatter: multi-shard statements execute shard by shard;
///   - a fixed per-statement planning overhead.
/// Distributed transactions use plain 2PC over the touched shards.
struct SimpleMiddlewareOptions {
  std::string name = "middleware";
  int64_t plan_overhead_us = 25;  ///< vtgate planning / coordinator overhead
};

class SimpleMiddleware : public SqlSystem {
 public:
  SimpleMiddleware(SimpleMiddlewareOptions options,
                   const net::LatencyModel* network)
      : options_(std::move(options)), network_(network) {}

  /// Attaches a backend database server.
  Status AttachNode(const std::string& name, engine::StorageNode* node);

  /// Declares `logic_table` sharded by `column` over `nodes_expr`
  /// (e.g. "ds_${0..3}.t_${0..9}") with a MOD distribution.
  Status AddShardedTable(const std::string& logic_table,
                         const std::string& column,
                         const std::string& nodes_expr);

  const std::string& name() const override { return options_.name; }
  std::unique_ptr<SqlSession> Connect() override;

 private:
  struct TableInfo {
    std::string column;
    std::vector<core::DataNode> nodes;
    std::vector<std::string> table_names;  ///< distinct actual tables
    std::unique_ptr<core::ShardingAlgorithm> algorithm;
  };

  class Session;

  SimpleMiddlewareOptions options_;
  const net::LatencyModel* network_;
  std::map<std::string, std::unique_ptr<net::DataSource>> backends_;
  std::map<std::string, TableInfo> tables_;  // lower-case logic name
  std::atomic<int64_t> xid_counter_{1};
};

}  // namespace sphere::baselines

#endif  // SPHERE_BASELINES_SIMPLE_MIDDLEWARE_H_
