#ifndef SPHERE_ENGINE_ROW_BATCH_H_
#define SPHERE_ENGINE_ROW_BATCH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/value.h"

namespace sphere::engine {

/// Process-wide recycler for row storage (DESIGN.md §12).
///
/// Two things are pooled, separately:
///  - *shells*: empty `std::vector<Row>` batch vectors that keep their
///    element capacity, so a drain/projection loop never regrows its spine;
///  - *rows*: individual `Row`s whose `Value` cells keep their string
///    capacity, so projecting a row into one reuses the string buffer in
///    place (same-alternative variant assignment) instead of allocating.
///
/// The pool is bounded: releases beyond the caps are simply dropped (their
/// storage freed), so a burst cannot pin memory forever. Moved-from husks
/// (capacity-0 rows left behind by a batch move) are filtered out on
/// release — recycling them would defeat the capacity-reuse contract.
///
/// With the `pooled_batches` knob off every call degrades to the malloc
/// baseline: acquires return fresh storage and releases drop their input,
/// keeping the two knob arms behaviorally identical for differential tests.
///
/// Thread-safe; the internal mutex ranks kCommon (a leaf), so any layer may
/// call in while holding its own locks.
class RowStore {
 public:
  static constexpr size_t kMaxShells = 16;
  static constexpr size_t kMaxRows = 16384;
  static constexpr size_t kMaxBlocks = 64;

  static RowStore& Instance();

  /// An empty batch vector, with recycled spine capacity when available.
  std::vector<Row> AcquireShell() SPHERE_EXCLUDES(mu_);

  /// Appends up to `max` capacity-rich recycled rows to `*out`; returns how
  /// many were appended (0 when the pool is empty or pooling is off).
  size_t AcquireRows(std::vector<Row>* out, size_t max) SPHERE_EXCLUDES(mu_);

  /// Returns a consumed batch: non-husk rows feed the row pool, the cleared
  /// spine feeds the shell pool; anything over the caps is freed.
  void Release(std::vector<Row>&& batch) SPHERE_EXCLUDES(mu_);

  /// Recycled spine for a result's column labels (empty; capacity reused).
  std::vector<std::string> AcquireLabelShell() SPHERE_EXCLUDES(mu_);

  /// Returns a label vector: cleared, spine pooled up to kMaxShells.
  void ReleaseLabels(std::vector<std::string>&& labels) SPHERE_EXCLUDES(mu_);

  /// Fixed-size raw block recycler backing VectorResultSet's operator new.
  /// All blocks in the pool share one size (`block_size`); a mismatched
  /// request empties the pool and falls back to the heap.
  void* AcquireBlock(size_t size) SPHERE_EXCLUDES(mu_);
  bool ReleaseBlock(void* p, size_t size) SPHERE_EXCLUDES(mu_);

  /// Pool occupancy (tests/observability).
  size_t pooled_rows() const SPHERE_EXCLUDES(mu_);
  size_t pooled_shells() const SPHERE_EXCLUDES(mu_);

  /// Frees everything pooled (tests isolate measurements with this).
  void Clear() SPHERE_EXCLUDES(mu_);

 private:
  RowStore() = default;
  /// Pooled raw blocks are owned pointers; the singleton must free them at
  /// process exit or LeakSanitizer reports every parked block as a leak.
  /// Runs lock-free: static destruction is exclusive by definition, and the
  /// lockdep thread-local state is already gone at that point.
  ~RowStore();

  void ClearLocked() SPHERE_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kCommon, "engine/row_store"};
  std::vector<std::vector<Row>> shells_ SPHERE_GUARDED_BY(mu_);
  std::vector<Row> rows_ SPHERE_GUARDED_BY(mu_);
  std::vector<std::vector<std::string>> label_shells_ SPHERE_GUARDED_BY(mu_);
  std::vector<void*> blocks_ SPHERE_GUARDED_BY(mu_);
  size_t block_size_ SPHERE_GUARDED_BY(mu_) = 0;
};

/// Convenience for drain loops: hand a fully consumed row batch back to the
/// pool. No-op (frees) when pooling is off.
inline void RecycleRows(std::vector<Row>&& rows) {
  RowStore::Instance().Release(std::move(rows));
}

/// Statement-local projection scratch: a bounded stash of recycled rows a
/// projection loop pops from instead of default-constructing, plus the
/// acquired output shell. Returns unused rows to the pool on destruction;
/// the filled output itself is moved out by the producer.
class RowBatch {
 public:
  /// Acquires an output shell and up to `spare_hint` recycled rows.
  explicit RowBatch(size_t spare_hint);
  ~RowBatch();

  RowBatch(const RowBatch&) = delete;
  RowBatch& operator=(const RowBatch&) = delete;

  std::vector<Row>* out() { return &out_; }
  std::vector<Row> TakeOut() { return std::move(out_); }

  /// A row to project into: recycled (capacity-rich) when available,
  /// default-constructed otherwise.
  Row NextRow() {
    if (spare_.empty()) return Row{};
    Row r = std::move(spare_.back());
    spare_.pop_back();
    return r;
  }

 private:
  std::vector<Row> out_;
  std::vector<Row> spare_;
};

}  // namespace sphere::engine

#endif  // SPHERE_ENGINE_ROW_BATCH_H_
