#ifndef SPHERE_ENGINE_TOPK_H_
#define SPHERE_ENGINE_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace sphere::engine {

/// Streaming bounded top-k accumulator with stable-sort semantics: feeding n
/// items keeps the first k of their stable sort order under `Less`, in
/// O(n log k) time and O(k) space. Each item is decorated with its arrival
/// index and ties break on that index, so TakeSorted() returns exactly what
/// `std::stable_sort` + `resize(k)` would — the property the differential
/// tests rely on.
template <typename T, typename Less>
class TopKHeap {
 public:
  TopKHeap(size_t k, Less less) : k_(k), less_(std::move(less)) {
    heap_.reserve(k_ + 1);
  }

  void Push(T item) {
    Decorated cand{seq_++, std::move(item)};
    if (heap_.size() < k_) {
      heap_.push_back(std::move(cand));
      std::push_heap(heap_.begin(), heap_.end(), Before{&less_});
      return;
    }
    if (k_ == 0 || !Before{&less_}(cand, heap_.front())) return;
    std::pop_heap(heap_.begin(), heap_.end(), Before{&less_});
    heap_.back() = std::move(cand);
    std::push_heap(heap_.begin(), heap_.end(), Before{&less_});
  }

  /// Destructively extracts the kept items in stable sort order.
  std::vector<T> TakeSorted() {
    std::sort_heap(heap_.begin(), heap_.end(), Before{&less_});
    std::vector<T> out;
    out.reserve(heap_.size());
    for (Decorated& d : heap_) out.push_back(std::move(d.item));
    heap_.clear();
    return out;
  }

 private:
  struct Decorated {
    size_t seq;
    T item;
  };
  /// Strict weak order "a comes before b", ties resolved by arrival. Used as
  /// the heap comparator, which makes the heap a max-heap whose front is the
  /// last kept item — the eviction candidate.
  struct Before {
    const Less* less;
    bool operator()(const Decorated& a, const Decorated& b) const {
      if ((*less)(a.item, b.item)) return true;
      if ((*less)(b.item, a.item)) return false;
      return a.seq < b.seq;
    }
  };

  size_t k_;
  Less less_;
  size_t seq_ = 0;
  std::vector<Decorated> heap_;
};

/// Replaces *items with the first `k` elements of its stable sort order under
/// `less`, still sorted — equivalent to `stable_sort` + truncate-to-k, but
/// O(n log k) when k is small (the pushed-down `LIMIT offset+count` case).
template <typename T, typename Less>
void TopKStable(std::vector<T>* items, size_t k, Less less) {
  if (k >= items->size()) {
    std::stable_sort(items->begin(), items->end(), less);
    return;
  }
  TopKHeap<T, Less> heap(k, less);
  for (T& item : *items) heap.Push(std::move(item));
  *items = heap.TakeSorted();
}

}  // namespace sphere::engine

#endif  // SPHERE_ENGINE_TOPK_H_
