#ifndef SPHERE_ENGINE_ROW_DEDUP_H_
#define SPHERE_ENGINE_ROW_DEDUP_H_

#include <cstddef>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/value.h"

namespace sphere::engine {

inline bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

/// DISTINCT bookkeeping without owning row copies: the set stores indices
/// into an external row vector and hashes/compares the rows in place
/// (HashRow-keyed, O(1) expected per probe instead of an O(log n)
/// Value::Compare chain). Usage: push the candidate row onto the vector, then
/// Admit() the new index; on a duplicate the caller pops the row back off.
class RowIndexSet {
 public:
  explicit RowIndexSet(const std::vector<Row>* rows)
      : seen_(16, IndexHash{rows}, IndexEq{rows}) {}

  /// True when rows[index] was not seen before (and records it).
  bool Admit(size_t index) { return seen_.insert(index).second; }

 private:
  struct IndexHash {
    const std::vector<Row>* rows;
    size_t operator()(size_t i) const {
      return static_cast<size_t>(HashRow((*rows)[i]));
    }
  };
  struct IndexEq {
    const std::vector<Row>* rows;
    bool operator()(size_t a, size_t b) const {
      return RowsEqual((*rows)[a], (*rows)[b]);
    }
  };
  std::unordered_set<size_t, IndexHash, IndexEq> seen_;
};

/// Removes duplicate rows (first occurrence wins) by moving survivors — no
/// row is ever copied.
inline void DedupRowsInPlace(std::vector<Row>* rows) {
  std::vector<Row> deduped;
  deduped.reserve(rows->size());
  RowIndexSet seen(&deduped);
  for (Row& row : *rows) {
    deduped.push_back(std::move(row));
    if (!seen.Admit(deduped.size() - 1)) deduped.pop_back();
  }
  *rows = std::move(deduped);
}

}  // namespace sphere::engine

#endif  // SPHERE_ENGINE_ROW_DEDUP_H_
