#ifndef SPHERE_ENGINE_EVALUATOR_H_
#define SPHERE_ENGINE_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "sql/ast.h"

namespace sphere::engine {

/// Name environment of a row flowing through the executor: one
/// (qualifier, column) pair per value slot. Qualifiers are table aliases (or
/// table names); derived columns have empty qualifiers.
class BoundColumns {
 public:
  void Add(const std::string& qualifier, const std::string& name) {
    cols_.emplace_back(qualifier, name);
  }

  size_t size() const { return cols_.size(); }
  const std::pair<std::string, std::string>& at(size_t i) const {
    return cols_[i];
  }

  /// Resolves a column reference. A qualified ref must match the qualifier;
  /// an unqualified ref matches by name (first match wins, as in MySQL's
  /// permissive mode). Returns -1 when not found.
  int Resolve(const std::string& qualifier, const std::string& name) const;

 private:
  std::vector<std::pair<std::string, std::string>> cols_;
};

/// Evaluates `expr` against one row. Aggregate function calls are rejected
/// here; the executor computes them over groups and never routes them through
/// the row evaluator. Scalar functions: ABS, MOD, LENGTH, LOWER, UPPER,
/// SUBSTR, CONCAT, COALESCE, NOW.
Result<Value> EvalExpr(const sql::Expr* expr, const BoundColumns& columns,
                       const Row& row, const std::vector<Value>& params);

/// SQL truthiness: NULL and numeric zero are false.
bool IsTruthy(const Value& v);

}  // namespace sphere::engine

#endif  // SPHERE_ENGINE_EVALUATOR_H_
