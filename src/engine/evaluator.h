#ifndef SPHERE_ENGINE_EVALUATOR_H_
#define SPHERE_ENGINE_EVALUATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "common/value.h"
#include "sql/ast.h"

namespace sphere::engine {

/// Name environment of a row flowing through the executor: one
/// (qualifier, column) pair per value slot. Qualifiers are table aliases (or
/// table names); derived columns have empty qualifiers.
///
/// Entries are views into the statement AST and table schemas, both of which
/// outlive the executor's statement-scoped instances — binding a source
/// copies no strings. The spine is arena-backed inside a statement scope.
class BoundColumns {
 public:
  void Add(std::string_view qualifier, std::string_view name) {
    cols_.emplace_back(qualifier, name);
  }

  size_t size() const { return cols_.size(); }
  const std::pair<std::string_view, std::string_view>& at(size_t i) const {
    return cols_[i];
  }

  /// Resolves a column reference. A qualified ref must match the qualifier;
  /// an unqualified ref matches by name (first match wins, as in MySQL's
  /// permissive mode). Returns -1 when not found.
  int Resolve(std::string_view qualifier, std::string_view name) const;

 private:
  ArenaVector<std::pair<std::string_view, std::string_view>> cols_;
};

/// Evaluates `expr` against one row. Aggregate function calls are rejected
/// here; the executor computes them over groups and never routes them through
/// the row evaluator. Scalar functions: ABS, MOD, LENGTH, LOWER, UPPER,
/// SUBSTR, CONCAT, COALESCE, NOW.
Result<Value> EvalExpr(const sql::Expr* expr, const BoundColumns& columns,
                       const Row& row, const std::vector<Value>& params);

/// SQL truthiness: NULL and numeric zero are false.
bool IsTruthy(const Value& v);

}  // namespace sphere::engine

#endif  // SPHERE_ENGINE_EVALUATOR_H_
