#include "engine/evaluator.h"

#include <cmath>

#include "common/clock.h"
#include "common/strings.h"

namespace sphere::engine {

int BoundColumns::Resolve(std::string_view qualifier,
                          std::string_view name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (!qualifier.empty() && !EqualsIgnoreCase(cols_[i].first, qualifier)) {
      continue;
    }
    if (EqualsIgnoreCase(cols_[i].second, name)) return static_cast<int>(i);
  }
  return -1;
}

bool IsTruthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_int()) return v.AsInt() != 0;
  if (v.is_double()) return v.AsDouble() != 0.0;
  return !v.AsString().empty();
}

namespace {

Result<Value> EvalBinary(const sql::BinaryExpr* b, const BoundColumns& cols,
                         const Row& row, const std::vector<Value>& params) {
  using sql::BinaryOp;
  // Short-circuit logical operators.
  if (b->op == BinaryOp::kAnd || b->op == BinaryOp::kOr) {
    SPHERE_ASSIGN_OR_RETURN(Value l, EvalExpr(b->left.get(), cols, row, params));
    bool lt = IsTruthy(l);
    if (b->op == BinaryOp::kAnd && !lt) return Value(int64_t{0});
    if (b->op == BinaryOp::kOr && lt) return Value(int64_t{1});
    SPHERE_ASSIGN_OR_RETURN(Value r, EvalExpr(b->right.get(), cols, row, params));
    return Value(int64_t{IsTruthy(r) ? 1 : 0});
  }

  SPHERE_ASSIGN_OR_RETURN(Value l, EvalExpr(b->left.get(), cols, row, params));
  SPHERE_ASSIGN_OR_RETURN(Value r, EvalExpr(b->right.get(), cols, row, params));

  switch (b->op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (l.is_null() || r.is_null()) return Value(int64_t{0});  // UNKNOWN->false
      int c = l.Compare(r);
      bool result = false;
      switch (b->op) {
        case BinaryOp::kEq: result = c == 0; break;
        case BinaryOp::kNe: result = c != 0; break;
        case BinaryOp::kLt: result = c < 0; break;
        case BinaryOp::kLe: result = c <= 0; break;
        case BinaryOp::kGt: result = c > 0; break;
        case BinaryOp::kGe: result = c >= 0; break;
        default: break;
      }
      return Value(int64_t{result ? 1 : 0});
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      if (l.is_null() || r.is_null()) return Value::Null();
      if (l.is_int() && r.is_int()) {
        int64_t a = l.AsInt(), c = r.AsInt();
        switch (b->op) {
          case BinaryOp::kAdd: return Value(a + c);
          case BinaryOp::kSub: return Value(a - c);
          default: return Value(a * c);
        }
      }
      double a = l.ToDouble(), c = r.ToDouble();
      switch (b->op) {
        case BinaryOp::kAdd: return Value(a + c);
        case BinaryOp::kSub: return Value(a - c);
        default: return Value(a * c);
      }
    }
    case BinaryOp::kDiv: {
      if (l.is_null() || r.is_null()) return Value::Null();
      double d = r.ToDouble();
      if (d == 0.0) return Value::Null();  // SQL: division by zero -> NULL
      return Value(l.ToDouble() / d);
    }
    case BinaryOp::kMod: {
      if (l.is_null() || r.is_null()) return Value::Null();
      int64_t d = r.ToInt();
      if (d == 0) return Value::Null();
      return Value(l.ToInt() % d);
    }
    case BinaryOp::kLike:
    case BinaryOp::kNotLike: {
      if (l.is_null() || r.is_null()) return Value(int64_t{0});
      bool m = LikeMatch(l.ToString(), r.ToString());
      return Value(int64_t{(b->op == BinaryOp::kLike) == m ? 1 : 0});
    }
    case BinaryOp::kConcat: {
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value(l.ToString() + r.ToString());
    }
    default:
      return Status::Internal("unhandled binary operator");
  }
}

Result<Value> EvalFunc(const sql::FuncCallExpr* f, const BoundColumns& cols,
                       const Row& row, const std::vector<Value>& params) {
  if (f->IsAggregate()) {
    return Status::InvalidArgument(
        "aggregate function " + f->name + " outside aggregation context");
  }
  std::vector<Value> args;
  args.reserve(f->args.size());
  for (const auto& a : f->args) {
    SPHERE_ASSIGN_OR_RETURN(Value v, EvalExpr(a.get(), cols, row, params));
    args.push_back(std::move(v));
  }
  const std::string& n = f->name;
  if (EqualsIgnoreCase(n, "ABS") && args.size() == 1) {
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_int()) {
      return Value(static_cast<int64_t>(std::llabs(args[0].AsInt())));
    }
    return Value(std::fabs(args[0].ToDouble()));
  }
  if (EqualsIgnoreCase(n, "MOD") && args.size() == 2) {
    if (args[0].is_null() || args[1].is_null() || args[1].ToInt() == 0) {
      return Value::Null();
    }
    return Value(args[0].ToInt() % args[1].ToInt());
  }
  if (EqualsIgnoreCase(n, "LENGTH") && args.size() == 1) {
    if (args[0].is_null()) return Value::Null();
    return Value(static_cast<int64_t>(args[0].ToString().size()));
  }
  if (EqualsIgnoreCase(n, "LOWER") && args.size() == 1) {
    if (args[0].is_null()) return Value::Null();
    return Value(ToLower(args[0].ToString()));
  }
  if (EqualsIgnoreCase(n, "UPPER") && args.size() == 1) {
    if (args[0].is_null()) return Value::Null();
    return Value(ToUpper(args[0].ToString()));
  }
  if (EqualsIgnoreCase(n, "SUBSTR") || EqualsIgnoreCase(n, "SUBSTRING")) {
    if (args.size() < 2 || args.size() > 3) {
      return Status::InvalidArgument("SUBSTR takes 2 or 3 arguments");
    }
    if (args[0].is_null()) return Value::Null();
    std::string s = args[0].ToString();
    int64_t start = args[1].ToInt();
    if (start < 1) start = 1;
    size_t from = static_cast<size_t>(start - 1);
    if (from >= s.size()) return Value(std::string());
    size_t len = args.size() == 3 ? static_cast<size_t>(std::max<int64_t>(0, args[2].ToInt()))
                                  : std::string::npos;
    return Value(s.substr(from, len));
  }
  if (EqualsIgnoreCase(n, "CONCAT")) {
    std::string out;
    for (const auto& a : args) {
      if (a.is_null()) return Value::Null();
      out += a.ToString();
    }
    return Value(out);
  }
  if (EqualsIgnoreCase(n, "COALESCE")) {
    for (const auto& a : args) {
      if (!a.is_null()) return a;
    }
    return Value::Null();
  }
  if (EqualsIgnoreCase(n, "NOW")) {
    return Value(WallMillis());
  }
  return Status::Unsupported("function " + n);
}

}  // namespace

Result<Value> EvalExpr(const sql::Expr* expr, const BoundColumns& columns,
                       const Row& row, const std::vector<Value>& params) {
  using sql::ExprKind;
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return static_cast<const sql::LiteralExpr*>(expr)->value;
    case ExprKind::kParam: {
      int idx = static_cast<const sql::ParamExpr*>(expr)->index;
      if (idx < 0 || static_cast<size_t>(idx) >= params.size()) {
        return Status::InvalidArgument("missing parameter " + std::to_string(idx));
      }
      return params[static_cast<size_t>(idx)];
    }
    case ExprKind::kColumnRef: {
      const auto* c = static_cast<const sql::ColumnRefExpr*>(expr);
      int idx = columns.Resolve(c->table, c->column);
      if (idx < 0) {
        return Status::NotFound("unknown column " +
                                (c->table.empty() ? c->column
                                                  : c->table + "." + c->column));
      }
      return row[static_cast<size_t>(idx)];
    }
    case ExprKind::kUnary: {
      const auto* u = static_cast<const sql::UnaryExpr*>(expr);
      SPHERE_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(u->child.get(), columns, row, params));
      switch (u->op) {
        case sql::UnaryOp::kNot:
          return Value(int64_t{IsTruthy(v) ? 0 : 1});
        case sql::UnaryOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.is_int()) return Value(-v.AsInt());
          return Value(-v.ToDouble());
        case sql::UnaryOp::kIsNull:
          return Value(int64_t{v.is_null() ? 1 : 0});
        case sql::UnaryOp::kIsNotNull:
          return Value(int64_t{v.is_null() ? 0 : 1});
      }
      return Status::Internal("unhandled unary op");
    }
    case ExprKind::kBinary:
      return EvalBinary(static_cast<const sql::BinaryExpr*>(expr), columns, row,
                        params);
    case ExprKind::kBetween: {
      const auto* b = static_cast<const sql::BetweenExpr*>(expr);
      SPHERE_ASSIGN_OR_RETURN(Value v, EvalExpr(b->expr.get(), columns, row, params));
      SPHERE_ASSIGN_OR_RETURN(Value lo, EvalExpr(b->low.get(), columns, row, params));
      SPHERE_ASSIGN_OR_RETURN(Value hi, EvalExpr(b->high.get(), columns, row, params));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value(int64_t{0});
      bool in = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
      return Value(int64_t{in != b->negated ? 1 : 0});
    }
    case ExprKind::kIn: {
      const auto* in = static_cast<const sql::InExpr*>(expr);
      SPHERE_ASSIGN_OR_RETURN(Value v, EvalExpr(in->expr.get(), columns, row, params));
      if (v.is_null()) return Value(int64_t{0});
      bool found = false;
      for (const auto& item : in->list) {
        SPHERE_ASSIGN_OR_RETURN(Value x, EvalExpr(item.get(), columns, row, params));
        if (!x.is_null() && v.Compare(x) == 0) {
          found = true;
          break;
        }
      }
      return Value(int64_t{found != in->negated ? 1 : 0});
    }
    case ExprKind::kFuncCall:
      return EvalFunc(static_cast<const sql::FuncCallExpr*>(expr), columns, row,
                      params);
    case ExprKind::kCase: {
      const auto* c = static_cast<const sql::CaseExpr*>(expr);
      for (const auto& [when, then] : c->branches) {
        SPHERE_ASSIGN_OR_RETURN(Value w, EvalExpr(when.get(), columns, row, params));
        if (IsTruthy(w)) return EvalExpr(then.get(), columns, row, params);
      }
      if (c->else_expr) return EvalExpr(c->else_expr.get(), columns, row, params);
      return Value::Null();
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace sphere::engine
