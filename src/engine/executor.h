#ifndef SPHERE_ENGINE_EXECUTOR_H_
#define SPHERE_ENGINE_EXECUTOR_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "engine/evaluator.h"
#include "engine/result_set.h"
#include "engine/scan_cursor.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "storage/txn.h"

namespace sphere::engine {

/// Executes one parsed statement against a storage::Database — the SQL
/// execution layer that makes every storage node a small standalone RDBMS.
///
/// Supported surface: SELECT with joins (inner/left/cross, hash join on
/// equi-conditions), WHERE, GROUP BY + HAVING, the five SQL aggregates
/// (including DISTINCT), ORDER BY, LIMIT/OFFSET, DISTINCT; INSERT (multi-row),
/// UPDATE, DELETE; CREATE/DROP/TRUNCATE TABLE, CREATE INDEX. Point and range
/// predicates on the primary key and equality on secondarily indexed columns
/// use index scans.
class Executor {
 public:
  Executor(storage::Database* db, storage::TransactionManager* txn_manager)
      : db_(db), txn_manager_(txn_manager) {}

  /// Executes `stmt`. When `txn` is non-null, DML changes append undo records
  /// to it; otherwise each statement is atomic by itself (auto-commit).
  Result<ExecResult> Execute(const sql::Statement& stmt,
                             const std::vector<Value>& params,
                             storage::Transaction* txn);

 private:
  struct SourceRows {
    BoundColumns columns;
    std::vector<Row> rows;
  };

  Result<ExecResult> ExecuteSelect(const sql::SelectStatement& stmt,
                                   const std::vector<Value>& params);
  Result<ExecResult> ExecuteInsert(const sql::InsertStatement& stmt,
                                   const std::vector<Value>& params,
                                   storage::Transaction* txn);
  Result<ExecResult> ExecuteUpdate(const sql::UpdateStatement& stmt,
                                   const std::vector<Value>& params,
                                   storage::Transaction* txn);
  Result<ExecResult> ExecuteDelete(const sql::DeleteStatement& stmt,
                                   const std::vector<Value>& params,
                                   storage::Transaction* txn);
  Result<ExecResult> ExecuteDDL(const sql::Statement& stmt);

  /// Picks the access path (PK point/range, secondary index, or full scan)
  /// for one table reference under `where`.
  Result<ScanPlan> PlanScan(const sql::TableRef& ref, const sql::Expr* where,
                            const std::vector<Value>& params);

  /// Streaming fast path for single-table, non-aggregated SELECTs: drives a
  /// lazy scan cursor through filter → projection with LIMIT-aware early
  /// termination, index-order sort elision and bounded top-k (DESIGN.md §9).
  /// Returns nullopt when the statement needs the materializing path.
  Result<std::optional<ExecResult>> TryStreamSelect(
      const sql::SelectStatement& stmt, const std::vector<Value>& params);

  /// Scans one table (index-assisted when `where` permits) into memory.
  Result<SourceRows> ScanTable(const sql::TableRef& ref, const sql::Expr* where,
                               const std::vector<Value>& params);

  /// Builds the joined/filtered source relation of a SELECT.
  Result<SourceRows> BuildSource(const sql::SelectStatement& stmt,
                                 const std::vector<Value>& params);

  storage::Database* db_;
  storage::TransactionManager* txn_manager_;
};

}  // namespace sphere::engine

#endif  // SPHERE_ENGINE_EXECUTOR_H_
