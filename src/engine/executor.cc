#include "engine/executor.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>

#include "common/strings.h"
#include "engine/pipeline.h"
#include "engine/row_batch.h"
#include "engine/row_dedup.h"
#include "engine/topk.h"
#include "sql/condition.h"
#include "sql/dialect.h"

namespace sphere::engine {

namespace {

using sql::ColumnCondition;

/// Lexicographic row order for GROUP keys.
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Output column labels of a SELECT, resolving `*` against the source.
std::vector<std::string> BuildLabels(const sql::SelectStatement& stmt,
                                     const BoundColumns& cols) {
  const sql::Dialect& dialect = sql::Dialect::MySQL();
  std::vector<std::string> labels = RowStore::Instance().AcquireLabelShell();
  for (const auto& item : stmt.items) {
    if (item.is_star) {
      for (size_t i = 0; i < cols.size(); ++i) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(cols.at(i).first, item.star_qualifier)) {
          continue;
        }
        labels.emplace_back(cols.at(i).second);
      }
    } else {
      labels.push_back(item.Label(dialect));
    }
  }
  return labels;
}

/// Projects one source row through the select list.
Result<Row> ProjectRow(const sql::SelectStatement& stmt,
                       const BoundColumns& cols, const Row& row,
                       const std::vector<Value>& params) {
  Row out;
  out.reserve(stmt.items.size());
  for (const auto& item : stmt.items) {
    if (item.is_star) {
      for (size_t i = 0; i < cols.size(); ++i) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(cols.at(i).first, item.star_qualifier)) {
          continue;
        }
        out.push_back(row[i]);
      }
    } else {
      SPHERE_ASSIGN_OR_RETURN(Value v, EvalExpr(item.expr.get(), cols, row, params));
      out.push_back(std::move(v));
    }
  }
  return out;
}

/// One select-list output cell of the pooled projection: either a direct
/// source-column copy (capacity-reusing assignment into the recycled row)
/// or a general expression evaluation.
struct ProjectionStep {
  int col = -1;                     ///< source column index, or -1
  const sql::Expr* expr = nullptr;  ///< evaluated when col < 0
};

/// Flattens the select list (stars expanded) into per-cell steps. Direct
/// column references skip EvalExpr's value copy so the projection can assign
/// straight from the borrowed source row.
ArenaVector<ProjectionStep> BuildProjectionSteps(
    const sql::SelectStatement& stmt, const BoundColumns& cols) {
  ArenaVector<ProjectionStep> steps;
  steps.reserve(stmt.items.size());
  for (const auto& item : stmt.items) {
    if (item.is_star) {
      for (size_t i = 0; i < cols.size(); ++i) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(cols.at(i).first, item.star_qualifier)) {
          continue;
        }
        steps.push_back(ProjectionStep{static_cast<int>(i), nullptr});
      }
    } else if (item.expr->kind() == sql::ExprKind::kColumnRef) {
      const auto* c = static_cast<const sql::ColumnRefExpr*>(item.expr.get());
      int idx = cols.Resolve(c->table, c->column);
      if (idx >= 0) {
        steps.push_back(ProjectionStep{idx, nullptr});
      } else {
        // Unresolvable reference: defer to EvalExpr for identical errors.
        steps.push_back(ProjectionStep{-1, item.expr.get()});
      }
    } else {
      steps.push_back(ProjectionStep{-1, item.expr.get()});
    }
  }
  return steps;
}

/// Projects into a recycled row: same-position cells are assigned in place
/// (same-alternative variant assignment reuses string capacity), so a warm
/// row projects with zero allocations.
Status ProjectRowInto(const ArenaVector<ProjectionStep>& steps,
                      const BoundColumns& cols, const Row& row,
                      const std::vector<Value>& params, Row* out) {
  if (out->size() > steps.size()) out->resize(steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].col >= 0) {
      const Value& v = row[static_cast<size_t>(steps[i].col)];
      if (i < out->size()) {
        (*out)[i] = v;
      } else {
        out->push_back(v);
      }
    } else {
      SPHERE_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(steps[i].expr, cols, row, params));
      if (i < out->size()) {
        (*out)[i] = std::move(v);
      } else {
        out->push_back(std::move(v));
      }
    }
  }
  return Status::OK();
}

/// Strict weak order over (order-keys, payload) pairs per the ORDER BY spec.
struct KeyedRowLess {
  const std::vector<sql::OrderByItem>* order_by;
  bool operator()(const std::pair<Row, Row>& a,
                  const std::pair<Row, Row>& b) const {
    for (size_t i = 0; i < order_by->size(); ++i) {
      int c = a.first[i].Compare(b.first[i]);
      if (c != 0) return (*order_by)[i].desc ? c > 0 : c < 0;
    }
    return false;
  }
};

/// True when `cond`'s qualifier can refer to this table.
bool ConditionApplies(const ColumnCondition& cond, const sql::TableRef& ref,
                      const Schema& schema) {
  if (!cond.table.empty() && !EqualsIgnoreCase(cond.table, ref.EffectiveName())) {
    return false;
  }
  return schema.IndexOf(cond.column) >= 0;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

enum class AggType { kCount, kSum, kMin, kMax, kAvg };

Result<AggType> AggTypeOf(const std::string& name) {
  if (EqualsIgnoreCase(name, "COUNT")) return AggType::kCount;
  if (EqualsIgnoreCase(name, "SUM")) return AggType::kSum;
  if (EqualsIgnoreCase(name, "MIN")) return AggType::kMin;
  if (EqualsIgnoreCase(name, "MAX")) return AggType::kMax;
  if (EqualsIgnoreCase(name, "AVG")) return AggType::kAvg;
  return Status::Unsupported("aggregate " + name);
}

/// One aggregate accumulator.
struct AggState {
  AggType type = AggType::kCount;
  bool distinct = false;
  int64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min, max;
  std::set<Value> distinct_values;

  void Accumulate(const Value& v) {
    if (v.is_null()) return;
    if (distinct) {
      if (!distinct_values.insert(v).second) return;
    }
    ++count;
    if (v.is_int()) {
      isum += v.AsInt();
      sum += static_cast<double>(v.AsInt());
    } else if (v.is_double()) {
      sum_is_int = false;
      sum += v.AsDouble();
    }
    if (min.is_null() || v.Compare(min) < 0) min = v;
    if (max.is_null() || v.Compare(max) > 0) max = v;
  }

  Value Finish() const {
    switch (type) {
      case AggType::kCount:
        return Value(count);
      case AggType::kSum:
        if (count == 0) return Value::Null();
        return sum_is_int ? Value(isum) : Value(sum);
      case AggType::kMin:
        return min;
      case AggType::kMax:
        return max;
      case AggType::kAvg:
        if (count == 0) return Value::Null();
        return Value(sum / static_cast<double>(count));
    }
    return Value::Null();
  }
};

/// The aggregates referenced by a query, keyed by their normalized SQL text.
struct AggPlan {
  std::vector<const sql::FuncCallExpr*> exprs;  ///< unique aggregate calls
  std::map<std::string, size_t> index_by_key;

  static std::string KeyOf(const sql::FuncCallExpr* f) {
    return f->ToSQL(sql::Dialect::MySQL());
  }

  void Collect(const sql::Expr* e) {
    sql::WalkExpr(e, [this](const sql::Expr* node) {
      if (node->kind() == sql::ExprKind::kFuncCall) {
        const auto* f = static_cast<const sql::FuncCallExpr*>(node);
        if (f->IsAggregate()) {
          std::string key = KeyOf(f);
          if (!index_by_key.count(key)) {
            index_by_key[key] = exprs.size();
            exprs.push_back(f);
          }
        }
      }
    });
  }
};

/// One group's accumulated state.
struct Group {
  Row key;
  Row first_row;  ///< first source row of the group (for non-agg items)
  std::vector<AggState> aggs;
};

/// Evaluates an expression over a finished group: aggregate calls resolve to
/// their accumulated value, everything else evaluates against the group's
/// first source row.
Result<Value> EvalOverGroup(const sql::Expr* e, const AggPlan& plan,
                            const Group& g, const BoundColumns& cols,
                            const std::vector<Value>& params) {
  if (e->kind() == sql::ExprKind::kFuncCall) {
    const auto* f = static_cast<const sql::FuncCallExpr*>(e);
    if (f->IsAggregate()) {
      auto it = plan.index_by_key.find(AggPlan::KeyOf(f));
      if (it == plan.index_by_key.end()) {
        return Status::Internal("aggregate not planned: " + f->name);
      }
      return g.aggs[it->second].Finish();
    }
  }
  if (e->kind() == sql::ExprKind::kBinary) {
    const auto* b = static_cast<const sql::BinaryExpr*>(e);
    SPHERE_ASSIGN_OR_RETURN(Value l, EvalOverGroup(b->left.get(), plan, g, cols, params));
    SPHERE_ASSIGN_OR_RETURN(Value r, EvalOverGroup(b->right.get(), plan, g, cols, params));
    // Re-evaluate the operator on computed operands via a tiny literal tree.
    sql::BinaryExpr tmp(b->op, std::make_unique<sql::LiteralExpr>(l),
                        std::make_unique<sql::LiteralExpr>(r));
    return EvalExpr(&tmp, cols, g.first_row, params);
  }
  return EvalExpr(e, cols, g.first_row, params);
}

}  // namespace

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

Result<ScanPlan> Executor::PlanScan(const sql::TableRef& ref,
                                    const sql::Expr* where,
                                    const std::vector<Value>& params) {
  storage::Table* table = db_->FindTable(ref.name);
  if (table == nullptr) {
    return Status::NotFound("table " + ref.name);
  }
  ScanPlan plan;
  plan.table = table;

  // Try to find an index-friendly condition (single AND-group only).
  ArenaVector<sql::ConditionGroup> groups =
      sql::ExtractConditionGroups(where, params);
  int pk = table->pk_index();
  if (groups.size() == 1) {
    for (const auto& cond : groups[0]) {
      if (!ConditionApplies(cond, ref, table->schema())) continue;
      int ci = table->schema().IndexOf(cond.column);
      if (ci == pk && !plan.pk_cond.has_value()) {
        plan.pk_cond = cond;
      } else if (cond.kind == ColumnCondition::Kind::kEqual &&
                 table->FindIndexOn(ci) != nullptr &&
                 !plan.idx_cond.has_value()) {
        plan.idx_cond = cond;
      }
    }
  }
  return plan;
}

Result<Executor::SourceRows> Executor::ScanTable(
    const sql::TableRef& ref, const sql::Expr* where,
    const std::vector<Value>& params) {
  SPHERE_ASSIGN_OR_RETURN(ScanPlan plan, PlanScan(ref, where, params));
  SourceRows out;
  const std::string& qual = ref.EffectiveName();
  for (const auto& col : plan.table->schema().columns()) {
    out.columns.Add(qual, col.name);
  }

  // Rows must outlive the latch, so the multi-table/aggregated path still
  // materializes the scan here; the copy is the price of releasing the latch
  // before join/merge work (single-table SELECTs bypass this entirely via
  // Executor::TryStreamSelect).
  ReaderLock lk(plan.table->latch());
  if (!plan.pk_cond.has_value() && !plan.idx_cond.has_value()) {
    out.rows.reserve(plan.table->row_count());
  }
  TableScanCursor cursor(plan);
  for (const Row* row = cursor.Next(); row != nullptr; row = cursor.Next()) {
    out.rows.push_back(*row);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Streaming fast path
// ---------------------------------------------------------------------------

Result<std::optional<ExecResult>> Executor::TryStreamSelect(
    const sql::SelectStatement& stmt, const std::vector<Value>& params) {
  std::optional<ExecResult> fallback;  // nullopt → materializing path
  if (stmt.from.size() != 1 || !stmt.joins.empty()) return fallback;
  if (stmt.HasAggregation() || !stmt.group_by.empty()) return fallback;

  SPHERE_ASSIGN_OR_RETURN(ScanPlan plan,
                          PlanScan(stmt.from[0], stmt.where.get(), params));
  storage::Table* table = plan.table;

  // Bind source columns (single table ⇒ source index == schema index).
  BoundColumns columns;
  const std::string& qual = stmt.from[0].EffectiveName();
  for (const auto& col : table->schema().columns()) {
    columns.Add(qual, col.name);
  }

  // Every ORDER BY column must resolve against the source; otherwise the
  // materializing path owns the statement, including its error reporting.
  for (const auto& ob : stmt.order_by) {
    if (ob.expr->kind() == sql::ExprKind::kColumnRef) {
      const auto* c = static_cast<const sql::ColumnRefExpr*>(ob.expr.get());
      if (columns.Resolve(c->table, c->column) < 0) return fallback;
    }
  }

  // Classify the ORDER BY. An ascending first key on the primary key of a
  // pk-ordered scan makes the sort a no-op: the key is unique, so later
  // ORDER BY columns can never break a tie.
  enum class OrderMode { kNone, kIndexOrdered, kTopK };
  OrderMode order = OrderMode::kNone;
  if (!stmt.order_by.empty()) {
    order = OrderMode::kTopK;
    const auto& first = stmt.order_by[0];
    if (!first.desc && first.expr->kind() == sql::ExprKind::kColumnRef &&
        table->pk_index() >= 0 && plan.pk_ordered()) {
      const auto* c = static_cast<const sql::ColumnRefExpr*>(first.expr.get());
      if (columns.Resolve(c->table, c->column) == table->pk_index()) {
        order = OrderMode::kIndexOrdered;
      }
    }
  }

  bool has_count = stmt.limit.has_value() && stmt.limit->count >= 0;
  size_t offset =
      stmt.limit.has_value()
          ? static_cast<size_t>(std::max<int64_t>(0, stmt.limit->offset))
          : 0;
  size_t budget = has_count
                      ? offset + static_cast<size_t>(stmt.limit->count)
                      : std::numeric_limits<size_t>::max();

  if (order == OrderMode::kTopK && (!has_count || stmt.distinct)) {
    // Without a LIMIT count there is nothing to bound; with DISTINCT the
    // baseline dedups *after* sorting, so truncating to k rows first would
    // let duplicates consume the budget. Both use the materializing path.
    return fallback;
  }

  std::vector<std::string> labels = BuildLabels(stmt, columns);
  // Output spine and (on the plain-stream path) projection rows come from
  // the recycler; with `pooled_batches` off both acquires return fresh
  // storage, restoring the malloc baseline.
  const bool pooled = PipelineConfig::pooled_batches_enabled();
  std::vector<Row> output = RowStore::Instance().AcquireShell();
  std::vector<Row> spare = RowStore::Instance().AcquireShell();
  {
    ReaderLock lk(table->latch());
    TableScanCursor cursor(plan);
    if (order == OrderMode::kTopK) {
      // Bounded top-k: keep the first `offset+count` rows of the stable sort
      // order, O(n log k) instead of O(n log n) and O(k) extra memory.
      TopKHeap<std::pair<Row, Row>, KeyedRowLess> heap(
          budget, KeyedRowLess{&stmt.order_by});
      for (const Row* row = cursor.Next(); row != nullptr;
           row = cursor.Next()) {
        if (stmt.where != nullptr) {
          SPHERE_ASSIGN_OR_RETURN(
              Value ok, EvalExpr(stmt.where.get(), columns, *row, params));
          if (!IsTruthy(ok)) continue;
        }
        Row keys;
        keys.reserve(stmt.order_by.size());
        for (const auto& ob : stmt.order_by) {
          SPHERE_ASSIGN_OR_RETURN(
              Value v, EvalExpr(ob.expr.get(), columns, *row, params));
          keys.push_back(std::move(v));
        }
        SPHERE_ASSIGN_OR_RETURN(Row projected,
                                ProjectRow(stmt, columns, *row, params));
        heap.Push({std::move(keys), std::move(projected)});
      }
      std::vector<std::pair<Row, Row>> sorted = heap.TakeSorted();
      output.reserve(sorted.size());
      for (auto& [keys, row] : sorted) output.push_back(std::move(row));
    } else if (stmt.distinct) {
      // Dedup in scan order; stop once `offset+count` distinct rows exist.
      RowIndexSet seen(&output);
      for (const Row* row = cursor.Next();
           row != nullptr && output.size() < budget; row = cursor.Next()) {
        if (stmt.where != nullptr) {
          SPHERE_ASSIGN_OR_RETURN(
              Value ok, EvalExpr(stmt.where.get(), columns, *row, params));
          if (!IsTruthy(ok)) continue;
        }
        SPHERE_ASSIGN_OR_RETURN(Row projected,
                                ProjectRow(stmt, columns, *row, params));
        output.push_back(std::move(projected));
        if (!seen.Admit(output.size() - 1)) output.pop_back();
      }
    } else {
      // Plain stream: skip the first `offset` matches without projecting
      // them, stop as soon as `count` rows are emitted.
      size_t count_limit = has_count
                               ? static_cast<size_t>(stmt.limit->count)
                               : std::numeric_limits<size_t>::max();
      // Pooled projection: recycled rows are pulled in bounded chunks (one
      // pool lock per chunk) and assigned in place. The first chunk is
      // capped by what the access path can possibly emit, so a point lookup
      // borrows one row, not a whole chunk.
      constexpr size_t kSpareChunk = 256;
      ArenaVector<ProjectionStep> steps;
      size_t dry_until = 0;  ///< probe the pool again at this output size
      if (pooled) {
        steps = BuildProjectionSteps(stmt, columns);
        size_t bound = count_limit;
        if (plan.pk_cond.has_value() &&
            plan.pk_cond->kind != ColumnCondition::Kind::kRange) {
          bound = std::min(bound, plan.pk_cond->values.size());
        }
        RowStore::Instance().AcquireRows(&spare,
                                         std::min(bound, kSpareChunk));
      }
      size_t skipped = 0;
      for (const Row* row = cursor.Next();
           row != nullptr && output.size() < count_limit;
           row = cursor.Next()) {
        if (stmt.where != nullptr) {
          SPHERE_ASSIGN_OR_RETURN(
              Value ok, EvalExpr(stmt.where.get(), columns, *row, params));
          if (!IsTruthy(ok)) continue;
        }
        if (skipped < offset) {
          ++skipped;
          continue;
        }
        if (pooled) {
          if (spare.empty() && output.size() >= dry_until) {
            if (RowStore::Instance().AcquireRows(&spare, kSpareChunk) == 0) {
              dry_until = output.size() + kSpareChunk;
            }
          }
          Row projected;
          if (!spare.empty()) {
            projected = std::move(spare.back());
            spare.pop_back();
          }
          SPHERE_RETURN_NOT_OK(
              ProjectRowInto(steps, columns, *row, params, &projected));
          output.push_back(std::move(projected));
        } else {
          SPHERE_ASSIGN_OR_RETURN(Row projected,
                                  ProjectRow(stmt, columns, *row, params));
          output.push_back(std::move(projected));
        }
      }
      offset = 0;  // already applied during the scan
    }
  }
  RowStore::Instance().Release(std::move(spare));

  // TopK/DISTINCT paths produced rows [0, offset+count); drop the offset.
  if (offset > 0) {
    if (offset >= output.size()) {
      output.clear();
    } else {
      output.erase(output.begin(), output.begin() + static_cast<long>(offset));
    }
  }
  return std::optional<ExecResult>(ExecResult::Query(
      std::make_unique<VectorResultSet>(std::move(labels), std::move(output))));
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

Result<Executor::SourceRows> Executor::BuildSource(
    const sql::SelectStatement& stmt, const std::vector<Value>& params) {
  if (stmt.from.empty()) {
    // SELECT without FROM: one empty row.
    SourceRows out;
    out.rows.emplace_back();
    return out;
  }
  SPHERE_ASSIGN_OR_RETURN(SourceRows acc,
                          ScanTable(stmt.from[0], stmt.where.get(), params));

  // Comma-joined tables: cross product (WHERE filters later).
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    SPHERE_ASSIGN_OR_RETURN(SourceRows next,
                            ScanTable(stmt.from[i], stmt.where.get(), params));
    SourceRows combined;
    combined.columns = acc.columns;
    for (size_t c = 0; c < next.columns.size(); ++c) {
      combined.columns.Add(next.columns.at(c).first, next.columns.at(c).second);
    }
    combined.rows.reserve(acc.rows.size() * next.rows.size());
    for (const Row& l : acc.rows) {
      for (const Row& r : next.rows) {
        Row joined = l;
        joined.insert(joined.end(), r.begin(), r.end());
        combined.rows.push_back(std::move(joined));
      }
    }
    acc = std::move(combined);
  }

  // Explicit JOIN ... ON clauses.
  for (const auto& join : stmt.joins) {
    SPHERE_ASSIGN_OR_RETURN(SourceRows right,
                            ScanTable(join.table, stmt.where.get(), params));
    SourceRows combined;
    combined.columns = acc.columns;
    for (size_t c = 0; c < right.columns.size(); ++c) {
      combined.columns.Add(right.columns.at(c).first, right.columns.at(c).second);
    }

    // Hash join when ON is a single equality with one side from each input.
    int left_key = -1, right_key = -1;
    if (join.on != nullptr && join.on->kind() == sql::ExprKind::kBinary) {
      const auto* b = static_cast<const sql::BinaryExpr*>(join.on.get());
      if (b->op == sql::BinaryOp::kEq &&
          b->left->kind() == sql::ExprKind::kColumnRef &&
          b->right->kind() == sql::ExprKind::kColumnRef) {
        const auto* lc = static_cast<const sql::ColumnRefExpr*>(b->left.get());
        const auto* rc = static_cast<const sql::ColumnRefExpr*>(b->right.get());
        int l_in_acc = acc.columns.Resolve(lc->table, lc->column);
        int r_in_right = right.columns.Resolve(rc->table, rc->column);
        if (l_in_acc >= 0 && r_in_right >= 0) {
          left_key = l_in_acc;
          right_key = r_in_right;
        } else {
          int r_in_acc = acc.columns.Resolve(rc->table, rc->column);
          int l_in_right = right.columns.Resolve(lc->table, lc->column);
          if (r_in_acc >= 0 && l_in_right >= 0) {
            left_key = r_in_acc;
            right_key = l_in_right;
          }
        }
      }
    }

    bool left_outer = join.type == sql::JoinClause::Type::kLeft;
    if (join.type == sql::JoinClause::Type::kRight) {
      return Status::Unsupported("RIGHT JOIN (rewrite as LEFT JOIN)");
    }

    if (left_key >= 0) {
      std::unordered_multimap<uint64_t, const Row*> hash;
      hash.reserve(right.rows.size());
      for (const Row& r : right.rows) {
        hash.emplace(r[static_cast<size_t>(right_key)].Hash(), &r);
      }
      for (const Row& l : acc.rows) {
        const Value& key = l[static_cast<size_t>(left_key)];
        bool matched = false;
        auto [lo, hi] = hash.equal_range(key.Hash());
        for (auto it = lo; it != hi; ++it) {
          const Row& r = *it->second;
          if (r[static_cast<size_t>(right_key)].Compare(key) != 0) continue;
          Row joined = l;
          joined.insert(joined.end(), r.begin(), r.end());
          combined.rows.push_back(std::move(joined));
          matched = true;
        }
        if (!matched && left_outer) {
          Row joined = l;
          joined.insert(joined.end(), right.columns.size(), Value::Null());
          combined.rows.push_back(std::move(joined));
        }
      }
    } else {
      // Nested-loop join with ON predicate (or cross join).
      for (const Row& l : acc.rows) {
        bool matched = false;
        for (const Row& r : right.rows) {
          Row joined = l;
          joined.insert(joined.end(), r.begin(), r.end());
          if (join.on != nullptr) {
            SPHERE_ASSIGN_OR_RETURN(
                Value ok, EvalExpr(join.on.get(), combined.columns, joined, params));
            if (!IsTruthy(ok)) continue;
          }
          combined.rows.push_back(std::move(joined));
          matched = true;
        }
        if (!matched && left_outer) {
          Row joined = l;
          joined.insert(joined.end(), right.columns.size(), Value::Null());
          combined.rows.push_back(std::move(joined));
        }
      }
    }
    acc = std::move(combined);
  }

  // WHERE filter.
  if (stmt.where != nullptr) {
    std::vector<Row> filtered;
    filtered.reserve(acc.rows.size());
    for (Row& row : acc.rows) {
      SPHERE_ASSIGN_OR_RETURN(
          Value ok, EvalExpr(stmt.where.get(), acc.columns, row, params));
      if (IsTruthy(ok)) filtered.push_back(std::move(row));
    }
    acc.rows = std::move(filtered);
  }
  return acc;
}

Result<ExecResult> Executor::ExecuteSelect(const sql::SelectStatement& stmt,
                                           const std::vector<Value>& params) {
  if (PipelineConfig::streaming_enabled()) {
    SPHERE_ASSIGN_OR_RETURN(std::optional<ExecResult> streamed,
                            TryStreamSelect(stmt, params));
    if (streamed.has_value()) return std::move(*streamed);
  }

  SPHERE_ASSIGN_OR_RETURN(SourceRows src, BuildSource(stmt, params));
  std::vector<std::string> labels = BuildLabels(stmt, src.columns);

  bool aggregated = stmt.HasAggregation() || !stmt.group_by.empty();
  std::vector<Row> output;

  if (aggregated) {
    AggPlan plan;
    for (const auto& item : stmt.items) {
      if (item.expr) plan.Collect(item.expr.get());
    }
    if (stmt.having) plan.Collect(stmt.having.get());

    std::map<Row, Group, RowLess> groups;
    for (const Row& row : src.rows) {
      Row key;
      key.reserve(stmt.group_by.size());
      for (const auto& g : stmt.group_by) {
        SPHERE_ASSIGN_OR_RETURN(Value v, EvalExpr(g.get(), src.columns, row, params));
        key.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(key);
      Group& group = it->second;
      if (inserted) {
        group.key = key;
        group.first_row = row;
        group.aggs.resize(plan.exprs.size());
        for (size_t i = 0; i < plan.exprs.size(); ++i) {
          SPHERE_ASSIGN_OR_RETURN(group.aggs[i].type, AggTypeOf(plan.exprs[i]->name));
          group.aggs[i].distinct = plan.exprs[i]->distinct;
        }
      }
      for (size_t i = 0; i < plan.exprs.size(); ++i) {
        const auto* f = plan.exprs[i];
        if (f->star) {
          group.aggs[i].Accumulate(Value(int64_t{1}));
        } else if (!f->args.empty()) {
          SPHERE_ASSIGN_OR_RETURN(
              Value v, EvalExpr(f->args[0].get(), src.columns, row, params));
          group.aggs[i].Accumulate(v);
        }
      }
    }
    // Global aggregate over empty input still yields one row.
    if (groups.empty() && stmt.group_by.empty()) {
      Group g;
      g.first_row.assign(src.columns.size(), Value::Null());
      g.aggs.resize(plan.exprs.size());
      for (size_t i = 0; i < plan.exprs.size(); ++i) {
        SPHERE_ASSIGN_OR_RETURN(g.aggs[i].type, AggTypeOf(plan.exprs[i]->name));
        g.aggs[i].distinct = plan.exprs[i]->distinct;
      }
      groups.emplace(Row{}, std::move(g));
    }

    for (auto& [key, group] : groups) {
      if (stmt.having) {
        SPHERE_ASSIGN_OR_RETURN(
            Value ok, EvalOverGroup(stmt.having.get(), plan, group, src.columns, params));
        if (!IsTruthy(ok)) continue;
      }
      Row out_row;
      out_row.reserve(stmt.items.size());
      for (const auto& item : stmt.items) {
        if (item.is_star) {
          return Status::InvalidArgument("SELECT * cannot be aggregated");
        }
        SPHERE_ASSIGN_OR_RETURN(
            Value v, EvalOverGroup(item.expr.get(), plan, group, src.columns, params));
        out_row.push_back(std::move(v));
      }
      output.push_back(std::move(out_row));
    }
  } else {
    // Pre-projection ORDER BY when every key resolves in the source.
    bool sort_pre_projection = !stmt.order_by.empty();
    for (const auto& ob : stmt.order_by) {
      if (ob.expr->kind() == sql::ExprKind::kColumnRef) {
        const auto* c = static_cast<const sql::ColumnRefExpr*>(ob.expr.get());
        if (src.columns.Resolve(c->table, c->column) < 0) {
          sort_pre_projection = false;
        }
      }
    }
    if (sort_pre_projection) {
      // Decorate-sort: evaluate keys once per row.
      std::vector<std::pair<Row, Row>> keyed;  // (keys, row)
      keyed.reserve(src.rows.size());
      for (Row& row : src.rows) {
        Row keys;
        keys.reserve(stmt.order_by.size());
        for (const auto& ob : stmt.order_by) {
          SPHERE_ASSIGN_OR_RETURN(Value v,
                                  EvalExpr(ob.expr.get(), src.columns, row, params));
          keys.push_back(std::move(v));
        }
        keyed.emplace_back(std::move(keys), std::move(row));
      }
      // Rows beyond the pushed-down `offset+count` window can never appear in
      // the output (DISTINCT dedups only after this sort, so it blocks the
      // truncation), so a bounded top-k replaces the full stable sort.
      size_t keep = keyed.size();
      if (stmt.limit.has_value() && stmt.limit->count >= 0 && !stmt.distinct) {
        size_t off = static_cast<size_t>(std::max<int64_t>(0, stmt.limit->offset));
        keep = std::min(keep, off + static_cast<size_t>(stmt.limit->count));
      }
      TopKStable(&keyed, keep, KeyedRowLess{&stmt.order_by});
      src.rows.clear();
      for (auto& [k, row] : keyed) src.rows.push_back(std::move(row));
    }

    output.reserve(src.rows.size());
    for (const Row& row : src.rows) {
      SPHERE_ASSIGN_OR_RETURN(Row out_row,
                              ProjectRow(stmt, src.columns, row, params));
      output.push_back(std::move(out_row));
    }
  }

  // DISTINCT.
  if (stmt.distinct) {
    DedupRowsInPlace(&output);
  }

  // Post-projection ORDER BY (aggregated queries, or aliases of computed
  // items): resolve keys against output labels.
  bool need_post_sort = !stmt.order_by.empty() && aggregated;
  if (!stmt.order_by.empty() && !aggregated) {
    // Already sorted pre-projection unless some key failed to resolve there.
    for (const auto& ob : stmt.order_by) {
      if (ob.expr->kind() == sql::ExprKind::kColumnRef) {
        const auto* c = static_cast<const sql::ColumnRefExpr*>(ob.expr.get());
        if (src.columns.Resolve(c->table, c->column) < 0) need_post_sort = true;
      }
    }
  }
  if (need_post_sort) {
    std::vector<int> key_idx;
    const sql::Dialect& d = sql::Dialect::MySQL();
    for (const auto& ob : stmt.order_by) {
      std::string key_label;
      if (ob.expr->kind() == sql::ExprKind::kColumnRef) {
        key_label = static_cast<const sql::ColumnRefExpr*>(ob.expr.get())->column;
      } else {
        key_label = ob.expr->ToSQL(d);
      }
      int idx = -1;
      for (size_t i = 0; i < labels.size(); ++i) {
        if (EqualsIgnoreCase(labels[i], key_label)) {
          idx = static_cast<int>(i);
          break;
        }
      }
      // Fall back to matching the serialized select expressions.
      if (idx < 0) {
        for (size_t i = 0; i < stmt.items.size(); ++i) {
          if (stmt.items[i].expr != nullptr &&
              stmt.items[i].expr->ToSQL(d) == ob.expr->ToSQL(d)) {
            idx = static_cast<int>(i);
            break;
          }
        }
      }
      if (idx < 0) {
        return Status::InvalidArgument("ORDER BY key not in select list: " +
                                       key_label);
      }
      key_idx.push_back(idx);
    }
    // DISTINCT already ran, so rows past `offset+count` cannot surface —
    // bound the sort to the limit window.
    size_t keep = output.size();
    if (stmt.limit.has_value() && stmt.limit->count >= 0) {
      size_t off = static_cast<size_t>(std::max<int64_t>(0, stmt.limit->offset));
      keep = std::min(keep, off + static_cast<size_t>(stmt.limit->count));
    }
    TopKStable(&output, keep, [&](const Row& a, const Row& b) {
      for (size_t i = 0; i < key_idx.size(); ++i) {
        int c = a[static_cast<size_t>(key_idx[i])].Compare(
            b[static_cast<size_t>(key_idx[i])]);
        if (c != 0) return stmt.order_by[i].desc ? c > 0 : c < 0;
      }
      return false;
    });
  }

  // LIMIT / OFFSET.
  if (stmt.limit.has_value()) {
    size_t off = static_cast<size_t>(std::max<int64_t>(0, stmt.limit->offset));
    if (off >= output.size()) {
      output.clear();
    } else {
      output.erase(output.begin(), output.begin() + static_cast<long>(off));
      if (stmt.limit->count >= 0 &&
          output.size() > static_cast<size_t>(stmt.limit->count)) {
        output.resize(static_cast<size_t>(stmt.limit->count));
      }
    }
  }

  return ExecResult::Query(
      std::make_unique<VectorResultSet>(std::move(labels), std::move(output)));
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

Result<ExecResult> Executor::ExecuteInsert(const sql::InsertStatement& stmt,
                                           const std::vector<Value>& params,
                                           storage::Transaction* txn) {
  storage::Table* table = db_->FindTable(stmt.table.name);
  if (table == nullptr) return Status::NotFound("table " + stmt.table.name);
  const Schema& schema = table->schema();
  BoundColumns no_cols;
  Row empty;

  // Map statement columns to schema positions.
  std::vector<int> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.size(); ++i) positions.push_back(static_cast<int>(i));
  } else {
    for (const auto& c : stmt.columns) {
      int idx = schema.IndexOf(c);
      if (idx < 0) return Status::NotFound("column " + c + " in " + stmt.table.name);
      positions.push_back(idx);
    }
  }

  // Evaluate every VALUES row before taking the writer latch: the
  // expressions reference no table state, so concurrent readers keep running
  // while the rows are built, and arity/evaluation errors surface before any
  // mutation happens.
  std::vector<Row> rows;
  rows.reserve(stmt.rows.size());
  for (const auto& value_row : stmt.rows) {
    if (value_row.size() != positions.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    Row row(schema.size(), Value::Null());
    for (size_t i = 0; i < positions.size(); ++i) {
      SPHERE_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(value_row[i].get(), no_cols, empty, params));
      row[static_cast<size_t>(positions[i])] = std::move(v);
    }
    rows.push_back(std::move(row));
  }

  int64_t inserted = 0;
  Value last_pk;
  std::vector<Value> applied;  ///< inserted PKs, for statement-level rollback
  applied.reserve(rows.size());
  WriterLock lk(table->latch());
  for (const Row& row : rows) {
    Value pk;
    Status st = table->Insert(row, &pk);
    if (!st.ok()) {
      // Statement atomicity: a mid-loop failure (PK conflict, validation)
      // must not leave the earlier rows of a multi-row INSERT behind — in
      // auto-commit there is no transaction to roll them back.
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        Row discarded;
        (void)table->Delete(*it, &discarded);
      }
      return st;
    }
    applied.push_back(std::move(pk));
    last_pk = applied.back();
    ++inserted;
  }
  if (txn != nullptr) {
    // Undo records only once the whole statement succeeded: the statement-
    // level rollback above must not leave stale insert-undos behind.
    for (const Value& pk : applied) {
      txn->AddUndo({storage::UndoRecord::Op::kInsert, table->name(), pk, {}});
    }
  }
  return ExecResult::Update(inserted, last_pk.is_int() ? last_pk.AsInt() : 0);
}

Result<ExecResult> Executor::ExecuteUpdate(const sql::UpdateStatement& stmt,
                                           const std::vector<Value>& params,
                                           storage::Transaction* txn) {
  storage::Table* table = db_->FindTable(stmt.table.name);
  if (table == nullptr) return Status::NotFound("table " + stmt.table.name);
  int pk = table->pk_index();
  if (pk < 0) return Status::Unsupported("UPDATE on table without primary key");

  std::vector<int> target_cols;
  for (const auto& a : stmt.assignments) {
    int ci = table->schema().IndexOf(a.column);
    if (ci < 0) return Status::NotFound("column " + a.column);
    target_cols.push_back(ci);
  }

  // Index-backed point path (DESIGN.md §10): when the WHERE pins the primary
  // key or a secondary-indexed column, find, filter and mutate under one
  // writer section — O(matches · log n) instead of a full reader-lock
  // snapshot followed by a per-row re-lookup.
  if (PipelineConfig::point_dml_enabled()) {
    SPHERE_ASSIGN_OR_RETURN(ScanPlan plan,
                            PlanScan(stmt.table, stmt.where.get(), params));
    if (plan.pk_cond.has_value() || plan.idx_cond.has_value()) {
      BoundColumns columns;
      const std::string& qual = stmt.table.EffectiveName();
      for (const auto& col : table->schema().columns()) {
        columns.Add(qual, col.name);
      }
      std::vector<std::pair<Value, Row>> pending;  // pk -> new image
      std::vector<Row> old_images;
      WriterLock lk(table->latch());
      {
        TableScanCursor cursor(plan);
        for (const Row* row = cursor.Next(); row != nullptr;
             row = cursor.Next()) {
          if (stmt.where != nullptr) {
            SPHERE_ASSIGN_OR_RETURN(
                Value ok, EvalExpr(stmt.where.get(), columns, *row, params));
            if (!IsTruthy(ok)) continue;
          }
          Row new_row = *row;
          for (size_t i = 0; i < stmt.assignments.size(); ++i) {
            SPHERE_ASSIGN_OR_RETURN(
                Value v, EvalExpr(stmt.assignments[i].value.get(), columns,
                                  *row, params));
            new_row[static_cast<size_t>(target_cols[i])] = std::move(v);
          }
          pending.emplace_back((*row)[static_cast<size_t>(pk)],
                               std::move(new_row));
          if (txn != nullptr) old_images.push_back(*row);
        }
      }
      // Apply after the scan: Update rewrites secondary-index postings the
      // cursor may still be iterating.
      for (size_t i = 0; i < pending.size(); ++i) {
        SPHERE_RETURN_NOT_OK(table->Update(pending[i].first, pending[i].second));
        if (txn != nullptr) {
          txn->AddUndo({storage::UndoRecord::Op::kUpdate, table->name(),
                        pending[i].first, std::move(old_images[i])});
        }
      }
      return ExecResult::Update(static_cast<int64_t>(pending.size()));
    }
  }

  SPHERE_ASSIGN_OR_RETURN(SourceRows src,
                          ScanTable(stmt.table, stmt.where.get(), params));

  int64_t updated = 0;
  WriterLock lk(table->latch());
  for (const Row& row : src.rows) {
    if (stmt.where != nullptr) {
      SPHERE_ASSIGN_OR_RETURN(Value ok,
                              EvalExpr(stmt.where.get(), src.columns, row, params));
      if (!IsTruthy(ok)) continue;
    }
    // Re-fetch the current image: the scan snapshot may be stale.
    const Value& key = row[static_cast<size_t>(pk)];
    const Row* current = table->Find(key);
    if (current == nullptr) continue;
    Row new_row = *current;
    for (size_t i = 0; i < stmt.assignments.size(); ++i) {
      SPHERE_ASSIGN_OR_RETURN(
          Value v, EvalExpr(stmt.assignments[i].value.get(), src.columns, *current, params));
      new_row[static_cast<size_t>(target_cols[i])] = std::move(v);
    }
    Row old_row = *current;
    SPHERE_RETURN_NOT_OK(table->Update(key, new_row));
    ++updated;
    if (txn != nullptr) {
      txn->AddUndo({storage::UndoRecord::Op::kUpdate, table->name(), key,
                    std::move(old_row)});
    }
  }
  return ExecResult::Update(updated);
}

Result<ExecResult> Executor::ExecuteDelete(const sql::DeleteStatement& stmt,
                                           const std::vector<Value>& params,
                                           storage::Transaction* txn) {
  storage::Table* table = db_->FindTable(stmt.table.name);
  if (table == nullptr) return Status::NotFound("table " + stmt.table.name);
  int pk = table->pk_index();
  if (pk < 0) return Status::Unsupported("DELETE on table without primary key");

  // Index-backed point path, mirroring ExecuteUpdate: collect the matching
  // keys through the access-path cursor, then delete — all under one writer
  // section (Delete restructures the leaf chain the cursor walks, so the
  // two phases cannot interleave).
  if (PipelineConfig::point_dml_enabled()) {
    SPHERE_ASSIGN_OR_RETURN(ScanPlan plan,
                            PlanScan(stmt.table, stmt.where.get(), params));
    if (plan.pk_cond.has_value() || plan.idx_cond.has_value()) {
      BoundColumns columns;
      const std::string& qual = stmt.table.EffectiveName();
      for (const auto& col : table->schema().columns()) {
        columns.Add(qual, col.name);
      }
      std::vector<Value> keys;
      WriterLock lk(table->latch());
      {
        TableScanCursor cursor(plan);
        for (const Row* row = cursor.Next(); row != nullptr;
             row = cursor.Next()) {
          if (stmt.where != nullptr) {
            SPHERE_ASSIGN_OR_RETURN(
                Value ok, EvalExpr(stmt.where.get(), columns, *row, params));
            if (!IsTruthy(ok)) continue;
          }
          keys.push_back((*row)[static_cast<size_t>(pk)]);
        }
      }
      int64_t removed = 0;
      for (const Value& key : keys) {
        Row old_row;
        Status st = table->Delete(key, &old_row);
        if (!st.ok()) continue;  // already gone
        ++removed;
        if (txn != nullptr) {
          txn->AddUndo({storage::UndoRecord::Op::kDelete, table->name(), key,
                        std::move(old_row)});
        }
      }
      return ExecResult::Update(removed);
    }
  }

  SPHERE_ASSIGN_OR_RETURN(SourceRows src,
                          ScanTable(stmt.table, stmt.where.get(), params));

  int64_t deleted = 0;
  WriterLock lk(table->latch());
  for (const Row& row : src.rows) {
    if (stmt.where != nullptr) {
      SPHERE_ASSIGN_OR_RETURN(Value ok,
                              EvalExpr(stmt.where.get(), src.columns, row, params));
      if (!IsTruthy(ok)) continue;
    }
    Row old_row;
    Status st = table->Delete(row[static_cast<size_t>(pk)], &old_row);
    if (!st.ok()) continue;  // already gone
    ++deleted;
    if (txn != nullptr) {
      txn->AddUndo({storage::UndoRecord::Op::kDelete, table->name(),
                    row[static_cast<size_t>(pk)], std::move(old_row)});
    }
  }
  return ExecResult::Update(deleted);
}

// ---------------------------------------------------------------------------
// DDL + dispatch
// ---------------------------------------------------------------------------

Result<ExecResult> Executor::ExecuteDDL(const sql::Statement& stmt) {
  switch (stmt.kind()) {
    case sql::StatementKind::kCreateTable: {
      const auto& s = static_cast<const sql::CreateTableStatement&>(stmt);
      Schema schema;
      for (const auto& c : s.columns) {
        schema.AddColumn(Column(c.name, c.type, c.primary_key, c.not_null));
      }
      SPHERE_RETURN_NOT_OK(db_->CreateTable(s.table, std::move(schema),
                                            s.if_not_exists));
      return ExecResult::Update(0);
    }
    case sql::StatementKind::kDropTable: {
      const auto& s = static_cast<const sql::DropTableStatement&>(stmt);
      SPHERE_RETURN_NOT_OK(db_->DropTable(s.table, s.if_exists));
      return ExecResult::Update(0);
    }
    case sql::StatementKind::kTruncate: {
      const auto& s = static_cast<const sql::TruncateStatement&>(stmt);
      storage::Table* table = db_->FindTable(s.table);
      if (table == nullptr) return Status::NotFound("table " + s.table);
      WriterLock lk(table->latch());
      table->Truncate();
      return ExecResult::Update(0);
    }
    case sql::StatementKind::kCreateIndex: {
      const auto& s = static_cast<const sql::CreateIndexStatement&>(stmt);
      storage::Table* table = db_->FindTable(s.table);
      if (table == nullptr) return Status::NotFound("table " + s.table);
      if (s.columns.size() != 1) {
        return Status::Unsupported("multi-column indexes");
      }
      WriterLock lk(table->latch());
      SPHERE_RETURN_NOT_OK(table->CreateIndex(s.index_name, s.columns[0]));
      return ExecResult::Update(0);
    }
    default:
      return Status::Unsupported("statement kind");
  }
}

Result<ExecResult> Executor::Execute(const sql::Statement& stmt,
                                     const std::vector<Value>& params,
                                     storage::Transaction* txn) {
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(static_cast<const sql::SelectStatement&>(stmt), params);
    case sql::StatementKind::kInsert:
      return ExecuteInsert(static_cast<const sql::InsertStatement&>(stmt), params, txn);
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const sql::UpdateStatement&>(stmt), params, txn);
    case sql::StatementKind::kDelete:
      return ExecuteDelete(static_cast<const sql::DeleteStatement&>(stmt), params, txn);
    case sql::StatementKind::kCreateTable:
    case sql::StatementKind::kDropTable:
    case sql::StatementKind::kTruncate:
    case sql::StatementKind::kCreateIndex:
      return ExecuteDDL(stmt);
    case sql::StatementKind::kSet:
    case sql::StatementKind::kShow:
    case sql::StatementKind::kUse:
      return ExecResult::Update(0);
    default:
      return Status::Unsupported("statement must run through a session");
  }
}

}  // namespace sphere::engine
