#include "engine/row_batch.h"

#include <algorithm>

#include "common/metrics.h"
#include "engine/pipeline.h"

namespace sphere::engine {

RowStore& RowStore::Instance() {
  static RowStore store;
  // Pool occupancy probes, published once (DESIGN.md §13).
  static bool published = [] {
    auto& registry = metrics::Registry::Instance();
    registry.PublishProbe("row_store.pooled_rows", &store, [] {
      return static_cast<int64_t>(Instance().pooled_rows());
    });
    registry.PublishProbe("row_store.pooled_shells", &store, [] {
      return static_cast<int64_t>(Instance().pooled_shells());
    });
    return true;
  }();
  (void)published;
  return store;
}

std::vector<Row> RowStore::AcquireShell() {
  if (PipelineConfig::pooled_batches_enabled()) {
    MutexLock lk(mu_);
    if (!shells_.empty()) {
      std::vector<Row> shell = std::move(shells_.back());
      shells_.pop_back();
      return shell;
    }
  }
  return {};
}

size_t RowStore::AcquireRows(std::vector<Row>* out, size_t max) {
  if (max == 0 || !PipelineConfig::pooled_batches_enabled()) return 0;
  MutexLock lk(mu_);
  size_t n = std::min(max, rows_.size());
  if (n == 0) return 0;
  out->insert(out->end(), std::make_move_iterator(rows_.end() - n),
              std::make_move_iterator(rows_.end()));
  rows_.resize(rows_.size() - n);
  return n;
}

void RowStore::Release(std::vector<Row>&& batch) {
  if (!PipelineConfig::pooled_batches_enabled()) {
    batch.clear();
    batch.shrink_to_fit();
    return;
  }
  MutexLock lk(mu_);
  for (Row& row : batch) {
    if (rows_.size() >= kMaxRows) break;
    // Husks (rows whose storage was moved elsewhere) carry no reusable
    // capacity; recycling them would just hand out empty rows.
    if (row.capacity() == 0) continue;
    rows_.push_back(std::move(row));
  }
  if (shells_.size() < kMaxShells && batch.capacity() > 0) {
    batch.clear();
    shells_.push_back(std::move(batch));
  }
}

std::vector<std::string> RowStore::AcquireLabelShell() {
  if (PipelineConfig::pooled_batches_enabled()) {
    MutexLock lk(mu_);
    if (!label_shells_.empty()) {
      std::vector<std::string> shell = std::move(label_shells_.back());
      label_shells_.pop_back();
      return shell;
    }
  }
  return {};
}

void RowStore::ReleaseLabels(std::vector<std::string>&& labels) {
  if (!PipelineConfig::pooled_batches_enabled() || labels.capacity() == 0) {
    return;
  }
  labels.clear();
  MutexLock lk(mu_);
  if (label_shells_.size() < kMaxShells) {
    label_shells_.push_back(std::move(labels));
  }
}

void* RowStore::AcquireBlock(size_t size) {
  if (PipelineConfig::pooled_batches_enabled()) {
    MutexLock lk(mu_);
    if (!blocks_.empty() && block_size_ == size) {
      void* p = blocks_.back();
      blocks_.pop_back();
      return p;
    }
  }
  return ::operator new(size);
}

bool RowStore::ReleaseBlock(void* p, size_t size) {
  if (!PipelineConfig::pooled_batches_enabled()) return false;
  MutexLock lk(mu_);
  if (block_size_ != size) {
    // First release (or a size change, e.g. a new subclass) repoints the
    // pool; stale blocks of the old size are freed by the caller's fallback.
    if (!blocks_.empty()) return false;
    block_size_ = size;
  }
  if (blocks_.size() >= kMaxBlocks) return false;
  blocks_.push_back(p);
  return true;
}

size_t RowStore::pooled_rows() const {
  MutexLock lk(mu_);
  return rows_.size();
}

size_t RowStore::pooled_shells() const {
  MutexLock lk(mu_);
  return shells_.size();
}

void RowStore::Clear() {
  MutexLock lk(mu_);
  ClearLocked();
}

void RowStore::ClearLocked() {
  shells_.clear();
  rows_.clear();
  label_shells_.clear();
  for (void* p : blocks_) ::operator delete(p);
  blocks_.clear();
  block_size_ = 0;
}

RowStore::~RowStore() SPHERE_NO_THREAD_SAFETY_ANALYSIS { ClearLocked(); }

RowBatch::RowBatch(size_t spare_hint)
    : out_(RowStore::Instance().AcquireShell()) {
  RowStore::Instance().AcquireRows(&spare_, spare_hint);
}

RowBatch::~RowBatch() {
  RowStore::Instance().Release(std::move(spare_));
  // Whatever is still in out_ was never taken by the producer (early error
  // path); its rows are reusable as-is.
  RowStore::Instance().Release(std::move(out_));
}

}  // namespace sphere::engine
