#ifndef SPHERE_ENGINE_SCAN_CURSOR_H_
#define SPHERE_ENGINE_SCAN_CURSOR_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "sql/condition.h"
#include "storage/table.h"

namespace sphere::engine {

/// The access path the executor picked for one table scan: at most one
/// primary-key condition (point set or range) or one secondary-index
/// equality. Neither present means a full scan in primary-key order. The
/// conditions are owned by value so a plan outlives the WHERE analysis that
/// produced it.
struct ScanPlan {
  storage::Table* table = nullptr;
  std::optional<sql::ColumnCondition> pk_cond;   ///< wins over idx_cond
  std::optional<sql::ColumnCondition> idx_cond;  ///< equality on an index

  /// True when the cursor yields rows in ascending primary-key order (full
  /// scans and PK range scans follow the B+Tree leaf chain; point-set and
  /// secondary-index lookups follow the literal/posting order instead).
  bool pk_ordered() const {
    if (pk_cond.has_value()) {
      return pk_cond->kind == sql::ColumnCondition::Kind::kRange;
    }
    return !idx_cond.has_value();
  }
};

/// Lazy cursor over one table's rows in access-path order. Yields borrowed
/// `const Row*` pointers straight out of the B+Tree leaves — no copy, no
/// intermediate materialization; the consumer filters and projects each row
/// exactly once into its output batch.
///
/// Lifetime contract: the caller holds the table's reader latch for the whole
/// life of the cursor (the executor constructs and drains it inside one
/// ReaderLock section), so borrowed rows stay stable and the leaf chain
/// cannot split underneath the iterator. The plan must outlive the cursor.
class TableScanCursor {
 public:
  explicit TableScanCursor(const ScanPlan& plan) : plan_(&plan) {
    const storage::Table* table = plan_->table;
    if (plan_->pk_cond.has_value() &&
        plan_->pk_cond->kind == sql::ColumnCondition::Kind::kRange) {
      it_ = plan_->pk_cond->low.has_value()
                ? table->LowerBound(*plan_->pk_cond->low)
                : table->Begin();
      mode_ = Mode::kPkRange;
    } else if (plan_->pk_cond.has_value()) {
      mode_ = Mode::kPkPoints;
    } else if (plan_->idx_cond.has_value()) {
      mode_ = Mode::kIndexLookup;
    } else {
      it_ = table->Begin();
      mode_ = Mode::kFullScan;
    }
  }

  /// Advances to the next stored row; nullptr at end. The pointer is valid
  /// while the table latch is held and no write intervenes.
  const Row* Next() {
    switch (mode_) {
      case Mode::kFullScan: {
        if (!it_.Valid()) return nullptr;
        const Row* row = &it_.payload();
        it_.Next();
        return row;
      }
      case Mode::kPkRange:
        return NextInRange();
      case Mode::kPkPoints:
        return NextPoint();
      case Mode::kIndexLookup:
        return NextIndexed();
    }
    return nullptr;
  }

 private:
  enum class Mode { kFullScan, kPkRange, kPkPoints, kIndexLookup };

  const Row* NextInRange() {
    const sql::ColumnCondition& cond = *plan_->pk_cond;
    for (; it_.Valid(); it_.Next()) {
      if (cond.low.has_value() && !cond.low_inclusive &&
          it_.key().Compare(*cond.low) == 0) {
        continue;
      }
      if (cond.high.has_value()) {
        int c = it_.key().Compare(*cond.high);
        if (c > 0 || (c == 0 && !cond.high_inclusive)) return nullptr;
      }
      const Row* row = &it_.payload();
      it_.Next();
      return row;
    }
    return nullptr;
  }

  const Row* NextPoint() {
    const sql::ColumnCondition& cond = *plan_->pk_cond;
    const storage::Table* table = plan_->table;
    ColumnType pk_type =
        table->schema().column(static_cast<size_t>(table->pk_index())).type;
    while (value_pos_ < cond.values.size()) {
      const Row* row = table->Find(cond.values[value_pos_++].CastTo(pk_type));
      if (row != nullptr) return row;
    }
    return nullptr;
  }

  const Row* NextIndexed() {
    const sql::ColumnCondition& cond = *plan_->idx_cond;
    const storage::Table* table = plan_->table;
    for (;;) {
      if (posting_ != nullptr && posting_pos_ < posting_->size()) {
        const Row* row = table->Find((*posting_)[posting_pos_++]);
        if (row != nullptr) return row;
        continue;
      }
      if (value_pos_ >= cond.values.size()) return nullptr;
      int ci = table->schema().IndexOf(cond.column);
      const storage::SecondaryIndex* index = table->FindIndexOn(ci);
      posting_ = index->Lookup(cond.values[value_pos_++].CastTo(
          table->schema().column(static_cast<size_t>(ci)).type));
      posting_pos_ = 0;
    }
  }

  const ScanPlan* plan_;
  Mode mode_ = Mode::kFullScan;
  storage::BPlusTree<Row>::Iterator it_;
  size_t value_pos_ = 0;  ///< kPkPoints / kIndexLookup value cursor
  const std::vector<Value>* posting_ = nullptr;  ///< current posting list
  size_t posting_pos_ = 0;
};

}  // namespace sphere::engine

#endif  // SPHERE_ENGINE_SCAN_CURSOR_H_
