#include "engine/result_set.h"

namespace sphere::engine {

std::vector<Row> DrainResultSet(ResultSet* rs) {
  std::vector<Row> rows;
  Row row;
  while (rs->Next(&row)) rows.push_back(row);
  return rows;
}

}  // namespace sphere::engine
