#include "engine/result_set.h"

#include "engine/pipeline.h"

namespace sphere::engine {

size_t ResultSet::NextBatch(std::vector<Row>* out, size_t max) {
  size_t n = 0;
  Row row;
  while (n < max && Next(&row)) {
    out->push_back(std::move(row));
    ++n;
  }
  return n;
}

std::vector<Row> DrainResultSet(ResultSet* rs) {
  std::vector<Row> rows;
  const size_t batch = PipelineConfig::batch_size();
  while (rs->NextBatch(&rows, batch) > 0) {
  }
  return rows;
}

}  // namespace sphere::engine
