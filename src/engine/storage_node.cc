#include "engine/storage_node.h"

#include "common/arena.h"
#include "common/clock.h"
#include "engine/pipeline.h"
#include "sql/parser.h"

namespace sphere::engine {

StorageNode::StorageNode(std::string name, sql::DialectType dialect)
    : name_(std::move(name)), dialect_(sql::Dialect::Get(dialect)),
      db_(name_), txn_manager_(&db_) {
  // Per-node liveness of these names follows the node: probes read the
  // instance-owned striped counters, and the destructor retracts exactly
  // this node's entries (same-named nodes in tests overwrite, last wins).
  auto& registry = metrics::Registry::Instance();
  registry.PublishProbe("node." + name_ + ".statements", this,
                        [this] { return statements_executed_.value(); });
  registry.PublishProbe("node." + name_ + ".parse_cache.hits", this,
                        [this] { return parse_cache_hits_.value(); });
  registry.PublishProbe("node." + name_ + ".parse_cache.misses", this,
                        [this] { return parse_cache_misses_.value(); });
}

StorageNode::~StorageNode() {
  metrics::Registry::Instance().UnpublishProbes(this);
}

StorageNode::Session::~Session() {
  if (txn_ != nullptr) {
    (void)node_->txn_manager_.Rollback(txn_);
    txn_ = nullptr;
  }
}

Result<std::shared_ptr<const sql::Statement>> StorageNode::ParseCached(
    std::string_view sql_text) {
  {
    MutexLock lk(stmt_cache_mu_);
    auto it = stmt_cache_.find(sql_text);
    if (it != stmt_cache_.end()) {
      parse_cache_hits_.Increment();
      return it->second;
    }
  }
  parse_cache_misses_.Increment();
  // The cached AST outlives every statement, so it must be heap-built even
  // when the serving thread is inside a statement arena scope.
  ArenaSuspend heap_scope;
  sql::Parser parser(dialect_);
  SPHERE_ASSIGN_OR_RETURN(sql::StatementPtr stmt, parser.Parse(sql_text));
  std::shared_ptr<const sql::Statement> shared(std::move(stmt));
  MutexLock lk(stmt_cache_mu_);
  if (stmt_cache_.size() >= 4096) stmt_cache_.clear();  // crude eviction
  stmt_cache_.emplace(std::string(sql_text), shared);
  return shared;
}

Result<ExecResult> StorageNode::Session::Execute(
    std::string_view sql_text, const std::vector<Value>& params) {
  SPHERE_ASSIGN_OR_RETURN(std::shared_ptr<const sql::Statement> stmt,
                          node_->ParseCached(sql_text));
  return ExecuteStatement(*stmt, params);
}

Result<ExecResult> StorageNode::Session::ExecuteStatement(
    const sql::Statement& stmt, const std::vector<Value>& params) {
  // Node-side statement scope: executor scratch (condition groups, sort
  // keys, temporary expression nodes) bump-allocates. No-ops when the
  // middleware's scope is already active on this thread (inline execution);
  // on pool threads this is the owning scope. The returned result set uses
  // plain heap containers, so it safely outlives the scope.
  ArenaScope arena_scope(PipelineConfig::arena_statements_enabled());
  node_->statements_executed_.Increment();
  int64_t delay = node_->statement_delay_us_.load(std::memory_order_relaxed);
  if (delay > 0) {
    // Occupy an IO slot for the duration of the simulated storage access.
    bool limited;
    {
      MutexLock lk(node_->io_mu_);
      limited = node_->io_slots_ > 0;
      if (limited) {
        node_->io_cv_.Wait(node_->io_mu_, [&]() SPHERE_REQUIRES(node_->io_mu_) {
          // Re-read io_slots_: set_io_concurrency(0) (unlimited) while we
          // wait must release us instead of leaving the predicate false.
          return node_->io_slots_ <= 0 ||
                 node_->io_in_use_ < node_->io_slots_;
        });
        ++node_->io_in_use_;
      }
    }
    SleepMicros(delay);
    if (limited) {
      {
        MutexLock lk(node_->io_mu_);
        --node_->io_in_use_;
      }
      node_->io_cv_.NotifyOne();
    }
  }
  switch (stmt.kind()) {
    case sql::StatementKind::kBegin:
      SPHERE_RETURN_NOT_OK(Begin());
      return ExecResult::Update(0);
    case sql::StatementKind::kCommit:
      SPHERE_RETURN_NOT_OK(Commit());
      return ExecResult::Update(0);
    case sql::StatementKind::kRollback:
      SPHERE_RETURN_NOT_OK(Rollback());
      return ExecResult::Update(0);
    default: {
      Executor executor(&node_->db_, &node_->txn_manager_);
      return executor.Execute(stmt, params, txn_);
    }
  }
}

Status StorageNode::Session::Begin(const std::string& xid) {
  if (txn_ != nullptr) {
    // Implicit commit of the previous transaction (MySQL behaviour).
    SPHERE_RETURN_NOT_OK(Commit());
  }
  txn_ = node_->txn_manager_.Begin(xid);
  return Status::OK();
}

Status StorageNode::Session::Commit() {
  if (txn_ == nullptr) return Status::OK();  // no-op outside a transaction
  if (node_->fail_next_commit_.exchange(false)) {
    storage::Transaction* t = txn_;
    txn_ = nullptr;
    (void)node_->txn_manager_.Rollback(t);
    return Status::Unavailable("injected commit failure on " + node_->name_);
  }
  Status st = node_->txn_manager_.Commit(txn_);
  txn_ = nullptr;
  return st;
}

Status StorageNode::Session::Rollback() {
  if (txn_ == nullptr) return Status::OK();
  Status st = node_->txn_manager_.Rollback(txn_);
  txn_ = nullptr;
  return st;
}

Status StorageNode::Session::Prepare() {
  if (txn_ == nullptr) {
    return Status::TransactionError("prepare without open transaction");
  }
  if (node_->fail_next_prepare_.exchange(false)) {
    // Vote NO: the RM rolls back its branch (paper Fig. 5(c), phase 1).
    storage::Transaction* t = txn_;
    txn_ = nullptr;
    (void)node_->txn_manager_.Rollback(t);
    return Status::TransactionError("injected prepare failure on " + node_->name_);
  }
  Status st = node_->txn_manager_.Prepare(txn_);
  if (st.ok()) txn_ = nullptr;  // ownership moves to the prepared set
  return st;
}

void StorageNode::set_io_concurrency(int slots) {
  {
    MutexLock lk(io_mu_);
    io_slots_ = slots;
  }
  io_cv_.NotifyAll();
}

Status StorageNode::CommitPrepared(const std::string& xid) {
  return txn_manager_.CommitPrepared(xid);
}

Status StorageNode::RollbackPrepared(const std::string& xid) {
  return txn_manager_.RollbackPrepared(xid);
}

}  // namespace sphere::engine
