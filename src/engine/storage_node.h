#ifndef SPHERE_ENGINE_STORAGE_NODE_H_
#define SPHERE_ENGINE_STORAGE_NODE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/strings.h"
#include "engine/executor.h"
#include "engine/result_set.h"
#include "sql/dialect.h"
#include "storage/database.h"
#include "storage/txn.h"

namespace sphere::engine {

/// One underlying "database server" (the paper's data source): catalog +
/// transaction manager + SQL executor, addressed by name. Stands in for a
/// MySQL/PostgreSQL instance; the middleware talks to it through sessions
/// (its connections) and, remotely, through the net module's channels.
class StorageNode {
 public:
  explicit StorageNode(std::string name,
                       sql::DialectType dialect = sql::DialectType::kMySQL);
  ~StorageNode();

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  const std::string& name() const { return name_; }
  const sql::Dialect& dialect() const { return dialect_; }
  storage::Database* database() { return &db_; }
  storage::TransactionManager* txn_manager() { return &txn_manager_; }

  /// A connection to this node. Holds at most one open transaction.
  class Session {
   public:
    explicit Session(StorageNode* node) : node_(node) {}
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Parses and executes one statement. BEGIN/COMMIT/ROLLBACK manage this
    /// session's transaction; other statements run inside it when open.
    Result<ExecResult> Execute(std::string_view sql_text,
                               const std::vector<Value>& params = {});

    /// Executes an already-parsed statement (in-process fast path).
    Result<ExecResult> ExecuteStatement(const sql::Statement& stmt,
                                        const std::vector<Value>& params = {});

    /// Starts a transaction; `xid` ties it to a global XA transaction.
    Status Begin(const std::string& xid = "");
    /// 1PC commit of the open transaction.
    Status Commit();
    Status Rollback();
    /// XA phase 1 on the open transaction (leaves it prepared; the session
    /// no longer owns it).
    Status Prepare();

    bool in_transaction() const { return txn_ != nullptr; }
    StorageNode* node() { return node_; }

   private:
    StorageNode* node_;
    storage::Transaction* txn_ = nullptr;
  };

  std::unique_ptr<Session> OpenSession() {
    return std::make_unique<Session>(this);
  }

  /// XA phase 2 verbs, addressable without the original session (the TM may
  /// resolve in-doubt branches from any connection after a failure).
  Status CommitPrepared(const std::string& xid);
  Status RollbackPrepared(const std::string& xid);
  std::vector<std::string> InDoubtXids() const {
    return txn_manager_.InDoubtXids();
  }

  /// Crash simulation: all active transactions vanish (rolled back), prepared
  /// branches stay in-doubt. Used by the XA recovery tests.
  void SimulateCrash() { txn_manager_.SimulateCrash(); }

  // Fault injection for transaction tests.
  void InjectPrepareFailure() { fail_next_prepare_ = true; }
  void InjectCommitFailure() { fail_next_commit_ = true; }

  /// Total statements executed (monitoring). Compat shim over the striped
  /// registry counter; also published as `node.<name>.statements`.
  int64_t statements_executed() const { return statements_executed_.value(); }

  /// Server-side statement-cache observability: a hit skips the parser, a
  /// miss pays a full parse. The write-lane tests and benchmarks use these
  /// to prove the cached-text lane re-parses nothing and the structured lane
  /// never even consults the cache. Per-instance shims over the registry
  /// counters published as `node.<name>.parse_cache.{hits,misses}`.
  int64_t parse_cache_hits() const { return parse_cache_hits_.value(); }
  int64_t parse_cache_misses() const { return parse_cache_misses_.value(); }

  /// Fixed extra latency per statement (microseconds). Benchmarks use this to
  /// model storage-stack effects the in-memory engine doesn't have: buffer
  /// pool misses on large tables, or Aurora's offloaded storage fleet.
  void set_statement_delay_us(int64_t us) { statement_delay_us_ = us; }
  int64_t statement_delay_us() const { return statement_delay_us_; }

  /// Caps how many delayed statements progress concurrently on this node
  /// (a disk-queue/worker-pool model; 0 = unlimited). Only the simulated
  /// delay is serialized, not the in-memory execution.
  void set_io_concurrency(int slots);

 private:
  friend class Session;

  /// Server-side statement cache: SQL text -> parsed AST. Plays the role of
  /// a prepared-statement cache; the middleware sends the same parameterized
  /// texts over and over, so scatter queries don't pay a parse per unit.
  Result<std::shared_ptr<const sql::Statement>> ParseCached(
      std::string_view sql_text) SPHERE_EXCLUDES(stmt_cache_mu_);

  const std::string name_;
  const sql::Dialect& dialect_;
  // analyze-exempt(guarded-by): internally synchronized (catalog SharedMutex)
  storage::Database db_;
  // analyze-exempt(guarded-by): internally synchronized (own Mutex)
  storage::TransactionManager txn_manager_;
  Mutex stmt_cache_mu_{LockRank::kEngine, "engine/storage_node.stmt_cache"};
  // Transparent hashing: cache hits probe by string_view, so the hot path
  // never materializes a temporary std::string key.
  std::unordered_map<std::string, std::shared_ptr<const sql::Statement>,
                     TransparentStringHash, std::equal_to<>>
      stmt_cache_ SPHERE_GUARDED_BY(stmt_cache_mu_);
  std::atomic<bool> fail_next_prepare_{false};
  std::atomic<bool> fail_next_commit_{false};
  // Thread-striped counters owned per instance (tests create many same-named
  // nodes in one process, so process-global names can't carry the per-node
  // accounting); the constructor publishes them as registry probes.
  // analyze-exempt(guarded-by): internally synchronized (striped atomics)
  metrics::Counter statements_executed_;
  // analyze-exempt(guarded-by): internally synchronized (striped atomics)
  metrics::Counter parse_cache_hits_;
  // analyze-exempt(guarded-by): internally synchronized (striped atomics)
  metrics::Counter parse_cache_misses_;
  std::atomic<int64_t> statement_delay_us_{0};
  Mutex io_mu_{LockRank::kEngine, "engine/storage_node.io"};
  CondVar io_cv_;
  int io_slots_ SPHERE_GUARDED_BY(io_mu_) = 0;  ///< 0 = unlimited
  int io_in_use_ SPHERE_GUARDED_BY(io_mu_) = 0;
};

}  // namespace sphere::engine

#endif  // SPHERE_ENGINE_STORAGE_NODE_H_
