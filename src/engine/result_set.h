#ifndef SPHERE_ENGINE_RESULT_SET_H_
#define SPHERE_ENGINE_RESULT_SET_H_

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "engine/row_batch.h"

namespace sphere::engine {

/// Streaming cursor over query results. Both the local executor and the
/// middleware's mergers speak this interface, so a merged multi-source result
/// looks exactly like a single-node one (the property the paper's stream
/// merger relies on).
///
/// Consumers that can take rows in bulk should prefer NextBatch: it amortizes
/// the virtual dispatch over many rows and lets producers *move* rows out
/// instead of copying them one by one.
class ResultSet {
 public:
  virtual ~ResultSet() = default;

  /// Output column labels.
  virtual const std::vector<std::string>& columns() const = 0;

  /// Advances to the next row; returns false at end. `row` is only valid
  /// until the next call.
  virtual bool Next(Row* row) = 0;

  /// Appends up to `max` rows to `*out` and returns how many were appended;
  /// 0 means end of stream. The base implementation adapts row-at-a-time
  /// Next(); batch-native producers override it to move whole row runs.
  /// Mixing Next and NextBatch on one cursor is allowed — both consume the
  /// same underlying stream.
  virtual size_t NextBatch(std::vector<Row>* out, size_t max);

  /// Non-destructive view of the full row payload when this result set is
  /// already materialized, null otherwise. Lets size-only consumers (the
  /// simulated wire charging transfer bytes) observe the rows without
  /// draining the cursor.
  virtual const std::vector<Row>* MaterializedRows() const { return nullptr; }
};

using ResultSetPtr = std::unique_ptr<ResultSet>;

/// Fully materialized result set. NextBatch moves rows out in runs, so a
/// drain of a VectorResultSet never copies row payloads.
class VectorResultSet : public ResultSet {
 public:
  VectorResultSet(std::vector<std::string> columns, std::vector<Row> rows)
      : columns_(std::move(columns)), rows_(std::move(rows)) {}

  /// Undrained or partially drained results hand their remaining rows, spine
  /// and label vector back to the pool — an abandoned cursor (LIMIT, error,
  /// discarded result) must not bleed the recycler dry.
  ~VectorResultSet() override {
    if (rows_.capacity() != 0) RecycleRows(std::move(rows_));
    RowStore::Instance().ReleaseLabels(std::move(columns_));
  }

  /// The result-set node itself recycles through a fixed-size block pool:
  /// one cursor object per query on the hot path, same size every time.
  static void* operator new(size_t size) {
    return RowStore::Instance().AcquireBlock(size);
  }
  static void operator delete(void* p, size_t size) noexcept {
    if (!RowStore::Instance().ReleaseBlock(p, size)) ::operator delete(p);
  }

  const std::vector<std::string>& columns() const override { return columns_; }

  bool Next(Row* row) override {
    if (pos_ >= rows_.size()) return false;
    *row = std::move(rows_[pos_++]);
    return true;
  }

  size_t NextBatch(std::vector<Row>* out, size_t max) override {
    size_t n = std::min(max, rows_.size() - pos_);
    out->insert(out->end(), std::make_move_iterator(rows_.begin() + static_cast<long>(pos_)),
                std::make_move_iterator(rows_.begin() + static_cast<long>(pos_ + n)));
    pos_ += n;
    return n;
  }

  const std::vector<Row>* MaterializedRows() const override { return &rows_; }

  size_t row_count() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  /// Takes the backing storage (pool recycling); the cursor is then empty.
  std::vector<Row> TakeRows() {
    pos_ = 0;
    return std::move(rows_);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Drains a result set into a materialized copy via the batch path.
std::vector<Row> DrainResultSet(ResultSet* rs);

/// Outcome of executing one statement: a cursor for queries, an affected-row
/// count for updates.
struct ExecResult {
  bool is_query = false;
  ResultSetPtr result_set;      ///< non-null when is_query
  int64_t affected_rows = 0;    ///< DML row count
  int64_t last_insert_id = 0;   ///< last generated key (0 when none)

  static ExecResult Query(ResultSetPtr rs) {
    ExecResult r;
    r.is_query = true;
    r.result_set = std::move(rs);
    return r;
  }
  static ExecResult Update(int64_t affected, int64_t last_id = 0) {
    ExecResult r;
    r.affected_rows = affected;
    r.last_insert_id = last_id;
    return r;
  }
};

}  // namespace sphere::engine

#endif  // SPHERE_ENGINE_RESULT_SET_H_
