#ifndef SPHERE_ENGINE_PIPELINE_H_
#define SPHERE_ENGINE_PIPELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sphere::engine {

/// Process-wide knobs of the streaming scan-to-merge pipeline (DESIGN.md §9).
///
/// `batch size` bounds how many rows move per NextBatch call between pipeline
/// stages: large enough to amortize a virtual call over many rows, small
/// enough that LIMIT-terminated queries never pull much more than they emit.
///
/// `streaming` gates the storage executor's single-table fast paths (lazy
/// scan cursor, LIMIT early termination, index-order sort elision, bounded
/// top-k). Turning it off restores the fully materializing baseline — the
/// differential tests and benchmarks compare the two, so the baseline must
/// stay behaviorally identical.
class PipelineConfig {
 public:
  static constexpr size_t kDefaultBatchSize = 256;

  static size_t batch_size() {
    return batch_size_.load(std::memory_order_relaxed);
  }
  static void set_batch_size(size_t n) {
    batch_size_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  static bool streaming_enabled() {
    return streaming_.load(std::memory_order_relaxed);
  }
  static void set_streaming_enabled(bool on) {
    streaming_.store(on, std::memory_order_relaxed);
  }

  /// Write-path fast lane (DESIGN.md §10): the rewriter attaches the per-unit
  /// rewritten AST to each DML SQLUnit and skips ToSQL string-building; the
  /// execution engine dispatches those units through the node session's
  /// structured entry point, so neither side serializes or re-parses SQL
  /// text. Off restores the text lanes end to end.
  static bool dml_passthrough_enabled() {
    return dml_passthrough_.load(std::memory_order_relaxed);
  }
  static void set_dml_passthrough_enabled(bool on) {
    dml_passthrough_.store(on, std::memory_order_relaxed);
  }

  /// Parameter-preserving DML rewrite: INSERT splitting renumbers `?`
  /// placeholders per unit and ships a compact parameter slice instead of
  /// inlining values into the text, so repeated prepared INSERTs produce a
  /// stable per-shard text that hits the node statement cache. Off restores
  /// the inlining rewrite (every execution a unique text — guaranteed node
  /// parse-cache miss), kept as the benchmark baseline.
  static bool dml_param_binding_enabled() {
    return dml_param_binding_.load(std::memory_order_relaxed);
  }
  static void set_dml_param_binding_enabled(bool on) {
    dml_param_binding_.store(on, std::memory_order_relaxed);
  }

  /// Index-backed point DML: UPDATE/DELETE whose WHERE pins the primary key
  /// or a secondary-indexed column mutate through the access-path cursor
  /// under a single writer-latch section (no reader-lock snapshot, no
  /// re-lookup per row). Off restores the materialize-then-mutate baseline.
  static bool point_dml_enabled() {
    return point_dml_.load(std::memory_order_relaxed);
  }
  static void set_point_dml_enabled(bool on) {
    point_dml_.store(on, std::memory_order_relaxed);
  }

  /// Statement-scoped arenas (DESIGN.md §12): every statement executes under
  /// an ArenaScope, so AST nodes (parse, Clone, rewrite output) and scratch
  /// containers bump-allocate and are reclaimed wholesale at statement end.
  /// Off restores per-node heap allocation everywhere.
  static bool arena_statements_enabled() {
    return arena_statements_.load(std::memory_order_relaxed);
  }
  static void set_arena_statements_enabled(bool on) {
    arena_statements_.store(on, std::memory_order_relaxed);
  }

  /// Pooled row batches (DESIGN.md §12): the streaming select path projects
  /// into recycled rows (string capacity reused in place), result-set drains
  /// reuse pooled batch vectors, and the simulated wire skips the
  /// encode/decode round-trip for in-process calls while still charging
  /// byte-identical transfer sizes. Off restores fresh vectors per batch and
  /// the full encode path.
  static bool pooled_batches_enabled() {
    return pooled_batches_.load(std::memory_order_relaxed);
  }
  static void set_pooled_batches_enabled(bool on) {
    pooled_batches_.store(on, std::memory_order_relaxed);
  }

  /// Observability master switch (DESIGN.md §13): gates statement-trace
  /// sampling in the runtime. Off, the per-statement cost is a single
  /// relaxed load — no sampler tick, no span allocation. Migrated counters
  /// (cache hits, pool occupancy, breaker trips) stay on either way; they
  /// were plain atomics before the registry existed.
  static bool observability_enabled() {
    return observability_.load(std::memory_order_relaxed);
  }
  static void set_observability_enabled(bool on) {
    observability_.store(on, std::memory_order_relaxed);
  }

  /// Trace sampling interval: every Nth statement grows a span tree that
  /// feeds the stage-latency histograms. 1 traces everything (tests), 0
  /// never samples (counters only); DistSQL `TRACE <sql>` bypasses the
  /// sampler entirely. The default amortizes the span tree's cost (clock
  /// reads, lock round-trips, vector churn) to ~2% of a point-select
  /// statement, holding BM_ObservabilityOverhead inside its 5% gate.
  static constexpr uint32_t kDefaultTraceSampleInterval = 128;
  static uint32_t trace_sample_interval() {
    return trace_sample_interval_.load(std::memory_order_relaxed);
  }
  static void set_trace_sample_interval(uint32_t n) {
    trace_sample_interval_.store(n, std::memory_order_relaxed);
  }

 private:
  static std::atomic<size_t> batch_size_;
  static std::atomic<bool> streaming_;
  static std::atomic<bool> dml_passthrough_;
  static std::atomic<bool> dml_param_binding_;
  static std::atomic<bool> point_dml_;
  static std::atomic<bool> arena_statements_;
  static std::atomic<bool> pooled_batches_;
  static std::atomic<bool> observability_;
  static std::atomic<uint32_t> trace_sample_interval_;
};

/// RAII toggle for tests/benchmarks that compare the streaming pipeline with
/// the materializing baseline; restores the previous setting on scope exit.
class ScopedStreamingMode {
 public:
  explicit ScopedStreamingMode(bool on)
      : previous_(PipelineConfig::streaming_enabled()) {
    PipelineConfig::set_streaming_enabled(on);
  }
  ~ScopedStreamingMode() { PipelineConfig::set_streaming_enabled(previous_); }

  ScopedStreamingMode(const ScopedStreamingMode&) = delete;
  ScopedStreamingMode& operator=(const ScopedStreamingMode&) = delete;

 private:
  bool previous_;
};

/// RAII toggle for the structured pass-through lane (differential tests and
/// the pass-through-vs-reparse ablation); restores the previous setting.
class ScopedDmlPassThrough {
 public:
  explicit ScopedDmlPassThrough(bool on)
      : previous_(PipelineConfig::dml_passthrough_enabled()) {
    PipelineConfig::set_dml_passthrough_enabled(on);
  }
  ~ScopedDmlPassThrough() {
    PipelineConfig::set_dml_passthrough_enabled(previous_);
  }

  ScopedDmlPassThrough(const ScopedDmlPassThrough&) = delete;
  ScopedDmlPassThrough& operator=(const ScopedDmlPassThrough&) = delete;

 private:
  bool previous_;
};

/// RAII toggle for the parameter-preserving DML rewrite.
class ScopedDmlParamBinding {
 public:
  explicit ScopedDmlParamBinding(bool on)
      : previous_(PipelineConfig::dml_param_binding_enabled()) {
    PipelineConfig::set_dml_param_binding_enabled(on);
  }
  ~ScopedDmlParamBinding() {
    PipelineConfig::set_dml_param_binding_enabled(previous_);
  }

  ScopedDmlParamBinding(const ScopedDmlParamBinding&) = delete;
  ScopedDmlParamBinding& operator=(const ScopedDmlParamBinding&) = delete;

 private:
  bool previous_;
};

/// RAII toggle for the index-backed point UPDATE/DELETE path.
class ScopedPointDml {
 public:
  explicit ScopedPointDml(bool on)
      : previous_(PipelineConfig::point_dml_enabled()) {
    PipelineConfig::set_point_dml_enabled(on);
  }
  ~ScopedPointDml() { PipelineConfig::set_point_dml_enabled(previous_); }

  ScopedPointDml(const ScopedPointDml&) = delete;
  ScopedPointDml& operator=(const ScopedPointDml&) = delete;

 private:
  bool previous_;
};

/// RAII toggle for statement-scoped arenas (differential tests and the
/// arena-vs-malloc ablation); restores the previous setting.
class ScopedArenaStatements {
 public:
  explicit ScopedArenaStatements(bool on)
      : previous_(PipelineConfig::arena_statements_enabled()) {
    PipelineConfig::set_arena_statements_enabled(on);
  }
  ~ScopedArenaStatements() {
    PipelineConfig::set_arena_statements_enabled(previous_);
  }

  ScopedArenaStatements(const ScopedArenaStatements&) = delete;
  ScopedArenaStatements& operator=(const ScopedArenaStatements&) = delete;

 private:
  bool previous_;
};

/// RAII toggle for the observability master switch (overhead benches and
/// trace tests); restores the previous setting.
class ScopedObservability {
 public:
  explicit ScopedObservability(bool on)
      : previous_(PipelineConfig::observability_enabled()) {
    PipelineConfig::set_observability_enabled(on);
  }
  ~ScopedObservability() {
    PipelineConfig::set_observability_enabled(previous_);
  }

  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;

 private:
  bool previous_;
};

/// RAII override of the trace sampling interval (tests pin it to 1 to trace
/// deterministically); restores the previous interval.
class ScopedTraceSampling {
 public:
  explicit ScopedTraceSampling(uint32_t interval)
      : previous_(PipelineConfig::trace_sample_interval()) {
    PipelineConfig::set_trace_sample_interval(interval);
  }
  ~ScopedTraceSampling() {
    PipelineConfig::set_trace_sample_interval(previous_);
  }

  ScopedTraceSampling(const ScopedTraceSampling&) = delete;
  ScopedTraceSampling& operator=(const ScopedTraceSampling&) = delete;

 private:
  uint32_t previous_;
};

/// RAII toggle for pooled row batches / recycled projection storage.
class ScopedPooledBatches {
 public:
  explicit ScopedPooledBatches(bool on)
      : previous_(PipelineConfig::pooled_batches_enabled()) {
    PipelineConfig::set_pooled_batches_enabled(on);
  }
  ~ScopedPooledBatches() {
    PipelineConfig::set_pooled_batches_enabled(previous_);
  }

  ScopedPooledBatches(const ScopedPooledBatches&) = delete;
  ScopedPooledBatches& operator=(const ScopedPooledBatches&) = delete;

 private:
  bool previous_;
};

}  // namespace sphere::engine

#endif  // SPHERE_ENGINE_PIPELINE_H_
