#ifndef SPHERE_ENGINE_PIPELINE_H_
#define SPHERE_ENGINE_PIPELINE_H_

#include <atomic>
#include <cstddef>

namespace sphere::engine {

/// Process-wide knobs of the streaming scan-to-merge pipeline (DESIGN.md §9).
///
/// `batch size` bounds how many rows move per NextBatch call between pipeline
/// stages: large enough to amortize a virtual call over many rows, small
/// enough that LIMIT-terminated queries never pull much more than they emit.
///
/// `streaming` gates the storage executor's single-table fast paths (lazy
/// scan cursor, LIMIT early termination, index-order sort elision, bounded
/// top-k). Turning it off restores the fully materializing baseline — the
/// differential tests and benchmarks compare the two, so the baseline must
/// stay behaviorally identical.
class PipelineConfig {
 public:
  static constexpr size_t kDefaultBatchSize = 256;

  static size_t batch_size() {
    return batch_size_.load(std::memory_order_relaxed);
  }
  static void set_batch_size(size_t n) {
    batch_size_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  static bool streaming_enabled() {
    return streaming_.load(std::memory_order_relaxed);
  }
  static void set_streaming_enabled(bool on) {
    streaming_.store(on, std::memory_order_relaxed);
  }

 private:
  static std::atomic<size_t> batch_size_;
  static std::atomic<bool> streaming_;
};

/// RAII toggle for tests/benchmarks that compare the streaming pipeline with
/// the materializing baseline; restores the previous setting on scope exit.
class ScopedStreamingMode {
 public:
  explicit ScopedStreamingMode(bool on)
      : previous_(PipelineConfig::streaming_enabled()) {
    PipelineConfig::set_streaming_enabled(on);
  }
  ~ScopedStreamingMode() { PipelineConfig::set_streaming_enabled(previous_); }

  ScopedStreamingMode(const ScopedStreamingMode&) = delete;
  ScopedStreamingMode& operator=(const ScopedStreamingMode&) = delete;

 private:
  bool previous_;
};

}  // namespace sphere::engine

#endif  // SPHERE_ENGINE_PIPELINE_H_
