#include "engine/pipeline.h"

namespace sphere::engine {

std::atomic<size_t> PipelineConfig::batch_size_{PipelineConfig::kDefaultBatchSize};
std::atomic<bool> PipelineConfig::streaming_{true};
std::atomic<bool> PipelineConfig::dml_passthrough_{true};
std::atomic<bool> PipelineConfig::dml_param_binding_{true};
std::atomic<bool> PipelineConfig::point_dml_{true};
std::atomic<bool> PipelineConfig::arena_statements_{true};
std::atomic<bool> PipelineConfig::pooled_batches_{true};
std::atomic<bool> PipelineConfig::observability_{true};
std::atomic<uint32_t> PipelineConfig::trace_sample_interval_{
    PipelineConfig::kDefaultTraceSampleInterval};

}  // namespace sphere::engine
