#include "engine/pipeline.h"

namespace sphere::engine {

std::atomic<size_t> PipelineConfig::batch_size_{PipelineConfig::kDefaultBatchSize};
std::atomic<bool> PipelineConfig::streaming_{true};

}  // namespace sphere::engine
