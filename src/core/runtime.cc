#include "core/runtime.h"

#include "common/arena.h"
#include "common/strings.h"
#include "common/trace.h"
#include "core/hint.h"
#include "engine/pipeline.h"

namespace sphere::core {

ShardingRuntime::ShardingRuntime(RuntimeConfig config, net::NetworkConfig network)
    : config_(config), network_(network), dialect_(sql::Dialect::Get(config.dialect)),
      executor_(&registry_, config.max_connections_per_query),
      stmt_cache_(config.statement_cache_capacity) {
  // An empty rule still routes unsharded tables to the default data source
  // once SetRule is called; start with a null rule (Execute requires one).
}

Status ShardingRuntime::AttachNode(const std::string& name,
                                   engine::StorageNode* node) {
  return registry_.Register(std::make_unique<net::DataSource>(
      name, node, &network_, config_.pool_size_per_source));
}

Status ShardingRuntime::SetRule(ShardingRuleConfig config) {
  // Every rule change invalidates the plan cache: cached routed plans were
  // computed against the outgoing rule. (Invalidate also bumps the epoch, so
  // plans still being routed under the old rule can never be republished.)
  stmt_cache_.Invalidate();
  SPHERE_ASSIGN_OR_RETURN(rule_, ShardingRule::Build(std::move(config)));
  // Validate that every referenced data source is attached.
  for (const auto& ds : rule_->AllDataSources()) {
    if (registry_.Find(ds) == nullptr) {
      rule_.reset();
      return Status::NotFound("rule references unattached data source " + ds);
    }
  }
  return Status::OK();
}

Result<sql::StatementPtr> ShardingRuntime::ApplyKeyGeneration(
    const sql::Statement& stmt, std::vector<Value>* params,
    int64_t* generated) const {
  *generated = 0;
  if (stmt.kind() != sql::StatementKind::kInsert || rule_ == nullptr) {
    return sql::StatementPtr(nullptr);
  }
  const auto& ins = static_cast<const sql::InsertStatement&>(stmt);
  const TableRule* table_rule = rule_->FindTableRule(ins.table.name);
  if (table_rule == nullptr || table_rule->key_generator() == nullptr ||
      ins.columns.empty()) {
    return sql::StatementPtr(nullptr);
  }
  for (const auto& c : ins.columns) {
    if (EqualsIgnoreCase(c, table_rule->keygen_column())) {
      return sql::StatementPtr(nullptr);  // caller supplied the key
    }
  }
  // Append the generated-key column with fresh keys on every row. Behind
  // parameter binding the keys ride as bound parameters, so the statement
  // text stays stable across executions (a prepared keygen INSERT keeps
  // hitting the node statement cache); inlined literals are the baseline.
  bool bind = engine::PipelineConfig::dml_param_binding_enabled();
  auto clone = stmt.Clone();
  auto* mutable_ins = static_cast<sql::InsertStatement*>(clone.get());
  mutable_ins->columns.push_back(table_rule->keygen_column());
  for (auto& row : mutable_ins->rows) {
    Value key = table_rule->key_generator()->NextKey();
    if (key.is_int()) *generated = key.AsInt();
    if (bind) {
      row.push_back(std::make_unique<sql::ParamExpr>(
          static_cast<int>(params->size())));
      params->push_back(std::move(key));
    } else {
      row.push_back(std::make_unique<sql::LiteralExpr>(std::move(key)));
    }
  }
  return clone;
}

Result<engine::ExecResult> ShardingRuntime::ExecuteStatement(
    const sql::Statement& stmt, std::vector<Value> params,
    ConnectionSource* txn_source, UnitObserver* observer) {
  if (rule_ == nullptr) {
    return Status::InvalidArgument("no sharding rule configured");
  }

  // Span tree for this statement: joins a forced (TRACE) or sampled outer
  // trace, samples a fresh one, or no-ops (DESIGN.md §13). Span storage is
  // trace-owned — never the statement arena below, which is reset on return.
  trace::StatementTraceScope tscope(
      engine::PipelineConfig::observability_enabled(),
      engine::PipelineConfig::trace_sample_interval());
  if (tscope.active()) {
    tscope.Note("kind", std::string(sql::StatementKindName(stmt.kind())));
  }

  // Statement scope: AST clones (keygen, interceptors, rewrite output) and
  // scratch below bump-allocate and are reclaimed wholesale on return. The
  // merged result escapes the scope, so it must hold no arena memory — its
  // rows and labels use plain std containers (heap) by construction.
  ArenaScope arena_scope(engine::PipelineConfig::arena_statements_enabled());

  const sql::Statement* effective = &stmt;
  sql::StatementPtr keygen_stmt;
  int64_t generated_key = 0;
  SPHERE_ASSIGN_OR_RETURN(keygen_stmt,
                          ApplyKeyGeneration(stmt, &params, &generated_key));
  if (keygen_stmt != nullptr) effective = keygen_stmt.get();

  // Feature hooks: statement-level rewrites (encrypt etc.).
  std::vector<sql::StatementPtr> owned;
  for (auto& interceptor : interceptors_) {
    SPHERE_ASSIGN_OR_RETURN(sql::StatementPtr replaced,
                            interceptor->BeforeRoute(*effective, &params));
    if (replaced != nullptr) {
      effective = replaced.get();
      owned.push_back(std::move(replaced));
    }
  }

  RouteEngine router(rule_.get());
  RouteResult route;
  {
    trace::ScopedSpan span("route");
    SPHERE_ASSIGN_OR_RETURN(route, router.Route(*effective, params));
    if (span.active()) {
      span.Note("fan_out", std::to_string(route.units.size()));
    }
  }

  RewriteEngine rewriter(dialect_);
  RewriteResult rewritten;
  {
    trace::ScopedSpan span("rewrite");
    SPHERE_ASSIGN_OR_RETURN(rewritten,
                            rewriter.Rewrite(*effective, route, params));
    if (span.active()) {
      span.Note("units", std::to_string(rewritten.units.size()));
    }
  }

  bool in_txn = txn_source != nullptr;
  for (auto& interceptor : interceptors_) {
    SPHERE_RETURN_NOT_OK(
        interceptor->AfterRewrite(*effective, &rewritten.units, in_txn));
  }

  ExecutionOutcome outcome;
  {
    trace::ScopedSpan span("execute");
    SPHERE_ASSIGN_OR_RETURN(
        outcome, executor_.Execute(rewritten.units, txn_source, observer));
  }
  last_mode_.store(outcome.mode, std::memory_order_relaxed);

  engine::ExecResult merged;
  {
    trace::ScopedSpan span("merge");
    SPHERE_ASSIGN_OR_RETURN(
        merged, merger_.Merge(std::move(outcome.results), rewritten.merge));
  }
  if (generated_key != 0 && merged.last_insert_id == 0) {
    merged.last_insert_id = generated_key;
  }

  for (auto it = interceptors_.rbegin(); it != interceptors_.rend(); ++it) {
    SPHERE_ASSIGN_OR_RETURN(merged,
                            (*it)->DecorateResult(*effective, std::move(merged)));
  }
  return merged;
}

Result<engine::ExecResult> ShardingRuntime::Execute(std::string_view sql_text,
                                                    std::vector<Value> params) {
  // Opened here (not in ExecutePlan) so the parse/cache-lookup stage lands
  // inside the statement span; inner scopes join this one.
  trace::StatementTraceScope tscope(
      engine::PipelineConfig::observability_enabled(),
      engine::PipelineConfig::trace_sample_interval());
  SPHERE_ASSIGN_OR_RETURN(std::shared_ptr<const StatementPlan> plan,
                          GetOrParse(sql_text));
  return ExecutePlan(*plan, std::move(params), nullptr);
}

Result<std::shared_ptr<const StatementPlan>> ShardingRuntime::GetOrParse(
    std::string_view sql_text) {
  trace::ScopedSpan span("parse");
  std::shared_ptr<const StatementPlan> plan =
      stmt_cache_.Get(config_.dialect, sql_text);
  if (plan != nullptr) {
    if (span.active()) span.Note("cache", "hit");
    return plan;
  }
  if (span.active()) span.Note("cache", "miss");
  // The parsed AST outlives this statement (it is published to the plan
  // cache), so it must never come from a statement arena.
  ArenaSuspend heap_scope;
  SPHERE_ASSIGN_OR_RETURN(sql::SharedStatement parsed,
                          sql::ParseShared(sql_text, dialect_));
  plan = std::make_shared<StatementPlan>(std::move(parsed), config_.dialect);
  stmt_cache_.Put(config_.dialect, sql_text, plan);
  return plan;
}

Result<engine::ExecResult> ShardingRuntime::ExecutePlan(
    const StatementPlan& plan, std::vector<Value> params,
    ConnectionSource* txn_source, UnitObserver* observer) {
  // The routed/rewritten form is reusable only when nothing outside the AST
  // and the rule can change it: no parameters (the physical SQL embeds
  // parameter-derived routing), no feature interceptors (they may replace the
  // statement or redirect units per call), no thread-local sharding hint, and
  // a SELECT (INSERTs go through key generation, DML through AT-mode
  // observers that want the regular pipeline's statement identity).
  bool reusable = plan.param_count() == 0 &&
                  plan.stmt().kind() == sql::StatementKind::kSelect &&
                  interceptors_.empty() && rule_ != nullptr &&
                  !HintManager::GetShardingValue().has_value();
  if (!reusable) {
    return ExecuteStatement(plan.stmt(), std::move(params), txn_source,
                            observer);
  }

  trace::StatementTraceScope tscope(
      engine::PipelineConfig::observability_enabled(),
      engine::PipelineConfig::trace_sample_interval());

  ArenaScope arena_scope(engine::PipelineConfig::arena_statements_enabled());

  // Read the epoch before routing: if SetRule lands in between, the plan we
  // publish carries the stale epoch and is never reused.
  uint64_t epoch = stmt_cache_.epoch();
  std::shared_ptr<const RoutedPlan> routed = plan.routed(epoch);
  if (routed == nullptr) {
    // The routed plan is published for reuse by later statements, so its
    // rewrite (clones included) must be heap-built, not arena-built.
    ArenaSuspend heap_scope;
    auto fresh = std::make_shared<RoutedPlan>();
    fresh->rule_epoch = epoch;
    RouteEngine router(rule_.get());
    {
      trace::ScopedSpan span("route");
      SPHERE_ASSIGN_OR_RETURN(fresh->route, router.Route(plan.stmt(), params));
      if (span.active()) {
        span.Note("fan_out", std::to_string(fresh->route.units.size()));
      }
    }
    RewriteEngine rewriter(dialect_);
    {
      trace::ScopedSpan span("rewrite");
      SPHERE_ASSIGN_OR_RETURN(
          fresh->rewritten, rewriter.Rewrite(plan.stmt(), fresh->route, params));
      if (span.active()) {
        span.Note("units", std::to_string(fresh->rewritten.units.size()));
      }
    }
    routed = fresh;
    plan.StoreRouted(std::move(fresh));
  } else if (tscope.active()) {
    tscope.Note("routed_plan", "reused");
  }

  ExecutionOutcome outcome;
  {
    trace::ScopedSpan span("execute");
    SPHERE_ASSIGN_OR_RETURN(
        outcome, executor_.Execute(routed->rewritten.units, txn_source, observer));
  }
  last_mode_.store(outcome.mode, std::memory_order_relaxed);
  trace::ScopedSpan merge_span("merge");
  return merger_.Merge(std::move(outcome.results), routed->rewritten.merge);
}

Result<RouteResult> ShardingRuntime::PreviewRoute(
    const sql::Statement& stmt, const std::vector<Value>& params) const {
  if (rule_ == nullptr) {
    return Status::InvalidArgument("no sharding rule configured");
  }
  RouteEngine router(rule_.get());
  return router.Route(stmt, params);
}

}  // namespace sphere::core
