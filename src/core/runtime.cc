#include "core/runtime.h"

#include "common/strings.h"

namespace sphere::core {

ShardingRuntime::ShardingRuntime(RuntimeConfig config, net::NetworkConfig network)
    : config_(config), network_(network), dialect_(sql::Dialect::Get(config.dialect)),
      executor_(&registry_, config.max_connections_per_query) {
  // An empty rule still routes unsharded tables to the default data source
  // once SetRule is called; start with a null rule (Execute requires one).
}

Status ShardingRuntime::AttachNode(const std::string& name,
                                   engine::StorageNode* node) {
  return registry_.Register(std::make_unique<net::DataSource>(
      name, node, &network_, config_.pool_size_per_source));
}

Status ShardingRuntime::SetRule(ShardingRuleConfig config) {
  SPHERE_ASSIGN_OR_RETURN(rule_, ShardingRule::Build(std::move(config)));
  // Validate that every referenced data source is attached.
  for (const auto& ds : rule_->AllDataSources()) {
    if (registry_.Find(ds) == nullptr) {
      rule_.reset();
      return Status::NotFound("rule references unattached data source " + ds);
    }
  }
  return Status::OK();
}

Result<sql::StatementPtr> ShardingRuntime::ApplyKeyGeneration(
    const sql::Statement& stmt, int64_t* generated) const {
  *generated = 0;
  if (stmt.kind() != sql::StatementKind::kInsert || rule_ == nullptr) {
    return sql::StatementPtr(nullptr);
  }
  const auto& ins = static_cast<const sql::InsertStatement&>(stmt);
  const TableRule* table_rule = rule_->FindTableRule(ins.table.name);
  if (table_rule == nullptr || table_rule->key_generator() == nullptr ||
      ins.columns.empty()) {
    return sql::StatementPtr(nullptr);
  }
  for (const auto& c : ins.columns) {
    if (EqualsIgnoreCase(c, table_rule->keygen_column())) {
      return sql::StatementPtr(nullptr);  // caller supplied the key
    }
  }
  // Append the generated-key column with fresh keys on every row.
  auto clone = stmt.Clone();
  auto* mutable_ins = static_cast<sql::InsertStatement*>(clone.get());
  mutable_ins->columns.push_back(table_rule->keygen_column());
  for (auto& row : mutable_ins->rows) {
    Value key = table_rule->key_generator()->NextKey();
    if (key.is_int()) *generated = key.AsInt();
    row.push_back(std::make_unique<sql::LiteralExpr>(std::move(key)));
  }
  return clone;
}

Result<engine::ExecResult> ShardingRuntime::ExecuteStatement(
    const sql::Statement& stmt, std::vector<Value> params,
    ConnectionSource* txn_source, UnitObserver* observer) {
  if (rule_ == nullptr) {
    return Status::InvalidArgument("no sharding rule configured");
  }

  const sql::Statement* effective = &stmt;
  sql::StatementPtr keygen_stmt;
  int64_t generated_key = 0;
  SPHERE_ASSIGN_OR_RETURN(keygen_stmt, ApplyKeyGeneration(stmt, &generated_key));
  if (keygen_stmt != nullptr) effective = keygen_stmt.get();

  // Feature hooks: statement-level rewrites (encrypt etc.).
  std::vector<sql::StatementPtr> owned;
  for (auto& interceptor : interceptors_) {
    SPHERE_ASSIGN_OR_RETURN(sql::StatementPtr replaced,
                            interceptor->BeforeRoute(*effective, &params));
    if (replaced != nullptr) {
      effective = replaced.get();
      owned.push_back(std::move(replaced));
    }
  }

  RouteEngine router(rule_.get());
  SPHERE_ASSIGN_OR_RETURN(RouteResult route, router.Route(*effective, params));

  RewriteEngine rewriter(dialect_);
  SPHERE_ASSIGN_OR_RETURN(RewriteResult rewritten,
                          rewriter.Rewrite(*effective, route, params));

  bool in_txn = txn_source != nullptr;
  for (auto& interceptor : interceptors_) {
    SPHERE_RETURN_NOT_OK(
        interceptor->AfterRewrite(*effective, &rewritten.units, in_txn));
  }

  SPHERE_ASSIGN_OR_RETURN(
      ExecutionOutcome outcome,
      executor_.Execute(rewritten.units, txn_source, observer));
  last_mode_.store(outcome.mode, std::memory_order_relaxed);

  SPHERE_ASSIGN_OR_RETURN(
      engine::ExecResult merged,
      merger_.Merge(std::move(outcome.results), rewritten.merge));
  if (generated_key != 0 && merged.last_insert_id == 0) {
    merged.last_insert_id = generated_key;
  }

  for (auto it = interceptors_.rbegin(); it != interceptors_.rend(); ++it) {
    SPHERE_ASSIGN_OR_RETURN(merged,
                            (*it)->DecorateResult(*effective, std::move(merged)));
  }
  return merged;
}

Result<engine::ExecResult> ShardingRuntime::Execute(std::string_view sql_text,
                                                    std::vector<Value> params) {
  sql::Parser parser(dialect_);
  SPHERE_ASSIGN_OR_RETURN(sql::StatementPtr stmt, parser.Parse(sql_text));
  return ExecuteStatement(*stmt, std::move(params), nullptr);
}

Result<RouteResult> ShardingRuntime::PreviewRoute(
    const sql::Statement& stmt, const std::vector<Value>& params) const {
  if (rule_ == nullptr) {
    return Status::InvalidArgument("no sharding rule configured");
  }
  RouteEngine router(rule_.get());
  return router.Route(stmt, params);
}

}  // namespace sphere::core
