#ifndef SPHERE_CORE_METADATA_H_
#define SPHERE_CORE_METADATA_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace sphere::core {

/// The atomic unit of sharding (paper §IV-A): one actual table in one data
/// source, e.g. "ds_0.t_user_1".
struct DataNode {
  std::string data_source;
  std::string table;

  DataNode() = default;
  DataNode(std::string ds, std::string tbl)
      : data_source(std::move(ds)), table(std::move(tbl)) {}

  std::string ToString() const { return data_source + "." + table; }

  bool operator==(const DataNode& o) const {
    return data_source == o.data_source && table == o.table;
  }
  bool operator<(const DataNode& o) const {
    return data_source != o.data_source ? data_source < o.data_source
                                        : table < o.table;
  }
};

/// Parses "ds.table"; fails on malformed input.
Result<DataNode> ParseDataNode(const std::string& text);

/// Expands an inline data-node expression of the form
/// "ds_${0..1}.t_user_${0..3}" (either or both ranges may be literal).
/// The produced order iterates the table range in the outer loop so that
/// table suffix k lands on data source (k mod #ds), matching the AutoTable
/// layout of the paper's §V-A example.
Result<std::vector<DataNode>> ExpandDataNodes(const std::string& expression);

}  // namespace sphere::core

#endif  // SPHERE_CORE_METADATA_H_
