#include "core/metadata.h"

#include <cstdlib>

#include "common/strings.h"

namespace sphere::core {

Result<DataNode> ParseDataNode(const std::string& text) {
  auto parts = Split(text, '.');
  if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
    return Status::InvalidArgument("bad data node: " + text);
  }
  return DataNode(Trim(parts[0]), Trim(parts[1]));
}

namespace {

/// Expands "prefix${a..b}suffix" into the enumerated strings; a plain string
/// expands to itself.
Result<std::vector<std::string>> ExpandRange(const std::string& text) {
  size_t open = text.find("${");
  if (open == std::string::npos) return std::vector<std::string>{text};
  size_t close = text.find('}', open);
  if (close == std::string::npos) {
    return Status::InvalidArgument("unterminated ${..} in " + text);
  }
  std::string prefix = text.substr(0, open);
  std::string suffix = text.substr(close + 1);
  std::string range = text.substr(open + 2, close - open - 2);
  size_t dots = range.find("..");
  if (dots == std::string::npos) {
    return Status::InvalidArgument("expected ${lo..hi} in " + text);
  }
  std::string lo_text = Trim(range.substr(0, dots));
  std::string hi_text = Trim(range.substr(dots + 2));
  char* lo_end = nullptr;
  char* hi_end = nullptr;
  long lo = std::strtol(lo_text.c_str(), &lo_end, 10);
  long hi = std::strtol(hi_text.c_str(), &hi_end, 10);
  if (lo_text.empty() || hi_text.empty() || *lo_end != '\0' || *hi_end != '\0') {
    return Status::InvalidArgument("non-numeric bound in " + text);
  }
  if (hi < lo || hi - lo > 100000) {
    return Status::InvalidArgument("bad range in " + text);
  }
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(hi - lo + 1));
  for (long i = lo; i <= hi; ++i) {
    out.push_back(prefix + std::to_string(i) + suffix);
  }
  return out;
}

}  // namespace

Result<std::vector<DataNode>> ExpandDataNodes(const std::string& expression) {
  std::vector<DataNode> nodes;
  for (const std::string& piece : Split(expression, ',')) {
    std::string text = Trim(piece);
    if (text.empty()) continue;
    size_t dot = text.find('.');
    // The dot may sit inside ${..}; find the dot that separates ds from table
    // by scanning outside brace groups.
    int depth = 0;
    dot = std::string::npos;
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '{') ++depth;
      else if (text[i] == '}') --depth;
      else if (text[i] == '.' && depth == 0 &&
               !(i + 1 < text.size() && text[i + 1] == '.')) {
        dot = i;
        break;
      }
    }
    if (dot == std::string::npos) {
      return Status::InvalidArgument("bad data node expression: " + text);
    }
    SPHERE_ASSIGN_OR_RETURN(std::vector<std::string> ds_list,
                            ExpandRange(text.substr(0, dot)));
    SPHERE_ASSIGN_OR_RETURN(std::vector<std::string> tbl_list,
                            ExpandRange(text.substr(dot + 1)));
    if (ds_list.size() > 1 && tbl_list.size() > 1) {
      // Joint expansion: table k -> data source (k mod #ds).
      for (size_t k = 0; k < tbl_list.size(); ++k) {
        nodes.emplace_back(ds_list[k % ds_list.size()], tbl_list[k]);
      }
    } else {
      for (const auto& ds : ds_list) {
        for (const auto& tbl : tbl_list) {
          nodes.emplace_back(ds, tbl);
        }
      }
    }
  }
  if (nodes.empty()) {
    return Status::InvalidArgument("empty data node expression");
  }
  return nodes;
}

}  // namespace sphere::core
