#include "core/hint.h"

namespace sphere::core {

namespace {
thread_local std::optional<Value> tls_sharding_value;
thread_local bool tls_shadow = false;
}  // namespace

void HintManager::SetShardingValue(Value v) { tls_sharding_value = std::move(v); }

std::optional<Value> HintManager::GetShardingValue() {
  return tls_sharding_value;
}

void HintManager::SetShadow(bool shadow) { tls_shadow = shadow; }

bool HintManager::IsShadow() { return tls_shadow; }

void HintManager::Clear() {
  tls_sharding_value.reset();
  tls_shadow = false;
}

HintManager::Scope::Scope()
    : saved_value_(tls_sharding_value), saved_shadow_(tls_shadow) {}

HintManager::Scope::~Scope() {
  tls_sharding_value = saved_value_;
  tls_shadow = saved_shadow_;
}

}  // namespace sphere::core
