#include "core/execute.h"

#include <algorithm>
#include <span>
#include <thread>

#include "common/arena.h"
#include "common/strings.h"
#include "common/trace.h"

namespace sphere::core {

Status DataSourceRegistry::Register(std::unique_ptr<net::DataSource> ds) {
  if (sources_.find(std::string_view(ds->name())) != sources_.end()) {
    return Status::AlreadyExists("data source " + ds->name());
  }
  std::string key = ds->name();
  sources_.emplace(std::move(key), std::move(ds));
  return Status::OK();
}

net::DataSource* DataSourceRegistry::Find(std::string_view name) {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : it->second.get();
}

std::vector<std::string> DataSourceRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& [key, ds] : sources_) out.push_back(ds->name());
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// One data source's slice of the statement's units. Scratch only — the
/// index vectors live in the statement arena when one is active.
struct Group {
  net::DataSource* ds = nullptr;
  net::RemoteConnection* txn_conn = nullptr;  ///< non-null inside a transaction
  ArenaVector<size_t> unit_indices;
};

/// Executes a list of units serially on one connection. `results` points at
/// the per-unit slot array (indexed by the unit's position in `units`).
/// `tr`/`parent` carry the statement trace across pool workers explicitly —
/// the thread-local current trace does not propagate to the shared pool.
void RunSerial(net::RemoteConnection* conn, const std::vector<SQLUnit>& units,
               std::span<const size_t> indices, UnitObserver* observer,
               Result<engine::ExecResult>* results, trace::Trace* tr,
               trace::Span* parent) {
  for (size_t idx : indices) {
    trace::Span* uspan = nullptr;
    if (tr != nullptr) {
      uspan = tr->StartSpan(parent, "unit");
      tr->AddAttr(uspan, "data_source", units[idx].data_source);
    }
    if (observer != nullptr) {
      Status st = observer->BeforeUnit(conn, units[idx]);
      if (!st.ok()) {
        results[idx] = st;
        if (tr != nullptr) tr->EndSpan(uspan);
        continue;
      }
    }
    // Structured pass-through units (empty text + attached AST) skip the
    // protocol encode and the node-side parse; everything else ships text.
    const SQLUnit& unit = units[idx];
    if (unit.stmt != nullptr && unit.sql.empty()) {
      results[idx] = conn->ExecuteStructured(*unit.stmt, unit.params);
    } else {
      results[idx] = conn->Execute(unit.sql, unit.params);
    }
    if (observer != nullptr) {
      // Unconditional: the observer must also see failed units (to roll back
      // and report the branch); its status only overrides a success.
      Status st = observer->AfterUnit(conn, units[idx], results[idx]);
      if (!st.ok() && results[idx].ok()) results[idx] = st;
    }
    if (tr != nullptr) tr->EndSpan(uspan);
  }
}

}  // namespace

Result<ExecutionOutcome> ExecutionEngine::Execute(
    const std::vector<SQLUnit>& units, ConnectionSource* txn_source,
    UnitObserver* observer) const {
  if (units.empty()) return Status::Internal("no SQL units to execute");

  // Captured once on the statement thread; per-unit spans parent under the
  // runtime's "execute" span even when they run on pool workers.
  trace::Trace* tr = trace::Current();
  trace::Span* parent = tr != nullptr ? trace::CurrentSpan() : nullptr;

  // ----- Single-unit fast path. -----
  // The dominant OLTP shape (a point query routed to one shard) needs no
  // grouping map, no task list and no per-unit result vector: one lease, one
  // serial run, one result. Identical observer and error semantics to
  // RunSerial below.
  if (units.size() == 1) {
    const SQLUnit& unit = units[0];
    net::DataSource* ds = registry_->Find(unit.data_source);
    if (ds == nullptr) {
      return Status::NotFound("data source " + unit.data_source);
    }
    net::ConnectionPool::Lease lease;
    net::RemoteConnection* conn = nullptr;
    if (txn_source != nullptr) {
      SPHERE_ASSIGN_OR_RETURN(conn,
                              txn_source->TransactionConnection(ds->name()));
    } else {
      lease = ds->pool().Acquire();
      conn = lease.get();
    }
    trace::Span* uspan = nullptr;
    if (tr != nullptr) {
      uspan = tr->StartSpan(parent, "unit");
      tr->AddAttr(uspan, "data_source", unit.data_source);
    }
    Result<engine::ExecResult> r(Status::Internal("not executed"));
    bool executed = true;
    if (observer != nullptr) {
      Status st = observer->BeforeUnit(conn, unit);
      if (!st.ok()) {
        r = st;
        executed = false;
      }
    }
    if (executed) {
      if (unit.stmt != nullptr && unit.sql.empty()) {
        r = conn->ExecuteStructured(*unit.stmt, unit.params);
      } else {
        r = conn->Execute(unit.sql, unit.params);
      }
      if (observer != nullptr) {
        Status st = observer->AfterUnit(conn, unit, r);
        if (!st.ok() && r.ok()) r = st;
      }
    }
    if (tr != nullptr) tr->EndSpan(uspan);
    if (!r.ok()) return r.status();
    ExecutionOutcome outcome;
    outcome.mode = ConnectionMode::kMemoryStrictly;
    outcome.results.reserve(1);
    outcome.results.push_back(std::move(r).value());
    return outcome;
  }

  // ----- Preparation phase: group by data source. -----
  // Hash-grouped on the unit's data source name (case-insensitive, no
  // lowered-copy allocation): the string_view keys point into the units,
  // which outlive the map. All of the scratch below (groups, the map's
  // nodes, the result slots, the task list) is statement-local, so it rides
  // the statement arena when one is active and never outlives this call.
  ArenaVector<Group> groups;
  std::unordered_map<
      std::string_view, size_t, CaseInsensitiveHash, CaseInsensitiveEqual,
      ArenaAllocator<std::pair<const std::string_view, size_t>>>
      group_of;
  for (size_t i = 0; i < units.size(); ++i) {
    auto [it, inserted] =
        group_of.try_emplace(units[i].data_source, groups.size());
    if (inserted) {
      net::DataSource* ds = registry_->Find(units[i].data_source);
      if (ds == nullptr) {
        return Status::NotFound("data source " + units[i].data_source);
      }
      groups.push_back(Group{ds, nullptr, {}});
    }
    groups[it->second].unit_indices.push_back(i);
  }

  // Transaction affinity: each touched data source pins to its txn connection.
  if (txn_source != nullptr) {
    for (auto& g : groups) {
      SPHERE_ASSIGN_OR_RETURN(g.txn_conn,
                              txn_source->TransactionConnection(g.ds->name()));
    }
  }

  ConnectionMode overall = ConnectionMode::kMemoryStrictly;
  // Slot spine comes from the arena; the Result payloads themselves are heap
  // (Status strings, ExecResult members use default allocators), so moving
  // them into the outcome below is safe.
  ArenaVector<Result<engine::ExecResult>> results;
  results.reserve(units.size());
  for (size_t i = 0; i < units.size(); ++i) {
    results.emplace_back(Status::Internal("not executed"));
  }

  // ----- Execution phase. -----
  struct Task {
    net::RemoteConnection* conn = nullptr;
    net::ConnectionPool::Lease lease;  ///< owns pooled connections
    ArenaVector<size_t> indices;
  };
  ArenaVector<Task> tasks;

  for (auto& g : groups) {
    int n = static_cast<int>(g.unit_indices.size());
    if (g.txn_conn != nullptr) {
      // All statements of this group ride the transaction's connection.
      if (n > 1) overall = ConnectionMode::kConnectionStrictly;
      Task t;
      t.conn = g.txn_conn;
      t.indices = std::move(g.unit_indices);
      tasks.push_back(std::move(t));
      continue;
    }
    int want = std::min(max_con_, n);
    // θ = ⌈#SQL / MaxCon⌉; θ > 1 means some connection executes several SQLs,
    // which forces connection-strictly mode and a memory merger.
    int theta = (n + want - 1) / want;
    if (theta > 1) overall = ConnectionMode::kConnectionStrictly;

    std::vector<net::ConnectionPool::Lease> leases;
    if (want == 1) {
      // Single connection: no batch lock needed (paper's lock-elision rule).
      leases.push_back(g.ds->pool().Acquire());
    } else {
      leases = g.ds->pool().AcquireMany(want);
    }
    // Round-robin units over the acquired connections.
    ArenaVector<Task> group_tasks(leases.size());
    for (size_t i = 0; i < leases.size(); ++i) {
      group_tasks[i].lease = std::move(leases[i]);
      group_tasks[i].conn = group_tasks[i].lease.get();
    }
    for (size_t i = 0; i < g.unit_indices.size(); ++i) {
      group_tasks[i % group_tasks.size()].indices.push_back(g.unit_indices[i]);
    }
    for (auto& t : group_tasks) {
      if (!t.indices.empty()) tasks.push_back(std::move(t));
    }
  }

  if (tasks.size() == 1) {
    RunSerial(tasks[0].conn, units, tasks[0].indices, observer, results.data(),
              tr, parent);
  } else if (pool_ != nullptr) {
    // The data sources execute their SQLs in parallel (paper Fig. 8), on the
    // persistent scheduler: every slice but the first goes to the pool, the
    // caller drains its own slice inline (so progress is guaranteed even on a
    // saturated pool — pool tasks are leaves and never block on the pool),
    // then joins on the latch. No thread is created on this path.
    Latch latch(static_cast<int>(tasks.size()) - 1);
    for (size_t i = 1; i < tasks.size(); ++i) {
      Task* task = &tasks[i];
      pool_->Submit([&, task] {
        RunSerial(task->conn, units, task->indices, observer, results.data(),
                  tr, parent);
        latch.CountDown();
      });
    }
    RunSerial(tasks[0].conn, units, tasks[0].indices, observer, results.data(),
              tr, parent);
    latch.Wait();
  } else {
    // Benchmark baseline (set_thread_pool(nullptr)): the pre-scheduler
    // spawn-per-statement dispatch.
    // analyze-exempt(raw-thread): this IS the measured ablation — the
    // spawn-per-statement baseline the shared pool is compared against
    std::vector<std::thread> threads;
    threads.reserve(tasks.size() - 1);
    for (size_t i = 1; i < tasks.size(); ++i) {
      threads.emplace_back([&, i] {
        RunSerial(tasks[i].conn, units, tasks[i].indices, observer,
                  results.data(), tr, parent);
      });
    }
    RunSerial(tasks[0].conn, units, tasks[0].indices, observer, results.data(),
              tr, parent);
    for (auto& t : threads) t.join();
  }

  ExecutionOutcome outcome;
  outcome.mode = overall;
  outcome.results.reserve(units.size());
  for (auto& r : results) {
    if (!r.ok()) return r.status();
    outcome.results.push_back(std::move(r).value());
  }
  return outcome;
}

}  // namespace sphere::core
