#include "core/execute.h"

#include <algorithm>
#include <thread>

#include "common/strings.h"

namespace sphere::core {

Status DataSourceRegistry::Register(std::unique_ptr<net::DataSource> ds) {
  std::string key = ToLower(ds->name());
  if (sources_.count(key)) {
    return Status::AlreadyExists("data source " + ds->name());
  }
  sources_[key] = std::move(ds);
  return Status::OK();
}

net::DataSource* DataSourceRegistry::Find(const std::string& name) {
  auto it = sources_.find(ToLower(name));
  return it == sources_.end() ? nullptr : it->second.get();
}

std::vector<std::string> DataSourceRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& [key, ds] : sources_) out.push_back(ds->name());
  return out;
}

namespace {

/// One data source's slice of the statement's units.
struct Group {
  net::DataSource* ds = nullptr;
  net::RemoteConnection* txn_conn = nullptr;  ///< non-null inside a transaction
  std::vector<size_t> unit_indices;
};

/// Executes a list of units serially on one connection.
void RunSerial(net::RemoteConnection* conn, const std::vector<SQLUnit>& units,
               const std::vector<size_t>& indices, UnitObserver* observer,
               std::vector<Result<engine::ExecResult>>* results) {
  for (size_t idx : indices) {
    if (observer != nullptr) {
      Status st = observer->BeforeUnit(conn, units[idx]);
      if (!st.ok()) {
        (*results)[idx] = st;
        continue;
      }
    }
    (*results)[idx] = conn->Execute(units[idx].sql, units[idx].params);
    if (observer != nullptr) {
      // Unconditional: the observer must also see failed units (to roll back
      // and report the branch); its status only overrides a success.
      Status st = observer->AfterUnit(conn, units[idx], (*results)[idx]);
      if (!st.ok() && (*results)[idx].ok()) (*results)[idx] = st;
    }
  }
}

}  // namespace

Result<ExecutionOutcome> ExecutionEngine::Execute(
    const std::vector<SQLUnit>& units, ConnectionSource* txn_source,
    UnitObserver* observer) const {
  if (units.empty()) return Status::Internal("no SQL units to execute");

  // ----- Preparation phase: group by data source. -----
  std::vector<Group> groups;
  for (size_t i = 0; i < units.size(); ++i) {
    Group* group = nullptr;
    for (auto& g : groups) {
      if (EqualsIgnoreCase(g.ds->name(), units[i].data_source)) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      net::DataSource* ds = registry_->Find(units[i].data_source);
      if (ds == nullptr) {
        return Status::NotFound("data source " + units[i].data_source);
      }
      groups.push_back(Group{ds, nullptr, {}});
      group = &groups.back();
    }
    group->unit_indices.push_back(i);
  }

  // Transaction affinity: each touched data source pins to its txn connection.
  if (txn_source != nullptr) {
    for (auto& g : groups) {
      SPHERE_ASSIGN_OR_RETURN(g.txn_conn,
                              txn_source->TransactionConnection(g.ds->name()));
    }
  }

  ConnectionMode overall = ConnectionMode::kMemoryStrictly;
  std::vector<Result<engine::ExecResult>> results;
  results.reserve(units.size());
  for (size_t i = 0; i < units.size(); ++i) {
    results.emplace_back(Status::Internal("not executed"));
  }

  // ----- Execution phase. -----
  struct Task {
    net::RemoteConnection* conn = nullptr;
    net::ConnectionPool::Lease lease;  ///< owns pooled connections
    std::vector<size_t> indices;
  };
  std::vector<Task> tasks;

  for (auto& g : groups) {
    int n = static_cast<int>(g.unit_indices.size());
    if (g.txn_conn != nullptr) {
      // All statements of this group ride the transaction's connection.
      if (n > 1) overall = ConnectionMode::kConnectionStrictly;
      Task t;
      t.conn = g.txn_conn;
      t.indices = g.unit_indices;
      tasks.push_back(std::move(t));
      continue;
    }
    int want = std::min(max_con_, n);
    // θ = ⌈#SQL / MaxCon⌉; θ > 1 means some connection executes several SQLs,
    // which forces connection-strictly mode and a memory merger.
    int theta = (n + want - 1) / want;
    if (theta > 1) overall = ConnectionMode::kConnectionStrictly;

    std::vector<net::ConnectionPool::Lease> leases;
    if (want == 1) {
      // Single connection: no batch lock needed (paper's lock-elision rule).
      leases.push_back(g.ds->pool().Acquire());
    } else {
      leases = g.ds->pool().AcquireMany(want);
    }
    // Round-robin units over the acquired connections.
    std::vector<Task> group_tasks(leases.size());
    for (size_t i = 0; i < leases.size(); ++i) {
      group_tasks[i].lease = std::move(leases[i]);
      group_tasks[i].conn = group_tasks[i].lease.get();
    }
    for (size_t i = 0; i < g.unit_indices.size(); ++i) {
      group_tasks[i % group_tasks.size()].indices.push_back(g.unit_indices[i]);
    }
    for (auto& t : group_tasks) {
      if (!t.indices.empty()) tasks.push_back(std::move(t));
    }
  }

  if (tasks.size() == 1) {
    RunSerial(tasks[0].conn, units, tasks[0].indices, observer, &results);
  } else {
    // The data sources execute their SQLs in parallel (paper Fig. 8).
    std::vector<std::thread> threads;
    threads.reserve(tasks.size() - 1);
    for (size_t i = 1; i < tasks.size(); ++i) {
      threads.emplace_back([&, i] {
        RunSerial(tasks[i].conn, units, tasks[i].indices, observer, &results);
      });
    }
    RunSerial(tasks[0].conn, units, tasks[0].indices, observer, &results);
    for (auto& t : threads) t.join();
  }

  ExecutionOutcome outcome;
  outcome.mode = overall;
  outcome.results.reserve(units.size());
  for (auto& r : results) {
    if (!r.ok()) return r.status();
    outcome.results.push_back(std::move(r).value());
  }
  return outcome;
}

}  // namespace sphere::core
