#include "core/statement_cache.h"

namespace sphere::core {

std::shared_ptr<const RoutedPlan> StatementPlan::routed(
    uint64_t current_epoch) const {
  MutexLock lk(mu_);
  if (routed_ == nullptr || routed_->rule_epoch != current_epoch) {
    return nullptr;
  }
  return routed_;
}

void StatementPlan::StoreRouted(std::shared_ptr<const RoutedPlan> plan) const {
  MutexLock lk(mu_);
  routed_ = std::move(plan);
}

std::shared_ptr<const StatementPlan> StatementCache::Get(
    sql::DialectType dialect, std::string_view sql) {
  std::optional<std::shared_ptr<const StatementPlan>> hit = cache_.Get(sql);
  if (!hit.has_value()) return nullptr;
  if ((*hit)->dialect() != dialect) {
    // Same text parsed under another dialect: not usable. Drop the entry so
    // the caller's re-parse replaces it. (Counted as a hit then a miss on the
    // replacing Put's next lookup; cross-dialect text collisions are a
    // non-event in practice since a runtime owns one dialect.)
    cache_.Erase(sql);
    return nullptr;
  }
  return *hit;
}

void StatementCache::Put(sql::DialectType dialect, std::string_view sql,
                         std::shared_ptr<const StatementPlan> plan) {
  if (plan == nullptr || plan->dialect() != dialect) return;
  cache_.Put(sql, std::move(plan));
}

void StatementCache::Invalidate() {
  // Bump first: an executor that routed under the old rule and publishes its
  // RoutedPlan after this line stores a stale epoch, which routed() rejects.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  cache_.Clear();
}

}  // namespace sphere::core
