#ifndef SPHERE_CORE_STATEMENT_CACHE_H_
#define SPHERE_CORE_STATEMENT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/lru_cache.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/strings.h"
#include "core/rewrite.h"
#include "core/route.h"
#include "sql/dialect.h"
#include "sql/parser.h"

namespace sphere::core {

/// The routed + rewritten form of one statement under one rule epoch.
///
/// For a statement whose physical SQL does not depend on parameter values
/// (today: zero-parameter SELECTs), the route and rewrite results are fully
/// deterministic given the sharding rule, so repeat executions can reuse them
/// wholesale and jump straight to the executor. The epoch ties the plan to
/// the rule it was computed under; SetRule bumps the epoch, which silently
/// retires every routed plan still in flight.
struct RoutedPlan {
  uint64_t rule_epoch = 0;
  RouteResult route;
  RewriteResult rewritten;
};

/// One cached statement: the shared immutable AST plus per-statement
/// metadata that stays valid when parameter values change (the parameter
/// count, the statement kind via the AST, and — when eligible — the full
/// routed plan). Instances are immutable to callers and shared across
/// sessions via shared_ptr; the lazily published RoutedPlan is the only
/// mutable slot and is guarded by its own mutex.
class StatementPlan {
 public:
  StatementPlan(sql::SharedStatement parsed, sql::DialectType dialect)
      : stmt_(std::move(parsed.stmt)), param_count_(parsed.param_count),
        dialect_(dialect) {}

  const sql::Statement& stmt() const { return *stmt_; }
  std::shared_ptr<const sql::Statement> shared_stmt() const { return stmt_; }
  int param_count() const { return param_count_; }
  sql::DialectType dialect() const { return dialect_; }

  /// The routed plan if one was published for `current_epoch`, else null.
  std::shared_ptr<const RoutedPlan> routed(uint64_t current_epoch) const
      SPHERE_EXCLUDES(mu_);

  /// Publishes a routed plan (last writer wins; concurrent executions may
  /// race to compute the same plan, which is benign).
  void StoreRouted(std::shared_ptr<const RoutedPlan> plan) const
      SPHERE_EXCLUDES(mu_);

 private:
  std::shared_ptr<const sql::Statement> stmt_;
  const int param_count_;
  const sql::DialectType dialect_;
  mutable Mutex mu_{LockRank::kCore, "core/statement_plan.routed"};
  mutable std::shared_ptr<const RoutedPlan> routed_ SPHERE_GUARDED_BY(mu_);
};

/// The SQL parse/plan cache (the reproduction of the original system's SQL
/// parse result cache): maps (dialect, SQL text) to a StatementPlan so
/// repeated statements skip lexing and parsing entirely, and zero-parameter
/// SELECTs additionally skip routing and rewriting.
///
/// Sharded-lock LRU underneath; capacity-bounded (capacity 0 disables
/// caching); hit/miss/eviction counters exposed through stats(). Invalidate()
/// — called on SetRule and any other metadata change — clears the cache and
/// bumps the rule epoch that retires outstanding RoutedPlans.
class StatementCache {
 public:
  explicit StatementCache(size_t capacity, size_t num_shards = 8)
      : cache_(capacity, num_shards) {
    // Registry publication (DESIGN.md §13): snapshot-time probes read the
    // shard atomics in place; the CacheStats accessor below survives only
    // as a compat shim for per-instance test accounting. Several runtimes
    // in one process share the names — last construction wins, and each
    // destructor removes only its own entries.
    auto& registry = metrics::Registry::Instance();
    registry.PublishProbe("statement_cache.hits", this, [this] {
      return static_cast<int64_t>(cache_.stats().hits);
    });
    registry.PublishProbe("statement_cache.misses", this, [this] {
      return static_cast<int64_t>(cache_.stats().misses);
    });
    registry.PublishProbe("statement_cache.evictions", this, [this] {
      return static_cast<int64_t>(cache_.stats().evictions);
    });
    registry.PublishProbe("statement_cache.entries", this, [this] {
      return static_cast<int64_t>(cache_.stats().entries);
    });
  }

  ~StatementCache() { metrics::Registry::Instance().UnpublishProbes(this); }

  StatementCache(const StatementCache&) = delete;
  StatementCache& operator=(const StatementCache&) = delete;

  std::shared_ptr<const StatementPlan> Get(sql::DialectType dialect,
                                           std::string_view sql);
  void Put(sql::DialectType dialect, std::string_view sql,
           std::shared_ptr<const StatementPlan> plan);

  /// Drops all entries and retires every outstanding routed plan.
  void Invalidate();

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  size_t capacity() const { return cache_.capacity(); }
  CacheStats stats() const { return cache_.stats(); }

 private:
  // Keyed by SQL text alone (no per-lookup key allocation); the dialect half
  // of the logical (dialect, SQL) key lives in the plan and is verified on
  // every hit, so a same-text statement of another dialect displaces rather
  // than aliases the entry. A runtime owns one dialect, so in practice the
  // check never fires.
  ShardedLRUCache<std::string, std::shared_ptr<const StatementPlan>,
                  TransparentStringHash>
      cache_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace sphere::core

#endif  // SPHERE_CORE_STATEMENT_CACHE_H_
