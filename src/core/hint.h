#ifndef SPHERE_CORE_HINT_H_
#define SPHERE_CORE_HINT_H_

#include <optional>

#include "common/value.h"

namespace sphere::core {

/// Thread-local sharding hints: lets an application force routing decisions
/// that cannot be derived from the SQL itself (HINT_INLINE algorithm), and
/// flag traffic for the shadow database. RAII-style: clear with Clear() or
/// the scoped guard.
class HintManager {
 public:
  /// Value consumed by HINT_INLINE database/table algorithms.
  static void SetShardingValue(Value v);
  static std::optional<Value> GetShardingValue();

  /// Marks subsequent statements on this thread as test traffic for the
  /// shadow DB feature.
  static void SetShadow(bool shadow);
  static bool IsShadow();

  static void Clear();

  /// Scoped hint: restores the previous state on destruction.
  class Scope {
   public:
    Scope();
    ~Scope();

   private:
    std::optional<Value> saved_value_;
    bool saved_shadow_;
  };
};

}  // namespace sphere::core

#endif  // SPHERE_CORE_HINT_H_
