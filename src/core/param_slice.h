#ifndef SPHERE_CORE_PARAM_SLICE_H_
#define SPHERE_CORE_PARAM_SLICE_H_

#include <utility>
#include <vector>

#include "common/value.h"
#include "sql/ast.h"

namespace sphere::core {

/// Compacts `?` placeholders for one SQL unit of a split statement.
///
/// When the rewriter splits a batched INSERT across shards, each unit keeps
/// only a subset of the VALUES rows, so the original parameter indices become
/// sparse. Instead of materializing the values into literals (which makes
/// every execution a unique text — a guaranteed node parse-cache miss), the
/// slicer renumbers the placeholders it encounters to 0..k-1 in order of
/// first appearance and collects the matching values into a per-unit
/// parameter slice. A parameter referenced twice maps to one slot.
class ParamSlicer {
 public:
  explicit ParamSlicer(const std::vector<Value>& source) : source_(&source) {}

  /// Clones `e` with every ParamExpr renumbered into this unit's slice.
  sql::ExprPtr Remap(const sql::Expr* e) {
    if (e == nullptr) return nullptr;
    sql::ExprPtr clone = e->Clone();
    RemapInPlace(clone.get());
    return clone;
  }

  /// The values backing the renumbered placeholders, in slot order.
  std::vector<Value> TakeParams() { return std::move(params_); }

 private:
  void RemapInPlace(sql::Expr* e) {
    if (e == nullptr) return;
    switch (e->kind()) {
      case sql::ExprKind::kParam: {
        auto* p = static_cast<sql::ParamExpr*>(e);
        p->index = SlotOf(p->index);
        break;
      }
      case sql::ExprKind::kUnary:
        RemapInPlace(static_cast<sql::UnaryExpr*>(e)->child.get());
        break;
      case sql::ExprKind::kBinary: {
        auto* b = static_cast<sql::BinaryExpr*>(e);
        RemapInPlace(b->left.get());
        RemapInPlace(b->right.get());
        break;
      }
      case sql::ExprKind::kBetween: {
        auto* b = static_cast<sql::BetweenExpr*>(e);
        RemapInPlace(b->expr.get());
        RemapInPlace(b->low.get());
        RemapInPlace(b->high.get());
        break;
      }
      case sql::ExprKind::kIn: {
        auto* in = static_cast<sql::InExpr*>(e);
        RemapInPlace(in->expr.get());
        for (auto& i : in->list) RemapInPlace(i.get());
        break;
      }
      case sql::ExprKind::kFuncCall:
        for (auto& a : static_cast<sql::FuncCallExpr*>(e)->args) {
          RemapInPlace(a.get());
        }
        break;
      case sql::ExprKind::kCase: {
        auto* c = static_cast<sql::CaseExpr*>(e);
        for (auto& [when, then] : c->branches) {
          RemapInPlace(when.get());
          RemapInPlace(then.get());
        }
        RemapInPlace(c->else_expr.get());
        break;
      }
      default:
        break;
    }
  }

  int SlotOf(int source_index) {
    if (source_index < 0 ||
        static_cast<size_t>(source_index) >= source_->size()) {
      // Out-of-range placeholder: bind a NULL slot so execution matches the
      // inlining rewrite's NULL materialization.
      params_.push_back(Value::Null());
      return static_cast<int>(params_.size()) - 1;
    }
    if (mapping_.size() < source_->size()) {
      mapping_.resize(source_->size(), -1);
    }
    int& slot = mapping_[static_cast<size_t>(source_index)];
    if (slot < 0) {
      params_.push_back((*source_)[static_cast<size_t>(source_index)]);
      slot = static_cast<int>(params_.size()) - 1;
    }
    return slot;
  }

  const std::vector<Value>* source_;
  std::vector<Value> params_;
  std::vector<int> mapping_;  ///< source index -> slice slot, -1 unseen
};

}  // namespace sphere::core

#endif  // SPHERE_CORE_PARAM_SLICE_H_
