#include "core/route.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "core/hint.h"

namespace sphere::core {

namespace {

/// True when a condition's qualifier can refer to this table (matches the
/// logic table name or its alias, or is unqualified).
bool Applies(const sql::ColumnCondition& cond, const std::string& logic,
             const sql::TableRef* ref) {
  if (cond.table.empty()) return true;
  if (EqualsIgnoreCase(cond.table, logic)) return true;
  return ref != nullptr && !ref->alias.empty() &&
         EqualsIgnoreCase(cond.table, ref->alias);
}

const sql::ColumnCondition* FindCondition(const sql::ConditionGroup& group,
                                          const std::string& column,
                                          const std::string& logic,
                                          const sql::TableRef* ref) {
  for (const auto& cond : group) {
    if (EqualsIgnoreCase(cond.column, column) && Applies(cond, logic, ref)) {
      return &cond;
    }
  }
  return nullptr;
}

void AddUnique(std::vector<std::string>* out, const std::string& v) {
  if (std::find(out->begin(), out->end(), v) == out->end()) out->push_back(v);
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

const std::string* RouteUnit::ActualOf(const std::string& logic) const {
  for (const auto& m : mappings) {
    if (EqualsIgnoreCase(m.logic, logic)) return &m.actual;
  }
  return nullptr;
}

Result<std::vector<std::string>> RouteEngine::ShardLevel(
    const ShardingStrategyConfig& strategy, const ShardingAlgorithm* algorithm,
    const std::vector<std::string>& targets, const sql::ConditionGroup& group,
    const TableContext& table) const {
  if (strategy.empty() || algorithm == nullptr) return targets;

  // Hint strategy: value comes from the thread-local HintManager.
  if (std::string(algorithm->Type()) == "HINT_INLINE") {
    auto hint = HintManager::GetShardingValue();
    if (!hint.has_value()) return targets;
    SPHERE_ASSIGN_OR_RETURN(std::string t, algorithm->DoSharding(targets, *hint));
    return std::vector<std::string>{t};
  }

  // Complex (multi-column) strategy: needs equality on every column.
  if (strategy.complex()) {
    std::map<std::string, Value> values;
    for (const auto& col : strategy.columns) {
      const sql::ColumnCondition* cond =
          FindCondition(group, col, table.logic, table.ref);
      if (cond == nullptr || cond->kind != sql::ColumnCondition::Kind::kEqual) {
        return targets;  // insufficient information: full level
      }
      values[col] = cond->values[0];
    }
    SPHERE_ASSIGN_OR_RETURN(std::string t,
                            algorithm->DoComplexSharding(targets, values));
    return std::vector<std::string>{t};
  }

  const std::string& column = strategy.columns.empty() ? "" : strategy.columns[0];
  const sql::ColumnCondition* cond =
      FindCondition(group, column, table.logic, table.ref);
  if (cond == nullptr) return targets;

  switch (cond->kind) {
    case sql::ColumnCondition::Kind::kEqual:
    case sql::ColumnCondition::Kind::kIn: {
      std::vector<std::string> out;
      for (const Value& v : cond->values) {
        SPHERE_ASSIGN_OR_RETURN(std::string t, algorithm->DoSharding(targets, v));
        AddUnique(&out, t);
      }
      return out;
    }
    case sql::ColumnCondition::Kind::kRange:
      return algorithm->DoRangeSharding(targets, cond->low, cond->high);
  }
  return targets;
}

Result<std::vector<size_t>> RouteEngine::RouteTable(
    const TableContext& table,
    const ArenaVector<sql::ConditionGroup>& groups) const {
  const TableRule* rule = table.rule;
  std::set<size_t> result;

  ArenaVector<sql::ConditionGroup> effective = groups;
  if (effective.empty()) effective.emplace_back();  // no WHERE: full route

  for (const auto& group : effective) {
    SPHERE_ASSIGN_OR_RETURN(
        std::vector<std::string> ds_set,
        ShardLevel(rule->database_strategy(), rule->database_algorithm(),
                   rule->data_sources(), group, table));
    SPHERE_ASSIGN_OR_RETURN(
        std::vector<std::string> table_set,
        ShardLevel(rule->table_strategy(), rule->table_algorithm(),
                   rule->actual_tables(), group, table));
    const auto& nodes = rule->actual_nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (Contains(ds_set, nodes[i].data_source) &&
          Contains(table_set, nodes[i].table)) {
        result.insert(i);
      }
    }
  }
  if (result.empty()) {
    return Status::RouteError("no data node matched for table " + table.logic);
  }
  return std::vector<size_t>(result.begin(), result.end());
}

Result<RouteResult> RouteEngine::RouteSelectLike(
    const sql::Statement& stmt, const std::vector<TableContext>& tables,
    const sql::Expr* where, const std::vector<Value>& params) const {
  (void)stmt;
  std::vector<const TableContext*> sharded;
  std::vector<const TableContext*> broadcast;
  std::vector<const TableContext*> single;
  for (const auto& t : tables) {
    if (t.rule != nullptr) {
      sharded.push_back(&t);
    } else if (rule_->IsBroadcastTable(t.logic)) {
      broadcast.push_back(&t);
    } else {
      single.push_back(&t);
    }
  }

  RouteResult result;
  if (sharded.empty()) {
    if (!broadcast.empty() && single.empty()) {
      // A read on broadcast tables can go to any node; writes must reach all.
      bool is_write = stmt.kind() != sql::StatementKind::kSelect;
      std::vector<std::string> all_ds = rule_->AllDataSources();
      if (all_ds.empty()) {
        return Status::RouteError("no data sources configured");
      }
      if (is_write) {
        result.type = RouteType::kBroadcast;
        for (const auto& ds : all_ds) {
          result.units.push_back(RouteUnit{ds, {}, {}});
        }
      } else {
        result.type = RouteType::kUnicast;
        result.units.push_back(RouteUnit{all_ds[0], {}, {}});
      }
      return result;
    }
    if (rule_->default_data_source().empty()) {
      return Status::RouteError("no rule for table and no default data source");
    }
    result.type = RouteType::kSingle;
    result.units.push_back(RouteUnit{rule_->default_data_source(), {}, {}});
    return result;
  }

  if (!single.empty()) {
    return Status::RouteError(
        "cannot join sharded table with unsharded single table " +
        single[0]->logic);
  }

  auto groups = sql::ExtractConditionGroups(where, params);

  if (sharded.size() == 1) {
    // Standard route.
    const TableContext& t = *sharded[0];
    SPHERE_ASSIGN_OR_RETURN(std::vector<size_t> nodes, RouteTable(t, groups));
    result.type = RouteType::kStandard;
    for (size_t idx : nodes) {
      const DataNode& node = t.rule->actual_nodes()[idx];
      RouteUnit unit;
      unit.data_source = node.data_source;
      unit.mappings.push_back({t.logic, node.table});
      result.units.push_back(std::move(unit));
    }
    return result;
  }

  // Multiple sharded tables: binding route when every pair is bound.
  bool all_binding = true;
  for (size_t i = 1; i < sharded.size(); ++i) {
    if (!rule_->IsBinding(sharded[0]->logic, sharded[i]->logic)) {
      all_binding = false;
      break;
    }
  }

  if (all_binding) {
    const TableContext& primary = *sharded[0];
    SPHERE_ASSIGN_OR_RETURN(std::vector<size_t> nodes,
                            RouteTable(primary, groups));
    result.type = RouteType::kStandard;
    for (size_t idx : nodes) {
      const DataNode& node = primary.rule->actual_nodes()[idx];
      RouteUnit unit;
      unit.data_source = node.data_source;
      unit.mappings.push_back({primary.logic, node.table});
      // Binding tables align node-for-node (validated at rule build).
      for (size_t i = 1; i < sharded.size(); ++i) {
        const DataNode& bound = sharded[i]->rule->actual_nodes()[idx];
        unit.mappings.push_back({sharded[i]->logic, bound.table});
      }
      result.units.push_back(std::move(unit));
    }
    return result;
  }

  // Cartesian route: per data source, cross product of each table's routed
  // actual tables in that data source.
  result.type = RouteType::kCartesian;
  std::vector<std::vector<size_t>> routed;
  routed.reserve(sharded.size());
  for (const auto* t : sharded) {
    SPHERE_ASSIGN_OR_RETURN(std::vector<size_t> nodes, RouteTable(*t, groups));
    routed.push_back(std::move(nodes));
  }
  for (const std::string& ds : rule_->AllDataSources()) {
    // Tables of each logic table routed onto this data source.
    std::vector<std::vector<const DataNode*>> per_table;
    bool all_present = true;
    for (size_t i = 0; i < sharded.size(); ++i) {
      std::vector<const DataNode*> here;
      for (size_t idx : routed[i]) {
        const DataNode& node = sharded[i]->rule->actual_nodes()[idx];
        if (node.data_source == ds) here.push_back(&node);
      }
      if (here.empty()) {
        all_present = false;
        break;
      }
      per_table.push_back(std::move(here));
    }
    if (!all_present) continue;
    // Cross product (odometer enumeration).
    std::vector<size_t> cursor(per_table.size(), 0);
    bool exhausted = false;
    while (!exhausted) {
      RouteUnit unit;
      unit.data_source = ds;
      for (size_t i = 0; i < per_table.size(); ++i) {
        unit.mappings.push_back({sharded[i]->logic, per_table[i][cursor[i]]->table});
      }
      result.units.push_back(std::move(unit));
      int level = static_cast<int>(per_table.size()) - 1;
      while (level >= 0) {
        size_t l = static_cast<size_t>(level);
        if (++cursor[l] < per_table[l].size()) break;
        cursor[l] = 0;
        --level;
      }
      if (level < 0) exhausted = true;
    }
  }
  if (result.units.empty()) {
    return Status::RouteError("cartesian route produced no units");
  }
  return result;
}

Result<RouteResult> RouteEngine::RouteInsert(
    const sql::InsertStatement& stmt, const std::vector<Value>& params) const {
  const TableRule* table_rule = rule_->FindTableRule(stmt.table.name);
  RouteResult result;

  if (table_rule == nullptr) {
    if (rule_->IsBroadcastTable(stmt.table.name)) {
      result.type = RouteType::kBroadcast;
      for (const auto& ds : rule_->AllDataSources()) {
        RouteUnit unit{ds, {}, {}};
        for (size_t r = 0; r < stmt.rows.size(); ++r) unit.insert_rows.push_back(r);
        result.units.push_back(std::move(unit));
      }
      return result;
    }
    if (rule_->default_data_source().empty()) {
      return Status::RouteError("no rule for table " + stmt.table.name);
    }
    result.type = RouteType::kSingle;
    RouteUnit unit{rule_->default_data_source(), {}, {}};
    for (size_t r = 0; r < stmt.rows.size(); ++r) unit.insert_rows.push_back(r);
    result.units.push_back(std::move(unit));
    return result;
  }

  // Sharded insert: route each VALUES row by its sharding values.
  result.type = RouteType::kStandard;
  std::map<size_t, std::vector<size_t>> rows_by_node;  // node index -> rows
  TableContext ctx{&stmt.table, stmt.table.name, table_rule};
  for (size_t r = 0; r < stmt.rows.size(); ++r) {
    // Build a synthetic equality condition group from this row's values.
    sql::ConditionGroup group;
    auto add_value = [&](const std::string& column) -> Status {
      for (size_t c = 0; c < stmt.columns.size(); ++c) {
        if (!EqualsIgnoreCase(stmt.columns[c], column)) continue;
        auto v = sql::EvalConstExpr(stmt.rows[r][c].get(), params);
        if (!v.has_value()) {
          return Status::RouteError("non-constant sharding value in INSERT");
        }
        sql::ColumnCondition cond;
        cond.column = column;
        cond.kind = sql::ColumnCondition::Kind::kEqual;
        cond.values.push_back(*v);
        group.push_back(std::move(cond));
        return Status::OK();
      }
      return Status::RouteError("INSERT misses sharding column " + column);
    };
    for (const auto& col : table_rule->database_strategy().columns) {
      SPHERE_RETURN_NOT_OK(add_value(col));
    }
    for (const auto& col : table_rule->table_strategy().columns) {
      SPHERE_RETURN_NOT_OK(add_value(col));
    }
    SPHERE_ASSIGN_OR_RETURN(std::vector<size_t> nodes, RouteTable(ctx, {group}));
    if (nodes.size() != 1) {
      return Status::RouteError("INSERT row routed to " +
                                std::to_string(nodes.size()) + " nodes");
    }
    rows_by_node[nodes[0]].push_back(r);
  }
  for (const auto& [node_idx, rows] : rows_by_node) {
    const DataNode& node = table_rule->actual_nodes()[node_idx];
    RouteUnit unit;
    unit.data_source = node.data_source;
    unit.mappings.push_back({stmt.table.name, node.table});
    unit.insert_rows = rows;
    result.units.push_back(std::move(unit));
  }
  return result;
}

Result<RouteResult> RouteEngine::RouteDDL(const std::string& table) const {
  const TableRule* table_rule = rule_->FindTableRule(table);
  RouteResult result;
  if (table_rule != nullptr) {
    // One unit per actual node: the DDL must reach every physical table.
    result.type = RouteType::kBroadcast;
    for (const auto& node : table_rule->actual_nodes()) {
      RouteUnit unit;
      unit.data_source = node.data_source;
      unit.mappings.push_back({table, node.table});
      result.units.push_back(std::move(unit));
    }
    return result;
  }
  if (rule_->IsBroadcastTable(table)) {
    result.type = RouteType::kBroadcast;
    for (const auto& ds : rule_->AllDataSources()) {
      result.units.push_back(RouteUnit{ds, {}, {}});
    }
    return result;
  }
  if (rule_->default_data_source().empty()) {
    return Status::RouteError("no rule and no default data source for " + table);
  }
  result.type = RouteType::kSingle;
  result.units.push_back(RouteUnit{rule_->default_data_source(), {}, {}});
  return result;
}

Result<RouteResult> RouteEngine::Route(const sql::Statement& stmt,
                                       const std::vector<Value>& params) const {
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect: {
      const auto& sel = static_cast<const sql::SelectStatement&>(stmt);
      if (sel.from.empty()) {
        // SELECT without FROM: any single data source will do.
        RouteResult r;
        r.type = RouteType::kUnicast;
        std::vector<std::string> ds = rule_->AllDataSources();
        if (ds.empty() && !rule_->default_data_source().empty()) {
          ds.push_back(rule_->default_data_source());
        }
        if (ds.empty()) return Status::RouteError("no data sources");
        r.units.push_back(RouteUnit{ds[0], {}, {}});
        return r;
      }
      std::vector<TableContext> tables;
      for (const sql::TableRef* ref : sel.AllTables()) {
        tables.push_back(
            TableContext{ref, ref->name, rule_->FindTableRule(ref->name)});
      }
      return RouteSelectLike(stmt, tables, sel.where.get(), params);
    }
    case sql::StatementKind::kInsert:
      return RouteInsert(static_cast<const sql::InsertStatement&>(stmt), params);
    case sql::StatementKind::kUpdate: {
      const auto& up = static_cast<const sql::UpdateStatement&>(stmt);
      std::vector<TableContext> tables{
          TableContext{&up.table, up.table.name, rule_->FindTableRule(up.table.name)}};
      return RouteSelectLike(stmt, tables, up.where.get(), params);
    }
    case sql::StatementKind::kDelete: {
      const auto& del = static_cast<const sql::DeleteStatement&>(stmt);
      std::vector<TableContext> tables{
          TableContext{&del.table, del.table.name,
                       rule_->FindTableRule(del.table.name)}};
      return RouteSelectLike(stmt, tables, del.where.get(), params);
    }
    case sql::StatementKind::kCreateTable:
      return RouteDDL(static_cast<const sql::CreateTableStatement&>(stmt).table);
    case sql::StatementKind::kDropTable:
      return RouteDDL(static_cast<const sql::DropTableStatement&>(stmt).table);
    case sql::StatementKind::kTruncate:
      return RouteDDL(static_cast<const sql::TruncateStatement&>(stmt).table);
    case sql::StatementKind::kCreateIndex:
      return RouteDDL(static_cast<const sql::CreateIndexStatement&>(stmt).table);
    default:
      return Status::RouteError("statement kind is not routable");
  }
}

}  // namespace sphere::core
