#include "core/rewrite.h"

#include <algorithm>

#include "common/strings.h"
#include "core/param_slice.h"
#include "engine/pipeline.h"
#include "sql/condition.h"

namespace sphere::core {

namespace {

/// Recursively replaces column qualifiers equal to a logic table name with
/// the actual name (alias qualifiers are untouched — aliases stay valid).
void RenameQualifiers(sql::Expr* e, const RouteUnit& unit) {
  if (e == nullptr) return;
  switch (e->kind()) {
    case sql::ExprKind::kColumnRef: {
      auto* c = static_cast<sql::ColumnRefExpr*>(e);
      if (!c->table.empty()) {
        if (const std::string* actual = unit.ActualOf(c->table)) {
          c->table = *actual;
        }
      }
      break;
    }
    case sql::ExprKind::kUnary:
      RenameQualifiers(static_cast<sql::UnaryExpr*>(e)->child.get(), unit);
      break;
    case sql::ExprKind::kBinary: {
      auto* b = static_cast<sql::BinaryExpr*>(e);
      RenameQualifiers(b->left.get(), unit);
      RenameQualifiers(b->right.get(), unit);
      break;
    }
    case sql::ExprKind::kBetween: {
      auto* b = static_cast<sql::BetweenExpr*>(e);
      RenameQualifiers(b->expr.get(), unit);
      RenameQualifiers(b->low.get(), unit);
      RenameQualifiers(b->high.get(), unit);
      break;
    }
    case sql::ExprKind::kIn: {
      auto* in = static_cast<sql::InExpr*>(e);
      RenameQualifiers(in->expr.get(), unit);
      for (auto& i : in->list) RenameQualifiers(i.get(), unit);
      break;
    }
    case sql::ExprKind::kFuncCall: {
      auto* f = static_cast<sql::FuncCallExpr*>(e);
      for (auto& a : f->args) RenameQualifiers(a.get(), unit);
      break;
    }
    case sql::ExprKind::kCase: {
      auto* c = static_cast<sql::CaseExpr*>(e);
      for (auto& [w, t] : c->branches) {
        RenameQualifiers(w.get(), unit);
        RenameQualifiers(t.get(), unit);
      }
      RenameQualifiers(c->else_expr.get(), unit);
      break;
    }
    default:
      break;
  }
}

void RenameTableRef(sql::TableRef* ref, const RouteUnit& unit) {
  if (const std::string* actual = unit.ActualOf(ref->name)) {
    // Keep column references working: an unaliased logic table is usually
    // referenced by its logic name, so alias the actual table back to it...
    // except that dropping the alias matches ShardingSphere (qualifiers are
    // renamed too). We rename and leave existing aliases alone.
    ref->name = *actual;
  }
}

}  // namespace

void ApplyTableMappings(sql::Statement* stmt, const RouteUnit& unit) {
  switch (stmt->kind()) {
    case sql::StatementKind::kSelect: {
      auto* sel = static_cast<sql::SelectStatement*>(stmt);
      for (auto& t : sel->from) RenameTableRef(&t, unit);
      for (auto& j : sel->joins) {
        RenameTableRef(&j.table, unit);
        RenameQualifiers(j.on.get(), unit);
      }
      for (auto& item : sel->items) {
        if (item.is_star && !item.star_qualifier.empty()) {
          if (const std::string* actual = unit.ActualOf(item.star_qualifier)) {
            item.star_qualifier = *actual;
          }
        }
        RenameQualifiers(item.expr.get(), unit);
      }
      RenameQualifiers(sel->where.get(), unit);
      for (auto& g : sel->group_by) RenameQualifiers(g.get(), unit);
      RenameQualifiers(sel->having.get(), unit);
      for (auto& o : sel->order_by) RenameQualifiers(o.expr.get(), unit);
      break;
    }
    case sql::StatementKind::kInsert: {
      auto* ins = static_cast<sql::InsertStatement*>(stmt);
      if (const std::string* actual = unit.ActualOf(ins->table.name)) {
        ins->table.name = *actual;
      }
      break;
    }
    case sql::StatementKind::kUpdate: {
      auto* up = static_cast<sql::UpdateStatement*>(stmt);
      if (const std::string* actual = unit.ActualOf(up->table.name)) {
        up->table.name = *actual;
      }
      for (auto& a : up->assignments) RenameQualifiers(a.value.get(), unit);
      RenameQualifiers(up->where.get(), unit);
      break;
    }
    case sql::StatementKind::kDelete: {
      auto* del = static_cast<sql::DeleteStatement*>(stmt);
      if (const std::string* actual = unit.ActualOf(del->table.name)) {
        del->table.name = *actual;
      }
      RenameQualifiers(del->where.get(), unit);
      break;
    }
    case sql::StatementKind::kCreateTable: {
      auto* ct = static_cast<sql::CreateTableStatement*>(stmt);
      if (const std::string* actual = unit.ActualOf(ct->table)) {
        ct->table = *actual;
      }
      break;
    }
    case sql::StatementKind::kDropTable: {
      auto* dt = static_cast<sql::DropTableStatement*>(stmt);
      if (const std::string* actual = unit.ActualOf(dt->table)) {
        dt->table = *actual;
      }
      break;
    }
    case sql::StatementKind::kTruncate: {
      auto* tr = static_cast<sql::TruncateStatement*>(stmt);
      if (const std::string* actual = unit.ActualOf(tr->table)) {
        tr->table = *actual;
      }
      break;
    }
    case sql::StatementKind::kCreateIndex: {
      auto* ci = static_cast<sql::CreateIndexStatement*>(stmt);
      if (const std::string* actual = unit.ActualOf(ci->table)) {
        ci->index_name += "_" + *actual;  // keep index names unique per node
        ci->table = *actual;
      }
      break;
    }
    default:
      break;
  }
}

namespace {

/// Finds the select item matching an ORDER BY / GROUP BY expression.
/// Returns -1 when the expression is not in the select list.
int FindItemIndex(const std::vector<sql::SelectItem>& items,
                  const sql::Expr* expr, const sql::Dialect& dialect) {
  if (expr->kind() == sql::ExprKind::kColumnRef) {
    const auto* c = static_cast<const sql::ColumnRefExpr*>(expr);
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].is_star) continue;
      if (!items[i].alias.empty() && EqualsIgnoreCase(items[i].alias, c->column)) {
        return static_cast<int>(i);
      }
      if (items[i].expr->kind() == sql::ExprKind::kColumnRef) {
        const auto* ic =
            static_cast<const sql::ColumnRefExpr*>(items[i].expr.get());
        if (EqualsIgnoreCase(ic->column, c->column) &&
            (c->table.empty() || ic->table.empty() ||
             EqualsIgnoreCase(ic->table, c->table))) {
          return static_cast<int>(i);
        }
      }
    }
    return -1;
  }
  std::string key = expr->ToSQL(dialect);
  for (size_t i = 0; i < items.size(); ++i) {
    if (!items[i].is_star && items[i].expr->ToSQL(dialect) == key) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Top-level aggregate of a select item, or nullptr.
const sql::FuncCallExpr* TopLevelAggregate(const sql::SelectItem& item) {
  if (item.is_star || item.expr == nullptr) return nullptr;
  if (item.expr->kind() != sql::ExprKind::kFuncCall) return nullptr;
  const auto* f = static_cast<const sql::FuncCallExpr*>(item.expr.get());
  return f->IsAggregate() ? f : nullptr;
}

std::vector<sql::ExprPtr> CloneArgs(const sql::FuncCallExpr* f) {
  std::vector<sql::ExprPtr> args;
  args.reserve(f->args.size());
  for (const auto& a : f->args) args.push_back(a->Clone());
  return args;
}

AggKind AggKindOf(const std::string& name) {
  if (EqualsIgnoreCase(name, "COUNT")) return AggKind::kCount;
  if (EqualsIgnoreCase(name, "SUM")) return AggKind::kSum;
  if (EqualsIgnoreCase(name, "MIN")) return AggKind::kMin;
  if (EqualsIgnoreCase(name, "MAX")) return AggKind::kMax;
  return AggKind::kAvg;
}

/// Replaces every ? placeholder in the (owned) tree with its literal value,
/// recursing into compound expressions — `? + 1` must inline too, not just a
/// bare top-level placeholder.
void InlineParamsInPlace(sql::ExprPtr* e, const std::vector<Value>& params) {
  if (*e == nullptr) return;
  switch ((*e)->kind()) {
    case sql::ExprKind::kParam: {
      int idx = static_cast<const sql::ParamExpr*>(e->get())->index;
      Value v = (idx >= 0 && static_cast<size_t>(idx) < params.size())
                    ? params[static_cast<size_t>(idx)]
                    : Value::Null();
      *e = std::make_unique<sql::LiteralExpr>(std::move(v));
      break;
    }
    case sql::ExprKind::kUnary:
      InlineParamsInPlace(&static_cast<sql::UnaryExpr*>(e->get())->child, params);
      break;
    case sql::ExprKind::kBinary: {
      auto* b = static_cast<sql::BinaryExpr*>(e->get());
      InlineParamsInPlace(&b->left, params);
      InlineParamsInPlace(&b->right, params);
      break;
    }
    case sql::ExprKind::kBetween: {
      auto* b = static_cast<sql::BetweenExpr*>(e->get());
      InlineParamsInPlace(&b->expr, params);
      InlineParamsInPlace(&b->low, params);
      InlineParamsInPlace(&b->high, params);
      break;
    }
    case sql::ExprKind::kIn: {
      auto* in = static_cast<sql::InExpr*>(e->get());
      InlineParamsInPlace(&in->expr, params);
      for (auto& i : in->list) InlineParamsInPlace(&i, params);
      break;
    }
    case sql::ExprKind::kFuncCall:
      for (auto& a : static_cast<sql::FuncCallExpr*>(e->get())->args) {
        InlineParamsInPlace(&a, params);
      }
      break;
    case sql::ExprKind::kCase: {
      auto* c = static_cast<sql::CaseExpr*>(e->get());
      for (auto& [when, then] : c->branches) {
        InlineParamsInPlace(&when, params);
        InlineParamsInPlace(&then, params);
      }
      InlineParamsInPlace(&c->else_expr, params);
      break;
    }
    default:
      break;
  }
}

/// Materializes ? placeholders into literals (used for INSERT splitting where
/// dropping rows would renumber the remaining placeholders).
sql::ExprPtr InlineParams(const sql::Expr* e, const std::vector<Value>& params) {
  if (e == nullptr) return nullptr;
  sql::ExprPtr clone = e->Clone();
  InlineParamsInPlace(&clone, params);
  return clone;
}

}  // namespace

Result<RewriteResult> RewriteEngine::RewriteInsert(
    const sql::InsertStatement& stmt, const RouteResult& route,
    const std::vector<Value>& params) const {
  // Write-path fast lane (DESIGN.md §10). With parameter binding the split
  // keeps `?` placeholders (renumbered per unit with a compact value slice),
  // so repeated prepared INSERTs produce a stable per-shard text; with
  // pass-through on top, ToSQL is skipped entirely and the unit ships its
  // AST. The legacy inlining rewrite remains as the remote-text baseline.
  bool binding = engine::PipelineConfig::dml_param_binding_enabled();
  bool structured =
      binding && engine::PipelineConfig::dml_passthrough_enabled();
  RewriteResult out;
  out.merge.is_select = false;
  out.merge.pass_through = route.IsSingleUnit();
  for (const RouteUnit& unit : route.units) {
    auto clone = std::make_unique<sql::InsertStatement>();
    clone->table = stmt.table;
    clone->columns = stmt.columns;
    // Batched-insert split (paper §VI-C): only this unit's rows. Dropping
    // rows renumbers the remaining placeholders, so either materialize them
    // (legacy) or renumber them against a per-unit parameter slice.
    ParamSlicer slicer(params);
    for (size_t r : unit.insert_rows) {
      std::vector<sql::ExprPtr> row;
      row.reserve(stmt.rows[r].size());
      for (const auto& e : stmt.rows[r]) {
        row.push_back(binding ? slicer.Remap(e.get())
                              : InlineParams(e.get(), params));
      }
      clone->rows.push_back(std::move(row));
    }
    if (clone->rows.empty()) continue;
    ApplyTableMappings(clone.get(), unit);
    SQLUnit out_unit;
    out_unit.data_source = unit.data_source;
    if (!structured) out_unit.sql = clone->ToSQL(dialect_);
    out_unit.params = slicer.TakeParams();
    out_unit.stmt = std::shared_ptr<const sql::Statement>(std::move(clone));
    out.units.push_back(std::move(out_unit));
  }
  return out;
}

Result<RewriteResult> RewriteEngine::RewriteSelect(
    const sql::SelectStatement& stmt, const RouteResult& route,
    const std::vector<Value>& params) const {
  RewriteResult out;
  MergeContext& merge = out.merge;
  merge.is_select = true;
  merge.distinct = stmt.distinct;

  if (route.IsSingleUnit()) {
    // Single-node optimization (paper §VI-C): no derivation, no pagination
    // revision — the one node computes the exact answer.
    merge.pass_through = true;
    auto clone_stmt = stmt.Clone();
    ApplyTableMappings(clone_stmt.get(), route.units[0]);
    out.units.push_back(SQLUnit{route.units[0].data_source,
                                clone_stmt->ToSQL(dialect_), params, nullptr});
    return out;
  }

  bool star = false;
  for (const auto& item : stmt.items) star = star || item.is_star;
  bool has_agg = stmt.HasAggregation();
  if (star && (has_agg || !stmt.group_by.empty())) {
    return Status::Unsupported("SELECT * cannot be merged with aggregation");
  }

  // Build the derived template.
  auto tmpl_owned = stmt.Clone();
  auto* tmpl = static_cast<sql::SelectStatement*>(tmpl_owned.get());
  // Star projections have a data-dependent width; 0 means "all columns"
  // (no derived columns are ever added to star queries).
  merge.visible_columns = star ? 0 : stmt.items.size();

  if (!star) {
    for (const auto& item : stmt.items) {
      merge.labels.push_back(item.Label(dialect_));
    }
    // Aggregation descriptors; AVG derives COUNT + SUM columns.
    int derived = 0;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const sql::FuncCallExpr* agg = TopLevelAggregate(stmt.items[i]);
      if (agg == nullptr) continue;
      AggDesc desc;
      desc.index = i;
      desc.kind = AggKindOf(agg->name);
      desc.distinct = agg->distinct;
      if (desc.kind == AggKind::kAvg) {
        auto count_item = sql::SelectItem(
            std::make_unique<sql::FuncCallExpr>(
                "COUNT", CloneArgs(agg), false, agg->star),
            "AVG_DERIVED_COUNT_" + std::to_string(derived));
        auto sum_item = sql::SelectItem(
            std::make_unique<sql::FuncCallExpr>(
                "SUM", CloneArgs(agg), false, false),
            "AVG_DERIVED_SUM_" + std::to_string(derived));
        desc.count_index = static_cast<int>(tmpl->items.size());
        merge.labels.push_back(count_item.alias);
        tmpl->items.push_back(std::move(count_item));
        desc.sum_index = static_cast<int>(tmpl->items.size());
        merge.labels.push_back(sum_item.alias);
        tmpl->items.push_back(std::move(sum_item));
        ++derived;
      }
      merge.aggregations.push_back(desc);
    }
  }

  // GROUP BY keys: locate or derive.
  int gb_derived = 0;
  for (const auto& g : stmt.group_by) {
    MergeKey key;
    int idx = star ? -1 : FindItemIndex(stmt.items, g.get(), dialect_);
    if (idx >= 0) {
      key.index = idx;
      key.name = merge.labels.empty() ? "" : merge.labels[static_cast<size_t>(idx)];
    } else if (!star) {
      key.index = static_cast<int>(tmpl->items.size());
      key.name = "GROUP_BY_DERIVED_" + std::to_string(gb_derived++);
      tmpl->items.emplace_back(g->Clone(), key.name);
      merge.labels.push_back(key.name);
    } else if (g->kind() == sql::ExprKind::kColumnRef) {
      key.name = static_cast<const sql::ColumnRefExpr*>(g.get())->column;
    } else {
      return Status::Unsupported("GROUP BY expression with SELECT *");
    }
    merge.group_by.push_back(std::move(key));
  }

  // ORDER BY keys: locate or derive.
  int ob_derived = 0;
  for (const auto& o : stmt.order_by) {
    MergeKey key;
    key.desc = o.desc;
    int idx = star ? -1 : FindItemIndex(stmt.items, o.expr.get(), dialect_);
    if (idx >= 0) {
      key.index = idx;
      key.name = merge.labels.empty() ? "" : merge.labels[static_cast<size_t>(idx)];
    } else if (!star) {
      key.index = static_cast<int>(tmpl->items.size());
      key.name = "ORDER_BY_DERIVED_" + std::to_string(ob_derived++);
      tmpl->items.emplace_back(o.expr->Clone(), key.name);
      merge.labels.push_back(key.name);
    } else if (o.expr->kind() == sql::ExprKind::kColumnRef) {
      key.name = static_cast<const sql::ColumnRefExpr*>(o.expr.get())->column;
    } else {
      return Status::Unsupported("ORDER BY expression with SELECT *");
    }
    merge.order_by.push_back(std::move(key));
  }

  // Stream-merger optimization (paper §VI-C): a GROUP BY without ORDER BY
  // gets an ORDER BY over the group keys so the merger can stream.
  if (!stmt.group_by.empty()) {
    if (stmt.order_by.empty()) {
      for (size_t i = 0; i < stmt.group_by.size(); ++i) {
        tmpl->order_by.emplace_back(stmt.group_by[i]->Clone(), false);
      }
      merge.sorted_for_group = true;
    } else {
      // Stream merge also works when ORDER BY equals GROUP BY ascending.
      bool same = stmt.order_by.size() == stmt.group_by.size();
      for (size_t i = 0; same && i < stmt.order_by.size(); ++i) {
        same = !stmt.order_by[i].desc &&
               stmt.order_by[i].expr->ToSQL(dialect_) ==
                   stmt.group_by[i]->ToSQL(dialect_);
      }
      merge.sorted_for_group = same;
    }
  }

  // Pagination revision (paper §VI-C): each node must return the first
  // offset+count rows so the merger can skip the true offset globally.
  if (stmt.limit.has_value()) {
    merge.limit = stmt.limit;
    sql::LimitClause revised;
    revised.offset = 0;
    revised.count = stmt.limit->count < 0
                        ? -1
                        : stmt.limit->offset + stmt.limit->count;
    if (revised.count < 0) {
      tmpl->limit.reset();  // OFFSET-only: nodes return everything
    } else {
      tmpl->limit = revised;
    }
  }

  for (const RouteUnit& unit : route.units) {
    auto clone_stmt = tmpl->Clone();
    ApplyTableMappings(clone_stmt.get(), unit);
    out.units.push_back(
        SQLUnit{unit.data_source, clone_stmt->ToSQL(dialect_), params, nullptr});
  }
  return out;
}

Result<RewriteResult> RewriteEngine::Rewrite(
    const sql::Statement& stmt, const RouteResult& route,
    const std::vector<Value>& params) const {
  if (route.units.empty()) {
    return Status::RouteError("empty route result");
  }
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      return RewriteSelect(static_cast<const sql::SelectStatement&>(stmt), route,
                           params);
    case sql::StatementKind::kInsert:
      return RewriteInsert(static_cast<const sql::InsertStatement&>(stmt), route,
                           params);
    default: {
      // UPDATE/DELETE keep their original placeholders (no row splitting),
      // so the full parameter vector rides along unchanged. DML units carry
      // their rewritten AST; the structured lane additionally skips ToSQL.
      bool is_dml = stmt.kind() == sql::StatementKind::kUpdate ||
                    stmt.kind() == sql::StatementKind::kDelete;
      bool structured =
          is_dml && engine::PipelineConfig::dml_passthrough_enabled();
      RewriteResult out;
      out.merge.is_select = false;
      out.merge.pass_through = route.IsSingleUnit();
      for (const RouteUnit& unit : route.units) {
        auto clone_stmt = stmt.Clone();
        ApplyTableMappings(clone_stmt.get(), unit);
        SQLUnit out_unit;
        out_unit.data_source = unit.data_source;
        if (!structured) out_unit.sql = clone_stmt->ToSQL(dialect_);
        out_unit.params = params;
        if (is_dml) {
          out_unit.stmt =
              std::shared_ptr<const sql::Statement>(std::move(clone_stmt));
        }
        out.units.push_back(std::move(out_unit));
      }
      return out;
    }
  }
}

}  // namespace sphere::core
