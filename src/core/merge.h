#ifndef SPHERE_CORE_MERGE_H_
#define SPHERE_CORE_MERGE_H_

#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "core/rewrite.h"
#include "engine/result_set.h"

namespace sphere::core {

/// The result merger (paper §VI-E): combines the per-shard ExecResults of one
/// logical statement into a single result.
///
/// Queries merge through a pipeline of mergers and decorators, mirroring the
/// original architecture:
///   - iteration merger: plain concatenation of cursors,
///   - order-by stream merger: k-way merge with a priority queue,
///   - group-by stream merger: aggregation over group-key-sorted cursors,
///   - group-by memory merger: hash aggregation when inputs are unsorted,
///   - decorators: AVG recomputation, DISTINCT, pagination, projection of
///     derived columns away.
/// Updates merge by summing affected row counts.
class MergeEngine {
 public:
  /// `results` must align 1:1 with the rewrite's SQL units.
  Result<engine::ExecResult> Merge(ArenaVector<engine::ExecResult> results,
                                   const MergeContext& context) const;
};

}  // namespace sphere::core

#endif  // SPHERE_CORE_MERGE_H_
