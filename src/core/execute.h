#ifndef SPHERE_CORE_EXECUTE_H_
#define SPHERE_CORE_EXECUTE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/result.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/rewrite.h"
#include "net/pool.h"

namespace sphere::core {

/// The two connection modes of the SQL executor (paper §VI-D).
enum class ConnectionMode {
  kMemoryStrictly,      ///< one connection per SQL: parallel, stream merge
  kConnectionStrictly,  ///< limited connections, serial batches, memory merge
};

/// Registry of attached data sources. Lookup is case-insensitive (SQL
/// identifier semantics) and allocation-free: the map hashes the query string
/// in place instead of materializing a lowered copy per Find — Find sits on
/// the per-unit hot path of every executed statement.
class DataSourceRegistry {
 public:
  Status Register(std::unique_ptr<net::DataSource> ds);
  net::DataSource* Find(std::string_view name);
  /// Registered names (sorted, original casing).
  std::vector<std::string> Names() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<net::DataSource>,
                     CaseInsensitiveHash, CaseInsensitiveEqual>
      sources_;
};

/// Provides transaction-affine connections: when a logical session has an
/// open distributed transaction, all SQL on one data source must reuse that
/// transaction's connection. Implemented by the adaptor's connection object;
/// the default (nullptr source) means auto-commit execution from the pools.
class ConnectionSource {
 public:
  virtual ~ConnectionSource() = default;
  /// The exclusive connection for `data_source` (opening/enlisting it in the
  /// transaction as needed), or nullptr when this session is in auto-commit.
  virtual Result<net::RemoteConnection*> TransactionConnection(
      const std::string& data_source) = 0;
};

/// Observes each SQL unit on its actual connection, before and after it
/// runs. The BASE transaction manager uses this to register branches, take
/// AT-mode before-images and commit branch-locally around every write.
///
/// AfterUnit runs for every unit whose BeforeUnit succeeded, including units
/// whose execution FAILED — the observer must see failures so it can roll
/// back branch-local state and report the branch outcome (a failed branch
/// that goes unreported would let the global transaction commit anyway).
class UnitObserver {
 public:
  virtual ~UnitObserver() = default;
  virtual Status BeforeUnit(net::RemoteConnection* conn, const SQLUnit& unit) = 0;
  virtual Status AfterUnit(net::RemoteConnection* conn, const SQLUnit& unit,
                           const Result<engine::ExecResult>& result) = 0;
};

/// Outcome of executing the SQL units of one logical statement.
struct ExecutionOutcome {
  ArenaVector<engine::ExecResult> results;  ///< aligned with the input units
  ConnectionMode mode = ConnectionMode::kMemoryStrictly;
};

/// The automatic execution engine (paper §VI-D, Fig. 8).
///
/// Preparation phase: group SQL units by data source; per group compute
/// θ = ⌈#SQL / MaxCon⌉ and pick the connection mode (θ > 1 forces connection-
/// strictly + memory merge). Connections for one group are acquired
/// atomically from the pool, which prevents the hold-and-wait deadlock the
/// paper describes; single-connection groups skip the batch lock.
/// Execution phase: groups and the connections inside a group run in
/// parallel, each connection draining its assigned SQL list serially.
///
/// Parallel slices are dispatched to a persistent scheduler (the process-wide
/// SharedThreadPool by default): the caller submits every slice but its own,
/// executes its own slice inline, and joins on a latch — so the steady-state
/// path constructs zero threads per statement. The pool is injectable for
/// tests and sizing experiments; setting it to nullptr falls back to
/// spawn-per-statement, kept only as the benchmark baseline.
class ExecutionEngine {
 public:
  ExecutionEngine(DataSourceRegistry* registry, int max_connections_per_query,
                  ThreadPool* pool = SharedThreadPool())
      : registry_(registry), max_con_(max_connections_per_query), pool_(pool) {}

  void set_max_connections_per_query(int n) { max_con_ = n < 1 ? 1 : n; }
  int max_connections_per_query() const { return max_con_; }

  /// Replaces the scheduler pool. nullptr selects the legacy thread-spawn
  /// dispatch (benchmark baseline only — it creates threads per statement).
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Executes every unit; `txn_source` may be nullptr (auto-commit) and
  /// `observer` may be nullptr (no per-unit hooks).
  Result<ExecutionOutcome> Execute(const std::vector<SQLUnit>& units,
                                   ConnectionSource* txn_source,
                                   UnitObserver* observer = nullptr) const;

 private:
  DataSourceRegistry* registry_;
  int max_con_;
  ThreadPool* pool_;
};

}  // namespace sphere::core

#endif  // SPHERE_CORE_EXECUTE_H_
