#ifndef SPHERE_CORE_EXECUTE_H_
#define SPHERE_CORE_EXECUTE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/rewrite.h"
#include "net/pool.h"

namespace sphere::core {

/// The two connection modes of the SQL executor (paper §VI-D).
enum class ConnectionMode {
  kMemoryStrictly,      ///< one connection per SQL: parallel, stream merge
  kConnectionStrictly,  ///< limited connections, serial batches, memory merge
};

/// Registry of attached data sources.
class DataSourceRegistry {
 public:
  Status Register(std::unique_ptr<net::DataSource> ds);
  net::DataSource* Find(const std::string& name);
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::unique_ptr<net::DataSource>> sources_;
};

/// Provides transaction-affine connections: when a logical session has an
/// open distributed transaction, all SQL on one data source must reuse that
/// transaction's connection. Implemented by the adaptor's connection object;
/// the default (nullptr source) means auto-commit execution from the pools.
class ConnectionSource {
 public:
  virtual ~ConnectionSource() = default;
  /// The exclusive connection for `data_source` (opening/enlisting it in the
  /// transaction as needed), or nullptr when this session is in auto-commit.
  virtual Result<net::RemoteConnection*> TransactionConnection(
      const std::string& data_source) = 0;
};

/// Observes each SQL unit on its actual connection, before and after it
/// runs. The BASE transaction manager uses this to register branches, take
/// AT-mode before-images and commit branch-locally around every write.
///
/// AfterUnit runs for every unit whose BeforeUnit succeeded, including units
/// whose execution FAILED — the observer must see failures so it can roll
/// back branch-local state and report the branch outcome (a failed branch
/// that goes unreported would let the global transaction commit anyway).
class UnitObserver {
 public:
  virtual ~UnitObserver() = default;
  virtual Status BeforeUnit(net::RemoteConnection* conn, const SQLUnit& unit) = 0;
  virtual Status AfterUnit(net::RemoteConnection* conn, const SQLUnit& unit,
                           const Result<engine::ExecResult>& result) = 0;
};

/// Outcome of executing the SQL units of one logical statement.
struct ExecutionOutcome {
  std::vector<engine::ExecResult> results;  ///< aligned with the input units
  ConnectionMode mode = ConnectionMode::kMemoryStrictly;
};

/// The automatic execution engine (paper §VI-D, Fig. 8).
///
/// Preparation phase: group SQL units by data source; per group compute
/// θ = ⌈#SQL / MaxCon⌉ and pick the connection mode (θ > 1 forces connection-
/// strictly + memory merge). Connections for one group are acquired
/// atomically from the pool, which prevents the hold-and-wait deadlock the
/// paper describes; single-connection groups skip the batch lock.
/// Execution phase: groups and the connections inside a group run in
/// parallel, each connection draining its assigned SQL list serially.
class ExecutionEngine {
 public:
  ExecutionEngine(DataSourceRegistry* registry, int max_connections_per_query)
      : registry_(registry), max_con_(max_connections_per_query) {}

  void set_max_connections_per_query(int n) { max_con_ = n < 1 ? 1 : n; }
  int max_connections_per_query() const { return max_con_; }

  /// Executes every unit; `txn_source` may be nullptr (auto-commit) and
  /// `observer` may be nullptr (no per-unit hooks).
  Result<ExecutionOutcome> Execute(const std::vector<SQLUnit>& units,
                                   ConnectionSource* txn_source,
                                   UnitObserver* observer = nullptr) const;

 private:
  DataSourceRegistry* registry_;
  int max_con_;
};

}  // namespace sphere::core

#endif  // SPHERE_CORE_EXECUTE_H_
