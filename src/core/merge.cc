#include "core/merge.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/hash.h"
#include "common/strings.h"
#include "engine/pipeline.h"
#include "engine/row_batch.h"
#include "engine/row_dedup.h"

namespace sphere::core {

namespace {

using engine::ResultSet;
using engine::ResultSetPtr;
using engine::RowIndexSet;
using engine::VectorResultSet;

/// Resolves by-name merge keys against the physical columns: one
/// case-insensitive name→index map, probed per key (the first matching
/// column wins, as SQL label resolution requires).
Result<std::vector<MergeKey>> ResolveKeys(
    const std::vector<MergeKey>& keys, const std::vector<std::string>& columns) {
  std::vector<MergeKey> out = keys;
  bool any_by_name = false;
  for (const auto& key : out) {
    if (key.index < 0) any_by_name = true;
  }
  if (!any_by_name) return out;

  std::unordered_map<std::string_view, int, CaseInsensitiveHash,
                     CaseInsensitiveEqual>
      by_name(columns.size() * 2);
  for (size_t i = 0; i < columns.size(); ++i) {
    by_name.emplace(columns[i], static_cast<int>(i));  // keeps first occurrence
  }
  for (auto& key : out) {
    if (key.index >= 0) continue;
    auto it = by_name.find(std::string_view(key.name));
    if (it == by_name.end()) {
      return Status::InvalidArgument("merge key column not found: " + key.name);
    }
    key.index = it->second;
  }
  return out;
}

int CompareByKeys(const Row& a, const Row& b, const std::vector<MergeKey>& keys) {
  for (const auto& key : keys) {
    size_t i = static_cast<size_t>(key.index);
    int c = a[i].Compare(b[i]);
    if (c != 0) return key.desc ? -c : c;
  }
  return 0;
}

bool SameGroup(const Row& a, const Row& b, const std::vector<MergeKey>& keys) {
  for (const auto& key : keys) {
    size_t i = static_cast<size_t>(key.index);
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Aggregation units
// ---------------------------------------------------------------------------

/// Combines partial aggregate values coming from the shards.
struct AggUnit {
  const AggDesc* desc;
  bool any = false;
  Value acc;

  void Accumulate(const Value& v) {
    if (v.is_null()) return;
    if (!any) {
      acc = v;
      any = true;
      return;
    }
    switch (desc->kind) {
      case AggKind::kCount:
      case AggKind::kSum:
        if (acc.is_int() && v.is_int()) {
          acc = Value(acc.AsInt() + v.AsInt());
        } else {
          acc = Value(acc.ToDouble() + v.ToDouble());
        }
        break;
      case AggKind::kMin:
        if (v.Compare(acc) < 0) acc = v;
        break;
      case AggKind::kMax:
        if (v.Compare(acc) > 0) acc = v;
        break;
      case AggKind::kAvg:
        break;  // recomputed from derived SUM/COUNT
    }
  }

  Value Finish() const {
    if (!any) {
      return desc->kind == AggKind::kCount ? Value(int64_t{0}) : Value::Null();
    }
    return acc;
  }
};

/// Aggregates the shard rows of one group into one output row.
class GroupAccumulator {
 public:
  GroupAccumulator(const MergeContext& ctx) : ctx_(ctx) {}

  void Start(const Row& first) {
    row_ = first;
    units_.clear();
    units_.reserve(ctx_.aggregations.size());
    for (const auto& desc : ctx_.aggregations) {
      AggUnit unit{&desc, false, Value::Null()};
      unit.Accumulate(first[desc.index]);
      units_.push_back(std::move(unit));
      // Derived AVG inputs also accumulate.
    }
    StartDerived(first);
  }

  void Add(const Row& row) {
    for (auto& unit : units_) {
      unit.Accumulate(row[unit.desc->index]);
    }
    AddDerived(row);
  }

  /// Moves the finished row out; Start() re-initializes for the next group.
  Row Finish() {
    for (auto& unit : units_) {
      row_[unit.desc->index] = unit.Finish();
    }
    // AVG = total SUM / total COUNT from the derived columns.
    for (const auto& desc : ctx_.aggregations) {
      if (desc.kind != AggKind::kAvg) continue;
      double count = derived_.count(desc.count_index)
                         ? derived_[desc.count_index].ToDouble()
                         : 0.0;
      double sum = derived_.count(desc.sum_index)
                       ? derived_[desc.sum_index].ToDouble()
                       : 0.0;
      row_[desc.index] = count > 0 ? Value(sum / count) : Value::Null();
      if (desc.count_index >= 0 &&
          static_cast<size_t>(desc.count_index) < row_.size()) {
        row_[static_cast<size_t>(desc.count_index)] =
            derived_.count(desc.count_index) ? derived_[desc.count_index]
                                             : Value(int64_t{0});
      }
      if (desc.sum_index >= 0 && static_cast<size_t>(desc.sum_index) < row_.size()) {
        row_[static_cast<size_t>(desc.sum_index)] =
            derived_.count(desc.sum_index) ? derived_[desc.sum_index]
                                           : Value::Null();
      }
    }
    return std::move(row_);
  }

 private:
  void StartDerived(const Row& row) {
    derived_.clear();
    AddDerived(row);
  }
  void AddDerived(const Row& row) {
    for (const auto& desc : ctx_.aggregations) {
      if (desc.kind != AggKind::kAvg) continue;
      for (int idx : {desc.count_index, desc.sum_index}) {
        if (idx < 0 || static_cast<size_t>(idx) >= row.size()) continue;
        const Value& v = row[static_cast<size_t>(idx)];
        if (v.is_null()) continue;
        auto it = derived_.find(idx);
        if (it == derived_.end()) {
          derived_[idx] = v;
        } else if (it->second.is_int() && v.is_int()) {
          it->second = Value(it->second.AsInt() + v.AsInt());
        } else {
          it->second = Value(it->second.ToDouble() + v.ToDouble());
        }
      }
    }
  }

  const MergeContext& ctx_;
  Row row_;
  std::vector<AggUnit> units_;
  std::map<int, Value> derived_;
};

// ---------------------------------------------------------------------------
// Stream mergers
// ---------------------------------------------------------------------------

/// Concatenates cursors (paper's iteration merger).
class IterationMergedResult : public ResultSet {
 public:
  IterationMergedResult(std::vector<ResultSetPtr> sources,
                        std::vector<std::string> columns)
      : sources_(std::move(sources)), columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const override { return columns_; }

  bool Next(Row* row) override {
    while (cursor_ < sources_.size()) {
      if (sources_[cursor_]->Next(row)) return true;
      ++cursor_;
    }
    return false;
  }

  size_t NextBatch(std::vector<Row>* out, size_t max) override {
    size_t total = 0;
    while (total < max && cursor_ < sources_.size()) {
      size_t n = sources_[cursor_]->NextBatch(out, max - total);
      if (n == 0) {
        ++cursor_;
        continue;
      }
      total += n;
    }
    return total;
  }

 private:
  std::vector<ResultSetPtr> sources_;
  std::vector<std::string> columns_;
  size_t cursor_ = 0;
};

/// Pull-side batching over one shard cursor: refills an internal buffer via
/// NextBatch so the k-way merge pays one virtual call per batch instead of
/// one per row, and hands out mutable pointers the merge can move from.
class BufferedCursor {
 public:
  explicit BufferedCursor(ResultSet* source)
      : source_(source),
        buffer_(engine::RowStore::Instance().AcquireShell()) {}
  ~BufferedCursor() {
    // The merge moved most rows out (husks), but the spine and any tail rows
    // return to the recycler; no-op when pooling is off.
    engine::RowStore::Instance().Release(std::move(buffer_));
  }

  BufferedCursor(BufferedCursor&&) = default;
  BufferedCursor& operator=(BufferedCursor&&) = default;

  /// Next row, owned by the buffer until the following Next() call — the
  /// caller may move from it. nullptr at end of stream.
  Row* Next() {
    if (pos_ >= buffer_.size()) {
      buffer_.clear();
      pos_ = 0;
      if (source_->NextBatch(&buffer_, engine::PipelineConfig::batch_size()) ==
          0) {
        return nullptr;
      }
    }
    return &buffer_[pos_++];
  }

 private:
  ResultSet* source_;
  std::vector<Row> buffer_;
  size_t pos_ = 0;
};

/// K-way merge by sort keys over per-shard cursors that are already sorted
/// (paper's order-by stream merger). A hand-rolled binary heap replaces
/// std::priority_queue so each pop moves the winning row out instead of
/// copying it twice (top() is const), and so the winner's replacement row is
/// sifted in place rather than popped and re-pushed. Ties break on the source
/// index, making the merge order deterministic across runs.
class OrderByStreamMergedResult : public ResultSet {
 public:
  OrderByStreamMergedResult(std::vector<ResultSetPtr> sources,
                            std::vector<std::string> columns,
                            std::vector<MergeKey> keys)
      : sources_(std::move(sources)), columns_(std::move(columns)),
        keys_(std::move(keys)) {
    cursors_.reserve(sources_.size());
    for (auto& s : sources_) cursors_.emplace_back(s.get());
    heap_.reserve(cursors_.size());
    for (size_t i = 0; i < cursors_.size(); ++i) {
      Row* row = cursors_[i].Next();
      if (row != nullptr) heap_.push_back(Entry{std::move(*row), i});
    }
    for (size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
  }

  const std::vector<std::string>& columns() const override { return columns_; }

  bool Next(Row* row) override {
    if (heap_.empty()) return false;
    *row = std::move(heap_[0].row);
    Refill();
    return true;
  }

  size_t NextBatch(std::vector<Row>* out, size_t max) override {
    size_t n = 0;
    while (n < max && !heap_.empty()) {
      out->push_back(std::move(heap_[0].row));
      Refill();
      ++n;
    }
    return n;
  }

 private:
  struct Entry {
    Row row;
    size_t source;
  };

  /// Strict weak order: a streams out before b.
  bool Before(const Entry& a, const Entry& b) const {
    int c = CompareByKeys(a.row, b.row, keys_);
    if (c != 0) return c < 0;
    return a.source < b.source;
  }

  void SiftDown(size_t i) {
    for (;;) {
      size_t l = 2 * i + 1;
      size_t r = l + 1;
      size_t m = i;
      if (l < heap_.size() && Before(heap_[l], heap_[m])) m = l;
      if (r < heap_.size() && Before(heap_[r], heap_[m])) m = r;
      if (m == i) return;
      std::swap(heap_[i], heap_[m]);
      i = m;
    }
  }

  /// Replaces the (moved-from) root with the winning source's next row, or
  /// with the last heap entry when that source ran dry, then restores the
  /// heap property.
  void Refill() {
    size_t src = heap_[0].source;
    Row* next = cursors_[src].Next();
    if (next != nullptr) {
      heap_[0].row = std::move(*next);
    } else {
      if (heap_.size() == 1) {
        heap_.clear();
        return;
      }
      heap_[0] = std::move(heap_.back());
      heap_.pop_back();
    }
    SiftDown(0);
  }

  std::vector<ResultSetPtr> sources_;
  std::vector<std::string> columns_;
  std::vector<MergeKey> keys_;
  std::vector<BufferedCursor> cursors_;
  std::vector<Entry> heap_;
};

/// Group-by stream merger: consumes a group-key-sorted stream and folds the
/// consecutive rows of one group through the aggregation units.
class GroupByStreamMergedResult : public ResultSet {
 public:
  GroupByStreamMergedResult(ResultSetPtr sorted, const MergeContext& ctx,
                            std::vector<MergeKey> group_keys,
                            std::vector<std::string> columns)
      : sorted_(std::move(sorted)), ctx_(ctx), group_keys_(std::move(group_keys)),
        columns_(std::move(columns)), acc_(ctx) {
    has_pending_ = sorted_->Next(&pending_);
  }

  const std::vector<std::string>& columns() const override { return columns_; }

  bool Next(Row* row) override {
    if (!has_pending_) return false;
    Row current = std::move(pending_);
    acc_.Start(current);
    for (;;) {
      has_pending_ = sorted_->Next(&pending_);
      if (!has_pending_ || !SameGroup(current, pending_, group_keys_)) break;
      acc_.Add(pending_);
    }
    *row = acc_.Finish();
    return true;
  }

 private:
  ResultSetPtr sorted_;
  const MergeContext& ctx_;
  std::vector<MergeKey> group_keys_;
  std::vector<std::string> columns_;
  GroupAccumulator acc_;
  Row pending_;
  bool has_pending_ = false;
};

// ---------------------------------------------------------------------------
// Decorators
// ---------------------------------------------------------------------------

/// Applies the logical LIMIT/OFFSET after merging (pagination decorator).
class LimitDecoratorResult : public ResultSet {
 public:
  LimitDecoratorResult(ResultSetPtr inner, sql::LimitClause limit)
      : inner_(std::move(inner)), limit_(limit) {}

  const std::vector<std::string>& columns() const override {
    return inner_->columns();
  }

  bool Next(Row* row) override {
    if (!SkipOffset()) return false;
    if (limit_.count >= 0 && returned_ >= limit_.count) return false;
    if (!inner_->Next(row)) return false;
    ++returned_;
    return true;
  }

  size_t NextBatch(std::vector<Row>* out, size_t max) override {
    if (!SkipOffset()) return 0;
    if (limit_.count >= 0) {
      max = std::min(max, static_cast<size_t>(limit_.count - returned_));
    }
    if (max == 0) return 0;
    size_t n = inner_->NextBatch(out, max);
    returned_ += static_cast<int64_t>(n);
    return n;
  }

 private:
  /// Discards the first `offset` merged rows in batches; false when the
  /// stream ends inside the offset window.
  bool SkipOffset() {
    if (skipped_ >= limit_.offset) return true;
    // Discarded rows drain into a pooled shell and go straight back to the
    // recycler (the last batch's rows ride out with the Release).
    engine::RowBatch scratch(0);
    while (skipped_ < limit_.offset) {
      scratch.out()->clear();
      size_t want =
          std::min(static_cast<size_t>(limit_.offset - skipped_),
                   engine::PipelineConfig::batch_size());
      size_t n = inner_->NextBatch(scratch.out(), want);
      if (n == 0) return false;
      skipped_ += static_cast<int64_t>(n);
    }
    return true;
  }

  ResultSetPtr inner_;
  sql::LimitClause limit_;
  int64_t skipped_ = 0;
  int64_t returned_ = 0;
};

/// Trims derived columns away so the client sees the logical projection.
class ProjectionDecoratorResult : public ResultSet {
 public:
  ProjectionDecoratorResult(ResultSetPtr inner, size_t visible)
      : inner_(std::move(inner)), visible_(visible) {
    const auto& cols = inner_->columns();
    columns_.assign(cols.begin(),
                    cols.begin() + static_cast<long>(std::min(visible_, cols.size())));
  }

  const std::vector<std::string>& columns() const override { return columns_; }

  bool Next(Row* row) override {
    if (!inner_->Next(row)) return false;
    if (row->size() > visible_) row->resize(visible_);
    return true;
  }

  size_t NextBatch(std::vector<Row>* out, size_t max) override {
    size_t start = out->size();
    size_t n = inner_->NextBatch(out, max);
    for (size_t i = start; i < out->size(); ++i) {
      if ((*out)[i].size() > visible_) (*out)[i].resize(visible_);
    }
    return n;
  }

 private:
  ResultSetPtr inner_;
  size_t visible_;
  std::vector<std::string> columns_;
};

/// DISTINCT decorator. Seen rows are retained in arrival order and indexed by
/// a HashRow-keyed set (O(1) expected probes instead of an ordered set's
/// O(log n) Value::Compare chains); duplicates are dropped without copying,
/// and each emitted row costs exactly one copy — the set must keep the
/// original for future equality checks.
class DistinctDecoratorResult : public ResultSet {
 public:
  explicit DistinctDecoratorResult(ResultSetPtr inner)
      : inner_(std::move(inner)), seen_(&rows_) {}

  const std::vector<std::string>& columns() const override {
    return inner_->columns();
  }

  bool Next(Row* row) override {
    Row tmp;
    while (inner_->Next(&tmp)) {
      if (Admit(std::move(tmp))) {
        *row = rows_.back();
        return true;
      }
    }
    return false;
  }

  size_t NextBatch(std::vector<Row>* out, size_t max) override {
    size_t emitted = 0;
    // Pooled shell: admitted rows are moved into rows_, duplicates dropped —
    // either way the scratch spine survives for the next call.
    engine::RowBatch batch(0);
    std::vector<Row>& scratch = *batch.out();
    while (emitted < max) {
      scratch.clear();
      if (inner_->NextBatch(&scratch, max - emitted) == 0) break;
      for (Row& row : scratch) {
        if (Admit(std::move(row))) {
          out->push_back(rows_.back());
          ++emitted;
        }
      }
    }
    return emitted;
  }

 private:
  /// True when `row` is new; it then stays at rows_.back().
  bool Admit(Row row) {
    rows_.push_back(std::move(row));
    if (seen_.Admit(rows_.size() - 1)) return true;
    rows_.pop_back();
    return false;
  }

  ResultSetPtr inner_;
  std::vector<Row> rows_;  ///< distinct rows seen so far, arrival order
  RowIndexSet seen_;
};

}  // namespace

Result<engine::ExecResult> MergeEngine::Merge(
    ArenaVector<engine::ExecResult> results, const MergeContext& ctx) const {
  if (results.empty()) {
    return Status::Internal("merge of zero results");
  }

  if (!ctx.is_select) {
    int64_t affected = 0;
    int64_t last_id = 0;
    for (auto& r : results) {
      affected += r.affected_rows;
      last_id = std::max(last_id, r.last_insert_id);
    }
    return engine::ExecResult::Update(affected, last_id);
  }

  if (ctx.pass_through || results.size() == 1) {
    return std::move(results[0]);
  }

  // Gather cursors; all shards return the same physical shape.
  std::vector<ResultSetPtr> sources;
  sources.reserve(results.size());
  for (auto& r : results) {
    if (!r.is_query || r.result_set == nullptr) {
      return Status::Internal("non-query result in select merge");
    }
    sources.push_back(std::move(r.result_set));
  }
  const std::vector<std::string> physical_columns = sources[0]->columns();
  std::vector<std::string> labels =
      ctx.labels.empty() ? physical_columns : ctx.labels;
  size_t visible = ctx.visible_columns == 0 ? labels.size() : ctx.visible_columns;

  SPHERE_ASSIGN_OR_RETURN(std::vector<MergeKey> order_keys,
                          ResolveKeys(ctx.order_by, physical_columns));
  SPHERE_ASSIGN_OR_RETURN(std::vector<MergeKey> group_keys,
                          ResolveKeys(ctx.group_by, physical_columns));

  ResultSetPtr merged;
  bool has_group = !group_keys.empty();
  bool has_agg = !ctx.aggregations.empty();

  if (has_agg && !has_group) {
    // Global aggregation: every shard returns one row; fold them all.
    GroupAccumulator acc(ctx);
    bool started = false;
    Row row;
    for (auto& src : sources) {
      while (src->Next(&row)) {
        if (!started) {
          acc.Start(row);
          started = true;
        } else {
          acc.Add(row);
        }
      }
    }
    std::vector<Row> rows;
    if (started) rows.push_back(acc.Finish());
    merged = std::make_unique<VectorResultSet>(labels, std::move(rows));
  } else if (has_group) {
    if (ctx.sorted_for_group) {
      // Stream path: k-way merge by group keys, then streaming aggregation.
      std::vector<MergeKey> sort_keys = group_keys;
      auto sorted = std::make_unique<OrderByStreamMergedResult>(
          std::move(sources), labels, sort_keys);
      merged = std::make_unique<GroupByStreamMergedResult>(
          std::move(sorted), ctx, group_keys, labels);
      // Materialize so the (stack-local) context outlives safely and user
      // ORDER BY can re-sort.
      auto* stream = merged.get();
      std::vector<Row> rows = engine::DrainResultSet(stream);
      merged = std::make_unique<VectorResultSet>(labels, std::move(rows));
    } else {
      // Memory path: hash aggregation over all rows. The map keys on each
      // group's first full row but hashes/compares only the group-key
      // columns, so incoming rows probe directly with no key extraction.
      struct GroupHash {
        const std::vector<MergeKey>* keys;
        size_t operator()(const Row& r) const {
          uint64_t h = 0xcbf29ce484222325ULL;
          for (const auto& k : *keys) {
            h = HashCombine(h, r[static_cast<size_t>(k.index)].Hash());
          }
          return static_cast<size_t>(h);
        }
      };
      struct GroupEq {
        const std::vector<MergeKey>* keys;
        bool operator()(const Row& a, const Row& b) const {
          return SameGroup(a, b, *keys);
        }
      };
      std::unordered_map<Row, GroupAccumulator, GroupHash, GroupEq> groups(
          16, GroupHash{&group_keys}, GroupEq{&group_keys});
      std::vector<Row> batch;
      for (auto& src : sources) {
        for (;;) {
          batch.clear();
          if (src->NextBatch(&batch, engine::PipelineConfig::batch_size()) == 0) {
            break;
          }
          for (Row& row : batch) {
            auto it = groups.find(row);
            if (it == groups.end()) {
              auto [ins, ok] = groups.emplace(std::move(row), GroupAccumulator(ctx));
              ins->second.Start(ins->first);
            } else {
              it->second.Add(row);
            }
          }
        }
      }
      std::vector<Row> rows;
      rows.reserve(groups.size());
      for (auto& [key, acc] : groups) rows.push_back(acc.Finish());
      // Hash order is arbitrary; restore the group-key order the ordered map
      // used to produce (and that ties in a later ORDER BY re-sort rely on).
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const Row& a, const Row& b) {
                         return CompareByKeys(a, b, group_keys) < 0;
                       });
      merged = std::make_unique<VectorResultSet>(labels, std::move(rows));
    }
    // Re-sort by the user's ORDER BY when it differs from the group order.
    if (!order_keys.empty()) {
      std::vector<Row> rows = engine::DrainResultSet(merged.get());
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const Row& a, const Row& b) {
                         return CompareByKeys(a, b, order_keys) < 0;
                       });
      merged = std::make_unique<VectorResultSet>(labels, std::move(rows));
    }
  } else if (!order_keys.empty()) {
    merged = std::make_unique<OrderByStreamMergedResult>(std::move(sources),
                                                         labels, order_keys);
  } else {
    merged = std::make_unique<IterationMergedResult>(std::move(sources), labels);
  }

  if (ctx.distinct) {
    merged = std::make_unique<DistinctDecoratorResult>(std::move(merged));
  }
  if (ctx.limit.has_value()) {
    merged = std::make_unique<LimitDecoratorResult>(std::move(merged), *ctx.limit);
  }
  if (visible < merged->columns().size()) {
    merged = std::make_unique<ProjectionDecoratorResult>(std::move(merged), visible);
  }
  return engine::ExecResult::Query(std::move(merged));
}

}  // namespace sphere::core
