#include "core/merge.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "common/strings.h"

namespace sphere::core {

namespace {

using engine::ResultSet;
using engine::ResultSetPtr;
using engine::VectorResultSet;

/// Resolves by-name merge keys against the physical columns.
Result<std::vector<MergeKey>> ResolveKeys(
    const std::vector<MergeKey>& keys, const std::vector<std::string>& columns) {
  std::vector<MergeKey> out = keys;
  for (auto& key : out) {
    if (key.index >= 0) continue;
    for (size_t i = 0; i < columns.size(); ++i) {
      if (EqualsIgnoreCase(columns[i], key.name)) {
        key.index = static_cast<int>(i);
        break;
      }
    }
    if (key.index < 0) {
      return Status::InvalidArgument("merge key column not found: " + key.name);
    }
  }
  return out;
}

int CompareByKeys(const Row& a, const Row& b, const std::vector<MergeKey>& keys) {
  for (const auto& key : keys) {
    size_t i = static_cast<size_t>(key.index);
    int c = a[i].Compare(b[i]);
    if (c != 0) return key.desc ? -c : c;
  }
  return 0;
}

bool SameGroup(const Row& a, const Row& b, const std::vector<MergeKey>& keys) {
  for (const auto& key : keys) {
    size_t i = static_cast<size_t>(key.index);
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Aggregation units
// ---------------------------------------------------------------------------

/// Combines partial aggregate values coming from the shards.
struct AggUnit {
  const AggDesc* desc;
  bool any = false;
  Value acc;

  void Accumulate(const Value& v) {
    if (v.is_null()) return;
    if (!any) {
      acc = v;
      any = true;
      return;
    }
    switch (desc->kind) {
      case AggKind::kCount:
      case AggKind::kSum:
        if (acc.is_int() && v.is_int()) {
          acc = Value(acc.AsInt() + v.AsInt());
        } else {
          acc = Value(acc.ToDouble() + v.ToDouble());
        }
        break;
      case AggKind::kMin:
        if (v.Compare(acc) < 0) acc = v;
        break;
      case AggKind::kMax:
        if (v.Compare(acc) > 0) acc = v;
        break;
      case AggKind::kAvg:
        break;  // recomputed from derived SUM/COUNT
    }
  }

  Value Finish() const {
    if (!any) {
      return desc->kind == AggKind::kCount ? Value(int64_t{0}) : Value::Null();
    }
    return acc;
  }
};

/// Aggregates the shard rows of one group into one output row.
class GroupAccumulator {
 public:
  GroupAccumulator(const MergeContext& ctx) : ctx_(ctx) {}

  void Start(const Row& first) {
    row_ = first;
    units_.clear();
    units_.reserve(ctx_.aggregations.size());
    for (const auto& desc : ctx_.aggregations) {
      AggUnit unit{&desc, false, Value::Null()};
      unit.Accumulate(first[desc.index]);
      units_.push_back(std::move(unit));
      // Derived AVG inputs also accumulate.
    }
    StartDerived(first);
  }

  void Add(const Row& row) {
    for (auto& unit : units_) {
      unit.Accumulate(row[unit.desc->index]);
    }
    AddDerived(row);
  }

  Row Finish() {
    for (auto& unit : units_) {
      row_[unit.desc->index] = unit.Finish();
    }
    // AVG = total SUM / total COUNT from the derived columns.
    for (const auto& desc : ctx_.aggregations) {
      if (desc.kind != AggKind::kAvg) continue;
      double count = derived_.count(desc.count_index)
                         ? derived_[desc.count_index].ToDouble()
                         : 0.0;
      double sum = derived_.count(desc.sum_index)
                       ? derived_[desc.sum_index].ToDouble()
                       : 0.0;
      row_[desc.index] = count > 0 ? Value(sum / count) : Value::Null();
      if (desc.count_index >= 0 &&
          static_cast<size_t>(desc.count_index) < row_.size()) {
        row_[static_cast<size_t>(desc.count_index)] =
            derived_.count(desc.count_index) ? derived_[desc.count_index]
                                             : Value(int64_t{0});
      }
      if (desc.sum_index >= 0 && static_cast<size_t>(desc.sum_index) < row_.size()) {
        row_[static_cast<size_t>(desc.sum_index)] =
            derived_.count(desc.sum_index) ? derived_[desc.sum_index]
                                           : Value::Null();
      }
    }
    return row_;
  }

 private:
  void StartDerived(const Row& row) {
    derived_.clear();
    AddDerived(row);
  }
  void AddDerived(const Row& row) {
    for (const auto& desc : ctx_.aggregations) {
      if (desc.kind != AggKind::kAvg) continue;
      for (int idx : {desc.count_index, desc.sum_index}) {
        if (idx < 0 || static_cast<size_t>(idx) >= row.size()) continue;
        const Value& v = row[static_cast<size_t>(idx)];
        if (v.is_null()) continue;
        auto it = derived_.find(idx);
        if (it == derived_.end()) {
          derived_[idx] = v;
        } else if (it->second.is_int() && v.is_int()) {
          it->second = Value(it->second.AsInt() + v.AsInt());
        } else {
          it->second = Value(it->second.ToDouble() + v.ToDouble());
        }
      }
    }
  }

  const MergeContext& ctx_;
  Row row_;
  std::vector<AggUnit> units_;
  std::map<int, Value> derived_;
};

// ---------------------------------------------------------------------------
// Stream mergers
// ---------------------------------------------------------------------------

/// Concatenates cursors (paper's iteration merger).
class IterationMergedResult : public ResultSet {
 public:
  IterationMergedResult(std::vector<ResultSetPtr> sources,
                        std::vector<std::string> columns)
      : sources_(std::move(sources)), columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const override { return columns_; }

  bool Next(Row* row) override {
    while (cursor_ < sources_.size()) {
      if (sources_[cursor_]->Next(row)) return true;
      ++cursor_;
    }
    return false;
  }

 private:
  std::vector<ResultSetPtr> sources_;
  std::vector<std::string> columns_;
  size_t cursor_ = 0;
};

/// K-way merge by sort keys over per-shard cursors that are already sorted
/// (paper's order-by stream merger with a priority queue).
class OrderByStreamMergedResult : public ResultSet {
 public:
  OrderByStreamMergedResult(std::vector<ResultSetPtr> sources,
                            std::vector<std::string> columns,
                            std::vector<MergeKey> keys)
      : sources_(std::move(sources)), columns_(std::move(columns)),
        keys_(std::move(keys)) {
    for (size_t i = 0; i < sources_.size(); ++i) {
      Row row;
      if (sources_[i]->Next(&row)) {
        heap_.push(Entry{std::move(row), i});
      }
    }
  }

  const std::vector<std::string>& columns() const override { return columns_; }

  bool Next(Row* row) override {
    if (heap_.empty()) return false;
    Entry top = heap_.top();
    heap_.pop();
    *row = top.row;
    Row next;
    if (sources_[top.source]->Next(&next)) {
      heap_.push(Entry{std::move(next), top.source});
    }
    return true;
  }

 private:
  struct Entry {
    Row row;
    size_t source;
  };
  struct EntryGreater {
    const std::vector<MergeKey>* keys;
    bool operator()(const Entry& a, const Entry& b) const {
      return CompareByKeys(a.row, b.row, *keys) > 0;
    }
  };

  std::vector<ResultSetPtr> sources_;
  std::vector<std::string> columns_;
  std::vector<MergeKey> keys_;
  std::priority_queue<Entry, std::vector<Entry>, EntryGreater> heap_{
      EntryGreater{&keys_}};
};

/// Group-by stream merger: consumes a group-key-sorted stream and folds the
/// consecutive rows of one group through the aggregation units.
class GroupByStreamMergedResult : public ResultSet {
 public:
  GroupByStreamMergedResult(ResultSetPtr sorted, const MergeContext& ctx,
                            std::vector<MergeKey> group_keys,
                            std::vector<std::string> columns)
      : sorted_(std::move(sorted)), ctx_(ctx), group_keys_(std::move(group_keys)),
        columns_(std::move(columns)), acc_(ctx) {
    has_pending_ = sorted_->Next(&pending_);
  }

  const std::vector<std::string>& columns() const override { return columns_; }

  bool Next(Row* row) override {
    if (!has_pending_) return false;
    acc_.Start(pending_);
    Row current = pending_;
    for (;;) {
      has_pending_ = sorted_->Next(&pending_);
      if (!has_pending_ || !SameGroup(current, pending_, group_keys_)) break;
      acc_.Add(pending_);
    }
    *row = acc_.Finish();
    return true;
  }

 private:
  ResultSetPtr sorted_;
  const MergeContext& ctx_;
  std::vector<MergeKey> group_keys_;
  std::vector<std::string> columns_;
  GroupAccumulator acc_;
  Row pending_;
  bool has_pending_ = false;
};

// ---------------------------------------------------------------------------
// Decorators
// ---------------------------------------------------------------------------

/// Applies the logical LIMIT/OFFSET after merging (pagination decorator).
class LimitDecoratorResult : public ResultSet {
 public:
  LimitDecoratorResult(ResultSetPtr inner, sql::LimitClause limit)
      : inner_(std::move(inner)), limit_(limit) {}

  const std::vector<std::string>& columns() const override {
    return inner_->columns();
  }

  bool Next(Row* row) override {
    while (skipped_ < limit_.offset) {
      Row tmp;
      if (!inner_->Next(&tmp)) return false;
      ++skipped_;
    }
    if (limit_.count >= 0 && returned_ >= limit_.count) return false;
    if (!inner_->Next(row)) return false;
    ++returned_;
    return true;
  }

 private:
  ResultSetPtr inner_;
  sql::LimitClause limit_;
  int64_t skipped_ = 0;
  int64_t returned_ = 0;
};

/// Trims derived columns away so the client sees the logical projection.
class ProjectionDecoratorResult : public ResultSet {
 public:
  ProjectionDecoratorResult(ResultSetPtr inner, size_t visible)
      : inner_(std::move(inner)), visible_(visible) {
    const auto& cols = inner_->columns();
    columns_.assign(cols.begin(),
                    cols.begin() + static_cast<long>(std::min(visible_, cols.size())));
  }

  const std::vector<std::string>& columns() const override { return columns_; }

  bool Next(Row* row) override {
    if (!inner_->Next(row)) return false;
    if (row->size() > visible_) row->resize(visible_);
    return true;
  }

 private:
  ResultSetPtr inner_;
  size_t visible_;
  std::vector<std::string> columns_;
};

/// DISTINCT decorator (memory-backed set of seen rows).
class DistinctDecoratorResult : public ResultSet {
 public:
  explicit DistinctDecoratorResult(ResultSetPtr inner)
      : inner_(std::move(inner)) {}

  const std::vector<std::string>& columns() const override {
    return inner_->columns();
  }

  bool Next(Row* row) override {
    while (inner_->Next(row)) {
      if (seen_.insert(*row).second) return true;
    }
    return false;
  }

 private:
  struct RowLess {
    bool operator()(const Row& a, const Row& b) const {
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    }
  };
  ResultSetPtr inner_;
  std::set<Row, RowLess> seen_;
};

}  // namespace

Result<engine::ExecResult> MergeEngine::Merge(
    std::vector<engine::ExecResult> results, const MergeContext& ctx) const {
  if (results.empty()) {
    return Status::Internal("merge of zero results");
  }

  if (!ctx.is_select) {
    int64_t affected = 0;
    int64_t last_id = 0;
    for (auto& r : results) {
      affected += r.affected_rows;
      last_id = std::max(last_id, r.last_insert_id);
    }
    return engine::ExecResult::Update(affected, last_id);
  }

  if (ctx.pass_through || results.size() == 1) {
    return std::move(results[0]);
  }

  // Gather cursors; all shards return the same physical shape.
  std::vector<ResultSetPtr> sources;
  sources.reserve(results.size());
  for (auto& r : results) {
    if (!r.is_query || r.result_set == nullptr) {
      return Status::Internal("non-query result in select merge");
    }
    sources.push_back(std::move(r.result_set));
  }
  const std::vector<std::string> physical_columns = sources[0]->columns();
  std::vector<std::string> labels =
      ctx.labels.empty() ? physical_columns : ctx.labels;
  size_t visible = ctx.visible_columns == 0 ? labels.size() : ctx.visible_columns;

  SPHERE_ASSIGN_OR_RETURN(std::vector<MergeKey> order_keys,
                          ResolveKeys(ctx.order_by, physical_columns));
  SPHERE_ASSIGN_OR_RETURN(std::vector<MergeKey> group_keys,
                          ResolveKeys(ctx.group_by, physical_columns));

  ResultSetPtr merged;
  bool has_group = !group_keys.empty();
  bool has_agg = !ctx.aggregations.empty();

  if (has_agg && !has_group) {
    // Global aggregation: every shard returns one row; fold them all.
    GroupAccumulator acc(ctx);
    bool started = false;
    Row row;
    for (auto& src : sources) {
      while (src->Next(&row)) {
        if (!started) {
          acc.Start(row);
          started = true;
        } else {
          acc.Add(row);
        }
      }
    }
    std::vector<Row> rows;
    if (started) rows.push_back(acc.Finish());
    merged = std::make_unique<VectorResultSet>(labels, std::move(rows));
  } else if (has_group) {
    if (ctx.sorted_for_group) {
      // Stream path: k-way merge by group keys, then streaming aggregation.
      std::vector<MergeKey> sort_keys = group_keys;
      auto sorted = std::make_unique<OrderByStreamMergedResult>(
          std::move(sources), labels, sort_keys);
      merged = std::make_unique<GroupByStreamMergedResult>(
          std::move(sorted), ctx, group_keys, labels);
      // Materialize so the (stack-local) context outlives safely and user
      // ORDER BY can re-sort.
      auto* stream = merged.get();
      std::vector<Row> rows = engine::DrainResultSet(stream);
      merged = std::make_unique<VectorResultSet>(labels, std::move(rows));
    } else {
      // Memory path: hash aggregation over all rows.
      struct RowLess {
        const std::vector<MergeKey>* keys;
        bool operator()(const Row& a, const Row& b) const {
          return CompareByKeys(a, b, *keys) < 0;
        }
      };
      std::map<Row, GroupAccumulator, RowLess> groups{RowLess{&group_keys}};
      Row row;
      for (auto& src : sources) {
        while (src->Next(&row)) {
          auto it = groups.find(row);
          if (it == groups.end()) {
            auto [ins, ok] = groups.emplace(row, GroupAccumulator(ctx));
            ins->second.Start(row);
          } else {
            it->second.Add(row);
          }
        }
      }
      std::vector<Row> rows;
      rows.reserve(groups.size());
      for (auto& [key, acc] : groups) rows.push_back(acc.Finish());
      merged = std::make_unique<VectorResultSet>(labels, std::move(rows));
    }
    // Re-sort by the user's ORDER BY when it differs from the group order.
    if (!order_keys.empty()) {
      std::vector<Row> rows = engine::DrainResultSet(merged.get());
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const Row& a, const Row& b) {
                         return CompareByKeys(a, b, order_keys) < 0;
                       });
      merged = std::make_unique<VectorResultSet>(labels, std::move(rows));
    }
  } else if (!order_keys.empty()) {
    merged = std::make_unique<OrderByStreamMergedResult>(std::move(sources),
                                                         labels, order_keys);
  } else {
    merged = std::make_unique<IterationMergedResult>(std::move(sources), labels);
  }

  if (ctx.distinct) {
    merged = std::make_unique<DistinctDecoratorResult>(std::move(merged));
  }
  if (ctx.limit.has_value()) {
    merged = std::make_unique<LimitDecoratorResult>(std::move(merged), *ctx.limit);
  }
  if (visible < merged->columns().size()) {
    merged = std::make_unique<ProjectionDecoratorResult>(std::move(merged), visible);
  }
  return engine::ExecResult::Query(std::move(merged));
}

}  // namespace sphere::core
