#ifndef SPHERE_CORE_RUNTIME_H_
#define SPHERE_CORE_RUNTIME_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/execute.h"
#include "core/merge.h"
#include "core/rewrite.h"
#include "core/route.h"
#include "core/rule.h"
#include "core/statement_cache.h"
#include "net/latency.h"
#include "sql/parser.h"

namespace sphere::core {

/// Pluggable feature hook on the SQL engine pipeline (paper: "all of the
/// features are pluggable to the SQL engine"). Features (encrypt, read-write
/// splitting, shadow, throttling...) implement the stages they need.
class StatementInterceptor {
 public:
  virtual ~StatementInterceptor() = default;

  /// Before routing. May return a replacement statement (nullptr = keep).
  /// `params` may be rewritten in place (e.g. encrypting a compared value).
  virtual Result<sql::StatementPtr> BeforeRoute(const sql::Statement& stmt,
                                                std::vector<Value>* params) {
    (void)stmt;
    (void)params;
    return sql::StatementPtr(nullptr);
  }

  /// After rewrite: may redirect units to other data sources (read-write
  /// splitting, shadow DB) or veto execution (circuit breaker / throttle).
  virtual Status AfterRewrite(const sql::Statement& stmt,
                              std::vector<SQLUnit>* units, bool in_transaction) {
    (void)stmt;
    (void)units;
    (void)in_transaction;
    return Status::OK();
  }

  /// After merging: may transform the merged result (e.g. decrypt columns).
  virtual Result<engine::ExecResult> DecorateResult(
      const sql::Statement& stmt, engine::ExecResult result) {
    (void)stmt;
    return result;
  }
};

/// Runtime configuration (the paper's user-facing knobs).
struct RuntimeConfig {
  int max_connections_per_query = 1;  ///< MaxCon (paper §VI-D / Fig. 15)
  int pool_size_per_source = 128;
  sql::DialectType dialect = sql::DialectType::kMySQL;
  /// SQL parse/plan cache entries kept per runtime (0 disables caching).
  size_t statement_cache_capacity = 2048;
};

/// The assembled SQL engine: parser -> router -> rewriter -> executor ->
/// merger over a set of network-attached data sources. Both adaptors
/// (embedded driver and proxy) call into this.
class ShardingRuntime {
 public:
  ShardingRuntime(RuntimeConfig config, net::NetworkConfig network);

  /// Attaches a storage node as data source `name`. The node is owned by the
  /// caller and must outlive the runtime.
  Status AttachNode(const std::string& name, engine::StorageNode* node);

  /// Installs the sharding rule (replaces any previous one).
  Status SetRule(ShardingRuleConfig config);
  const ShardingRule* rule() const { return rule_.get(); }

  void SetMaxConnectionsPerQuery(int n) { executor_.set_max_connections_per_query(n); }
  int max_connections_per_query() const {
    return executor_.max_connections_per_query();
  }

  /// Registers a pluggable feature. Interceptors run in registration order
  /// (result decoration in reverse order).
  void AddInterceptor(std::shared_ptr<StatementInterceptor> interceptor) {
    interceptors_.push_back(std::move(interceptor));
  }

  /// Runs the full pipeline for a parsed statement. `txn_source` provides
  /// transaction-affine connections (nullptr = auto-commit); `observer` hooks
  /// each physical unit (BASE transactions use it).
  Result<engine::ExecResult> ExecuteStatement(const sql::Statement& stmt,
                                              std::vector<Value> params,
                                              ConnectionSource* txn_source,
                                              UnitObserver* observer = nullptr);

  /// Parse + execute (auto-commit convenience). Repeated statements hit the
  /// parse/plan cache and skip the parser entirely.
  Result<engine::ExecResult> Execute(std::string_view sql_text,
                                     std::vector<Value> params = {});

  /// Cache-aware parse: returns the cached plan for `sql_text` or parses and
  /// admits it. The plan's AST is immutable and shared; adaptors hold it
  /// across executions (prepared statements) and feed it to ExecutePlan.
  Result<std::shared_ptr<const StatementPlan>> GetOrParse(
      std::string_view sql_text);

  /// Runs the pipeline for a cached plan. Zero-parameter SELECTs outside of
  /// feature interceptors reuse the plan's routed/rewritten form (computed at
  /// most once per rule epoch) and jump straight to the executor; everything
  /// else takes the regular ExecuteStatement pipeline on the shared AST.
  Result<engine::ExecResult> ExecutePlan(const StatementPlan& plan,
                                         std::vector<Value> params,
                                         ConnectionSource* txn_source,
                                         UnitObserver* observer = nullptr);

  /// The route a statement would take (DistSQL PREVIEW / tests).
  Result<RouteResult> PreviewRoute(const sql::Statement& stmt,
                                   const std::vector<Value>& params) const;

  DataSourceRegistry* data_sources() { return &registry_; }
  const net::LatencyModel& network() const { return network_; }
  const sql::Dialect& dialect() const { return dialect_; }
  const RuntimeConfig& config() const { return config_; }

  /// Parse/plan cache observability: hits, misses, evictions, residency.
  CacheStats statement_cache_stats() const { return stmt_cache_.stats(); }
  const StatementCache& statement_cache() const { return stmt_cache_; }

  /// Overrides the executor's scheduler pool (tests / benchmarks). nullptr
  /// selects the legacy spawn-per-statement dispatch.
  void set_executor_pool(ThreadPool* pool) { executor_.set_thread_pool(pool); }

  /// Last chosen connection mode (observability for Fig. 15 analysis).
  ConnectionMode last_connection_mode() const {
    return last_mode_.load(std::memory_order_relaxed);
  }

 private:
  /// Fills generated keys into INSERTs on tables with a key generator. With
  /// parameter binding enabled the keys are appended to `params` behind new
  /// placeholders (the statement text stays stable across executions);
  /// otherwise they are inlined as literals.
  Result<sql::StatementPtr> ApplyKeyGeneration(const sql::Statement& stmt,
                                               std::vector<Value>* params,
                                               int64_t* generated) const;

  RuntimeConfig config_;
  net::LatencyModel network_;
  const sql::Dialect& dialect_;
  DataSourceRegistry registry_;
  std::unique_ptr<ShardingRule> rule_;
  ExecutionEngine executor_;
  StatementCache stmt_cache_;
  MergeEngine merger_;
  std::vector<std::shared_ptr<StatementInterceptor>> interceptors_;
  std::atomic<ConnectionMode> last_mode_{ConnectionMode::kMemoryStrictly};
};

}  // namespace sphere::core

#endif  // SPHERE_CORE_RUNTIME_H_
