#ifndef SPHERE_CORE_RULE_H_
#define SPHERE_CORE_RULE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/keygen.h"
#include "common/properties.h"
#include "common/result.h"
#include "core/algorithm.h"
#include "core/metadata.h"

namespace sphere::core {

/// How one level (data source or table) of a logic table shards.
struct ShardingStrategyConfig {
  std::vector<std::string> columns;  ///< sharding key column(s); empty = none
  std::string algorithm_type;        ///< e.g. "MOD"
  Properties props;

  bool empty() const { return algorithm_type.empty(); }
  bool complex() const { return columns.size() > 1; }
};

/// Declarative configuration of one sharded logic table.
struct TableRuleConfig {
  std::string logic_table;
  /// Explicit actual nodes ("ds_${0..1}.t_user_${0..3}"), or empty when
  /// auto_table below is used.
  std::string actual_data_nodes;
  ShardingStrategyConfig database_strategy;
  ShardingStrategyConfig table_strategy;
  std::string keygen_column;  ///< generated-key column, optional
  std::string keygen_type = "SNOWFLAKE";

  /// AutoTable (paper §V-A): give data sources + shard count instead of
  /// explicit nodes; the platform computes the layout.
  std::vector<std::string> auto_resources;
  int auto_sharding_count = 0;
};

/// Whole-schema sharding configuration.
struct ShardingRuleConfig {
  std::vector<TableRuleConfig> tables;
  /// Groups of logic tables sharded identically (paper's binding tables).
  std::vector<std::vector<std::string>> binding_groups;
  /// Tables fully replicated to every data source.
  std::set<std::string> broadcast_tables;
  /// Data source for tables with no rule (single tables).
  std::string default_data_source;
};

/// Compiled rule for one logic table: resolved node lists + live algorithm
/// instances + key generator.
class TableRule {
 public:
  static Result<std::unique_ptr<TableRule>> Build(const TableRuleConfig& config,
                                                  uint16_t keygen_worker_id);

  const std::string& logic_table() const { return config_.logic_table; }
  const TableRuleConfig& config() const { return config_; }
  const std::vector<DataNode>& actual_nodes() const { return actual_nodes_; }
  /// Distinct data source names, first-appearance order.
  const std::vector<std::string>& data_sources() const { return data_sources_; }
  /// Distinct actual table names, first-appearance order.
  const std::vector<std::string>& actual_tables() const { return actual_tables_; }
  /// Actual tables hosted by one data source.
  const std::vector<std::string>& TablesIn(const std::string& ds) const;

  const ShardingAlgorithm* database_algorithm() const {
    return database_algorithm_.get();
  }
  const ShardingAlgorithm* table_algorithm() const {
    return table_algorithm_.get();
  }
  const ShardingStrategyConfig& database_strategy() const {
    return config_.database_strategy;
  }
  const ShardingStrategyConfig& table_strategy() const {
    return config_.table_strategy;
  }

  /// True when `column` is a sharding key at either level.
  bool IsShardingColumn(const std::string& column) const;

  KeyGenerator* key_generator() const { return keygen_.get(); }
  const std::string& keygen_column() const { return config_.keygen_column; }

 private:
  TableRuleConfig config_;
  std::vector<DataNode> actual_nodes_;
  std::vector<std::string> data_sources_;
  std::vector<std::string> actual_tables_;
  std::map<std::string, std::vector<std::string>> tables_by_ds_;
  std::unique_ptr<ShardingAlgorithm> database_algorithm_;
  std::unique_ptr<ShardingAlgorithm> table_algorithm_;
  std::unique_ptr<KeyGenerator> keygen_;
};

/// Compiled schema-wide rule: the router's main input.
class ShardingRule {
 public:
  static Result<std::unique_ptr<ShardingRule>> Build(ShardingRuleConfig config);

  const ShardingRuleConfig& config() const { return config_; }

  /// The rule for `logic_table` or nullptr (not sharded).
  const TableRule* FindTableRule(const std::string& logic_table) const;
  bool IsShardedTable(const std::string& logic_table) const {
    return FindTableRule(logic_table) != nullptr;
  }
  bool IsBroadcastTable(const std::string& logic_table) const;
  /// True when the two tables are in one binding group.
  bool IsBinding(const std::string& a, const std::string& b) const;

  const std::string& default_data_source() const {
    return config_.default_data_source;
  }
  /// Every data source referenced by any rule (plus the default), sorted.
  std::vector<std::string> AllDataSources() const;
  std::vector<std::string> LogicTables() const;

 private:
  ShardingRuleConfig config_;
  std::map<std::string, std::unique_ptr<TableRule>> tables_;  // lower-case key
};

}  // namespace sphere::core

#endif  // SPHERE_CORE_RULE_H_
