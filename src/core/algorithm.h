#ifndef SPHERE_CORE_ALGORITHM_H_
#define SPHERE_CORE_ALGORITHM_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/properties.h"
#include "common/result.h"
#include "common/value.h"

namespace sphere::core {

/// Strategy that maps a sharding value to one of the available targets
/// (actual table names or data source names) — the paper's
/// `ShardingAlgorithm` SPI (§IV-A).
///
/// ShardingSphere presets ten algorithms; this library ships the same set
/// (see CreateShardingAlgorithm) and user algorithms register through
/// RegisterShardingAlgorithmFactory, mirroring Java SPI discovery.
class ShardingAlgorithm {
 public:
  virtual ~ShardingAlgorithm() = default;

  /// Algorithm type name, e.g. "MOD".
  virtual const char* Type() const = 0;

  /// Consumes configuration properties; called once before use.
  virtual Status Init(const Properties& props) {
    (void)props;
    return Status::OK();
  }

  /// Precise sharding: chooses the target for one value (= / IN routes).
  virtual Result<std::string> DoSharding(
      const std::vector<std::string>& targets, const Value& value) const = 0;

  /// Range sharding: the subset of targets that may contain values in
  /// [low, high] (absent bound = unbounded). Default: every target.
  virtual std::vector<std::string> DoRangeSharding(
      const std::vector<std::string>& targets, const std::optional<Value>& low,
      const std::optional<Value>& high) const {
    (void)low;
    (void)high;
    return targets;
  }

  /// Multi-column ("complex") sharding. Only COMPLEX_INLINE implements it.
  virtual Result<std::string> DoComplexSharding(
      const std::vector<std::string>& targets,
      const std::map<std::string, Value>& values) const {
    (void)targets;
    (void)values;
    return Status::Unsupported(std::string(Type()) +
                               " does not support complex sharding");
  }
};

using ShardingAlgorithmFactory =
    std::function<std::unique_ptr<ShardingAlgorithm>()>;

/// Registers a user algorithm type (SPI extension point). Returns
/// AlreadyExists when the type name is taken by a preset or earlier
/// registration.
Status RegisterShardingAlgorithmFactory(const std::string& type,
                                        ShardingAlgorithmFactory factory);

/// Instantiates and initializes an algorithm by type name. Preset types:
/// MOD, HASH_MOD, VOLUME_RANGE, BOUNDARY_RANGE, AUTO_INTERVAL, INTERVAL,
/// INLINE, COMPLEX_INLINE, HINT_INLINE, CLASS_BASED.
Result<std::unique_ptr<ShardingAlgorithm>> CreateShardingAlgorithm(
    const std::string& type, const Properties& props);

/// All registered type names (presets + user), sorted.
std::vector<std::string> ListShardingAlgorithmTypes();

}  // namespace sphere::core

#endif  // SPHERE_CORE_ALGORITHM_H_
