#ifndef SPHERE_CORE_ROUTE_H_
#define SPHERE_CORE_ROUTE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/rule.h"
#include "sql/ast.h"
#include "sql/condition.h"

namespace sphere::core {

/// logic table -> actual table substitution within one route unit.
struct TableMapping {
  std::string logic;
  std::string actual;
};

/// One physical SQL destination: a data source plus the table substitutions
/// to apply there.
struct RouteUnit {
  std::string data_source;
  std::vector<TableMapping> mappings;
  /// INSERT only: which VALUES rows belong to this unit.
  std::vector<size_t> insert_rows;

  /// Actual name for `logic` in this unit, or nullptr (not renamed here).
  const std::string* ActualOf(const std::string& logic) const;
};

/// How the statement was routed (observability + tests).
enum class RouteType {
  kStandard,   ///< single sharded table or binding group
  kCartesian,  ///< non-binding multi-table join
  kBroadcast,  ///< all data sources / all nodes (DDL, broadcast tables)
  kSingle,     ///< unsharded table on the default data source
  kUnicast,    ///< any one node is enough (e.g. SELECT on broadcast table)
};

struct RouteResult {
  RouteType type = RouteType::kSingle;
  std::vector<RouteUnit> units;

  bool IsSingleUnit() const { return units.size() == 1; }
};

/// The SQL router (paper §V-B... §VI): matches a logical statement onto data
/// nodes using the sharding rule, the extracted conditions and hints.
class RouteEngine {
 public:
  explicit RouteEngine(const ShardingRule* rule) : rule_(rule) {}

  Result<RouteResult> Route(const sql::Statement& stmt,
                            const std::vector<Value>& params) const;

 private:
  struct TableContext {
    const sql::TableRef* ref;        // may be null (DDL)
    std::string logic;               // logic table name
    const TableRule* rule;           // null when not sharded
  };

  Result<RouteResult> RouteSelectLike(const sql::Statement& stmt,
                                      const std::vector<TableContext>& tables,
                                      const sql::Expr* where,
                                      const std::vector<Value>& params) const;
  Result<RouteResult> RouteInsert(const sql::InsertStatement& stmt,
                                  const std::vector<Value>& params) const;
  Result<RouteResult> RouteDDL(const std::string& table) const;

  /// Node indices (into rule->actual_nodes()) matching the condition groups.
  Result<std::vector<size_t>> RouteTable(
      const TableContext& table,
      const ArenaVector<sql::ConditionGroup>& groups) const;

  /// Target subset produced by one strategy level for one condition group.
  Result<std::vector<std::string>> ShardLevel(
      const ShardingStrategyConfig& strategy, const ShardingAlgorithm* algorithm,
      const std::vector<std::string>& targets, const sql::ConditionGroup& group,
      const TableContext& table) const;

  const ShardingRule* rule_;
};

}  // namespace sphere::core

#endif  // SPHERE_CORE_ROUTE_H_
