#ifndef SPHERE_CORE_REWRITE_H_
#define SPHERE_CORE_REWRITE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/route.h"
#include "sql/ast.h"
#include "sql/dialect.h"

namespace sphere::core {

/// Aggregate kinds the result merger understands.
enum class AggKind { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate column of the (physical) select list.
struct AggDesc {
  size_t index = 0;      ///< column position of the aggregate
  AggKind kind = AggKind::kCount;
  bool distinct = false;
  int sum_index = -1;    ///< kAvg: derived SUM column appended by the rewriter
  int count_index = -1;  ///< kAvg: derived COUNT column appended by the rewriter
};

/// Merge key: a physical column index when known at rewrite time, otherwise a
/// column name resolved against the first result set (star queries).
struct MergeKey {
  int index = -1;
  std::string name;
  bool desc = false;
};

/// Everything the result merger needs to combine per-shard results (built by
/// the rewriter, which knows what it derived).
struct MergeContext {
  bool is_select = false;
  bool pass_through = false;  ///< single route unit: no merging required
  std::vector<std::string> labels;  ///< physical labels incl. derived columns
  size_t visible_columns = 0;       ///< prefix the client sees
  std::vector<AggDesc> aggregations;
  std::vector<MergeKey> order_by;
  std::vector<MergeKey> group_by;
  /// Physical results arrive sorted by the group keys (stream group-by merge
  /// possible; the rewriter's stream-merger optimization sets this).
  bool sorted_for_group = false;
  bool distinct = false;
  std::optional<sql::LimitClause> limit;  ///< applied after merging
};

/// One executable SQL destined for one data source.
///
/// Units come in two forms (DESIGN.md §10). Text form: `sql` holds the
/// rewritten statement and `stmt` may additionally carry the rewritten AST
/// (observers use it to skip a re-parse). Structured form (DML pass-through):
/// `sql` is empty and `stmt` is the unit's whole identity — the execution
/// engine hands it to the node session directly, and anything that needs a
/// display text renders it on demand via RenderSQL.
struct SQLUnit {
  std::string data_source;
  std::string sql;
  std::vector<Value> params;
  /// The per-unit rewritten AST (actual table names applied, placeholders
  /// renumbered to `params`). Shared: interceptors copy units freely.
  std::shared_ptr<const sql::Statement> stmt;

  /// The unit's SQL text, built from `stmt` when the structured lane skipped
  /// string-building. For display (PREVIEW, logs) — not the execution path.
  std::string RenderSQL(const sql::Dialect& dialect) const {
    if (!sql.empty() || stmt == nullptr) return sql;
    return stmt->ToSQL(dialect);
  }
};

struct RewriteResult {
  std::vector<SQLUnit> units;
  MergeContext merge;
};

/// The SQL rewriter (paper §VI-C): correctness rewrites (identifier renaming,
/// column derivation, pagination revision, batched-insert split) and
/// optimization rewrites (single-node short circuit, stream-merger ORDER BY
/// injection).
class RewriteEngine {
 public:
  explicit RewriteEngine(const sql::Dialect& dialect = sql::Dialect::MySQL())
      : dialect_(dialect) {}

  Result<RewriteResult> Rewrite(const sql::Statement& stmt,
                                const RouteResult& route,
                                const std::vector<Value>& params) const;

 private:
  Result<RewriteResult> RewriteSelect(const sql::SelectStatement& stmt,
                                      const RouteResult& route,
                                      const std::vector<Value>& params) const;
  Result<RewriteResult> RewriteInsert(const sql::InsertStatement& stmt,
                                      const RouteResult& route,
                                      const std::vector<Value>& params) const;

  const sql::Dialect& dialect_;
};

/// Renames logic tables (FROM/JOIN/UPDATE/DELETE targets and matching column
/// qualifiers) to the unit's actual tables, in place.
void ApplyTableMappings(sql::Statement* stmt, const RouteUnit& unit);

}  // namespace sphere::core

#endif  // SPHERE_CORE_REWRITE_H_
